// Closed-loop DNS defense example: a reflection attack spoofs queries "from"
// a victim; the sketch flags the victim, the Bloom filter blocks the
// amplified responses, and aging events rotate the state — the full
// detect/block/age control loop inside the data plane.
//
//   $ ./examples/dns_defense
#include <cstdio>

#include "apps/apps.hpp"
#include "interp/testbed.hpp"

int main() {
  using namespace lucid;

  std::printf("== Closed-loop DNS reflection defense ==\n\n");
  interp::TestbedConfig cfg;
  cfg.switch_ids = {1, 9};  // 9 = report collector
  interp::Testbed tb(apps::app("DNS").source, cfg);
  if (!tb.ok()) {
    std::printf("%s\n", tb.diagnostics().c_str());
    return 1;
  }

  const int victim = 1234;
  const int legit = 4321;

  // Background: light legitimate traffic passes.
  for (int i = 0; i < 20; ++i) {
    tb.node(1).inject("dns_req", {legit, 8, i});
    tb.node(1).inject("dns_resp", {55, legit, i});
  }
  tb.settle(2 * sim::kMs);
  std::printf("baseline: passed=%lld blocked=%lld\n",
              static_cast<long long>(tb.node(1).array("passed")->get(0)),
              static_cast<long long>(tb.node(1).array("blocked")->get(0)));

  // Attack: 500 spoofed queries "from" the victim.
  for (int i = 0; i < 500; ++i) {
    tb.node(1).inject("dns_req", {victim, 8, i});
  }
  tb.settle(5 * sim::kMs);

  // Amplified responses to the victim are dropped; legit still passes.
  for (int i = 0; i < 50; ++i) {
    tb.node(1).inject("dns_resp", {55, victim, i});
  }
  for (int i = 0; i < 10; ++i) {
    tb.node(1).inject("dns_resp", {55, legit, i});
  }
  tb.settle(5 * sim::kMs);

  std::printf("under attack: passed=%lld blocked=%lld (50 attack responses "
              "blocked)\n",
              static_cast<long long>(tb.node(1).array("passed")->get(0)),
              static_cast<long long>(tb.node(1).array("blocked")->get(0)));
  std::printf("collector received %lld victim reports\n",
              static_cast<long long>(tb.node(9).array("reports")->get(0)));

  // Aging: run the Bloom rotation and sketch decay sweeps. The victim's
  // bits sit in the *active* bank, so full expiry takes two sweep cycles:
  // clear the inactive bank, swap, then clear the bank that held the flag.
  tb.node(1).inject("age_step", {0});
  tb.node(1).inject("decay_step", {0});
  tb.settle(4600 * sim::kMs);  // two full sweeps (2048 slots x 1 ms each)

  const auto blocked_before =
      tb.node(1).array("blocked")->get(0);
  for (int i = 0; i < 10; ++i) {
    tb.node(1).inject("dns_resp", {55, victim, 900 + i});
  }
  tb.settle(5 * sim::kMs);
  const auto blocked_after = tb.node(1).array("blocked")->get(0);
  std::printf("\nafter aging sweeps: %lld additional blocks on fresh victim "
              "responses (0 once fully aged)\n",
              static_cast<long long>(blocked_after - blocked_before));

  std::printf("\ndns_defense done.\n");
  return 0;
}
