// Quickstart: write a tiny Lucid program, compile it (type + effect
// checking, lowering, pipeline layout), emit Tofino-style P4, and run it in
// the interpreter on a simulated switch.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/backends.hpp"
#include "interp/testbed.hpp"
#include "support/strings.hpp"

namespace {

// A packet-rate meter: counts packets per source, and a recursive control
// event periodically decays the counters — packet handling and control
// logic interleaved in one program, the paper's core pitch.
constexpr const char* kProgram = R"(
const int SLOTS = 256;
const int SLOT_MASK = 255;
const int DECAY_GAP = 1ms;

global rates = new Array<<32>>(SLOTS);
global decays = new Array<<32>>(1);

memop plus(int cur, int x) { return cur + x; }
memop halve_cell(int cur, int x) { return cur & x; }

event pkt(int src);
event decay(int idx);

handle pkt(int src) {
  int slot = hash(3, src) & SLOT_MASK;
  Array.set(rates, slot, plus, 1);
}

// Control thread: one slot per delayed recirculation.
handle decay(int idx) {
  Array.set(rates, idx, 0);
  Array.set(decays, 0, plus, 1);
  generate Event.delay(decay((idx + 1) & SLOT_MASK), DECAY_GAP);
}
)";

}  // namespace

int main() {
  using namespace lucid;

  std::printf("== Lucid quickstart ==\n\n");

  // 1. Compile (the Testbed runs the staged CompilerDriver internally).
  interp::TestbedConfig cfg;
  cfg.program_name = "quickstart";
  interp::Testbed tb(kProgram, cfg);
  if (!tb.ok()) {
    std::printf("compilation failed:\n%s\n", tb.diagnostics().c_str());
    return 1;
  }
  const Compilation& r = tb.compilation();
  std::printf("compiled OK: %d events, %d arrays\n",
              static_cast<int>(r.ir().events.size()),
              static_cast<int>(r.ir().arrays.size()));
  std::printf("pipeline: %d stages optimized (vs %d unoptimized atomic "
              "tables)\n",
              r.layout_stats().optimized_stages,
              r.layout_stats().unoptimized_stages);

  // 2. Emit P4 through the backend registry.
  register_default_backends();
  const CompilerDriver driver;
  const BackendArtifact p4prog = driver.emit(tb.compilation_ptr(), "p4");
  if (!p4prog.ok) {
    std::printf("P4 emission failed:\n%s\n",
                tb.compilation().diags().render().c_str());
    return 1;
  }
  std::printf("generated P4: %lld LoC (vs %zu LoC of Lucid)\n\n",
              static_cast<long long>(p4prog.metrics.at("loc_total")),
              count_loc(kProgram));

  // 3. Run: 1000 packets from 50 sources, with the decay thread running.
  sim::Rng rng(7);
  tb.node(1).inject("decay", {0});
  for (int i = 0; i < 1000; ++i) {
    tb.node(1).inject("pkt", {rng.uniform(1, 50)});
  }
  tb.settle(50 * sim::kMs);

  const auto& stats = tb.node(1).stats();
  std::printf("interpreter: %llu pkt handlers, %llu decay steps, %llu "
              "recirculations\n",
              static_cast<unsigned long long>(stats.executions.at("pkt")),
              static_cast<unsigned long long>(stats.executions.at("decay")),
              static_cast<unsigned long long>(
                  tb.switch_at(1).recirculations()));
  std::printf("decay counter: %lld sweep steps applied\n",
              static_cast<long long>(tb.node(1).array("decays")->get(0)));
  std::printf("\nquickstart done.\n");
  return 0;
}
