// Stateful firewall example (section 7.4): run the SFW application under a
// synthetic flow workload and report admission decisions and installation
// behaviour — the data-plane-integrated control loop in action.
//
//   $ ./examples/stateful_firewall
#include <cstdio>

#include "apps/apps.hpp"
#include "interp/testbed.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace lucid;

  std::printf("== Stateful firewall on one simulated switch ==\n\n");
  interp::Testbed tb(apps::app("SFW").source);
  if (!tb.ok()) {
    std::printf("%s\n", tb.diagnostics().c_str());
    return 1;
  }
  std::printf("compiled: %d pipeline stages (paper: %d)\n\n",
              tb.compilation().layout_stats().optimized_stages,
              apps::app("SFW").paper_stages);

  // Start the two timeout-scan threads.
  tb.node(1).inject("scan1", {0});
  tb.node(1).inject("scan2", {0});

  // 200 outbound flows, each answered by 2 return packets, plus 100
  // unsolicited inbound probes.
  const auto flows = workload::distinct_flows(200, 500, 11);
  for (const auto& f : flows) {
    tb.node(1).inject("pkt_out", {f.src, f.dst});
  }
  tb.settle(5 * sim::kMs);
  for (const auto& f : flows) {
    tb.node(1).inject("pkt_in", {f.dst, f.src});
    tb.node(1).inject("pkt_in", {f.dst, f.src});
  }
  sim::Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    tb.node(1).inject("pkt_in", {rng.uniform(600, 900), rng.uniform(1, 500)});
  }
  tb.settle(5 * sim::kMs);

  const auto allowed = tb.node(1).array("allowed")->get(0);
  const auto denied = tb.node(1).array("denied")->get(0);
  const auto failures = tb.node(1).array("failures")->get(0);
  const auto& st = tb.node(1).stats();
  const auto cuckoo = st.executions.count("cuckoo_insert")
                          ? st.executions.at("cuckoo_insert")
                          : 0;

  std::printf("return packets admitted : %lld (expected 400)\n",
              static_cast<long long>(allowed));
  std::printf("unsolicited denied      : %lld (expected ~100)\n",
              static_cast<long long>(denied));
  std::printf("cuckoo re-install events: %llu (collision chains)\n",
              static_cast<unsigned long long>(cuckoo));
  std::printf("install failures        : %lld\n",
              static_cast<long long>(failures));
  std::printf("recirculations          : %llu\n",
              static_cast<unsigned long long>(
                  tb.switch_at(1).recirculations()));

  // Idle timeout: after 150 ms without traffic, scans delete the entries
  // (each scan thread covers all 2048 slots in ~2 s of virtual time; sweep
  // a little past the timeout to show deletions kicking in).
  tb.settle(200 * sim::kMs);
  const auto del1 = st.executions.count("del1") ? st.executions.at("del1")
                                                : 0;
  std::printf("\nafter 200 ms idle: %llu entries aged out by the scan "
              "thread so far\n",
              static_cast<unsigned long long>(del1));
  std::printf("\nstateful_firewall done.\n");
  return 0;
}
