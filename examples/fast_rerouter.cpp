// Fast rerouter example (section 2's driving example): three switches probe
// each other; when a link dies, the data plane detects the failure and
// reroutes via a distributed route query — no controller involved.
//
//   $ ./examples/fast_rerouter
#include <cstdio>

#include "apps/apps.hpp"
#include "interp/testbed.hpp"

int main() {
  using namespace lucid;

  std::printf("== Fast rerouter on a 3-switch fabric ==\n\n");
  interp::TestbedConfig cfg;
  cfg.switch_ids = {1, 2, 3};
  interp::Testbed tb(apps::app("RR").source, cfg);
  if (!tb.ok()) {
    std::printf("%s\n", tb.diagnostics().c_str());
    return 1;
  }

  const int dst = 7;
  // Routing state: node 2 is one hop from dst, node 3 five hops.
  for (int node : {1, 2, 3}) tb.node(node).array("pathlens")->fill(1000000);
  tb.node(2).array("pathlens")->set(dst, 1);
  tb.node(3).array("pathlens")->set(dst, 5);

  // Fault-detection thread on node 1: ping both neighbors every 10 ms.
  tb.node(1).inject("probe_timer", {0});
  tb.settle(30 * sim::kMs);
  std::printf("probes running: linkstate[2]=%lld ns, linkstate[3]=%lld ns\n",
              static_cast<long long>(tb.node(1).array("linkstate")->get(2)),
              static_cast<long long>(tb.node(1).array("linkstate")->get(3)));

  // Phase 1: node 1 has no route; its next-hop link looks stale -> the
  // packet triggers a route query to both neighbors.
  tb.sim().run_until(70 * sim::kMs);  // make the default next hop stale
  tb.node(1).inject("pkt", {dst});
  tb.settle(5 * sim::kMs);
  std::printf("\nafter first packet (dead next hop):\n");
  std::printf("  pathlen[%d] = %lld (adopted = neighbor's + 1)\n", dst,
              static_cast<long long>(tb.node(1).array("pathlens")->get(dst)));
  std::printf("  nexthop[%d] = %lld (expected 2, the closer neighbor)\n",
              dst,
              static_cast<long long>(tb.node(1).array("nexthops")->get(dst)));

  // Phase 2: with probes keeping the link fresh, traffic forwards.
  tb.settle(5 * sim::kMs);
  for (int i = 0; i < 10; ++i) tb.node(1).inject("pkt", {dst});
  tb.settle(5 * sim::kMs);
  std::printf("\nsteady state: forwarded=%lld rerouting-drops=%lld\n",
              static_cast<long long>(tb.node(1).array("fwd_count")->get(0)),
              static_cast<long long>(tb.node(1).array("drop_count")->get(0)));

  std::printf("\nfast_rerouter done.\n");
  return 0;
}
