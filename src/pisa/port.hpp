// A rate-limited port: models FIFO serialization delay and counts wire bytes
// so benches can measure offered bandwidth (Fig 14's recirculation Gb/s).
#pragma once

#include <cstdint>
#include <functional>

#include "pisa/packet.hpp"
#include "sim/simulator.hpp"

namespace lucid::pisa {

struct PortStats {
  std::uint64_t packets = 0;
  std::uint64_t wire_bytes = 0;
};

class Port {
 public:
  /// `rate_gbps` is the line rate; `latency_ns` is the fixed propagation /
  /// processing latency added after serialization.
  Port(sim::Simulator& sim, double rate_gbps, sim::Time latency_ns)
      : sim_(sim), bits_per_ns_(rate_gbps), latency_(latency_ns) {}

  /// Sends `p`; `deliver` fires once the packet has fully serialized and
  /// traversed the port. Back-to-back sends queue behind each other (the
  /// port is a FIFO server), which is how saturation emerges.
  void send(Packet p, std::function<void(Packet)> deliver) {
    const sim::Time start = std::max(sim_.now(), next_free_);
    const auto bits = static_cast<double>(p.wire_bytes()) * 8.0;
    const auto ser = static_cast<sim::Time>(bits / bits_per_ns_);
    next_free_ = start + std::max<sim::Time>(ser, 1);
    stats_.packets += 1;
    stats_.wire_bytes += static_cast<std::uint64_t>(p.wire_bytes());
    sim_.at(next_free_ + latency_,
            [deliver = std::move(deliver), p = std::move(p)]() mutable {
              deliver(std::move(p));
            });
  }

  /// Instantaneous backlog: ns until the port would be free.
  [[nodiscard]] sim::Time backlog() const {
    return next_free_ > sim_.now() ? next_free_ - sim_.now() : 0;
  }

  [[nodiscard]] const PortStats& stats() const { return stats_; }
  [[nodiscard]] double rate_gbps() const { return bits_per_ns_; }

 private:
  sim::Simulator& sim_;
  double bits_per_ns_;  // 1 Gb/s == 1 bit/ns
  sim::Time latency_;
  sim::Time next_free_ = 0;
  PortStats stats_;
};

}  // namespace lucid::pisa
