#include "pisa/switch.hpp"

namespace lucid::pisa {

Switch::Switch(sim::Simulator& sim, SwitchConfig config)
    : sim_(sim),
      config_(config),
      recirc_port_(sim, config.recirc_rate_gbps, config.recirc_latency_ns),
      front_port_(sim, config.front_rate_gbps, 0) {
  // Process-wide aggregates across every live switch (per-switch exact
  // numbers stay on the accessors above).
  auto& reg = obs::Registry::global();
  m_queue_depth_ = &reg.gauge("lucid_pisa_delay_queue_depth",
                              "Event packets parked in pausable delay "
                              "queues, summed across live switches");
  m_stall_ns_ = &reg.counter(
      "lucid_pisa_pipeline_stall_ns_total",
      "Nanoseconds the MAU pipeline was held by control-plane commits");
  m_stalled_deliveries_ = &reg.counter(
      "lucid_pisa_stalled_deliveries_total",
      "Packets whose pipeline pass waited out a control-plane commit");
}

Switch::~Switch() {
  // Packets still parked in this switch's delay queue leave the process-wide
  // depth gauge with the switch.
  m_queue_depth_->sub(static_cast<std::int64_t>(delay_queue_.size()));
}

RegisterArray& Switch::add_array(const std::string& name, int width,
                                 std::int64_t size) {
  auto [it, inserted] =
      arrays_.emplace(name, RegisterArray(name, width, size));
  if (!inserted) {
    it->second = RegisterArray(name, width, size);
  }
  return it->second;
}

RegisterArray* Switch::find_array(const std::string& name) {
  const auto it = arrays_.find(name);
  return it == arrays_.end() ? nullptr : &it->second;
}

void Switch::deliver_to_ingress(Packet p) {
  if (ingress_) {
    // One pipeline pass of latency between parse and the dispatch decision
    // completing; the callback runs handler logic "at" egress time.
    sim_.after(config_.pipeline_latency_ns,
               [this, p = std::move(p)]() mutable {
                 finish_pipeline_pass(std::move(p));
               });
  }
}

void Switch::finish_pipeline_pass(Packet p, bool counted) {
  if (sim_.now() < busy_until_) {
    // A control-plane update commit occupies the MAU pipeline; the packet
    // waits until the commit finishes, then completes its pass. A packet is
    // one stalled delivery no matter how many consecutive commits it waits
    // through — `counted` marks the rescheduled closure so re-entry (a
    // second commit landed while we waited) does not count it again.
    if (!counted) {
      ++stalled_deliveries_;
      m_stalled_deliveries_->add();
    }
    sim_.at(busy_until_, [this, p = std::move(p)]() mutable {
      finish_pipeline_pass(std::move(p), /*counted=*/true);
    });
    return;
  }
  if (ingress_) ingress_(std::move(p));
}

void Switch::stall_pipeline(sim::Time duration) {
  if (duration <= 0) return;
  const sim::Time start = std::max(busy_until_, sim_.now());
  busy_until_ = start + duration;
  stall_ns_total_ += duration;
  m_stall_ns_->add(static_cast<std::uint64_t>(duration));
}

void Switch::inject(Packet p) {
  if (p.uid == 0) p.uid = next_uid_++;
  deliver_to_ingress(std::move(p));
}

void Switch::recirculate(Packet p) {
  ++recirculations_;
  ++p.recirc_count;
  recirc_port_.send(std::move(p),
                    [this](Packet q) { deliver_to_ingress(std::move(q)); });
}

void Switch::send_external(Packet p, std::function<void(Packet)> deliver) {
  front_port_.send(std::move(p), std::move(deliver));
}

void Switch::multicast(const Packet& p,
                       const std::function<void(std::int64_t, Packet)>& each) {
  for (const auto member : p.mcast_members) {
    Packet clone = p;
    clone.multicast = false;
    clone.mcast_members.clear();
    clone.location = member;
    clone.uid = next_uid_++;
    each(member, std::move(clone));
  }
}

void Switch::set_delay_queue_open(bool open) {
  delay_open_ = open;
  if (!open) return;
  // Drain: every queued event packet goes back through the recirculation
  // port (this is where the paper's "negligible bandwidth" comes from — one
  // pass per release instead of continuous spinning).
  while (!delay_queue_.empty()) {
    Packet p = std::move(delay_queue_.front());
    delay_queue_.pop_front();
    m_queue_depth_->sub(1);
    recirculate(std::move(p));
  }
}

void Switch::start_pfc_stream(sim::Time interval, sim::Time window) {
  if (pfc_running_) return;
  pfc_running_ = true;
  pfc_tick(interval, window);
}

void Switch::pfc_tick(sim::Time interval, sim::Time window) {
  if (!pfc_running_) return;
  // The pair of PFC frames consumes recirculation bandwidth; model them as
  // two minimum-size frames through the port with no delivery.
  Packet unpause;
  unpause.is_pfc = true;
  unpause.pfc_pause = false;
  recirc_port_.send(unpause, [this](Packet) { set_delay_queue_open(true); });
  sim_.after(window, [this] {
    Packet pause;
    pause.is_pfc = true;
    pause.pfc_pause = true;
    recirc_port_.send(pause,
                      [this](Packet) { set_delay_queue_open(false); });
  });
  sim_.after(interval, [this, interval, window] {
    pfc_tick(interval, window);
  });
}

}  // namespace lucid::pisa
