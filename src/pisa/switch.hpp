// The PISA switch hardware model (section 2.2): register arrays, a
// recirculation port with bandwidth accounting, front-panel ports, the
// traffic manager's pausable "delay queue", the packet generator that emits
// PFC pause/unpause pairs (section 3.2 "Implementing delay"), a multicast
// clone helper, and the management CPU latency model used by the
// remote-control baseline (section 7.4, Mantis).
//
// The switch is *mechanism only*: dispatch policy (what happens to a packet
// at ingress) is installed by the event scheduler (src/sched), mirroring the
// paper's layering where the scheduler library sits between the application
// and the hardware.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "pisa/packet.hpp"
#include "pisa/port.hpp"
#include "pisa/register_array.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace lucid::pisa {

struct SwitchConfig {
  int id = 0;
  double front_rate_gbps = 100.0;
  double recirc_rate_gbps = 100.0;
  /// One pass through the match-action pipeline.
  sim::Time pipeline_latency_ns = 400;
  /// Recirculation port serialization is modeled by the port itself; this is
  /// its fixed latency. A full recirculation loop costs roughly
  /// pipeline + recirc latency (~600 ns, matching the installation times in
  /// section 7.4).
  sim::Time recirc_latency_ns = 200;
};

/// Mantis-style management CPU: installing a rule from the switch CPU takes
/// at least 12 us with an average of 17.5 us (section 7.4).
struct ManagementCpu {
  sim::Time min_install_ns = 12 * sim::kUs;
  double mean_extra_ns = 5'500.0;

  [[nodiscard]] sim::Time sample_install(sim::Rng& rng) const {
    return min_install_ns +
           static_cast<sim::Time>(rng.exponential(mean_extra_ns));
  }
};

class Switch {
 public:
  Switch(sim::Simulator& sim, SwitchConfig config);
  ~Switch();

  [[nodiscard]] int id() const { return config_.id; }
  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] const SwitchConfig& config() const { return config_; }

  // ---- register state -----------------------------------------------------
  RegisterArray& add_array(const std::string& name, int width,
                           std::int64_t size);
  [[nodiscard]] RegisterArray* find_array(const std::string& name);

  // ---- packet paths ---------------------------------------------------------
  /// The scheduler installs the ingress dispatch function.
  void set_ingress(std::function<void(Packet)> fn) {
    ingress_ = std::move(fn);
  }

  /// External arrival at a front-panel port.
  void inject(Packet p);

  /// Egress -> recirculation port -> ingress. Counts recirc bandwidth.
  void recirculate(Packet p);

  /// Egress through a front-panel port towards the network fabric.
  void send_external(Packet p, std::function<void(Packet)> deliver);

  /// Multicast engine: clones `p` once per member id (clone ids 1..n),
  /// invoking `each` with (member, clone).
  void multicast(const Packet& p,
                 const std::function<void(std::int64_t, Packet)>& each);

  // ---- pausable delay queue (traffic manager + PFC) -------------------------
  void delay_enqueue(Packet p) {
    delay_queue_.push_back(std::move(p));
    m_queue_depth_->add(1);
  }
  [[nodiscard]] bool delay_queue_open() const { return delay_open_; }
  [[nodiscard]] std::size_t delay_queue_depth() const {
    return delay_queue_.size();
  }
  /// Opening drains every queued packet through the recirculation port.
  void set_delay_queue_open(bool open);

  /// Packet generator: emit a PFC (unpause, pause) pair every `interval`,
  /// holding the queue open for `window`. The PFC frames themselves consume
  /// recirculation-port bandwidth.
  void start_pfc_stream(sim::Time interval, sim::Time window);
  void stop_pfc_stream() { pfc_running_ = false; }

  // ---- control-plane pipeline occupancy ---------------------------------------
  /// Models a control-plane update commit occupying the MAU pipeline for
  /// `duration` ns: packets whose pipeline pass would complete while the
  /// commit is in flight are held (in the parser buffer) until it finishes.
  /// Consecutive stalls queue back-to-back rather than overlapping.
  void stall_pipeline(sim::Time duration);
  [[nodiscard]] sim::Time busy_until() const { return busy_until_; }
  [[nodiscard]] sim::Time stall_ns_total() const { return stall_ns_total_; }
  [[nodiscard]] std::uint64_t stalled_deliveries() const {
    return stalled_deliveries_;
  }

  // ---- stats ------------------------------------------------------------------
  [[nodiscard]] const PortStats& recirc_stats() const {
    return recirc_port_.stats();
  }
  [[nodiscard]] const PortStats& front_stats() const {
    return front_port_.stats();
  }
  [[nodiscard]] std::uint64_t recirculations() const {
    return recirculations_;
  }

  ManagementCpu& cpu() { return cpu_; }

 private:
  void pfc_tick(sim::Time interval, sim::Time window);
  void deliver_to_ingress(Packet p);
  /// `counted` is true on re-entry from a stall reschedule: the packet was
  /// already counted in stalled_deliveries_ and must not be counted again
  /// even if another commit extended busy_until_ while it waited.
  void finish_pipeline_pass(Packet p, bool counted = false);

  sim::Simulator& sim_;
  SwitchConfig config_;
  Port recirc_port_;
  Port front_port_;
  std::map<std::string, RegisterArray> arrays_;
  std::function<void(Packet)> ingress_;
  std::deque<Packet> delay_queue_;
  bool delay_open_ = false;
  bool pfc_running_ = false;
  ManagementCpu cpu_;
  std::uint64_t recirculations_ = 0;
  std::uint64_t next_uid_ = 1;
  sim::Time busy_until_ = 0;
  sim::Time stall_ns_total_ = 0;
  std::uint64_t stalled_deliveries_ = 0;
  // Process-wide instruments (obs registry), resolved in the constructor;
  // the destructor returns this switch's queued packets to the depth gauge.
  obs::Gauge* m_queue_depth_ = nullptr;
  obs::Counter* m_stall_ns_ = nullptr;
  obs::Counter* m_stalled_deliveries_ = nullptr;
};

}  // namespace lucid::pisa
