// Stage-local SRAM register arrays and the stateful-ALU access discipline:
// one read-modify-write per packet pass, on a single cell (section 2.4).
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace lucid::pisa {

class RegisterArray {
 public:
  RegisterArray() = default;
  RegisterArray(std::string name, int width_bits, std::int64_t size)
      : name_(std::move(name)),
        width_(width_bits),
        cells_(static_cast<std::size_t>(size), 0) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] std::int64_t size() const {
    return static_cast<std::int64_t>(cells_.size());
  }

  /// Values are truncated to the cell width, like hardware SRAM words.
  [[nodiscard]] std::int64_t get(std::int64_t index) const {
    return cells_[clamp(index)];
  }
  void set(std::int64_t index, std::int64_t value) {
    cells_[clamp(index)] = mask(value);
  }

  [[nodiscard]] std::int64_t mask(std::int64_t value) const {
    if (width_ >= 64) return value;
    const std::uint64_t m = (std::uint64_t{1} << width_) - 1;
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(value) & m);
  }

  /// Out-of-range indexes wrap (hardware indexes are width-masked; the apps
  /// always mask explicitly, this is the safety net).
  [[nodiscard]] std::size_t clamp(std::int64_t index) const {
    assert(!cells_.empty());
    const auto n = static_cast<std::int64_t>(cells_.size());
    std::int64_t i = index % n;
    if (i < 0) i += n;
    return static_cast<std::size_t>(i);
  }

  void fill(std::int64_t value) {
    for (auto& c : cells_) c = mask(value);
  }

  /// Raw cell storage for the native engine: generated modules read and
  /// write cells directly (they emit the same width-mask and index-clamp the
  /// accessors above apply). The pointer is stable for the array's lifetime.
  [[nodiscard]] std::int64_t* data() { return cells_.data(); }
  [[nodiscard]] const std::int64_t* data() const { return cells_.data(); }

 private:
  std::string name_;
  int width_ = 32;
  std::vector<std::int64_t> cells_;
};

}  // namespace lucid::pisa
