// The simulated packet: an event packet in parsed form. On the wire this is
// ethernet + lucid_event_h + the event's argument header (see the P4
// backend); the simulator keeps the parsed representation and models size
// for serialization/bandwidth purposes.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"

namespace lucid::pisa {

struct Packet {
  // Wire accounting.
  int size_bytes = 64;  // minimum frame; grows with argument payload

  // Lucid event metadata (mirrors lucid_event_h).
  int event_id = -1;
  std::vector<std::int64_t> args;
  std::int64_t location = -1;  // destination switch id; -1 = local
  bool multicast = false;
  std::vector<std::int64_t> mcast_members;

  // Delay bookkeeping: the event must not execute before `due_ns`.
  sim::Time created_ns = 0;
  sim::Time due_ns = 0;

  // PFC pause frames (queue control).
  bool is_pfc = false;
  bool pfc_pause = false;

  // Diagnostics.
  int recirc_count = 0;
  std::uint64_t uid = 0;

  /// Wire size including preamble + IFG overhead (Ethernet: 20 bytes).
  [[nodiscard]] int wire_bytes() const { return size_bytes + 20; }
};

}  // namespace lucid::pisa
