// Analytical models from section 7.3: the stateful firewall's worst-case
// recirculation rate on the idealized PISA processor, its pipeline
// utilization, and the minimum packet size that still sustains line rate on
// all front-panel ports (Figure 16).
#pragma once

#include <cmath>
#include <cstdint>

namespace lucid::model {

/// The idealized PISA platform of section 7.3: 1B packets/s pipeline serving
/// ten 100 Gb/s front-panel ports plus a 100 Gb/s recirculation port.
struct PisaPlatform {
  double pipeline_pps = 1e9;
  double front_panel_gbps = 1000.0;  // 10 x 100 Gb/s
  double baseline_min_pkt_bytes = 125.0;
};

struct SfwModelParams {
  double table_entries = 65536.0;  // N = 2^16
  double scan_interval_s = 0.1;    // i = 100 ms
  double flow_rate = 10'000.0;     // f, flows/s
};

struct SfwModelResult {
  double recirc_pps = 0;          // r = N/i + f*log2(N)
  double pipeline_utilization = 0;  // r / pipeline_pps
  double min_pkt_bytes = 0;       // to sustain all front-panel line rate
};

/// r = N/i + f*log2(N): the first term is the timeout scan, the second the
/// worst-case cuckoo installation chain (log N displacements per flow).
[[nodiscard]] inline SfwModelResult sfw_recirc_model(
    const SfwModelParams& p, const PisaPlatform& plat = {}) {
  SfwModelResult r;
  r.recirc_pps = p.table_entries / p.scan_interval_s +
                 p.flow_rate * std::log2(p.table_entries);
  r.pipeline_utilization = r.recirc_pps / plat.pipeline_pps;
  // Pipeline slots left for front-panel traffic after recirculation load:
  //   (front_gbps * 1e9 / (8 * min_bytes)) + r = pipeline_pps
  const double front_pps = plat.pipeline_pps - r.recirc_pps;
  r.min_pkt_bytes = plat.front_panel_gbps * 1e9 / (8.0 * front_pps);
  return r;
}

/// Section 2.5's serial link-scan example: a control packet recirculating
/// once per microsecond against the pipeline's packet budget.
struct ScanOverheadResult {
  double recirc_pps = 0;
  double pipeline_fraction = 0;
  double per_port_scan_interval_us = 0;
};

[[nodiscard]] inline ScanOverheadResult link_scan_overhead(
    double ports, double scan_step_us, const PisaPlatform& plat = {}) {
  ScanOverheadResult r;
  r.recirc_pps = 1e6 / scan_step_us;
  r.pipeline_fraction = r.recirc_pps / plat.pipeline_pps;
  r.per_port_scan_interval_us = ports * scan_step_us;
  return r;
}

}  // namespace lucid::model
