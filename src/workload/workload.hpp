// Synthetic workload generators. The paper's evaluation drives its switch
// with testbed traffic; we substitute seeded generators that exercise the
// same code paths: flow arrival processes (Poisson or constant-rate),
// per-flow packet trains, and bidirectional "outbound then return" traffic
// for the firewall experiments.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace lucid::workload {

struct Flow {
  std::int64_t id = 0;   // opaque flow key
  std::int64_t src = 0;
  std::int64_t dst = 0;
  int packets = 1;
  sim::Time start_ns = 0;
  sim::Time inter_packet_ns = 10 * sim::kUs;
};

struct FlowGenConfig {
  double flows_per_sec = 10'000;
  bool poisson = true;      // false = constant spacing
  int packets_per_flow = 4;
  sim::Time inter_packet_ns = 10 * sim::kUs;
  std::int64_t hosts = 256;  // src/dst drawn from [1, hosts]
};

/// Generates flow arrivals until `horizon`; calls `on_packet(flow, seq)` for
/// every packet of every flow (seq 0 is the flow's first packet).
class FlowGenerator {
 public:
  FlowGenerator(sim::Simulator& sim, FlowGenConfig config,
                std::uint64_t seed)
      : sim_(sim), config_(config), rng_(seed) {}

  using PacketFn = std::function<void(const Flow&, int seq)>;

  /// Schedules all arrivals now (events land on the simulator's queue).
  void start(sim::Time horizon, PacketFn on_packet);

  [[nodiscard]] std::uint64_t flows_emitted() const { return flows_; }

 private:
  sim::Simulator& sim_;
  FlowGenConfig config_;
  sim::Rng rng_;
  std::uint64_t flows_ = 0;
};

/// A fixed-size set of distinct flow keys (for table-load experiments, e.g.
/// the Fig 17 cuckoo benchmark's 640 flows into a 2048-slot table).
[[nodiscard]] std::vector<Flow> distinct_flows(int count, std::int64_t hosts,
                                               std::uint64_t seed);

}  // namespace lucid::workload
