#include "workload/workload.hpp"

#include <set>

namespace lucid::workload {

void FlowGenerator::start(sim::Time horizon, PacketFn on_packet) {
  sim::Time t = sim_.now();
  const double mean_gap_ns = 1e9 / config_.flows_per_sec;
  while (true) {
    const auto gap = static_cast<sim::Time>(
        config_.poisson ? rng_.exponential(mean_gap_ns) : mean_gap_ns);
    t += std::max<sim::Time>(gap, 1);
    if (t > horizon) break;
    Flow f;
    f.src = rng_.uniform(1, config_.hosts);
    f.dst = rng_.uniform(1, config_.hosts);
    f.id = static_cast<std::int64_t>(rng_.next_u32());
    f.packets = config_.packets_per_flow;
    f.start_ns = t;
    f.inter_packet_ns = config_.inter_packet_ns;
    ++flows_;
    for (int seq = 0; seq < f.packets; ++seq) {
      const sim::Time when = f.start_ns + seq * f.inter_packet_ns;
      sim_.at(when, [on_packet, f, seq] { on_packet(f, seq); });
    }
  }
}

std::vector<Flow> distinct_flows(int count, std::int64_t hosts,
                                 std::uint64_t seed) {
  sim::Rng rng(seed);
  std::set<std::int64_t> seen;
  std::vector<Flow> flows;
  flows.reserve(static_cast<std::size_t>(count));
  while (static_cast<int>(flows.size()) < count) {
    Flow f;
    f.src = rng.uniform(1, hosts);
    f.dst = rng.uniform(1, hosts);
    f.id = static_cast<std::int64_t>(rng.next_u32());
    if (!seen.insert(f.id).second) continue;
    flows.push_back(f);
  }
  return flows;
}

}  // namespace lucid::workload
