// The "interp" driver backend: binds a compilation to the interpreter.
//
// Emission produces a binding summary (events, handlers, arrays, memops)
// after validating that every handler has an event and every array is
// instantiable — the same preconditions interp::Runtime relies on. The
// artifact is the proof that `interp::Runtime(comp, scheduler)` will bind;
// actual execution needs a simulator/switch, which Testbed wires up.
#pragma once

#include "core/driver.hpp"

namespace lucid::interp {

/// Registers the "interp" backend with `registry`; false if already present.
bool register_backend(BackendRegistry& registry);

}  // namespace lucid::interp
