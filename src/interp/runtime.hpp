// The Lucid interpreter: executes a type-checked program's handlers against
// a simulated PISA switch. The paper's artifact ships an interpreter for
// exactly this purpose ("rapid prototyping and testing of data-plane
// applications without requiring access to the Tofino toolchain",
// Appendix D) — here it is also the engine behind the timing experiments,
// because handler execution is coupled to the event scheduler and the
// ns-resolution simulator.
//
// Semantics: one handler execution == one atomic pipeline pass. Array state
// lives in the switch's register arrays (width-masked). `generate` feeds the
// event scheduler, which serializes the event through the recirculation port
// or the fabric. Memops are applied in their canonicalized single-sALU form.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "sched/scheduler.hpp"

namespace lucid::interp {

using Value = std::int64_t;

struct RunStats {
  std::map<std::string, std::uint64_t> executions;
  std::map<std::string, std::uint64_t> generated;
  std::uint64_t total_executions = 0;
};

/// Deterministic 32-bit hash used by the `hash` builtin (stands in for the
/// Tofino's CRC hash units).
[[nodiscard]] std::uint32_t hash32(std::int64_t seed,
                                   const std::vector<Value>& args);

class Runtime {
 public:
  /// Binds a compilation (whose Lower stage must have succeeded) to a
  /// scheduler/switch: creates the register arrays and installs the handler
  /// executor. The Runtime shares ownership of the artifacts, so the
  /// CompilerDriver (and any Testbed that produced `comp`) may be destroyed
  /// while the Runtime keeps running.
  Runtime(ConstCompilationPtr comp, sched::EventScheduler& node);

  [[nodiscard]] const Compilation& compilation() const { return *comp_; }

  /// Injects an event by name (external arrival at this switch).
  void inject(const std::string& event, std::vector<Value> args,
              sim::Time delay_ns = 0, std::int64_t location = -1);

  [[nodiscard]] pisa::RegisterArray* array(const std::string& name) {
    return node_.node().find_array(name);
  }
  [[nodiscard]] const RunStats& stats() const { return stats_; }
  [[nodiscard]] sched::EventScheduler& node() { return node_; }

  /// Optional per-execution trace hook (event name, packet).
  void set_trace(
      std::function<void(const std::string&, const pisa::Packet&)> fn) {
    trace_ = std::move(fn);
  }

 private:
  struct EventValue {
    int event_id = -1;
    std::vector<Value> args;
    sim::Time delay_ns = 0;
    std::int64_t location = -1;
    bool multicast = false;
    std::vector<std::int64_t> members;
  };

  struct Val {
    Value i = 0;
    std::shared_ptr<EventValue> ev;
    [[nodiscard]] bool is_event() const { return ev != nullptr; }
  };

  using Frame = std::map<std::string, Val>;

  void execute(const pisa::Packet& p);

  Val eval(Frame& frame, const frontend::Expr& e);
  Val eval_call(Frame& frame, const frontend::CallExpr& c);
  /// Returns true if the block executed a `return`; the value (if any) lands
  /// in `*ret`.
  bool exec_block(Frame& frame, const frontend::Block& b, Val* ret);
  bool exec_stmt(Frame& frame, const frontend::Stmt& s, Val* ret);

  [[nodiscard]] Value memop_apply(const std::string& name, Value cell,
                                  Value arg) const;
  /// Resolves an array name through function-parameter aliases installed by
  /// UserFun calls.
  [[nodiscard]] pisa::RegisterArray* resolve_array(const std::string& name);

  ConstCompilationPtr comp_;
  sched::EventScheduler& node_;
  RunStats stats_;
  std::function<void(const std::string&, const pisa::Packet&)> trace_;
  std::map<int, const frontend::HandlerDecl*> handlers_by_id_;
  std::map<std::string, const frontend::EventDecl*> events_by_name_;
  std::map<std::string, std::string> array_alias_;
};

}  // namespace lucid::interp
