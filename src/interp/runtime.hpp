// The Lucid interpreter: executes a type-checked program's handlers against
// a simulated PISA switch. The paper's artifact ships an interpreter for
// exactly this purpose ("rapid prototyping and testing of data-plane
// applications without requiring access to the Tofino toolchain",
// Appendix D) — here it is also the engine behind the timing experiments,
// because handler execution is coupled to the event scheduler and the
// ns-resolution simulator.
//
// Semantics: one handler execution == one atomic pipeline pass. Array state
// lives in the switch's register arrays (width-masked). `generate` feeds the
// event scheduler, which serializes the event through the recirculation port
// or the fabric. Memops are applied in their canonicalized single-sALU form.
//
// The per-event hot path (inject → dispatch → handler body) uses dense-id
// and unordered lookups prebuilt at construction; the name-keyed RunStats
// view is materialized lazily from dense counters.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/driver.hpp"
#include "sched/scheduler.hpp"

namespace lucid::interp {

using Value = std::int64_t;

struct RunStats {
  std::map<std::string, std::uint64_t> executions;
  std::map<std::string, std::uint64_t> generated;
  std::uint64_t total_executions = 0;
};

/// Deterministic 32-bit hash used by the `hash` builtin (stands in for the
/// Tofino's CRC hash units).
[[nodiscard]] std::uint32_t hash32(std::int64_t seed,
                                   const std::vector<Value>& args);

class Runtime {
 public:
  /// Binds a compilation (whose Lower stage must have succeeded) to a
  /// scheduler/switch: creates the register arrays and installs the handler
  /// executor. The Runtime shares ownership of the artifacts, so the
  /// CompilerDriver (and any Testbed that produced `comp`) may be destroyed
  /// while the Runtime keeps running.
  Runtime(ConstCompilationPtr comp, sched::EventScheduler& node);

  [[nodiscard]] const Compilation& compilation() const { return *comp_; }

  /// Injects an event by name (external arrival at this switch through a
  /// front-panel port). Returns false — and injects nothing — if the event
  /// is unknown or the argument count does not match the declaration;
  /// arguments are masked to their declared widths like `EventCtor` does.
  bool inject(const std::string& event, std::vector<Value> args,
              sim::Time delay_ns = 0, std::int64_t location = -1);

  /// Injects an event from the control plane (src/ctrl): the packet enters
  /// through the recirculation port (switch-CPU path), not the wire. Same
  /// validation as inject().
  bool inject_control(const std::string& event, std::vector<Value> args,
                      sim::Time delay_ns = 0);

  /// Event-declaration lookup for control-plane validation: nullptr when
  /// the program declares no such event.
  [[nodiscard]] const frontend::EventDecl* find_event(
      const std::string& name) const;

  [[nodiscard]] pisa::RegisterArray* array(const std::string& name) {
    return node_.node().find_array(name);
  }
  /// Resolves an array name through function-parameter aliases installed by
  /// UserFun calls (between handler executions the alias map is empty, so
  /// control-plane callers see exactly the declared arrays).
  [[nodiscard]] pisa::RegisterArray* resolve_array(const std::string& name);

  [[nodiscard]] const RunStats& stats() const;
  [[nodiscard]] sched::EventScheduler& node() { return node_; }

  /// Optional per-execution trace hook (event name, packet).
  void set_trace(
      std::function<void(const std::string&, const pisa::Packet&)> fn) {
    trace_ = std::move(fn);
  }

 private:
  struct EventValue {
    int event_id = -1;
    std::vector<Value> args;
    sim::Time delay_ns = 0;
    std::int64_t location = -1;
    bool multicast = false;
    std::vector<std::int64_t> members;
  };

  struct Val {
    Value i = 0;
    std::shared_ptr<EventValue> ev;
    [[nodiscard]] bool is_event() const { return ev != nullptr; }
  };

  /// Handler-execution locals: a flat vector beats any tree/hash map at the
  /// handful of names a handler binds. Keys are string_views into AST-owned
  /// strings (the Runtime co-owns the Compilation, so they stay valid).
  class Frame {
   public:
    [[nodiscard]] Val& slot(std::string_view name) {
      for (auto& s : slots_) {
        if (s.name == name) return s.v;
      }
      slots_.push_back(Slot{name, Val{}});
      return slots_.back().v;
    }
    [[nodiscard]] const Val* find(std::string_view name) const {
      for (const auto& s : slots_) {
        if (s.name == name) return &s.v;
      }
      return nullptr;
    }

   private:
    struct Slot {
      std::string_view name;
      Val v;
    };
    std::vector<Slot> slots_;
  };

  void execute(const pisa::Packet& p);

  Val eval(Frame& frame, const frontend::Expr& e);
  Val eval_call(Frame& frame, const frontend::CallExpr& c);
  /// Returns true if the block executed a `return`; the value (if any) lands
  /// in `*ret`.
  bool exec_block(Frame& frame, const frontend::Block& b, Val* ret);
  bool exec_stmt(Frame& frame, const frontend::Stmt& s, Val* ret);

  [[nodiscard]] Value memop_apply(const std::string& name, Value cell,
                                  Value arg) const;
  /// Validates + width-masks an injected event; false on unknown name or
  /// arity mismatch.
  bool make_event(const std::string& event, std::vector<Value>& args,
                  sched::GenEvent* out) const;

  ConstCompilationPtr comp_;
  sched::EventScheduler& node_;
  std::function<void(const std::string&, const pisa::Packet&)> trace_;

  // Prebuilt hot-path lookups: dense by event id where an id exists,
  // unordered by name otherwise. The string_view keys point into AST/IR
  // strings owned via comp_.
  std::vector<const frontend::HandlerDecl*> handlers_by_id_;
  std::unordered_map<std::string_view, const frontend::EventDecl*>
      events_by_name_;
  std::unordered_map<std::string_view, const ir::MemopInfo*> memops_by_name_;
  std::unordered_map<std::string_view, const frontend::FunDecl*>
      funs_by_name_;
  std::unordered_map<std::string, std::string> array_alias_;

  // Dense per-event counters; the name-keyed RunStats view is rebuilt on
  // demand by stats().
  std::vector<std::uint64_t> exec_count_by_id_;
  std::vector<std::uint64_t> gen_count_by_id_;
  std::uint64_t total_executions_ = 0;
  mutable RunStats stats_;
};

}  // namespace lucid::interp
