#include "interp/testbed.hpp"

namespace lucid::interp {

Testbed::Testbed(const std::string& source, TestbedConfig config)
    : network_(sim_) {
  // The driver is deliberately scoped to this constructor: the Compilation
  // is ref-counted, so the runtimes keep the artifacts alive on their own.
  DriverOptions opts;
  opts.program_name = config.program_name;
  const CompilerDriver driver(std::move(opts));
  program_ = driver.run(source, Stage::Layout);
  if (!ok()) return;

  for (const int id : config.switch_ids) {
    pisa::SwitchConfig sc = config.switch_base;
    sc.id = id;
    switches_[id] = std::make_unique<pisa::Switch>(sim_, sc);
    scheds_[id] =
        std::make_unique<sched::EventScheduler>(*switches_[id], config.sched);
    runtimes_[id] = std::make_unique<Runtime>(program_, *scheds_[id]);
    network_.add_node(*scheds_[id]);
  }
  if (config.full_mesh) {
    for (std::size_t i = 0; i < config.switch_ids.size(); ++i) {
      for (std::size_t j = i + 1; j < config.switch_ids.size(); ++j) {
        network_.connect(config.switch_ids[i], config.switch_ids[j],
                         config.link_latency_ns);
      }
    }
  }
}

Runtime& Testbed::node(int id) { return *runtimes_.at(id); }
pisa::Switch& Testbed::switch_at(int id) { return *switches_.at(id); }
sched::EventScheduler& Testbed::sched_at(int id) { return *scheds_.at(id); }

void Testbed::inject_and_run(int id, const std::string& event,
                             std::vector<Value> args, sim::Time horizon) {
  node(id).inject(event, std::move(args));
  settle(horizon);
}

}  // namespace lucid::interp
