#include "interp/runtime.hpp"

#include "obs/trace.hpp"
#include "support/bits.hpp"
#include "support/hash.hpp"

namespace lucid::interp {

using namespace frontend;

std::uint32_t hash32(std::int64_t seed, const std::vector<Value>& args) {
  // The shared modeled hash (support/hash.hpp) — one definition across the
  // interpreter and the native engine so differential state tests hold.
  return support::model_hash32(seed, args);
}

namespace {

using support::mask_width;

Value memop_operand_value(const ir::Operand& o, Value cell, Value arg) {
  if (o.is_const()) return o.value;
  if (o.var == "cell") return cell;
  return arg;
}

bool cmp_eval(ir::CmpOp op, Value l, Value r) {
  switch (op) {
    case ir::CmpOp::Eq: return l == r;
    case ir::CmpOp::Ne: return l != r;
    case ir::CmpOp::Lt: return l < r;
    case ir::CmpOp::Gt: return l > r;
    case ir::CmpOp::Le: return l <= r;
    case ir::CmpOp::Ge: return l >= r;
  }
  return false;
}

Value binop_eval(BinOp op, Value l, Value r) {
  switch (op) {
    case BinOp::Add: return l + r;
    case BinOp::Sub: return l - r;
    case BinOp::Mul: return l * r;
    case BinOp::Div: return r == 0 ? 0 : l / r;
    case BinOp::Mod: return r == 0 ? 0 : l % r;
    case BinOp::BitAnd: return l & r;
    case BinOp::BitOr: return l | r;
    case BinOp::BitXor: return l ^ r;
    case BinOp::Shl: return l << (r & 63);
    case BinOp::Shr:
      return static_cast<Value>(static_cast<std::uint64_t>(l) >> (r & 63));
    case BinOp::Eq: return l == r ? 1 : 0;
    case BinOp::Ne: return l != r ? 1 : 0;
    case BinOp::Lt: return l < r ? 1 : 0;
    case BinOp::Gt: return l > r ? 1 : 0;
    case BinOp::Le: return l <= r ? 1 : 0;
    case BinOp::Ge: return l >= r ? 1 : 0;
    case BinOp::LAnd: return (l != 0 && r != 0) ? 1 : 0;
    case BinOp::LOr: return (l != 0 || r != 0) ? 1 : 0;
  }
  return 0;
}

}  // namespace

Runtime::Runtime(ConstCompilationPtr comp, sched::EventScheduler& node)
    : comp_(std::move(comp)), node_(node) {
  for (const auto& arr : comp_->ir().arrays) {
    node_.node().add_array(arr.name, arr.width, arr.size);
  }
  // Prebuild every per-event lookup the hot path needs: handlers dense by
  // event id, everything else hashed by name.
  handlers_by_id_.assign(comp_->ir().events.size(), nullptr);
  exec_count_by_id_.assign(comp_->ir().events.size(), 0);
  gen_count_by_id_.assign(comp_->ir().events.size(), 0);
  for (const auto& d : comp_->ast().decls) {
    if (d->kind == DeclKind::Handler) {
      const auto* ev = comp_->ast().find_event(d->name);
      if (ev != nullptr && ev->event_id >= 0 &&
          static_cast<std::size_t>(ev->event_id) < handlers_by_id_.size()) {
        handlers_by_id_[static_cast<std::size_t>(ev->event_id)] =
            d->as<HandlerDecl>();
      }
    } else if (d->kind == DeclKind::Event) {
      events_by_name_.emplace(d->name, d->as<EventDecl>());
    } else if (d->kind == DeclKind::Fun) {
      funs_by_name_.emplace(d->name, d->as<FunDecl>());
    }
  }
  for (const auto& mo : comp_->ir().memops) {
    memops_by_name_.emplace(mo.name, &mo);
  }
  node_.set_execute([this](const pisa::Packet& p) { execute(p); });
}

bool Runtime::make_event(const std::string& event, std::vector<Value>& args,
                         sched::GenEvent* out) const {
  const auto it = events_by_name_.find(std::string_view(event));
  if (it == events_by_name_.end()) return false;
  const EventDecl& ev = *it->second;
  if (args.size() != ev.params.size()) return false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    args[i] = mask_width(args[i], ev.params[i].type.width);
  }
  out->event_id = ev.event_id;
  out->args = std::move(args);
  return true;
}

bool Runtime::inject(const std::string& event, std::vector<Value> args,
                     sim::Time delay_ns, std::int64_t location) {
  sched::GenEvent ev;
  if (!make_event(event, args, &ev)) return false;
  ev.delay_ns = delay_ns;
  ev.location = location;
  node_.inject(std::move(ev));
  return true;
}

bool Runtime::inject_control(const std::string& event,
                             std::vector<Value> args, sim::Time delay_ns) {
  sched::GenEvent ev;
  if (!make_event(event, args, &ev)) return false;
  ev.delay_ns = delay_ns;
  node_.inject_control(std::move(ev));
  return true;
}

const frontend::EventDecl* Runtime::find_event(
    const std::string& name) const {
  const auto it = events_by_name_.find(std::string_view(name));
  return it == events_by_name_.end() ? nullptr : it->second;
}

const RunStats& Runtime::stats() const {
  // Materialize the name-keyed view from the dense per-event counters (only
  // names that actually occurred, matching the historical map behavior).
  stats_.executions.clear();
  stats_.generated.clear();
  stats_.total_executions = total_executions_;
  const auto& events = comp_->ir().events;
  for (std::size_t id = 0; id < events.size(); ++id) {
    if (exec_count_by_id_[id] != 0) {
      stats_.executions[events[id].name] = exec_count_by_id_[id];
    }
    if (gen_count_by_id_[id] != 0) {
      stats_.generated[events[id].name] = gen_count_by_id_[id];
    }
  }
  return stats_;
}

Value Runtime::memop_apply(const std::string& name, Value cell,
                           Value arg) const {
  if (name.empty()) return arg;  // identity write
  const auto it = memops_by_name_.find(std::string_view(name));
  if (it == memops_by_name_.end()) return arg;
  const ir::MemopInfo* mo = it->second;
  const bool take_then =
      !mo->has_condition ||
      cmp_eval(mo->cond_op, memop_operand_value(mo->cond_lhs, cell, arg),
               memop_operand_value(mo->cond_rhs, cell, arg));
  const ir::Operand& lhs = take_then ? mo->then_lhs : mo->else_lhs;
  const auto& op = take_then ? mo->then_op : mo->else_op;
  const ir::Operand& rhs = take_then ? mo->then_rhs : mo->else_rhs;
  Value out = memop_operand_value(lhs, cell, arg);
  if (op) out = binop_eval(*op, out, memop_operand_value(rhs, cell, arg));
  return out;
}

pisa::RegisterArray* Runtime::resolve_array(const std::string& name) {
  std::string actual = name;
  // Follow (possibly nested) function-parameter aliases.
  for (int depth = 0; depth < 8; ++depth) {
    const auto it = array_alias_.find(actual);
    if (it == array_alias_.end()) break;
    actual = it->second;
  }
  return array(actual);
}

void Runtime::execute(const pisa::Packet& p) {
  const HandlerDecl* h_ptr =
      p.event_id >= 0 &&
              static_cast<std::size_t>(p.event_id) < handlers_by_id_.size()
          ? handlers_by_id_[static_cast<std::size_t>(p.event_id)]
          : nullptr;
  if (h_ptr == nullptr) return;
  const HandlerDecl& h = *h_ptr;
  ++total_executions_;
  ++exec_count_by_id_[static_cast<std::size_t>(p.event_id)];
  if (trace_) trace_(h.name, p);
  // Sampled span around handler execution (one relaxed load when tracing is
  // off). The span only reads the wall clock and writes the tracer's own
  // rings — no effect on register state or event order (tests/test_obs.cpp).
  obs::ScopedSpan span("interp", h.name);

  Frame frame;
  for (std::size_t i = 0; i < h.params.size(); ++i) {
    Val v;
    v.i = i < p.args.size()
              ? mask_width(p.args[i], h.params[i].type.width)
              : 0;
    frame.slot(h.params[i].name) = std::move(v);
  }
  Val ret;
  (void)exec_block(frame, h.body, &ret);
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

bool Runtime::exec_block(Frame& frame, const Block& b, Val* ret) {
  for (const auto& s : b) {
    if (exec_stmt(frame, *s, ret)) return true;
  }
  return false;
}

bool Runtime::exec_stmt(Frame& frame, const Stmt& s, Val* ret) {
  switch (s.kind) {
    case StmtKind::LocalDecl: {
      const auto* d = s.as<LocalDeclStmt>();
      Val v = eval(frame, *d->init);
      if (!v.is_event() && d->declared_type.is_int()) {
        v.i = mask_width(v.i, d->declared_type.width);
      }
      frame.slot(d->name) = std::move(v);
      return false;
    }
    case StmtKind::Assign: {
      const auto* a = s.as<AssignStmt>();
      Val v = eval(frame, *a->value);
      frame.slot(a->name) = std::move(v);
      return false;
    }
    case StmtKind::If: {
      const auto* i = s.as<IfStmt>();
      const Val c = eval(frame, *i->cond);
      return exec_block(frame, c.i != 0 ? i->then_block : i->else_block,
                        ret);
    }
    case StmtKind::ExprStmt:
      (void)eval(frame, *s.as<ExprStmt>()->expr);
      return false;
    case StmtKind::Generate: {
      const auto* g = s.as<GenerateStmt>();
      const Val v = eval(frame, *g->event);
      if (!v.is_event()) return false;
      sched::GenEvent ev;
      ev.event_id = v.ev->event_id;
      ev.args = v.ev->args;
      ev.delay_ns = v.ev->delay_ns;
      ev.location = v.ev->location;
      ev.multicast = v.ev->multicast || g->multicast;
      ev.members = v.ev->members;
      if (ev.event_id >= 0 &&
          static_cast<std::size_t>(ev.event_id) < gen_count_by_id_.size()) {
        ++gen_count_by_id_[static_cast<std::size_t>(ev.event_id)];
      }
      node_.generate(std::move(ev));
      return false;
    }
    case StmtKind::Return:
      if (const auto* r = s.as<ReturnStmt>(); r->value && ret) {
        *ret = eval(frame, *r->value);
      }
      return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Runtime::Val Runtime::eval(Frame& frame, const Expr& e) {
  switch (e.kind) {
    case ExprKind::IntLit: {
      Val v;
      v.i = static_cast<Value>(e.as<IntLitExpr>()->value);
      return v;
    }
    case ExprKind::BoolLit: {
      Val v;
      v.i = e.as<BoolLitExpr>()->value ? 1 : 0;
      return v;
    }
    case ExprKind::VarRef: {
      const auto* r = e.as<VarRefExpr>();
      Val v;
      if (r->is_const) {
        v.i = r->const_value;
        return v;
      }
      if (r->name == "SELF") {
        v.i = node_.self();
        return v;
      }
      if (const Val* found = frame.find(r->name)) return *found;
      return v;
    }
    case ExprKind::Unary: {
      const auto* u = e.as<UnaryExpr>();
      Val s = eval(frame, *u->sub);
      switch (u->op) {
        case UnOp::Neg: s.i = -s.i; break;
        case UnOp::BitNot:
          s.i = mask_width(~s.i, e.type.width);
          break;
        case UnOp::Not: s.i = s.i == 0 ? 1 : 0; break;
      }
      return s;
    }
    case ExprKind::Binary: {
      const auto* b = e.as<BinaryExpr>();
      // Short-circuit for logical operators.
      if (b->op == BinOp::LAnd) {
        Val l = eval(frame, *b->lhs);
        if (l.i == 0) return l;
        return eval(frame, *b->rhs);
      }
      if (b->op == BinOp::LOr) {
        Val l = eval(frame, *b->lhs);
        if (l.i != 0) return l;
        return eval(frame, *b->rhs);
      }
      const Val l = eval(frame, *b->lhs);
      const Val r = eval(frame, *b->rhs);
      Val out;
      out.i = binop_eval(b->op, l.i, r.i);
      if (e.type.is_int()) out.i = mask_width(out.i, e.type.width);
      return out;
    }
    case ExprKind::Call:
      return eval_call(frame, *e.as<CallExpr>());
  }
  return {};
}

Runtime::Val Runtime::eval_call(Frame& frame, const CallExpr& c) {
  auto int_arg = [&](std::size_t i) { return eval(frame, *c.args[i]).i; };

  switch (c.resolved) {
    case CallKind::ArrayGet:
    case CallKind::ArrayGetm: {
      const auto& arr_name = c.args[0]->as<VarRefExpr>()->name;
      pisa::RegisterArray* arr = resolve_array(arr_name);
      Val out;
      if (arr == nullptr) return out;
      const Value idx = int_arg(1);
      const Value cell = arr->get(idx);
      if (c.args.size() == 4) {
        out.i = arr->mask(memop_apply(c.args[2]->as<VarRefExpr>()->name,
                                      cell, int_arg(3)));
      } else {
        out.i = cell;
      }
      return out;
    }
    case CallKind::ArraySet:
    case CallKind::ArraySetm: {
      const auto& arr_name = c.args[0]->as<VarRefExpr>()->name;
      pisa::RegisterArray* arr = resolve_array(arr_name);
      if (arr == nullptr) return {};
      const Value idx = int_arg(1);
      if (c.args.size() == 3) {
        arr->set(idx, int_arg(2));
      } else {
        const Value cell = arr->get(idx);
        arr->set(idx, memop_apply(c.args[2]->as<VarRefExpr>()->name, cell,
                                  int_arg(3)));
      }
      return {};
    }
    case CallKind::ArrayUpdate: {
      const auto& arr_name = c.args[0]->as<VarRefExpr>()->name;
      pisa::RegisterArray* arr = resolve_array(arr_name);
      Val out;
      if (arr == nullptr) return out;
      const Value idx = int_arg(1);
      const Value old = arr->get(idx);
      const Value garg = int_arg(3);
      const Value sarg = int_arg(5);
      out.i = arr->mask(
          memop_apply(c.args[2]->as<VarRefExpr>()->name, old, garg));
      arr->set(idx, memop_apply(c.args[4]->as<VarRefExpr>()->name, old,
                                sarg));
      return out;
    }
    case CallKind::Hash: {
      std::vector<Value> args;
      for (std::size_t i = 1; i < c.args.size(); ++i) {
        args.push_back(int_arg(i));
      }
      Val out;
      out.i = static_cast<Value>(hash32(int_arg(0), args));
      return out;
    }
    case CallKind::SysTime: {
      Val out;
      out.i = mask_width(node_.node().sim().now(), 32);
      return out;
    }
    case CallKind::SysSelf: {
      Val out;
      out.i = node_.self();
      return out;
    }
    case CallKind::UserFun: {
      const auto fit = funs_by_name_.find(std::string_view(c.callee));
      if (fit == funs_by_name_.end()) return {};
      const FunDecl* f = fit->second;
      Frame inner;
      for (std::size_t i = 0; i < f->params.size() && i < c.args.size();
           ++i) {
        if (f->params[i].type.kind == TypeKind::Array) {
          // Array parameters are passed by name: rebind via an event-free
          // Val holding nothing; Array ops resolve through the argument's
          // VarRef name directly. To support helpers, substitute textually:
          // store the referenced array name in the frame.
          Val v;
          v.i = 0;
          inner.slot(f->params[i].name) = std::move(v);
          array_alias_[f->params[i].name] =
              c.args[i]->as<VarRefExpr>()->name;
        } else {
          Val v = eval(frame, *c.args[i]);
          if (f->params[i].type.is_int()) {
            v.i = mask_width(v.i, f->params[i].type.width);
          }
          inner.slot(f->params[i].name) = std::move(v);
        }
      }
      Val ret;
      (void)exec_block(inner, f->body, &ret);
      for (const auto& p : f->params) {
        if (p.type.kind == TypeKind::Array) array_alias_.erase(p.name);
      }
      return ret;
    }
    case CallKind::EventCtor: {
      Val out;
      out.ev = std::make_shared<EventValue>();
      const auto eit = events_by_name_.find(std::string_view(c.callee));
      const EventDecl* ev =
          eit == events_by_name_.end() ? nullptr : eit->second;
      out.ev->event_id = ev ? ev->event_id : -1;
      for (std::size_t i = 0; i < c.args.size(); ++i) {
        Value a = int_arg(i);
        if (ev && i < ev->params.size()) {
          a = mask_width(a, ev->params[i].type.width);
        }
        out.ev->args.push_back(a);
      }
      return out;
    }
    case CallKind::EventDelay: {
      Val inner = eval(frame, *c.args[0]);
      if (inner.is_event()) inner.ev->delay_ns = int_arg(1);
      return inner;
    }
    case CallKind::EventLocate: {
      Val inner = eval(frame, *c.args[0]);
      if (!inner.is_event()) return inner;
      const Expr& loc = *c.args[1];
      if (loc.kind == ExprKind::VarRef && loc.as<VarRefExpr>()->is_group) {
        inner.ev->multicast = true;
        for (const auto& g : comp_->ir().groups) {
          if (g.name == loc.as<VarRefExpr>()->name) {
            inner.ev->members = g.members;
          }
        }
      } else {
        inner.ev->location = eval(frame, loc).i;
      }
      return inner;
    }
    case CallKind::Unresolved:
      return {};
  }
  return {};
}

}  // namespace lucid::interp
