// Testbed-in-a-box: compiles one Lucid program and deploys it on a set of
// simulated switches joined by a network fabric — the standard harness for
// integration tests, examples, and the timing benches.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "interp/runtime.hpp"
#include "net/network.hpp"

namespace lucid::interp {

struct TestbedConfig {
  /// Name stamped on emitted artifacts (DriverOptions::program_name).
  std::string program_name = "program";
  std::vector<int> switch_ids = {1};
  sched::SchedulerConfig sched;
  pisa::SwitchConfig switch_base;  // id is overwritten per switch
  /// Full mesh with this per-hop latency unless links are added manually.
  sim::Time link_latency_ns = sim::kUs;
  bool full_mesh = true;
};

class Testbed {
 public:
  /// Compiles `source` through the staged CompilerDriver (aborting the test
  /// on failure is the caller's job: check `ok()`), then instantiates one
  /// switch + scheduler + runtime per id and wires the fabric.
  Testbed(const std::string& source, TestbedConfig config = {});

  [[nodiscard]] bool ok() const {
    return program_ != nullptr && program_->ok() &&
           program_->succeeded(Stage::Layout);
  }
  [[nodiscard]] std::string diagnostics() const {
    return program_ != nullptr ? program_->diags().render() : std::string();
  }
  /// The shared compilation artifact. Runtimes co-own it, so it outlives
  /// the Testbed if a Runtime (or the caller) keeps the pointer.
  [[nodiscard]] const Compilation& compilation() const { return *program_; }
  [[nodiscard]] CompilationPtr compilation_ptr() const { return program_; }

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] Runtime& node(int id);
  [[nodiscard]] pisa::Switch& switch_at(int id);
  [[nodiscard]] sched::EventScheduler& sched_at(int id);

  /// Convenience: inject at a node and run for `horizon` of virtual time
  /// (the PFC pause stream ticks forever, so "run to quiescence" never
  /// returns; a bounded horizon is the natural way to settle a testbed).
  void inject_and_run(int id, const std::string& event,
                      std::vector<Value> args,
                      sim::Time horizon = 10 * sim::kMs);

  /// Runs the fabric for `horizon` more virtual time.
  void settle(sim::Time horizon = 10 * sim::kMs) {
    sim_.run_until(sim_.now() + horizon);
  }

 private:
  CompilationPtr program_;
  sim::Simulator sim_;
  net::Network network_;
  std::map<int, std::unique_ptr<pisa::Switch>> switches_;
  std::map<int, std::unique_ptr<sched::EventScheduler>> scheds_;
  std::map<int, std::unique_ptr<Runtime>> runtimes_;
};

}  // namespace lucid::interp
