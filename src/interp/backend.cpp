#include "interp/backend.hpp"

#include <memory>
#include <sstream>

namespace lucid::interp {

namespace {

class InterpBackend final : public Backend {
 public:
  [[nodiscard]] std::string name() const override { return "interp"; }
  [[nodiscard]] std::string description() const override {
    return "binds the compilation to the event-driven interpreter";
  }
  // The interpreter executes the annotated AST with IR metadata (memops,
  // event ids, groups); it does not need the physical layout.
  [[nodiscard]] Stage required_stage() const override { return Stage::Lower; }

  [[nodiscard]] BackendArtifact emit(Compilation& comp) override {
    BackendArtifact artifact;
    artifact.backend = name();

    const auto& ir = comp.ir();
    const auto& ast = comp.ast();
    bool bindable = true;
    std::ostringstream os;
    os << "interp binding for " << comp.options().program_name << "\n";
    os << "  events:\n";
    for (const auto& ev : ir.events) {
      os << "    " << ev.name << " (id " << ev.event_id << ", "
         << ev.params.size() << " args)"
         << (ev.has_handler ? "" : "  [no handler]") << "\n";
    }
    os << "  arrays:\n";
    for (const auto& arr : ir.arrays) {
      os << "    " << arr.name << " : int<<" << arr.width << ">>["
         << arr.size << "]\n";
      if (arr.size <= 0) {
        comp.diags().error({}, "interp-bad-array",
                           "array '" + arr.name +
                               "' has non-positive size; cannot instantiate");
        bindable = false;
      }
    }
    artifact.metrics["events"] = static_cast<std::int64_t>(ir.events.size());
    artifact.metrics["arrays"] = static_cast<std::int64_t>(ir.arrays.size());
    artifact.metrics["handlers"] =
        static_cast<std::int64_t>(ast.handlers().size());
    artifact.metrics["memops"] = static_cast<std::int64_t>(ir.memops.size());
    os << (bindable ? "ready: construct interp::Runtime with this Compilation"
                    : "NOT bindable")
       << "\n";
    artifact.text = os.str();
    artifact.ok = bindable;
    return artifact;
  }
};

}  // namespace

bool register_backend(BackendRegistry& registry) {
  return registry.add(std::make_unique<InterpBackend>());
}

}  // namespace lucid::interp
