// Multi-switch fabric: switches joined by links with propagation delay.
// Event packets located at another switch traverse one link (~1 us per hop,
// section 2.1) and enter the destination's ingress like any other packet.
#pragma once

#include <map>
#include <memory>

#include "sched/scheduler.hpp"

namespace lucid::net {

class Network {
 public:
  explicit Network(sim::Simulator& sim) : sim_(sim) {}

  /// Registers a node; the network installs itself as the scheduler's
  /// net-send hook.
  void add_node(sched::EventScheduler& node);

  /// Bidirectional link with the given one-way latency.
  void connect(int a, int b, sim::Time latency_ns = sim::kUs);

  [[nodiscard]] sched::EventScheduler* node(int id) {
    const auto it = nodes_.find(id);
    return it == nodes_.end() ? nullptr : it->second;
  }

  [[nodiscard]] sim::Time link_latency(int a, int b) const;
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  void carry(int from, pisa::Packet p);

  sim::Simulator& sim_;
  std::map<int, sched::EventScheduler*> nodes_;
  std::map<std::pair<int, int>, sim::Time> links_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace lucid::net
