#include "net/network.hpp"

namespace lucid::net {

void Network::add_node(sched::EventScheduler& node) {
  const int id = node.self();
  nodes_[id] = &node;
  node.set_net_send([this, id](pisa::Packet p) { carry(id, std::move(p)); });
}

void Network::connect(int a, int b, sim::Time latency_ns) {
  links_[{a, b}] = latency_ns;
  links_[{b, a}] = latency_ns;
}

sim::Time Network::link_latency(int a, int b) const {
  const auto it = links_.find({a, b});
  // Unconnected pairs still deliver (flat fabric) at the default hop cost.
  return it == links_.end() ? sim::kUs : it->second;
}

void Network::carry(int from, pisa::Packet p) {
  const int dest = static_cast<int>(p.location);
  const auto it = nodes_.find(dest);
  if (it == nodes_.end()) {
    ++dropped_;
    return;
  }
  const sim::Time lat = link_latency(from, dest);
  sched::EventScheduler* node = it->second;
  sim_.after(lat, [this, node, p = std::move(p)]() mutable {
    ++delivered_;
    node->inject_packet(std::move(p));
  });
}

}  // namespace lucid::net
