// Seedable random utilities for workloads and latency models. Everything is
// mt19937_64-based so benches are reproducible run to run.
#pragma once

#include <cstdint>
#include <random>

namespace lucid::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi].
  [[nodiscard]] std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() {
    std::uniform_real_distribution<double> d(0.0, 1.0);
    return d(engine_);
  }

  /// Exponential with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) {
    std::exponential_distribution<double> d(1.0 / mean);
    return d(engine_);
  }

  /// Random 32-bit value.
  [[nodiscard]] std::uint32_t next_u32() {
    return static_cast<std::uint32_t>(engine_());
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace lucid::sim
