#include "sim/simulator.hpp"

#include <utility>

namespace lucid::sim {

void Simulator::at(Time t, Callback cb) {
  if (t < now_) t = now_;
  queue_.push(Entry{t, seq_++, std::move(cb)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the callback must be moved out via
  // a copy of the entry before pop.
  Entry e = queue_.top();
  queue_.pop();
  now_ = e.t;
  e.cb();
  return true;
}

void Simulator::run_until(Time t) {
  while (!queue_.empty() && queue_.top().t <= t) {
    step();
  }
  if (now_ < t) now_ = t;
}

void Simulator::run(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!step()) return;
  }
}

}  // namespace lucid::sim
