// Discrete-event simulation core: a nanosecond-resolution virtual clock and
// an ordered event queue. Every timing experiment in the reproduction (event
// scheduler accuracy, recirculation bandwidth, flow-installation latency)
// runs on this substrate.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace lucid::sim {

/// Simulation time in nanoseconds.
using Time = std::int64_t;

constexpr Time kNs = 1;
constexpr Time kUs = 1'000;
constexpr Time kMs = 1'000'000;
constexpr Time kSec = 1'000'000'000;

/// A single-threaded discrete-event scheduler. Callbacks scheduled for the
/// same instant run in FIFO order (stable by sequence number), which keeps
/// every simulation deterministic.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute time `t` (clamped to `now()`).
  void at(Time t, Callback cb);
  /// Schedule `cb` `delta` ns from now.
  void after(Time delta, Callback cb) { at(now_ + delta, std::move(cb)); }

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Runs one event; returns false when the queue is empty.
  bool step();
  /// Runs all events with time <= t; the clock ends at exactly t.
  void run_until(Time t);
  /// Runs to quiescence (or until `max_events` fire — a runaway guard).
  void run(std::uint64_t max_events = 100'000'000);

 private:
  struct Entry {
    Time t;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace lucid::sim
