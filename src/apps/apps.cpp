#include "apps/apps.hpp"

#include <cstdlib>

namespace lucid::apps {

namespace {

// ---------------------------------------------------------------------------
// SFW — Stateful Firewall (section 7.4). Cuckoo hash table with two banks
// and a stash; control events install entries (flow setup, recirculating on
// collisions) and scan for timed-out flows (maintenance).
// ---------------------------------------------------------------------------
const char* kSfw = R"~(
// Stateful firewall: blocks inbound connections not initiated from inside.
// The flow table is a 2-bank cuckoo hash; install collisions trigger
// recursive cuckoo_insert events (one recirculation each), and a timed scan
// deletes idle entries.
const int TBL = 1024;   // two banks x 1024 = the paper's 2048-entry table
const int MASK = 1023;
const int TIMEOUT = 100000000;   // 100 ms idle timeout (ns)
const int MAX_DEPTH = 8;         // cuckoo chain bound
const int SCAN_GAP = 1000000;    // 1 ms between scan steps

global key1 = new Array<<32>>(TBL);
global ts1 = new Array<<32>>(TBL);
global key2 = new Array<<32>>(TBL);
global ts2 = new Array<<32>>(TBL);
global stash = new Array<<32>>(4);
global allowed = new Array<<32>>(1);
global denied = new Array<<32>>(1);
global failures = new Array<<32>>(1);

memop mget(int cur, int x) { return cur; }
memop mset(int cur, int x) { return x; }
memop plus(int cur, int x) { return cur + x; }
// One-shot claim: take the slot if empty, else keep the occupant.
memop claim(int cur, int x) {
  if (cur == 0) { return x; } else { return cur; }
}

// Flow keys are never zero (zero means "empty slot").
fun int flowkey(int src, int dst) { return hash(77, src, dst) | 1; }

event pkt_out(int src, int dst);
event pkt_in(int src, int dst);
event cuckoo_insert(int key, int depth);
event scan1(int idx);
event scan2(int idx);
event del1(int idx);
event del2(int idx);

// Outbound packet: refresh or install the flow. The claim memop makes the
// common case (slot free or already ours) install in this very pass —
// an effective flow installation time of 0 ns.
handle pkt_out(int src, int dst) {
  int k = flowkey(src, dst);
  int i1 = hash(1, k) & MASK;
  int i2 = hash(2, k) & MASK;
  int now = Sys.time();
  int v1 = Array.update(key1, i1, mget, 0, claim, k);
  if (v1 == 0 || v1 == k) {
    Array.set(ts1, i1, now);
  } else {
    int v2 = Array.update(key2, i2, mget, 0, claim, k);
    if (v2 == 0 || v2 == k) {
      Array.set(ts2, i2, now);
    } else {
      // Both banks occupied by other flows: hand off to the cuckoo chain.
      generate cuckoo_insert(k, 0);
    }
  }
}

// Cuckoo install: displace bank-1's occupant, re-home it in bank 2, and
// recurse (one recirculation per displaced victim). The victim-in-flight
// lives in the stash so lookups stay correct during the chain.
handle cuckoo_insert(int key, int depth) {
  if (depth > MAX_DEPTH) {
    Array.set(failures, 0, plus, 1);
    return;
  }
  int i1 = hash(1, key) & MASK;
  int v1 = Array.update(key1, i1, mget, 0, mset, key);
  if (v1 != 0 && v1 != key) {
    int i2 = hash(2, v1) & MASK;
    int v2 = Array.update(key2, i2, mget, 0, mset, v1);
    if (v2 != 0 && v2 != v1) {
      Array.set(stash, 0, v2);
      generate cuckoo_insert(v2, depth + 1);
    }
  }
}

// Inbound packet: allowed only if the (reversed) flow is in either bank or
// the stash.
handle pkt_in(int src, int dst) {
  int k = flowkey(dst, src);
  int i1 = hash(1, k) & MASK;
  int i2 = hash(2, k) & MASK;
  int v1 = Array.get(key1, i1);
  int v2 = Array.get(key2, i2);
  int s = Array.get(stash, 0);
  if (v1 == k || v2 == k || s == k) {
    Array.set(allowed, 0, plus, 1);
  } else {
    Array.set(denied, 0, plus, 1);
  }
}

// Maintenance thread: serially scan bank 1 for idle entries, one slot per
// (delayed) recirculation.
handle scan1(int idx) {
  int now = Sys.time();
  int t = Array.get(ts1, idx);
  int age = now - t;
  if (t != 0 && age > TIMEOUT) {
    generate del1(idx);
  }
  generate Event.delay(scan1((idx + 1) & MASK), SCAN_GAP);
}

handle del1(int idx) {
  Array.set(key1, idx, 0);
  Array.set(ts1, idx, 0);
}

handle scan2(int idx) {
  int now = Sys.time();
  int t = Array.get(ts2, idx);
  int age = now - t;
  if (t != 0 && age > TIMEOUT) {
    generate del2(idx);
  }
  generate Event.delay(scan2((idx + 1) & MASK), SCAN_GAP);
}

handle del2(int idx) {
  Array.set(key2, idx, 0);
  Array.set(ts2, idx, 0);
}
)~";

// ---------------------------------------------------------------------------
// RR — Fast Rerouter (section 2). Forwarding with link-liveness checks;
// control events probe neighbors and run distributed route queries.
// ---------------------------------------------------------------------------
const char* kRr = R"~(
// Fast rerouter: forward packets while probing links and rerouting around
// failures entirely in the data plane (the paper's driving example).
const int INF = 1000000;
const int STALE = 50000000;     // link considered dead after 50 ms silence
const int PROBE_GAP = 10000000; // probe / scan cadence: 10 ms
const int RTBL = 64;
const int RMASK = 63;
const int LMASK = 15;
const group NEIGHBORS = {2, 3};

global pathlens = new Array<<32>>(RTBL);
global nexthops = new Array<<32>>(RTBL);
global linkstate = new Array<<32>>(16);
global fwd_count = new Array<<32>>(1);
global drop_count = new Array<<32>>(1);

memop mget(int cur, int x) { return cur; }
memop plus(int cur, int x) { return cur + x; }
memop minarg(int cur, int x) {
  if (x < cur) { return x; } else { return cur; }
}

event pkt(int dst);
event route_query(int sender, int dst);
event route_reply(int sender, int dst, int pathlen);
event check_route(int idx);
event probe(int sender);
event probe_reply(int sender);
event probe_timer(int x);
event boot(int v);

fun int get_pathlen(int dst) { return Array.get(pathlens, dst & RMASK); }

// Initialize path lengths to infinity (cells boot as zero).
handle boot(int v) {
  // One cell per boot event; the driver sweeps the table.
  Array.set(pathlens, v & RMASK, INF);
}

// Forwarding: look up the next hop, then check that its link is alive; a
// dead link triggers a distributed route query to all neighbors.
handle pkt(int dst) {
  int nh = Array.get(nexthops, dst & RMASK);
  int ls = Array.get(linkstate, nh & LMASK);
  int now = Sys.time();
  int age = now - ls;
  if (age > STALE) {
    Array.set(drop_count, 0, plus, 1);
    mgenerate Event.locate(route_query(SELF, dst), NEIGHBORS);
  } else {
    Array.set(fwd_count, 0, plus, 1);
  }
}

// A neighbor asks for our path length to dst.
handle route_query(int sender, int dst) {
  int pathlen = get_pathlen(dst);
  event reply = route_reply(SELF, dst, pathlen);
  generate Event.locate(reply, sender);
}

// Adopt strictly better routes.
handle route_reply(int sender, int dst, int pathlen) {
  int cand = pathlen + 1;
  int old = Array.update(pathlens, dst & RMASK, mget, 0, minarg, cand);
  if (cand < old) {
    Array.set(nexthops, dst & RMASK, sender);
  }
}

// Maintenance thread: periodically re-query unreachable destinations.
handle check_route(int idx) {
  int pl = get_pathlen(idx);
  if (pl >= INF) {
    mgenerate Event.locate(route_query(SELF, idx), NEIGHBORS);
  }
  generate Event.delay(check_route((idx + 1) & RMASK), PROBE_GAP);
}

// Fault detection: ping all neighbors; replies refresh the link table.
handle probe(int sender) {
  generate Event.locate(probe_reply(SELF), sender);
}

handle probe_reply(int sender) {
  int now = Sys.time();
  Array.set(linkstate, sender & LMASK, now);
}

handle probe_timer(int x) {
  mgenerate Event.locate(probe(SELF), NEIGHBORS);
  generate Event.delay(probe_timer(x), PROBE_GAP);
}
)~";

// ---------------------------------------------------------------------------
// DNS — Closed-loop DNS reflection defense. Count-min sketch detects
// amplification victims; rotating two-bank Bloom filters block them; control
// events age both structures.
// ---------------------------------------------------------------------------
const char* kDns = R"~(
// Closed-loop DNS defense: a count-min sketch estimates per-victim DNS query
// rates; suspected reflection victims are added to a rotating Bloom filter
// that blocks the corresponding responses. Aging events sweep both
// structures so stale state expires without control-plane help.
const int SK = 1024;
const int SKMASK = 1023;
const int BF = 2048;
const int BFMASK = 2047;
const int THRESH = 100;       // queries per epoch before flagging
const int AGE_GAP = 1000000;  // 1 ms between aging steps
const int COLLECTOR = 9;

global active_bank = new Array<<32>>(1);
global cm0 = new Array<<32>>(SK);
global cm1 = new Array<<32>>(SK);
global cm2 = new Array<<32>>(SK);
global bfa0 = new Array<<32>>(BF);
global bfa1 = new Array<<32>>(BF);
global bfb0 = new Array<<32>>(BF);
global bfb1 = new Array<<32>>(BF);
global passed = new Array<<32>>(1);
global blocked = new Array<<32>>(1);
global reports = new Array<<32>>(1);

memop mget(int cur, int x) { return cur; }
memop mset(int cur, int x) { return x; }
memop plus(int cur, int x) { return cur + x; }
memop flip(int cur, int x) { return cur ^ x; }

event dns_req(int src, int dst, int qid);
event dns_resp(int src, int dst, int qid);
event age_step(int idx);
event decay_step(int idx);
event swap_banks(int x);
event report(int victim, int count);

// Query path: count queries whose *source* (the spoofed victim) is getting
// amplified; flag heavy hitters in the active Bloom bank.
handle dns_req(int src, int dst, int qid) {
  int bank = Array.get(active_bank, 0);
  int h0 = hash(10, src) & SKMASK;
  int h1 = hash(11, src) & SKMASK;
  int h2 = hash(12, src) & SKMASK;
  int c0 = Array.update(cm0, h0, plus, 1, plus, 1);
  int c1 = Array.update(cm1, h1, plus, 1, plus, 1);
  int c2 = Array.update(cm2, h2, plus, 1, plus, 1);
  // min(c0,c1,c2) > THRESH, phrased as per-row tests: the comparisons run
  // in parallel and become match rules instead of a sequential min chain.
  if (c0 > THRESH && c1 > THRESH && c2 > THRESH) {
    int b0 = hash(20, src) & BFMASK;
    int b1 = hash(21, src) & BFMASK;
    if (bank == 0) {
      Array.set(bfa0, b0, 1);
      Array.set(bfa1, b1, 1);
    } else {
      Array.set(bfb0, b0, 1);
      Array.set(bfb1, b1, 1);
    }
    generate Event.locate(report(src, c0), COLLECTOR);
  }
}

// Response path: drop responses addressed to flagged victims (either bank
// may hold fresh state during rotation).
handle dns_resp(int src, int dst, int qid) {
  int b0 = hash(20, dst) & BFMASK;
  int b1 = hash(21, dst) & BFMASK;
  int a0 = Array.get(bfa0, b0);
  int a1 = Array.get(bfa1, b1);
  int v0 = Array.get(bfb0, b0);
  int v1 = Array.get(bfb1, b1);
  bool hit_a = a0 == 1 && a1 == 1;
  bool hit_b = v0 == 1 && v1 == 1;
  if (hit_a || hit_b) {
    Array.set(blocked, 0, plus, 1);
  } else {
    Array.set(passed, 0, plus, 1);
  }
}

// Bloom rotation: clear the inactive bank one slot per delayed step; when a
// sweep completes, swap banks.
handle age_step(int idx) {
  int bank = Array.get(active_bank, 0);
  if (bank == 0) {
    Array.set(bfb0, idx, 0);
    Array.set(bfb1, idx, 0);
  } else {
    Array.set(bfa0, idx, 0);
    Array.set(bfa1, idx, 0);
  }
  int next = (idx + 1) & BFMASK;
  if (next == 0) {
    generate swap_banks(0);
  }
  generate Event.delay(age_step(next), AGE_GAP);
}

// Sketch decay: zero the count-min rows one index per delayed step.
handle decay_step(int idx) {
  Array.set(cm0, idx, 0);
  Array.set(cm1, idx, 0);
  Array.set(cm2, idx, 0);
  generate Event.delay(decay_step((idx + 1) & SKMASK), AGE_GAP);
}

handle swap_banks(int x) {
  Array.setm(active_bank, 0, flip, 1);
}

// Collector-side accounting of flag reports.
handle report(int victim, int count) {
  Array.set(reports, 0, plus, 1);
}
)~";

// ---------------------------------------------------------------------------
// *Flow — telemetry cache: batch per-flow records in the data plane and
// export full batches to a software collector (control events evict and
// free cache lines).
// ---------------------------------------------------------------------------
const char* kStarFlow = R"~(
// *Flow-style telemetry cache: group per-packet features into per-flow
// batches ("grouped packet vectors"); full batches are evicted to a
// collector, amortizing PCIe/collector cost across a batch.
const int FT = 1024;
const int FTMASK = 1023;
const int COLLECTOR = 9;

global ft_key = new Array<<32>>(FT);
global ft_cnt = new Array<<32>>(FT);
global buf0 = new Array<<32>>(FT);
global buf1 = new Array<<32>>(FT);
global buf2 = new Array<<32>>(FT);
global buf3 = new Array<<32>>(FT);
global evicted = new Array<<32>>(1);
global collisions = new Array<<32>>(1);
global exported = new Array<<32>>(1);

memop mget(int cur, int x) { return cur; }
memop mset(int cur, int x) { return x; }
memop plus(int cur, int x) { return cur + x; }
memop claim(int cur, int x) {
  if (cur == 0) { return x; } else { return cur; }
}

event pkt(int flowid, int feature);
event evict(int idx, int flowid);
event evict_fin(int idx);
event export_rec(int flowid, int f0, int f1, int f2, int f3);

// Per packet: claim (or match) a cache line, append the feature to the
// line's batch, and evict when the batch is full.
handle pkt(int flowid, int feature) {
  int idx = hash(30, flowid) & FTMASK;
  int owner = Array.update(ft_key, idx, mget, 0, claim, flowid);
  if (owner == 0 || owner == flowid) {
    int cnt = Array.update(ft_cnt, idx, mget, 0, plus, 1);
    if (cnt == 0) { Array.set(buf0, idx, feature); }
    if (cnt == 1) { Array.set(buf1, idx, feature); }
    if (cnt == 2) { Array.set(buf2, idx, feature); }
    if (cnt == 3) {
      Array.set(buf3, idx, feature);
      generate evict(idx, flowid);
    }
  } else {
    // Line owned by another flow: record is sampled away.
    Array.set(collisions, 0, plus, 1);
  }
}

// Eviction: read-and-clear the batch slots, ship the record, then free the
// line in a second pass (the line key lives earlier in the pipeline).
handle evict(int idx, int flowid) {
  int f0 = Array.update(buf0, idx, mget, 0, mset, 0);
  int f1 = Array.update(buf1, idx, mget, 0, mset, 0);
  int f2 = Array.update(buf2, idx, mget, 0, mset, 0);
  int f3 = Array.update(buf3, idx, mget, 0, mset, 0);
  Array.set(evicted, 0, plus, 1);
  generate Event.locate(export_rec(flowid, f0, f1, f2, f3), COLLECTOR);
  generate evict_fin(idx);
}

// Memory management: free the cache line (key + count) for reuse.
handle evict_fin(int idx) {
  Array.set(ft_key, idx, 0);
  Array.set(ft_cnt, idx, 0);
}

// Collector side: count exported batch records.
handle export_rec(int flowid, int f0, int f1, int f2, int f3) {
  Array.set(exported, 0, plus, 1);
}
)~";

// ---------------------------------------------------------------------------
// SRO — strongly consistent replicated arrays (SwiShmem-style): writes get
// sequence numbers and synchronize to peers; stale syncs are ignored.
// ---------------------------------------------------------------------------
const char* kSro = R"~(
// Consistent shared state: a replicated array where writes carry per-cell
// sequence numbers. Sync events propagate writes to all replicas; a replica
// applies a sync only if its sequence number is newer, and acks the writer.
const int N = 256;
const int NMASK = 255;
const group PEERS = {2, 3};

global seqs = new Array<<32>>(N);
global vals = new Array<<32>>(N);
global acks = new Array<<32>>(1);
global reads_served = new Array<<32>>(1);

memop mget(int cur, int x) { return cur; }
memop plus(int cur, int x) { return cur + x; }
memop maxm(int cur, int x) {
  if (cur < x) { return x; } else { return cur; }
}

event write(int idx, int val);
event sync(int src, int idx, int val, int seq);
event ack(int src, int idx, int seq);
event read(int idx);

// Local write: bump the cell's sequence number, apply, and replicate.
handle write(int idx, int val) {
  int i = idx & NMASK;
  int s = Array.update(seqs, i, plus, 1, plus, 1);
  Array.set(vals, i, val);
  mgenerate Event.locate(sync(SELF, i, val, s), PEERS);
}

// Replica side: newest sequence number wins; always ack so the writer can
// track quorum.
handle sync(int src, int idx, int val, int seq) {
  int old = Array.update(seqs, idx, mget, 0, maxm, seq);
  if (seq > old) {
    Array.set(vals, idx, val);
  }
  generate Event.locate(ack(SELF, idx, seq), src);
}

handle ack(int src, int idx, int seq) {
  Array.set(acks, 0, plus, 1);
}

handle read(int idx) {
  int v = Array.get(vals, idx & NMASK);
  Array.set(reads_served, 0, plus, 1);
}
)~";

// ---------------------------------------------------------------------------
// DFW — distributed probabilistic firewall: a Bloom filter of authorized
// flows, replicated across ingress switches by sync events.
// ---------------------------------------------------------------------------
const char* kDfw = R"~(
// Distributed Bloom-filter firewall: outbound flows are added to a local
// Bloom filter and synchronized to peer switches, so return traffic is
// admitted at any ingress.
const int BF = 4096;
const int BFM = 4095;
const group PEERS = {2, 3};

global bf0 = new Array<<32>>(BF);
global bf1 = new Array<<32>>(BF);
global allowed = new Array<<32>>(1);
global denied = new Array<<32>>(1);

memop plus(int cur, int x) { return cur + x; }

event pkt_out(int src, int dst);
event pkt_in(int src, int dst);
event sync_add(int h0, int h1);

handle pkt_out(int src, int dst) {
  int h0 = hash(40, src, dst) & BFM;
  int h1 = hash(41, src, dst) & BFM;
  Array.set(bf0, h0, 1);
  Array.set(bf1, h1, 1);
  mgenerate Event.locate(sync_add(h0, h1), PEERS);
}

handle sync_add(int h0, int h1) {
  Array.set(bf0, h0, 1);
  Array.set(bf1, h1, 1);
}

handle pkt_in(int src, int dst) {
  int h0 = hash(40, dst, src) & BFM;
  int h1 = hash(41, dst, src) & BFM;
  int b0 = Array.get(bf0, h0);
  int b1 = Array.get(bf1, h1);
  if (b0 == 1 && b1 == 1) {
    Array.set(allowed, 0, plus, 1);
  } else {
    Array.set(denied, 0, plus, 1);
  }
}
)~";

// ---------------------------------------------------------------------------
// DFW(a) — the distributed firewall plus aging: two Bloom banks rotate so
// stale authorizations expire.
// ---------------------------------------------------------------------------
const char* kDfwAging = R"~(
// Distributed Bloom firewall with aging: authorizations land in the active
// bank, lookups check both banks, and a timed sweep clears + swaps banks so
// old flows expire without a controller.
const int BF = 4096;
const int BFM = 4095;
const int AGE_GAP = 1000000;  // 1 ms between sweep steps
const group PEERS = {2, 3};

global active_bank = new Array<<32>>(1);
global bfa0 = new Array<<32>>(BF);
global bfa1 = new Array<<32>>(BF);
global bfb0 = new Array<<32>>(BF);
global bfb1 = new Array<<32>>(BF);
global allowed = new Array<<32>>(1);
global denied = new Array<<32>>(1);

memop plus(int cur, int x) { return cur + x; }
memop flip(int cur, int x) { return cur ^ x; }

event pkt_out(int src, int dst);
event pkt_in(int src, int dst);
event sync_add(int h0, int h1);
event age_step(int idx);
event swap_banks(int x);

handle pkt_out(int src, int dst) {
  int bank = Array.get(active_bank, 0);
  int h0 = hash(40, src, dst) & BFM;
  int h1 = hash(41, src, dst) & BFM;
  if (bank == 0) {
    Array.set(bfa0, h0, 1);
    Array.set(bfa1, h1, 1);
  } else {
    Array.set(bfb0, h0, 1);
    Array.set(bfb1, h1, 1);
  }
  mgenerate Event.locate(sync_add(h0, h1), PEERS);
}

// Peer syncs land in the active bank too.
handle sync_add(int h0, int h1) {
  int bank = Array.get(active_bank, 0);
  if (bank == 0) {
    Array.set(bfa0, h0, 1);
    Array.set(bfa1, h1, 1);
  } else {
    Array.set(bfb0, h0, 1);
    Array.set(bfb1, h1, 1);
  }
}

handle pkt_in(int src, int dst) {
  int h0 = hash(40, dst, src) & BFM;
  int h1 = hash(41, dst, src) & BFM;
  int a0 = Array.get(bfa0, h0);
  int a1 = Array.get(bfa1, h1);
  int v0 = Array.get(bfb0, h0);
  int v1 = Array.get(bfb1, h1);
  bool hit_a = a0 == 1 && a1 == 1;
  bool hit_b = v0 == 1 && v1 == 1;
  if (hit_a || hit_b) {
    Array.set(allowed, 0, plus, 1);
  } else {
    Array.set(denied, 0, plus, 1);
  }
}

// Aging sweep over the inactive bank; swap when the sweep wraps.
handle age_step(int idx) {
  int bank = Array.get(active_bank, 0);
  if (bank == 0) {
    Array.set(bfb0, idx, 0);
    Array.set(bfb1, idx, 0);
  } else {
    Array.set(bfa0, idx, 0);
    Array.set(bfa1, idx, 0);
  }
  int next = (idx + 1) & BFM;
  if (next == 0) {
    generate swap_banks(0);
  }
  generate Event.delay(age_step(next), AGE_GAP);
}

handle swap_banks(int x) {
  Array.setm(active_bank, 0, flip, 1);
}
)~";

// ---------------------------------------------------------------------------
// RIP — single-destination distance-vector routing: advertisements flood on
// improvement and on a periodic timer.
// ---------------------------------------------------------------------------
const char* kRip = R"~(
// Single-destination RIP: each switch tracks its distance to one
// destination; advertisements from neighbors relax the distance
// (Bellman-Ford style) and improvements propagate immediately.
const int INF = 1000000;
const int ADV_GAP = 50000000;  // periodic re-advertisement: 50 ms
const group NEIGHBORS = {2, 3};

global dist = new Array<<32>>(1);
global nexthop = new Array<<32>>(1);
global fwd = new Array<<32>>(1);
global expired = new Array<<32>>(1);

memop mget(int cur, int x) { return cur; }
memop plus(int cur, int x) { return cur + x; }
memop minm(int cur, int x) {
  if (x < cur) { return x; } else { return cur; }
}

event boot(int d);
event advertise(int sender, int d);
event adv_timer(int x);
event pkt(int ttl);

// The destination boots with distance 0; everyone else with INF.
handle boot(int d) {
  Array.set(dist, 0, d);
}

// Relax on a neighbor's advertisement; flood further on improvement.
handle advertise(int sender, int d) {
  int cand = d + 1;
  int old = Array.update(dist, 0, mget, 0, minm, cand);
  if (cand < old) {
    Array.set(nexthop, 0, sender);
    mgenerate Event.locate(advertise(SELF, cand), NEIGHBORS);
  }
}

// Periodic re-advertisement (recovers lost updates, feeds new switches).
handle adv_timer(int x) {
  int d = Array.get(dist, 0);
  if (d < INF) {
    mgenerate Event.locate(advertise(SELF, d), NEIGHBORS);
  }
  generate Event.delay(adv_timer(x), ADV_GAP);
}

// Data path: forward while a route exists.
handle pkt(int ttl) {
  int nh = Array.get(nexthop, 0);
  if (ttl > 0 && nh != 0) {
    Array.set(fwd, 0, plus, 1);
  } else {
    Array.set(expired, 0, plus, 1);
  }
}
)~";

// ---------------------------------------------------------------------------
// NAT — basic address translation with data-plane port allocation.
// ---------------------------------------------------------------------------
const char* kNat = R"~(
// Simple NAT: the first outbound packet of a flow claims a mapping slot and
// allocates the next external port, entirely in the data plane.
const int NT = 1024;
const int NTM = 1023;

global nat_key = new Array<<32>>(NT);
global next_port = new Array<<32>>(1);
global rev_key = new Array<<32>>(NT);
global translated = new Array<<32>>(1);
global dropped = new Array<<32>>(1);

memop mget(int cur, int x) { return cur; }
memop plus(int cur, int x) { return cur + x; }
memop claim(int cur, int x) {
  if (cur == 0) { return x; } else { return cur; }
}

event pkt_out(int src, int sport);
event pkt_in(int dport);

handle pkt_out(int src, int sport) {
  int k = hash(50, src, sport) | 1;
  int i = k & NTM;
  int owner = Array.update(nat_key, i, mget, 0, claim, k);
  if (owner == 0) {
    int p = Array.update(next_port, 0, mget, 0, plus, 1);
    Array.set(rev_key, p & NTM, k);
  }
  Array.set(translated, 0, plus, 1);
}

handle pkt_in(int dport) {
  int k = Array.get(rev_key, dport & NTM);
  if (k == 0) {
    Array.set(dropped, 0, plus, 1);
  } else {
    Array.set(translated, 0, plus, 1);
  }
}
)~";

// ---------------------------------------------------------------------------
// CM — count-min sketch with periodic export for historical queries.
// ---------------------------------------------------------------------------
const char* kCm = R"~(
// Historical probabilistic queries: a count-min sketch measures flows; a
// timed export thread read-and-clears one column per step and ships nonzero
// columns to a collector, giving per-epoch history.
const int SK = 1024;
const int SKM = 1023;
const int EXPORT_GAP = 1000000;  // 1 ms per exported column
const int COLLECTOR = 9;

global cm0 = new Array<<32>>(SK);
global cm1 = new Array<<32>>(SK);
global cm2 = new Array<<32>>(SK);
global exports = new Array<<32>>(1);
global queries = new Array<<32>>(1);
global reports = new Array<<32>>(1);

memop mget(int cur, int x) { return cur; }
memop mset(int cur, int x) { return x; }
memop plus(int cur, int x) { return cur + x; }

event pkt(int flowid);
event export_step(int idx);
event report(int idx, int c0, int c1, int c2);
event query(int flowid);

handle pkt(int flowid) {
  int h0 = hash(60, flowid) & SKM;
  int h1 = hash(61, flowid) & SKM;
  int h2 = hash(62, flowid) & SKM;
  Array.set(cm0, h0, plus, 1);
  Array.set(cm1, h1, plus, 1);
  Array.set(cm2, h2, plus, 1);
}

// Export thread: read-and-clear one column per delayed recirculation.
handle export_step(int idx) {
  int c0 = Array.update(cm0, idx, mget, 0, mset, 0);
  int c1 = Array.update(cm1, idx, mget, 0, mset, 0);
  int c2 = Array.update(cm2, idx, mget, 0, mset, 0);
  if (c0 != 0 || c1 != 0 || c2 != 0) {
    generate Event.locate(report(idx, c0, c1, c2), COLLECTOR);
  }
  Array.set(exports, 0, plus, 1);
  generate Event.delay(export_step((idx + 1) & SKM), EXPORT_GAP);
}

// Live estimate for a flow (min over rows).
handle query(int flowid) {
  int h0 = hash(60, flowid) & SKM;
  int h1 = hash(61, flowid) & SKM;
  int h2 = hash(62, flowid) & SKM;
  int c0 = Array.get(cm0, h0);
  int c1 = Array.get(cm1, h1);
  int c2 = Array.get(cm2, h2);
  int est = c0;
  if (c1 < est) { est = c1; }
  if (c2 < est) { est = c2; }
  Array.set(queries, 0, plus, 1);
}

handle report(int idx, int c0, int c1, int c2) {
  Array.set(reports, 0, plus, 1);
}
)~";

std::vector<AppSpec> build_apps() {
  std::vector<AppSpec> apps;

  apps.push_back(AppSpec{
      "SFW", "Stateful Firewall",
      "Blocks connections not initiated by trusted hosts. Control events "
      "update a cuckoo hash table.",
      kSfw, 189, 2267, 10,
      /*maintenance=*/true, /*flow_setup=*/true, /*state_sync=*/false});

  apps.push_back(AppSpec{
      "RR", "Fast Rerouter",
      "Forwards packets, identifies failures, and routes. Control events "
      "perform fault detection and routing.",
      kRr, 115, 899, 8,
      true, true, false});

  apps.push_back(AppSpec{
      "DNS", "Closed-loop DNS Defense",
      "Detects/blocks DNS reflection attacks with sketches & Bloom filters. "
      "Control events age data structures.",
      kDns, 215, 1874, 10,
      true, false, false});

  apps.push_back(AppSpec{
      "StarFlow", "*Flow Telemetry Cache",
      "Batches packet tuples by flow to accelerate analytics. Control "
      "events allocate memory.",
      kStarFlow, 149, 1927, 12,
      false, true, false});

  apps.push_back(AppSpec{
      "SRO", "Consistent Shared State",
      "Strongly consistent distributed arrays. Control events synchronize "
      "writes.",
      kSro, 94, 897, 11,
      false, false, true});

  apps.push_back(AppSpec{
      "DFW", "Distributed Prob. Firewall",
      "Distributed Bloom filter firewall. Control events sync updates.",
      kDfw, 66, 1073, 10,
      false, false, true});

  apps.push_back(AppSpec{
      "DFWA", "Distributed Prob. Firewall + Aging",
      "Adds control events for aging the Bloom filter banks.",
      kDfwAging, 119, 1595, 10,
      true, false, true});

  apps.push_back(AppSpec{
      "RIP", "Single-dest. RIP",
      "Routing with the classic Route Information Protocol. Control events "
      "distribute routes.",
      kRip, 81, 764, 8,
      true, false, false});

  apps.push_back(AppSpec{
      "NAT", "Simple NAT",
      "Basic network address translation. Control events buffer packets "
      "and install entries.",
      kNat, 41, 707, 11,
      false, true, false});

  apps.push_back(AppSpec{
      "CM", "Historical Prob. Queries",
      "Measures flows with sketches for historical queries. Control events "
      "age and export state periodically.",
      kCm, 93, 856, 5,
      true, false, false});

  return apps;
}

}  // namespace

const std::vector<AppSpec>& all_apps() {
  static const std::vector<AppSpec> apps = build_apps();
  return apps;
}

const AppSpec& app(const std::string& key) {
  for (const auto& a : all_apps()) {
    if (a.key == key) return a;
  }
  std::abort();  // unknown key is a programming error in callers
}

}  // namespace lucid::apps
