// The ten data-plane applications of Figure 9, written in this repository's
// Lucid dialect. Each AppSpec carries the source, the paper's reference
// numbers (Lucid LoC / P4 LoC / Tofino stages) for the Figure 9/10/12/13
// comparisons, and its recirculation classes for Figure 15.
#pragma once

#include <string>
#include <vector>

namespace lucid::apps {

struct AppSpec {
  std::string key;          // short id: "SFW", "RR", ...
  std::string title;        // paper row name
  std::string description;  // what it does; control events in **bold** roles
  std::string source;       // Lucid program

  // Paper's Figure 9 reference values.
  int paper_lucid_loc = 0;
  int paper_p4_loc = 0;
  int paper_stages = 0;

  // Figure 15 recirculation classes.
  bool recirc_maintenance = false;
  bool recirc_flow_setup = false;
  bool recirc_state_sync = false;
};

/// All ten applications, in Figure 9 order.
[[nodiscard]] const std::vector<AppSpec>& all_apps();

/// Lookup by key; aborts on unknown key (programming error).
[[nodiscard]] const AppSpec& app(const std::string& key);

}  // namespace lucid::apps
