#include "frontend/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace lucid::frontend {

namespace {

const std::unordered_map<std::string_view, TokenKind>& keyword_table() {
  static const std::unordered_map<std::string_view, TokenKind> table = {
      {"const", TokenKind::KwConst},     {"global", TokenKind::KwGlobal},
      {"memop", TokenKind::KwMemop},     {"fun", TokenKind::KwFun},
      {"event", TokenKind::KwEvent},     {"handle", TokenKind::KwHandle},
      {"group", TokenKind::KwGroup},     {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},       {"return", TokenKind::KwReturn},
      {"generate", TokenKind::KwGenerate},
      {"mgenerate", TokenKind::KwMGenerate},
      {"int", TokenKind::KwInt},         {"bool", TokenKind::KwBool},
      {"void", TokenKind::KwVoid},       {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},     {"new", TokenKind::KwNew},
  };
  return table;
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

char Lexer::advance() {
  const char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

Token Lexer::make(TokenKind kind, SrcLoc start, std::string text) const {
  Token t;
  t.kind = kind;
  t.text = std::move(text);
  t.range = SrcRange{start, here()};
  return t;
}

void Lexer::skip_trivia() {
  while (!at_end()) {
    const char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (!at_end() && peek() != '\n') advance();
    } else if (c == '/' && peek(1) == '*') {
      const SrcLoc start = here();
      advance();
      advance();
      bool closed = false;
      while (!at_end()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          closed = true;
          break;
        }
        advance();
      }
      if (!closed) {
        diags_.error(SrcRange{start, here()}, "lex-unterminated-comment",
                     "unterminated block comment");
      }
    } else {
      return;
    }
  }
}

Token Lexer::lex_number(SrcLoc start) {
  std::string text;
  std::uint64_t value = 0;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    text += advance();
    text += advance();
    while (std::isxdigit(static_cast<unsigned char>(peek()))) {
      const char c = advance();
      text += c;
      value = value * 16 +
              static_cast<std::uint64_t>(
                  std::isdigit(static_cast<unsigned char>(c))
                      ? c - '0'
                      : std::tolower(static_cast<unsigned char>(c)) - 'a' + 10);
    }
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      const char c = advance();
      text += c;
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
  }

  // Time-literal suffixes: ns / us / ms / s. The token value is nanoseconds,
  // which is the unit of the whole simulation substrate.
  bool is_time = false;
  const char c0 = peek();
  const char c1 = peek(1);
  auto take_suffix = [&](std::string_view sfx, std::uint64_t scale) {
    for (char sc : sfx) {
      (void)sc;
      text += advance();
    }
    value *= scale;
    is_time = true;
  };
  if (c0 == 'n' && c1 == 's' && !is_ident_char(peek(2))) {
    take_suffix("ns", 1);
  } else if (c0 == 'u' && c1 == 's' && !is_ident_char(peek(2))) {
    take_suffix("us", 1'000);
  } else if (c0 == 'm' && c1 == 's' && !is_ident_char(peek(2))) {
    take_suffix("ms", 1'000'000);
  } else if (c0 == 's' && !is_ident_char(peek(1))) {
    take_suffix("s", 1'000'000'000);
  } else if (is_ident_start(c0)) {
    diags_.error(SrcRange{start, here()}, "lex-bad-number-suffix",
                 "invalid suffix on integer literal");
  }

  Token t = make(TokenKind::IntLit, start, std::move(text));
  t.int_value = value;
  t.is_time = is_time;
  return t;
}

Token Lexer::lex_ident_or_keyword(SrcLoc start) {
  std::string text;
  while (is_ident_char(peek())) text += advance();
  const auto& kws = keyword_table();
  if (const auto it = kws.find(text); it != kws.end()) {
    return make(it->second, start, std::move(text));
  }
  return make(TokenKind::Ident, start, std::move(text));
}

Token Lexer::lex_operator(SrcLoc start) {
  const char c = advance();
  switch (c) {
    case '(': return make(TokenKind::LParen, start);
    case ')': return make(TokenKind::RParen, start);
    case '{': return make(TokenKind::LBrace, start);
    case '}': return make(TokenKind::RBrace, start);
    case '[': return make(TokenKind::LBracket, start);
    case ']': return make(TokenKind::RBracket, start);
    case ';': return make(TokenKind::Semi, start);
    case ',': return make(TokenKind::Comma, start);
    case '.': return make(TokenKind::Dot, start);
    case '+': return make(TokenKind::Plus, start);
    case '-': return make(TokenKind::Minus, start);
    case '*': return make(TokenKind::Star, start);
    case '/': return make(TokenKind::Slash, start);
    case '%': return make(TokenKind::Percent, start);
    case '~': return make(TokenKind::Tilde, start);
    case '^': return make(TokenKind::Caret, start);
    case '&':
      if (peek() == '&') {
        advance();
        return make(TokenKind::AmpAmp, start);
      }
      return make(TokenKind::Amp, start);
    case '|':
      if (peek() == '|') {
        advance();
        return make(TokenKind::PipePipe, start);
      }
      return make(TokenKind::Pipe, start);
    case '=':
      if (peek() == '=') {
        advance();
        return make(TokenKind::EqEq, start);
      }
      return make(TokenKind::Assign, start);
    case '!':
      if (peek() == '=') {
        advance();
        return make(TokenKind::NotEq, start);
      }
      return make(TokenKind::Bang, start);
    case '<':
      if (peek() == '<') {
        advance();
        return make(TokenKind::Shl, start);
      }
      if (peek() == '=') {
        advance();
        return make(TokenKind::Le, start);
      }
      return make(TokenKind::Lt, start);
    case '>':
      if (peek() == '>') {
        advance();
        return make(TokenKind::Shr, start);
      }
      if (peek() == '=') {
        advance();
        return make(TokenKind::Ge, start);
      }
      return make(TokenKind::Gt, start);
    default:
      diags_.error(SrcRange{start, here()}, "lex-bad-char",
                   std::string("unexpected character '") + c + "'");
      return make(TokenKind::Eof, start);
  }
}

std::vector<Token> Lexer::lex_all() {
  std::vector<Token> out;
  while (true) {
    skip_trivia();
    if (at_end()) {
      out.push_back(make(TokenKind::Eof, here()));
      return out;
    }
    const SrcLoc start = here();
    const char c = peek();
    if (std::isdigit(static_cast<unsigned char>(c))) {
      out.push_back(lex_number(start));
    } else if (is_ident_start(c)) {
      out.push_back(lex_ident_or_keyword(start));
    } else {
      Token t = lex_operator(start);
      if (t.kind != TokenKind::Eof) out.push_back(std::move(t));
    }
  }
}

}  // namespace lucid::frontend
