// Token definitions for the Lucid dialect accepted by this compiler.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/source_location.hpp"

namespace lucid::frontend {

enum class TokenKind {
  // Literals and identifiers.
  Eof,
  Ident,
  IntLit,   // 42, 0x1f, and time literals 10ms / 100us / 5s / 250ns
  // Keywords.
  KwConst,
  KwGlobal,
  KwMemop,
  KwFun,
  KwEvent,
  KwHandle,
  KwGroup,
  KwIf,
  KwElse,
  KwReturn,
  KwGenerate,
  KwMGenerate,
  KwInt,
  KwBool,
  KwVoid,
  KwTrue,
  KwFalse,
  KwNew,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Dot,
  Assign,  // =
  // Operators.
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Bang,
  Shl,  // <<  (also opens Array<<32>> width brackets)
  Shr,  // >>
  EqEq,
  NotEq,
  Lt,
  Gt,
  Le,
  Ge,
  AmpAmp,
  PipePipe,
};

[[nodiscard]] std::string_view token_kind_name(TokenKind k);

struct Token {
  TokenKind kind = TokenKind::Eof;
  std::string text;          // raw text (identifier spelling, literal text)
  std::uint64_t int_value = 0;  // for IntLit; time literals are in nanoseconds
  bool is_time = false;         // true when the literal had a time suffix
  SrcRange range;

  [[nodiscard]] bool is(TokenKind k) const { return kind == k; }
  [[nodiscard]] std::string str() const {
    return std::string(token_kind_name(kind)) +
           (text.empty() ? "" : "(" + text + ")");
  }
};

}  // namespace lucid::frontend
