// Recursive-descent parser for the Lucid dialect.
//
// Grammar (EBNF; `//` and `/* */` comments, time literals 10ms/5us/250ns/1s):
//
//   program     := decl*
//   decl        := constDecl | groupDecl | globalDecl | memopDecl
//                | funDecl | eventDecl | handlerDecl
//   constDecl   := "const" type IDENT "=" expr ";"
//   groupDecl   := ["const"] "group" IDENT "=" "{" expr ("," expr)* "}" ";"
//   globalDecl  := "global" IDENT "=" "new" "Array" "<<" INT ">>"
//                  "(" expr ")" ";"
//   memopDecl   := "memop" IDENT "(" params ")" block
//   funDecl     := "fun" type IDENT "(" params ")" block
//   eventDecl   := "event" IDENT "(" params ")" ";"
//   handlerDecl := "handle" IDENT "(" params ")" block
//   params      := [ type IDENT ("," type IDENT)* ]
//   type        := "int" ["<<" INT ">>"] | "bool" | "void" | "event"
//                | "group" | "Array" "<<" INT ">>"
//   block       := "{" stmt* "}"
//   stmt        := type IDENT "=" expr ";"            (local declaration)
//                | IDENT "=" expr ";"                 (assignment)
//                | "if" "(" expr ")" block
//                  ["else" (block | ifStmt)]
//                | ("generate" | "mgenerate") expr ";"
//                | "return" [expr] ";"
//                | expr ";"                           (expression statement)
//   expr        := binary expression over primaries, C precedence
//   primary     := INT | "true" | "false" | "(" expr ")"
//                | ("-" | "!" | "~") primary
//                | IDENT ["." IDENT] ["(" [expr ("," expr)*] ")"]
//
// The parser is error-tolerant: on a syntax error it reports a diagnostic and
// synchronizes to the next ';' or '}' so that one run surfaces many errors.
#pragma once

#include <memory>
#include <vector>

#include "frontend/ast.hpp"
#include "frontend/token.hpp"
#include "support/diagnostics.hpp"

namespace lucid::frontend {

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticEngine& diags)
      : tokens_(std::move(tokens)), diags_(diags) {}

  /// Parse a whole program. Check `diags.has_errors()` afterwards.
  [[nodiscard]] Program parse_program();

  /// Convenience: lex + parse in one call.
  static Program parse(std::string_view source, DiagnosticEngine& diags);

 private:
  // Token cursor.
  [[nodiscard]] const Token& peek(std::size_t off = 0) const;
  const Token& advance();
  [[nodiscard]] bool check(TokenKind k) const { return peek().is(k); }
  bool match(TokenKind k);
  const Token* expect(TokenKind k, std::string_view what);
  void synchronize();

  // Declarations.
  [[nodiscard]] DeclPtr parse_decl();
  [[nodiscard]] DeclPtr parse_const_or_group();
  [[nodiscard]] DeclPtr parse_group(SrcLoc start);
  [[nodiscard]] DeclPtr parse_global();
  [[nodiscard]] DeclPtr parse_memop();
  [[nodiscard]] DeclPtr parse_fun();
  [[nodiscard]] DeclPtr parse_event();
  [[nodiscard]] DeclPtr parse_handler();
  [[nodiscard]] std::vector<Param> parse_params();

  // Types.
  [[nodiscard]] bool type_starts_here() const;
  [[nodiscard]] Type parse_type();

  // Statements.
  [[nodiscard]] Block parse_block();
  [[nodiscard]] StmtPtr parse_stmt();
  [[nodiscard]] StmtPtr parse_if();

  // Expressions (precedence climbing).
  [[nodiscard]] ExprPtr parse_expr() { return parse_binary(0); }
  [[nodiscard]] ExprPtr parse_binary(int min_prec);
  [[nodiscard]] ExprPtr parse_unary();
  [[nodiscard]] ExprPtr parse_primary();

  std::vector<Token> tokens_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
};

}  // namespace lucid::frontend
