#include "frontend/ast.hpp"

namespace lucid::frontend {

std::string Type::str() const {
  switch (kind) {
    case TypeKind::Unknown: return "<unknown>";
    case TypeKind::Void: return "void";
    case TypeKind::Bool: return "bool";
    case TypeKind::Int:
      return width == 32 ? "int" : "int<<" + std::to_string(width) + ">>";
    case TypeKind::Event: return "event";
    case TypeKind::Group: return "group";
    case TypeKind::Array:
      return "Array<<" + std::to_string(width) + ">>";
  }
  return "<bad>";
}

std::string_view binop_name(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "%";
    case BinOp::BitAnd: return "&";
    case BinOp::BitOr: return "|";
    case BinOp::BitXor: return "^";
    case BinOp::Shl: return "<<";
    case BinOp::Shr: return ">>";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::Lt: return "<";
    case BinOp::Gt: return ">";
    case BinOp::Le: return "<=";
    case BinOp::Ge: return ">=";
    case BinOp::LAnd: return "&&";
    case BinOp::LOr: return "||";
  }
  return "?";
}

std::string_view unop_name(UnOp op) {
  switch (op) {
    case UnOp::Neg: return "-";
    case UnOp::Not: return "!";
    case UnOp::BitNot: return "~";
  }
  return "?";
}

bool binop_is_comparison(BinOp op) {
  switch (op) {
    case BinOp::Eq:
    case BinOp::Ne:
    case BinOp::Lt:
    case BinOp::Gt:
    case BinOp::Le:
    case BinOp::Ge:
      return true;
    default:
      return false;
  }
}

bool binop_is_logical(BinOp op) {
  return op == BinOp::LAnd || op == BinOp::LOr;
}

const Decl* Program::find(std::string_view name, DeclKind kind) const {
  for (const auto& d : decls) {
    if (d->kind == kind && d->name == name) return d.get();
  }
  return nullptr;
}

Decl* Program::find(std::string_view name, DeclKind kind) {
  for (auto& d : decls) {
    if (d->kind == kind && d->name == name) return d.get();
  }
  return nullptr;
}

const EventDecl* Program::find_event(std::string_view name) const {
  const Decl* d = find(name, DeclKind::Event);
  return d ? d->as<EventDecl>() : nullptr;
}
const HandlerDecl* Program::find_handler(std::string_view name) const {
  const Decl* d = find(name, DeclKind::Handler);
  return d ? d->as<HandlerDecl>() : nullptr;
}
const MemopDecl* Program::find_memop(std::string_view name) const {
  const Decl* d = find(name, DeclKind::Memop);
  return d ? d->as<MemopDecl>() : nullptr;
}
const FunDecl* Program::find_fun(std::string_view name) const {
  const Decl* d = find(name, DeclKind::Fun);
  return d ? d->as<FunDecl>() : nullptr;
}
const GlobalDecl* Program::find_global(std::string_view name) const {
  const Decl* d = find(name, DeclKind::Global);
  return d ? d->as<GlobalDecl>() : nullptr;
}
const GroupDecl* Program::find_group(std::string_view name) const {
  const Decl* d = find(name, DeclKind::Group);
  return d ? d->as<GroupDecl>() : nullptr;
}

std::vector<const GlobalDecl*> Program::globals() const {
  std::vector<const GlobalDecl*> out;
  for (const auto& d : decls) {
    if (d->kind == DeclKind::Global) out.push_back(d->as<GlobalDecl>());
  }
  return out;
}

std::vector<const EventDecl*> Program::events() const {
  std::vector<const EventDecl*> out;
  for (const auto& d : decls) {
    if (d->kind == DeclKind::Event) out.push_back(d->as<EventDecl>());
  }
  return out;
}

std::vector<const HandlerDecl*> Program::handlers() const {
  std::vector<const HandlerDecl*> out;
  for (const auto& d : decls) {
    if (d->kind == DeclKind::Handler) out.push_back(d->as<HandlerDecl>());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Deep copies
// ---------------------------------------------------------------------------

ExprPtr clone_expr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::IntLit: {
      const auto* src = e.as<IntLitExpr>();
      auto out = std::make_unique<IntLitExpr>();
      out->value = src->value;
      out->is_time = src->is_time;
      out->range = e.range;
      out->type = e.type;
      return out;
    }
    case ExprKind::BoolLit: {
      const auto* src = e.as<BoolLitExpr>();
      auto out = std::make_unique<BoolLitExpr>();
      out->value = src->value;
      out->range = e.range;
      out->type = e.type;
      return out;
    }
    case ExprKind::VarRef: {
      const auto* src = e.as<VarRefExpr>();
      auto out = std::make_unique<VarRefExpr>();
      out->name = src->name;
      out->is_const = src->is_const;
      out->const_value = src->const_value;
      out->is_global_array = src->is_global_array;
      out->is_group = src->is_group;
      out->is_memop_ref = src->is_memop_ref;
      out->range = e.range;
      out->type = e.type;
      return out;
    }
    case ExprKind::Unary: {
      const auto* src = e.as<UnaryExpr>();
      auto out = std::make_unique<UnaryExpr>();
      out->op = src->op;
      out->sub = clone_expr(*src->sub);
      out->range = e.range;
      out->type = e.type;
      return out;
    }
    case ExprKind::Binary: {
      const auto* src = e.as<BinaryExpr>();
      auto out = std::make_unique<BinaryExpr>();
      out->op = src->op;
      out->lhs = clone_expr(*src->lhs);
      out->rhs = clone_expr(*src->rhs);
      out->range = e.range;
      out->type = e.type;
      return out;
    }
    case ExprKind::Call: {
      const auto* src = e.as<CallExpr>();
      auto out = std::make_unique<CallExpr>();
      out->callee = src->callee;
      out->resolved = src->resolved;
      for (const auto& a : src->args) out->args.push_back(clone_expr(*a));
      out->range = e.range;
      out->type = e.type;
      return out;
    }
  }
  return nullptr;
}

StmtPtr clone_stmt(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::LocalDecl: {
      const auto* src = s.as<LocalDeclStmt>();
      auto out = std::make_unique<LocalDeclStmt>();
      out->declared_type = src->declared_type;
      out->name = src->name;
      if (src->init) out->init = clone_expr(*src->init);
      out->range = s.range;
      return out;
    }
    case StmtKind::Assign: {
      const auto* src = s.as<AssignStmt>();
      auto out = std::make_unique<AssignStmt>();
      out->name = src->name;
      out->value = clone_expr(*src->value);
      out->range = s.range;
      return out;
    }
    case StmtKind::If: {
      const auto* src = s.as<IfStmt>();
      auto out = std::make_unique<IfStmt>();
      out->cond = clone_expr(*src->cond);
      out->then_block = clone_block(src->then_block);
      out->else_block = clone_block(src->else_block);
      out->range = s.range;
      return out;
    }
    case StmtKind::ExprStmt: {
      const auto* src = s.as<ExprStmt>();
      auto out = std::make_unique<ExprStmt>();
      out->expr = clone_expr(*src->expr);
      out->range = s.range;
      return out;
    }
    case StmtKind::Generate: {
      const auto* src = s.as<GenerateStmt>();
      auto out = std::make_unique<GenerateStmt>();
      out->multicast = src->multicast;
      out->event = clone_expr(*src->event);
      out->range = s.range;
      return out;
    }
    case StmtKind::Return: {
      const auto* src = s.as<ReturnStmt>();
      auto out = std::make_unique<ReturnStmt>();
      if (src->value) out->value = clone_expr(*src->value);
      out->range = s.range;
      return out;
    }
  }
  return nullptr;
}

Block clone_block(const Block& b) {
  Block out;
  out.reserve(b.size());
  for (const auto& s : b) out.push_back(clone_stmt(*s));
  return out;
}

DeclPtr clone_decl(const Decl& d) {
  DeclPtr out;
  switch (d.kind) {
    case DeclKind::Const: {
      const auto* src = d.as<ConstDecl>();
      auto c = std::make_shared<ConstDecl>();
      c->declared_type = src->declared_type;
      c->value = clone_expr(*src->value);
      c->resolved_value = src->resolved_value;
      out = std::move(c);
      break;
    }
    case DeclKind::Global: {
      const auto* src = d.as<GlobalDecl>();
      auto g = std::make_shared<GlobalDecl>();
      g->width = src->width;
      g->size = clone_expr(*src->size);
      g->resolved_size = src->resolved_size;
      g->stage_index = src->stage_index;
      out = std::move(g);
      break;
    }
    case DeclKind::Memop: {
      const auto* src = d.as<MemopDecl>();
      auto m = std::make_shared<MemopDecl>();
      m->params = src->params;
      m->body = clone_block(src->body);
      out = std::move(m);
      break;
    }
    case DeclKind::Fun: {
      const auto* src = d.as<FunDecl>();
      auto f = std::make_shared<FunDecl>();
      f->return_type = src->return_type;
      f->params = src->params;
      f->body = clone_block(src->body);
      out = std::move(f);
      break;
    }
    case DeclKind::Event: {
      const auto* src = d.as<EventDecl>();
      auto e = std::make_shared<EventDecl>();
      e->params = src->params;
      e->event_id = src->event_id;
      out = std::move(e);
      break;
    }
    case DeclKind::Handler: {
      const auto* src = d.as<HandlerDecl>();
      auto h = std::make_shared<HandlerDecl>();
      h->params = src->params;
      h->body = clone_block(src->body);
      out = std::move(h);
      break;
    }
    case DeclKind::Group: {
      const auto* src = d.as<GroupDecl>();
      auto g = std::make_shared<GroupDecl>();
      for (const auto& m : src->members) g->members.push_back(clone_expr(*m));
      g->resolved_members = src->resolved_members;
      out = std::move(g);
      break;
    }
  }
  if (out) {
    out->range = d.range;
    out->name = d.name;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Annotation mirroring
// ---------------------------------------------------------------------------

bool copy_annotations(const Expr& from, Expr& to) {
  if (from.kind != to.kind) return false;
  to.type = from.type;
  switch (from.kind) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
      return true;
    case ExprKind::VarRef: {
      const auto* src = from.as<VarRefExpr>();
      auto* dst = to.as<VarRefExpr>();
      if (src->name != dst->name) return false;
      dst->is_const = src->is_const;
      dst->const_value = src->const_value;
      dst->is_global_array = src->is_global_array;
      dst->is_group = src->is_group;
      dst->is_memop_ref = src->is_memop_ref;
      return true;
    }
    case ExprKind::Unary:
      return copy_annotations(*from.as<UnaryExpr>()->sub,
                              *to.as<UnaryExpr>()->sub);
    case ExprKind::Binary: {
      const auto* src = from.as<BinaryExpr>();
      auto* dst = to.as<BinaryExpr>();
      return copy_annotations(*src->lhs, *dst->lhs) &&
             copy_annotations(*src->rhs, *dst->rhs);
    }
    case ExprKind::Call: {
      const auto* src = from.as<CallExpr>();
      auto* dst = to.as<CallExpr>();
      if (src->args.size() != dst->args.size()) return false;
      dst->resolved = src->resolved;
      for (std::size_t i = 0; i < src->args.size(); ++i) {
        if (!copy_annotations(*src->args[i], *dst->args[i])) return false;
      }
      return true;
    }
  }
  return false;
}

bool copy_annotations(const Stmt& from, Stmt& to) {
  if (from.kind != to.kind) return false;
  switch (from.kind) {
    case StmtKind::LocalDecl:
      return copy_annotations(*from.as<LocalDeclStmt>()->init,
                              *to.as<LocalDeclStmt>()->init);
    case StmtKind::Assign:
      return copy_annotations(*from.as<AssignStmt>()->value,
                              *to.as<AssignStmt>()->value);
    case StmtKind::If: {
      const auto* src = from.as<IfStmt>();
      auto* dst = to.as<IfStmt>();
      return copy_annotations(*src->cond, *dst->cond) &&
             copy_annotations(src->then_block, dst->then_block) &&
             copy_annotations(src->else_block, dst->else_block);
    }
    case StmtKind::ExprStmt:
      return copy_annotations(*from.as<ExprStmt>()->expr,
                              *to.as<ExprStmt>()->expr);
    case StmtKind::Generate:
      return copy_annotations(*from.as<GenerateStmt>()->event,
                              *to.as<GenerateStmt>()->event);
    case StmtKind::Return: {
      const auto* src = from.as<ReturnStmt>();
      auto* dst = to.as<ReturnStmt>();
      if ((src->value == nullptr) != (dst->value == nullptr)) return false;
      return !src->value || copy_annotations(*src->value, *dst->value);
    }
  }
  return false;
}

bool copy_annotations(const Block& from, Block& to) {
  if (from.size() != to.size()) return false;
  for (std::size_t i = 0; i < from.size(); ++i) {
    if (!copy_annotations(*from[i], *to[i])) return false;
  }
  return true;
}

bool copy_annotations(const Decl& from, Decl& to) {
  if (from.kind != to.kind || from.name != to.name) return false;
  switch (from.kind) {
    case DeclKind::Const: {
      const auto* src = from.as<ConstDecl>();
      auto* dst = to.as<ConstDecl>();
      dst->resolved_value = src->resolved_value;
      return copy_annotations(*src->value, *dst->value);
    }
    case DeclKind::Global: {
      const auto* src = from.as<GlobalDecl>();
      auto* dst = to.as<GlobalDecl>();
      dst->resolved_size = src->resolved_size;
      dst->stage_index = src->stage_index;
      return copy_annotations(*src->size, *dst->size);
    }
    case DeclKind::Memop:
      return copy_annotations(from.as<MemopDecl>()->body,
                              to.as<MemopDecl>()->body);
    case DeclKind::Fun:
      return copy_annotations(from.as<FunDecl>()->body,
                              to.as<FunDecl>()->body);
    case DeclKind::Event: {
      to.as<EventDecl>()->event_id = from.as<EventDecl>()->event_id;
      return true;
    }
    case DeclKind::Handler:
      return copy_annotations(from.as<HandlerDecl>()->body,
                              to.as<HandlerDecl>()->body);
    case DeclKind::Group: {
      const auto* src = from.as<GroupDecl>();
      auto* dst = to.as<GroupDecl>();
      if (src->members.size() != dst->members.size()) return false;
      dst->resolved_members = src->resolved_members;
      for (std::size_t i = 0; i < src->members.size(); ++i) {
        if (!copy_annotations(*src->members[i], *dst->members[i])) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

}  // namespace lucid::frontend
