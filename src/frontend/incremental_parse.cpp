#include "frontend/incremental_parse.hpp"

#include <string>
#include <unordered_map>

#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "support/strings.hpp"

namespace lucid::frontend {

namespace {

/// Byte cursor that tracks line/col and knows how to skip `//` and `/* */`
/// comments — just enough lexing to find decl boundaries.
class Scanner {
 public:
  explicit Scanner(std::string_view src) : src_(src) {}

  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t off = 0) const {
    return pos_ + off < src_.size() ? src_[pos_ + off] : '\0';
  }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] SrcLoc here() const { return SrcLoc{line_, col_}; }

  void advance() {
    if (at_end()) return;
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  /// Skip whitespace and comments. False on an unterminated block comment.
  bool skip_trivia() {
    for (;;) {
      if (at_end()) return true;
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') advance();
      } else if (c == '/' && peek(1) == '*') {
        advance();
        advance();
        while (!at_end() && !(peek() == '*' && peek(1) == '/')) advance();
        if (at_end()) return false;
        advance();
        advance();
      } else {
        return true;
      }
    }
  }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

bool is_word_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Decl keywords whose declaration ends at the `}` closing the body block
/// (no trailing `;`); every other decl form ends at a depth-0 `;`.
bool brace_terminated(std::string_view keyword) {
  return keyword == "memop" || keyword == "fun" || keyword == "handle";
}

bool known_decl_keyword(std::string_view keyword) {
  return keyword == "const" || keyword == "group" || keyword == "global" ||
         keyword == "event" || brace_terminated(keyword);
}

}  // namespace

std::optional<std::vector<DeclSpan>> scan_decl_spans(std::string_view source) {
  std::vector<DeclSpan> spans;
  Scanner s(source);
  for (;;) {
    if (!s.skip_trivia()) return std::nullopt;  // unterminated /* */
    if (s.at_end()) break;

    DeclSpan span;
    span.begin = s.pos();
    span.start = s.here();

    // The decl keyword decides the terminator shape.
    std::string keyword;
    while (!s.at_end() && is_word_char(s.peek())) {
      keyword.push_back(s.peek());
      s.advance();
    }
    if (!known_decl_keyword(keyword)) return std::nullopt;

    // Walk to the terminator, tracking brace depth through comments.
    int depth = 0;
    bool done = false;
    while (!done) {
      if (!s.skip_trivia()) return std::nullopt;
      if (s.at_end()) return std::nullopt;  // unterminated decl
      const char c = s.peek();
      s.advance();
      if (c == '{') {
        ++depth;
      } else if (c == '}') {
        --depth;
        if (depth < 0) return std::nullopt;
        if (depth == 0 && brace_terminated(keyword)) done = true;
      } else if (c == ';' && depth == 0) {
        if (brace_terminated(keyword)) return std::nullopt;  // stray ';'
        done = true;
      }
    }
    span.end = s.pos();
    span.hash = fnv1a64(source.substr(span.begin, span.end - span.begin));
    spans.push_back(span);
  }
  return spans;
}

std::optional<IncrementalParseResult> incremental_parse(
    std::string_view source, std::string_view prev_source,
    const std::vector<DeclSpan>& prev_spans, const Program& prev,
    DiagnosticEngine& diags) {
  // Spans map to decls positionally; if prev's (error-tolerant) parse dropped
  // a decl the correspondence is broken and splicing is unsafe.
  if (prev_spans.size() != prev.decls.size()) return std::nullopt;

  auto spans = scan_decl_spans(source);
  if (!spans) return std::nullopt;

  // hash -> not-yet-consumed prev span indices, in order. Consuming in order
  // keeps duplicate spans (byte-identical decls are illegal anyway, but the
  // scanner doesn't know that) deterministic.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_hash;
  for (std::size_t j = prev_spans.size(); j-- > 0;) {
    by_hash[prev_spans[j].hash].push_back(j);
  }

  IncrementalParseResult result;
  for (const DeclSpan& span : *spans) {
    const std::string_view text =
        source.substr(span.begin, span.end - span.begin);
    int matched = -1;
    if (auto it = by_hash.find(span.hash); it != by_hash.end()) {
      auto& candidates = it->second;  // back() is the lowest unconsumed index
      for (std::size_t k = candidates.size(); k-- > 0;) {
        const DeclSpan& ps = prev_spans[candidates[k]];
        if (prev_source.substr(ps.begin, ps.end - ps.begin) == text) {
          matched = static_cast<int>(candidates[k]);
          candidates.erase(candidates.begin() + static_cast<long>(k));
          break;
        }
      }
    }
    if (matched >= 0) {
      // Splice the previous node by pointer. Its source ranges still point
      // at prev's buffer layout — byte-identical span text means the decl
      // body is unchanged, but its file offset may have shifted; diagnostics
      // against spliced decls keep the old positions (documented contract).
      result.program.decls.push_back(prev.decls[static_cast<std::size_t>(matched)]);
      result.spliced_from.push_back(matched);
      ++result.reused;
      continue;
    }
    // Re-lex just this span, with positions anchored at its whole-file
    // location, and parse whatever decls it holds (normally exactly one).
    Lexer lexer(text, diags, span.start);
    Parser parser(lexer.lex_all(), diags);
    Program piece = parser.parse_program();
    for (auto& d : piece.decls) {
      result.program.decls.push_back(std::move(d));
      result.spliced_from.push_back(-1);
    }
  }
  result.spans = std::move(*spans);
  return result;
}

}  // namespace lucid::frontend
