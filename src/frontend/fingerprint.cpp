#include "frontend/fingerprint.hpp"

#include <cstdio>

#include "frontend/printer.hpp"
#include "support/strings.hpp"

namespace lucid::frontend {

std::string_view decl_kind_name(DeclKind k) {
  switch (k) {
    case DeclKind::Const: return "const";
    case DeclKind::Global: return "global";
    case DeclKind::Memop: return "memop";
    case DeclKind::Fun: return "fun";
    case DeclKind::Event: return "event";
    case DeclKind::Handler: return "handler";
    case DeclKind::Group: return "group";
  }
  return "?";
}

namespace {

// Streaming FNV-1a over the canonical print, without materializing it:
// recompiles fingerprint every parse, so this sits on the edit-loop hot
// path. The hash_* functions below mirror frontend/printer.cpp byte for
// byte — fingerprint_decl(d).hash must equal fnv1a64 over
// "<kind>\x1f<name>\x1f" + canonical_print_decl(d), which
// tests/test_incremental.cpp pins differentially for every app decl.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis

  void feed(char c) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  void feed(std::string_view s) {
    for (const char c : s) feed(c);
  }
  void pad(int indent) {
    for (int i = 0; i < indent * 2; ++i) feed(' ');
  }
};

void hash_expr(const Expr& e, Fnv& f) {
  switch (e.kind) {
    case ExprKind::IntLit: {
      const auto* lit = e.as<IntLitExpr>();
      if (lit->is_time) {
        const std::uint64_t v = lit->value;
        if (v % 1'000'000'000 == 0) {
          f.feed(std::to_string(v / 1'000'000'000));
          f.feed('s');
        } else if (v % 1'000'000 == 0) {
          f.feed(std::to_string(v / 1'000'000));
          f.feed("ms");
        } else if (v % 1'000 == 0) {
          f.feed(std::to_string(v / 1'000));
          f.feed("us");
        } else {
          f.feed(std::to_string(v));
          f.feed("ns");
        }
        return;
      }
      f.feed(std::to_string(lit->value));
      return;
    }
    case ExprKind::BoolLit:
      f.feed(e.as<BoolLitExpr>()->value ? "true" : "false");
      return;
    case ExprKind::VarRef:
      f.feed(e.as<VarRefExpr>()->name);
      return;
    case ExprKind::Unary: {
      const auto* u = e.as<UnaryExpr>();
      f.feed(unop_name(u->op));
      f.feed('(');
      hash_expr(*u->sub, f);
      f.feed(')');
      return;
    }
    case ExprKind::Binary: {
      const auto* b = e.as<BinaryExpr>();
      f.feed('(');
      hash_expr(*b->lhs, f);
      f.feed(' ');
      f.feed(binop_name(b->op));
      f.feed(' ');
      hash_expr(*b->rhs, f);
      f.feed(')');
      return;
    }
    case ExprKind::Call: {
      const auto* c = e.as<CallExpr>();
      f.feed(c->callee);
      f.feed('(');
      for (std::size_t i = 0; i < c->args.size(); ++i) {
        if (i > 0) f.feed(", ");
        hash_expr(*c->args[i], f);
      }
      f.feed(')');
      return;
    }
  }
}

void hash_stmt(const Stmt& s, int indent, Fnv& f);

void hash_block(const Block& b, int indent, Fnv& f) {
  f.feed("{\n");
  for (const auto& s : b) hash_stmt(*s, indent + 1, f);
  f.pad(indent);
  f.feed('}');
}

void hash_stmt(const Stmt& s, int indent, Fnv& f) {
  f.pad(indent);
  switch (s.kind) {
    case StmtKind::LocalDecl: {
      const auto* d = s.as<LocalDeclStmt>();
      f.feed(d->declared_type.str());
      f.feed(' ');
      f.feed(d->name);
      f.feed(" = ");
      hash_expr(*d->init, f);
      f.feed(";\n");
      return;
    }
    case StmtKind::Assign: {
      const auto* a = s.as<AssignStmt>();
      f.feed(a->name);
      f.feed(" = ");
      hash_expr(*a->value, f);
      f.feed(";\n");
      return;
    }
    case StmtKind::If: {
      const auto* i = s.as<IfStmt>();
      f.feed("if (");
      hash_expr(*i->cond, f);
      f.feed(") ");
      hash_block(i->then_block, indent, f);
      if (!i->else_block.empty()) {
        f.feed(" else ");
        hash_block(i->else_block, indent, f);
      }
      f.feed('\n');
      return;
    }
    case StmtKind::ExprStmt:
      hash_expr(*s.as<ExprStmt>()->expr, f);
      f.feed(";\n");
      return;
    case StmtKind::Generate: {
      const auto* g = s.as<GenerateStmt>();
      f.feed(g->multicast ? "mgenerate " : "generate ");
      hash_expr(*g->event, f);
      f.feed(";\n");
      return;
    }
    case StmtKind::Return: {
      const auto* r = s.as<ReturnStmt>();
      f.feed("return");
      if (r->value) {
        f.feed(' ');
        hash_expr(*r->value, f);
      }
      f.feed(";\n");
      return;
    }
  }
}

void hash_params(const std::vector<Param>& params, Fnv& f) {
  f.feed('(');
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i > 0) f.feed(", ");
    f.feed(params[i].type.str());
    f.feed(' ');
    f.feed(params[i].name);
  }
  f.feed(')');
}

void hash_decl(const Decl& d, Fnv& f) {
  switch (d.kind) {
    case DeclKind::Const: {
      const auto* c = d.as<ConstDecl>();
      f.feed("const ");
      f.feed(c->declared_type.str());
      f.feed(' ');
      f.feed(d.name);
      f.feed(" = ");
      hash_expr(*c->value, f);
      f.feed(";\n");
      return;
    }
    case DeclKind::Global: {
      const auto* g = d.as<GlobalDecl>();
      f.feed("global ");
      f.feed(d.name);
      f.feed(" = new Array<<");
      f.feed(std::to_string(g->width));
      f.feed(">>(");
      hash_expr(*g->size, f);
      f.feed(");\n");
      return;
    }
    case DeclKind::Memop: {
      const auto* m = d.as<MemopDecl>();
      f.feed("memop ");
      f.feed(d.name);
      hash_params(m->params, f);
      f.feed(' ');
      hash_block(m->body, 0, f);
      f.feed('\n');
      return;
    }
    case DeclKind::Fun: {
      const auto* fn = d.as<FunDecl>();
      f.feed("fun ");
      f.feed(fn->return_type.str());
      f.feed(' ');
      f.feed(d.name);
      hash_params(fn->params, f);
      f.feed(' ');
      hash_block(fn->body, 0, f);
      f.feed('\n');
      return;
    }
    case DeclKind::Event: {
      const auto* e = d.as<EventDecl>();
      f.feed("event ");
      f.feed(d.name);
      hash_params(e->params, f);
      f.feed(";\n");
      return;
    }
    case DeclKind::Handler: {
      const auto* h = d.as<HandlerDecl>();
      f.feed("handle ");
      f.feed(d.name);
      hash_params(h->params, f);
      f.feed(' ');
      hash_block(h->body, 0, f);
      f.feed('\n');
      return;
    }
    case DeclKind::Group: {
      const auto* g = d.as<GroupDecl>();
      f.feed("const group ");
      f.feed(d.name);
      f.feed(" = {");
      for (std::size_t i = 0; i < g->members.size(); ++i) {
        if (i > 0) f.feed(", ");
        hash_expr(*g->members[i], f);
      }
      f.feed("};\n");
      return;
    }
  }
}

}  // namespace

DeclFingerprint fingerprint_decl(const Decl& d) {
  DeclFingerprint fp;
  fp.kind = d.kind;
  fp.name = d.name;
  Fnv f;
  f.feed(decl_kind_name(d.kind));
  f.feed('\x1f');
  f.feed(d.name);
  f.feed('\x1f');
  hash_decl(d, f);
  fp.hash = f.h;
  return fp;
}

std::vector<DeclFingerprint> fingerprint_program(const Program& p) {
  std::vector<DeclFingerprint> out;
  out.reserve(p.decls.size());
  for (const auto& d : p.decls) out.push_back(fingerprint_decl(*d));
  return out;
}

std::uint64_t structural_hash(const std::vector<DeclFingerprint>& fps) {
  // Fold the ordered sequence into one preimage; \x1e separates decls so
  // adjacent-decl boundaries cannot alias.
  std::string preimage;
  for (const DeclFingerprint& fp : fps) {
    preimage += decl_kind_name(fp.kind);
    preimage += '\x1f';
    preimage += fp.name;
    preimage += '\x1f';
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(fp.hash));
    preimage += hex;
    preimage += '\x1e';
  }
  return fnv1a64(preimage);
}

std::uint64_t structural_hash(const Program& p) {
  return structural_hash(fingerprint_program(p));
}

}  // namespace lucid::frontend
