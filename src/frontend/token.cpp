#include "frontend/token.hpp"

namespace lucid::frontend {

std::string_view token_kind_name(TokenKind k) {
  switch (k) {
    case TokenKind::Eof: return "eof";
    case TokenKind::Ident: return "identifier";
    case TokenKind::IntLit: return "integer";
    case TokenKind::KwConst: return "'const'";
    case TokenKind::KwGlobal: return "'global'";
    case TokenKind::KwMemop: return "'memop'";
    case TokenKind::KwFun: return "'fun'";
    case TokenKind::KwEvent: return "'event'";
    case TokenKind::KwHandle: return "'handle'";
    case TokenKind::KwGroup: return "'group'";
    case TokenKind::KwIf: return "'if'";
    case TokenKind::KwElse: return "'else'";
    case TokenKind::KwReturn: return "'return'";
    case TokenKind::KwGenerate: return "'generate'";
    case TokenKind::KwMGenerate: return "'mgenerate'";
    case TokenKind::KwInt: return "'int'";
    case TokenKind::KwBool: return "'bool'";
    case TokenKind::KwVoid: return "'void'";
    case TokenKind::KwTrue: return "'true'";
    case TokenKind::KwFalse: return "'false'";
    case TokenKind::KwNew: return "'new'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::Semi: return "';'";
    case TokenKind::Comma: return "','";
    case TokenKind::Dot: return "'.'";
    case TokenKind::Assign: return "'='";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::Percent: return "'%'";
    case TokenKind::Amp: return "'&'";
    case TokenKind::Pipe: return "'|'";
    case TokenKind::Caret: return "'^'";
    case TokenKind::Tilde: return "'~'";
    case TokenKind::Bang: return "'!'";
    case TokenKind::Shl: return "'<<'";
    case TokenKind::Shr: return "'>>'";
    case TokenKind::EqEq: return "'=='";
    case TokenKind::NotEq: return "'!='";
    case TokenKind::Lt: return "'<'";
    case TokenKind::Gt: return "'>'";
    case TokenKind::Le: return "'<='";
    case TokenKind::Ge: return "'>='";
    case TokenKind::AmpAmp: return "'&&'";
    case TokenKind::PipePipe: return "'||'";
  }
  return "unknown";
}

}  // namespace lucid::frontend
