// Pretty-printer: renders an AST back to Lucid surface syntax.
// Used for debugging dumps and parser round-trip tests (parse → print →
// parse must produce a structurally identical tree).
#pragma once

#include <string>

#include "frontend/ast.hpp"

namespace lucid::frontend {

[[nodiscard]] std::string print_expr(const Expr& e);
[[nodiscard]] std::string print_stmt(const Stmt& s, int indent = 0);
[[nodiscard]] std::string print_block(const Block& b, int indent);
[[nodiscard]] std::string print_decl(const Decl& d);
[[nodiscard]] std::string print_program(const Program& p);

/// The *canonical form* of a declaration / program: surface syntax rendered
/// purely from the AST, so comments are stripped, whitespace is normalized,
/// and formatting is stable regardless of how the source was written. Two
/// sources whose decls canonical-print identically are structurally the same
/// program. This is the preimage of the structural fingerprints
/// (frontend/fingerprint.hpp) that key the artifact cache and drive
/// incremental recompiles.
///
/// Contract (pinned by tests): re-parsing a canonical print yields a
/// program_equal tree, and canonical_print is a fixed point (printing the
/// re-parse reproduces the same bytes).
[[nodiscard]] std::string canonical_print_decl(const Decl& d);
[[nodiscard]] std::string canonical_print_program(const Program& p);

/// Structural equality over ASTs, ignoring source ranges and annotations.
/// Used by round-trip tests.
[[nodiscard]] bool expr_equal(const Expr& a, const Expr& b);
[[nodiscard]] bool stmt_equal(const Stmt& a, const Stmt& b);
[[nodiscard]] bool block_equal(const Block& a, const Block& b);
[[nodiscard]] bool decl_equal(const Decl& a, const Decl& b);
[[nodiscard]] bool program_equal(const Program& a, const Program& b);

}  // namespace lucid::frontend
