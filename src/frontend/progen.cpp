#include "frontend/progen.hpp"

#include <sstream>
#include <vector>

namespace lucid::frontend {

namespace {

/// splitmix64: deterministic across platforms (std distributions are not).
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, n).
  int below(int n) { return static_cast<int>(next() % static_cast<std::uint64_t>(n)); }
  bool coin(int percent) { return below(100) < percent; }
};

}  // namespace

std::string generate_program(const ProgenConfig& cfg) {
  Rng rng{cfg.seed};
  std::ostringstream os;
  os << "// synthetic program: " << cfg.decl_count() << " decls (seed "
     << cfg.seed << ")\n";

  const int consts = cfg.consts > 0 ? cfg.consts : 1;
  for (int i = 0; i < consts; ++i) {
    os << "const int C" << i << " = " << (1 + rng.below(250)) << ";\n";
  }
  for (int i = 0; i < cfg.arrays; ++i) {
    os << "global a" << i << " = new Array<<32>>(64);\n";
  }

  const int memops = cfg.memops > 0 ? cfg.memops : 1;
  for (int i = 0; i < memops; ++i) {
    os << "memop m" << i << "(int cur, int x) ";
    switch (rng.below(4)) {
      case 0: os << "{ return cur + x; }\n"; break;
      case 1: os << "{ return x; }\n"; break;
      case 2: os << "{ if (cur == 0) { return x; } else { return cur; } }\n"; break;
      default: os << "{ return cur + " << (1 + rng.below(7)) << "; }\n"; break;
    }
  }
  for (int i = 0; i < cfg.funs; ++i) {
    os << "fun int f" << i << "(int a, int b) { return (a + b) & C"
       << rng.below(consts) << "; }\n";
  }

  for (int i = 0; i < cfg.handlers; ++i) {
    os << "event ev" << i << "(int x, int y);\n";
  }

  for (int i = 0; i < cfg.handlers; ++i) {
    os << "handle ev" << i << "(int x, int y) {\n";
    // Index-safe locals (masked into the arrays' [0, 64) range) vs general
    // ints; statements only ever read already-declared locals.
    std::vector<std::string> idx = {"ix0"};
    std::vector<std::string> vals = {"x", "y"};
    os << "  int ix0 = hash(" << (1 + rng.below(40)) << ", x, y) & 63;\n";
    int next_local = 0;
    int array_cursor = 0;  // accesses stay in declaration order
    for (int s = 0; s < cfg.stmts_per_handler; ++s) {
      const std::string& iv = idx[rng.below(static_cast<int>(idx.size()))];
      const std::string& va = vals[rng.below(static_cast<int>(vals.size()))];
      const std::string& vb = vals[rng.below(static_cast<int>(vals.size()))];
      switch (rng.below(6)) {
        case 0: {  // fresh masked index
          std::string name = "ix" + std::to_string(idx.size());
          os << "  int " << name << " = (" << va << " + " << rng.below(64)
             << ") & 63;\n";
          idx.push_back(name);
          break;
        }
        case 1: {  // pure arithmetic local
          std::string name = "v" + std::to_string(next_local++);
          if (cfg.funs > 0 && rng.coin(30)) {
            os << "  int " << name << " = f" << rng.below(cfg.funs) << "("
               << va << ", " << vb << ");\n";
          } else {
            os << "  int " << name << " = (" << va << " + C"
               << rng.below(consts) << ") | " << (1 + rng.below(15)) << ";\n";
          }
          vals.push_back(name);
          break;
        }
        case 2: {  // branch over pure locals (no array access inside)
          os << "  if (" << va << " == C" << rng.below(consts)
             << ") { int t" << next_local << "a = " << vb
             << " + 1; } else { int t" << next_local << "b = " << iv
             << " + 2; }\n";
          ++next_local;
          break;
        }
        case 3:
        case 4: {  // array access, advancing the declaration-order cursor
          if (array_cursor >= cfg.arrays) break;
          const int arr = array_cursor + rng.below(cfg.arrays - array_cursor);
          array_cursor = arr + 1;
          if (rng.coin(40)) {
            std::string name = "g" + std::to_string(next_local++);
            os << "  int " << name << " = Array.get(a" << arr << ", " << iv
               << ");\n";
            vals.push_back(name);
          } else if (rng.coin(50)) {
            os << "  Array.set(a" << arr << ", " << iv << ", m"
               << rng.below(memops) << ", " << (1 + rng.below(9)) << ");\n";
          } else {
            os << "  Array.set(a" << arr << ", " << iv << ", C"
               << rng.below(consts) << ");\n";
          }
          break;
        }
        default: {  // occasional event generation (cross-decl dependency)
          if (cfg.handlers > 1 && rng.coin(35)) {
            os << "  generate ev" << rng.below(cfg.handlers) << "(" << va
               << ", " << iv << ");\n";
          }
          break;
        }
      }
    }
    os << "}\n";
  }
  return os.str();
}

std::string edit_one_handler(const std::string& source, int which,
                             std::string_view stmt) {
  std::size_t pos = 0;
  std::size_t found = std::string::npos;
  int seen = 0;
  while ((pos = source.find("handle ", pos)) != std::string::npos) {
    found = pos;
    if (seen == which) break;  // past-the-end `which` clamps to the last one
    ++seen;
    pos += 7;
  }
  if (found == std::string::npos) return source;
  const std::size_t brace = source.find('{', found);
  if (brace == std::string::npos) return source;
  std::string out = source;
  out.insert(brace + 1, stmt);
  return out;
}

}  // namespace lucid::frontend
