// Hand-written lexer for the Lucid dialect.
#pragma once

#include <string>
#include <vector>

#include "frontend/token.hpp"
#include "support/diagnostics.hpp"

namespace lucid::frontend {

/// Tokenizes a whole buffer up front. On malformed input, reports through the
/// diagnostic engine and skips the offending character, so parsing can still
/// surface as many errors as possible in one run.
class Lexer {
 public:
  Lexer(std::string_view source, DiagnosticEngine& diags)
      : src_(source), diags_(diags) {}

  /// Lex a slice of a larger buffer: token positions (and any diagnostics)
  /// are reported relative to `start`, the slice's location in the original
  /// file. The incremental parser uses this to re-lex only edited decl spans
  /// while keeping positions consistent with a whole-file lex.
  Lexer(std::string_view source, DiagnosticEngine& diags, SrcLoc start)
      : src_(source), diags_(diags), line_(start.line), col_(start.col) {}

  /// Lex the whole buffer. The last token is always Eof.
  [[nodiscard]] std::vector<Token> lex_all();

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t off = 0) const {
    return pos_ + off < src_.size() ? src_[pos_ + off] : '\0';
  }
  char advance();
  [[nodiscard]] SrcLoc here() const { return SrcLoc{line_, col_}; }

  void skip_trivia();
  [[nodiscard]] Token lex_number(SrcLoc start);
  [[nodiscard]] Token lex_ident_or_keyword(SrcLoc start);
  [[nodiscard]] Token lex_operator(SrcLoc start);

  [[nodiscard]] Token make(TokenKind kind, SrcLoc start,
                           std::string text = {}) const;

  std::string_view src_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

}  // namespace lucid::frontend
