#include "frontend/parser.hpp"

#include "frontend/lexer.hpp"

namespace lucid::frontend {

namespace {

/// Binary operator precedence; higher binds tighter. Mirrors C.
int binop_precedence(TokenKind k) {
  switch (k) {
    case TokenKind::PipePipe: return 1;
    case TokenKind::AmpAmp: return 2;
    case TokenKind::Pipe: return 3;
    case TokenKind::Caret: return 4;
    case TokenKind::Amp: return 5;
    case TokenKind::EqEq:
    case TokenKind::NotEq: return 6;
    case TokenKind::Lt:
    case TokenKind::Gt:
    case TokenKind::Le:
    case TokenKind::Ge: return 7;
    case TokenKind::Shl:
    case TokenKind::Shr: return 8;
    case TokenKind::Plus:
    case TokenKind::Minus: return 9;
    case TokenKind::Star:
    case TokenKind::Slash:
    case TokenKind::Percent: return 10;
    default: return -1;
  }
}

BinOp token_to_binop(TokenKind k) {
  switch (k) {
    case TokenKind::PipePipe: return BinOp::LOr;
    case TokenKind::AmpAmp: return BinOp::LAnd;
    case TokenKind::Pipe: return BinOp::BitOr;
    case TokenKind::Caret: return BinOp::BitXor;
    case TokenKind::Amp: return BinOp::BitAnd;
    case TokenKind::EqEq: return BinOp::Eq;
    case TokenKind::NotEq: return BinOp::Ne;
    case TokenKind::Lt: return BinOp::Lt;
    case TokenKind::Gt: return BinOp::Gt;
    case TokenKind::Le: return BinOp::Le;
    case TokenKind::Ge: return BinOp::Ge;
    case TokenKind::Shl: return BinOp::Shl;
    case TokenKind::Shr: return BinOp::Shr;
    case TokenKind::Plus: return BinOp::Add;
    case TokenKind::Minus: return BinOp::Sub;
    case TokenKind::Star: return BinOp::Mul;
    case TokenKind::Slash: return BinOp::Div;
    case TokenKind::Percent: return BinOp::Mod;
    default: return BinOp::Add;
  }
}

}  // namespace

Program Parser::parse(std::string_view source, DiagnosticEngine& diags) {
  Lexer lexer(source, diags);
  Parser parser(lexer.lex_all(), diags);
  return parser.parse_program();
}

const Token& Parser::peek(std::size_t off) const {
  const std::size_t i = pos_ + off;
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::advance() {
  const Token& t = peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::match(TokenKind k) {
  if (check(k)) {
    advance();
    return true;
  }
  return false;
}

const Token* Parser::expect(TokenKind k, std::string_view what) {
  if (check(k)) return &advance();
  diags_.error(peek().range, "parse-expected",
               "expected " + std::string(token_kind_name(k)) + " " +
                   std::string(what) + ", found " + peek().str());
  return nullptr;
}

void Parser::synchronize() {
  while (!check(TokenKind::Eof)) {
    if (match(TokenKind::Semi)) return;
    if (check(TokenKind::RBrace)) {
      advance();
      return;
    }
    advance();
  }
}

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

Program Parser::parse_program() {
  Program program;
  while (!check(TokenKind::Eof)) {
    DeclPtr d = parse_decl();
    if (d) {
      program.decls.push_back(std::move(d));
    } else {
      synchronize();
    }
  }
  return program;
}

DeclPtr Parser::parse_decl() {
  switch (peek().kind) {
    case TokenKind::KwConst: return parse_const_or_group();
    case TokenKind::KwGroup: {
      const SrcLoc start = peek().range.begin;
      advance();
      return parse_group(start);
    }
    case TokenKind::KwGlobal: return parse_global();
    case TokenKind::KwMemop: return parse_memop();
    case TokenKind::KwFun: return parse_fun();
    case TokenKind::KwEvent: return parse_event();
    case TokenKind::KwHandle: return parse_handler();
    default:
      diags_.error(peek().range, "parse-bad-decl",
                   "expected a declaration, found " + peek().str());
      return nullptr;
  }
}

DeclPtr Parser::parse_const_or_group() {
  const SrcLoc start = peek().range.begin;
  advance();  // const
  if (check(TokenKind::KwGroup)) {
    advance();
    return parse_group(start);
  }
  auto decl = std::make_shared<ConstDecl>();
  decl->declared_type = parse_type();
  const Token* name = expect(TokenKind::Ident, "after const type");
  if (!name) return nullptr;
  decl->name = name->text;
  if (!expect(TokenKind::Assign, "in const declaration")) return nullptr;
  decl->value = parse_expr();
  if (!decl->value) return nullptr;
  expect(TokenKind::Semi, "after const declaration");
  decl->range = SrcRange{start, peek().range.begin};
  return decl;
}

DeclPtr Parser::parse_group(SrcLoc start) {
  auto decl = std::make_shared<GroupDecl>();
  const Token* name = expect(TokenKind::Ident, "after 'group'");
  if (!name) return nullptr;
  decl->name = name->text;
  if (!expect(TokenKind::Assign, "in group declaration")) return nullptr;
  if (!expect(TokenKind::LBrace, "to open group member list")) return nullptr;
  if (!check(TokenKind::RBrace)) {
    do {
      ExprPtr member = parse_expr();
      if (!member) return nullptr;
      decl->members.push_back(std::move(member));
    } while (match(TokenKind::Comma));
  }
  expect(TokenKind::RBrace, "to close group member list");
  expect(TokenKind::Semi, "after group declaration");
  decl->range = SrcRange{start, peek().range.begin};
  return decl;
}

DeclPtr Parser::parse_global() {
  const SrcLoc start = peek().range.begin;
  advance();  // global
  auto decl = std::make_shared<GlobalDecl>();
  const Token* name = expect(TokenKind::Ident, "after 'global'");
  if (!name) return nullptr;
  decl->name = name->text;
  if (!expect(TokenKind::Assign, "in global declaration")) return nullptr;
  if (!expect(TokenKind::KwNew, "in global declaration")) return nullptr;
  const Token* arr = expect(TokenKind::Ident, "('Array') after 'new'");
  if (!arr) return nullptr;
  if (arr->text != "Array") {
    diags_.error(arr->range, "parse-expected-array",
                 "only 'new Array<<w>>(n)' globals are supported");
    return nullptr;
  }
  if (!expect(TokenKind::Shl, "to open Array width")) return nullptr;
  const Token* width = expect(TokenKind::IntLit, "Array cell width");
  if (!width) return nullptr;
  decl->width = static_cast<int>(width->int_value);
  if (!expect(TokenKind::Shr, "to close Array width")) return nullptr;
  if (!expect(TokenKind::LParen, "before Array size")) return nullptr;
  decl->size = parse_expr();
  if (!decl->size) return nullptr;
  expect(TokenKind::RParen, "after Array size");
  expect(TokenKind::Semi, "after global declaration");
  decl->range = SrcRange{start, peek().range.begin};
  return decl;
}

std::vector<Param> Parser::parse_params() {
  std::vector<Param> params;
  if (!expect(TokenKind::LParen, "to open parameter list")) return params;
  if (!check(TokenKind::RParen)) {
    do {
      Param p;
      const SrcLoc pstart = peek().range.begin;
      p.type = parse_type();
      const Token* name = expect(TokenKind::Ident, "parameter name");
      if (!name) break;
      p.name = name->text;
      p.range = SrcRange{pstart, peek().range.begin};
      params.push_back(std::move(p));
    } while (match(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to close parameter list");
  return params;
}

DeclPtr Parser::parse_memop() {
  const SrcLoc start = peek().range.begin;
  advance();  // memop
  auto decl = std::make_shared<MemopDecl>();
  const Token* name = expect(TokenKind::Ident, "after 'memop'");
  if (!name) return nullptr;
  decl->name = name->text;
  decl->params = parse_params();
  decl->body = parse_block();
  decl->range = SrcRange{start, peek().range.begin};
  return decl;
}

DeclPtr Parser::parse_fun() {
  const SrcLoc start = peek().range.begin;
  advance();  // fun
  auto decl = std::make_shared<FunDecl>();
  decl->return_type = parse_type();
  const Token* name = expect(TokenKind::Ident, "function name");
  if (!name) return nullptr;
  decl->name = name->text;
  decl->params = parse_params();
  decl->body = parse_block();
  decl->range = SrcRange{start, peek().range.begin};
  return decl;
}

DeclPtr Parser::parse_event() {
  const SrcLoc start = peek().range.begin;
  advance();  // event
  auto decl = std::make_shared<EventDecl>();
  const Token* name = expect(TokenKind::Ident, "event name");
  if (!name) return nullptr;
  decl->name = name->text;
  decl->params = parse_params();
  expect(TokenKind::Semi, "after event declaration");
  decl->range = SrcRange{start, peek().range.begin};
  return decl;
}

DeclPtr Parser::parse_handler() {
  const SrcLoc start = peek().range.begin;
  advance();  // handle
  auto decl = std::make_shared<HandlerDecl>();
  const Token* name = expect(TokenKind::Ident, "handler name");
  if (!name) return nullptr;
  decl->name = name->text;
  decl->params = parse_params();
  decl->body = parse_block();
  decl->range = SrcRange{start, peek().range.begin};
  return decl;
}

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

bool Parser::type_starts_here() const {
  switch (peek().kind) {
    case TokenKind::KwInt:
    case TokenKind::KwBool:
    case TokenKind::KwVoid:
      return true;
    case TokenKind::KwEvent:
      // `event x = ...;` inside a block is an event-typed local. At the top
      // level `event` begins a declaration, so callers only use
      // type_starts_here() in statement position.
      return peek(1).is(TokenKind::Ident) && peek(2).is(TokenKind::Assign);
    case TokenKind::Ident:
      return peek().text == "Array" && peek(1).is(TokenKind::Shl);
    default:
      return false;
  }
}

Type Parser::parse_type() {
  const Token& t = peek();
  switch (t.kind) {
    case TokenKind::KwInt: {
      advance();
      int width = 32;
      if (match(TokenKind::Shl)) {
        const Token* w = expect(TokenKind::IntLit, "integer width");
        if (w) width = static_cast<int>(w->int_value);
        expect(TokenKind::Shr, "to close integer width");
      }
      return Type::int_ty(width);
    }
    case TokenKind::KwBool:
      advance();
      return Type::bool_ty();
    case TokenKind::KwVoid:
      advance();
      return Type::void_ty();
    case TokenKind::KwEvent:
      advance();
      return Type::event_ty();
    case TokenKind::KwGroup:
      advance();
      return Type::group_ty();
    case TokenKind::Ident:
      if (t.text == "Array") {
        advance();
        int width = 32;
        if (expect(TokenKind::Shl, "to open Array width")) {
          const Token* w = expect(TokenKind::IntLit, "Array width");
          if (w) width = static_cast<int>(w->int_value);
          expect(TokenKind::Shr, "to close Array width");
        }
        return Type::array_ty(width);
      }
      [[fallthrough]];
    default:
      diags_.error(t.range, "parse-bad-type",
                   "expected a type, found " + t.str());
      advance();
      return Type::unknown();
  }
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

Block Parser::parse_block() {
  Block block;
  if (!expect(TokenKind::LBrace, "to open block")) return block;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    StmtPtr s = parse_stmt();
    if (s) {
      block.push_back(std::move(s));
    } else {
      synchronize();
    }
  }
  expect(TokenKind::RBrace, "to close block");
  return block;
}

StmtPtr Parser::parse_stmt() {
  const SrcLoc start = peek().range.begin;

  if (check(TokenKind::KwIf)) return parse_if();

  if (check(TokenKind::KwGenerate) || check(TokenKind::KwMGenerate)) {
    auto s = std::make_unique<GenerateStmt>();
    s->multicast = check(TokenKind::KwMGenerate);
    advance();
    s->event = parse_expr();
    if (!s->event) return nullptr;
    expect(TokenKind::Semi, "after generate");
    s->range = SrcRange{start, peek().range.begin};
    return s;
  }

  if (check(TokenKind::KwReturn)) {
    advance();
    auto s = std::make_unique<ReturnStmt>();
    if (!check(TokenKind::Semi)) {
      s->value = parse_expr();
      if (!s->value) return nullptr;
    }
    expect(TokenKind::Semi, "after return");
    s->range = SrcRange{start, peek().range.begin};
    return s;
  }

  if (type_starts_here()) {
    auto s = std::make_unique<LocalDeclStmt>();
    s->declared_type = parse_type();
    const Token* name = expect(TokenKind::Ident, "local variable name");
    if (!name) return nullptr;
    s->name = name->text;
    if (!expect(TokenKind::Assign, "local variables must be initialized")) {
      return nullptr;
    }
    s->init = parse_expr();
    if (!s->init) return nullptr;
    expect(TokenKind::Semi, "after local declaration");
    s->range = SrcRange{start, peek().range.begin};
    return s;
  }

  // `x = e;` assignment.
  if (check(TokenKind::Ident) && peek(1).is(TokenKind::Assign)) {
    auto s = std::make_unique<AssignStmt>();
    s->name = advance().text;
    advance();  // '='
    s->value = parse_expr();
    if (!s->value) return nullptr;
    expect(TokenKind::Semi, "after assignment");
    s->range = SrcRange{start, peek().range.begin};
    return s;
  }

  // Expression statement (Array.set(...), function call, ...).
  auto s = std::make_unique<ExprStmt>();
  s->expr = parse_expr();
  if (!s->expr) return nullptr;
  expect(TokenKind::Semi, "after expression statement");
  s->range = SrcRange{start, peek().range.begin};
  return s;
}

StmtPtr Parser::parse_if() {
  const SrcLoc start = peek().range.begin;
  advance();  // if
  auto s = std::make_unique<IfStmt>();
  if (!expect(TokenKind::LParen, "after 'if'")) return nullptr;
  s->cond = parse_expr();
  if (!s->cond) return nullptr;
  expect(TokenKind::RParen, "after if condition");
  s->then_block = parse_block();
  if (match(TokenKind::KwElse)) {
    if (check(TokenKind::KwIf)) {
      StmtPtr nested = parse_if();
      if (nested) s->else_block.push_back(std::move(nested));
    } else {
      s->else_block = parse_block();
    }
  }
  s->range = SrcRange{start, peek().range.begin};
  return s;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

ExprPtr Parser::parse_binary(int min_prec) {
  ExprPtr lhs = parse_unary();
  if (!lhs) return nullptr;
  while (true) {
    const int prec = binop_precedence(peek().kind);
    if (prec < 0 || prec < min_prec) return lhs;
    const Token& op_tok = advance();
    ExprPtr rhs = parse_binary(prec + 1);  // left-associative
    if (!rhs) return nullptr;
    auto bin = std::make_unique<BinaryExpr>();
    bin->op = token_to_binop(op_tok.kind);
    bin->range = SrcRange{lhs->range.begin, peek().range.begin};
    bin->lhs = std::move(lhs);
    bin->rhs = std::move(rhs);
    lhs = std::move(bin);
  }
}

ExprPtr Parser::parse_unary() {
  const SrcLoc start = peek().range.begin;
  UnOp op;
  if (match(TokenKind::Minus)) {
    op = UnOp::Neg;
  } else if (match(TokenKind::Bang)) {
    op = UnOp::Not;
  } else if (match(TokenKind::Tilde)) {
    op = UnOp::BitNot;
  } else {
    return parse_primary();
  }
  auto u = std::make_unique<UnaryExpr>();
  u->op = op;
  u->sub = parse_unary();
  if (!u->sub) return nullptr;
  u->range = SrcRange{start, peek().range.begin};
  return u;
}

ExprPtr Parser::parse_primary() {
  const Token& t = peek();
  const SrcLoc start = t.range.begin;

  if (t.is(TokenKind::IntLit)) {
    advance();
    auto e = std::make_unique<IntLitExpr>();
    e->value = t.int_value;
    e->is_time = t.is_time;
    e->range = t.range;
    return e;
  }
  if (t.is(TokenKind::KwTrue) || t.is(TokenKind::KwFalse)) {
    advance();
    auto e = std::make_unique<BoolLitExpr>();
    e->value = t.is(TokenKind::KwTrue);
    e->range = t.range;
    return e;
  }
  if (match(TokenKind::LParen)) {
    ExprPtr inner = parse_expr();
    expect(TokenKind::RParen, "to close parenthesized expression");
    return inner;
  }
  if (t.is(TokenKind::Ident)) {
    advance();
    std::string name = t.text;
    // Qualified name: Array.get, Event.delay, Sys.time, ...
    if (match(TokenKind::Dot)) {
      const Token* member = expect(TokenKind::Ident, "after '.'");
      if (!member) return nullptr;
      name += ".";
      name += member->text;
    }
    if (check(TokenKind::LParen)) {
      advance();
      auto call = std::make_unique<CallExpr>();
      call->callee = std::move(name);
      if (!check(TokenKind::RParen)) {
        do {
          ExprPtr arg = parse_expr();
          if (!arg) return nullptr;
          call->args.push_back(std::move(arg));
        } while (match(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "to close call arguments");
      call->range = SrcRange{start, peek().range.begin};
      return call;
    }
    auto ref = std::make_unique<VarRefExpr>();
    ref->name = std::move(name);
    ref->range = t.range;
    return ref;
  }

  diags_.error(t.range, "parse-bad-expr",
               "expected an expression, found " + t.str());
  return nullptr;
}

}  // namespace lucid::frontend
