#include "frontend/printer.hpp"

#include <sstream>

namespace lucid::frontend {

namespace {

std::string pad(int indent) {
  return std::string(static_cast<std::size_t>(indent) * 2, ' ');
}

}  // namespace

std::string print_expr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::IntLit: {
      const auto* lit = e.as<IntLitExpr>();
      if (lit->is_time) {
        // Print in the largest exact unit.
        const std::uint64_t v = lit->value;
        if (v % 1'000'000'000 == 0) return std::to_string(v / 1'000'000'000) + "s";
        if (v % 1'000'000 == 0) return std::to_string(v / 1'000'000) + "ms";
        if (v % 1'000 == 0) return std::to_string(v / 1'000) + "us";
        return std::to_string(v) + "ns";
      }
      return std::to_string(lit->value);
    }
    case ExprKind::BoolLit:
      return e.as<BoolLitExpr>()->value ? "true" : "false";
    case ExprKind::VarRef:
      return e.as<VarRefExpr>()->name;
    case ExprKind::Unary: {
      const auto* u = e.as<UnaryExpr>();
      return std::string(unop_name(u->op)) + "(" + print_expr(*u->sub) + ")";
    }
    case ExprKind::Binary: {
      const auto* b = e.as<BinaryExpr>();
      return "(" + print_expr(*b->lhs) + " " + std::string(binop_name(b->op)) +
             " " + print_expr(*b->rhs) + ")";
    }
    case ExprKind::Call: {
      const auto* c = e.as<CallExpr>();
      std::ostringstream os;
      os << c->callee << "(";
      for (std::size_t i = 0; i < c->args.size(); ++i) {
        if (i > 0) os << ", ";
        os << print_expr(*c->args[i]);
      }
      os << ")";
      return os.str();
    }
  }
  return "<bad-expr>";
}

std::string print_block(const Block& b, int indent) {
  std::ostringstream os;
  os << "{\n";
  for (const auto& s : b) os << print_stmt(*s, indent + 1);
  os << pad(indent) << "}";
  return os.str();
}

std::string print_stmt(const Stmt& s, int indent) {
  std::ostringstream os;
  os << pad(indent);
  switch (s.kind) {
    case StmtKind::LocalDecl: {
      const auto* d = s.as<LocalDeclStmt>();
      os << d->declared_type.str() << " " << d->name << " = "
         << print_expr(*d->init) << ";\n";
      break;
    }
    case StmtKind::Assign: {
      const auto* a = s.as<AssignStmt>();
      os << a->name << " = " << print_expr(*a->value) << ";\n";
      break;
    }
    case StmtKind::If: {
      const auto* i = s.as<IfStmt>();
      os << "if (" << print_expr(*i->cond) << ") "
         << print_block(i->then_block, indent);
      if (!i->else_block.empty()) {
        os << " else " << print_block(i->else_block, indent);
      }
      os << "\n";
      break;
    }
    case StmtKind::ExprStmt:
      os << print_expr(*s.as<ExprStmt>()->expr) << ";\n";
      break;
    case StmtKind::Generate: {
      const auto* g = s.as<GenerateStmt>();
      os << (g->multicast ? "mgenerate " : "generate ")
         << print_expr(*g->event) << ";\n";
      break;
    }
    case StmtKind::Return: {
      const auto* r = s.as<ReturnStmt>();
      os << "return";
      if (r->value) os << " " << print_expr(*r->value);
      os << ";\n";
      break;
    }
  }
  return os.str();
}

namespace {

std::string print_params(const std::vector<Param>& params) {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i > 0) os << ", ";
    os << params[i].type.str() << " " << params[i].name;
  }
  os << ")";
  return os.str();
}

}  // namespace

std::string print_decl(const Decl& d) {
  std::ostringstream os;
  switch (d.kind) {
    case DeclKind::Const: {
      const auto* c = d.as<ConstDecl>();
      os << "const " << c->declared_type.str() << " " << d.name << " = "
         << print_expr(*c->value) << ";\n";
      break;
    }
    case DeclKind::Global: {
      const auto* g = d.as<GlobalDecl>();
      os << "global " << d.name << " = new Array<<" << g->width << ">>("
         << print_expr(*g->size) << ");\n";
      break;
    }
    case DeclKind::Memop: {
      const auto* m = d.as<MemopDecl>();
      os << "memop " << d.name << print_params(m->params) << " "
         << print_block(m->body, 0) << "\n";
      break;
    }
    case DeclKind::Fun: {
      const auto* f = d.as<FunDecl>();
      os << "fun " << f->return_type.str() << " " << d.name
         << print_params(f->params) << " " << print_block(f->body, 0) << "\n";
      break;
    }
    case DeclKind::Event: {
      const auto* e = d.as<EventDecl>();
      os << "event " << d.name << print_params(e->params) << ";\n";
      break;
    }
    case DeclKind::Handler: {
      const auto* h = d.as<HandlerDecl>();
      os << "handle " << d.name << print_params(h->params) << " "
         << print_block(h->body, 0) << "\n";
      break;
    }
    case DeclKind::Group: {
      const auto* g = d.as<GroupDecl>();
      os << "const group " << d.name << " = {";
      for (std::size_t i = 0; i < g->members.size(); ++i) {
        if (i > 0) os << ", ";
        os << print_expr(*g->members[i]);
      }
      os << "};\n";
      break;
    }
  }
  return os.str();
}

std::string print_program(const Program& p) {
  std::ostringstream os;
  for (const auto& d : p.decls) os << print_decl(*d);
  return os.str();
}

// The pretty-printer already renders purely from the AST — no comments, one
// normalized spacing — so it *is* the canonical form. These names pin that
// contract for fingerprint consumers: print_decl may evolve for human
// output, but canonical_print_decl changing means every structural cache key
// changes, which the fingerprint tests guard.
std::string canonical_print_decl(const Decl& d) { return print_decl(d); }

std::string canonical_print_program(const Program& p) {
  return print_program(p);
}

// ---------------------------------------------------------------------------
// Structural equality
// ---------------------------------------------------------------------------

bool expr_equal(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ExprKind::IntLit: {
      const auto* x = a.as<IntLitExpr>();
      const auto* y = b.as<IntLitExpr>();
      return x->value == y->value;
    }
    case ExprKind::BoolLit:
      return a.as<BoolLitExpr>()->value == b.as<BoolLitExpr>()->value;
    case ExprKind::VarRef:
      return a.as<VarRefExpr>()->name == b.as<VarRefExpr>()->name;
    case ExprKind::Unary: {
      const auto* x = a.as<UnaryExpr>();
      const auto* y = b.as<UnaryExpr>();
      return x->op == y->op && expr_equal(*x->sub, *y->sub);
    }
    case ExprKind::Binary: {
      const auto* x = a.as<BinaryExpr>();
      const auto* y = b.as<BinaryExpr>();
      return x->op == y->op && expr_equal(*x->lhs, *y->lhs) &&
             expr_equal(*x->rhs, *y->rhs);
    }
    case ExprKind::Call: {
      const auto* x = a.as<CallExpr>();
      const auto* y = b.as<CallExpr>();
      if (x->callee != y->callee || x->args.size() != y->args.size()) {
        return false;
      }
      for (std::size_t i = 0; i < x->args.size(); ++i) {
        if (!expr_equal(*x->args[i], *y->args[i])) return false;
      }
      return true;
    }
  }
  return false;
}

bool block_equal(const Block& a, const Block& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!stmt_equal(*a[i], *b[i])) return false;
  }
  return true;
}

bool stmt_equal(const Stmt& a, const Stmt& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case StmtKind::LocalDecl: {
      const auto* x = a.as<LocalDeclStmt>();
      const auto* y = b.as<LocalDeclStmt>();
      return x->declared_type == y->declared_type && x->name == y->name &&
             expr_equal(*x->init, *y->init);
    }
    case StmtKind::Assign: {
      const auto* x = a.as<AssignStmt>();
      const auto* y = b.as<AssignStmt>();
      return x->name == y->name && expr_equal(*x->value, *y->value);
    }
    case StmtKind::If: {
      const auto* x = a.as<IfStmt>();
      const auto* y = b.as<IfStmt>();
      return expr_equal(*x->cond, *y->cond) &&
             block_equal(x->then_block, y->then_block) &&
             block_equal(x->else_block, y->else_block);
    }
    case StmtKind::ExprStmt:
      return expr_equal(*a.as<ExprStmt>()->expr, *b.as<ExprStmt>()->expr);
    case StmtKind::Generate: {
      const auto* x = a.as<GenerateStmt>();
      const auto* y = b.as<GenerateStmt>();
      return x->multicast == y->multicast && expr_equal(*x->event, *y->event);
    }
    case StmtKind::Return: {
      const auto* x = a.as<ReturnStmt>();
      const auto* y = b.as<ReturnStmt>();
      if ((x->value == nullptr) != (y->value == nullptr)) return false;
      return !x->value || expr_equal(*x->value, *y->value);
    }
  }
  return false;
}

namespace {

bool params_equal(const std::vector<Param>& a, const std::vector<Param>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].type == b[i].type) || a[i].name != b[i].name) return false;
  }
  return true;
}

}  // namespace

bool decl_equal(const Decl& a, const Decl& b) {
  if (a.kind != b.kind || a.name != b.name) return false;
  switch (a.kind) {
    case DeclKind::Const: {
      const auto* x = a.as<ConstDecl>();
      const auto* y = b.as<ConstDecl>();
      return x->declared_type == y->declared_type &&
             expr_equal(*x->value, *y->value);
    }
    case DeclKind::Global: {
      const auto* x = a.as<GlobalDecl>();
      const auto* y = b.as<GlobalDecl>();
      return x->width == y->width && expr_equal(*x->size, *y->size);
    }
    case DeclKind::Memop: {
      const auto* x = a.as<MemopDecl>();
      const auto* y = b.as<MemopDecl>();
      return params_equal(x->params, y->params) &&
             block_equal(x->body, y->body);
    }
    case DeclKind::Fun: {
      const auto* x = a.as<FunDecl>();
      const auto* y = b.as<FunDecl>();
      return x->return_type == y->return_type &&
             params_equal(x->params, y->params) &&
             block_equal(x->body, y->body);
    }
    case DeclKind::Event: {
      const auto* x = a.as<EventDecl>();
      const auto* y = b.as<EventDecl>();
      return params_equal(x->params, y->params);
    }
    case DeclKind::Handler: {
      const auto* x = a.as<HandlerDecl>();
      const auto* y = b.as<HandlerDecl>();
      return params_equal(x->params, y->params) &&
             block_equal(x->body, y->body);
    }
    case DeclKind::Group: {
      const auto* x = a.as<GroupDecl>();
      const auto* y = b.as<GroupDecl>();
      if (x->members.size() != y->members.size()) return false;
      for (std::size_t i = 0; i < x->members.size(); ++i) {
        if (!expr_equal(*x->members[i], *y->members[i])) return false;
      }
      return true;
    }
  }
  return false;
}

bool program_equal(const Program& a, const Program& b) {
  if (a.decls.size() != b.decls.size()) return false;
  for (std::size_t i = 0; i < a.decls.size(); ++i) {
    if (!decl_equal(*a.decls[i], *b.decls[i])) return false;
  }
  return true;
}

}  // namespace lucid::frontend
