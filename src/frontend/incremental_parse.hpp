// Incremental lexing + parsing by top-level declaration span.
//
// The edit loop's remaining front-end cost is re-lexing and re-parsing the
// whole buffer on every keystroke. This module makes Parse O(edit): a
// lightweight byte scanner (no tokenization) splits a source buffer into
// top-level decl spans, spans are matched byte-for-byte against the previous
// compile's buffer, and every unchanged span *splices* the previous AST node
// by shared pointer — only edited spans are re-lexed (with positions offset
// to their place in the file) and re-parsed.
//
// Contract (see tests/README.md "Incremental front end"):
//   * A spliced decl is the previous compilation's node, annotations and
//     source ranges included. Byte-identical span text guarantees an
//     identical parse and an identical structural fingerprint, so the
//     recompile planner can reuse the previous fingerprint without
//     re-printing.
//   * Spliced nodes are shared between compilations and must not be mutated;
//     CompilerDriver::recompile deep-clones (frontend::clone_decl) any
//     spliced decl that lands in the sema dirty set before re-checking it.
//   * Anything irregular — scanner failure on either buffer, an unknown
//     leading keyword, prev's parse having dropped decls — returns nullopt
//     and the caller falls back to a full Parser::parse. Incremental parse
//     is an optimization, never a semantic fork.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "frontend/ast.hpp"
#include "support/diagnostics.hpp"

namespace lucid::frontend {

/// One top-level declaration's byte span in a source buffer.
struct DeclSpan {
  std::size_t begin = 0;   // first byte of the decl keyword
  std::size_t end = 0;     // one past the last byte (the ';' or '}')
  SrcLoc start;            // line/col of `begin` in the whole buffer
  std::uint64_t hash = 0;  // fnv1a64 over the raw bytes [begin, end)
};

/// Split raw source into top-level decl spans without lexing: skip
/// whitespace/comments, read the decl keyword, and cut at the decl's
/// terminator (`;` at depth 0, or the `}` closing the body block for
/// memop/fun/handle). Returns nullopt on any irregularity — unknown leading
/// word, unbalanced braces, unterminated comment — which callers must treat
/// as "full parse required".
[[nodiscard]] std::optional<std::vector<DeclSpan>> scan_decl_spans(
    std::string_view source);

struct IncrementalParseResult {
  Program program;
  /// Parallel to program.decls: the index into prev.decls each decl was
  /// spliced from, or -1 when its span was re-parsed.
  std::vector<int> spliced_from;
  /// The new buffer's span table — callers cache it on the new compilation
  /// so the *next* edit scans only its own buffer (see
  /// Compilation::decl_spans).
  std::vector<DeclSpan> spans;
  int reused = 0;  // == count of spliced_from[i] >= 0
};

/// Parse `source` against the previous compile (`prev` parsed from
/// `prev_source`, whose span table `prev_spans` the caller supplies —
/// normally from a cache, so each edit scans one buffer, not two), splicing
/// byte-identical decl spans and re-parsing the rest. Diagnostics from
/// re-parsed spans go to `diags` with whole-file positions. Returns nullopt
/// when splicing is not possible (scanner failure on the new buffer, prev
/// span/decl count mismatch) — caller falls back to Parser::parse.
[[nodiscard]] std::optional<IncrementalParseResult> incremental_parse(
    std::string_view source, std::string_view prev_source,
    const std::vector<DeclSpan>& prev_spans, const Program& prev,
    DiagnosticEngine& diags);

}  // namespace lucid::frontend
