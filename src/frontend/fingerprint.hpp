// Structural per-decl fingerprints: the identity a top-level declaration
// keeps across whitespace, comment, and formatting edits.
//
// A `DeclFingerprint` hashes a decl's *canonical print* (frontend/printer's
// `canonical_print_decl`: the AST rendered back to surface syntax, so
// comments are gone and all spacing is normalized) together with its kind
// and name. Two decls have equal fingerprints iff they are structurally
// identical declarations of the same thing — `decl_equal` modulo hash
// collisions (callers that must be collision-proof confirm with
// `decl_equal`, which is cheap).
//
// `structural_hash` folds the *ordered* fingerprint sequence of a whole
// program into one key:
//
//   * whitespace/comment/formatting edits do not change it (the canonical
//     print is identical);
//   * any decl edit, insertion, deletion, or reorder does (order matters:
//     global declaration order is the paper's pipeline-stage specification,
//     and event order assigns wire ids).
//
// This is the key the ArtifactCache (core/cache) uses in place of a byte
// hash of the source, and the unit of diffing for the incremental
// recompile pipeline (CompilerDriver::recompile, sema::plan_recompile).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "frontend/ast.hpp"

namespace lucid::frontend {

struct DeclFingerprint {
  DeclKind kind = DeclKind::Const;
  std::string name;
  /// FNV-1a over "<kind>\x1f<name>\x1f<canonical print>".
  std::uint64_t hash = 0;

  friend bool operator==(const DeclFingerprint&,
                         const DeclFingerprint&) = default;
};

/// Stable lower-case decl-kind name ("const", "global", "memop", "fun",
/// "event", "handler", "group") — part of the fingerprint preimage, also
/// used by diagnostics and reports.
[[nodiscard]] std::string_view decl_kind_name(DeclKind k);

[[nodiscard]] DeclFingerprint fingerprint_decl(const Decl& d);

/// One fingerprint per top-level decl, in declaration order.
[[nodiscard]] std::vector<DeclFingerprint> fingerprint_program(
    const Program& p);

/// The program's structural hash: FNV-1a over the ordered fingerprint
/// sequence (kind, name, per-decl hash of every decl, in order).
[[nodiscard]] std::uint64_t structural_hash(
    const std::vector<DeclFingerprint>& fps);
[[nodiscard]] std::uint64_t structural_hash(const Program& p);

}  // namespace lucid::frontend
