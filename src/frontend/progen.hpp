// Deterministic synthetic Lucid program generator.
//
// Produces well-formed programs of a requested shape — N const / global /
// memop / fun decls and M event+handler pairs — that parse, type-check, and
// lower cleanly: every handler's array accesses are emitted in declaration
// order (each array at most once), so the ordered type system accepts every
// generated program by construction.
//
// The generator is a pure function of (config, seed): the same inputs yield
// byte-identical source on every platform (it uses its own splitmix64, not
// std distributions). The incremental-front-end benches and the differential
// tests both lean on that — they regenerate the same program and apply
// deterministic single-decl edits to it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace lucid::frontend {

struct ProgenConfig {
  int consts = 10;    // const int C<i> = ...;
  int arrays = 12;    // global a<i> = new Array<<32>>(64);
  int memops = 6;     // memop m<i>(int cur, int x) { ... }
  int funs = 4;       // fun int f<i>(int a, int b) { ... }
  int handlers = 40;  // event ev<i>(...); handle ev<i>(...) { ... }
  int stmts_per_handler = 10;  // body-size knob (locals + array ops)
  std::uint64_t seed = 0x5eedULL;

  /// Total top-level decls a generated program will contain.
  [[nodiscard]] int decl_count() const {
    return consts + arrays + memops + funs + 2 * handlers;
  }
};

/// Generates the program source. Deterministic in (config, seed).
[[nodiscard]] std::string generate_program(const ProgenConfig& config);

/// Returns `source` with `stmt` inserted at the top of the `which`-th
/// handler body (0-based, clamped): the canonical one-decl edit used by the
/// incremental benches and tests. Returns `source` unchanged when it has no
/// handler.
[[nodiscard]] std::string edit_one_handler(
    const std::string& source, int which,
    std::string_view stmt = " int __edit = 1 + 2; ");

}  // namespace lucid::frontend
