// Abstract syntax tree for the Lucid dialect.
//
// Nodes follow the LLVM style: a base class with a kind tag plus derived
// structs, and `as<T>()` helpers for checked downcasts. Sema fills in the
// annotation fields (types, resolved call kinds, constant values, stage
// effects) in place, so later stages can consume a single annotated tree.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/source_location.hpp"

namespace lucid::frontend {

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

enum class TypeKind {
  Unknown,
  Void,
  Bool,
  Int,    // int<<w>>; plain `int` is int<<32>>
  Event,  // a constructed event value
  Group,  // a multicast group
  Array,  // Array<<w>> global
};

struct Type {
  TypeKind kind = TypeKind::Unknown;
  int width = 32;  // meaningful for Int and Array

  static Type unknown() { return {TypeKind::Unknown, 0}; }
  static Type void_ty() { return {TypeKind::Void, 0}; }
  static Type bool_ty() { return {TypeKind::Bool, 1}; }
  static Type int_ty(int w = 32) { return {TypeKind::Int, w}; }
  static Type event_ty() { return {TypeKind::Event, 0}; }
  static Type group_ty() { return {TypeKind::Group, 0}; }
  static Type array_ty(int w) { return {TypeKind::Array, w}; }

  [[nodiscard]] bool is_int() const { return kind == TypeKind::Int; }
  [[nodiscard]] bool is_bool() const { return kind == TypeKind::Bool; }
  [[nodiscard]] bool is_event() const { return kind == TypeKind::Event; }

  [[nodiscard]] std::string str() const;

  friend bool operator==(const Type& a, const Type& b) {
    if (a.kind != b.kind) return false;
    if (a.kind == TypeKind::Int || a.kind == TypeKind::Array) {
      return a.width == b.width;
    }
    return true;
  }
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  IntLit,
  BoolLit,
  VarRef,
  Unary,
  Binary,
  Call,
};

enum class UnOp { Neg, Not, BitNot };
enum class BinOp {
  Add, Sub, Mul, Div, Mod,
  BitAnd, BitOr, BitXor, Shl, Shr,
  Eq, Ne, Lt, Gt, Le, Ge,
  LAnd, LOr,
};

[[nodiscard]] std::string_view binop_name(BinOp op);
[[nodiscard]] std::string_view unop_name(UnOp op);
[[nodiscard]] bool binop_is_comparison(BinOp op);
[[nodiscard]] bool binop_is_logical(BinOp op);

/// How a CallExpr was resolved by sema.
enum class CallKind {
  Unresolved,
  UserFun,      // call to a `fun`
  EventCtor,    // event value construction: evname(args)
  ArrayGet,     // Array.get(arr, idx [, memop, arg])
  ArrayGetm,    // Array.getm — explicit read-memop spelling
  ArraySet,     // Array.set(arr, idx, val) or (arr, idx, memop, arg)
  ArraySetm,    // Array.setm — explicit write-memop spelling
  ArrayUpdate,  // Array.update(arr, idx, getm, garg, setm, sarg)
  EventDelay,   // Event.delay(ev, time)
  EventLocate,  // Event.locate(ev, loc) — loc is a switch id or group
  Hash,         // hash(seed, args...) -> int
  SysTime,      // Sys.time() -> int (ns, truncated)
  SysSelf,      // Sys.self() -> int switch id
};

struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  ExprKind kind;
  SrcRange range;
  // Sema annotations.
  Type type = Type::unknown();

  template <typename T>
  [[nodiscard]] T* as() {
    assert(T::class_kind == kind);
    return static_cast<T*>(this);
  }
  template <typename T>
  [[nodiscard]] const T* as() const {
    assert(T::class_kind == kind);
    return static_cast<const T*>(this);
  }
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr final : Expr {
  static constexpr ExprKind class_kind = ExprKind::IntLit;
  IntLitExpr() : Expr(class_kind) {}
  std::uint64_t value = 0;
  bool is_time = false;  // literal had a time suffix; value is nanoseconds
};

struct BoolLitExpr final : Expr {
  static constexpr ExprKind class_kind = ExprKind::BoolLit;
  BoolLitExpr() : Expr(class_kind) {}
  bool value = false;
};

/// A reference to a local variable, parameter, `const`, `global`, `group`,
/// or (as an Array-method argument) a memop by name.
struct VarRefExpr final : Expr {
  static constexpr ExprKind class_kind = ExprKind::VarRef;
  VarRefExpr() : Expr(class_kind) {}
  std::string name;
  // Sema annotations:
  bool is_const = false;               // resolved to a `const` (or literal)
  std::int64_t const_value = 0;        // valid when is_const
  bool is_global_array = false;        // resolved to a `global` array
  bool is_group = false;               // resolved to a `group`
  bool is_memop_ref = false;           // names a memop (Array-call argument)
};

struct UnaryExpr final : Expr {
  static constexpr ExprKind class_kind = ExprKind::Unary;
  UnaryExpr() : Expr(class_kind) {}
  UnOp op = UnOp::Neg;
  ExprPtr sub;
};

struct BinaryExpr final : Expr {
  static constexpr ExprKind class_kind = ExprKind::Binary;
  BinaryExpr() : Expr(class_kind) {}
  BinOp op = BinOp::Add;
  ExprPtr lhs;
  ExprPtr rhs;
};

/// Any call-shaped expression: user functions, event constructors, Array
/// methods, Event combinators, and builtins. `callee` keeps the dotted
/// spelling (e.g. "Array.get"); sema resolves `resolved`.
struct CallExpr final : Expr {
  static constexpr ExprKind class_kind = ExprKind::Call;
  CallExpr() : Expr(class_kind) {}
  std::string callee;
  std::vector<ExprPtr> args;
  CallKind resolved = CallKind::Unresolved;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  LocalDecl,
  Assign,
  If,
  ExprStmt,
  Generate,
  Return,
};

struct Stmt {
  explicit Stmt(StmtKind k) : kind(k) {}
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  StmtKind kind;
  SrcRange range;

  template <typename T>
  [[nodiscard]] T* as() {
    assert(T::class_kind == kind);
    return static_cast<T*>(this);
  }
  template <typename T>
  [[nodiscard]] const T* as() const {
    assert(T::class_kind == kind);
    return static_cast<const T*>(this);
  }
};

using StmtPtr = std::unique_ptr<Stmt>;
using Block = std::vector<StmtPtr>;

struct LocalDeclStmt final : Stmt {
  static constexpr StmtKind class_kind = StmtKind::LocalDecl;
  LocalDeclStmt() : Stmt(class_kind) {}
  Type declared_type;
  std::string name;
  ExprPtr init;
};

struct AssignStmt final : Stmt {
  static constexpr StmtKind class_kind = StmtKind::Assign;
  AssignStmt() : Stmt(class_kind) {}
  std::string name;
  ExprPtr value;
};

struct IfStmt final : Stmt {
  static constexpr StmtKind class_kind = StmtKind::If;
  IfStmt() : Stmt(class_kind) {}
  ExprPtr cond;
  Block then_block;
  Block else_block;  // may be empty
};

struct ExprStmt final : Stmt {
  static constexpr StmtKind class_kind = StmtKind::ExprStmt;
  ExprStmt() : Stmt(class_kind) {}
  ExprPtr expr;
};

/// `generate e;` schedules an event for execution; `mgenerate e;` schedules a
/// multicast event (the paper's `mgenerate` with a group-located event).
struct GenerateStmt final : Stmt {
  static constexpr StmtKind class_kind = StmtKind::Generate;
  GenerateStmt() : Stmt(class_kind) {}
  bool multicast = false;
  ExprPtr event;
};

struct ReturnStmt final : Stmt {
  static constexpr StmtKind class_kind = StmtKind::Return;
  ReturnStmt() : Stmt(class_kind) {}
  ExprPtr value;  // null for `return;`
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

enum class DeclKind {
  Const,
  Global,
  Memop,
  Fun,
  Event,
  Handler,
  Group,
};

struct Param {
  Type type;
  std::string name;
  SrcRange range;
};

struct Decl {
  explicit Decl(DeclKind k) : kind(k) {}
  virtual ~Decl() = default;
  Decl(const Decl&) = delete;
  Decl& operator=(const Decl&) = delete;

  DeclKind kind;
  SrcRange range;
  std::string name;

  template <typename T>
  [[nodiscard]] T* as() {
    assert(T::class_kind == kind);
    return static_cast<T*>(this);
  }
  template <typename T>
  [[nodiscard]] const T* as() const {
    assert(T::class_kind == kind);
    return static_cast<const T*>(this);
  }
};

// Decls are shared so the incremental parser can splice unchanged nodes from
// the previous compilation's Program by pointer — O(1) per clean decl. The
// recompile pipeline deep-clones any spliced decl the dirty set will
// re-annotate (see clone_decl), so shared nodes are never mutated while two
// compilations can both reach them.
using DeclPtr = std::shared_ptr<Decl>;

struct ConstDecl final : Decl {
  static constexpr DeclKind class_kind = DeclKind::Const;
  ConstDecl() : Decl(class_kind) {}
  Type declared_type;
  ExprPtr value;
  // Sema annotation:
  std::int64_t resolved_value = 0;
};

/// `global name = new Array<<width>>(size);`
/// Declaration order defines the pipeline-stage specification that the
/// ordered type system checks against (paper section 5.1).
struct GlobalDecl final : Decl {
  static constexpr DeclKind class_kind = DeclKind::Global;
  GlobalDecl() : Decl(class_kind) {}
  int width = 32;
  ExprPtr size;
  // Sema annotations:
  std::int64_t resolved_size = 0;
  int stage_index = -1;  // position in declaration order
};

/// Memops are parsed as ordinary function bodies; the sema-stage memop
/// validator enforces the single-ALU syntactic restrictions.
struct MemopDecl final : Decl {
  static constexpr DeclKind class_kind = DeclKind::Memop;
  MemopDecl() : Decl(class_kind) {}
  std::vector<Param> params;
  Block body;
};

struct FunDecl final : Decl {
  static constexpr DeclKind class_kind = DeclKind::Fun;
  FunDecl() : Decl(class_kind) {}
  Type return_type;
  std::vector<Param> params;
  Block body;
};

struct EventDecl final : Decl {
  static constexpr DeclKind class_kind = DeclKind::Event;
  EventDecl() : Decl(class_kind) {}
  std::vector<Param> params;
  // Sema annotation: dense id used for wire headers and dispatch.
  int event_id = -1;
};

struct HandlerDecl final : Decl {
  static constexpr DeclKind class_kind = DeclKind::Handler;
  HandlerDecl() : Decl(class_kind) {}
  std::vector<Param> params;
  Block body;
};

/// `const group NAME = {1, 2, 3};`
struct GroupDecl final : Decl {
  static constexpr DeclKind class_kind = DeclKind::Group;
  GroupDecl() : Decl(class_kind) {}
  std::vector<ExprPtr> members;
  // Sema annotation:
  std::vector<std::int64_t> resolved_members;
};

// ---------------------------------------------------------------------------
// Program
// ---------------------------------------------------------------------------

struct Program {
  std::vector<DeclPtr> decls;

  [[nodiscard]] const Decl* find(std::string_view name, DeclKind kind) const;
  [[nodiscard]] Decl* find(std::string_view name, DeclKind kind);

  [[nodiscard]] const EventDecl* find_event(std::string_view name) const;
  [[nodiscard]] const HandlerDecl* find_handler(std::string_view name) const;
  [[nodiscard]] const MemopDecl* find_memop(std::string_view name) const;
  [[nodiscard]] const FunDecl* find_fun(std::string_view name) const;
  [[nodiscard]] const GlobalDecl* find_global(std::string_view name) const;
  [[nodiscard]] const GroupDecl* find_group(std::string_view name) const;

  /// Globals in declaration order (the stage specification).
  [[nodiscard]] std::vector<const GlobalDecl*> globals() const;
  [[nodiscard]] std::vector<const EventDecl*> events() const;
  [[nodiscard]] std::vector<const HandlerDecl*> handlers() const;
};

// Deep-copy helpers (used by function inlining in the IR lowering).
[[nodiscard]] ExprPtr clone_expr(const Expr& e);
[[nodiscard]] StmtPtr clone_stmt(const Stmt& s);
[[nodiscard]] Block clone_block(const Block& b);
// Deep-copies a whole declaration, annotations and ranges included. The
// recompile path uses this to un-share a spliced decl before sema mutates it.
[[nodiscard]] DeclPtr clone_decl(const Decl& d);

// Annotation mirroring: copy every sema annotation (expression types,
// resolved call kinds, VarRef resolution flags, const/size/id resolutions)
// from one tree onto a structurally identical one, in lockstep. This is how
// the incremental recompile pipeline re-annotates a freshly parsed decl that
// the structural diff proved unchanged, without re-running sema on its body.
// Returns false (leaving the target partially annotated) on any structural
// mismatch — callers treat that as "re-check the decl from scratch".
[[nodiscard]] bool copy_annotations(const Expr& from, Expr& to);
[[nodiscard]] bool copy_annotations(const Stmt& from, Stmt& to);
[[nodiscard]] bool copy_annotations(const Block& from, Block& to);
[[nodiscard]] bool copy_annotations(const Decl& from, Decl& to);

}  // namespace lucid::frontend
