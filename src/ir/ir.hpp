// Intermediate representation: atomic table graphs (paper section 6.1).
//
// After sema, every handler is lowered (with function inlining and
// subexpression flattening) into a graph of *atomic tables*, each simple
// enough to execute with at most one Tofino ALU:
//
//   - operation tables   — one ALU op over two operands into a local;
//   - memory op tables   — one stateful-ALU visit to one register array;
//   - hash tables        — one hash-unit computation;
//   - generate tables    — write an event header (event id + args + combinator
//                          metadata) for the scheduler to serialize;
//   - branch tables      — compare a local against a constant to pick the
//                          next table (deleted by the branch-inlining pass).
//
// The optimizer (src/opt) consumes these graphs; the P4 backend (src/p4)
// renders the optimized layout.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "frontend/ast.hpp"
#include "support/diagnostics.hpp"

namespace lucid::ir {

// ---------------------------------------------------------------------------
// Operands
// ---------------------------------------------------------------------------

struct Operand {
  enum class Kind { None, Var, Const };
  Kind kind = Kind::None;
  std::string var;        // metadata/local name
  std::int64_t value = 0; // constant value
  int width = 32;

  static Operand none() { return {}; }
  static Operand of_var(std::string name, int width = 32) {
    Operand o;
    o.kind = Kind::Var;
    o.var = std::move(name);
    o.width = width;
    return o;
  }
  static Operand imm(std::int64_t v, int width = 32) {
    Operand o;
    o.kind = Kind::Const;
    o.value = v;
    o.width = width;
    return o;
  }

  [[nodiscard]] bool is_var() const { return kind == Kind::Var; }
  [[nodiscard]] bool is_const() const { return kind == Kind::Const; }
  [[nodiscard]] bool is_none() const { return kind == Kind::None; }
  [[nodiscard]] std::string str() const {
    switch (kind) {
      case Kind::None: return "_";
      case Kind::Var: return var;
      case Kind::Const: return std::to_string(value);
    }
    return "?";
  }
};

// ---------------------------------------------------------------------------
// Table payloads
// ---------------------------------------------------------------------------

/// dst = lhs [op rhs]; copy when op is empty.
struct OpStmt {
  std::string dst;
  int width = 32;
  Operand lhs;
  std::optional<frontend::BinOp> op;
  Operand rhs;
};

enum class MemKind { Get, Set, Update };

/// One stateful-ALU visit. Identity memops are represented by empty names.
struct MemStmt {
  std::string array;
  Operand index;
  MemKind kind = MemKind::Get;
  std::string dst;       // result local for Get/Update ("" for Set)
  std::string get_memop; // "" = plain read
  Operand get_arg;
  std::string set_memop; // "" = plain write of set_value
  Operand set_arg;
  Operand set_value;
  int cell_width = 32;
};

struct HashStmt {
  std::string dst;
  std::int64_t seed = 0;
  std::vector<Operand> args;
  /// Output mask (2^n - 1): the hash unit emits exactly n bits, so
  /// `hash(...) & MASK` folds into the unit instead of costing an ALU op.
  std::int64_t mask = -1;
};

/// Event generation: the scheduler metadata written for one generated event.
struct GenStmt {
  std::string event;
  int event_id = -1;
  std::vector<Operand> args;
  Operand delay = Operand::imm(0);    // nanoseconds
  Operand location = Operand::none(); // none = SELF unicast
  bool multicast = false;
  std::string group;                  // group name when located at a group
};

enum class CmpOp { Eq, Ne, Lt, Gt, Le, Ge };
[[nodiscard]] std::string_view cmp_name(CmpOp op);

/// Branch table: subject <cmp> constant, successors next[0] (true) and
/// next[1] (false).
struct BranchStmt {
  Operand subject;
  CmpOp cmp = CmpOp::Eq;
  std::int64_t constant = 0;
};

enum class TableKind { Op, Mem, Hash, Generate, Branch };
[[nodiscard]] std::string_view table_kind_name(TableKind k);

/// One test in a match rule: var == value (eq) or var != value (ternary).
struct MatchTest {
  std::string var;
  bool eq = true;
  std::int64_t value = 0;
};
/// A conjunction of tests (one match rule).
using Conj = std::vector<MatchTest>;

struct AtomicTable {
  int id = -1;
  TableKind kind = TableKind::Op;
  std::string handler;

  OpStmt op;
  MemStmt mem;
  HashStmt hash;
  GenStmt gen;
  BranchStmt branch;

  /// Successor table ids. Branch: [true_succ, false_succ] (-1 = exit).
  /// Others: zero or one successor.
  std::vector<int> next;

  /// Filled by the branch-inlining pass: disjunction of conjunctions under
  /// which this table executes. Empty = unconditional.
  std::vector<Conj> guards;

  [[nodiscard]] std::vector<std::string> reads() const;
  [[nodiscard]] std::vector<std::string> writes() const;
  /// Locals read by the guards (for anti-dependency edges).
  [[nodiscard]] std::vector<std::string> guard_reads() const;
  [[nodiscard]] std::string str() const;
};

// ---------------------------------------------------------------------------
// Graphs
// ---------------------------------------------------------------------------

struct HandlerGraph {
  std::string handler;
  int event_id = -1;
  std::vector<AtomicTable> tables;  // id == index
  int entry = -1;                   // -1 when the handler body is empty

  /// Tables on the longest entry->exit path; this is the paper's
  /// "unoptimized stage count" (one atomic table per stage, Fig 12).
  [[nodiscard]] int longest_path() const;
  [[nodiscard]] std::string str() const;
};

struct ArrayInfo {
  std::string name;
  int width = 32;
  std::int64_t size = 0;
  int decl_index = 0;  // declaration order == effect stage index
};

struct EventInfo {
  std::string name;
  int event_id = -1;
  std::vector<std::pair<std::string, int>> params;  // (name, width)
  bool has_handler = false;
};

struct MemopInfo {
  std::string name;
  // Canonicalized body: optional condition + the two return expressions.
  bool has_condition = false;
  Operand cond_lhs;  // params are Var operands named "cell"/"arg"
  CmpOp cond_op = CmpOp::Eq;
  Operand cond_rhs;
  // return expression: ret_lhs [ret_op ret_rhs]
  Operand then_lhs;
  std::optional<frontend::BinOp> then_op;
  Operand then_rhs;
  Operand else_lhs;
  std::optional<frontend::BinOp> else_op;
  Operand else_rhs;
};

struct GroupInfo {
  std::string name;
  std::vector<std::int64_t> members;
};

/// The whole lowered program: per-handler atomic table graphs plus the
/// metadata the optimizer, backend, and runtime need.
struct ProgramIR {
  std::vector<HandlerGraph> handlers;
  std::vector<ArrayInfo> arrays;       // in declaration (stage) order
  std::vector<EventInfo> events;       // indexed by event id
  std::vector<MemopInfo> memops;
  std::vector<GroupInfo> groups;
  std::map<std::string, int> array_index;
  std::map<std::string, int> memop_index;

  [[nodiscard]] const ArrayInfo* find_array(std::string_view name) const;
  [[nodiscard]] const MemopInfo* find_memop(std::string_view name) const;
  [[nodiscard]] int max_handler_longest_path() const;
  /// The paper's "unoptimized stage count" (Fig 12 numerator): without
  /// branch inlining, reordering, or merging, every atomic table needs its
  /// own stage and handlers occupy disjoint stage ranges, so the longest
  /// code path through the unoptimized pipeline is the sum of the handlers'
  /// critical paths.
  [[nodiscard]] int total_longest_path() const;
};

/// Incremental-lowering inputs (CompilerDriver::recompile): the previous
/// compile's IR plus the handlers the structural diff proved unchanged.
/// Program-level metadata (arrays, events, memops, groups) is always
/// rebuilt from the annotated AST — it is cheap and keeps declaration-order
/// semantics native — while each reused handler's atomic table graph is
/// spliced from `prev` instead of re-lowered. Splicing is byte-exact:
/// HandlerBuilder's temp numbering is per-handler, so a spliced graph is
/// identical to what re-lowering the unchanged handler would produce.
struct LowerReuse {
  const ProgramIR* prev = nullptr;
  std::set<std::string> handlers;  // handler names safe to splice
};

/// Lowers a type-checked program (function inlining + flattening to atomic
/// tables). Reports unsupported constructs through `diags`. A non-null
/// `reuse` splices unchanged handlers' graphs from a previous IR (see
/// LowerReuse); `reused_handlers`, when non-null, receives the number of
/// graphs spliced.
[[nodiscard]] ProgramIR lower(const frontend::Program& program,
                              DiagnosticEngine& diags,
                              const LowerReuse* reuse,
                              std::size_t* reused_handlers = nullptr);
[[nodiscard]] inline ProgramIR lower(const frontend::Program& program,
                                     DiagnosticEngine& diags) {
  return lower(program, diags, nullptr);
}

}  // namespace lucid::ir
