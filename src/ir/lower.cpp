// Lowering: type-checked AST -> atomic table graphs (paper section 6.1).
//
// Function calls are inlined (sema guarantees no recursion), expressions are
// flattened into three-address temporaries, and every statement becomes an
// atomic table. Event values bound to `event` locals are resolved to pending
// GenStmts whose operands are snapshotted at the binding point.
#include <functional>
#include <set>

#include "ir/ir.hpp"

namespace lucid::ir {

using namespace frontend;

std::string_view cmp_name(CmpOp op) {
  switch (op) {
    case CmpOp::Eq: return "==";
    case CmpOp::Ne: return "!=";
    case CmpOp::Lt: return "<";
    case CmpOp::Gt: return ">";
    case CmpOp::Le: return "<=";
    case CmpOp::Ge: return ">=";
  }
  return "?";
}

std::string_view table_kind_name(TableKind k) {
  switch (k) {
    case TableKind::Op: return "op";
    case TableKind::Mem: return "mem";
    case TableKind::Hash: return "hash";
    case TableKind::Generate: return "generate";
    case TableKind::Branch: return "branch";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// AtomicTable introspection
// ---------------------------------------------------------------------------

namespace {
void add_if_var(std::vector<std::string>& out, const Operand& o) {
  if (o.is_var()) out.push_back(o.var);
}
}  // namespace

std::vector<std::string> AtomicTable::reads() const {
  std::vector<std::string> out;
  switch (kind) {
    case TableKind::Op:
      add_if_var(out, op.lhs);
      add_if_var(out, op.rhs);
      break;
    case TableKind::Mem:
      add_if_var(out, mem.index);
      add_if_var(out, mem.get_arg);
      add_if_var(out, mem.set_arg);
      add_if_var(out, mem.set_value);
      break;
    case TableKind::Hash:
      for (const auto& a : hash.args) add_if_var(out, a);
      break;
    case TableKind::Generate:
      for (const auto& a : gen.args) add_if_var(out, a);
      add_if_var(out, gen.delay);
      add_if_var(out, gen.location);
      break;
    case TableKind::Branch:
      add_if_var(out, branch.subject);
      break;
  }
  return out;
}

std::vector<std::string> AtomicTable::writes() const {
  std::vector<std::string> out;
  switch (kind) {
    case TableKind::Op:
      out.push_back(op.dst);
      break;
    case TableKind::Mem:
      if (!mem.dst.empty()) out.push_back(mem.dst);
      break;
    case TableKind::Hash:
      out.push_back(hash.dst);
      break;
    case TableKind::Generate:
    case TableKind::Branch:
      break;
  }
  return out;
}

std::vector<std::string> AtomicTable::guard_reads() const {
  std::vector<std::string> out;
  for (const auto& conj : guards) {
    for (const auto& t : conj) out.push_back(t.var);
  }
  return out;
}

std::string AtomicTable::str() const {
  std::string s = "[" + std::to_string(id) + ":" +
                  std::string(table_kind_name(kind)) + "] ";
  switch (kind) {
    case TableKind::Op:
      s += op.dst + " = " + op.lhs.str();
      if (op.op) {
        s += " " + std::string(binop_name(*op.op)) + " " + op.rhs.str();
      }
      break;
    case TableKind::Mem: {
      const char* k = mem.kind == MemKind::Get
                          ? "get"
                          : (mem.kind == MemKind::Set ? "set" : "update");
      s += (mem.dst.empty() ? std::string("_") : mem.dst) + " = " + k + "(" +
           mem.array + ", " + mem.index.str() + ")";
      break;
    }
    case TableKind::Hash:
      s += hash.dst + " = hash(...)";
      break;
    case TableKind::Generate:
      s += "generate " + gen.event;
      break;
    case TableKind::Branch:
      s += "if " + branch.subject.str() + " " +
           std::string(cmp_name(branch.cmp)) + " " +
           std::to_string(branch.constant);
      break;
  }
  return s;
}

// ---------------------------------------------------------------------------
// HandlerGraph
// ---------------------------------------------------------------------------

int HandlerGraph::longest_path() const {
  if (entry < 0) return 0;
  std::vector<int> memo(tables.size(), -1);
  // Tables form a DAG; longest path by depth-first walk with memoization.
  std::vector<int> stack;
  const std::function<int(int)> walk = [&](int id) -> int {
    if (id < 0) return 0;
    int& m = memo[static_cast<std::size_t>(id)];
    if (m >= 0) return m;
    int best = 0;
    for (const int n : tables[static_cast<std::size_t>(id)].next) {
      best = std::max(best, walk(n));
    }
    m = 1 + best;
    return m;
  };
  return walk(entry);
}

std::string HandlerGraph::str() const {
  std::string s = "handler " + handler + " (entry " + std::to_string(entry) +
                  ")\n";
  for (const auto& t : tables) {
    s += "  " + t.str() + " ->";
    for (const int n : t.next) s += " " + std::to_string(n);
    s += "\n";
  }
  return s;
}

const ArrayInfo* ProgramIR::find_array(std::string_view name) const {
  const auto it = array_index.find(std::string(name));
  return it == array_index.end() ? nullptr
                                 : &arrays[static_cast<std::size_t>(it->second)];
}

const MemopInfo* ProgramIR::find_memop(std::string_view name) const {
  const auto it = memop_index.find(std::string(name));
  return it == memop_index.end() ? nullptr
                                 : &memops[static_cast<std::size_t>(it->second)];
}

int ProgramIR::max_handler_longest_path() const {
  int best = 0;
  for (const auto& h : handlers) best = std::max(best, h.longest_path());
  return best;
}

int ProgramIR::total_longest_path() const {
  int total = 0;
  for (const auto& h : handlers) total += h.longest_path();
  return total;
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

namespace {

CmpOp binop_to_cmp(BinOp op) {
  switch (op) {
    case BinOp::Eq: return CmpOp::Eq;
    case BinOp::Ne: return CmpOp::Ne;
    case BinOp::Lt: return CmpOp::Lt;
    case BinOp::Gt: return CmpOp::Gt;
    case BinOp::Le: return CmpOp::Le;
    case BinOp::Ge: return CmpOp::Ge;
    default: return CmpOp::Eq;
  }
}

CmpOp mirror_cmp(CmpOp op) {
  switch (op) {
    case CmpOp::Eq: return CmpOp::Eq;
    case CmpOp::Ne: return CmpOp::Ne;
    case CmpOp::Lt: return CmpOp::Gt;
    case CmpOp::Gt: return CmpOp::Lt;
    case CmpOp::Le: return CmpOp::Ge;
    case CmpOp::Ge: return CmpOp::Le;
  }
  return op;
}

/// Canonicalizes a validated memop body into MemopInfo operand form.
class MemopLowerer {
 public:
  MemopLowerer(const MemopDecl& decl,
               const std::map<std::string, std::int64_t>& consts)
      : decl_(decl), consts_(consts) {}

  MemopInfo run() {
    MemopInfo info;
    info.name = decl_.name;
    if (decl_.body.size() == 1 && decl_.body[0]->kind == StmtKind::Return) {
      lower_return(*decl_.body[0]->as<ReturnStmt>()->value, info.then_lhs,
                   info.then_op, info.then_rhs);
      info.else_lhs = info.then_lhs;
      info.else_op = info.then_op;
      info.else_rhs = info.then_rhs;
      return info;
    }
    const auto* ifs = decl_.body[0]->as<IfStmt>();
    info.has_condition = true;
    const auto* cond = ifs->cond->as<BinaryExpr>();
    info.cond_lhs = operand(*cond->lhs);
    info.cond_op = binop_to_cmp(cond->op);
    info.cond_rhs = operand(*cond->rhs);
    lower_return(*ifs->then_block[0]->as<ReturnStmt>()->value, info.then_lhs,
                 info.then_op, info.then_rhs);
    lower_return(*ifs->else_block[0]->as<ReturnStmt>()->value, info.else_lhs,
                 info.else_op, info.else_rhs);
    return info;
  }

 private:
  Operand operand(const Expr& e) const {
    if (e.kind == ExprKind::IntLit) {
      return Operand::imm(
          static_cast<std::int64_t>(e.as<IntLitExpr>()->value));
    }
    const auto& name = e.as<VarRefExpr>()->name;
    if (!decl_.params.empty() && name == decl_.params[0].name) {
      return Operand::of_var("cell");
    }
    if (decl_.params.size() > 1 && name == decl_.params[1].name) {
      return Operand::of_var("arg");
    }
    const auto it = consts_.find(name);
    return Operand::imm(it == consts_.end() ? 0 : it->second);
  }

  void lower_return(const Expr& e, Operand& lhs,
                    std::optional<BinOp>& op, Operand& rhs) const {
    if (e.kind == ExprKind::Binary) {
      const auto* b = e.as<BinaryExpr>();
      lhs = operand(*b->lhs);
      op = b->op;
      rhs = operand(*b->rhs);
    } else {
      lhs = operand(e);
      op.reset();
      rhs = Operand::none();
    }
  }

  const MemopDecl& decl_;
  const std::map<std::string, std::int64_t>& consts_;
};

/// Builds one handler's atomic table graph.
class HandlerBuilder {
 public:
  HandlerBuilder(const Program& prog, const ProgramIR& meta,
                 const std::map<std::string, std::int64_t>& consts,
                 DiagnosticEngine& diags)
      : prog_(prog), meta_(meta), consts_(consts), diags_(diags) {}

  HandlerGraph build(const HandlerDecl& h) {
    graph_ = HandlerGraph{};
    graph_.handler = h.name;
    const auto* ev = prog_.find_event(h.name);
    graph_.event_id = ev ? ev->event_id : -1;

    // Pre-scan for assigned locals: they are materialized, never aliased.
    assigned_.clear();
    collect_assigned(h.body);

    sub_.clear();
    event_vals_.clear();
    for (const auto& p : h.params) {
      sub_[p.name] = Operand::of_var(p.name, p.type.width);
    }
    lower_block(h.body, /*in_function=*/false, /*ret_var=*/"");
    return std::move(graph_);
  }

 private:
  // A dangling edge: table `id`, slot `slot` in its next vector (-1 = append).
  struct Exit {
    int id;
    int slot;
  };

  void collect_assigned(const Block& b) {
    for (const auto& s : b) {
      if (s->kind == StmtKind::Assign) {
        assigned_.insert(s->as<AssignStmt>()->name);
      } else if (s->kind == StmtKind::If) {
        collect_assigned(s->as<IfStmt>()->then_block);
        collect_assigned(s->as<IfStmt>()->else_block);
      }
    }
  }

  int append(AtomicTable t) {
    t.id = static_cast<int>(graph_.tables.size());
    t.handler = graph_.handler;
    if (t.kind == TableKind::Branch) t.next = {-1, -1};
    graph_.tables.push_back(std::move(t));
    const int id = graph_.tables.back().id;
    connect(cur_, id);
    if (graph_.entry < 0) graph_.entry = id;
    cur_ = {Exit{id, -1}};
    return id;
  }

  void connect(const std::vector<Exit>& exits, int target) {
    for (const auto& e : exits) {
      auto& nxt = graph_.tables[static_cast<std::size_t>(e.id)].next;
      if (e.slot < 0) {
        nxt.push_back(target);
      } else {
        nxt[static_cast<std::size_t>(e.slot)] = target;
      }
    }
  }

  std::string fresh_tmp(int width) {
    const std::string name = "__t" + std::to_string(tmp_counter_++);
    var_width_[name] = width;
    return name;
  }

  int width_of(const Expr& e) const {
    return e.type.is_int() || e.type.is_bool() ? e.type.width : 32;
  }

  // ---- expression flattening -----------------------------------------------

  Operand flatten(const Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit:
        return Operand::imm(
            static_cast<std::int64_t>(e.as<IntLitExpr>()->value),
            width_of(e));
      case ExprKind::BoolLit:
        return Operand::imm(e.as<BoolLitExpr>()->value ? 1 : 0, 1);
      case ExprKind::VarRef: {
        const auto* v = e.as<VarRefExpr>();
        if (v->is_const) return Operand::imm(v->const_value, width_of(e));
        if (v->name == "SELF") return Operand::of_var("__self", 32);
        const auto it = sub_.find(v->name);
        if (it != sub_.end()) return it->second;
        if (v->is_global_array || v->is_group || v->is_memop_ref) {
          // Only meaningful in call argument positions; callers handle them.
          return Operand::of_var(v->name, width_of(e));
        }
        return Operand::of_var(v->name, width_of(e));
      }
      case ExprKind::Unary: {
        const auto* u = e.as<UnaryExpr>();
        const Operand sub = flatten(*u->sub);
        const int w = width_of(e);
        AtomicTable t;
        t.kind = TableKind::Op;
        t.op.dst = fresh_tmp(w);
        t.op.width = w;
        switch (u->op) {
          case UnOp::Neg:
            t.op.lhs = Operand::imm(0, w);
            t.op.op = BinOp::Sub;
            t.op.rhs = sub;
            break;
          case UnOp::BitNot:
            t.op.lhs = sub;
            t.op.op = BinOp::BitXor;
            t.op.rhs = Operand::imm(-1, w);
            break;
          case UnOp::Not:
            t.op.lhs = sub;
            t.op.op = BinOp::Eq;
            t.op.rhs = Operand::imm(0, 1);
            break;
        }
        const std::string dst = t.op.dst;
        append(std::move(t));
        return Operand::of_var(dst, w);
      }
      case ExprKind::Binary: {
        const auto* b = e.as<BinaryExpr>();
        const Operand l = flatten(*b->lhs);
        const Operand r = flatten(*b->rhs);
        const int w = width_of(e);
        // Fold `hash(...) & (2^n - 1)` into the hash unit's output width.
        if (b->op == BinOp::BitAnd) {
          const Operand* hv = nullptr;
          const Operand* mv = nullptr;
          if (l.is_var() && r.is_const()) {
            hv = &l;
            mv = &r;
          } else if (r.is_var() && l.is_const()) {
            hv = &r;
            mv = &l;
          }
          if (hv != nullptr && mv->value > 0 &&
              ((mv->value + 1) & mv->value) == 0 && !graph_.tables.empty() &&
              cur_.size() == 1 && cur_[0].slot == -1 &&
              cur_[0].id == graph_.tables.back().id &&
              graph_.tables.back().kind == TableKind::Hash &&
              graph_.tables.back().hash.dst == hv->var) {
            graph_.tables.back().hash.mask = mv->value;
            return *hv;
          }
        }
        AtomicTable t;
        t.kind = TableKind::Op;
        t.op.dst = fresh_tmp(w);
        t.op.width = w;
        t.op.lhs = l;
        // Logical and/or over predicate bits become bitwise ops; the
        // hardware evaluates both predicates in parallel.
        if (b->op == BinOp::LAnd) {
          t.op.op = BinOp::BitAnd;
        } else if (b->op == BinOp::LOr) {
          t.op.op = BinOp::BitOr;
        } else {
          t.op.op = b->op;
        }
        t.op.rhs = r;
        const std::string dst = t.op.dst;
        append(std::move(t));
        return Operand::of_var(dst, w);
      }
      case ExprKind::Call:
        return flatten_call(*e.as<CallExpr>());
    }
    return Operand::none();
  }

  std::string resolve_array(const Expr& e) {
    if (e.kind != ExprKind::VarRef) return {};
    const auto& name = e.as<VarRefExpr>()->name;
    const auto it = sub_.find(name);
    if (it != sub_.end() && it->second.is_var() &&
        meta_.array_index.count(it->second.var)) {
      return it->second.var;  // array parameter bound by inlining
    }
    return name;
  }

  Operand flatten_call(const CallExpr& c) {
    switch (c.resolved) {
      case CallKind::ArrayGet:
      case CallKind::ArrayGetm: {
        AtomicTable t;
        t.kind = TableKind::Mem;
        t.mem.array = resolve_array(*c.args[0]);
        t.mem.kind = MemKind::Get;
        const ArrayInfo* ai = meta_.find_array(t.mem.array);
        t.mem.cell_width = ai ? ai->width : 32;
        t.mem.index = flatten(*c.args[1]);
        if (c.args.size() == 4) {
          t.mem.get_memop = c.args[2]->as<VarRefExpr>()->name;
          t.mem.get_arg = flatten(*c.args[3]);
        }
        t.mem.dst = fresh_tmp(t.mem.cell_width);
        const std::string dst = t.mem.dst;
        const int w = t.mem.cell_width;
        append(std::move(t));
        return Operand::of_var(dst, w);
      }
      case CallKind::ArraySet:
      case CallKind::ArraySetm: {
        AtomicTable t;
        t.kind = TableKind::Mem;
        t.mem.array = resolve_array(*c.args[0]);
        t.mem.kind = MemKind::Set;
        const ArrayInfo* ai = meta_.find_array(t.mem.array);
        t.mem.cell_width = ai ? ai->width : 32;
        t.mem.index = flatten(*c.args[1]);
        if (c.args.size() == 3) {
          t.mem.set_value = flatten(*c.args[2]);
        } else {
          t.mem.set_memop = c.args[2]->as<VarRefExpr>()->name;
          t.mem.set_arg = flatten(*c.args[3]);
        }
        append(std::move(t));
        return Operand::none();
      }
      case CallKind::ArrayUpdate: {
        AtomicTable t;
        t.kind = TableKind::Mem;
        t.mem.array = resolve_array(*c.args[0]);
        t.mem.kind = MemKind::Update;
        const ArrayInfo* ai = meta_.find_array(t.mem.array);
        t.mem.cell_width = ai ? ai->width : 32;
        t.mem.index = flatten(*c.args[1]);
        t.mem.get_memop = c.args[2]->as<VarRefExpr>()->name;
        t.mem.get_arg = flatten(*c.args[3]);
        t.mem.set_memop = c.args[4]->as<VarRefExpr>()->name;
        t.mem.set_arg = flatten(*c.args[5]);
        t.mem.dst = fresh_tmp(t.mem.cell_width);
        const std::string dst = t.mem.dst;
        const int w = t.mem.cell_width;
        append(std::move(t));
        return Operand::of_var(dst, w);
      }
      case CallKind::Hash: {
        AtomicTable t;
        t.kind = TableKind::Hash;
        const Operand seed = flatten(*c.args[0]);
        if (seed.is_const()) {
          t.hash.seed = seed.value;
        } else {
          diags_.error(c.args[0]->range, "ir-hash-seed",
                       "hash seeds must be compile-time constants (they "
                       "configure the hash unit)");
        }
        for (std::size_t i = 1; i < c.args.size(); ++i) {
          t.hash.args.push_back(flatten(*c.args[i]));
        }
        t.hash.dst = fresh_tmp(32);
        const std::string dst = t.hash.dst;
        append(std::move(t));
        return Operand::of_var(dst, 32);
      }
      case CallKind::SysTime: {
        // The ingress timestamp is pipeline metadata.
        return Operand::of_var("__ts", 32);
      }
      case CallKind::SysSelf:
        return Operand::of_var("__self", 32);
      case CallKind::UserFun:
        return inline_fun(c);
      case CallKind::EventCtor:
      case CallKind::EventDelay:
      case CallKind::EventLocate:
        diags_.error(c.range, "ir-event-context",
                     "event values may only be bound to event locals or "
                     "generated");
        return Operand::none();
      case CallKind::Unresolved:
        diags_.error(c.range, "ir-unresolved-call",
                     "internal: unresolved call reached lowering");
        return Operand::none();
    }
    return Operand::none();
  }

  // ---- function inlining ----------------------------------------------------

  Operand inline_fun(const CallExpr& c) {
    const FunDecl* f = prog_.find_fun(c.callee);
    if (f == nullptr) return Operand::none();
    const int frame = inline_counter_++;
    const std::string prefix = "__inl" + std::to_string(frame) + "_";

    // Bind arguments in the caller's frame, then install the callee frame.
    std::vector<std::pair<std::string, Operand>> bindings;
    for (std::size_t i = 0; i < f->params.size(); ++i) {
      const Param& p = f->params[i];
      if (p.type.kind == TypeKind::Array) {
        bindings.emplace_back(p.name,
                              Operand::of_var(resolve_array(*c.args[i])));
      } else {
        Operand arg = flatten(*c.args[i]);
        bindings.emplace_back(p.name, std::move(arg));
      }
    }

    const auto saved_sub = sub_;
    sub_.clear();
    for (auto& [name, op] : bindings) sub_[name] = std::move(op);

    std::string ret_var;
    if (f->return_type.kind != TypeKind::Void) {
      ret_var = prefix + "ret";
      var_width_[ret_var] = f->return_type.width;
    }
    inline_prefix_.push_back(prefix);
    lower_block(f->body, /*in_function=*/true, ret_var);
    inline_prefix_.pop_back();
    sub_ = saved_sub;

    if (ret_var.empty()) return Operand::none();
    return Operand::of_var(ret_var, f->return_type.width);
  }

  // ---- event values -----------------------------------------------------------

  GenStmt gen_value(const Expr& e) {
    if (e.kind == ExprKind::VarRef) {
      const auto it = event_vals_.find(e.as<VarRefExpr>()->name);
      if (it != event_vals_.end()) return it->second;
      diags_.error(e.range, "ir-unknown-event-local",
                   "event variable is not bound to an event value");
      return {};
    }
    const auto* c = e.as<CallExpr>();
    switch (c->resolved) {
      case CallKind::EventCtor: {
        GenStmt g;
        g.event = c->callee;
        const auto* ev = prog_.find_event(c->callee);
        g.event_id = ev ? ev->event_id : -1;
        for (const auto& a : c->args) g.args.push_back(flatten(*a));
        return g;
      }
      case CallKind::EventDelay: {
        GenStmt g = gen_value(*c->args[0]);
        g.delay = flatten(*c->args[1]);
        return g;
      }
      case CallKind::EventLocate: {
        GenStmt g = gen_value(*c->args[0]);
        const Expr& loc = *c->args[1];
        if (loc.kind == ExprKind::VarRef &&
            loc.as<VarRefExpr>()->is_group) {
          g.multicast = true;
          g.group = loc.as<VarRefExpr>()->name;
        } else {
          g.location = flatten(loc);
        }
        return g;
      }
      default:
        diags_.error(e.range, "ir-expected-event",
                     "expected an event value");
        return {};
    }
  }

  /// Snapshot variable operands so later mutations don't alter the bound
  /// event value.
  GenStmt snapshot(GenStmt g) {
    auto snap = [this](Operand& o) {
      if (!o.is_var()) return;
      AtomicTable t;
      t.kind = TableKind::Op;
      t.op.dst = fresh_tmp(o.width);
      t.op.width = o.width;
      t.op.lhs = o;
      const std::string dst = t.op.dst;
      append(std::move(t));
      o = Operand::of_var(dst, o.width);
    };
    for (auto& a : g.args) snap(a);
    snap(g.delay);
    snap(g.location);
    return g;
  }

  // ---- statements ---------------------------------------------------------------

  /// Peephole: if `value` is the fresh temporary written by the table just
  /// appended, rename that table's destination to `dst` instead of emitting
  /// a copy. Keeps assignments single-table.
  bool retarget_last(const Operand& value, const std::string& dst) {
    if (!value.is_var() || value.var.rfind("__t", 0) != 0) return false;
    if (graph_.tables.empty()) return false;
    if (cur_.size() != 1 || cur_[0].slot != -1) return false;
    AtomicTable& last = graph_.tables.back();
    if (cur_[0].id != last.id) return false;
    switch (last.kind) {
      case TableKind::Op:
        if (last.op.dst != value.var) return false;
        last.op.dst = dst;
        return true;
      case TableKind::Mem:
        if (last.mem.dst != value.var) return false;
        last.mem.dst = dst;
        return true;
      case TableKind::Hash:
        if (last.hash.dst != value.var) return false;
        last.hash.dst = dst;
        return true;
      default:
        return false;
    }
  }

  std::string framed(const std::string& name) const {
    return inline_prefix_.empty() ? name : inline_prefix_.back() + name;
  }

  void lower_block(const Block& b, bool in_function,
                   const std::string& ret_var) {
    for (std::size_t i = 0; i < b.size(); ++i) {
      const Stmt& s = *b[i];
      if (s.kind == StmtKind::Return) {
        if (!in_function) {
          // Handler-level return: this control path terminates, so it must
          // not connect to any continuation after an enclosing if.
          if (i + 1 < b.size()) {
            diags_.error(s.range, "ir-return-not-tail",
                         "statements after return are unreachable");
          }
          cur_.clear();
          return;
        }
        if (i + 1 < b.size()) {
          diags_.error(s.range, "ir-return-not-tail",
                       "inlined functions support only tail returns");
        }
        const auto* r = s.as<ReturnStmt>();
        if (r->value && !ret_var.empty()) {
          const Operand v = flatten(*r->value);
          if (!retarget_last(v, ret_var)) {
            AtomicTable t;
            t.kind = TableKind::Op;
            t.op.dst = ret_var;
            t.op.width =
                var_width_.count(ret_var) ? var_width_[ret_var] : 32;
            t.op.lhs = v;
            append(std::move(t));
          }
        }
        return;
      }
      lower_stmt(s, in_function, ret_var);
    }
  }

  void lower_stmt(const Stmt& s, bool in_function,
                  const std::string& ret_var) {
    switch (s.kind) {
      case StmtKind::LocalDecl: {
        const auto* d = s.as<LocalDeclStmt>();
        if (d->declared_type.kind == TypeKind::Event) {
          event_vals_[d->name] = snapshot(gen_value(*d->init));
          return;
        }
        const Operand init = flatten(*d->init);
        const std::string name = framed(d->name);
        // Alias constants and compiler-generated single-definition values
        // ("__t..." temporaries, "__inl..." function results, "__self"/
        // "__ts" metadata) instead of copying, unless the local is
        // reassigned later.
        const bool aliasable =
            assigned_.count(d->name) == 0 &&
            (init.is_const() ||
             (init.is_var() && init.var.rfind("__", 0) == 0));
        if (aliasable) {
          sub_[d->name] = init;
          return;
        }
        var_width_[name] = d->declared_type.width;
        if (!retarget_last(init, name)) {
          AtomicTable t;
          t.kind = TableKind::Op;
          t.op.dst = name;
          t.op.width = d->declared_type.width;
          t.op.lhs = init;
          append(std::move(t));
        }
        sub_[d->name] = Operand::of_var(name, d->declared_type.width);
        return;
      }
      case StmtKind::Assign: {
        const auto* a = s.as<AssignStmt>();
        const Operand value = flatten(*a->value);
        const auto it = sub_.find(a->name);
        const std::string target =
            it != sub_.end() && it->second.is_var() ? it->second.var
                                                    : framed(a->name);
        if (!retarget_last(value, target)) {
          AtomicTable t;
          t.kind = TableKind::Op;
          t.op.dst = target;
          t.op.width = value.width;
          t.op.lhs = value;
          append(std::move(t));
        }
        sub_[a->name] = Operand::of_var(target, value.width);
        return;
      }
      case StmtKind::If: {
        const auto* i = s.as<IfStmt>();
        lower_if(*i, in_function, ret_var);
        return;
      }
      case StmtKind::ExprStmt:
        (void)flatten(*s.as<ExprStmt>()->expr);
        return;
      case StmtKind::Generate: {
        const auto* g = s.as<GenerateStmt>();
        GenStmt gen = gen_value(*g->event);
        if (g->multicast) gen.multicast = true;
        AtomicTable t;
        t.kind = TableKind::Generate;
        t.gen = std::move(gen);
        append(std::move(t));
        return;
      }
      case StmtKind::Return:
        // Handled in lower_block.
        return;
    }
  }

  /// Lowers a condition into branch structure with short-circuit semantics:
  /// `&&` / `||` / `!` become branch-table wiring rather than ALU predicate
  /// chains, so compound conditions cost match rules — not pipeline stages —
  /// after branch inlining (exactly the Fig 8 merged-rule structure).
  void lower_cond(const Expr& cond, std::vector<Exit>& true_exits,
                  std::vector<Exit>& false_exits) {
    if (cond.kind == ExprKind::Binary) {
      const auto* b = cond.as<BinaryExpr>();
      if (b->op == BinOp::LAnd) {
        std::vector<Exit> t1;
        std::vector<Exit> f1;
        lower_cond(*b->lhs, t1, f1);
        cur_ = t1;
        std::vector<Exit> t2;
        std::vector<Exit> f2;
        lower_cond(*b->rhs, t2, f2);
        true_exits = std::move(t2);
        false_exits = std::move(f1);
        false_exits.insert(false_exits.end(), f2.begin(), f2.end());
        return;
      }
      if (b->op == BinOp::LOr) {
        std::vector<Exit> t1;
        std::vector<Exit> f1;
        lower_cond(*b->lhs, t1, f1);
        cur_ = f1;
        std::vector<Exit> t2;
        std::vector<Exit> f2;
        lower_cond(*b->rhs, t2, f2);
        true_exits = std::move(t1);
        true_exits.insert(true_exits.end(), t2.begin(), t2.end());
        false_exits = std::move(f2);
        return;
      }
    }
    if (cond.kind == ExprKind::Unary &&
        cond.as<UnaryExpr>()->op == UnOp::Not) {
      lower_cond(*cond.as<UnaryExpr>()->sub, false_exits, true_exits);
      return;
    }

    // Leaf: a single branch table. ==/!= against a constant matches
    // directly; other comparisons compute a one-bit predicate first.
    AtomicTable bt;
    bt.kind = TableKind::Branch;
    bool direct = false;
    if (cond.kind == ExprKind::Binary) {
      const auto* b = cond.as<BinaryExpr>();
      if (b->op == BinOp::Eq || b->op == BinOp::Ne) {
        const Operand l = flatten(*b->lhs);
        const Operand r = flatten(*b->rhs);
        if (l.is_var() && r.is_const()) {
          bt.branch = BranchStmt{l, binop_to_cmp(b->op), r.value};
          direct = true;
        } else if (l.is_const() && r.is_var()) {
          bt.branch = BranchStmt{r, mirror_cmp(binop_to_cmp(b->op)), l.value};
          direct = true;
        } else if (l.is_var() && r.is_var()) {
          AtomicTable p;
          p.kind = TableKind::Op;
          p.op.dst = fresh_tmp(1);
          p.op.width = 1;
          p.op.lhs = l;
          p.op.op = b->op;
          p.op.rhs = r;
          const std::string pv = p.op.dst;
          append(std::move(p));
          bt.branch = BranchStmt{Operand::of_var(pv, 1), CmpOp::Ne, 0};
          direct = true;
        } else {
          bt.branch = BranchStmt{Operand::imm(l.value == r.value ? 1 : 0, 1),
                                 binop_to_cmp(b->op) == CmpOp::Eq ? CmpOp::Ne
                                                                  : CmpOp::Eq,
                                 0};
          direct = true;
        }
      } else if (binop_is_comparison(b->op)) {
        const Operand l = flatten(*b->lhs);
        const Operand r = flatten(*b->rhs);
        AtomicTable p;
        p.kind = TableKind::Op;
        p.op.dst = fresh_tmp(1);
        p.op.width = 1;
        p.op.lhs = l;
        p.op.op = b->op;
        p.op.rhs = r;
        const std::string pv = p.op.dst;
        append(std::move(p));
        bt.branch = BranchStmt{Operand::of_var(pv, 1), CmpOp::Ne, 0};
        direct = true;
      }
    }
    if (!direct) {
      const Operand p = flatten(cond);
      bt.branch = BranchStmt{p, CmpOp::Ne, 0};
    }
    const int bid = append(std::move(bt));
    true_exits = {Exit{bid, 0}};
    false_exits = {Exit{bid, 1}};
  }

  void lower_if(const IfStmt& i, bool in_function,
                const std::string& ret_var) {
    std::vector<Exit> true_exits;
    std::vector<Exit> false_exits;
    lower_cond(*i.cond, true_exits, false_exits);

    cur_ = true_exits;
    lower_block(i.then_block, in_function, ret_var);
    const std::vector<Exit> then_exits = cur_;
    cur_ = false_exits;
    lower_block(i.else_block, in_function, ret_var);
    std::vector<Exit> exits = cur_;
    exits.insert(exits.end(), then_exits.begin(), then_exits.end());
    cur_ = std::move(exits);
  }

  const Program& prog_;
  const ProgramIR& meta_;
  const std::map<std::string, std::int64_t>& consts_;
  DiagnosticEngine& diags_;

  HandlerGraph graph_;
  std::vector<Exit> cur_;
  std::map<std::string, Operand> sub_;
  std::map<std::string, GenStmt> event_vals_;
  std::map<std::string, int> var_width_;
  std::set<std::string> assigned_;
  std::vector<std::string> inline_prefix_;
  int tmp_counter_ = 0;
  int inline_counter_ = 0;
};

}  // namespace

ProgramIR lower(const Program& program, DiagnosticEngine& diags,
                const LowerReuse* reuse, std::size_t* reused_handlers) {
  ProgramIR ir;
  if (reused_handlers != nullptr) *reused_handlers = 0;

  std::map<std::string, std::int64_t> consts;
  for (const auto& d : program.decls) {
    if (d->kind == DeclKind::Const) {
      consts[d->name] = d->as<ConstDecl>()->resolved_value;
    }
  }

  for (const auto* g : program.globals()) {
    ArrayInfo info;
    info.name = g->name;
    info.width = g->width;
    info.size = g->resolved_size;
    info.decl_index = g->stage_index;
    ir.array_index[info.name] = static_cast<int>(ir.arrays.size());
    ir.arrays.push_back(std::move(info));
  }

  for (const auto* e : program.events()) {
    EventInfo info;
    info.name = e->name;
    info.event_id = e->event_id;
    for (const auto& p : e->params) {
      info.params.emplace_back(p.name, p.type.width);
    }
    info.has_handler = program.find_handler(e->name) != nullptr;
    ir.events.push_back(std::move(info));
  }

  for (const auto& d : program.decls) {
    if (d->kind == DeclKind::Memop) {
      MemopLowerer ml(*d->as<MemopDecl>(), consts);
      ir.memop_index[d->name] = static_cast<int>(ir.memops.size());
      ir.memops.push_back(ml.run());
    } else if (d->kind == DeclKind::Group) {
      const auto* g = d->as<GroupDecl>();
      ir.groups.push_back(GroupInfo{g->name, g->resolved_members});
    }
  }

  for (const auto* h : program.handlers()) {
    // Splice the previous compile's graph when the structural diff proved
    // this handler (and everything it references) unchanged. The graph is
    // copied, not aliased: the new IR owns its artifacts outright.
    if (reuse != nullptr && reuse->prev != nullptr &&
        reuse->handlers.count(h->name) != 0) {
      const HandlerGraph* prev_graph = nullptr;
      for (const HandlerGraph& g : reuse->prev->handlers) {
        if (g.handler == h->name) {
          prev_graph = &g;
          break;
        }
      }
      if (prev_graph != nullptr) {
        ir.handlers.push_back(*prev_graph);
        if (reused_handlers != nullptr) ++*reused_handlers;
        continue;
      }
    }
    HandlerBuilder builder(program, ir, consts, diags);
    ir.handlers.push_back(builder.build(*h));
  }
  return ir;
}

}  // namespace lucid::ir
