// Emits a native pipeline module: one C++ translation unit per program.
//
// Semantics contract: generated code must leave register state byte-identical
// to interp::Runtime for any event sequence (the differential suite in
// tests/test_native.cpp enforces this on all ten paper apps). Every masking
// and evaluation rule below therefore names the interpreter rule it mirrors:
//
//   - all values are int64_t; locals zero-init per packet (Frame defaults);
//   - handler params mask to declared widths on entry (Runtime::execute);
//   - binary-op results mask to the expression width (eval/Binary), with
//     Div/Mod-by-zero yielding 0 and shifts masked to 6 bits (binop_eval);
//     add/sub/mul/shl run in uint64 so signed overflow stays wrap-around;
//   - memops evaluate in canonicalized single-sALU form; on Update both the
//     get- and set-memop read the pre-update cell, stores and memop'd reads
//     mask to the cell width, plain reads don't (eval_call/ArrayUpdate);
//   - array indexes wrap via `i % n; if (i < 0) i += n`
//     (pisa::RegisterArray::clamp);
//   - `hash` is the shared modeled FNV-1a (support/hash.hpp) — NOT the
//     eBPF backend's CRC32; the inline lucid_fnv1a_word below must stay in
//     lockstep with support::fnv1a_word;
//   - generated-event args mask to the event's param widths (EventCtor).
//
// Batch equivalence: lucid_native_run_batch runs packets in order, each one
// straight through the whole pipeline (load, stages, flush) on a single
// reused Ctx — exactly the order sequential run_one calls produce, so state
// equivalence is trivial. A stage-major walk (each stage as a loop over the
// batch, PISA's stage parallelism in software) would also preserve per-array
// access order — the layout pins every register array to exactly one stage
// (opt::Pipeline::array_stage) and a packet makes at most one sALU visit per
// array per pass — but it round-trips every packet's Ctx through a scratch
// slab between stages, which measures slower at event-loop drain sizes.
// Locals are per-packet (Ctx, fully re-initialized by lucid_load), and
// generate records flush per packet after its last stage.
#include "native/emit.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "native/abi.hpp"
#include "opt/passes.hpp"

namespace lucid::native {

namespace {

using ir::AtomicTable;
using ir::MemKind;
using ir::Operand;
using ir::TableKind;

std::string sanitize(std::string name) {
  for (auto& c : name) {
    if (c == '.') c = '_';
  }
  return name;
}

std::string ctx_ref(const std::string& var) { return "m." + sanitize(var); }

std::string operand_str(const Operand& o) {
  switch (o.kind) {
    case Operand::Kind::None: return "0";
    case Operand::Kind::Var: return ctx_ref(o.var);
    case Operand::Kind::Const:
      return "i64{" + std::to_string(o.value) + "}";
  }
  return "0";
}

/// Wraps `expr` in the width mask when the width actually clips (the
/// generated lucid_mask would pass it through anyway; skip the call).
std::string masked(const std::string& expr, int width) {
  if (width >= 64 || width <= 0) return expr;
  return "lucid_mask(" + expr + ", " + std::to_string(width) + ")";
}

/// The interp-exact C++ expression for `l <op> r` (binop_eval): unsigned
/// wrap-around for add/sub/mul/shl, guarded div/mod, 6-bit shift counts,
/// logical shift right, 0/1 comparisons.
std::string binop_expr(frontend::BinOp op, const std::string& l,
                       const std::string& r) {
  using frontend::BinOp;
  auto wrap = [&](const char* c_op) {
    return "(i64)((u64)(" + l + ") " + c_op + " (u64)(" + r + "))";
  };
  auto guarded = [&](const char* c_op) {
    return "((" + r + ") == 0 ? 0 : (" + l + ") " + c_op + " (" + r + "))";
  };
  auto cmp = [&](const char* c_op) {
    return "((" + l + ") " + c_op + " (" + r + ") ? 1 : 0)";
  };
  switch (op) {
    case BinOp::Add: return wrap("+");
    case BinOp::Sub: return wrap("-");
    case BinOp::Mul: return wrap("*");
    case BinOp::Div: return guarded("/");
    case BinOp::Mod: return guarded("%");
    case BinOp::BitAnd: return "((" + l + ") & (" + r + "))";
    case BinOp::BitOr: return "((" + l + ") | (" + r + "))";
    case BinOp::BitXor: return "((" + l + ") ^ (" + r + "))";
    case BinOp::Shl:
      return "(i64)((u64)(" + l + ") << ((" + r + ") & 63))";
    case BinOp::Shr:
      return "(i64)((u64)(" + l + ") >> ((" + r + ") & 63))";
    case BinOp::Eq: return cmp("==");
    case BinOp::Ne: return cmp("!=");
    case BinOp::Lt: return cmp("<");
    case BinOp::Gt: return cmp(">");
    case BinOp::Le: return cmp("<=");
    case BinOp::Ge: return cmp(">=");
    case BinOp::LAnd:
      return "(((" + l + ") != 0 && (" + r + ") != 0) ? 1 : 0)";
    case BinOp::LOr:
      return "(((" + l + ") != 0 || (" + r + ") != 0) ? 1 : 0)";
  }
  return "0";
}

std::string cmp_str(ir::CmpOp op) {
  switch (op) {
    case ir::CmpOp::Eq: return "==";
    case ir::CmpOp::Ne: return "!=";
    case ir::CmpOp::Lt: return "<";
    case ir::CmpOp::Gt: return ">";
    case ir::CmpOp::Le: return "<=";
    case ir::CmpOp::Ge: return ">=";
  }
  return "==";
}

/// Memop operand: the canonical "cell" parameter resolves to the single-read
/// cell value, anything else to the call-site argument.
std::string memop_operand(const Operand& o, const Operand& call_arg,
                          const std::string& cell_name) {
  if (o.is_const()) return "i64{" + std::to_string(o.value) + "}";
  if (o.var == "cell") return cell_name;
  return operand_str(call_arg);
}

std::string memop_expr(const Operand& lhs,
                       const std::optional<frontend::BinOp>& op,
                       const Operand& rhs, const Operand& call_arg,
                       const std::string& cell_name) {
  std::string l = memop_operand(lhs, call_arg, cell_name);
  if (!op) return l;
  return binop_expr(*op, l, memop_operand(rhs, call_arg, cell_name));
}

class Emitter {
 public:
  Emitter(const ir::ProgramIR& ir, const opt::Pipeline& pipeline,
          std::string_view name, EmitOptions opts)
      : ir_(ir), pipeline_(pipeline), name_(name), opts_(opts) {}

  EmittedModule run() {
    for (const auto& [site, table] : generate_sites()) {
      gen_site_index_[table] = site;
    }
    collect_vars();
    preamble();
    ctx_struct();
    if (opts_.dispatch == Dispatch::kThreadedGoto) {
      flush_fn();  // lucid_exec's epilogue calls it; define first
      exec_fn();
      entry_points_threaded();
    } else {
      load_fn();
      stage_fns();
      flush_fn();
      entry_points();
    }
    EmittedModule m;
    m.text = std::move(out_);
    m.gen_sites = static_cast<int>(gen_site_index_.size());
    m.stages = static_cast<int>(pipeline_.stages.size());
    m.loc = loc_;
    m.dispatch = opts_.dispatch;
    return m;
  }

 private:
  void line(const std::string& s) {
    out_ += s;
    out_ += '\n';
    ++loc_;
  }
  void blank() { out_ += '\n'; }

  // ---- variable collection (same walk as the eBPF emitter) ----------------

  void note_var(const Operand& o) {
    if (o.is_var()) vars_.insert(o.var);
  }

  void collect_vars() {
    for (const auto& stage : pipeline_.stages) {
      for (const auto& mt : stage.tables) {
        for (const auto* member : mt.members) {
          const AtomicTable& t = *member;
          switch (t.kind) {
            case TableKind::Op:
              vars_.insert(t.op.dst);
              note_var(t.op.lhs);
              note_var(t.op.rhs);
              break;
            case TableKind::Mem:
              if (!t.mem.dst.empty()) vars_.insert(t.mem.dst);
              note_var(t.mem.index);
              note_var(t.mem.get_arg);
              note_var(t.mem.set_arg);
              note_var(t.mem.set_value);
              break;
            case TableKind::Hash:
              vars_.insert(t.hash.dst);
              for (const auto& a : t.hash.args) note_var(a);
              break;
            case TableKind::Generate:
              for (const auto& a : t.gen.args) note_var(a);
              note_var(t.gen.delay);
              note_var(t.gen.location);
              break;
            case TableKind::Branch:
              break;
          }
          for (const auto& conj : t.guards) {
            for (const auto& test : conj) vars_.insert(test.var);
          }
        }
      }
    }
    for (const auto& ev : ir_.events) {
      for (const auto& [pname, pwidth] : ev.params) {
        (void)pwidth;
        vars_.insert(pname);
      }
    }
    vars_.insert("__self");
    vars_.insert("__ts");
  }

  std::vector<std::pair<int, const AtomicTable*>> generate_sites() const {
    std::vector<std::pair<int, const AtomicTable*>> sites;
    int n = 0;
    for (const auto& stage : pipeline_.stages) {
      for (const auto& mt : stage.tables) {
        for (const auto* t : mt.members) {
          if (t->kind == TableKind::Generate) sites.emplace_back(n++, t);
        }
      }
    }
    return sites;
  }

  int gen_site_of(const AtomicTable* t) const {
    const auto it = gen_site_index_.find(t);
    return it != gen_site_index_.end() ? it->second : -1;
  }

  int event_id_of(const std::string& handler) const {
    for (const auto& ev : ir_.events) {
      if (ev.name == handler) return ev.event_id;
    }
    return -1;
  }

  int array_slot(const std::string& name) const {
    const auto it = ir_.array_index.find(name);
    return it == ir_.array_index.end() ? -1 : it->second;
  }

  int group_slot(const std::string& name) const {
    for (std::size_t i = 0; i < ir_.groups.size(); ++i) {
      if (ir_.groups[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  // ---- sections -----------------------------------------------------------

  void preamble() {
    line("// " + std::string(name_) +
         " — generated by the Lucid compiler (native backend)");
    line("// Self-contained: compiled by the in-process JIT "
         "(src/native/jit.cpp) and dlopen'd.");
    line("// Semantics mirror interp::Runtime exactly; see "
         "src/native/emit.cpp for the contract.");
    line("#include <cstdint>");
    blank();
    line("using i32 = std::int32_t;");
    line("using u32 = std::uint32_t;");
    line("using i64 = std::int64_t;");
    line("using u64 = std::uint64_t;");
    blank();
    line("namespace {");
    blank();
    line("// ABI structs — textual mirror of src/native/abi.hpp (v" +
         std::to_string(kAbiVersion) + ").");
    line("constexpr i32 kMaxArgs = " + std::to_string(kMaxArgs) + ";");
    line("struct PacketIn { i32 event_id; i32 nargs; i64 now_ns; "
         "i64 self_id; i64 args[kMaxArgs]; };");
    line("struct GenOut { i32 event_id; i32 multicast; i32 group; "
         "i32 nargs; i64 delay_ns; i64 location; i64 args[kMaxArgs]; };");
    line("static_assert(sizeof(PacketIn) == " +
         std::to_string(sizeof(PacketIn)) + ", \"ABI drift\");");
    line("static_assert(sizeof(GenOut) == " +
         std::to_string(sizeof(GenOut)) + ", \"ABI drift\");");
    blank();
    line("// support::mask_width, inlined.");
    line("inline i64 lucid_mask(i64 v, int w) {");
    line("  if (w >= 64 || w <= 0) return v;");
    line("  return (i64)((u64)v & ((u64{1} << w) - 1));");
    line("}");
    blank();
    line("// support::fnv1a_word, inlined (the shared modeled hash; the");
    line("// eBPF backend's CRC32 is a deliberate divergence).");
    line("inline u32 lucid_fnv1a_word(u32 h, i64 word) {");
    line("  u64 w = (u64)word;");
    line("  for (int i = 0; i < 8; ++i) {");
    line("    h ^= (u32)(w & 0xff);");
    line("    h *= 16777619u;");
    line("    w >>= 8;");
    line("  }");
    line("  return h;");
    line("}");
    blank();
  }

  void ctx_struct() {
    line("// Handler locals + event params; zero-init per packet matches");
    line("// interpreter Frame defaults. All fields are i64 (Value).");
    line("struct Ctx {");
    line("  i32 ev_id;");
    for (const auto& name : vars_) {
      line("  i64 " + sanitize(name) + ";");
    }
    for (const auto& [site, t] : generate_sites()) {
      const std::string p = "g" + std::to_string(site) + "_";
      line("  i64 " + p + "fired;");
      line("  i64 " + p + "delay;");
      line("  i64 " + p + "loc;");
      const auto& ev = ir_.events[static_cast<std::size_t>(t->gen.event_id)];
      const std::size_t nargs =
          std::min(t->gen.args.size(), ev.params.size());
      for (std::size_t i = 0; i < nargs; ++i) {
        line("  i64 " + p + "a" + std::to_string(i) + ";");
      }
    }
    line("};");
    blank();
  }

  void load_fn() {
    line("// Dispatcher: zero the ctx and copy event params in, masked to");
    line("// their declared widths (Runtime::execute).");
    line("inline void lucid_load(Ctx& m, const PacketIn& in) {");
    line("  m = Ctx{};");
    line("  m.ev_id = in.event_id;");
    line("  m.__self = in.self_id;");
    line("  m.__ts = lucid_mask(in.now_ns, 32);");
    line("  switch (in.event_id) {");
    for (const auto& ev : ir_.events) {
      if (ev.params.empty()) continue;
      line("    case " + std::to_string(ev.event_id) + ":  // " + ev.name);
      const std::size_t nargs =
          std::min<std::size_t>(ev.params.size(), kMaxArgs);
      for (std::size_t i = 0; i < nargs; ++i) {
        line("      " + ctx_ref(ev.params[i].first) + " = " +
             masked("in.args[" + std::to_string(i) + "]",
                    ev.params[i].second) +
             ";");
      }
      line("      break;");
    }
    line("    default: break;");
    line("  }");
    line("}");
    blank();
  }

  /// `m.ev_id == <id> && (guard disjunction)` — same shape as the eBPF
  /// emitter's table_condition.
  std::string table_condition(const AtomicTable& t) const {
    std::string cond =
        "m.ev_id == " + std::to_string(event_id_of(t.handler));
    const std::string guards = guard_condition(t);
    if (guards.empty()) return cond;
    return cond + " && (" + guards + ")";
  }

  /// The guard disjunction alone (threaded dispatch already proved the
  /// event id by landing in the event's block); empty when unconditional.
  std::string guard_condition(const AtomicTable& t) const {
    if (t.guards.empty()) return {};
    std::string dis;
    for (std::size_t c = 0; c < t.guards.size(); ++c) {
      if (c > 0) dis += " || ";
      std::string conj;
      for (std::size_t i = 0; i < t.guards[c].size(); ++i) {
        if (i > 0) conj += " && ";
        const ir::MatchTest& test = t.guards[c][i];
        conj += ctx_ref(test.var) + (test.eq ? " == " : " != ") +
                std::to_string(test.value);
      }
      if (t.guards[c].empty()) conj = "1";
      dis += t.guards.size() > 1 ? "(" + conj + ")" : conj;
    }
    return dis;
  }

  void emit_memop_assign(const std::string& indent, const std::string& dst,
                         const ir::MemopInfo* mo, const Operand& call_arg,
                         const std::string& cell_name, int mask_w) {
    if (mo == nullptr) return;
    auto rhs = [&](const Operand& lhs,
                   const std::optional<frontend::BinOp>& op,
                   const Operand& r) {
      return masked(memop_expr(lhs, op, r, call_arg, cell_name), mask_w);
    };
    if (mo->has_condition) {
      line(indent + "if (" +
           memop_operand(mo->cond_lhs, call_arg, cell_name) + " " +
           cmp_str(mo->cond_op) + " " +
           memop_operand(mo->cond_rhs, call_arg, cell_name) + ")");
      line(indent + "  " + dst + " = " +
           rhs(mo->then_lhs, mo->then_op, mo->then_rhs) + ";");
      line(indent + "else");
      line(indent + "  " + dst + " = " +
           rhs(mo->else_lhs, mo->else_op, mo->else_rhs) + ";");
    } else {
      line(indent + dst + " = " +
           rhs(mo->then_lhs, mo->then_op, mo->then_rhs) + ";");
    }
  }

  void emit_mem(const AtomicTable& t, const std::string& indent) {
    const ir::ArrayInfo* arr = ir_.find_array(t.mem.array);
    const int cw = arr ? arr->width : 32;
    const auto n = arr ? arr->size : 1;
    const int slot = array_slot(t.mem.array);
    const ir::MemopInfo* getm =
        t.mem.get_memop.empty() ? nullptr : ir_.find_memop(t.mem.get_memop);
    const ir::MemopInfo* setm =
        t.mem.set_memop.empty() ? nullptr : ir_.find_memop(t.mem.set_memop);

    line(indent + "{");
    const std::string in = indent + "  ";
    // RegisterArray::clamp: wrap, then fix the sign.
    line(in + "i64 ci = (" + operand_str(t.mem.index) + ") % " +
         std::to_string(n) + ";");
    line(in + "if (ci < 0) ci += " + std::to_string(n) + ";");
    line(in + "i64* cellp = R[" + std::to_string(slot) + "] + ci;  // " +
         t.mem.array);
    switch (t.mem.kind) {
      case MemKind::Get:
        line(in + "const i64 cell = *cellp;  // single read");
        if (getm == nullptr) {
          // Plain read: stored cells are already in range, no mask.
          line(in + ctx_ref(t.mem.dst) + " = cell;");
        } else {
          // Memop'd read masks to the cell width (arr->mask).
          emit_memop_assign(in, ctx_ref(t.mem.dst), getm, t.mem.get_arg,
                            "cell", cw);
        }
        break;
      case MemKind::Set:
        if (setm == nullptr) {
          line(in + "*cellp = " + masked(operand_str(t.mem.set_value), cw) +
               ";  // single write");
        } else {
          line(in + "const i64 cell = *cellp;  // single read");
          emit_memop_assign(in, "*cellp", setm, t.mem.set_arg, "cell", cw);
        }
        break;
      case MemKind::Update:
        // Parallel get+set: both memops read the pre-update cell
        // (eval_call/ArrayUpdate), so compute the result before the store.
        line(in + "const i64 cell = *cellp;  // single read");
        if (t.mem.dst.empty()) {
          // update with discarded result
        } else if (getm != nullptr) {
          emit_memop_assign(in, ctx_ref(t.mem.dst), getm, t.mem.get_arg,
                            "cell", cw);
        } else {
          line(in + ctx_ref(t.mem.dst) + " = cell;");
        }
        emit_memop_assign(in, "*cellp", setm, t.mem.set_arg, "cell", cw);
        break;
    }
    line(indent + "}");
  }

  void emit_table(const AtomicTable& t, const std::string& indent) {
    switch (t.kind) {
      case TableKind::Op: {
        const bool cmp =
            t.op.op && (frontend::binop_is_comparison(*t.op.op) ||
                        frontend::binop_is_logical(*t.op.op));
        std::string rhs;
        if (t.op.op) {
          rhs = binop_expr(*t.op.op, operand_str(t.op.lhs),
                           operand_str(t.op.rhs));
        } else {
          rhs = operand_str(t.op.lhs);
        }
        // Comparisons yield 0/1 unmasked; everything else masks to the
        // expression width (eval/Binary + LocalDecl).
        if (!cmp) rhs = masked(rhs, t.op.width);
        line(indent + ctx_ref(t.op.dst) + " = " + rhs + ";");
        break;
      }
      case TableKind::Mem:
        emit_mem(t, indent);
        break;
      case TableKind::Hash: {
        // support::model_hash32 with the fold-in output mask (HashStmt).
        line(indent + "{");
        line(indent + "  u32 h = 2166136261u ^ ((u32)(i64{" +
             std::to_string(t.hash.seed) + "}) * 0x9E3779B1u);");
        for (const auto& a : t.hash.args) {
          line(indent + "  h = lucid_fnv1a_word(h, " + operand_str(a) +
               ");");
        }
        std::string result = "(i64)h";
        if (t.hash.mask >= 0) {
          result = "(i64)(h & (u32)" + std::to_string(t.hash.mask) + "u)";
        }
        line(indent + "  " + ctx_ref(t.hash.dst) + " = " + result + ";");
        line(indent + "}");
        break;
      }
      case TableKind::Generate: {
        const int site = gen_site_of(&t);
        const std::string p = "m.g" + std::to_string(site) + "_";
        line(indent + p + "fired = 1;");
        line(indent + p + "delay = " + operand_str(t.gen.delay) + ";");
        line(indent + p + "loc = " +
             (t.gen.location.is_none() ? "-1"
                                       : operand_str(t.gen.location)) +
             ";");
        const auto& ev =
            ir_.events[static_cast<std::size_t>(t.gen.event_id)];
        const std::size_t nargs =
            std::min(t.gen.args.size(), ev.params.size());
        for (std::size_t i = 0; i < nargs; ++i) {
          line(indent + p + "a" + std::to_string(i) + " = " +
               operand_str(t.gen.args[i]) + ";");
        }
        break;
      }
      case TableKind::Branch:
        // Dissolved by branch inlining; nothing to lower.
        break;
    }
  }

  void stage_fns() {
    int sidx = 0;
    for (const auto& stage : pipeline_.stages) {
      line("inline void lucid_stage_" + std::to_string(sidx) +
           "(Ctx& m, i64* const* R) {");
      bool any = false;
      for (const auto& mt : stage.tables) {
        for (const auto* member : mt.members) {
          const AtomicTable& t = *member;
          if (t.kind == TableKind::Branch) continue;
          any = true;
          line("  if (" + table_condition(t) + ") {  // " + t.handler +
               ": " + std::string(ir::table_kind_name(t.kind)));
          emit_table(t, "    ");
          line("  }");
        }
      }
      if (!any) line("  (void)m; (void)R;");
      line("}");
      blank();
      ++sidx;
    }
  }

  void flush_fn() {
    line("// Generate flush, in site (placement) order == the order the");
    line("// interpreter's handler body reached each generate. Args mask to");
    line("// the event's param widths (EventCtor).");
    line("inline i32 lucid_flush(Ctx& m, GenOut* out) {");
    line("  i32 n = 0;");
    for (const auto& [site, t] : generate_sites()) {
      const std::string p = "m.g" + std::to_string(site) + "_";
      const auto& ev = ir_.events[static_cast<std::size_t>(t->gen.event_id)];
      const std::size_t nargs =
          std::min(t->gen.args.size(), ev.params.size());
      line("  if (" + p + "fired) {  // " + ev.name);
      line("    GenOut& g = out[n++];");
      line("    g.event_id = " + std::to_string(t->gen.event_id) + ";");
      line("    g.multicast = " + std::string(t->gen.multicast ? "1" : "0") +
           ";");
      line("    g.group = " +
           std::to_string(t->gen.group.empty() ? -1
                                               : group_slot(t->gen.group)) +
           ";");
      line("    g.nargs = " + std::to_string(nargs) + ";");
      line("    g.delay_ns = " + p + "delay;");
      line("    g.location = " + p + "loc;");
      for (std::size_t i = 0; i < nargs; ++i) {
        line("    g.args[" + std::to_string(i) + "] = " +
             masked(p + "a" + std::to_string(i), ev.params[i].second) + ";");
      }
      line("  }");
    }
    if (gen_site_index_.empty()) line("  (void)m; (void)out;");
    line("  return n;");
    line("}");
    blank();
  }

  /// Tables per event id, in stage order (then intra-stage order) — the
  /// order the stage functions would visit them for a packet of that event.
  std::map<int, std::vector<const AtomicTable*>> tables_by_event() const {
    std::map<int, std::vector<const AtomicTable*>> by_event;
    for (const auto& stage : pipeline_.stages) {
      for (const auto& mt : stage.tables) {
        for (const auto* t : mt.members) {
          if (t->kind == TableKind::Branch) continue;
          by_event[event_id_of(t->handler)].push_back(t);
        }
      }
    }
    return by_event;
  }

  /// Threaded-dispatch executor: param load + all of the event's tables as
  /// one straight-line block, reached by a single computed goto (portable
  /// switch-to-label under non-GNU compilers). Per-array access order is
  /// unchanged versus the stage functions — a packet visits its tables in
  /// the same stage order, and batch mode still runs packets in order — so
  /// the differential-state contract holds for both dispatch modes.
  void exec_fn() {
    const auto by_event = tables_by_event();
    line("// Threaded dispatch: one indirect jump per packet lands in the");
    line("// event's block; no per-table event-id checks, no stage-function");
    line("// call sequence. Semantics identical to switch dispatch.");
    line("inline i32 lucid_exec(Ctx& m, const PacketIn& in, "
         "i64* const* R, GenOut* out) {");
    line("  (void)R;");
    line("  m = Ctx{};");
    line("  m.ev_id = in.event_id;");
    line("  m.__self = in.self_id;");
    line("  m.__ts = lucid_mask(in.now_ns, 32);");
    const auto n_events = static_cast<int>(ir_.events.size());
    auto has_block = [&](int id) {
      const auto it = by_event.find(id);
      return it != by_event.end() && !it->second.empty();
    };
    if (n_events > 0) {
      line("#if defined(__GNUC__)");
      line("  // GNU labels-as-values: the jump table is resolved at");
      line("  // compile time; handlerless events map to the epilogue.");
      line("  static void* const lucid_jump[] = {");
      for (int id = 0; id < n_events; ++id) {
        const std::string target =
            has_block(id) ? "&&lucid_ev_" + std::to_string(id)
                          : "&&lucid_done";
        line("    " + target + ",  // " +
             ir_.events[static_cast<std::size_t>(id)].name);
      }
      line("  };");
      line("  if (in.event_id >= 0 && in.event_id < " +
           std::to_string(n_events) + ") goto *lucid_jump[in.event_id];");
      line("  goto lucid_done;");
      line("#else");
      line("  switch (in.event_id) {");
      for (int id = 0; id < n_events; ++id) {
        if (!has_block(id)) continue;
        line("    case " + std::to_string(id) + ": goto lucid_ev_" +
             std::to_string(id) + ";");
      }
      line("    default: goto lucid_done;");
      line("  }");
      line("#endif");
    } else {
      line("  goto lucid_done;");
    }
    for (const auto& [id, tables] : by_event) {
      if (tables.empty()) continue;
      const auto& ev = ir_.events[static_cast<std::size_t>(id)];
      line("lucid_ev_" + std::to_string(id) + ": {  // " + ev.name);
      const std::size_t nargs =
          std::min<std::size_t>(ev.params.size(), kMaxArgs);
      for (std::size_t i = 0; i < nargs; ++i) {
        line("  " + ctx_ref(ev.params[i].first) + " = " +
             masked("in.args[" + std::to_string(i) + "]",
                    ev.params[i].second) +
             ";");
      }
      for (const auto* t : tables) {
        const std::string guards = guard_condition(*t);
        if (guards.empty()) {
          line("  // " + std::string(ir::table_kind_name(t->kind)));
          emit_table(*t, "  ");
        } else {
          line("  if (" + guards + ") {  // " +
               std::string(ir::table_kind_name(t->kind)));
          emit_table(*t, "    ");
          line("  }");
        }
      }
      line("  goto lucid_done;");
      line("}");
    }
    line("lucid_done:");
    line("  return lucid_flush(m, out);");
    line("}");
    blank();
  }

  void entry_points_threaded() {
    const int gens = static_cast<int>(gen_site_index_.size());
    line("}  // namespace");
    blank();
    line("extern \"C\" u32 lucid_native_abi_version() { return " +
         std::to_string(kAbiVersion) + "; }");
    line("extern \"C\" i32 lucid_native_max_gens() { return " +
         std::to_string(gens) + "; }");
    blank();
    line("extern \"C\" i32 lucid_native_run_one(i64* const* R, "
         "const PacketIn* in, GenOut* out) {");
    line("  Ctx m;");
    line("  return lucid_exec(m, *in, R, out);");
    line("}");
    blank();
    line("// Batch mode under threaded dispatch: per-packet straight-line");
    line("// execution (one indirect jump each), packets in order — the");
    line("// same per-array access order as the per-stage loops.");
    line("extern \"C\" void lucid_native_run_batch(i64* const* R, "
         "const PacketIn* in, i32 n, GenOut* out, i32* gen_counts) {");
    line("  Ctx m;");
    line("  for (i32 i = 0; i < n; ++i) {");
    line("    gen_counts[i] = lucid_exec(m, in[i], R, out + (i64)i * " +
         std::to_string(std::max(gens, 1)) + ");");
    line("  }");
    line("}");
  }

  void entry_points() {
    const int gens = static_cast<int>(gen_site_index_.size());
    const int stages = static_cast<int>(pipeline_.stages.size());
    line("}  // namespace");
    blank();
    line("extern \"C\" u32 lucid_native_abi_version() { return " +
         std::to_string(kAbiVersion) + "; }");
    line("extern \"C\" i32 lucid_native_max_gens() { return " +
         std::to_string(gens) + "; }");
    blank();
    line("extern \"C\" i32 lucid_native_run_one(i64* const* R, "
         "const PacketIn* in, GenOut* out) {");
    line("  Ctx m;");
    line("  lucid_load(m, *in);");
    for (int s = 0; s < stages; ++s) {
      line("  lucid_stage_" + std::to_string(s) + "(m, R);");
    }
    line("  return lucid_flush(m, out);");
    line("}");
    blank();
    line("// Batch mode: per-packet straight-line execution with one shared");
    line("// Ctx — the pipeline state stays in registers instead of round-");
    line("// tripping a scratch slab between stage loops (the event loop's");
    line("// drains are tens of packets, far below streaming sizes where a");
    line("// stage-major walk could pay off). Per-array access order is");
    line("// packet order either way: each register array is pinned to one");
    line("// stage, and packets run in order.");
    line("extern \"C\" void lucid_native_run_batch(i64* const* R, "
         "const PacketIn* in, i32 n, GenOut* out, i32* gen_counts) {");
    line("  Ctx m;");
    line("  for (i32 i = 0; i < n; ++i) {");
    line("    lucid_load(m, in[i]);");
    for (int s = 0; s < stages; ++s) {
      line("    lucid_stage_" + std::to_string(s) + "(m, R);");
    }
    line("    gen_counts[i] = lucid_flush(m, out + (i64)i * " +
         std::to_string(std::max(gens, 1)) + ");");
    line("  }");
    line("}");
  }

  const ir::ProgramIR& ir_;
  const opt::Pipeline& pipeline_;
  std::string_view name_;
  EmitOptions opts_;
  std::string out_;
  int loc_ = 0;
  std::set<std::string> vars_;
  std::map<const AtomicTable*, int> gen_site_index_;
};

}  // namespace

EmittedModule emit_source(const Compilation& comp,
                          std::string_view program_name, EmitOptions opts) {
  Emitter e(comp.ir(), comp.pipeline(), program_name, opts);
  return e.run();
}

}  // namespace lucid::native
