// The multi-core native data path: a fleet of per-core Replica shards.
//
// Each shard is a complete, independent native::Replica — its own register
// slab, scheduler clock, packet pool, and PFC stream. Injections are
// partitioned across shards at schedule_inject time by a *stable* hash of
// the flow identity (destination location when the injection carries one,
// otherwise event id + argument words), so a given flow always lands on the
// same shard and every shard observes a deterministic subsequence of the
// overall schedule.
//
// Correctness model (the per-shard differential-state contract): because
// shards share no mutable state, running shard s inside the fleet is
// *literally* running a single-threaded Replica over s's injection
// subsequence — per-shard register state is byte-identical to that
// reference by construction, and tests/test_native.cpp re-derives the
// subsequences independently and checks exactly that at 1/2/4/8 shards.
// What sharding gives up is cross-flow state mixing: flows hashed to
// different shards update different register slabs, the same trade a
// hardware RSS/multi-pipe deployment makes.
//
// run_until fans the shards out over a persistent support::WorkerPool (the
// calling thread participates), so repeated run-slices cost a wakeup, not a
// thread spawn per slice. Control-plane access (ctrl::FleetDataPlane) is
// only legal between run_until calls, when every worker is quiescent — the
// pool's join provides the happens-before edge.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "native/engine.hpp"
#include "support/hash.hpp"
#include "support/parallel.hpp"

namespace lucid::native {

struct FleetConfig {
  /// Shard count; clamped to >= 1. One worker thread per shard.
  int shards = 1;
  /// Per-shard replica configuration (every shard mirrors the same switch
  /// id, scheduler mode, and batch_loop setting).
  ReplicaConfig replica;
  /// Register per-shard labeled obs instruments (shard="<i>" on the
  /// packets/batch-size/queue-depth metrics). Off for reference replicas so
  /// differential runs don't double-count.
  bool label_metrics = true;
};

class ReplicaFleet {
 public:
  ReplicaFleet(std::shared_ptr<const Program> prog, FleetConfig cfg = {})
      : prog_(std::move(prog)),
        cfg_(cfg),
        pool_(cfg.shards < 1 ? 1 : cfg.shards) {
    const int n = cfg_.shards < 1 ? 1 : cfg_.shards;
    cfg_.shards = n;
    shards_.reserve(static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      ReplicaConfig rc = cfg_.replica;
      rc.shard_id = cfg_.label_metrics ? s : -1;
      shards_.push_back(std::make_unique<Replica>(prog_, rc));
    }
  }

  [[nodiscard]] int shards() const {
    return static_cast<int>(shards_.size());
  }
  [[nodiscard]] const Program& program() const { return *prog_; }
  [[nodiscard]] Replica& shard(std::size_t i) { return *shards_[i]; }
  [[nodiscard]] const Replica& shard(std::size_t i) const {
    return *shards_[i];
  }

  /// The stable routing hash: location-keyed when the injection is
  /// addressed (>= 0), flow-keyed (event id + args) otherwise. Exposed so
  /// tests and benches can re-derive per-shard subsequences independently.
  [[nodiscard]] static std::size_t route(int shards, std::int64_t location,
                                         std::int32_t event_id,
                                         const std::vector<std::int64_t>&
                                             args) {
    std::uint32_t h;
    if (location >= 0) {
      h = support::fnv1a_word(support::fnv1a_init(0x10c), location);
    } else {
      h = support::fnv1a_init(event_id);
      for (const std::int64_t a : args) h = support::fnv1a_word(h, a);
    }
    return static_cast<std::size_t>(h) %
           static_cast<std::size_t>(shards < 1 ? 1 : shards);
  }

  /// The shard an injection would land on (validation-free preview).
  [[nodiscard]] std::size_t route_of(const std::string& event,
                                     const std::vector<std::int64_t>& args,
                                     std::int64_t location = -1) const {
    const ir::EventInfo* ev = prog_->find_event(event);
    return route(shards(), location, ev != nullptr ? ev->event_id : -1,
                 args);
  }

  /// Routes and registers an external arrival; same validation contract as
  /// Replica::schedule_inject (false on unknown event / bad arity, args
  /// width-masked by the shard).
  bool schedule_inject(sim::Time t, const std::string& event,
                       std::vector<std::int64_t> args, sim::Time delay_ns = 0,
                       std::int64_t location = -1) {
    const ir::EventInfo* ev = prog_->find_event(event);
    if (ev == nullptr) return false;
    const std::size_t s = route(shards(), location, ev->event_id, args);
    return shards_[s]->schedule_inject(t, event, std::move(args), delay_ns,
                                       location);
  }

  /// Runs every shard up to `t`, in parallel on the pool. Returns with all
  /// shards quiescent at `t` (the pool join is the synchronization point —
  /// shard state read afterwards is safely published).
  void run_until(sim::Time t) {
    pool_.run(shards_.size(),
              [this, t](std::size_t s) { shards_[s]->run_until(t); });
  }

  /// All shards share one clock discipline: after run_until(t) each sits
  /// exactly at t, so any shard's now() is the fleet's.
  [[nodiscard]] sim::Time now() const { return shards_[0]->now(); }

  /// Per-event execution/generation counts summed across shards.
  [[nodiscard]] RunStats merged_run_stats() const {
    RunStats total;
    for (const auto& sh : shards_) {
      const RunStats& rs = sh->run_stats();
      total.total_executions += rs.total_executions;
      for (const auto& [name, n] : rs.executions) {
        total.executions[name] += n;
      }
      for (const auto& [name, n] : rs.generated) total.generated[name] += n;
    }
    return total;
  }

  /// Scheduler-level counters summed across shards.
  [[nodiscard]] Replica::Stats merged_stats() const {
    Replica::Stats total;
    for (const auto& sh : shards_) {
      const Replica::Stats& st = sh->stats();
      total.executed += st.executed;
      total.forwarded += st.forwarded;
      total.delayed_enqueues += st.delayed_enqueues;
      total.recirculations += st.recirculations;
      total.delay_samples += st.delay_samples;
    }
    return total;
  }

 private:
  std::shared_ptr<const Program> prog_;
  FleetConfig cfg_;
  std::vector<std::unique_ptr<Replica>> shards_;
  WorkerPool pool_;
};

}  // namespace lucid::native
