#include "native/jit.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#ifndef LUCID_NATIVE_CXX_DEFAULT
#define LUCID_NATIVE_CXX_DEFAULT "c++"
#endif

namespace lucid::native {

namespace {

std::string compiler() {
  if (const char* env = std::getenv("LUCID_NATIVE_CXX")) return env;
  return LUCID_NATIVE_CXX_DEFAULT;
}

/// FNV-1a over the source text: the cache key. Collisions would require two
/// distinct programs in one process hashing alike — acceptable for a cache
/// whose worst failure is reusing a module with identical entry symbols.
std::uint64_t source_hash(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string work_dir() {
  const char* base = std::getenv("TMPDIR");
  std::string dir = (base != nullptr && *base != '\0') ? base : "/tmp";
  if (dir.back() == '/') dir.pop_back();
  dir += "/lucid-native-" + std::to_string(::getpid());
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct Cache {
  std::mutex mu;
  std::map<std::uint64_t, std::shared_ptr<Module>> modules;
};

Cache& cache() {
  static Cache c;
  return c;
}

}  // namespace

std::shared_ptr<Module> Module::load(const std::string& source,
                                     std::string* error) {
  const std::uint64_t key = source_hash(source);
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  if (const auto it = c.modules.find(key); it != c.modules.end()) {
    return it->second;
  }

  const std::string dir = work_dir();
  std::system(("mkdir -p '" + dir + "'").c_str());
  const std::string stem = dir + "/mod-" + std::to_string(key);
  const std::string cpp = stem + ".cpp";
  const std::string so = stem + ".so";
  const std::string err_file = stem + ".err";

  {
    std::ofstream out(cpp);
    if (!out) {
      if (error != nullptr) *error = "cannot write " + cpp;
      return nullptr;
    }
    out << source;
  }

  // This is a host JIT: tune for the machine we are running on. Not every
  // toolchain accepts -march=native (e.g. some cross setups), so fall back
  // to plain -O3 when the first attempt fails.
  auto compile_cmd = [&](const std::string& extra) {
    return compiler() + " -O3 " + extra + "-fPIC -shared -std=c++17 -o '" +
           so + "' '" + cpp + "' 2> '" + err_file + "'";
  };
  const auto t0 = std::chrono::steady_clock::now();
  int rc = std::system(compile_cmd("-march=native ").c_str());
  if (rc != 0) rc = std::system(compile_cmd("").c_str());
  const auto t1 = std::chrono::steady_clock::now();
  if (rc != 0) {
    if (error != nullptr) {
      *error = "native module compile failed (rc=" + std::to_string(rc) +
               "): " + read_file(err_file);
    }
    return nullptr;
  }

  void* handle = ::dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    if (error != nullptr) {
      const char* why = ::dlerror();
      *error = std::string("dlopen failed: ") + (why ? why : "?");
    }
    return nullptr;
  }

  auto resolve = [&](const char* sym) -> void* {
    void* p = ::dlsym(handle, sym);
    if (p == nullptr && error != nullptr) {
      *error = std::string("missing symbol ") + sym;
    }
    return p;
  };
  const auto abi_fn =
      reinterpret_cast<AbiVersionFn>(resolve(kSymAbiVersion));
  const auto gens_fn = reinterpret_cast<MaxGensFn>(resolve(kSymMaxGens));
  const auto one_fn = reinterpret_cast<RunOneFn>(resolve(kSymRunOne));
  const auto batch_fn = reinterpret_cast<RunBatchFn>(resolve(kSymRunBatch));
  if (abi_fn == nullptr || gens_fn == nullptr || one_fn == nullptr ||
      batch_fn == nullptr) {
    ::dlclose(handle);
    return nullptr;
  }
  if (abi_fn() != kAbiVersion) {
    if (error != nullptr) {
      *error = "ABI version mismatch: module " + std::to_string(abi_fn()) +
               ", host " + std::to_string(kAbiVersion);
    }
    ::dlclose(handle);
    return nullptr;
  }

  auto mod = std::shared_ptr<Module>(new Module());
  mod->handle_ = handle;
  mod->run_one_ = one_fn;
  mod->run_batch_ = batch_fn;
  mod->max_gens_ = gens_fn();
  mod->compile_ms_ =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  c.modules[key] = mod;
  return mod;
}

void Module::run_batch(std::int64_t* const* arrays, const PacketIn* in,
                       std::int32_t n, GenOut* out,
                       std::int32_t* gen_counts) const {
  run_batch_(arrays, in, n, out, gen_counts);
  // Batch-boundary instrumentation only: two relaxed atomic RMWs and one
  // histogram observation per *batch*; the generated per-packet loop above
  // runs exactly as emitted. Instruments resolve once per process.
  static obs::Counter& packets = obs::Registry::global().counter(
      "lucid_native_packets_total",
      "Packets run through instrumented native batch calls");
  static obs::Counter& batches = obs::Registry::global().counter(
      "lucid_native_batches_total", "Instrumented native batch calls");
  static obs::Histogram& sizes = obs::Registry::global().histogram(
      "lucid_native_batch_size", "Packets per native run_batch call");
  packets.add(static_cast<std::uint64_t>(n));
  batches.add();
  sizes.observe(static_cast<std::uint64_t>(n));
  // Sampled instant per batch (one relaxed load when tracing is off) — the
  // hook bench_obs drives at 1/256 sampling for its bounded-overhead gate.
  obs::Tracer::global().mark("native", "batch", "n", n);
}

}  // namespace lucid::native
