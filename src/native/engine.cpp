#include "native/engine.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "obs/metrics.hpp"
#include "support/bits.hpp"

namespace lucid::native {

namespace {

using support::mask_width;

/// Shared by Runtime and Replica: validate an injected event against the IR
/// declaration and mask args to their param widths (EventCtor semantics).
const ir::EventInfo* validate_event(const ir::ProgramIR& ir,
                                    const std::string& name,
                                    std::vector<std::int64_t>& args) {
  // ABI hard cap, checked before the declaration walk: the fixed args[]
  // slabs (RPacket, PacketIn) hold kMaxArgs words, so an over-arity
  // injection must be rejected, never truncated. Program::build refuses
  // events declared wider, but injection is caller input — same reject
  // semantics as Runtime::inject on an arity mismatch.
  if (args.size() > static_cast<std::size_t>(kMaxArgs)) return nullptr;
  for (const auto& ev : ir.events) {
    if (ev.name != name) continue;
    if (args.size() != ev.params.size()) return nullptr;
    for (std::size_t i = 0; i < args.size(); ++i) {
      args[i] = mask_width(args[i], ev.params[i].second);
    }
    return &ev;
  }
  return nullptr;
}

void build_run_stats(const ir::ProgramIR& ir,
                     const std::vector<std::uint64_t>& execs,
                     const std::vector<std::uint64_t>& gens,
                     std::uint64_t total, RunStats* out) {
  out->executions.clear();
  out->generated.clear();
  out->total_executions = total;
  for (std::size_t id = 0; id < ir.events.size(); ++id) {
    if (execs[id] != 0) out->executions[ir.events[id].name] = execs[id];
    if (gens[id] != 0) out->generated[ir.events[id].name] = gens[id];
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Program
// ---------------------------------------------------------------------------

double measure_raw_batch_pps(const ir::ProgramIR& ir, const Module& mod,
                             double budget_s) {
  std::vector<const ir::EventInfo*> handlers;
  for (const auto& ev : ir.events) {
    if (ev.has_handler) handlers.push_back(&ev);
  }
  if (handlers.empty()) return 0.0;
  constexpr std::int32_t kBatch = 4096;
  std::vector<PacketIn> in(static_cast<std::size_t>(kBatch));
  for (std::int32_t i = 0; i < kBatch; ++i) {
    const ir::EventInfo& ev =
        *handlers[static_cast<std::size_t>(i) % handlers.size()];
    PacketIn& p = in[static_cast<std::size_t>(i)];
    p.event_id = ev.event_id;
    p.nargs = static_cast<std::int32_t>(
        std::min<std::size_t>(ev.params.size(), kMaxArgs));
    p.now_ns = i;
    p.self_id = 1;
    for (std::int32_t a = 0; a < p.nargs; ++a) {
      p.args[a] = (static_cast<std::int64_t>(i) * 2654435761 + a * 97) &
                  0xfff;
    }
  }
  std::vector<std::vector<std::int64_t>> cells;
  cells.reserve(ir.arrays.size());
  for (const auto& arr : ir.arrays) {
    cells.emplace_back(static_cast<std::size_t>(arr.size), 0);
  }
  std::vector<std::int64_t*> ptrs;
  ptrs.reserve(cells.size());
  for (auto& c : cells) ptrs.push_back(c.data());
  const auto stride =
      static_cast<std::size_t>(std::max<std::int32_t>(mod.max_gens(), 1));
  std::vector<GenOut> out(static_cast<std::size_t>(kBatch) * stride);
  std::vector<std::int32_t> counts(static_cast<std::size_t>(kBatch));
  const RunBatchFn fn = mod.raw_run_batch();
  fn(ptrs.data(), in.data(), kBatch, out.data(), counts.data());  // warm
  std::uint64_t packets = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    fn(ptrs.data(), in.data(), kBatch, out.data(), counts.data());
    packets += static_cast<std::uint64_t>(kBatch);
    elapsed = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  } while (elapsed < budget_s);
  return elapsed > 0.0 ? static_cast<double>(packets) / elapsed : 0.0;
}

std::shared_ptr<const Program> Program::build(ConstCompilationPtr comp,
                                              std::string* error,
                                              ProgramOptions opts) {
  auto fail = [&](const std::string& why) -> std::shared_ptr<const Program> {
    if (error != nullptr) *error = why;
    return nullptr;
  };
  if (!comp || !comp->succeeded(Stage::Layout) || !comp->ok()) {
    return fail("native engine needs a compilation that passed Layout");
  }
  if (!comp->pipeline().feasible) {
    return fail("pipeline layout is infeasible; nothing to compile");
  }
  for (const auto& ev : comp->ir().events) {
    if (ev.params.size() > static_cast<std::size_t>(kMaxArgs)) {
      return fail("event " + ev.name + " has " +
                  std::to_string(ev.params.size()) +
                  " params; native ABI caps at " + std::to_string(kMaxArgs));
    }
  }

  auto prog = std::make_shared<Program>();
  prog->comp_ = std::move(comp);
  const std::string& name = prog->comp_->options().program_name;
  if (!opts.measure_dispatch) {
    prog->emitted_ = emit_source(*prog->comp_, name, {opts.dispatch});
    prog->module_ = Module::load(prog->emitted_.text, error);
    if (prog->module_ == nullptr) return nullptr;
    return prog;
  }
  // Measured pick: build both dispatch variants and keep the faster one on
  // a raw-batch micro-measurement. A variant that fails to load simply
  // loses (the portable switch is the safety net).
  EmittedModule em_switch = emit_source(*prog->comp_, name,
                                        {Dispatch::kSwitch});
  EmittedModule em_goto = emit_source(*prog->comp_, name,
                                      {Dispatch::kThreadedGoto});
  std::string err_switch;
  std::string err_goto;
  auto mod_switch = Module::load(em_switch.text, &err_switch);
  auto mod_goto = Module::load(em_goto.text, &err_goto);
  if (mod_switch == nullptr && mod_goto == nullptr) {
    return fail("native module compile failed for both dispatch variants: " +
                err_switch);
  }
  const double pps_switch =
      mod_switch ? measure_raw_batch_pps(prog->comp_->ir(), *mod_switch)
                 : 0.0;
  const double pps_goto =
      mod_goto ? measure_raw_batch_pps(prog->comp_->ir(), *mod_goto) : 0.0;
  if (pps_goto > pps_switch) {
    prog->emitted_ = std::move(em_goto);
    prog->module_ = std::move(mod_goto);
  } else {
    prog->emitted_ = std::move(em_switch);
    prog->module_ = std::move(mod_switch);
  }
  return prog;
}

const ir::EventInfo* Program::find_event(const std::string& name) const {
  for (const auto& ev : comp_->ir().events) {
    if (ev.name == name) return &ev;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Runtime (coupled)
// ---------------------------------------------------------------------------

Runtime::Runtime(std::shared_ptr<const Program> prog,
                 sched::EventScheduler& node)
    : prog_(std::move(prog)), node_(node) {
  const ir::ProgramIR& ir = prog_->ir();
  for (const auto& arr : ir.arrays) {
    node_.node().add_array(arr.name, arr.width, arr.size);
  }
  // Cache raw cell pointers only after every array exists: add_array may
  // replace entries, but never moves others (std::map nodes are stable).
  array_ptrs_.reserve(ir.arrays.size());
  for (const auto& arr : ir.arrays) {
    array_ptrs_.push_back(node_.node().find_array(arr.name)->data());
  }
  gen_buf_.resize(
      static_cast<std::size_t>(std::max<std::int32_t>(
          prog_->module().max_gens(), 1)));
  has_handler_by_id_.assign(ir.events.size(), 0);
  exec_count_by_id_.assign(ir.events.size(), 0);
  gen_count_by_id_.assign(ir.events.size(), 0);
  for (const auto& ev : ir.events) {
    if (ev.has_handler) {
      has_handler_by_id_[static_cast<std::size_t>(ev.event_id)] = 1;
    }
  }
  node_.set_execute([this](const pisa::Packet& p) { execute(p); });
}

bool Runtime::make_event(const std::string& event,
                         std::vector<std::int64_t>& args,
                         sched::GenEvent* out) const {
  const ir::EventInfo* ev = validate_event(prog_->ir(), event, args);
  if (ev == nullptr) return false;
  out->event_id = ev->event_id;
  out->args = std::move(args);
  return true;
}

bool Runtime::inject(const std::string& event, std::vector<std::int64_t> args,
                     sim::Time delay_ns, std::int64_t location) {
  sched::GenEvent ev;
  if (!make_event(event, args, &ev)) return false;
  ev.delay_ns = delay_ns;
  ev.location = location;
  node_.inject(std::move(ev));
  return true;
}

bool Runtime::inject_control(const std::string& event,
                             std::vector<std::int64_t> args,
                             sim::Time delay_ns) {
  sched::GenEvent ev;
  if (!make_event(event, args, &ev)) return false;
  ev.delay_ns = delay_ns;
  node_.inject_control(std::move(ev));
  return true;
}

void Runtime::execute(const pisa::Packet& p) {
  const auto id = static_cast<std::size_t>(p.event_id);
  if (p.event_id < 0 || id >= has_handler_by_id_.size() ||
      has_handler_by_id_[id] == 0) {
    return;
  }
  ++total_executions_;
  ++exec_count_by_id_[id];

  PacketIn in;
  in.event_id = p.event_id;
  in.nargs = static_cast<std::int32_t>(
      std::min<std::size_t>(p.args.size(), kMaxArgs));
  in.now_ns = node_.node().sim().now();
  in.self_id = node_.self();
  for (std::int32_t i = 0; i < in.nargs; ++i) in.args[i] = p.args[i];

  const std::int32_t n =
      prog_->module().run_one(array_ptrs_.data(), in, gen_buf_.data());
  const ir::ProgramIR& ir = prog_->ir();
  for (std::int32_t g = 0; g < n; ++g) {
    const GenOut& go = gen_buf_[static_cast<std::size_t>(g)];
    sched::GenEvent ev;
    ev.event_id = go.event_id;
    ev.args.assign(go.args, go.args + go.nargs);
    ev.delay_ns = go.delay_ns;
    ev.location = go.location;
    ev.multicast = go.multicast != 0;
    if (go.group >= 0) {
      ev.members = ir.groups[static_cast<std::size_t>(go.group)].members;
    }
    if (go.event_id >= 0 &&
        static_cast<std::size_t>(go.event_id) < gen_count_by_id_.size()) {
      ++gen_count_by_id_[static_cast<std::size_t>(go.event_id)];
    }
    node_.generate(std::move(ev));
  }
}

const RunStats& Runtime::stats() const {
  build_run_stats(prog_->ir(), exec_count_by_id_, gen_count_by_id_,
                  total_executions_, &stats_);
  return stats_;
}

// ---------------------------------------------------------------------------
// Replica (decoupled)
// ---------------------------------------------------------------------------

Replica::Replica(std::shared_ptr<const Program> prog, ReplicaConfig cfg)
    : prog_(std::move(prog)), cfg_(cfg) {
  const ir::ProgramIR& ir = prog_->ir();
  cells_.reserve(ir.arrays.size());
  for (const auto& arr : ir.arrays) {
    cells_.emplace_back(static_cast<std::size_t>(arr.size), 0);
  }
  array_ptrs_.reserve(cells_.size());
  for (auto& c : cells_) array_ptrs_.push_back(c.data());
  gen_buf_.resize(
      static_cast<std::size_t>(std::max<std::int32_t>(
          prog_->module().max_gens(), 1)));
  has_handler_by_id_.assign(ir.events.size(), 0);
  exec_count_by_id_.assign(ir.events.size(), 0);
  gen_count_by_id_.assign(ir.events.size(), 0);
  for (const auto& ev : ir.events) {
    if (ev.has_handler) {
      has_handler_by_id_[static_cast<std::size_t>(ev.event_id)] = 1;
    }
  }
  recirc_ = RPort{cfg_.switch_cfg.recirc_rate_gbps,
                  cfg_.switch_cfg.recirc_latency_ns, 0, 0, 0};
  front_ = RPort{cfg_.switch_cfg.front_rate_gbps, 0, 0, 0, 0};
  run_batch_fn_ = prog_->module().raw_run_batch();
  gen_stride_ = std::max<std::int32_t>(prog_->module().max_gens(), 1);
  if (cfg_.shard_id >= 0) {
    const obs::Labels labels{{"shard", std::to_string(cfg_.shard_id)}};
    auto& reg = obs::Registry::global();
    shard_packets_ = &reg.counter(
        "lucid_native_shard_packets_total", labels,
        "Packets executed per replica-fleet shard");
    shard_batch_size_ = &reg.histogram(
        "lucid_native_shard_batch_size", labels,
        "Same-timestamp packets drained per event-loop batch, by shard");
    shard_queue_depth_ = &reg.gauge(
        "lucid_native_shard_queue_depth", labels,
        "In-flight heap + pending injections at the last run boundary");
  }
  // EventScheduler's constructor starts the PFC stream synchronously at
  // t=0, before any injection closures are registered — mirror that order.
  if (cfg_.sched.mode == sched::DelayMode::PausableQueue) pfc_tick();
}

std::int32_t Replica::alloc_slot() {
  if (!free_.empty()) {
    const std::int32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  pool_.emplace_back();
  return static_cast<std::int32_t>(pool_.size() - 1);
}

void Replica::release_slot(std::int32_t idx) { free_.push_back(idx); }

void Replica::push_idx(sim::Time t, Kind kind, std::int32_t idx) {
  Entry e;
  e.t = std::max(t, now_);  // Simulator::at clamps to now
  e.seq = next_seq_++;
  e.kind = kind;
  e.pkt = idx;
  heap_.push(e);
}

void Replica::push(sim::Time t, Kind kind) { push_idx(t, kind, -1); }

void Replica::push(sim::Time t, Kind kind, const RPacket& pkt) {
  const std::int32_t idx = alloc_slot();
  pool_[static_cast<std::size_t>(idx)] = pkt;
  push_idx(t, kind, idx);
}

bool Replica::make_packet(const std::string& event,
                          std::vector<std::int64_t>& args,
                          RPacket* out) const {
  const ir::EventInfo* ev = validate_event(prog_->ir(), event, args);
  if (ev == nullptr) return false;
  out->event_id = ev->event_id;
  out->nargs = static_cast<std::int32_t>(args.size());
  for (std::int32_t i = 0; i < out->nargs; ++i) out->args[i] = args[i];
  out->size_bytes =
      std::max<int>(64, 34 + 4 * static_cast<int>(args.size()));
  return true;
}

bool Replica::schedule_inject(sim::Time t, const std::string& event,
                              std::vector<std::int64_t> args,
                              sim::Time delay_ns, std::int64_t location) {
  RPacket p;
  if (!make_packet(event, args, &p)) return false;
  p.location = location;
  p.created = t;  // to_packet stamps creation when the closure fires, == t
  p.due = t + delay_ns;
  const sim::Time at = std::max(t, now_);
  if (!pending_.empty() && at < pending_.back().t) {
    // Out-of-order registration: keep the sorted fast path intact and let
    // the heap order this one (seq still allocated here, at registration).
    push(at, Kind::Inject, p);
    return true;
  }
  PendingInject pi;
  pi.t = at;
  pi.seq = next_seq_++;
  pi.pkt = p;
  pending_.push_back(pi);
  return true;
}

void Replica::pfc_tick() {
  // Mirror of Switch::pfc_tick: the (unpause, pause) pair costs recirc
  // bandwidth; three sim entries allocated in this order.
  RPacket frame;  // minimum-size PFC frame: 64B -> 84 wire bytes
  push(recirc_.send(now_, frame.wire_bytes()), Kind::PfcOpen);
  push(now_ + cfg_.sched.release_window_ns, Kind::PfcPauseSend);
  push(now_ + cfg_.sched.release_interval_ns, Kind::PfcTick);
}

void Replica::recirculate(const RPacket& p) {
  ++stats_.recirculations;
  push(recirc_.send(now_, p.wire_bytes()), Kind::RecircDeliver, p);
}

void Replica::route_out(const RPacket& p) {
  // Front-port serialization is accounted, but the delivery entry is not
  // pushed: in a single-node topology the network drops it (no side
  // effects), and skipping an allocation-sequence element preserves the
  // relative (t, seq) order of everything else.
  ++stats_.forwarded;
  (void)front_.send(now_, p.wire_bytes());
}

void Replica::on_ingress(const RPacket& p) {
  const int self = cfg_.switch_cfg.id;
  if (p.location >= 0 && p.location != self) {
    route_out(p);
    return;
  }
  if (now_ < p.due) {
    if (cfg_.sched.mode == sched::DelayMode::BaselineRecirculation) {
      recirculate(p);
      return;
    }
    if (delay_open_) {
      recirculate(p);
    } else {
      ++stats_.delayed_enqueues;
      delay_queue_.push_back(p);
    }
    return;
  }
  ++stats_.executed;
  if (p.due > p.created) ++stats_.delay_samples;
  execute(p);
}

void Replica::execute(const RPacket& p) {
  const auto id = static_cast<std::size_t>(p.event_id);
  if (p.event_id < 0 || id >= has_handler_by_id_.size() ||
      has_handler_by_id_[id] == 0) {
    return;
  }
  ++total_executions_;
  ++exec_count_by_id_[id];

  PacketIn in;
  in.event_id = p.event_id;
  in.nargs = p.nargs;
  in.now_ns = now_;
  in.self_id = cfg_.switch_cfg.id;
  for (std::int32_t i = 0; i < p.nargs; ++i) in.args[i] = p.args[i];

  const std::int32_t n =
      prog_->module().run_one(array_ptrs_.data(), in, gen_buf_.data());
  for (std::int32_t g = 0; g < n; ++g) {
    dispatch_gen(gen_buf_[static_cast<std::size_t>(g)]);
  }
}

void Replica::dispatch_gen(const GenOut& g) {
  if (g.event_id >= 0 &&
      static_cast<std::size_t>(g.event_id) < gen_count_by_id_.size()) {
    ++gen_count_by_id_[static_cast<std::size_t>(g.event_id)];
  }
  RPacket p;
  p.event_id = g.event_id;
  p.nargs = g.nargs;
  for (std::int32_t i = 0; i < g.nargs; ++i) p.args[i] = g.args[i];
  p.size_bytes = std::max<int>(64, 34 + 4 * g.nargs);
  p.created = now_;
  p.due = now_ + g.delay_ns;

  const int self = cfg_.switch_cfg.id;
  const ir::ProgramIR& ir = prog_->ir();
  const std::vector<std::int64_t>* members =
      g.multicast != 0 && g.group >= 0
          ? &ir.groups[static_cast<std::size_t>(g.group)].members
          : nullptr;
  if (members != nullptr && !members->empty()) {
    // Multicast engine: one unicast clone per member, in member order.
    for (const std::int64_t member : *members) {
      RPacket clone = p;
      clone.location = member;
      if (member == self) {
        recirculate(clone);
      } else {
        route_out(clone);
      }
    }
    return;
  }
  if (g.location >= 0 && g.location != self) {
    p.location = g.location;
    route_out(p);
    return;
  }
  p.location = -1;
  recirculate(p);
}

void Replica::run_until(sim::Time t) {
  // Merge by (t, seq): the sorted pending-injection vector, the sorted
  // pipeline-pass FIFO (batch mode; empty otherwise), and the in-flight
  // heap. Seq numbers were allocated in registration/fire order on all
  // three sides, so the merged order is exactly the order one big heap
  // would produce — but the heap stays a handful of entries deep and the
  // two hot sources pop in O(1).
  const sim::Time pipe_ns = cfg_.switch_cfg.pipeline_latency_ns;
  for (;;) {
    enum class Src : std::uint8_t { kNone, kPending, kPass, kHeap };
    Src src = Src::kNone;
    sim::Time bt = 0;
    std::uint64_t bs = 0;
    if (pending_head_ < pending_.size()) {
      src = Src::kPending;
      bt = pending_[pending_head_].t;
      bs = pending_[pending_head_].seq;
    }
    if (pass_head_ < pass_q_.size()) {
      const PassEntry& fe = pass_q_[pass_head_];
      if (src == Src::kNone || fe.t < bt || (fe.t == bt && fe.seq < bs)) {
        src = Src::kPass;
        bt = fe.t;
        bs = fe.seq;
      }
    }
    if (!heap_.empty()) {
      const Entry& h = heap_.top();
      if (src == Src::kNone || h.t < bt || (h.t == bt && h.seq < bs)) {
        src = Src::kHeap;
        bt = h.t;
        bs = h.seq;
      }
    }
    if (src == Src::kNone || bt > t) break;
    now_ = bt;
    if (src == Src::kPending) {
      // deliver_to_ingress: one pipeline pass of latency, then dispatch.
      if (cfg_.batch_loop) {
        // Bulk transfer: every pending injection due at now_ whose seq
        // precedes the other same-t sources moves to the pass FIFO in one
        // tight loop instead of re-running the three-way merge per packet.
        // The stop key computed once holds for the whole run: the heap is
        // untouched here, and pass_push only appends strictly larger
        // (t, seq) keys behind the FIFO front.
        std::uint64_t stop_seq = std::numeric_limits<std::uint64_t>::max();
        if (!heap_.empty() && heap_.top().t == now_) {
          stop_seq = heap_.top().seq;
        }
        if (pass_head_ < pass_q_.size()) {
          const PassEntry& fe = pass_q_[pass_head_];
          if (fe.t == now_ && fe.seq < stop_seq) stop_seq = fe.seq;
        }
        while (pending_head_ < pending_.size()) {
          const PendingInject& p = pending_[pending_head_];
          if (p.t != now_ || p.seq >= stop_seq) break;
          pass_push(now_ + pipe_ns,
                    static_cast<std::int32_t>(pending_head_),
                    /*from_pool=*/false);
          ++pending_head_;
        }
      } else {
        const PendingInject& p = pending_[pending_head_++];
        push(now_ + pipe_ns, Kind::FinishPass, p.pkt);
      }
      continue;
    }
    if (src == Src::kPass) {
      drain_passes();
      continue;
    }
    const Entry e = heap_.top();
    heap_.pop();
    switch (e.kind) {
      case Kind::Inject:
      case Kind::RecircDeliver:
        // deliver_to_ingress: one pipeline pass of latency, then dispatch.
        if (cfg_.batch_loop) {
          // The slot stays allocated until the drain consumes the pass.
          pass_push(now_ + pipe_ns, e.pkt, /*from_pool=*/true);
        } else {
          // The packet slot is reused verbatim by the FinishPass entry.
          push_idx(now_ + pipe_ns, Kind::FinishPass, e.pkt);
        }
        break;
      case Kind::FinishPass: {
        // Per-entry loop only (batch mode keeps passes out of the heap).
        // Copy out before dispatching: on_ingress can allocate pool slots,
        // which may reallocate the slab under a held reference.
        const RPacket pkt = pool_[static_cast<std::size_t>(e.pkt)];
        release_slot(e.pkt);
        on_ingress(pkt);
        break;
      }
      case Kind::PfcOpen:
        delay_open_ = true;
        // Drain FIFO through the recirculation port (set_delay_queue_open).
        while (delay_head_ < delay_queue_.size()) {
          recirculate(delay_queue_[delay_head_++]);
        }
        delay_queue_.clear();
        delay_head_ = 0;
        break;
      case Kind::PfcClose:
        delay_open_ = false;
        break;
      case Kind::PfcPauseSend: {
        RPacket frame;
        push(recirc_.send(now_, frame.wire_bytes()), Kind::PfcClose);
        break;
      }
      case Kind::PfcTick:
        pfc_tick();
        break;
    }
  }
  now_ = std::max(now_, t);
  compact_pending();
  // Batch-boundary metrics publish: the event loop above runs branch-free
  // with respect to observability; executions accumulate in plain counters
  // and the delta lands in the process-wide registry once per run_until.
  static obs::Counter& executed = obs::Registry::global().counter(
      "lucid_native_replica_executions_total",
      "Handler executions across native replica runs");
  executed.add(total_executions_ - published_executions_);
  published_executions_ = total_executions_;
  if (shard_packets_ != nullptr) {
    shard_packets_->add(stats_.executed - published_shard_executed_);
    published_shard_executed_ = stats_.executed;
    shard_queue_depth_->set(static_cast<std::int64_t>(
        heap_.size() + (pending_.size() - pending_head_) +
        (pass_q_.size() - pass_head_)));
  }
}

void Replica::pass_push(sim::Time t, std::int32_t idx, bool from_pool) {
  PassEntry e;
  e.t = std::max(t, now_);  // Simulator::at clamps to now
  e.seq = next_seq_++;
  e.idx = idx;
  e.from_pool = from_pool;
  pass_q_.push_back(e);
}

void Replica::drain_passes() {
  // Multi-packet drain: consume the run of pipeline passes finishing at
  // exactly now_, classifying each in arrival order and grouping the
  // consecutive *executing* packets into one run_batch call. Correct
  // because (a) a heap entry with a seq inside the run (PFC open/close
  // flips delay_open_, deliveries allocate seqs) would have interleaved in
  // merged order, so it stops the drain, (b) same for a pending injection,
  // and (c) everything this drain generates lands strictly after now_
  // (recirc serialization is >= 1 ns), so the drained set can't be
  // invalidated by its own side effects. Every other disposition
  // (route-out, delay, recirculate) has side effects on the ports / the
  // seq sequence, so the pending execution sub-run is flushed first —
  // which keeps all port sends and seq allocations in exactly the order
  // the per-entry loop produces.
  const int self = cfg_.switch_cfg.id;
  std::uint64_t drained = 0;
  batch_in_.clear();
  // The stop key against the other two sources, computed once: pendings
  // don't change mid-drain, and the heap pushes this drain performs
  // (recirculations, generates) always allocate strictly larger (t, seq)
  // keys than every pass already queued, so neither source can slip in
  // front of a remaining pass after the drain starts.
  std::uint64_t stop_seq = std::numeric_limits<std::uint64_t>::max();
  if (!heap_.empty() && heap_.top().t == now_) stop_seq = heap_.top().seq;
  if (pending_head_ < pending_.size()) {
    const PendingInject& pi = pending_[pending_head_];
    if (pi.t == now_ && pi.seq < stop_seq) stop_seq = pi.seq;
  }
  while (pass_head_ < pass_q_.size()) {
    const PassEntry fe = pass_q_[pass_head_];
    if (fe.t != now_ || fe.seq >= stop_seq) break;
    // Classification reads the packet in its existing storage — the
    // consumed pending prefix or its pool slot — copy-free on the hot
    // (execute) path. The rare non-execute paths copy out first: their
    // flush can grow pool_ under the reference, and recirculate must not
    // alias a slot anyway.
    const RPacket& p = fe.from_pool
                           ? pool_[static_cast<std::size_t>(fe.idx)]
                           : pending_[static_cast<std::size_t>(fe.idx)].pkt;
    ++pass_head_;
    ++drained;
    if (p.location >= 0 && p.location != self) {
      const RPacket pkt = p;
      if (fe.from_pool) release_slot(fe.idx);
      flush_exec_batch();
      route_out(pkt);
      continue;
    }
    if (now_ < p.due) {
      const RPacket pkt = p;
      if (fe.from_pool) release_slot(fe.idx);
      flush_exec_batch();
      if (cfg_.sched.mode == sched::DelayMode::BaselineRecirculation ||
          delay_open_) {
        recirculate(pkt);
      } else {
        ++stats_.delayed_enqueues;
        delay_queue_.push_back(pkt);
      }
      continue;
    }
    ++stats_.executed;
    if (p.due > p.created) ++stats_.delay_samples;
    const auto id = static_cast<std::size_t>(p.event_id);
    if (p.event_id < 0 || id >= has_handler_by_id_.size() ||
        has_handler_by_id_[id] == 0) {
      // No handler: counted, no state effects, nothing to flush.
      if (fe.from_pool) release_slot(fe.idx);
      continue;
    }
    ++total_executions_;
    ++exec_count_by_id_[id];
    PacketIn in;
    in.event_id = p.event_id;
    in.nargs = p.nargs;
    in.now_ns = now_;
    in.self_id = self;
    for (std::int32_t i = 0; i < p.nargs; ++i) in.args[i] = p.args[i];
    batch_in_.push_back(in);
    if (fe.from_pool) release_slot(fe.idx);
  }
  flush_exec_batch();
  // Fully drained is the common case (bursty traffic with gaps wider than
  // the pipeline latency) — reset the FIFO in O(1) so it never grows past
  // the in-flight high-water mark within one run_until.
  if (pass_head_ == pass_q_.size()) {
    pass_q_.clear();
    pass_head_ = 0;
  }
  if (shard_batch_size_ != nullptr) {
    shard_batch_size_->observe(static_cast<double>(drained));
  }
}

void Replica::flush_exec_batch() {
  if (batch_in_.empty()) return;
  const auto n = static_cast<std::int32_t>(batch_in_.size());
  const std::size_t out_need =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(gen_stride_);
  if (batch_out_.size() < out_need) batch_out_.resize(out_need);
  if (batch_counts_.size() < static_cast<std::size_t>(n)) {
    batch_counts_.resize(static_cast<std::size_t>(n));
  }
  // The raw entry point: packets in order, each straight through the
  // pipeline on one reused Ctx (emit.cpp), so state is byte-identical to
  // sequential run_one calls — the contract
  // tests/test_native.cpp::BatchMatchesSequentialRunOne pins.
  run_batch_fn_(array_ptrs_.data(), batch_in_.data(), n, batch_out_.data(),
                batch_counts_.data());
  // Generated events dispatch per packet, in packet order — the same
  // interleaving the sequential loop produces (packet i's generates all
  // precede packet i+1's).
  for (std::int32_t i = 0; i < n; ++i) {
    const std::int32_t gens = batch_counts_[static_cast<std::size_t>(i)];
    const GenOut* out =
        batch_out_.data() + static_cast<std::size_t>(i) *
                                static_cast<std::size_t>(gen_stride_);
    for (std::int32_t g = 0; g < gens; ++g) dispatch_gen(out[g]);
  }
  batch_in_.clear();
}

void Replica::compact_pending() {
  // Erase the consumed prefix once it dominates the vector; amortized O(1)
  // per injection, and the capacity shrinks back once a soak run's transient
  // backlog has drained, so footprint tracks the *live* pending set. Live
  // pass entries index into the consumed pending prefix, so compaction must
  // wait until the FIFO has fully drained (the common case at a run
  // boundary — drain_passes resets it to empty).
  if (pass_head_ == pass_q_.size() &&
      pending_head_ >= kPendingCompactThreshold &&
      pending_head_ * 2 >= pending_.size()) {
    pending_.erase(pending_.begin(),
                   pending_.begin() +
                       static_cast<std::ptrdiff_t>(pending_head_));
    pending_head_ = 0;
    if (pending_.capacity() > kPendingCompactThreshold * 4 &&
        pending_.size() * 4 < pending_.capacity()) {
      pending_.shrink_to_fit();
    }
  }
  // Same discipline for the pipeline-pass FIFO (batch mode).
  if (pass_head_ >= kPendingCompactThreshold &&
      pass_head_ * 2 >= pass_q_.size()) {
    pass_q_.erase(pass_q_.begin(),
                  pass_q_.begin() + static_cast<std::ptrdiff_t>(pass_head_));
    pass_head_ = 0;
    if (pass_q_.capacity() > kPendingCompactThreshold * 4 &&
        pass_q_.size() * 4 < pass_q_.capacity()) {
      pass_q_.shrink_to_fit();
    }
  }
}

bool Replica::control_write(std::size_t decl_index, std::int64_t index,
                            std::int64_t value) {
  if (decl_index >= cells_.size()) return false;
  auto& cells = cells_[decl_index];
  const auto n = static_cast<std::int64_t>(cells.size());
  std::int64_t i = index % n;
  if (i < 0) i += n;
  const ir::ArrayInfo& arr = prog_->ir().arrays[decl_index];
  cells[static_cast<std::size_t>(i)] = mask_width(value, arr.width);
  return true;
}

std::int64_t Replica::control_read(std::size_t decl_index,
                                   std::int64_t index) const {
  if (decl_index >= cells_.size()) return 0;
  const auto& cells = cells_[decl_index];
  const auto n = static_cast<std::int64_t>(cells.size());
  std::int64_t i = index % n;
  if (i < 0) i += n;
  return cells[static_cast<std::size_t>(i)];
}

const RunStats& Replica::run_stats() const {
  build_run_stats(prog_->ir(), exec_count_by_id_, gen_count_by_id_,
                  total_executions_, &run_stats_);
  return run_stats_;
}

}  // namespace lucid::native
