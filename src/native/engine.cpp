#include "native/engine.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "support/bits.hpp"

namespace lucid::native {

namespace {

using support::mask_width;

/// Shared by Runtime and Replica: validate an injected event against the IR
/// declaration and mask args to their param widths (EventCtor semantics).
const ir::EventInfo* validate_event(const ir::ProgramIR& ir,
                                    const std::string& name,
                                    std::vector<std::int64_t>& args) {
  for (const auto& ev : ir.events) {
    if (ev.name != name) continue;
    if (args.size() != ev.params.size()) return nullptr;
    for (std::size_t i = 0; i < args.size(); ++i) {
      args[i] = mask_width(args[i], ev.params[i].second);
    }
    return &ev;
  }
  return nullptr;
}

void build_run_stats(const ir::ProgramIR& ir,
                     const std::vector<std::uint64_t>& execs,
                     const std::vector<std::uint64_t>& gens,
                     std::uint64_t total, RunStats* out) {
  out->executions.clear();
  out->generated.clear();
  out->total_executions = total;
  for (std::size_t id = 0; id < ir.events.size(); ++id) {
    if (execs[id] != 0) out->executions[ir.events[id].name] = execs[id];
    if (gens[id] != 0) out->generated[ir.events[id].name] = gens[id];
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Program
// ---------------------------------------------------------------------------

std::shared_ptr<const Program> Program::build(ConstCompilationPtr comp,
                                              std::string* error) {
  auto fail = [&](const std::string& why) -> std::shared_ptr<const Program> {
    if (error != nullptr) *error = why;
    return nullptr;
  };
  if (!comp || !comp->succeeded(Stage::Layout) || !comp->ok()) {
    return fail("native engine needs a compilation that passed Layout");
  }
  if (!comp->pipeline().feasible) {
    return fail("pipeline layout is infeasible; nothing to compile");
  }
  for (const auto& ev : comp->ir().events) {
    if (ev.params.size() > static_cast<std::size_t>(kMaxArgs)) {
      return fail("event " + ev.name + " has " +
                  std::to_string(ev.params.size()) +
                  " params; native ABI caps at " + std::to_string(kMaxArgs));
    }
  }

  auto prog = std::make_shared<Program>();
  prog->comp_ = std::move(comp);
  prog->emitted_ =
      emit_source(*prog->comp_, prog->comp_->options().program_name);
  prog->module_ = Module::load(prog->emitted_.text, error);
  if (prog->module_ == nullptr) return nullptr;
  return prog;
}

const ir::EventInfo* Program::find_event(const std::string& name) const {
  for (const auto& ev : comp_->ir().events) {
    if (ev.name == name) return &ev;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Runtime (coupled)
// ---------------------------------------------------------------------------

Runtime::Runtime(std::shared_ptr<const Program> prog,
                 sched::EventScheduler& node)
    : prog_(std::move(prog)), node_(node) {
  const ir::ProgramIR& ir = prog_->ir();
  for (const auto& arr : ir.arrays) {
    node_.node().add_array(arr.name, arr.width, arr.size);
  }
  // Cache raw cell pointers only after every array exists: add_array may
  // replace entries, but never moves others (std::map nodes are stable).
  array_ptrs_.reserve(ir.arrays.size());
  for (const auto& arr : ir.arrays) {
    array_ptrs_.push_back(node_.node().find_array(arr.name)->data());
  }
  gen_buf_.resize(
      static_cast<std::size_t>(std::max<std::int32_t>(
          prog_->module().max_gens(), 1)));
  has_handler_by_id_.assign(ir.events.size(), 0);
  exec_count_by_id_.assign(ir.events.size(), 0);
  gen_count_by_id_.assign(ir.events.size(), 0);
  for (const auto& ev : ir.events) {
    if (ev.has_handler) {
      has_handler_by_id_[static_cast<std::size_t>(ev.event_id)] = 1;
    }
  }
  node_.set_execute([this](const pisa::Packet& p) { execute(p); });
}

bool Runtime::make_event(const std::string& event,
                         std::vector<std::int64_t>& args,
                         sched::GenEvent* out) const {
  const ir::EventInfo* ev = validate_event(prog_->ir(), event, args);
  if (ev == nullptr) return false;
  out->event_id = ev->event_id;
  out->args = std::move(args);
  return true;
}

bool Runtime::inject(const std::string& event, std::vector<std::int64_t> args,
                     sim::Time delay_ns, std::int64_t location) {
  sched::GenEvent ev;
  if (!make_event(event, args, &ev)) return false;
  ev.delay_ns = delay_ns;
  ev.location = location;
  node_.inject(std::move(ev));
  return true;
}

bool Runtime::inject_control(const std::string& event,
                             std::vector<std::int64_t> args,
                             sim::Time delay_ns) {
  sched::GenEvent ev;
  if (!make_event(event, args, &ev)) return false;
  ev.delay_ns = delay_ns;
  node_.inject_control(std::move(ev));
  return true;
}

void Runtime::execute(const pisa::Packet& p) {
  const auto id = static_cast<std::size_t>(p.event_id);
  if (p.event_id < 0 || id >= has_handler_by_id_.size() ||
      has_handler_by_id_[id] == 0) {
    return;
  }
  ++total_executions_;
  ++exec_count_by_id_[id];

  PacketIn in;
  in.event_id = p.event_id;
  in.nargs = static_cast<std::int32_t>(
      std::min<std::size_t>(p.args.size(), kMaxArgs));
  in.now_ns = node_.node().sim().now();
  in.self_id = node_.self();
  for (std::int32_t i = 0; i < in.nargs; ++i) in.args[i] = p.args[i];

  const std::int32_t n =
      prog_->module().run_one(array_ptrs_.data(), in, gen_buf_.data());
  const ir::ProgramIR& ir = prog_->ir();
  for (std::int32_t g = 0; g < n; ++g) {
    const GenOut& go = gen_buf_[static_cast<std::size_t>(g)];
    sched::GenEvent ev;
    ev.event_id = go.event_id;
    ev.args.assign(go.args, go.args + go.nargs);
    ev.delay_ns = go.delay_ns;
    ev.location = go.location;
    ev.multicast = go.multicast != 0;
    if (go.group >= 0) {
      ev.members = ir.groups[static_cast<std::size_t>(go.group)].members;
    }
    if (go.event_id >= 0 &&
        static_cast<std::size_t>(go.event_id) < gen_count_by_id_.size()) {
      ++gen_count_by_id_[static_cast<std::size_t>(go.event_id)];
    }
    node_.generate(std::move(ev));
  }
}

const RunStats& Runtime::stats() const {
  build_run_stats(prog_->ir(), exec_count_by_id_, gen_count_by_id_,
                  total_executions_, &stats_);
  return stats_;
}

// ---------------------------------------------------------------------------
// Replica (decoupled)
// ---------------------------------------------------------------------------

Replica::Replica(std::shared_ptr<const Program> prog, ReplicaConfig cfg)
    : prog_(std::move(prog)), cfg_(cfg) {
  const ir::ProgramIR& ir = prog_->ir();
  cells_.reserve(ir.arrays.size());
  for (const auto& arr : ir.arrays) {
    cells_.emplace_back(static_cast<std::size_t>(arr.size), 0);
  }
  array_ptrs_.reserve(cells_.size());
  for (auto& c : cells_) array_ptrs_.push_back(c.data());
  gen_buf_.resize(
      static_cast<std::size_t>(std::max<std::int32_t>(
          prog_->module().max_gens(), 1)));
  has_handler_by_id_.assign(ir.events.size(), 0);
  exec_count_by_id_.assign(ir.events.size(), 0);
  gen_count_by_id_.assign(ir.events.size(), 0);
  for (const auto& ev : ir.events) {
    if (ev.has_handler) {
      has_handler_by_id_[static_cast<std::size_t>(ev.event_id)] = 1;
    }
  }
  recirc_ = RPort{cfg_.switch_cfg.recirc_rate_gbps,
                  cfg_.switch_cfg.recirc_latency_ns, 0, 0, 0};
  front_ = RPort{cfg_.switch_cfg.front_rate_gbps, 0, 0, 0, 0};
  // EventScheduler's constructor starts the PFC stream synchronously at
  // t=0, before any injection closures are registered — mirror that order.
  if (cfg_.sched.mode == sched::DelayMode::PausableQueue) pfc_tick();
}

std::int32_t Replica::alloc_slot() {
  if (!free_.empty()) {
    const std::int32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  pool_.emplace_back();
  return static_cast<std::int32_t>(pool_.size() - 1);
}

void Replica::release_slot(std::int32_t idx) { free_.push_back(idx); }

void Replica::push_idx(sim::Time t, Kind kind, std::int32_t idx) {
  Entry e;
  e.t = std::max(t, now_);  // Simulator::at clamps to now
  e.seq = next_seq_++;
  e.kind = kind;
  e.pkt = idx;
  heap_.push(e);
}

void Replica::push(sim::Time t, Kind kind) { push_idx(t, kind, -1); }

void Replica::push(sim::Time t, Kind kind, const RPacket& pkt) {
  const std::int32_t idx = alloc_slot();
  pool_[static_cast<std::size_t>(idx)] = pkt;
  push_idx(t, kind, idx);
}

bool Replica::make_packet(const std::string& event,
                          std::vector<std::int64_t>& args,
                          RPacket* out) const {
  const ir::EventInfo* ev = validate_event(prog_->ir(), event, args);
  if (ev == nullptr) return false;
  out->event_id = ev->event_id;
  out->nargs = static_cast<std::int32_t>(args.size());
  for (std::int32_t i = 0; i < out->nargs; ++i) out->args[i] = args[i];
  out->size_bytes =
      std::max<int>(64, 34 + 4 * static_cast<int>(args.size()));
  return true;
}

bool Replica::schedule_inject(sim::Time t, const std::string& event,
                              std::vector<std::int64_t> args,
                              sim::Time delay_ns, std::int64_t location) {
  RPacket p;
  if (!make_packet(event, args, &p)) return false;
  p.location = location;
  p.created = t;  // to_packet stamps creation when the closure fires, == t
  p.due = t + delay_ns;
  const sim::Time at = std::max(t, now_);
  if (!pending_.empty() && at < pending_.back().t) {
    // Out-of-order registration: keep the sorted fast path intact and let
    // the heap order this one (seq still allocated here, at registration).
    push(at, Kind::Inject, p);
    return true;
  }
  PendingInject pi;
  pi.t = at;
  pi.seq = next_seq_++;
  pi.pkt = p;
  pending_.push_back(pi);
  return true;
}

void Replica::pfc_tick() {
  // Mirror of Switch::pfc_tick: the (unpause, pause) pair costs recirc
  // bandwidth; three sim entries allocated in this order.
  RPacket frame;  // minimum-size PFC frame: 64B -> 84 wire bytes
  push(recirc_.send(now_, frame.wire_bytes()), Kind::PfcOpen);
  push(now_ + cfg_.sched.release_window_ns, Kind::PfcPauseSend);
  push(now_ + cfg_.sched.release_interval_ns, Kind::PfcTick);
}

void Replica::recirculate(const RPacket& p) {
  ++stats_.recirculations;
  push(recirc_.send(now_, p.wire_bytes()), Kind::RecircDeliver, p);
}

void Replica::route_out(const RPacket& p) {
  // Front-port serialization is accounted, but the delivery entry is not
  // pushed: in a single-node topology the network drops it (no side
  // effects), and skipping an allocation-sequence element preserves the
  // relative (t, seq) order of everything else.
  ++stats_.forwarded;
  (void)front_.send(now_, p.wire_bytes());
}

void Replica::on_ingress(const RPacket& p) {
  const int self = cfg_.switch_cfg.id;
  if (p.location >= 0 && p.location != self) {
    route_out(p);
    return;
  }
  if (now_ < p.due) {
    if (cfg_.sched.mode == sched::DelayMode::BaselineRecirculation) {
      recirculate(p);
      return;
    }
    if (delay_open_) {
      recirculate(p);
    } else {
      ++stats_.delayed_enqueues;
      delay_queue_.push_back(p);
    }
    return;
  }
  ++stats_.executed;
  if (p.due > p.created) ++stats_.delay_samples;
  execute(p);
}

void Replica::execute(const RPacket& p) {
  const auto id = static_cast<std::size_t>(p.event_id);
  if (p.event_id < 0 || id >= has_handler_by_id_.size() ||
      has_handler_by_id_[id] == 0) {
    return;
  }
  ++total_executions_;
  ++exec_count_by_id_[id];

  PacketIn in;
  in.event_id = p.event_id;
  in.nargs = p.nargs;
  in.now_ns = now_;
  in.self_id = cfg_.switch_cfg.id;
  for (std::int32_t i = 0; i < p.nargs; ++i) in.args[i] = p.args[i];

  const std::int32_t n =
      prog_->module().run_one(array_ptrs_.data(), in, gen_buf_.data());
  for (std::int32_t g = 0; g < n; ++g) {
    dispatch_gen(gen_buf_[static_cast<std::size_t>(g)]);
  }
}

void Replica::dispatch_gen(const GenOut& g) {
  if (g.event_id >= 0 &&
      static_cast<std::size_t>(g.event_id) < gen_count_by_id_.size()) {
    ++gen_count_by_id_[static_cast<std::size_t>(g.event_id)];
  }
  RPacket p;
  p.event_id = g.event_id;
  p.nargs = g.nargs;
  for (std::int32_t i = 0; i < g.nargs; ++i) p.args[i] = g.args[i];
  p.size_bytes = std::max<int>(64, 34 + 4 * g.nargs);
  p.created = now_;
  p.due = now_ + g.delay_ns;

  const int self = cfg_.switch_cfg.id;
  const ir::ProgramIR& ir = prog_->ir();
  const std::vector<std::int64_t>* members =
      g.multicast != 0 && g.group >= 0
          ? &ir.groups[static_cast<std::size_t>(g.group)].members
          : nullptr;
  if (members != nullptr && !members->empty()) {
    // Multicast engine: one unicast clone per member, in member order.
    for (const std::int64_t member : *members) {
      RPacket clone = p;
      clone.location = member;
      if (member == self) {
        recirculate(clone);
      } else {
        route_out(clone);
      }
    }
    return;
  }
  if (g.location >= 0 && g.location != self) {
    p.location = g.location;
    route_out(p);
    return;
  }
  p.location = -1;
  recirculate(p);
}

void Replica::run_until(sim::Time t) {
  // Two-way merge by (t, seq): the sorted pending-injection vector against
  // the in-flight heap. Seq numbers were allocated in registration/fire
  // order on both sides, so the merged order is exactly the order one big
  // heap would produce — but the heap stays a handful of entries deep.
  for (;;) {
    const bool have_pending = pending_head_ < pending_.size();
    const bool have_heap = !heap_.empty();
    if (!have_pending && !have_heap) break;
    bool take_pending = have_pending;
    if (have_pending && have_heap) {
      const PendingInject& p = pending_[pending_head_];
      const Entry& h = heap_.top();
      take_pending = p.t < h.t || (p.t == h.t && p.seq < h.seq);
    }
    if (take_pending) {
      const PendingInject& p = pending_[pending_head_];
      if (p.t > t) break;
      ++pending_head_;
      now_ = p.t;
      // deliver_to_ingress: one pipeline pass of latency, then dispatch.
      push(now_ + cfg_.switch_cfg.pipeline_latency_ns, Kind::FinishPass,
           p.pkt);
      continue;
    }
    const Entry e = heap_.top();
    if (e.t > t) break;
    heap_.pop();
    now_ = e.t;
    switch (e.kind) {
      case Kind::Inject:
      case Kind::RecircDeliver:
        // deliver_to_ingress: one pipeline pass of latency, then dispatch.
        // The packet slot is reused verbatim by the FinishPass entry.
        push_idx(now_ + cfg_.switch_cfg.pipeline_latency_ns, Kind::FinishPass,
                 e.pkt);
        break;
      case Kind::FinishPass: {
        // Copy out before dispatching: on_ingress can allocate pool slots,
        // which may reallocate the slab under a held reference.
        const RPacket pkt = pool_[static_cast<std::size_t>(e.pkt)];
        release_slot(e.pkt);
        on_ingress(pkt);
        break;
      }
      case Kind::PfcOpen:
        delay_open_ = true;
        // Drain FIFO through the recirculation port (set_delay_queue_open).
        while (delay_head_ < delay_queue_.size()) {
          recirculate(delay_queue_[delay_head_++]);
        }
        delay_queue_.clear();
        delay_head_ = 0;
        break;
      case Kind::PfcClose:
        delay_open_ = false;
        break;
      case Kind::PfcPauseSend: {
        RPacket frame;
        push(recirc_.send(now_, frame.wire_bytes()), Kind::PfcClose);
        break;
      }
      case Kind::PfcTick:
        pfc_tick();
        break;
    }
  }
  now_ = std::max(now_, t);
  // Batch-boundary metrics publish: the event loop above runs branch-free
  // with respect to observability; executions accumulate in plain counters
  // and the delta lands in the process-wide registry once per run_until.
  static obs::Counter& executed = obs::Registry::global().counter(
      "lucid_native_replica_executions_total",
      "Handler executions across native replica runs");
  executed.add(total_executions_ - published_executions_);
  published_executions_ = total_executions_;
}

const RunStats& Replica::run_stats() const {
  build_run_stats(prog_->ir(), exec_count_by_id_, gen_count_by_id_,
                  total_executions_, &run_stats_);
  return run_stats_;
}

}  // namespace lucid::native
