// Differential harness: runs the same randomized event schedule through the
// reference engine (interp::Runtime on a single-node Testbed) and the native
// engine (native::Replica), then compares final register state byte for byte
// plus every counter both sides expose. Shared by tests/test_native.cpp (the
// correctness gate) and bench/bench_native.cpp (the speedup gate), so the
// number the bench reports is measured under exactly the contract the tests
// pin.
//
// Schedule construction is deterministic (splitmix64 from a caller seed) and
// engine-agnostic: both engines replay the identical injection list in the
// identical registration order, which is what makes the simulator's
// (time, seq) tie-breaking reproducible in the replica (see
// native/engine.hpp).
//
// Events are auto-classified:
//   - *timer* events — the handler generates with a nonzero or variable
//     delay (the self-perpetuating scan/rotate loops every paper app uses
//     for maintenance) — are injected once each: one seed event spawns the
//     whole periodic cascade, and injecting thousands would only multiply
//     delay-queue load without touching new state.
//   - everything else is *traffic*: injected round-robin with randomized
//     arguments and ~1 us spacing, like workload packets arriving at a
//     front-panel port.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "interp/testbed.hpp"
#include "native/engine.hpp"

namespace lucid::native::diff {

struct Injection {
  sim::Time t = 0;
  std::string event;
  std::vector<std::int64_t> args;
};

struct Schedule {
  std::vector<Injection> entries;  // strictly increasing t
  sim::Time horizon = 0;           // run_until target (includes settle)
};

inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// True when the event's handler reaches a generate with a nonzero (or
/// runtime-computed) delay — the timer/maintenance pattern.
inline bool is_timer_event(const ir::ProgramIR& ir, int event_id) {
  for (const auto& hg : ir.handlers) {
    if (hg.event_id != event_id) continue;
    for (const auto& t : hg.tables) {
      if (t.kind != ir::TableKind::Generate) continue;
      if (t.gen.delay.is_var()) return true;
      if (t.gen.delay.is_const() && t.gen.delay.value > 0) return true;
    }
  }
  return false;
}

inline Schedule make_schedule(const ir::ProgramIR& ir, std::uint64_t seed,
                              int traffic_events) {
  Schedule s;
  std::uint64_t rng = seed * 0x9E3779B97f4A7C15ull + 1;
  std::vector<const ir::EventInfo*> timers;
  std::vector<const ir::EventInfo*> traffic;
  for (const auto& ev : ir.events) {
    if (!ev.has_handler) continue;
    (is_timer_event(ir, ev.event_id) ? timers : traffic).push_back(&ev);
  }
  auto args_for = [&](const ir::EventInfo& ev) {
    std::vector<std::int64_t> args;
    args.reserve(ev.params.size());
    for (std::size_t i = 0; i < ev.params.size(); ++i) {
      args.push_back(static_cast<std::int64_t>(splitmix64(rng) % 4096));
    }
    return args;
  };
  sim::Time t = 997;
  for (const auto* ev : timers) {
    s.entries.push_back(Injection{t, ev->name, args_for(*ev)});
    t += 1000;
  }
  t = std::max<sim::Time>(t, 5000);
  if (!traffic.empty()) {
    for (int i = 0; i < traffic_events; ++i) {
      const auto* ev = traffic[static_cast<std::size_t>(i) % traffic.size()];
      s.entries.push_back(Injection{t, ev->name, args_for(*ev)});
      t += 700 + static_cast<sim::Time>(splitmix64(rng) % 600);
    }
  }
  s.horizon = t + 300 * sim::kUs;  // let timer cascades and drains settle
  return s;
}

/// Burst variant of make_schedule: traffic arrives in same-timestamp bursts
/// of `burst_size` packets (distinct registration seqs, one arrival time),
/// bursts spaced `gap_ns` apart. With the gap wider than the pipeline
/// latency, every burst's pipeline passes finish together and the replica's
/// batched event loop drains whole bursts into single run_batch calls —
/// make_schedule's strictly increasing timestamps would cap every drain at
/// one packet. Timers still seed once each, like make_schedule.
inline Schedule make_burst_schedule(const ir::ProgramIR& ir,
                                    std::uint64_t seed, int bursts,
                                    int burst_size, sim::Time gap_ns = 2000) {
  Schedule s;
  std::uint64_t rng = seed * 0x9E3779B97f4A7C15ull + 1;
  std::vector<const ir::EventInfo*> timers;
  std::vector<const ir::EventInfo*> traffic;
  for (const auto& ev : ir.events) {
    if (!ev.has_handler) continue;
    (is_timer_event(ir, ev.event_id) ? timers : traffic).push_back(&ev);
  }
  auto args_for = [&](const ir::EventInfo& ev) {
    std::vector<std::int64_t> args;
    args.reserve(ev.params.size());
    for (std::size_t i = 0; i < ev.params.size(); ++i) {
      args.push_back(static_cast<std::int64_t>(splitmix64(rng) % 4096));
    }
    return args;
  };
  sim::Time t = 997;
  for (const auto* ev : timers) {
    s.entries.push_back(Injection{t, ev->name, args_for(*ev)});
    t += 1000;
  }
  t = std::max<sim::Time>(t, 5000);
  if (!traffic.empty()) {
    int k = 0;
    for (int b = 0; b < bursts; ++b) {
      for (int i = 0; i < burst_size; ++i, ++k) {
        const auto* ev =
            traffic[static_cast<std::size_t>(k) % traffic.size()];
        s.entries.push_back(Injection{t, ev->name, args_for(*ev)});
      }
      t += gap_ns;
    }
  }
  s.horizon = t + 300 * sim::kUs;
  return s;
}

/// One engine's observable outcome: wall time of the run (excluding compile
/// and setup), the full register state in IR declaration order, and every
/// counter the engines share.
struct EngineResult {
  bool ok = false;
  std::string error;
  double wall_s = 0.0;
  std::vector<std::vector<std::int64_t>> arrays;
  RunStats stats;  // interp::RunStats and native::RunStats are same-shape
  std::uint64_t executed = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t delayed_enqueues = 0;
  std::uint64_t recirculations = 0;
};

inline EngineResult run_interp(const std::string& source,
                               const std::string& name, const Schedule& s,
                               const interp::TestbedConfig& base = {}) {
  EngineResult r;
  interp::TestbedConfig cfg = base;
  cfg.program_name = name;
  cfg.switch_ids = {1};
  interp::Testbed tb(source, cfg);
  if (!tb.ok()) {
    r.error = "compile failed: " + tb.diagnostics();
    return r;
  }
  interp::Runtime& rt = tb.node(1);
  for (const auto& e : s.entries) {
    tb.sim().after(e.t, [&rt, &e] {
      rt.inject(e.event, e.args);
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  tb.sim().run_until(s.horizon);
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();

  for (const auto& arr : tb.compilation().ir().arrays) {
    const pisa::RegisterArray* a = rt.array(arr.name);
    r.arrays.emplace_back(a->data(), a->data() + a->size());
  }
  const interp::RunStats& st = rt.stats();
  r.stats.executions = st.executions;
  r.stats.generated = st.generated;
  r.stats.total_executions = st.total_executions;
  const auto& sched_stats = tb.sched_at(1).stats();
  r.executed = sched_stats.executed;
  r.forwarded = sched_stats.forwarded;
  r.delayed_enqueues = sched_stats.delayed_enqueues;
  r.recirculations = tb.switch_at(1).recirculations();
  r.ok = true;
  return r;
}

inline EngineResult run_native(const std::shared_ptr<const Program>& prog,
                               const Schedule& s, ReplicaConfig cfg = {}) {
  EngineResult r;
  cfg.switch_cfg.id = 1;  // mirror run_interp's single node
  Replica rep(prog, cfg);
  for (const auto& e : s.entries) {
    if (!rep.schedule_inject(e.t, e.event, e.args)) {
      r.error = "schedule_inject rejected event " + e.event;
      return r;
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  rep.run_until(s.horizon);
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();

  for (std::size_t i = 0; i < rep.array_count(); ++i) {
    r.arrays.push_back(rep.array_cells(i));
  }
  r.stats = rep.run_stats();
  r.executed = rep.stats().executed;
  r.forwarded = rep.stats().forwarded;
  r.delayed_enqueues = rep.stats().delayed_enqueues;
  r.recirculations = rep.stats().recirculations;
  r.ok = true;
  return r;
}

/// Empty string when the two runs are indistinguishable; otherwise the
/// first difference, spelled out.
inline std::string compare(const ir::ProgramIR& ir, const EngineResult& a,
                           const EngineResult& b) {
  if (!a.ok) return "reference run failed: " + a.error;
  if (!b.ok) return "native run failed: " + b.error;
  if (a.arrays.size() != b.arrays.size()) return "array count differs";
  for (std::size_t i = 0; i < a.arrays.size(); ++i) {
    if (a.arrays[i].size() != b.arrays[i].size()) {
      return "array " + ir.arrays[i].name + " size differs";
    }
    for (std::size_t j = 0; j < a.arrays[i].size(); ++j) {
      if (a.arrays[i][j] != b.arrays[i][j]) {
        return "array " + ir.arrays[i].name + "[" + std::to_string(j) +
               "]: interp=" + std::to_string(a.arrays[i][j]) +
               " native=" + std::to_string(b.arrays[i][j]);
      }
    }
  }
  if (a.stats.total_executions != b.stats.total_executions) {
    return "total_executions: interp=" +
           std::to_string(a.stats.total_executions) +
           " native=" + std::to_string(b.stats.total_executions);
  }
  if (a.stats.executions != b.stats.executions) {
    return "per-event execution counts differ";
  }
  if (a.stats.generated != b.stats.generated) {
    return "per-event generate counts differ";
  }
  if (a.executed != b.executed) {
    return "scheduler executed: interp=" + std::to_string(a.executed) +
           " native=" + std::to_string(b.executed);
  }
  if (a.forwarded != b.forwarded) return "forwarded counts differ";
  if (a.delayed_enqueues != b.delayed_enqueues) {
    return "delayed_enqueues differ";
  }
  if (a.recirculations != b.recirculations) {
    return "recirculation counts differ";
  }
  return {};
}

/// The whole pipeline for one program: compile once, run both engines on
/// the same schedule, diff. `detail` is empty on success.
struct DiffOutcome {
  bool ok = false;
  std::string detail;
  EngineResult interp;
  EngineResult native_;
};

inline DiffOutcome run_differential(const std::string& source,
                                    const std::string& name,
                                    std::uint64_t seed, int traffic_events) {
  DiffOutcome out;
  // Compile once (outside both timed regions) to build the schedule and the
  // native program; run_interp recompiles internally, which is fine — the
  // staged driver is deterministic, so both compilations agree on the IR.
  interp::TestbedConfig probe_cfg;
  probe_cfg.program_name = name;
  interp::Testbed probe(source, probe_cfg);
  if (!probe.ok()) {
    out.detail = "compile failed: " + probe.diagnostics();
    return out;
  }
  const Schedule sched =
      make_schedule(probe.compilation().ir(), seed, traffic_events);

  std::string err;
  const auto prog = Program::build(probe.compilation_ptr(), &err);
  if (prog == nullptr) {
    out.detail = "native build failed: " + err;
    return out;
  }

  out.interp = run_interp(source, name, sched);
  out.native_ = run_native(prog, sched);
  out.detail = compare(prog->ir(), out.interp, out.native_);
  out.ok = out.detail.empty();
  return out;
}

}  // namespace lucid::native::diff
