#include "native/backend.hpp"

#include <memory>

#include "native/abi.hpp"
#include "native/emit.hpp"
#include "native/jit.hpp"

namespace lucid::native {

namespace {

class NativeBackend final : public Backend {
 public:
  [[nodiscard]] std::string name() const override { return "native"; }
  [[nodiscard]] std::string description() const override {
    return "JIT-compiled native execution engine (interp semantics, "
           "compiled to straight-line C++)";
  }
  [[nodiscard]] Stage required_stage() const override { return Stage::Layout; }

  [[nodiscard]] BackendArtifact emit(Compilation& comp) override {
    BackendArtifact artifact;
    artifact.backend = name();
    if (!comp.pipeline().feasible) {
      comp.diags().error({}, "native-layout-infeasible",
                         "cannot emit native module: pipeline layout is "
                         "infeasible");
      return artifact;
    }
    for (const auto& ev : comp.ir().events) {
      if (ev.params.size() > static_cast<std::size_t>(kMaxArgs)) {
        comp.diags().error({}, "native-too-many-params",
                           "event " + ev.name + " has " +
                               std::to_string(ev.params.size()) +
                               " params; the native ABI caps at " +
                               std::to_string(kMaxArgs));
        return artifact;
      }
    }

    const EmittedModule m = emit_source(comp, comp.options().program_name);
    artifact.text = m.text;
    artifact.metrics["loc"] = m.loc;
    artifact.metrics["stages"] = m.stages;
    artifact.metrics["gen_sites"] = m.gen_sites;

    // Compile-and-load as a smoke test: a module the system compiler
    // rejects is an emitter bug worth a diagnostic, not a silent artifact.
    std::string err;
    const auto module = Module::load(m.text, &err);
    if (module == nullptr) {
      comp.diags().error({}, "native-jit-failed", err);
      return artifact;
    }
    artifact.metrics["compile_ms"] =
        static_cast<std::int64_t>(module->compile_ms());
    artifact.metrics["max_gens"] = module->max_gens();
    artifact.ok = true;
    return artifact;
  }
};

}  // namespace

bool register_backend(BackendRegistry& registry) {
  return registry.add(std::make_unique<NativeBackend>());
}

}  // namespace lucid::native
