// The binary interface between the host process and a JIT-compiled native
// pipeline module (src/native/jit.cpp loads one per program).
//
// A module is self-contained generated C++ (src/native/emit.cpp) compiled to
// a shared object and dlopen'd into the process. It exports four C symbols:
//
//   lucid_native_abi_version()  -> kAbiVersion (checked at load)
//   lucid_native_max_gens()     -> max generate records one packet can emit
//   lucid_native_run_one(arrays, in, out)            -> gen count
//   lucid_native_run_batch(arrays, in, n, out, cnts) -> per-packet gen counts
//
// `arrays` is one raw cell pointer per register array, in IR declaration
// order (ir::ProgramIR::arrays). The module owns all semantics — width
// masking, index clamping, memop evaluation — so the host just hands over
// storage. The struct definitions below are mirrored *textually* into every
// generated module; bump kAbiVersion whenever their layout changes.
#pragma once

#include <cstdint>

namespace lucid::native {

inline constexpr std::uint32_t kAbiVersion = 1;

/// Fixed argument capacity: the backend refuses programs whose events carry
/// more parameters (the paper apps top out at 5).
inline constexpr int kMaxArgs = 8;

/// One event packet entering the pipeline.
struct PacketIn {
  std::int32_t event_id = -1;
  std::int32_t nargs = 0;
  std::int64_t now_ns = 0;   // Sys.time() source; module masks to 32 bits
  std::int64_t self_id = 0;  // SELF
  std::int64_t args[kMaxArgs] = {};
};

/// One generated event leaving the pipeline. The module resolves no group
/// membership — it reports the group's index into ir::ProgramIR::groups and
/// the host expands members (mirroring how the interpreter's scheduler
/// expands multicast clones).
struct GenOut {
  std::int32_t event_id = -1;
  std::int32_t multicast = 0;
  std::int32_t group = -1;  // index into ProgramIR::groups; -1 = none
  std::int32_t nargs = 0;
  std::int64_t delay_ns = 0;
  std::int64_t location = -1;  // destination switch id; -1 = local/unlocated
  std::int64_t args[kMaxArgs] = {};
};

using AbiVersionFn = std::uint32_t (*)();
using MaxGensFn = std::int32_t (*)();
using RunOneFn = std::int32_t (*)(std::int64_t* const* arrays,
                                  const PacketIn* in, GenOut* out);
using RunBatchFn = void (*)(std::int64_t* const* arrays, const PacketIn* in,
                            std::int32_t n, GenOut* out,
                            std::int32_t* gen_counts);

inline constexpr const char* kSymAbiVersion = "lucid_native_abi_version";
inline constexpr const char* kSymMaxGens = "lucid_native_max_gens";
inline constexpr const char* kSymRunOne = "lucid_native_run_one";
inline constexpr const char* kSymRunBatch = "lucid_native_run_batch";

}  // namespace lucid::native
