// The native execution engine: runs a compiled-to-C++ pipeline module
// (src/native/emit.cpp + src/native/jit.cpp) instead of walking the AST.
//
// Two hosts share one loaded Program:
//
//   - native::Runtime couples the module to a sched::EventScheduler exactly
//     like interp::Runtime does — register arrays live in the switch, events
//     flow through the full simulator, control-plane apply points fire at
//     the same boundaries. A drop-in engine swap for Testbed-style setups
//     (src/ctrl/native_bridge.hpp builds the control-plane surface on it).
//
//   - native::Replica is the decoupled fast path: a single-node mirror of
//     the switch + scheduler + PFC timing model with POD packets on one
//     (time, seq) heap and no std::function in the hot loop. It reproduces
//     the simulator's event interleaving exactly (see the seq-order notes in
//     replica_* below), so after a run its register state is byte-identical
//     to an interp::Runtime run of the same schedule — the differential
//     suite (tests/test_native.cpp) and bench_native both pin this.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "native/abi.hpp"
#include "native/emit.hpp"
#include "native/jit.hpp"
#include "sched/scheduler.hpp"

namespace lucid::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace lucid::obs

namespace lucid::native {

/// Name-keyed run statistics; same shape as interp::RunStats so differential
/// tests can compare them directly.
struct RunStats {
  std::map<std::string, std::uint64_t> executions;
  std::map<std::string, std::uint64_t> generated;
  std::uint64_t total_executions = 0;
};

/// Build-time knobs for a native program.
struct ProgramOptions {
  /// Event dispatch flavour for the generated module (emit.hpp). The
  /// portable switch is the default and the fallback.
  Dispatch dispatch = Dispatch::kSwitch;
  /// Build both dispatch variants, micro-measure each module's raw batch
  /// throughput on a synthetic schedule, and keep the winner ("auto").
  /// Costs one extra JIT compile; `dispatch` above is ignored.
  bool measure_dispatch = false;
};

/// A program compiled for native execution: the emitted module source plus
/// the loaded shared object. Immutable after build; share it across every
/// Runtime/Replica of the same program (the JIT caches by source anyway).
class Program {
 public:
  /// Compiles `comp` (Layout stage must have succeeded) to native code.
  /// Returns nullptr and fills `error` when the program is outside the
  /// engine's envelope (infeasible layout, >kMaxArgs event params) or the
  /// module fails to compile/load.
  static std::shared_ptr<const Program> build(ConstCompilationPtr comp,
                                              std::string* error,
                                              ProgramOptions opts = {});

  [[nodiscard]] const Compilation& compilation() const { return *comp_; }
  [[nodiscard]] const ir::ProgramIR& ir() const { return comp_->ir(); }
  [[nodiscard]] const Module& module() const { return *module_; }
  [[nodiscard]] const EmittedModule& emitted() const { return emitted_; }
  /// The dispatch flavour actually running (after measurement, if any).
  [[nodiscard]] Dispatch dispatch() const { return emitted_.dispatch; }

  [[nodiscard]] const ir::EventInfo* find_event(const std::string& name) const;

 private:
  ConstCompilationPtr comp_;
  std::shared_ptr<Module> module_;
  EmittedModule emitted_;
};

/// Micro-measures a loaded module's raw run_batch throughput (packets/sec)
/// on a synthetic round-robin schedule over the program's handler events.
/// Used by the measured dispatch pick and by bench_native_mt.
[[nodiscard]] double measure_raw_batch_pps(const ir::ProgramIR& ir,
                                           const Module& mod,
                                           double budget_s = 0.005);

// ---------------------------------------------------------------------------
// Coupled engine: the interp::Runtime drop-in
// ---------------------------------------------------------------------------

class Runtime {
 public:
  /// Creates the program's register arrays in the scheduler's switch and
  /// installs the module as the handler executor.
  Runtime(std::shared_ptr<const Program> prog, sched::EventScheduler& node);

  [[nodiscard]] const Program& program() const { return *prog_; }

  /// Same contract as interp::Runtime::inject / inject_control: false (and
  /// nothing injected) on unknown event or arity mismatch; args masked to
  /// their declared widths.
  bool inject(const std::string& event, std::vector<std::int64_t> args,
              sim::Time delay_ns = 0, std::int64_t location = -1);
  bool inject_control(const std::string& event,
                      std::vector<std::int64_t> args, sim::Time delay_ns = 0);

  [[nodiscard]] const ir::EventInfo* find_event(
      const std::string& name) const {
    return prog_->find_event(name);
  }
  [[nodiscard]] pisa::RegisterArray* array(const std::string& name) {
    return node_.node().find_array(name);
  }

  [[nodiscard]] const RunStats& stats() const;
  [[nodiscard]] sched::EventScheduler& node() { return node_; }

 private:
  void execute(const pisa::Packet& p);
  bool make_event(const std::string& event, std::vector<std::int64_t>& args,
                  sched::GenEvent* out) const;

  std::shared_ptr<const Program> prog_;
  sched::EventScheduler& node_;
  std::vector<std::int64_t*> array_ptrs_;  // IR declaration order
  std::vector<GenOut> gen_buf_;
  std::vector<char> has_handler_by_id_;
  std::vector<std::uint64_t> exec_count_by_id_;
  std::vector<std::uint64_t> gen_count_by_id_;
  std::uint64_t total_executions_ = 0;
  mutable RunStats stats_;
};

// ---------------------------------------------------------------------------
// Decoupled engine: the single-node replica
// ---------------------------------------------------------------------------

struct ReplicaConfig {
  pisa::SwitchConfig switch_cfg;   // id defaults to 0; set to the node id
  sched::SchedulerConfig sched;
  /// Multi-packet batching inside run_until: drain every runnable
  /// same-timestamp pipeline-pass entry into one run_batch call instead of
  /// dispatching per entry. State-identical to the per-entry loop (see the
  /// drain rules at Replica::run_until); off reproduces the PR 7 loop, which
  /// bench_native_mt uses as the batching baseline.
  bool batch_loop = true;
  /// When >= 0, the replica registers per-shard labeled obs instruments
  /// (shard="<id>" on packets/batch-size/queue-depth) — set by ReplicaFleet.
  int shard_id = -1;
};

/// Single-node mirror of {Switch, EventScheduler, PFC stream} timing with
/// the native module as executor. Injections must be scheduled up front (in
/// the same order the reference run registers them), then run_until drives
/// the event loop.
///
/// Seq-order contract (why state matches the real simulator byte-for-byte):
/// the simulator breaks timestamp ties by insertion order. The replica
/// pushes one heap entry per sim_.at/after call the real stack would make,
/// in the same order — including the two-hop recirculation path (port
/// delivery, then pipeline pass) and the PFC frame closures. The only
/// entries it skips are front-port deliveries, which in a single-node
/// topology are dropped by the network and have no side effects; removing
/// elements from the allocation sequence preserves the relative order of
/// the rest.
class Replica {
 public:
  struct Stats {
    std::uint64_t executed = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t delayed_enqueues = 0;
    std::uint64_t recirculations = 0;
    std::uint64_t delay_samples = 0;
  };

  explicit Replica(std::shared_ptr<const Program> prog,
                   ReplicaConfig cfg = {});

  /// Registers an external arrival at absolute time `t`. Validates and
  /// width-masks like Runtime::inject; false on unknown event / bad arity.
  bool schedule_inject(sim::Time t, const std::string& event,
                       std::vector<std::int64_t> args, sim::Time delay_ns = 0,
                       std::int64_t location = -1);

  /// Runs every entry due at or before `t`.
  void run_until(sim::Time t);

  [[nodiscard]] sim::Time now() const { return now_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const RunStats& run_stats() const;

  /// Post-run register state, IR declaration order (for byte comparison
  /// against the reference engine's pisa::RegisterArray cells).
  [[nodiscard]] const std::vector<std::int64_t>& array_cells(
      std::size_t decl_index) const {
    return cells_[decl_index];
  }
  [[nodiscard]] std::size_t array_count() const { return cells_.size(); }

  /// Control-plane cell access (FleetDataPlane): width-masked writes and
  /// wrapped indexes, exactly like pisa::RegisterArray::set/get. Only legal
  /// while the replica is quiescent (no run_until in flight on it).
  bool control_write(std::size_t decl_index, std::int64_t index,
                     std::int64_t value);
  [[nodiscard]] std::int64_t control_read(std::size_t decl_index,
                                          std::int64_t index) const;

  /// Consumed-prefix compaction threshold for the pending-injection vector
  /// (run_until erases the drained prefix once pending_head_ passes it, so
  /// soak runs that keep scheduling don't grow memory without bound).
  static constexpr std::size_t kPendingCompactThreshold = 4096;
  /// Capacity of the pending-injection vector plus the pipeline-pass FIFO
  /// (regression surface for the compaction: bounded across schedule/drain
  /// cycles, tracking the live backlog rather than total injections).
  [[nodiscard]] std::size_t pending_footprint() const {
    return pending_.capacity() + pass_q_.capacity();
  }

 private:
  struct RPacket {
    std::int32_t event_id = -1;
    std::int32_t nargs = 0;
    std::int64_t args[kMaxArgs] = {};
    std::int64_t location = -1;
    sim::Time created = 0;
    sim::Time due = 0;
    int size_bytes = 64;
    [[nodiscard]] int wire_bytes() const { return size_bytes + 20; }
  };

  enum class Kind : std::uint8_t {
    Inject,         // front-panel arrival -> pipeline pass
    FinishPass,     // pipeline pass completes -> dispatch
    RecircDeliver,  // recirc port delivery -> pipeline pass
    PfcOpen,        // unpause frame delivered -> open + drain
    PfcClose,       // pause frame delivered -> close
    PfcPauseSend,   // end of release window -> send the pause frame
    PfcTick,        // next PFC pair
  };

  /// Heap entries are kept small (24 bytes): packets live in a pooled slab
  /// (`pool_` + free list) and entries carry an index, so the sift moves in
  /// the hot loop shuffle pointers-worth of data instead of whole packets.
  struct Entry {
    sim::Time t = 0;
    std::uint64_t seq = 0;
    Kind kind = Kind::Inject;
    std::int32_t pkt = -1;  // pool_ index; -1 for packet-less entries
  };

  /// A pre-registered injection: (t, seq) assigned at schedule_inject time —
  /// exactly when the reference run registers its closure — but held in a
  /// sorted vector and merged into the event flow lazily, so the heap only
  /// ever holds the handful of in-flight entries.
  struct PendingInject {
    sim::Time t = 0;
    std::uint64_t seq = 0;
    RPacket pkt;
  };
  /// A completed-pipeline-pass record (batch_loop mode). Every FinishPass is
  /// created at now_ + pipeline_latency with now_ nondecreasing and seq
  /// allocated in creation order, so the records are (t, seq)-sorted by
  /// construction — a FIFO with O(1) pops replaces two heap sifts per
  /// packet, which is what makes the batched drain cheaper than the
  /// per-entry loop rather than just equal to it. The record holds an
  /// *index* into the packet's existing storage (the consumed pending_
  /// prefix, or a pool_ slot kept allocated until the drain) rather than a
  /// copy: both stay put for the entry's whole lifetime — pending_ is only
  /// compacted when no live pass references it, and pool_ slots are
  /// addressed by index so slab growth can't dangle them.
  struct PassEntry {
    sim::Time t = 0;
    std::uint64_t seq = 0;
    std::int32_t idx = -1;   // pool_ slot or pending_ index
    bool from_pool = false;  // false: pending_[idx].pkt
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  /// Mirror of pisa::Port::send: FIFO serialization + fixed latency.
  struct RPort {
    double bits_per_ns = 100.0;
    sim::Time latency = 0;
    sim::Time next_free = 0;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    sim::Time send(sim::Time now, int wire_bytes) {
      const sim::Time start = std::max(now, next_free);
      const auto bits = static_cast<double>(wire_bytes) * 8.0;
      const auto ser = static_cast<sim::Time>(bits / bits_per_ns);
      next_free = start + std::max<sim::Time>(ser, 1);
      packets += 1;
      bytes += static_cast<std::uint64_t>(wire_bytes);
      return next_free + latency;
    }
  };

  std::int32_t alloc_slot();
  void release_slot(std::int32_t idx);
  void push_idx(sim::Time t, Kind kind, std::int32_t idx);
  void push(sim::Time t, Kind kind);  // packet-less entry
  void push(sim::Time t, Kind kind, const RPacket& pkt);
  void pfc_tick();
  /// Batch mode: record a completed pipeline pass (FIFO, not heap) by
  /// reference to its storage — a pending_ index or a pool_ slot.
  void pass_push(sim::Time t, std::int32_t idx, bool from_pool);
  void drain_passes();       // fused drain + classify; see run_until
  void flush_exec_batch();   // run batch_in_ through run_batch + dispatch
  void compact_pending();
  // NOTE: `p` must not alias a pool_ slot — alloc_slot may grow the slab.
  void recirculate(const RPacket& p);
  void route_out(const RPacket& p);
  void on_ingress(const RPacket& p);
  void execute(const RPacket& p);
  void dispatch_gen(const GenOut& g);
  bool make_packet(const std::string& event, std::vector<std::int64_t>& args,
                   RPacket* out) const;

  std::shared_ptr<const Program> prog_;
  ReplicaConfig cfg_;
  sim::Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<RPacket> pool_;         // slab backing Entry::pkt
  std::vector<std::int32_t> free_;    // recycled pool_ slots
  std::vector<PendingInject> pending_;  // sorted by (t, seq)
  std::size_t pending_head_ = 0;
  std::vector<PassEntry> pass_q_;  // batch mode: sorted by construction
  std::size_t pass_head_ = 0;

  std::vector<std::vector<std::int64_t>> cells_;  // IR declaration order
  std::vector<std::int64_t*> array_ptrs_;
  std::vector<GenOut> gen_buf_;
  std::vector<char> has_handler_by_id_;

  // Batch-loop scratch (batch_loop == true): the executing subset of a
  // drain as ABI PacketIn records, and the module's per-packet outputs.
  // Reused across drains; no per-drain allocation once warm. run_batch_fn_
  // is the module's raw entry point, resolved once.
  std::vector<PacketIn> batch_in_;
  std::vector<GenOut> batch_out_;
  std::vector<std::int32_t> batch_counts_;
  RunBatchFn run_batch_fn_ = nullptr;
  std::int32_t gen_stride_ = 1;  // GenOut records per packet in batch_out_

  RPort recirc_;
  RPort front_;
  std::vector<RPacket> delay_queue_;  // FIFO (drained front to back)
  std::size_t delay_head_ = 0;
  bool delay_open_ = false;

  Stats stats_;
  std::vector<std::uint64_t> exec_count_by_id_;
  std::vector<std::uint64_t> gen_count_by_id_;
  std::uint64_t total_executions_ = 0;
  /// Executions already flushed to the obs registry (run_until publishes
  /// the delta once per call, keeping the event loop free of atomics).
  std::uint64_t published_executions_ = 0;
  mutable RunStats run_stats_;

  /// Per-shard labeled instruments (shard_id >= 0 only; null otherwise, so
  /// the single-replica hot path pays one predictable branch per drain).
  obs::Counter* shard_packets_ = nullptr;
  obs::Histogram* shard_batch_size_ = nullptr;
  obs::Gauge* shard_queue_depth_ = nullptr;
  std::uint64_t published_shard_executed_ = 0;
};

}  // namespace lucid::native
