// In-process JIT for native pipeline modules: writes the emitted C++ to a
// temp file, shells out to the system compiler, dlopens the result, and
// resolves the four ABI entry points (src/native/abi.hpp).
//
// Compiler resolution order: $LUCID_NATIVE_CXX, then the compiler that built
// this binary (LUCID_NATIVE_CXX_DEFAULT, baked in by CMake), then "c++".
// Modules are cached process-wide by source hash, so repeated builds of the
// same program (e.g. the differential suite running interp and native side
// by side per app) compile once.
#pragma once

#include <memory>
#include <string>

#include "native/abi.hpp"

namespace lucid::native {

/// A loaded module. Holds the dlopen handle open for the process lifetime
/// (handles are shared via the cache and never dlclosed — generated code may
/// be referenced by long-lived Runtime objects).
class Module {
 public:
  /// Compiles and loads `source`; returns nullptr and fills `error` on any
  /// failure (compiler missing, compile error, dlopen/dlsym failure, ABI
  /// version mismatch). Cache hit returns the previously loaded module.
  static std::shared_ptr<Module> load(const std::string& source,
                                      std::string* error);

  [[nodiscard]] std::int32_t max_gens() const { return max_gens_; }
  [[nodiscard]] std::int32_t run_one(std::int64_t* const* arrays,
                                     const PacketIn& in, GenOut* out) const {
    return run_one_(arrays, &in, out);
  }
  /// Runs a batch and publishes the obs batch metrics (one histogram
  /// observation + one counter add per *batch*, so the per-packet path
  /// inside the generated code stays untouched). Out-of-line in jit.cpp.
  void run_batch(std::int64_t* const* arrays, const PacketIn* in,
                 std::int32_t n, GenOut* out,
                 std::int32_t* gen_counts) const;

  /// The raw generated entry point, with no instrumentation at all —
  /// bench_obs measures its pps as the baseline for the overhead gate.
  [[nodiscard]] RunBatchFn raw_run_batch() const { return run_batch_; }

  /// Milliseconds spent in the external compiler (0 on cache hit).
  [[nodiscard]] double compile_ms() const { return compile_ms_; }

 private:
  Module() = default;

  void* handle_ = nullptr;
  RunOneFn run_one_ = nullptr;
  RunBatchFn run_batch_ = nullptr;
  std::int32_t max_gens_ = 0;
  double compile_ms_ = 0.0;
};

}  // namespace lucid::native
