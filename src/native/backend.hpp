// Backend adapter for the native execution engine: "native" in the backend
// registry. emit() renders the generated C++ module (the artifact text) and
// JIT-compiles it as a smoke test, reporting codegen and compile metrics —
// actually *running* the program goes through native::Runtime / Replica
// (src/native/engine.hpp).
#pragma once

#include "core/driver.hpp"

namespace lucid::native {

/// Registers the "native" backend; false on name collision.
bool register_backend(BackendRegistry& registry);

}  // namespace lucid::native
