// Native code generation: renders the laid-out pipeline as self-contained
// C++ that executes packets with the interpreter's exact semantics, but as
// straight-line code — per-stage loops over a batch of packets, switch
// dispatch per event, no AST walking. The JIT (src/native/jit.hpp) compiles
// the result into the process.
#pragma once

#include <string>
#include <string_view>

#include "core/driver.hpp"

namespace lucid::native {

/// How generated code dispatches on the event id.
enum class Dispatch {
  /// Portable: a switch in the param loader plus per-table `ev_id ==`
  /// checks inside per-stage functions (batch mode runs stage loops over
  /// the packet vector). The fallback everywhere.
  kSwitch,
  /// Computed-goto threaded dispatch (GNU labels-as-values, with a
  /// switch-to-label fallback for other compilers): one indirect jump per
  /// packet straight into that event's table block, tables laid out in
  /// stage order with the per-table event check stripped.
  kThreadedGoto,
};

[[nodiscard]] inline const char* dispatch_name(Dispatch d) {
  return d == Dispatch::kSwitch ? "switch" : "goto";
}

struct EmitOptions {
  Dispatch dispatch = Dispatch::kSwitch;
};

struct EmittedModule {
  std::string text;   // the generated translation unit
  int gen_sites = 0;  // generate tables == max GenOut records per packet
  int stages = 0;     // pipeline stages rendered
  int loc = 0;        // lines emitted
  Dispatch dispatch = Dispatch::kSwitch;
};

/// Emits the module source for a compilation whose Layout stage succeeded.
/// Pure rendering: feasibility/limit checks are the backend's job
/// (src/native/backend.cpp).
[[nodiscard]] EmittedModule emit_source(const Compilation& comp,
                                        std::string_view program_name,
                                        EmitOptions opts = {});

}  // namespace lucid::native
