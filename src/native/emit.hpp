// Native code generation: renders the laid-out pipeline as self-contained
// C++ that executes packets with the interpreter's exact semantics, but as
// straight-line code — per-stage loops over a batch of packets, switch
// dispatch per event, no AST walking. The JIT (src/native/jit.hpp) compiles
// the result into the process.
#pragma once

#include <string>
#include <string_view>

#include "core/driver.hpp"

namespace lucid::native {

struct EmittedModule {
  std::string text;   // the generated translation unit
  int gen_sites = 0;  // generate tables == max GenOut records per packet
  int stages = 0;     // pipeline stages rendered
  int loc = 0;        // lines emitted
};

/// Emits the module source for a compilation whose Layout stage succeeded.
/// Pure rendering: feasibility/limit checks are the backend's job
/// (src/native/backend.cpp).
[[nodiscard]] EmittedModule emit_source(const Compilation& comp,
                                        std::string_view program_name);

}  // namespace lucid::native
