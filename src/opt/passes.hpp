// The Lucid compiler's pipeline-layout optimizer (paper section 6.2).
//
// Three passes reduce the stage requirements of the atomic table graph:
//
//  1. *Branch inlining*: every non-branch table learns the path conditions
//     under which it executes, expressed as static match rules
//     (disjunctions of var==const / var!=const conjunctions); branch tables
//     are then deleted (Fig 6(2)).
//  2. *Rearranging tables*: tables are re-ordered by real data flow — RAW,
//     WAR, and WAW dependencies over locals (including guard reads), the
//     declaration-order chain between stateful tables, and generate-order —
//     so independent tables can share a stage (Fig 6(3)).
//  3. *Merging tables and actions*: a greedy walk in topological order packs
//     atomic tables into merged tables ("cross products", Fig 8) under an
//     explicit Tofino-like resource model, producing M stages with N merged
//     tables each.
//
// The merger is program-wide: handlers share one physical pipeline (the event
// dispatcher selects among them), tables of different handlers are disjoint
// by event id and can share stages, and each register array is pinned to a
// single stage consistent with every handler's access order — which the
// ordered type system has already guaranteed is possible.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/ir.hpp"
#include "support/diagnostics.hpp"

namespace lucid::opt {

// ---------------------------------------------------------------------------
// Resource model
// ---------------------------------------------------------------------------

/// A simple model of one PISA pipeline's per-stage resources, calibrated to
/// the Tofino 1 numbers the paper's evaluation uses.
struct ResourceModel {
  int max_stages = 12;        // MAU stages in one Tofino pipeline
  int tables_per_stage = 8;   // logical tables per stage
  int salus_per_stage = 4;    // stateful ALUs (register arrays) per stage
  int rules_per_table = 512;  // static entries after cross-producting
  int members_per_table = 12; // atomic tables merged into one logical table
  int alu_ops_per_stage = 14; // ALU instructions (PHV ops) per stage

  static ResourceModel tofino() { return ResourceModel{}; }
};

// ---------------------------------------------------------------------------
// Pass 1: branch inlining
// ---------------------------------------------------------------------------

/// A handler whose branch tables have been dissolved into per-table guards.
/// `tables` keeps the original topological order.
struct GuardedHandler {
  std::string handler;
  int event_id = -1;
  std::vector<ir::AtomicTable> tables;  // no Branch tables; guards filled
};

/// Computes path conditions and deletes branch tables. If a guard
/// disjunction exceeds `max_conjs` the handler is reported through `diags`
/// (code "opt-guard-blowup") and the offending table keeps an
/// over-approximate guard — the layout still works, but emission refuses.
[[nodiscard]] GuardedHandler inline_branches(const ir::HandlerGraph& g,
                                             DiagnosticEngine& diags,
                                             int max_conjs = 64);

/// True when `a && b` is unsatisfiable.
[[nodiscard]] bool conjs_contradict(const ir::Conj& a, const ir::Conj& b);

/// True when two guarded tables can never execute for the same packet:
/// different handlers (selected by event id) or pairwise-contradictory
/// guards.
[[nodiscard]] bool tables_disjoint(const ir::AtomicTable& a,
                                   const ir::AtomicTable& b);

// ---------------------------------------------------------------------------
// Pass 2: dependency analysis
// ---------------------------------------------------------------------------

/// Adjacency list: deps[j] holds the indices i (< j positions in
/// `h.tables`) that must be placed in a strictly earlier stage than j.
[[nodiscard]] std::vector<std::vector<int>> dependency_edges(
    const GuardedHandler& h, const ir::ProgramIR& ir);

/// Longest-path (ASAP) level of every table given `deps`.
[[nodiscard]] std::vector<int> asap_levels(
    const GuardedHandler& h, const std::vector<std::vector<int>>& deps);

// ---------------------------------------------------------------------------
// Pass 3: greedy merging / pipeline layout
// ---------------------------------------------------------------------------

struct MergedTable {
  std::vector<ir::AtomicTable> members;
  std::string array;  // the single register array bound to this table ("")
  /// Rule count after cross-producting, per owning handler (rules from
  /// different handlers are disjoint on the event id, so they add).
  std::map<std::string, long> rules_per_handler;
  [[nodiscard]] long total_rules() const;
};

struct StageLayout {
  std::vector<MergedTable> tables;
  [[nodiscard]] int atomic_ops() const;  // total member atomic tables
  [[nodiscard]] int salus() const;       // distinct arrays
};

struct Pipeline {
  std::vector<StageLayout> stages;
  std::map<std::string, int> array_stage;
  bool fits = true;       // stage count within the model
  bool feasible = true;   // layout algorithm completed
  [[nodiscard]] int stage_count() const {
    return static_cast<int>(stages.size());
  }
  [[nodiscard]] std::vector<int> ops_per_stage() const;
  [[nodiscard]] std::string str() const;
};

/// Lays out the whole program. `optimize == false` skips merging and
/// reordering entirely: every atomic table (branch tables included) gets its
/// own stage along the longest path — the paper's "unoptimized" baseline.
[[nodiscard]] Pipeline layout(const ir::ProgramIR& ir,
                              const ResourceModel& model,
                              DiagnosticEngine& diags);

/// Fig 12/13 data for one program.
struct LayoutStats {
  int unoptimized_stages = 0;  // atomic tables on the longest code path
  int optimized_stages = 0;    // merged pipeline depth
  std::vector<int> ops_per_stage;
  bool fits = false;
  [[nodiscard]] double stage_ratio() const {
    return optimized_stages == 0
               ? 0.0
               : static_cast<double>(unoptimized_stages) / optimized_stages;
  }
};
[[nodiscard]] LayoutStats layout_stats(const ir::ProgramIR& ir,
                                       const ResourceModel& model,
                                       DiagnosticEngine& diags);

}  // namespace lucid::opt
