// The Lucid compiler's pipeline-layout optimizer (paper section 6.2).
//
// ---------------------------------------------------------------------------
// Two-phase architecture
// ---------------------------------------------------------------------------
//
// Layout is split into two phases with a hard API boundary, so that resource-
// model sweeps (src/core/sweep.hpp) pay the model-independent work once per
// source instead of once per variant:
//
// *Phase A — `LayoutAnalysis` (analyze_layout)*: everything that is a pure
// function of the IR and does not depend on the `ResourceModel`:
//
//  1. *Branch inlining*: every non-branch table learns the path conditions
//     under which it executes, expressed as static match rules
//     (disjunctions of var==const / var!=const conjunctions); branch tables
//     are then deleted (Fig 6(2)).
//  2. *Rearranging tables*: tables are re-ordered by real data flow — RAW,
//     WAR, and WAW dependencies over locals (including guard reads), the
//     declaration-order chain between stateful tables, and generate-order —
//     so independent tables can share a stage (Fig 6(3)).
//
// plus the derived structures the greedy merger consults in its inner loops:
// an interned symbol table (handler/array names -> dense ids, so the merger
// never touches std::string keys or std::map lookups), the globally sorted
// item order (so restarts never rebuild or re-sort it), a memoized pairwise
// table-disjointness matrix, per-item dependency lists in global item ids,
// and the converged model-independent array stage lower bounds. Analysis
// diagnostics (e.g. "opt-guard-blowup") are stored on the artifact and
// replayed into every consuming compilation, so a compile that shares the
// analysis produces an identical diagnostic transcript to a cold one.
//
// *Phase B — the greedy merger (layout)*: a greedy walk in the prebuilt
// topological order packs atomic tables into merged tables ("cross
// products", Fig 8) under an explicit Tofino-like resource model, producing
// M stages with N merged tables each. The merger works entirely on dense
// analysis indices: merged tables hold pointers into the analysis instead of
// `AtomicTable` copies, stages keep incremental atomic-op/SALU/rule counters
// instead of recomputing them by iteration inside the stage-scan loop, and
// per-array pin state is dense-id indexed. Stages are materialized only on
// actual placement (a failed scan allocates nothing).
//
// The merger is program-wide: handlers share one physical pipeline (the event
// dispatcher selects among them), tables of different handlers are disjoint
// by event id and can share stages, and each register array is pinned to a
// single stage consistent with every handler's access order — which the
// ordered type system has already guaranteed is possible.
//
// `Compilation` (src/core/driver.hpp) owns one `LayoutAnalysis` per source,
// computed lazily and shared through `clone_from_stage`, so a sweep over any
// grid of resource models runs Phase A exactly once.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ir/ir.hpp"
#include "support/diagnostics.hpp"

namespace lucid::opt {

// ---------------------------------------------------------------------------
// Resource model
// ---------------------------------------------------------------------------

/// A simple model of one PISA pipeline's per-stage resources, calibrated to
/// the Tofino 1 numbers the paper's evaluation uses.
struct ResourceModel {
  int max_stages = 12;        // MAU stages in one Tofino pipeline
  int tables_per_stage = 8;   // logical tables per stage
  int salus_per_stage = 4;    // stateful ALUs (register arrays) per stage
  int rules_per_table = 512;  // static entries after cross-producting
  int members_per_table = 12; // atomic tables merged into one logical table
  int alu_ops_per_stage = 14; // ALU instructions (PHV ops) per stage

  static ResourceModel tofino() { return ResourceModel{}; }
};

// ---------------------------------------------------------------------------
// Pass 1: branch inlining
// ---------------------------------------------------------------------------

/// A handler whose branch tables have been dissolved into per-table guards.
/// `tables` keeps the original topological order.
struct GuardedHandler {
  std::string handler;
  int event_id = -1;
  std::vector<ir::AtomicTable> tables;  // no Branch tables; guards filled
};

/// Computes path conditions and deletes branch tables. If a guard
/// disjunction exceeds `max_conjs` the handler is reported through `diags`
/// (code "opt-guard-blowup") and the offending table keeps an
/// over-approximate guard — the layout still works, but emission refuses.
[[nodiscard]] GuardedHandler inline_branches(const ir::HandlerGraph& g,
                                             DiagnosticEngine& diags,
                                             int max_conjs = 64);

/// True when `a && b` is unsatisfiable.
[[nodiscard]] bool conjs_contradict(const ir::Conj& a, const ir::Conj& b);

/// True when two guarded tables can never execute for the same packet:
/// different handlers (selected by event id) or pairwise-contradictory
/// guards.
[[nodiscard]] bool tables_disjoint(const ir::AtomicTable& a,
                                   const ir::AtomicTable& b);

// ---------------------------------------------------------------------------
// Pass 2: dependency analysis
// ---------------------------------------------------------------------------

/// Adjacency list: deps[j] holds the indices i (< j positions in
/// `h.tables`) that must be placed in a strictly earlier stage than j.
[[nodiscard]] std::vector<std::vector<int>> dependency_edges(
    const GuardedHandler& h, const ir::ProgramIR& ir);

/// Longest-path (ASAP) level of every table given `deps`.
[[nodiscard]] std::vector<int> asap_levels(
    const GuardedHandler& h, const std::vector<std::vector<int>>& deps);

// ---------------------------------------------------------------------------
// Phase A: the model-independent layout analysis
// ---------------------------------------------------------------------------

/// Everything the greedy merger needs that is a pure function of the IR.
/// Immutable once built; safe to share across threads and across any number
/// of resource-model variants (see the file header).
struct LayoutAnalysis {
  /// One guarded atomic table, flattened into the global item space.
  struct Item {
    int handler = 0;      // dense handler id (index into `guarded`)
    int index = 0;        // index into guarded[handler].tables
    int level = 0;        // ASAP level within the handler
    int array = -1;       // dense array id (-1: not a Mem table)
    long rules = 0;       // static rules this table adds when merged
    bool uncond = false;  // no guards (executes unconditionally)
    const ir::AtomicTable* table = nullptr;  // points into `guarded`
  };

  // Per-handler pass 1 + 2 artifacts, in ir.handlers order.
  std::vector<GuardedHandler> guarded;
  std::vector<std::vector<std::vector<int>>> deps;  // per handler, local ids
  std::vector<std::vector<int>> levels;             // per handler

  // Interned symbols: handler id == index into `guarded`/`handler_names`;
  // array id == index into `array_names` (declaration order).
  std::vector<std::string> handler_names;
  std::vector<std::string> array_names;

  // Global item space: one entry per guarded table, handler-major.
  std::vector<Item> items;
  /// Dependencies in global item ids: item_deps[g] lists items that must be
  /// placed in a strictly earlier stage than g.
  std::vector<std::vector<int>> item_deps;
  /// Item ids sorted by (level, handler, index): the global topological
  /// order every merge attempt walks. Prebuilt once; restarts reuse it.
  std::vector<int> order;

  /// Converged model-independent stage lower bound per array id: the max
  /// ASAP level of any access, with the cross-handler stateful-order edges
  /// propagated to a fixpoint.
  std::vector<int> array_lb;

  /// Diagnostics produced while analyzing (e.g. "opt-guard-blowup"),
  /// replayed verbatim into every compilation that consumes this analysis.
  /// `diagnostics` is the flattened handler-order stream Phase B replays;
  /// `handler_diagnostics` keeps the same diagnostics per handler so an
  /// incremental update can carry a clean handler's transcript over without
  /// re-running branch inlining.
  std::vector<Diagnostic> diagnostics;
  std::vector<std::vector<Diagnostic>> handler_diagnostics;

  /// Memoized tables_disjoint() over the global item space. Cross-handler
  /// pairs are always disjoint (the event dispatcher selects one handler
  /// per packet), so only same-handler blocks are stored — O(sum t_h^2)
  /// memory and fill time instead of the dense items^2 matrix, whose
  /// allocation alone made Phase A quadratic in whole-program size. Block h
  /// is row-major over guarded[h].tables local indices; the diagonal is 0
  /// (a table always co-fires with itself), matching tables_disjoint.
  [[nodiscard]] bool disjoint(int a, int b) const {
    const Item& x = items[static_cast<std::size_t>(a)];
    const Item& y = items[static_cast<std::size_t>(b)];
    if (x.handler != y.handler) return true;
    const auto& block = disjoint_blocks_[static_cast<std::size_t>(x.handler)];
    const std::size_t t =
        guarded[static_cast<std::size_t>(x.handler)].tables.size();
    return block[static_cast<std::size_t>(x.index) * t +
                 static_cast<std::size_t>(y.index)] != 0;
  }

  [[nodiscard]] int item_count() const {
    return static_cast<int>(items.size());
  }

  /// Same-handler disjointness blocks (see disjoint()).
  std::vector<std::vector<std::uint8_t>> disjoint_blocks_;
};

/// Runs Phase A: branch inlining, dependency analysis, interning, the
/// global item order, the disjointness matrix, and the array lower bounds.
/// The result holds pointers into itself and is returned shared so pipelines
/// (whose merged tables point into it) can keep it alive.
[[nodiscard]] std::shared_ptr<const LayoutAnalysis> analyze_layout(
    const ir::ProgramIR& ir, int max_conjs = 64);

/// Incremental Phase A: patch `prev` against a new IR in which only
/// `dirty_handlers` changed. Clean handlers keep their guarded tables,
/// per-handler diagnostics, dependency edges, ASAP levels, and same-handler
/// disjointness block from `prev`; dirty handlers are re-analyzed; all
/// cross-handler structures (item space, order, array bounds) are rebuilt.
/// Produces an analysis identical to a cold analyze_layout of the new IR
/// (differential-tested). Returns nullptr when patching is unsound — the
/// handler list changed shape, or a clean handler's event id moved — and
/// the caller must fall back to analyze_layout. `handlers_reused`, when
/// non-null, receives the number of handlers carried over.
[[nodiscard]] std::shared_ptr<const LayoutAnalysis> update_layout_analysis(
    const LayoutAnalysis& prev, const ir::ProgramIR& ir,
    const std::set<std::string>& dirty_handlers, int max_conjs = 64,
    int* handlers_reused = nullptr);

// ---------------------------------------------------------------------------
// Phase B: greedy merging / pipeline layout
// ---------------------------------------------------------------------------

struct MergedTable {
  /// Member atomic tables, pointing into the owning Pipeline's analysis
  /// (kept alive by Pipeline::analysis) — never copies.
  std::vector<const ir::AtomicTable*> members;
  std::string array;  // the single register array bound to this table ("")
  /// Rule count after cross-producting, per owning handler (rules from
  /// different handlers are disjoint on the event id, so they add).
  std::map<std::string, long> rules_per_handler;
  [[nodiscard]] long total_rules() const;
};

struct StageLayout {
  std::vector<MergedTable> tables;
  [[nodiscard]] int atomic_ops() const;  // total member atomic tables
  [[nodiscard]] int salus() const;       // distinct arrays
};

struct Pipeline {
  std::vector<StageLayout> stages;
  std::map<std::string, int> array_stage;
  bool fits = true;       // stage count within the model
  bool feasible = true;   // layout algorithm completed
  int restarts = 0;       // placement attempts abandoned to move an array pin
  /// The Phase A artifact the merged tables point into. Shared, not copied:
  /// every variant of a sweep holds the same analysis.
  std::shared_ptr<const LayoutAnalysis> analysis;
  [[nodiscard]] int stage_count() const {
    return static_cast<int>(stages.size());
  }
  [[nodiscard]] std::vector<int> ops_per_stage() const;
  [[nodiscard]] std::string str() const;
};

/// Phase B alone: lays the program out under `model`, consuming a prebuilt
/// analysis. Replays the analysis diagnostics into `diags` first, so the
/// transcript is identical whether the analysis was computed here or shared.
[[nodiscard]] Pipeline layout(std::shared_ptr<const LayoutAnalysis> analysis,
                              const ResourceModel& model,
                              DiagnosticEngine& diags);

/// Convenience: analyze_layout + layout in one call (the "cold" path).
[[nodiscard]] Pipeline layout(const ir::ProgramIR& ir,
                              const ResourceModel& model,
                              DiagnosticEngine& diags);

/// Fig 12/13 data for one program.
struct LayoutStats {
  int unoptimized_stages = 0;  // atomic tables on the longest code path
  int optimized_stages = 0;    // merged pipeline depth
  std::vector<int> ops_per_stage;
  bool fits = false;
  [[nodiscard]] double stage_ratio() const {
    return optimized_stages == 0
               ? 0.0
               : static_cast<double>(unoptimized_stages) / optimized_stages;
  }
};
[[nodiscard]] LayoutStats layout_stats(const ir::ProgramIR& ir,
                                       const ResourceModel& model,
                                       DiagnosticEngine& diags);

}  // namespace lucid::opt
