#include "opt/passes.hpp"

#include <algorithm>
#include <set>
#include <utility>

namespace lucid::opt {

using ir::AtomicTable;
using ir::Conj;
using ir::MatchTest;
using ir::TableKind;

// ---------------------------------------------------------------------------
// Pass 1: branch inlining
// ---------------------------------------------------------------------------

namespace {

/// Appends `test` to `conj`, returning false if the conjunction becomes
/// contradictory (so the path is dead and can be dropped). Implied tests are
/// skipped; an == test subsumes any != tests on the same variable.
bool add_test(Conj& conj, const MatchTest& test) {
  for (const auto& t : conj) {
    if (t.var != test.var) continue;
    if (t.eq && test.eq) {
      if (t.value != test.value) return false;  // x==a && x==b, a!=b
      return true;                              // duplicate
    }
    if (t.eq && !test.eq) {
      if (t.value == test.value) return false;  // x==a && x!=a
      return true;  // x==a implies x!=b for every b != a
    }
    if (!t.eq && test.eq) {
      if (t.value == test.value) return false;  // x!=a && x==a
      continue;  // compatible but not implied; keep scanning
    }
    if (t.value == test.value) return true;  // duplicate x!=a
  }
  if (test.eq) {
    // The new equality subsumes every inequality on the same variable.
    std::erase_if(conj, [&](const MatchTest& t) {
      return t.var == test.var && !t.eq;
    });
  }
  conj.push_back(test);
  return true;
}

}  // namespace

bool conjs_contradict(const Conj& a, const Conj& b) {
  Conj merged = a;
  for (const auto& t : b) {
    if (!add_test(merged, t)) return true;
  }
  return false;
}

bool tables_disjoint(const AtomicTable& t1, const AtomicTable& t2) {
  if (t1.handler != t2.handler) return true;
  if (t1.guards.empty() || t2.guards.empty()) return false;
  for (const auto& c1 : t1.guards) {
    for (const auto& c2 : t2.guards) {
      if (!conjs_contradict(c1, c2)) return false;
    }
  }
  return true;
}

namespace {

/// conj1 && conj2, or nullopt if contradictory.
std::optional<Conj> conj_and(const Conj& a, const MatchTest& t) {
  Conj out = a;
  if (!add_test(out, t)) return std::nullopt;
  return out;
}

/// True if any conjunction is empty (i.e. the disjunction is "always").
bool is_always(const std::vector<Conj>& guards) {
  for (const auto& c : guards) {
    if (c.empty()) return true;
  }
  return false;
}

bool test_equal(const MatchTest& a, const MatchTest& b) {
  return a.var == b.var && a.eq == b.eq && a.value == b.value;
}
bool test_complement(const MatchTest& a, const MatchTest& b) {
  return a.var == b.var && a.value == b.value && a.eq != b.eq;
}

/// True if every test of `small` appears in `big` (so big implies small,
/// and `small OR big == small`).
bool conj_subsumes(const Conj& small, const Conj& big) {
  for (const auto& t : small) {
    bool found = false;
    for (const auto& b : big) {
      if (test_equal(t, b)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

/// If `a` and `b` agree on all tests except exactly one complementary pair,
/// returns the merged conjunction without that pair (Quine-McCluskey-style
/// adjacency merging).
std::optional<Conj> conj_merge_complement(const Conj& a, const Conj& b) {
  if (a.size() != b.size()) return std::nullopt;
  // Find the unique test of `a` that has a complement in `b` while every
  // other test matches exactly.
  int comp_index = -1;
  std::vector<bool> used(b.size(), false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    bool matched = false;
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (!used[j] && test_equal(a[i], b[j])) {
        used[j] = true;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (!used[j] && test_complement(a[i], b[j])) {
        used[j] = true;
        if (comp_index >= 0) return std::nullopt;  // two mismatches
        comp_index = static_cast<int>(i);
        matched = true;
        break;
      }
    }
    if (!matched) return std::nullopt;
  }
  if (comp_index < 0) return std::nullopt;  // identical conjunctions
  Conj merged;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (static_cast<int>(i) != comp_index) merged.push_back(a[i]);
  }
  return merged;
}

/// Simplifies a disjunction: absorption (A or A&B == A) and complementary
/// adjacency merging ((A&x) or (A&!x) == A), to fixpoint. This is what turns
/// a post-if join's path union back into "always".
void simplify_disjunction(std::vector<Conj>& cs) {
  bool changed = true;
  while (changed) {
    changed = false;
    // Absorption & duplicates.
    for (std::size_t i = 0; i < cs.size() && !changed; ++i) {
      for (std::size_t j = 0; j < cs.size(); ++j) {
        if (i == j) continue;
        if (conj_subsumes(cs[i], cs[j])) {
          cs.erase(cs.begin() + static_cast<std::ptrdiff_t>(j));
          changed = true;
          break;
        }
      }
    }
    if (changed) continue;
    // Complementary merges.
    for (std::size_t i = 0; i < cs.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < cs.size(); ++j) {
        if (auto merged = conj_merge_complement(cs[i], cs[j])) {
          cs.erase(cs.begin() + static_cast<std::ptrdiff_t>(j));
          cs[i] = std::move(*merged);
          changed = true;
          break;
        }
      }
    }
  }
}

void append_guard(std::vector<Conj>& dst, const Conj& c) {
  for (const auto& existing : dst) {
    if (existing.size() == c.size() && conj_subsumes(existing, c)) {
      return;  // duplicate
    }
  }
  dst.push_back(c);
}

}  // namespace

GuardedHandler inline_branches(const ir::HandlerGraph& g,
                               DiagnosticEngine& diags, int max_conjs) {
  GuardedHandler out;
  out.handler = g.handler;
  out.event_id = g.event_id;
  if (g.entry < 0) return out;

  // Path conditions per table. Table ids are in topological (program) order
  // by construction, so a single forward sweep propagates them.
  std::vector<std::vector<Conj>> paths(g.tables.size());
  std::vector<bool> reachable(g.tables.size(), false);
  paths[static_cast<std::size_t>(g.entry)] = {Conj{}};
  reachable[static_cast<std::size_t>(g.entry)] = true;

  auto propagate = [&](int to, const std::vector<Conj>& conds) {
    if (to < 0) return;
    auto& dst = paths[static_cast<std::size_t>(to)];
    reachable[static_cast<std::size_t>(to)] = true;
    if (is_always(dst)) return;
    for (const auto& c : conds) {
      if (c.empty()) {
        dst = {Conj{}};
        return;
      }
      append_guard(dst, c);
    }
    simplify_disjunction(dst);
    if (static_cast<int>(dst.size()) > max_conjs) {
      diags.warning({}, "opt-guard-blowup",
                    "handler '" + g.handler +
                        "': path-condition disjunction exceeded " +
                        std::to_string(max_conjs) +
                        " rules; guard over-approximated");
      dst = {Conj{}};
    }
  };

  for (std::size_t id = 0; id < g.tables.size(); ++id) {
    if (!reachable[id]) continue;
    const AtomicTable& t = g.tables[id];
    const auto& my_paths = paths[id];
    if (t.kind == TableKind::Branch) {
      // Branch subjects are always ==/!= against a constant (the lowering
      // canonicalizes everything else into one-bit predicates).
      MatchTest then_test{t.branch.subject.var,
                          t.branch.cmp == ir::CmpOp::Eq,
                          t.branch.constant};
      if (t.branch.subject.is_const()) {
        // Constant-folded branch: exactly one side is live.
        const bool truth = t.branch.cmp == ir::CmpOp::Eq
                               ? t.branch.subject.value == t.branch.constant
                               : t.branch.subject.value != t.branch.constant;
        propagate(t.next[truth ? 0 : 1], my_paths);
        continue;
      }
      MatchTest else_test = then_test;
      else_test.eq = !else_test.eq;
      std::vector<Conj> then_conds;
      std::vector<Conj> else_conds;
      for (const auto& c : my_paths) {
        if (auto tc = conj_and(c, then_test)) {
          then_conds.push_back(std::move(*tc));
        }
        if (auto ec = conj_and(c, else_test)) {
          else_conds.push_back(std::move(*ec));
        }
      }
      if (!then_conds.empty()) propagate(t.next[0], then_conds);
      if (!else_conds.empty()) propagate(t.next[1], else_conds);
    } else {
      for (const int n : t.next) propagate(n, my_paths);
    }
  }

  for (std::size_t id = 0; id < g.tables.size(); ++id) {
    if (!reachable[id]) continue;
    const AtomicTable& t = g.tables[id];
    if (t.kind == TableKind::Branch) continue;
    AtomicTable copy = t;
    copy.next.clear();
    copy.guards = is_always(paths[id]) ? std::vector<Conj>{} : paths[id];
    out.tables.push_back(std::move(copy));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pass 2: dependency analysis
// ---------------------------------------------------------------------------

namespace {

/// Shared implementation: `disjoint(i, j)` answers whether tables i and j of
/// `h` can ever fire for the same packet. The public entry point computes
/// that from scratch; analyze_layout supplies the memoized matrix.
template <typename DisjointFn>
std::vector<std::vector<int>> dependency_edges_impl(const GuardedHandler& h,
                                                    DisjointFn&& disjoint) {
  const std::size_t n = h.tables.size();
  std::vector<std::vector<int>> deps(n);
  // Intern local names once so the RAW/WAR/WAW tests below run on sorted
  // dense-id vectors (two-pointer intersection) instead of string sets.
  std::map<std::string, int> var_ids;
  auto intern = [&var_ids](std::vector<std::string>&& names,
                           std::vector<int>& out) {
    for (auto& v : names) {
      const auto [it, inserted] =
          var_ids.try_emplace(std::move(v), static_cast<int>(var_ids.size()));
      (void)inserted;
      out.push_back(it->second);
    }
  };
  std::vector<std::vector<int>> reads(n);
  std::vector<std::vector<int>> writes(n);
  for (std::size_t i = 0; i < n; ++i) {
    intern(h.tables[i].reads(), reads[i]);
    intern(h.tables[i].guard_reads(), reads[i]);
    intern(h.tables[i].writes(), writes[i]);
    for (auto* v : {&reads[i], &writes[i]}) {
      std::sort(v->begin(), v->end());
      v->erase(std::unique(v->begin(), v->end()), v->end());
    }
  }
  auto intersects = [](const std::vector<int>& a, const std::vector<int>& b) {
    std::size_t x = 0;
    std::size_t y = 0;
    while (x < a.size() && y < b.size()) {
      if (a[x] == b[y]) return true;
      if (a[x] < b[y]) {
        ++x;
      } else {
        ++y;
      }
    }
    return false;
  };

  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      // Tables that can never fire for the same packet have no runtime
      // dataflow; leaving them unordered is what lets mutually exclusive
      // branch arms share a stage (Fig 8's idx_eq_0 / idx_eq_1).
      if (disjoint(static_cast<int>(i), static_cast<int>(j))) continue;
      // Only real dataflow orders tables — including stateful ones: the
      // paper's Fig 6(3) moves hcts_fset next to nexthops_get precisely
      // because independent stateful tables may share or swap stages.
      const bool raw = intersects(writes[i], reads[j]);
      const bool war = intersects(reads[i], writes[j]);
      const bool waw = intersects(writes[i], writes[j]);
      if (raw || war || waw) deps[j].push_back(static_cast<int>(i));
    }
  }
  for (auto& d : deps) {
    std::sort(d.begin(), d.end());
    d.erase(std::unique(d.begin(), d.end()), d.end());
  }
  return deps;
}

}  // namespace

std::vector<std::vector<int>> dependency_edges(const GuardedHandler& h,
                                               const ir::ProgramIR& ir) {
  (void)ir;
  return dependency_edges_impl(h, [&h](int i, int j) {
    return tables_disjoint(h.tables[static_cast<std::size_t>(i)],
                           h.tables[static_cast<std::size_t>(j)]);
  });
}

std::vector<int> asap_levels(const GuardedHandler& h,
                             const std::vector<std::vector<int>>& deps) {
  std::vector<int> level(h.tables.size(), 0);
  for (std::size_t j = 0; j < h.tables.size(); ++j) {
    for (const int i : deps[j]) {
      level[j] = std::max(level[j], level[static_cast<std::size_t>(i)] + 1);
    }
  }
  return level;
}

// ---------------------------------------------------------------------------
// Phase A: the model-independent layout analysis
// ---------------------------------------------------------------------------

namespace {

long rules_of(const AtomicTable& t) {
  // Guard conjunctions plus the default (miss) rule.
  return static_cast<long>(std::max<std::size_t>(t.guards.size(), 1)) + 1;
}

}  // namespace

namespace {

/// Shared core of the cold (analyze_layout) and incremental
/// (update_layout_analysis) Phase A builders. A null `prev` means every
/// handler is dirty; otherwise handler h is dirty iff its name is in
/// `*dirty`, and its pass 1 + 2 artifacts (guarded tables, per-handler
/// diagnostics, same-handler disjointness block, dependency edges, ASAP
/// levels) are recomputed, while clean handlers copy prev's — valid because
/// every one of those artifacts is a pure function of the handler's own
/// graph. Everything cross-handler (interning, the item space, item_deps,
/// the global order, array lower bounds) is rebuilt fresh both ways: it is
/// O(n log n) cheap and keeps array/handler id changes out of the
/// correctness argument.
std::shared_ptr<const LayoutAnalysis> build_analysis(
    const ir::ProgramIR& ir, int max_conjs, const LayoutAnalysis* prev,
    const std::set<std::string>* dirty) {
  auto an = std::make_shared<LayoutAnalysis>();

  const auto is_dirty = [&](std::size_t h) {
    return prev == nullptr || dirty == nullptr ||
           dirty->count(ir.handlers[h].handler) != 0;
  };

  // Pass 1 per handler, each with a private engine so diagnostics are
  // per-handler artifacts (what lets an incremental update keep a clean
  // handler's transcript without re-running it). The flattened handler-order
  // stream is what Phase B replays — identical to the historical transcript.
  const std::size_t handler_count = ir.handlers.size();
  an->guarded.reserve(handler_count);
  an->handler_diagnostics.reserve(handler_count);
  for (std::size_t h = 0; h < handler_count; ++h) {
    if (is_dirty(h)) {
      DiagnosticEngine local;
      an->guarded.push_back(inline_branches(ir.handlers[h], local, max_conjs));
      an->handler_diagnostics.push_back(local.all());
    } else {
      an->guarded.push_back(prev->guarded[h]);
      an->handler_diagnostics.push_back(prev->handler_diagnostics[h]);
    }
    for (const Diagnostic& d : an->handler_diagnostics.back()) {
      an->diagnostics.push_back(d);
    }
  }

  // Interned symbols. Handler id == guarded index; array id == declaration
  // order (ir.arrays), extended on demand for arrays hand-built IR may have
  // skipped registering.
  an->handler_names.reserve(an->guarded.size());
  for (const auto& g : an->guarded) an->handler_names.push_back(g.handler);
  std::map<std::string, int> array_ids;
  an->array_names.reserve(ir.arrays.size());
  for (const auto& a : ir.arrays) {
    array_ids.emplace(a.name, static_cast<int>(an->array_names.size()));
    an->array_names.push_back(a.name);
  }
  auto array_id = [&an, &array_ids](const std::string& name) {
    const auto it = array_ids.find(name);
    if (it != array_ids.end()) return it->second;
    const int id = static_cast<int>(an->array_names.size());
    an->array_names.push_back(name);
    array_ids.emplace(name, id);
    return id;
  };

  // Global item space, handler-major. Built after every GuardedHandler is in
  // place: the Item::table pointers must never dangle on vector growth.
  std::vector<std::vector<int>> item_id(handler_count);
  for (std::size_t h = 0; h < handler_count; ++h) {
    const auto& tables = an->guarded[h].tables;
    item_id[h].resize(tables.size());
    for (std::size_t i = 0; i < tables.size(); ++i) {
      item_id[h][i] = an->item_count();
      LayoutAnalysis::Item item;
      item.handler = static_cast<int>(h);
      item.index = static_cast<int>(i);
      item.table = &tables[i];
      if (tables[i].kind == TableKind::Mem) {
        item.array = array_id(tables[i].mem.array);
      }
      item.rules = rules_of(tables[i]);
      item.uncond = tables[i].guards.empty();
      an->items.push_back(item);
    }
  }
  const std::size_t n = an->items.size();

  // Memoized pairwise disjointness, block-diagonal: cross-handler pairs are
  // disjoint by event id (the dispatcher selects one handler per packet) and
  // carry no stored state; same-handler pairs are computed once and
  // mirrored — or, for a clean handler in an incremental update, the whole
  // block is copied from prev (its tables are byte-identical, so the
  // pairwise verdicts are too). Diagonals are 0, matching tables_disjoint.
  an->disjoint_blocks_.resize(handler_count);
  for (std::size_t h = 0; h < handler_count; ++h) {
    auto& block = an->disjoint_blocks_[h];
    if (!is_dirty(h)) {
      block = prev->disjoint_blocks_[h];
      continue;
    }
    const auto& tables = an->guarded[h].tables;
    const std::size_t t = tables.size();
    block.assign(t * t, 0);
    for (std::size_t i = 0; i < t; ++i) {
      for (std::size_t j = i + 1; j < t; ++j) {
        const std::uint8_t d = tables_disjoint(tables[i], tables[j]) ? 1 : 0;
        block[i * t + j] = d;
        block[j * t + i] = d;
      }
    }
  }

  // Pass 2 per handler, consulting the memoized matrix, then ASAP levels.
  // Clean handlers copy prev's edges and levels (both are functions of the
  // handler's own tables and same-handler disjointness alone).
  an->deps.reserve(handler_count);
  an->levels.reserve(handler_count);
  for (std::size_t h = 0; h < handler_count; ++h) {
    if (is_dirty(h)) {
      an->deps.push_back(dependency_edges_impl(
          an->guarded[h], [&an, &item_id, h](int i, int j) {
            return an->disjoint(item_id[h][static_cast<std::size_t>(i)],
                                item_id[h][static_cast<std::size_t>(j)]);
          }));
      an->levels.push_back(asap_levels(an->guarded[h], an->deps.back()));
    } else {
      an->deps.push_back(prev->deps[h]);
      an->levels.push_back(prev->levels[h]);
    }
    for (std::size_t i = 0; i < an->levels[h].size(); ++i) {
      an->items[static_cast<std::size_t>(item_id[h][i])].level =
          an->levels[h][i];
    }
  }

  // Dependencies lifted into global item ids, for the merger's inner loop.
  an->item_deps.resize(n);
  for (std::size_t h = 0; h < handler_count; ++h) {
    for (std::size_t j = 0; j < an->deps[h].size(); ++j) {
      auto& out = an->item_deps[static_cast<std::size_t>(item_id[h][j])];
      out.reserve(an->deps[h][j].size());
      for (const int i : an->deps[h][j]) {
        out.push_back(item_id[h][static_cast<std::size_t>(i)]);
      }
    }
  }

  // The global topological order every merge attempt walks, prebuilt once:
  // restarts reuse it instead of rebuilding and re-sorting per attempt.
  an->order.resize(n);
  for (std::size_t g = 0; g < n; ++g) an->order[g] = static_cast<int>(g);
  std::sort(an->order.begin(), an->order.end(), [&an](int a, int b) {
    const auto& x = an->items[static_cast<std::size_t>(a)];
    const auto& y = an->items[static_cast<std::size_t>(b)];
    if (x.level != y.level) return x.level < y.level;
    if (x.handler != y.handler) return x.handler < y.handler;
    return x.index < y.index;
  });

  // Array stage lower bounds: max ASAP level of any access, then propagate
  // the per-handler stateful-order edges across handlers (the dependency
  // edges already skip mutually exclusive accesses). Non-disjoint accesses
  // always follow declaration order (the effect system proved it), so the
  // constraint graph is acyclic and a few passes converge. The Mem-kind
  // guards are pass-invariant (and restart-invariant), so they are hoisted
  // out of the convergence loop into a prebuilt pair list; a single-handler
  // program's (typically unproductive) list costs one clean pass, not a
  // re-scan of every table per pass.
  an->array_lb.assign(an->array_names.size(), 0);
  for (const auto& item : an->items) {
    if (item.array < 0) continue;
    auto& lb = an->array_lb[static_cast<std::size_t>(item.array)];
    lb = std::max(lb, item.level);
  }
  std::vector<std::pair<int, int>> mem_dep_pairs;  // lb[second] >= lb[first]+1
  for (std::size_t h = 0; h < handler_count; ++h) {
    for (std::size_t j = 0; j < an->deps[h].size(); ++j) {
      const auto& tj = an->items[static_cast<std::size_t>(item_id[h][j])];
      if (tj.array < 0) continue;
      for (const int i : an->deps[h][j]) {
        const auto& ti =
            an->items[static_cast<std::size_t>(item_id[h][static_cast<std::size_t>(i)])];
        if (ti.array < 0) continue;
        mem_dep_pairs.emplace_back(ti.array, tj.array);
      }
    }
  }
  for (std::size_t pass = 0; pass < an->array_names.size() + 1; ++pass) {
    bool changed = false;
    for (const auto& [from, to] : mem_dep_pairs) {
      const int need = an->array_lb[static_cast<std::size_t>(from)] + 1;
      if (an->array_lb[static_cast<std::size_t>(to)] < need) {
        an->array_lb[static_cast<std::size_t>(to)] = need;
        changed = true;
      }
    }
    if (!changed) break;
  }

  return an;
}

}  // namespace

std::shared_ptr<const LayoutAnalysis> analyze_layout(const ir::ProgramIR& ir,
                                                     int max_conjs) {
  return build_analysis(ir, max_conjs, nullptr, nullptr);
}

std::shared_ptr<const LayoutAnalysis> update_layout_analysis(
    const LayoutAnalysis& prev, const ir::ProgramIR& ir,
    const std::set<std::string>& dirty_handlers, int max_conjs,
    int* handlers_reused) {
  if (handlers_reused != nullptr) *handlers_reused = 0;
  // Patching is only sound against the same handler list in the same order
  // (dense handler ids must line up); anything else — a handler added,
  // removed, renamed, or reordered — falls back to a full recompute. A clean
  // handler whose event id shifted (an event decl moved) is also a fallback:
  // its copied GuardedHandler would carry the stale id.
  if (prev.guarded.size() != ir.handlers.size() ||
      prev.handler_diagnostics.size() != prev.guarded.size()) {
    return nullptr;
  }
  int reused = 0;
  for (std::size_t h = 0; h < ir.handlers.size(); ++h) {
    if (prev.guarded[h].handler != ir.handlers[h].handler) return nullptr;
    if (dirty_handlers.count(ir.handlers[h].handler) == 0) {
      if (prev.guarded[h].event_id != ir.handlers[h].event_id) return nullptr;
      ++reused;
    }
  }
  auto an = build_analysis(ir, max_conjs, &prev, &dirty_handlers);
  if (an != nullptr && handlers_reused != nullptr) *handlers_reused = reused;
  return an;
}

// ---------------------------------------------------------------------------
// Phase B: greedy merging
// ---------------------------------------------------------------------------

long MergedTable::total_rules() const {
  long total = 0;
  for (const auto& [h, r] : rules_per_handler) total += r;
  return std::max<long>(total, 1);
}

int StageLayout::atomic_ops() const {
  int n = 0;
  for (const auto& t : tables) n += static_cast<int>(t.members.size());
  return n;
}

int StageLayout::salus() const {
  std::set<std::string> arrays;
  for (const auto& t : tables) {
    if (!t.array.empty()) arrays.insert(t.array);
  }
  return static_cast<int>(arrays.size());
}

std::vector<int> Pipeline::ops_per_stage() const {
  std::vector<int> out;
  out.reserve(stages.size());
  for (const auto& s : stages) out.push_back(s.atomic_ops());
  return out;
}

std::string Pipeline::str() const {
  std::string s;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    s += "stage " + std::to_string(i) + ": ";
    for (const auto& t : stages[i].tables) {
      s += "[";
      for (std::size_t m = 0; m < t.members.size(); ++m) {
        if (m > 0) s += " ";
        s += t.members[m]->handler + "#" + std::to_string(t.members[m]->id);
      }
      if (!t.array.empty()) s += " @" + t.array;
      s += "] ";
    }
    s += "\n";
  }
  return s;
}

Pipeline layout(std::shared_ptr<const LayoutAnalysis> analysis,
                const ResourceModel& model, DiagnosticEngine& diags) {
  const LayoutAnalysis& an = *analysis;
  Pipeline pipe;
  pipe.analysis = std::move(analysis);

  // Replay the Phase A diagnostics so a compile that shares the analysis
  // produces the same transcript as one that computed it.
  for (const Diagnostic& d : an.diagnostics) {
    diags.add(d.severity, d.range, d.code, d.message);
  }

  const int handler_count = static_cast<int>(an.guarded.size());
  const int array_count = static_cast<int>(an.array_names.size());
  const std::size_t n = an.items.size();

  // Internal dense working state: member *indices* into the analysis, per-
  // stage incremental counters, and dense-id pin state — no AtomicTable
  // copies, string keys, or map lookups inside the placement loops.
  struct TableState {
    std::vector<int> members;            // global item ids
    int array = -1;                      // dense array id
    long rules_total = 0;                // incremental sum of member rules
    std::vector<long> rules_by_handler;  // dense handler id -> rules
  };
  struct StageState {
    std::vector<TableState> tables;
    int atomic_ops = 0;       // incremental: members across all tables
    std::vector<int> arrays;  // distinct array ids present (salus count)
    [[nodiscard]] bool has_array(int a) const {
      for (const int x : arrays) {
        if (x == a) return true;
      }
      return false;
    }
  };

  std::vector<StageState> stages;
  std::vector<int> array_pin = an.array_lb;  // lower bounds seed the pins
  std::vector<int> array_stage(static_cast<std::size_t>(array_count), -1);
  std::vector<int> placed(n, -1);

  // Greedy placement, restarting when an array must move later than where a
  // prior placement pinned it.
  const int max_restarts = array_count * (model.max_stages + 4) + 8;
  const long ops_cap = static_cast<long>(model.alu_ops_per_stage) *
                       std::max(1, model.tables_per_stage);

  for (int attempt = 0; attempt <= max_restarts; ++attempt) {
    stages.clear();
    std::fill(array_stage.begin(), array_stage.end(), -1);
    std::fill(placed.begin(), placed.end(), -1);
    pipe.feasible = true;
    bool restart = false;

    for (const int g : an.order) {
      const LayoutAnalysis::Item& item =
          an.items[static_cast<std::size_t>(g)];
      int earliest = 0;
      for (const int d : an.item_deps[static_cast<std::size_t>(g)]) {
        earliest = std::max(earliest,
                            placed[static_cast<std::size_t>(d)] + 1);
      }

      const bool is_mem = item.array >= 0;
      if (is_mem) {
        const int pin = array_stage[static_cast<std::size_t>(item.array)];
        if (pin >= 0 && earliest > pin) {
          // The array was already placed earlier than this access needs:
          // push the pin and restart the placement.
          array_pin[static_cast<std::size_t>(item.array)] = earliest;
          restart = true;
          break;
        }
        earliest = std::max(earliest,
                            array_pin[static_cast<std::size_t>(item.array)]);
        if (pin >= 0) earliest = pin;
      }

      // Scan stages from `earliest` for a merged table (or a slot for a new
      // one) that fits. Stages past the high-water mark are virtually empty
      // and materialized only on actual placement — a failed scan allocates
      // nothing.
      int chosen = -1;
      for (int s = earliest; s < earliest + 4 * model.max_stages; ++s) {
        StageState* stage =
            s < static_cast<int>(stages.size())
                ? &stages[static_cast<std::size_t>(s)]
                : nullptr;
        if ((stage != nullptr ? stage->atomic_ops : 0) + 1 > ops_cap) {
          continue;
        }
        const bool array_new_here =
            is_mem && (stage == nullptr || !stage->has_array(item.array));
        if (is_mem && array_new_here &&
            (stage != nullptr ? static_cast<int>(stage->arrays.size()) : 0) >=
                model.salus_per_stage) {
          if (array_stage[static_cast<std::size_t>(item.array)] >= 0) {
            // Pinned stage is full of other arrays: infeasible pin.
            array_pin[static_cast<std::size_t>(item.array)] = s + 1;
            restart = true;
          }
          continue;
        }
        // Try to join an existing merged table. Same-handler members must be
        // either all unconditional (their ops combine into one action) or
        // pairwise disjoint (each gets its own rules) — mirroring the merged
        // tables of Fig 8. Members of different handlers are always disjoint
        // on the event id. All checks run on dense analysis indices; the
        // disjointness tests hit the memoized matrix.
        TableState* target = nullptr;
        if (stage != nullptr) {
          for (auto& mt : stage->tables) {
            if (static_cast<int>(mt.members.size()) >=
                model.members_per_table) {
              continue;
            }
            if (is_mem && mt.array >= 0 && mt.array != item.array) continue;
            bool compatible = true;
            for (const int m : mt.members) {
              const LayoutAnalysis::Item& member =
                  an.items[static_cast<std::size_t>(m)];
              if (member.handler != item.handler) continue;
              if (member.uncond != item.uncond) {
                compatible = false;
                break;
              }
              if (!item.uncond && !an.disjoint(m, g)) {
                compatible = false;
                break;
              }
            }
            if (!compatible) continue;
            // Rules add: disjoint same-handler members, disjoint handlers.
            if (mt.rules_total + item.rules > model.rules_per_table) continue;
            target = &mt;
            break;
          }
        }
        if (target == nullptr) {
          if ((stage != nullptr ? static_cast<int>(stage->tables.size())
                                : 0) >= model.tables_per_stage) {
            continue;
          }
          if (stage == nullptr) {
            while (static_cast<int>(stages.size()) <= s) {
              stages.emplace_back();
            }
            stage = &stages[static_cast<std::size_t>(s)];
          }
          stage->tables.emplace_back();
          target = &stage->tables.back();
          target->rules_by_handler.assign(
              static_cast<std::size_t>(handler_count), 0);
        }
        target->members.push_back(g);
        target->rules_total += item.rules;
        target->rules_by_handler[static_cast<std::size_t>(item.handler)] +=
            item.rules;
        stage->atomic_ops += 1;
        if (is_mem) {
          target->array = item.array;
          if (array_new_here) stage->arrays.push_back(item.array);
          array_stage[static_cast<std::size_t>(item.array)] = s;
          if (s > array_pin[static_cast<std::size_t>(item.array)]) {
            array_pin[static_cast<std::size_t>(item.array)] = s;
          }
        }
        chosen = s;
        break;
      }
      if (restart) break;
      if (chosen < 0) {
        pipe.feasible = false;
        diags.warning({}, "opt-layout-infeasible",
                      "could not place table '" + item.table->str() +
                          "' of handler '" + item.table->handler + "'");
        break;
      }
      placed[static_cast<std::size_t>(g)] = chosen;
    }

    if (!restart) break;
    ++pipe.restarts;
    if (attempt == max_restarts) {
      pipe.feasible = false;
      diags.warning({}, "opt-layout-restarts",
                    "layout did not converge; resource model too tight");
    }
  }

  // Trim trailing empty stages (interior gap stages, materialized to reach a
  // later placement, stay — as before).
  while (!stages.empty() && stages.back().tables.empty()) {
    stages.pop_back();
  }

  // Materialize the public pipeline once: members are pointers into the
  // analysis (kept alive by pipe.analysis), never AtomicTable copies.
  pipe.stages.resize(stages.size());
  for (std::size_t s = 0; s < stages.size(); ++s) {
    pipe.stages[s].tables.reserve(stages[s].tables.size());
    for (const TableState& ts : stages[s].tables) {
      MergedTable mt;
      mt.members.reserve(ts.members.size());
      for (const int m : ts.members) {
        mt.members.push_back(an.items[static_cast<std::size_t>(m)].table);
      }
      if (ts.array >= 0) {
        mt.array = an.array_names[static_cast<std::size_t>(ts.array)];
      }
      for (int h = 0; h < handler_count; ++h) {
        const long r = ts.rules_by_handler[static_cast<std::size_t>(h)];
        if (r != 0) {
          mt.rules_per_handler[an.handler_names[static_cast<std::size_t>(h)]] =
              r;
        }
      }
      pipe.stages[s].tables.push_back(std::move(mt));
    }
  }
  for (int a = 0; a < array_count; ++a) {
    const int s = array_stage[static_cast<std::size_t>(a)];
    if (s >= 0) {
      pipe.array_stage[an.array_names[static_cast<std::size_t>(a)]] = s;
    }
  }

  pipe.fits = pipe.stage_count() <= model.max_stages && pipe.feasible;
  return pipe;
}

Pipeline layout(const ir::ProgramIR& ir, const ResourceModel& model,
                DiagnosticEngine& diags) {
  return layout(analyze_layout(ir), model, diags);
}

LayoutStats layout_stats(const ir::ProgramIR& ir, const ResourceModel& model,
                         DiagnosticEngine& diags) {
  LayoutStats stats;
  stats.unoptimized_stages = ir.total_longest_path();
  const Pipeline p = layout(ir, model, diags);
  stats.optimized_stages = p.stage_count();
  stats.ops_per_stage = p.ops_per_stage();
  stats.fits = p.fits;
  return stats;
}

}  // namespace lucid::opt
