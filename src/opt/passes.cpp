#include "opt/passes.hpp"

#include <algorithm>
#include <set>

namespace lucid::opt {

using ir::AtomicTable;
using ir::Conj;
using ir::MatchTest;
using ir::TableKind;

// ---------------------------------------------------------------------------
// Pass 1: branch inlining
// ---------------------------------------------------------------------------

namespace {

/// Appends `test` to `conj`, returning false if the conjunction becomes
/// contradictory (so the path is dead and can be dropped). Implied tests are
/// skipped; an == test subsumes any != tests on the same variable.
bool add_test(Conj& conj, const MatchTest& test) {
  for (const auto& t : conj) {
    if (t.var != test.var) continue;
    if (t.eq && test.eq) {
      if (t.value != test.value) return false;  // x==a && x==b, a!=b
      return true;                              // duplicate
    }
    if (t.eq && !test.eq) {
      if (t.value == test.value) return false;  // x==a && x!=a
      return true;  // x==a implies x!=b for every b != a
    }
    if (!t.eq && test.eq) {
      if (t.value == test.value) return false;  // x!=a && x==a
      continue;  // compatible but not implied; keep scanning
    }
    if (t.value == test.value) return true;  // duplicate x!=a
  }
  if (test.eq) {
    // The new equality subsumes every inequality on the same variable.
    std::erase_if(conj, [&](const MatchTest& t) {
      return t.var == test.var && !t.eq;
    });
  }
  conj.push_back(test);
  return true;
}

}  // namespace

bool conjs_contradict(const Conj& a, const Conj& b) {
  Conj merged = a;
  for (const auto& t : b) {
    if (!add_test(merged, t)) return true;
  }
  return false;
}

bool tables_disjoint(const AtomicTable& t1, const AtomicTable& t2) {
  if (t1.handler != t2.handler) return true;
  if (t1.guards.empty() || t2.guards.empty()) return false;
  for (const auto& c1 : t1.guards) {
    for (const auto& c2 : t2.guards) {
      if (!conjs_contradict(c1, c2)) return false;
    }
  }
  return true;
}

namespace {
// Alias for the file-local users below.
bool guards_disjoint(const AtomicTable& a, const AtomicTable& b) {
  return tables_disjoint(a, b);
}

/// conj1 && conj2, or nullopt if contradictory.
std::optional<Conj> conj_and(const Conj& a, const MatchTest& t) {
  Conj out = a;
  if (!add_test(out, t)) return std::nullopt;
  return out;
}

/// True if any conjunction is empty (i.e. the disjunction is "always").
bool is_always(const std::vector<Conj>& guards) {
  for (const auto& c : guards) {
    if (c.empty()) return true;
  }
  return false;
}

bool test_equal(const MatchTest& a, const MatchTest& b) {
  return a.var == b.var && a.eq == b.eq && a.value == b.value;
}
bool test_complement(const MatchTest& a, const MatchTest& b) {
  return a.var == b.var && a.value == b.value && a.eq != b.eq;
}

/// True if every test of `small` appears in `big` (so big implies small,
/// and `small OR big == small`).
bool conj_subsumes(const Conj& small, const Conj& big) {
  for (const auto& t : small) {
    bool found = false;
    for (const auto& b : big) {
      if (test_equal(t, b)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

/// If `a` and `b` agree on all tests except exactly one complementary pair,
/// returns the merged conjunction without that pair (Quine-McCluskey-style
/// adjacency merging).
std::optional<Conj> conj_merge_complement(const Conj& a, const Conj& b) {
  if (a.size() != b.size()) return std::nullopt;
  // Find the unique test of `a` that has a complement in `b` while every
  // other test matches exactly.
  int comp_index = -1;
  std::vector<bool> used(b.size(), false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    bool matched = false;
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (!used[j] && test_equal(a[i], b[j])) {
        used[j] = true;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (!used[j] && test_complement(a[i], b[j])) {
        used[j] = true;
        if (comp_index >= 0) return std::nullopt;  // two mismatches
        comp_index = static_cast<int>(i);
        matched = true;
        break;
      }
    }
    if (!matched) return std::nullopt;
  }
  if (comp_index < 0) return std::nullopt;  // identical conjunctions
  Conj merged;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (static_cast<int>(i) != comp_index) merged.push_back(a[i]);
  }
  return merged;
}

/// Simplifies a disjunction: absorption (A or A&B == A) and complementary
/// adjacency merging ((A&x) or (A&!x) == A), to fixpoint. This is what turns
/// a post-if join's path union back into "always".
void simplify_disjunction(std::vector<Conj>& cs) {
  bool changed = true;
  while (changed) {
    changed = false;
    // Absorption & duplicates.
    for (std::size_t i = 0; i < cs.size() && !changed; ++i) {
      for (std::size_t j = 0; j < cs.size(); ++j) {
        if (i == j) continue;
        if (conj_subsumes(cs[i], cs[j])) {
          cs.erase(cs.begin() + static_cast<std::ptrdiff_t>(j));
          changed = true;
          break;
        }
      }
    }
    if (changed) continue;
    // Complementary merges.
    for (std::size_t i = 0; i < cs.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < cs.size(); ++j) {
        if (auto merged = conj_merge_complement(cs[i], cs[j])) {
          cs.erase(cs.begin() + static_cast<std::ptrdiff_t>(j));
          cs[i] = std::move(*merged);
          changed = true;
          break;
        }
      }
    }
  }
}

void append_guard(std::vector<Conj>& dst, const Conj& c) {
  for (const auto& existing : dst) {
    if (existing.size() == c.size() && conj_subsumes(existing, c)) {
      return;  // duplicate
    }
  }
  dst.push_back(c);
}

}  // namespace

GuardedHandler inline_branches(const ir::HandlerGraph& g,
                               DiagnosticEngine& diags, int max_conjs) {
  GuardedHandler out;
  out.handler = g.handler;
  out.event_id = g.event_id;
  if (g.entry < 0) return out;

  // Path conditions per table. Table ids are in topological (program) order
  // by construction, so a single forward sweep propagates them.
  std::vector<std::vector<Conj>> paths(g.tables.size());
  std::vector<bool> reachable(g.tables.size(), false);
  paths[static_cast<std::size_t>(g.entry)] = {Conj{}};
  reachable[static_cast<std::size_t>(g.entry)] = true;

  auto propagate = [&](int to, const std::vector<Conj>& conds) {
    if (to < 0) return;
    auto& dst = paths[static_cast<std::size_t>(to)];
    reachable[static_cast<std::size_t>(to)] = true;
    if (is_always(dst)) return;
    for (const auto& c : conds) {
      if (c.empty()) {
        dst = {Conj{}};
        return;
      }
      append_guard(dst, c);
    }
    simplify_disjunction(dst);
    if (static_cast<int>(dst.size()) > max_conjs) {
      diags.warning({}, "opt-guard-blowup",
                    "handler '" + g.handler +
                        "': path-condition disjunction exceeded " +
                        std::to_string(max_conjs) +
                        " rules; guard over-approximated");
      dst = {Conj{}};
    }
  };

  for (std::size_t id = 0; id < g.tables.size(); ++id) {
    if (!reachable[id]) continue;
    const AtomicTable& t = g.tables[id];
    const auto& my_paths = paths[id];
    if (t.kind == TableKind::Branch) {
      // Branch subjects are always ==/!= against a constant (the lowering
      // canonicalizes everything else into one-bit predicates).
      MatchTest then_test{t.branch.subject.var,
                          t.branch.cmp == ir::CmpOp::Eq,
                          t.branch.constant};
      if (t.branch.subject.is_const()) {
        // Constant-folded branch: exactly one side is live.
        const bool truth = t.branch.cmp == ir::CmpOp::Eq
                               ? t.branch.subject.value == t.branch.constant
                               : t.branch.subject.value != t.branch.constant;
        propagate(t.next[truth ? 0 : 1], my_paths);
        continue;
      }
      MatchTest else_test = then_test;
      else_test.eq = !else_test.eq;
      std::vector<Conj> then_conds;
      std::vector<Conj> else_conds;
      for (const auto& c : my_paths) {
        if (auto tc = conj_and(c, then_test)) {
          then_conds.push_back(std::move(*tc));
        }
        if (auto ec = conj_and(c, else_test)) {
          else_conds.push_back(std::move(*ec));
        }
      }
      if (!then_conds.empty()) propagate(t.next[0], then_conds);
      if (!else_conds.empty()) propagate(t.next[1], else_conds);
    } else {
      for (const int n : t.next) propagate(n, my_paths);
    }
  }

  for (std::size_t id = 0; id < g.tables.size(); ++id) {
    if (!reachable[id]) continue;
    const AtomicTable& t = g.tables[id];
    if (t.kind == TableKind::Branch) continue;
    AtomicTable copy = t;
    copy.next.clear();
    copy.guards = is_always(paths[id]) ? std::vector<Conj>{} : paths[id];
    out.tables.push_back(std::move(copy));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pass 2: dependency analysis
// ---------------------------------------------------------------------------

std::vector<std::vector<int>> dependency_edges(const GuardedHandler& h,
                                               const ir::ProgramIR& ir) {
  const std::size_t n = h.tables.size();
  std::vector<std::vector<int>> deps(n);
  std::vector<std::set<std::string>> reads(n);
  std::vector<std::set<std::string>> writes(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : h.tables[i].reads()) reads[i].insert(std::move(v));
    for (auto& v : h.tables[i].guard_reads()) reads[i].insert(std::move(v));
    for (auto& v : h.tables[i].writes()) writes[i].insert(std::move(v));
  }
  auto intersects = [](const std::set<std::string>& a,
                       const std::set<std::string>& b) {
    for (const auto& x : a) {
      if (b.count(x)) return true;
    }
    return false;
  };

  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      // Tables that can never fire for the same packet have no runtime
      // dataflow; leaving them unordered is what lets mutually exclusive
      // branch arms share a stage (Fig 8's idx_eq_0 / idx_eq_1).
      if (guards_disjoint(h.tables[i], h.tables[j])) continue;
      // Only real dataflow orders tables — including stateful ones: the
      // paper's Fig 6(3) moves hcts_fset next to nexthops_get precisely
      // because independent stateful tables may share or swap stages.
      const bool raw = intersects(writes[i], reads[j]);
      const bool war = intersects(reads[i], writes[j]);
      const bool waw = intersects(writes[i], writes[j]);
      if (raw || war || waw) deps[j].push_back(static_cast<int>(i));
    }
  }
  (void)ir;
  for (auto& d : deps) {
    std::sort(d.begin(), d.end());
    d.erase(std::unique(d.begin(), d.end()), d.end());
  }
  return deps;
}

std::vector<int> asap_levels(const GuardedHandler& h,
                             const std::vector<std::vector<int>>& deps) {
  std::vector<int> level(h.tables.size(), 0);
  for (std::size_t j = 0; j < h.tables.size(); ++j) {
    for (const int i : deps[j]) {
      level[j] = std::max(level[j], level[static_cast<std::size_t>(i)] + 1);
    }
  }
  return level;
}

// ---------------------------------------------------------------------------
// Pass 3: greedy merging
// ---------------------------------------------------------------------------

long MergedTable::total_rules() const {
  long total = 0;
  for (const auto& [h, r] : rules_per_handler) total += r;
  return std::max<long>(total, 1);
}

int StageLayout::atomic_ops() const {
  int n = 0;
  for (const auto& t : tables) n += static_cast<int>(t.members.size());
  return n;
}

int StageLayout::salus() const {
  std::set<std::string> arrays;
  for (const auto& t : tables) {
    if (!t.array.empty()) arrays.insert(t.array);
  }
  return static_cast<int>(arrays.size());
}

std::vector<int> Pipeline::ops_per_stage() const {
  std::vector<int> out;
  out.reserve(stages.size());
  for (const auto& s : stages) out.push_back(s.atomic_ops());
  return out;
}

std::string Pipeline::str() const {
  std::string s;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    s += "stage " + std::to_string(i) + ": ";
    for (const auto& t : stages[i].tables) {
      s += "[";
      for (std::size_t m = 0; m < t.members.size(); ++m) {
        if (m > 0) s += " ";
        s += t.members[m].handler + "#" + std::to_string(t.members[m].id);
      }
      if (!t.array.empty()) s += " @" + t.array;
      s += "] ";
    }
    s += "\n";
  }
  return s;
}

namespace {

long rules_of(const AtomicTable& t) {
  // Guard conjunctions plus the default (miss) rule.
  return static_cast<long>(std::max<std::size_t>(t.guards.size(), 1)) + 1;
}

struct Item {
  int handler = 0;   // index into guarded handlers
  int index = 0;     // index into handler's tables
  int level = 0;
  const AtomicTable* t = nullptr;
};

}  // namespace

Pipeline layout(const ir::ProgramIR& ir, const ResourceModel& model,
                DiagnosticEngine& diags) {
  Pipeline pipe;

  // Pass 1 + 2 per handler.
  std::vector<GuardedHandler> guarded;
  std::vector<std::vector<std::vector<int>>> deps;
  std::vector<std::vector<int>> levels;
  guarded.reserve(ir.handlers.size());
  for (const auto& hg : ir.handlers) {
    guarded.push_back(inline_branches(hg, diags));
    deps.push_back(dependency_edges(guarded.back(), ir));
    levels.push_back(asap_levels(guarded.back(), deps.back()));
  }

  // Array stage lower bounds: max ASAP level of any access, then propagate
  // the per-handler stateful-order edges across handlers (the dependency
  // edges already skip mutually exclusive accesses). Non-disjoint accesses
  // always follow declaration order (the effect system proved it), so the
  // constraint graph is acyclic and a few passes converge.
  std::map<std::string, int> array_lb;
  for (std::size_t h = 0; h < guarded.size(); ++h) {
    for (std::size_t i = 0; i < guarded[h].tables.size(); ++i) {
      const AtomicTable& t = guarded[h].tables[i];
      if (t.kind != TableKind::Mem) continue;
      auto& lb = array_lb[t.mem.array];
      lb = std::max(lb, levels[h][i]);
    }
  }
  for (std::size_t pass = 0; pass < ir.arrays.size() + 1; ++pass) {
    bool changed = false;
    for (std::size_t h = 0; h < guarded.size(); ++h) {
      for (std::size_t j = 0; j < guarded[h].tables.size(); ++j) {
        const AtomicTable& tj = guarded[h].tables[j];
        if (tj.kind != TableKind::Mem) continue;
        for (const int i : deps[h][j]) {
          const AtomicTable& ti =
              guarded[h].tables[static_cast<std::size_t>(i)];
          if (ti.kind != TableKind::Mem) continue;
          const int need = array_lb[ti.mem.array] + 1;
          if (array_lb[tj.mem.array] < need) {
            array_lb[tj.mem.array] = need;
            changed = true;
          }
        }
      }
    }
    if (!changed) break;
  }

  // Greedy placement, restarting when an array must move later than where a
  // prior placement pinned it.
  std::map<std::string, int> array_pin = array_lb;
  const int max_restarts =
      static_cast<int>(ir.arrays.size()) * (model.max_stages + 4) + 8;

  for (int attempt = 0; attempt <= max_restarts; ++attempt) {
    pipe.stages.clear();
    pipe.array_stage.clear();
    pipe.feasible = true;
    bool restart = false;

    // Items in (level, handler, index) order: a global topological order.
    std::vector<Item> items;
    for (std::size_t h = 0; h < guarded.size(); ++h) {
      for (std::size_t i = 0; i < guarded[h].tables.size(); ++i) {
        items.push_back(Item{static_cast<int>(h), static_cast<int>(i),
                             levels[h][i], &guarded[h].tables[i]});
      }
    }
    std::stable_sort(items.begin(), items.end(),
                     [](const Item& a, const Item& b) {
                       if (a.level != b.level) return a.level < b.level;
                       if (a.handler != b.handler) return a.handler < b.handler;
                       return a.index < b.index;
                     });

    // placed[h][i] = stage of that table.
    std::vector<std::vector<int>> placed(guarded.size());
    for (std::size_t h = 0; h < guarded.size(); ++h) {
      placed[h].assign(guarded[h].tables.size(), -1);
    }

    auto ensure_stage = [&](int s) -> StageLayout& {
      while (static_cast<int>(pipe.stages.size()) <= s) {
        pipe.stages.emplace_back();
      }
      return pipe.stages[static_cast<std::size_t>(s)];
    };

    for (const Item& item : items) {
      const AtomicTable& t = *item.t;
      int earliest = 0;
      for (const int d :
           deps[static_cast<std::size_t>(item.handler)]
               [static_cast<std::size_t>(item.index)]) {
        earliest = std::max(
            earliest,
            placed[static_cast<std::size_t>(item.handler)]
                  [static_cast<std::size_t>(d)] + 1);
      }

      const bool is_mem = t.kind == TableKind::Mem;
      const std::string& array = t.mem.array;
      if (is_mem) {
        const auto pin = pipe.array_stage.find(array);
        if (pin != pipe.array_stage.end() && earliest > pin->second) {
          // The array was already placed earlier than this access needs:
          // push the pin and restart the placement.
          array_pin[array] = earliest;
          restart = true;
          break;
        }
        earliest = std::max(earliest, array_pin[array]);
        if (pin != pipe.array_stage.end()) earliest = pin->second;
      }

      // Scan stages from `earliest` for a merged table (or a slot for a new
      // one) that fits.
      int chosen = -1;
      for (int s = earliest; s < earliest + 4 * model.max_stages; ++s) {
        StageLayout& stage = ensure_stage(s);
        if (stage.atomic_ops() + 1 >
            model.alu_ops_per_stage * std::max(1, model.tables_per_stage)) {
          continue;
        }
        const bool array_new_here =
            is_mem && [&] {
              for (const auto& mt : stage.tables) {
                if (mt.array == array) return false;
              }
              return true;
            }();
        if (is_mem && array_new_here &&
            stage.salus() >= model.salus_per_stage) {
          if (pipe.array_stage.count(array)) {
            // Pinned stage is full of other arrays: infeasible pin.
            array_pin[array] = s + 1;
            restart = true;
          }
          continue;
        }
        // Try to join an existing merged table. Same-handler members must be
        // either all unconditional (their ops combine into one action) or
        // pairwise disjoint (each gets its own rules) — mirroring the merged
        // tables of Fig 8. Members of different handlers are always disjoint
        // on the event id.
        MergedTable* target = nullptr;
        for (auto& mt : stage.tables) {
          if (static_cast<int>(mt.members.size()) >=
              model.members_per_table) {
            continue;
          }
          if (is_mem && !mt.array.empty() && mt.array != array) continue;
          const bool my_uncond = t.guards.empty();
          bool compatible = true;
          for (const auto& member : mt.members) {
            if (member.handler != t.handler) continue;
            if (member.guards.empty() != my_uncond) {
              compatible = false;
              break;
            }
            if (!my_uncond && !tables_disjoint(member, t)) {
              compatible = false;
              break;
            }
          }
          if (!compatible) continue;
          // Rules add: disjoint same-handler members, disjoint handlers.
          std::map<std::string, long> next_rules = mt.rules_per_handler;
          next_rules[t.handler] += rules_of(t);
          long new_rules = 0;
          for (const auto& [hname, r] : next_rules) new_rules += r;
          if (new_rules > model.rules_per_table) continue;
          target = &mt;
          mt.rules_per_handler = std::move(next_rules);
          break;
        }
        if (target == nullptr) {
          if (static_cast<int>(stage.tables.size()) >=
              model.tables_per_stage) {
            continue;
          }
          stage.tables.emplace_back();
          target = &stage.tables.back();
          target->rules_per_handler[t.handler] = rules_of(t);
        }
        target->members.push_back(t);
        if (is_mem) {
          target->array = array;
          pipe.array_stage[array] = s;
          if (s > array_pin[array]) array_pin[array] = s;
        }
        chosen = s;
        break;
      }
      if (restart) break;
      if (chosen < 0) {
        pipe.feasible = false;
        diags.warning({}, "opt-layout-infeasible",
                      "could not place table '" + t.str() + "' of handler '" +
                          t.handler + "'");
        break;
      }
      placed[static_cast<std::size_t>(item.handler)]
            [static_cast<std::size_t>(item.index)] = chosen;
    }

    if (!restart) break;
    if (attempt == max_restarts) {
      pipe.feasible = false;
      diags.warning({}, "opt-layout-restarts",
                    "layout did not converge; resource model too tight");
    }
  }

  // Trim trailing empty stages.
  while (!pipe.stages.empty() && pipe.stages.back().tables.empty()) {
    pipe.stages.pop_back();
  }
  pipe.fits = pipe.stage_count() <= model.max_stages && pipe.feasible;
  return pipe;
}

LayoutStats layout_stats(const ir::ProgramIR& ir, const ResourceModel& model,
                         DiagnosticEngine& diags) {
  LayoutStats stats;
  stats.unoptimized_stages = ir.total_longest_path();
  const Pipeline p = layout(ir, model, diags);
  stats.optimized_stages = p.stage_count();
  stats.ops_per_stage = p.ops_per_stage();
  stats.fits = p.fits;
  return stats;
}

}  // namespace lucid::opt
