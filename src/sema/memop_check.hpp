// Syntactic memop validation (paper section 4.2 and Appendix C).
//
// A memop is the only code allowed to run inside a single stateful ALU, so
// its body is restricted so that *every* valid memop is guaranteed to compile
// to one sALU instruction, in any Array method (get/set/update alike):
//
//   1. exactly two parameters (the stored cell and one local operand);
//   2. the body is a single `return expr;`, or a single `if` with exactly one
//      `return` in each of its two branches;
//   3. the condition is a single comparison between simple operands — no
//      compound conditionals (`&&`, `||`), matching Appendix C;
//   4. expressions are at most one ALU operation over simple operands
//      (variable or constant) — no nesting, no calls;
//   5. only ALU-supported operators: + - & | ^ in value expressions, and the
//      six comparisons in conditions (no * / % << >>, per Appendix C's
//      "multiply" example);
//   6. each variable is used at most once per expression.
//
// Violations produce source-level diagnostics with stable codes so tests (and
// programmers) can see exactly which rule failed and where.
#pragma once

#include <functional>

#include "frontend/ast.hpp"
#include "support/diagnostics.hpp"

namespace lucid::sema {

/// Returns true if `decl` is a valid memop. `is_const_name` tells the checker
/// which identifiers refer to compile-time constants (allowed as operands).
bool check_memop(const frontend::MemopDecl& decl,
                 const std::function<bool(std::string_view)>& is_const_name,
                 DiagnosticEngine& diags);

}  // namespace lucid::sema
