// The ordered type-and-effect system's effect language (paper section 5 and
// Appendix A).
//
// Every global array is assigned an integer *stage* by declaration order; the
// declaration order is the programmer's implicit layout specification. While
// checking a handler or function body we thread a *current stage* effect.
// Accessing array `g_i` requires `cur <= i` and continues at `i + 1`.
//
// To check functions separately from their call sites (the paper's key
// simplification over prior ordered type systems), effects are symbolic:
//
//   atom   ::=  k  |  alpha + k          (concrete stage, or stage var + k)
//   term   ::=  max(atom, ..., atom)     (join of control-flow paths)
//   constraint ::=  term <= atom
//
// A function's effect signature introduces one stage variable per Array
// parameter plus a start variable sigma; its body yields a set of constraints
// and an end term. Call sites substitute atoms for variables (an Array
// argument is always a single array, so the right-hand side of a constraint
// stays atomic) and re-check. Constraints whose variables are all concrete
// are decided immediately, producing the paper's source-level ordering
// diagnostics.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "support/source_location.hpp"

namespace lucid::sema {

using EffectVar = int;  // index into a checker-owned variable table

/// `var + offset` when var >= 0, otherwise the concrete stage `offset`.
struct StageAtom {
  EffectVar var = -1;
  int offset = 0;
  // Provenance for diagnostics: which access produced this stage.
  std::string origin;  // e.g. "access to 'arr2'"
  SrcRange site;

  [[nodiscard]] bool concrete() const { return var < 0; }
  static StageAtom concrete_at(int stage, std::string origin = {},
                               SrcRange site = {}) {
    return StageAtom{-1, stage, std::move(origin), site};
  }
  static StageAtom var_at(EffectVar v, int offset = 0, std::string origin = {},
                          SrcRange site = {}) {
    return StageAtom{v, offset, std::move(origin), site};
  }
  [[nodiscard]] std::string str() const;
};

/// max() over atoms. Invariant: never empty.
struct EffectTerm {
  std::vector<StageAtom> atoms;

  static EffectTerm at(StageAtom a) { return EffectTerm{{std::move(a)}}; }
  static EffectTerm concrete(int stage) {
    return at(StageAtom::concrete_at(stage));
  }

  /// Join of two control-flow paths: max of both sets, deduplicated and with
  /// dominated concrete atoms removed.
  [[nodiscard]] EffectTerm join(const EffectTerm& other) const;

  /// Add `delta` to every atom (used for "stage + 1 after access").
  [[nodiscard]] EffectTerm plus(int delta) const;

  /// If the term mentions no variables, its concrete value.
  [[nodiscard]] std::optional<int> concrete_value() const;

  [[nodiscard]] std::string str() const;
};

/// `lhs <= rhs`. `why` describes the access being guarded (for diagnostics).
struct EffectConstraint {
  EffectTerm lhs;
  StageAtom rhs;
  std::string why;
  SrcRange site;
};

/// Effect signature of a function: stage variables for its Array parameters,
/// a start variable, accumulated constraints, and the end term.
struct FunEffectSig {
  std::vector<EffectVar> param_vars;  // one slot per parameter; -1 if not Array
  EffectVar start_var = -1;
  EffectTerm end = EffectTerm::concrete(0);
  std::vector<EffectConstraint> constraints;
};

/// A substitution maps effect variables to atoms (array params) or to a whole
/// term (the start variable).
struct EffectSubst {
  std::vector<std::optional<StageAtom>> atom_for_var;
  EffectVar start_var = -1;
  EffectTerm start_term = EffectTerm::concrete(0);

  [[nodiscard]] EffectTerm apply(const EffectTerm& t) const;
  /// RHS atoms stay atomic: the start variable never appears on a constraint
  /// RHS, and array-param variables substitute to single atoms.
  [[nodiscard]] StageAtom apply_rhs(const StageAtom& a) const;
};

/// Evaluates `c` if fully concrete. Returns nullopt when variables remain
/// (the constraint must be propagated to the caller), true/false otherwise.
[[nodiscard]] std::optional<bool> evaluate(const EffectConstraint& c);

}  // namespace lucid::sema
