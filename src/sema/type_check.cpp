#include "sema/type_check.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <set>
#include <vector>

#include "frontend/parser.hpp"
#include "obs/trace.hpp"
#include "sema/memop_check.hpp"
#include "support/parallel.hpp"

namespace lucid::sema {

using namespace frontend;

// ---------------------------------------------------------------------------
// Constant evaluation
// ---------------------------------------------------------------------------

bool const_eval(const Expr& e, const std::map<std::string, std::int64_t>& env,
                std::int64_t& out) {
  switch (e.kind) {
    case ExprKind::IntLit:
      out = static_cast<std::int64_t>(e.as<IntLitExpr>()->value);
      return true;
    case ExprKind::BoolLit:
      out = e.as<BoolLitExpr>()->value ? 1 : 0;
      return true;
    case ExprKind::VarRef: {
      const auto it = env.find(e.as<VarRefExpr>()->name);
      if (it == env.end()) return false;
      out = it->second;
      return true;
    }
    case ExprKind::Unary: {
      const auto* u = e.as<UnaryExpr>();
      std::int64_t v = 0;
      if (!const_eval(*u->sub, env, v)) return false;
      switch (u->op) {
        case UnOp::Neg: out = -v; return true;
        case UnOp::BitNot: out = ~v; return true;
        case UnOp::Not: out = v == 0 ? 1 : 0; return true;
      }
      return false;
    }
    case ExprKind::Binary: {
      const auto* b = e.as<BinaryExpr>();
      std::int64_t l = 0;
      std::int64_t r = 0;
      if (!const_eval(*b->lhs, env, l) || !const_eval(*b->rhs, env, r)) {
        return false;
      }
      switch (b->op) {
        case BinOp::Add: out = l + r; return true;
        case BinOp::Sub: out = l - r; return true;
        case BinOp::Mul: out = l * r; return true;
        case BinOp::Div:
          if (r == 0) return false;
          out = l / r;
          return true;
        case BinOp::Mod:
          if (r == 0) return false;
          out = l % r;
          return true;
        case BinOp::BitAnd: out = l & r; return true;
        case BinOp::BitOr: out = l | r; return true;
        case BinOp::BitXor: out = l ^ r; return true;
        case BinOp::Shl: out = l << r; return true;
        case BinOp::Shr: out = l >> r; return true;
        case BinOp::Eq: out = l == r; return true;
        case BinOp::Ne: out = l != r; return true;
        case BinOp::Lt: out = l < r; return true;
        case BinOp::Gt: out = l > r; return true;
        case BinOp::Le: out = l <= r; return true;
        case BinOp::Ge: out = l >= r; return true;
        case BinOp::LAnd: out = (l != 0 && r != 0); return true;
        case BinOp::LOr: out = (l != 0 || r != 0); return true;
      }
      return false;
    }
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Checker implementation
// ---------------------------------------------------------------------------

namespace {

struct FunInfo {
  FunDecl* decl = nullptr;
  FunEffectSig sig;
  bool checked = false;
  bool in_progress = false;  // recursion detection
};

class Checker {
 public:
  Checker(Program& program, DiagnosticEngine& diags, AnalysisInfo& info,
          const SemaReuse* reuse, int workers)
      : program_(program), diags_(diags), info_(info), reuse_(reuse),
        workers_(workers) {}

  bool run();

  [[nodiscard]] std::size_t decls_reused() const { return decls_reused_; }

 private:
  // ---- symbol collection -------------------------------------------------
  void collect_decls();
  void eval_consts_and_globals();
  void prepare_reuse();

  [[nodiscard]] bool is_const_name(std::string_view name) const {
    return consts_.count(std::string(name)) > 0 || name == "SELF";
  }

  // ---- body checking context ----------------------------------------------
  struct Ctx {
    std::vector<std::map<std::string, Type>> scopes;
    EffectTerm cur = EffectTerm::concrete(0);
    // Non-null while checking a `fun`: constraints involving free variables
    // are recorded here instead of being evaluated.
    FunEffectSig* sig = nullptr;
    // Array-typed parameter name -> effect var (fun checking only).
    std::map<std::string, EffectVar> array_params;
    Type return_type = Type::void_ty();
    bool in_handler = false;
    std::string owner;  // handler/fun name for diagnostics
    // Diagnostics sink + error flag for this checking context. Serial phases
    // point at the compilation's engine; parallel per-decl tasks each get a
    // private engine whose diagnostics are merged back in task order, so
    // output is deterministic regardless of worker interleaving.
    DiagnosticEngine* diags = nullptr;
    bool ok = true;
  };

  void push_scope(Ctx& ctx) { ctx.scopes.emplace_back(); }
  void pop_scope(Ctx& ctx) { ctx.scopes.pop_back(); }
  bool define_local(Ctx& ctx, const std::string& name, Type t, SrcRange r);
  [[nodiscard]] const Type* lookup_local(const Ctx& ctx,
                                         const std::string& name) const;

  // ---- effects -------------------------------------------------------------
  EffectVar fresh_var() { return next_var_++; }
  void emit_or_check(Ctx& ctx, EffectConstraint c);
  void apply_access(Ctx& ctx, const StageAtom& target, SrcRange site,
                    const std::string& desc);
  std::optional<StageAtom> array_atom(Ctx& ctx, Expr& e);

  // ---- expressions ----------------------------------------------------------
  Type check_expr(Ctx& ctx, Expr& e, int expected_width = -1);
  Type check_var_ref(Ctx& ctx, VarRefExpr& e, int expected_width);
  Type check_binary(Ctx& ctx, BinaryExpr& e, int expected_width);
  Type check_call(Ctx& ctx, CallExpr& e);
  Type check_array_call(Ctx& ctx, CallExpr& e);
  Type check_event_combinator(Ctx& ctx, CallExpr& e);
  bool check_memop_arg(Ctx& ctx, Expr& e, const GlobalDecl* array_hint);

  // ---- statements ------------------------------------------------------------
  /// Returns true when the block definitely returns (so its end effect must
  /// not flow into a join after an enclosing if).
  bool check_block(Ctx& ctx, Block& b);
  bool check_stmt(Ctx& ctx, Stmt& s);

  // ---- declarations ------------------------------------------------------------
  void check_fun(FunInfo& fi);
  void check_handler(HandlerDecl& h, DiagnosticEngine& diags, bool& ok,
                     std::optional<int>& end_stage);
  void check_bodies();

  Program& program_;
  DiagnosticEngine& diags_;
  AnalysisInfo& info_;

  std::map<std::string, ConstDecl*> consts_;
  std::map<std::string, std::int64_t> const_env_;
  std::map<std::string, GlobalDecl*> globals_;
  std::map<std::string, GroupDecl*> groups_;
  std::map<std::string, MemopDecl*> memops_;
  std::map<std::string, FunInfo> funs_;
  std::map<std::string, EventDecl*> events_;
  std::map<std::string, HandlerDecl*> handlers_;

  // Incremental reuse (see SemaReuse): decls whose body check is skipped
  // this run because their annotations were mirror-copied from the previous
  // compile.
  const SemaReuse* reuse_ = nullptr;
  std::set<const Decl*> skip_body_;
  std::size_t decls_reused_ = 0;

  EffectVar next_var_ = 0;
  int workers_ = 1;
  bool ok_ = true;
};

bool Checker::run() {
  // Success means *this* pass added no errors; diagnostics already on the
  // engine (e.g. from an unrelated earlier emit attempt) are not ours.
  const std::size_t errors_at_entry = diags_.error_count();
  collect_decls();
  eval_consts_and_globals();
  prepare_reuse();

  // Functions first (serially, on the compilation's engine): fun signatures
  // are demanded by call sites, and force-checking them all here means no
  // parallel task ever re-enters check_fun. Reused funs arrive pre-checked
  // (prepare_reuse seeded their signatures).
  for (auto& [name, fi] : funs_) {
    if (!fi.checked) check_fun(fi);
  }

  // Memop and handler bodies are mutually independent once the symbol maps,
  // const environment, and fun signatures are in — fan them out.
  check_bodies();

  return ok_ && diags_.error_count() == errors_at_entry;
}

void Checker::check_bodies() {
  // Tasks in the serial checking order — memops in map (name) order, then
  // handlers in declaration order — so the merged diagnostic stream is
  // byte-identical to a serial check at any worker count.
  struct Task {
    MemopDecl* memop = nullptr;
    HandlerDecl* handler = nullptr;
  };
  struct TaskOut {
    DiagnosticEngine diags;
    bool ok = true;
    std::optional<int> end_stage;
  };
  std::vector<Task> tasks;
  for (auto& [name, m] : memops_) {
    if (skip_body_.count(m) != 0) continue;  // validated in the prior compile
    tasks.push_back(Task{m, nullptr});
  }
  for (auto& d : program_.decls) {
    if (d->kind == DeclKind::Handler && skip_body_.count(d.get()) == 0) {
      tasks.push_back(Task{nullptr, d->as<HandlerDecl>()});
    }
  }

  std::vector<TaskOut> outs(tasks.size());
  std::atomic<int> failed{0};
  parallel_for(tasks.size(), workers_, [&](std::size_t i) {
    const Task& t = tasks[i];
    TaskOut& out = outs[i];
    if (t.memop != nullptr) {
      obs::ScopedSpan span("sema", "check_memop");
      span.arg("decl", std::string_view(t.memop->name));
      out.ok = check_memop(
          *t.memop, [this](std::string_view n) { return is_const_name(n); },
          out.diags);
    } else {
      obs::ScopedSpan span("sema", "check_handler");
      span.arg("decl", std::string_view(t.handler->name));
      check_handler(*t.handler, out.diags, out.ok, out.end_stage);
    }
    if (!out.ok) failed.fetch_add(1, std::memory_order_relaxed);
  });

  // Deterministic merge, in task order.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    TaskOut& out = outs[i];
    for (const Diagnostic& d : out.diags.all()) {
      diags_.add(d.severity, d.range, d.code, d.message);
    }
    if (tasks[i].handler != nullptr && out.end_stage.has_value()) {
      info_.handler_end_stage[tasks[i].handler->name] = *out.end_stage;
    }
  }
  if (failed.load(std::memory_order_relaxed) != 0) ok_ = false;
}

void Checker::prepare_reuse() {
  if (reuse_ == nullptr || reuse_->prev == nullptr ||
      reuse_->prev_info == nullptr) {
    return;
  }
  const Program& prev = *reuse_->prev;
  const AnalysisInfo& prev_info = *reuse_->prev_info;

  const auto bump_vars = [this](const StageAtom& a) {
    if (a.var >= next_var_) next_var_ = a.var + 1;
  };
  const auto bump_sig = [&](const FunEffectSig& sig) {
    if (sig.start_var >= next_var_) next_var_ = sig.start_var + 1;
    for (const EffectVar v : sig.param_vars) {
      if (v >= next_var_) next_var_ = v + 1;
    }
    for (const StageAtom& a : sig.end.atoms) bump_vars(a);
    for (const EffectConstraint& c : sig.constraints) {
      for (const StageAtom& a : c.lhs.atoms) bump_vars(a);
      bump_vars(c.rhs);
    }
  };

  for (std::size_t i = 0;
       i < program_.decls.size() && i < reuse_->reuse_from.size(); ++i) {
    const int j = reuse_->reuse_from[i];
    if (j < 0 || static_cast<std::size_t>(j) >= prev.decls.size()) continue;
    Decl& d = *program_.decls[i];
    const Decl& p = *prev.decls[static_cast<std::size_t>(j)];
    bool applied = false;
    // A spliced decl IS the previous node (incremental parse shares the
    // pointer): its annotations are already in place, so the mirror copy is
    // skipped — copying onto itself would be a pointless self-write on a
    // node another compilation may be reading.
    const bool same_node = &p == &d;
    switch (d.kind) {
      case DeclKind::Memop:
        applied = same_node || copy_annotations(p, d);
        if (applied) skip_body_.insert(&d);
        break;
      case DeclKind::Fun: {
        const auto sig = prev_info.fun_sigs.find(d.name);
        const auto fit = funs_.find(d.name);
        if (sig != prev_info.fun_sigs.end() && fit != funs_.end() &&
            fit->second.decl == &d && (same_node || copy_annotations(p, d))) {
          fit->second.sig = sig->second;
          fit->second.checked = true;
          info_.fun_sigs[d.name] = sig->second;
          // Fresh variables allocated for re-checked decls must not collide
          // with the ones baked into reused signatures.
          bump_sig(sig->second);
          applied = true;
        }
        break;
      }
      case DeclKind::Handler:
        applied = same_node || copy_annotations(p, d);
        if (applied) {
          skip_body_.insert(&d);
          const auto end = prev_info.handler_end_stage.find(d.name);
          if (end != prev_info.handler_end_stage.end()) {
            info_.handler_end_stage[d.name] = end->second;
          }
        }
        break;
      case DeclKind::Const:
      case DeclKind::Global:
      case DeclKind::Event:
      case DeclKind::Group:
        // Header-only decls: collect_decls/eval_consts_and_globals already
        // recomputed their annotations natively (and cheaply).
        applied = true;
        break;
    }
    if (applied) ++decls_reused_;
  }
}

void Checker::collect_decls() {
  std::set<std::string> names;
  int next_event_id = 0;
  int next_stage = 0;
  for (auto& d : program_.decls) {
    // Handlers share their event's name; everything else must be unique.
    if (d->kind != DeclKind::Handler && !names.insert(d->name).second) {
      diags_.error(d->range, "sema-duplicate-name",
                   "duplicate declaration of '" + d->name + "'");
      ok_ = false;
      continue;
    }
    switch (d->kind) {
      case DeclKind::Const:
        consts_[d->name] = d->as<ConstDecl>();
        break;
      case DeclKind::Global: {
        auto* g = d->as<GlobalDecl>();
        // Spliced decls are shared with the previous compilation — only
        // write the annotation when it actually changes (an unchanged
        // ordinal is the common case; a changed one means the planner
        // already dirtied + un-shared the decl).
        const int stage = next_stage++;
        if (g->stage_index != stage) g->stage_index = stage;
        globals_[d->name] = g;
        break;
      }
      case DeclKind::Group:
        groups_[d->name] = d->as<GroupDecl>();
        break;
      case DeclKind::Memop:
        memops_[d->name] = d->as<MemopDecl>();
        break;
      case DeclKind::Fun:
        funs_[d->name].decl = d->as<FunDecl>();
        break;
      case DeclKind::Event: {
        auto* e = d->as<EventDecl>();
        const int id = next_event_id++;
        if (e->event_id != id) e->event_id = id;
        events_[d->name] = e;
        break;
      }
      case DeclKind::Handler: {
        auto* h = d->as<HandlerDecl>();
        if (handlers_.count(d->name) != 0) {
          diags_.error(d->range, "sema-duplicate-handler",
                       "duplicate handler for event '" + d->name + "'");
          ok_ = false;
        } else {
          handlers_[d->name] = h;
        }
        break;
      }
    }
  }
}

void Checker::eval_consts_and_globals() {
  // Consts are evaluated in declaration order so they may reference earlier
  // consts.
  for (auto& d : program_.decls) {
    if (d->kind == DeclKind::Const) {
      auto* c = d->as<ConstDecl>();
      std::int64_t v = 0;
      if (!const_eval(*c->value, const_env_, v)) {
        diags_.error(c->value->range, "sema-not-constant",
                     "const initializer for '" + c->name +
                         "' is not a compile-time constant");
        ok_ = false;
        continue;
      }
      if (c->resolved_value != v) c->resolved_value = v;
      const_env_[c->name] = v;
    } else if (d->kind == DeclKind::Global) {
      auto* g = d->as<GlobalDecl>();
      std::int64_t v = 0;
      if (!const_eval(*g->size, const_env_, v) || v <= 0) {
        diags_.error(g->size->range, "sema-bad-array-size",
                     "array size for '" + g->name +
                         "' must be a positive compile-time constant");
        ok_ = false;
        continue;
      }
      if (g->resolved_size != v) g->resolved_size = v;
    } else if (d->kind == DeclKind::Group) {
      auto* grp = d->as<GroupDecl>();
      std::vector<std::int64_t> members;
      for (auto& m : grp->members) {
        std::int64_t v = 0;
        if (!const_eval(*m, const_env_, v)) {
          diags_.error(m->range, "sema-not-constant",
                       "group members must be compile-time constants");
          ok_ = false;
          continue;
        }
        members.push_back(v);
      }
      if (grp->resolved_members != members) {
        grp->resolved_members = std::move(members);
      }
    }
  }
}

bool Checker::define_local(Ctx& ctx, const std::string& name, Type t,
                           SrcRange r) {
  if (globals_.count(name) || consts_.count(name)) {
    ctx.diags->error(r, "sema-shadows-global",
                 "local '" + name + "' shadows a top-level declaration");
    ctx.ok = false;
    return false;
  }
  auto& scope = ctx.scopes.back();
  if (!scope.emplace(name, t).second) {
    ctx.diags->error(r, "sema-redefined",
                 "'" + name + "' is already defined in this scope");
    ctx.ok = false;
    return false;
  }
  return true;
}

const Type* Checker::lookup_local(const Ctx& ctx,
                                  const std::string& name) const {
  for (auto it = ctx.scopes.rbegin(); it != ctx.scopes.rend(); ++it) {
    const auto found = it->find(name);
    if (found != it->end()) return &found->second;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Effects
// ---------------------------------------------------------------------------

void Checker::emit_or_check(Ctx& ctx, EffectConstraint c) {
  const auto verdict = evaluate(c);
  if (verdict.has_value()) {
    if (!*verdict) {
      // Find the offending atom for a two-sided diagnostic, the paper's
      // "specific lines of code in conflict".
      const StageAtom* blame = nullptr;
      for (const auto& a : c.lhs.atoms) {
        if (a.concrete() && a.offset > c.rhs.offset) {
          if (!blame || a.offset > blame->offset) blame = &a;
        }
      }
      std::string msg = "in '" + ctx.owner + "': " + c.why +
                        " is out of order: the pipeline is already past "
                        "stage " +
                        std::to_string(c.rhs.offset) +
                        " (current stage term: " + c.lhs.str() +
                        "); globals must be accessed in declaration order "
                        "(section 5)";
      ctx.diags->error(c.site, "effect-out-of-order", std::move(msg));
      if (blame && blame->site.valid()) {
        ctx.diags->note(blame->site, "effect-prior-access",
                    "the conflicting earlier " +
                        (blame->origin.empty() ? std::string("access")
                                               : blame->origin) +
                        " is here");
      }
      ctx.ok = false;
    }
    return;
  }
  // Still symbolic: legal only while checking a fun; record for call sites.
  if (ctx.sig != nullptr) {
    ctx.sig->constraints.push_back(std::move(c));
  } else {
    ctx.diags->error(c.site, "effect-unresolved",
                 "internal: unresolved effect constraint in handler context");
    ctx.ok = false;
  }
}

void Checker::apply_access(Ctx& ctx, const StageAtom& target, SrcRange site,
                           const std::string& desc) {
  EffectConstraint c;
  c.lhs = ctx.cur;
  c.rhs = target;
  c.why = desc;
  c.site = site;
  emit_or_check(ctx, std::move(c));

  StageAtom next = target;
  next.offset += 1;
  next.origin = desc;
  next.site = site;
  ctx.cur = EffectTerm::at(next);
}

std::optional<StageAtom> Checker::array_atom(Ctx& ctx, Expr& e) {
  if (e.kind != ExprKind::VarRef) {
    ctx.diags->error(e.range, "sema-array-operand",
                 "the first argument of an Array method must name a global "
                 "array or an Array parameter");
    ctx.ok = false;
    return std::nullopt;
  }
  auto* ref = e.as<VarRefExpr>();
  if (const auto it = globals_.find(ref->name); it != globals_.end()) {
    ref->is_global_array = true;
    e.type = Type::array_ty(it->second->width);
    return StageAtom::concrete_at(it->second->stage_index,
                                  "access to array '" + ref->name + "'",
                                  e.range);
  }
  if (const auto it = ctx.array_params.find(ref->name);
      it != ctx.array_params.end()) {
    const Type* t = lookup_local(ctx, ref->name);
    e.type = t ? *t : Type::array_ty(32);
    return StageAtom::var_at(it->second, 0,
                             "access to array parameter '" + ref->name + "'",
                             e.range);
  }
  ctx.diags->error(e.range, "sema-unknown-array",
               "'" + ref->name + "' is not a global array" +
                   (ctx.sig ? " or Array parameter" : ""));
  ctx.ok = false;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Type Checker::check_expr(Ctx& ctx, Expr& e, int expected_width) {
  switch (e.kind) {
    case ExprKind::IntLit: {
      auto* lit = e.as<IntLitExpr>();
      e.type = Type::int_ty(expected_width > 0 ? expected_width : 32);
      (void)lit;
      return e.type;
    }
    case ExprKind::BoolLit:
      e.type = Type::bool_ty();
      return e.type;
    case ExprKind::VarRef:
      return check_var_ref(ctx, *e.as<VarRefExpr>(), expected_width);
    case ExprKind::Unary: {
      auto* u = e.as<UnaryExpr>();
      const Type sub = check_expr(ctx, *u->sub, expected_width);
      if (u->op == UnOp::Not) {
        if (!sub.is_bool()) {
          ctx.diags->error(e.range, "type-expected-bool",
                       "'!' requires a bool operand, found " + sub.str());
          ctx.ok = false;
        }
        e.type = Type::bool_ty();
      } else {
        if (!sub.is_int()) {
          ctx.diags->error(e.range, "type-expected-int",
                       std::string(unop_name(u->op)) +
                           " requires an int operand, found " + sub.str());
          ctx.ok = false;
        }
        e.type = sub.is_int() ? sub : Type::int_ty();
      }
      return e.type;
    }
    case ExprKind::Binary:
      return check_binary(ctx, *e.as<BinaryExpr>(), expected_width);
    case ExprKind::Call:
      return check_call(ctx, *e.as<CallExpr>());
  }
  e.type = Type::unknown();
  return e.type;
}

Type Checker::check_var_ref(Ctx& ctx, VarRefExpr& e, int expected_width) {
  if (const Type* t = lookup_local(ctx, e.name)) {
    e.type = *t;
    return e.type;
  }
  if (const auto it = consts_.find(e.name); it != consts_.end()) {
    e.is_const = true;
    e.const_value = it->second->resolved_value;
    e.type = it->second->declared_type.is_int() && expected_width > 0
                 ? Type::int_ty(it->second->declared_type.width)
                 : it->second->declared_type;
    return e.type;
  }
  if (e.name == "SELF") {
    // The executing switch's id; bound by the runtime / event scheduler.
    e.type = Type::int_ty(32);
    return e.type;
  }
  if (const auto it = globals_.find(e.name); it != globals_.end()) {
    e.is_global_array = true;
    e.type = Type::array_ty(it->second->width);
    return e.type;
  }
  if (groups_.count(e.name)) {
    e.is_group = true;
    e.type = Type::group_ty();
    return e.type;
  }
  if (memops_.count(e.name)) {
    e.is_memop_ref = true;
    e.type = Type::unknown();  // only meaningful in Array-call positions
    return e.type;
  }
  ctx.diags->error(e.range, "sema-undefined",
               "use of undefined name '" + e.name + "'");
  ctx.ok = false;
  e.type = Type::unknown();
  return e.type;
}

Type Checker::check_binary(Ctx& ctx, BinaryExpr& e, int expected_width) {
  if (binop_is_logical(e.op)) {
    const Type l = check_expr(ctx, *e.lhs);
    const Type r = check_expr(ctx, *e.rhs);
    if (!l.is_bool() || !r.is_bool()) {
      ctx.diags->error(e.range, "type-expected-bool",
                   std::string(binop_name(e.op)) +
                       " requires bool operands, found " + l.str() + " and " +
                       r.str());
      ctx.ok = false;
    }
    e.type = Type::bool_ty();
    return e.type;
  }

  const int want = binop_is_comparison(e.op) ? -1 : expected_width;
  Type l = check_expr(ctx, *e.lhs, want);
  Type r = check_expr(ctx, *e.rhs,
                      l.is_int() && e.lhs->kind != ExprKind::IntLit ? l.width
                                                                    : want);
  // Literal operands conform to the other side's width.
  if (l.is_int() && r.is_int() && l.width != r.width) {
    if (e.lhs->kind == ExprKind::IntLit) {
      e.lhs->type = Type::int_ty(r.width);
      l = e.lhs->type;
    } else if (e.rhs->kind == ExprKind::IntLit) {
      e.rhs->type = Type::int_ty(l.width);
      r = e.rhs->type;
    }
  }
  if (!l.is_int() || !r.is_int()) {
    ctx.diags->error(e.range, "type-expected-int",
                 std::string(binop_name(e.op)) +
                     " requires int operands, found " + l.str() + " and " +
                     r.str());
    ctx.ok = false;
  } else if (l.width != r.width) {
    ctx.diags->error(e.range, "type-width-mismatch",
                 "operand widths differ: " + l.str() + " vs " + r.str());
    ctx.ok = false;
  }
  e.type = binop_is_comparison(e.op) ? Type::bool_ty() : l;
  return e.type;
}

bool Checker::check_memop_arg(Ctx& ctx, Expr& e,
                              const GlobalDecl* array_hint) {
  (void)array_hint;
  if (e.kind != ExprKind::VarRef) {
    ctx.diags->error(e.range, "sema-expected-memop",
                 "expected a memop name in this argument position");
    ctx.ok = false;
    return false;
  }
  auto* ref = e.as<VarRefExpr>();
  const auto it = memops_.find(ref->name);
  if (it == memops_.end()) {
    ctx.diags->error(e.range, "sema-expected-memop",
                 "'" + ref->name + "' is not a declared memop");
    ctx.ok = false;
    return false;
  }
  ref->is_memop_ref = true;
  (void)ctx;
  return true;
}

Type Checker::check_array_call(Ctx& ctx, CallExpr& e) {
  const std::string& m = e.callee;
  const bool is_get = m == "Array.get" || m == "Array.getm";
  const bool is_set = m == "Array.set" || m == "Array.setm";
  const bool is_update = m == "Array.update";
  const bool memop_required = m == "Array.getm" || m == "Array.setm";

  if (e.args.empty()) {
    ctx.diags->error(e.range, "sema-arity", m + " requires arguments");
    ctx.ok = false;
    e.type = Type::unknown();
    return e.type;
  }

  const auto atom = array_atom(ctx, *e.args[0]);
  // Determine the cell width for value/argument checking.
  int cell_width = 32;
  const GlobalDecl* gd = nullptr;
  if (e.args[0]->kind == ExprKind::VarRef) {
    if (const auto it = globals_.find(e.args[0]->as<VarRefExpr>()->name);
        it != globals_.end()) {
      gd = it->second;
      cell_width = gd->width;
    } else if (e.args[0]->type.kind == TypeKind::Array) {
      cell_width = e.args[0]->type.width;
    }
  }

  // Index argument.
  if (e.args.size() < 2) {
    ctx.diags->error(e.range, "sema-arity", m + " requires an index argument");
    ctx.ok = false;
    e.type = Type::unknown();
    return e.type;
  }
  const Type idx_t = check_expr(ctx, *e.args[1]);
  if (!idx_t.is_int()) {
    ctx.diags->error(e.args[1]->range, "type-expected-int",
                 "array index must be an int, found " + idx_t.str());
    ctx.ok = false;
  }

  auto check_value_at = [&](std::size_t i) {
    const Type t = check_expr(ctx, *e.args[i], cell_width);
    if (!t.is_int()) {
      ctx.diags->error(e.args[i]->range, "type-expected-int",
                   "array operand must be an int, found " + t.str());
      ctx.ok = false;
    }
  };

  if (is_get) {
    e.resolved = m == "Array.get" ? CallKind::ArrayGet : CallKind::ArrayGetm;
    if (e.args.size() == 2) {
      if (memop_required) {
        ctx.diags->error(e.range, "sema-arity",
                     "Array.getm requires a memop and argument "
                     "(use Array.get for a plain read)");
        ctx.ok = false;
      }
    } else if (e.args.size() == 4) {
      if (check_memop_arg(ctx, *e.args[2], gd)) check_value_at(3);
    } else {
      ctx.diags->error(e.range, "sema-arity",
                   m + " takes (array, index) or (array, index, memop, arg)");
      ctx.ok = false;
    }
    e.type = Type::int_ty(cell_width);
  } else if (is_set) {
    e.resolved = m == "Array.set" ? CallKind::ArraySet : CallKind::ArraySetm;
    if (e.args.size() == 3) {
      if (memop_required) {
        ctx.diags->error(e.range, "sema-arity",
                     "Array.setm requires a memop and argument "
                     "(use Array.set for a plain write)");
        ctx.ok = false;
      } else {
        check_value_at(2);
      }
    } else if (e.args.size() == 4) {
      if (check_memop_arg(ctx, *e.args[2], gd)) check_value_at(3);
    } else {
      ctx.diags->error(e.range, "sema-arity",
                   m + " takes (array, index, value) or (array, index, "
                       "memop, arg)");
      ctx.ok = false;
    }
    e.type = Type::void_ty();
  } else if (is_update) {
    e.resolved = CallKind::ArrayUpdate;
    if (e.args.size() == 6) {
      const bool get_ok = check_memop_arg(ctx, *e.args[2], gd);
      if (get_ok) check_value_at(3);
      const bool set_ok = check_memop_arg(ctx, *e.args[4], gd);
      if (set_ok) check_value_at(5);
    } else {
      ctx.diags->error(e.range, "sema-arity",
                   "Array.update takes (array, index, get_memop, get_arg, "
                   "set_memop, set_arg)");
      ctx.ok = false;
    }
    e.type = Type::int_ty(cell_width);
  } else {
    ctx.diags->error(e.range, "sema-unknown-builtin",
                 "unknown Array method '" + m + "'");
    ctx.ok = false;
    e.type = Type::unknown();
    return e.type;
  }

  // The stateful access itself: one sALU visit, in declaration order.
  if (atom) {
    apply_access(ctx, *atom, e.range, atom->origin);
  }
  return e.type;
}

Type Checker::check_event_combinator(Ctx& ctx, CallExpr& e) {
  if (e.args.size() != 2) {
    ctx.diags->error(e.range, "sema-arity",
                 e.callee + " takes (event, argument)");
    ctx.ok = false;
    e.type = Type::event_ty();
    return e.type;
  }
  const Type ev = check_expr(ctx, *e.args[0]);
  if (!ev.is_event()) {
    ctx.diags->error(e.args[0]->range, "type-expected-event",
                 e.callee + " expects an event, found " + ev.str());
    ctx.ok = false;
  }
  if (e.callee == "Event.delay") {
    e.resolved = CallKind::EventDelay;
    const Type t = check_expr(ctx, *e.args[1]);
    if (!t.is_int()) {
      ctx.diags->error(e.args[1]->range, "type-expected-int",
                   "Event.delay expects a time in ns, found " + t.str());
      ctx.ok = false;
    }
  } else {
    e.resolved = CallKind::EventLocate;
    const Type t = check_expr(ctx, *e.args[1]);
    if (!t.is_int() && t.kind != TypeKind::Group) {
      ctx.diags->error(e.args[1]->range, "type-expected-location",
                   "Event.locate expects a switch id or group, found " +
                       t.str());
      ctx.ok = false;
    }
  }
  e.type = Type::event_ty();
  return e.type;
}

Type Checker::check_call(Ctx& ctx, CallExpr& e) {
  const std::string& name = e.callee;

  if (name.rfind("Array.", 0) == 0) return check_array_call(ctx, e);
  if (name == "Event.delay" || name == "Event.locate") {
    return check_event_combinator(ctx, e);
  }
  if (name == "Sys.time") {
    e.resolved = CallKind::SysTime;
    if (!e.args.empty()) {
      ctx.diags->error(e.range, "sema-arity", "Sys.time takes no arguments");
      ctx.ok = false;
    }
    e.type = Type::int_ty(32);
    return e.type;
  }
  if (name == "Sys.self") {
    e.resolved = CallKind::SysSelf;
    if (!e.args.empty()) {
      ctx.diags->error(e.range, "sema-arity", "Sys.self takes no arguments");
      ctx.ok = false;
    }
    e.type = Type::int_ty(32);
    return e.type;
  }
  if (name == "hash") {
    e.resolved = CallKind::Hash;
    if (e.args.empty()) {
      ctx.diags->error(e.range, "sema-arity",
                   "hash takes a seed and at least one value");
      ctx.ok = false;
    }
    for (auto& a : e.args) {
      const Type t = check_expr(ctx, *a);
      if (!t.is_int()) {
        ctx.diags->error(a->range, "type-expected-int",
                     "hash arguments must be ints, found " + t.str());
        ctx.ok = false;
      }
    }
    e.type = Type::int_ty(32);
    return e.type;
  }

  // Event constructor.
  if (const auto it = events_.find(name); it != events_.end()) {
    e.resolved = CallKind::EventCtor;
    const auto& params = it->second->params;
    if (e.args.size() != params.size()) {
      ctx.diags->error(e.range, "sema-arity",
                   "event '" + name + "' takes " +
                       std::to_string(params.size()) + " arguments, found " +
                       std::to_string(e.args.size()));
      ctx.ok = false;
    }
    for (std::size_t i = 0; i < e.args.size() && i < params.size(); ++i) {
      const Type t = check_expr(ctx, *e.args[i], params[i].type.width);
      if (!(t == params[i].type) &&
          !(t.is_int() && params[i].type.is_int() &&
            e.args[i]->kind == ExprKind::IntLit)) {
        ctx.diags->error(e.args[i]->range, "type-event-arg",
                     "argument " + std::to_string(i + 1) + " of event '" +
                         name + "' expects " + params[i].type.str() +
                         ", found " + t.str());
        ctx.ok = false;
      }
    }
    e.type = Type::event_ty();
    return e.type;
  }

  // User function call.
  if (const auto it = funs_.find(name); it != funs_.end()) {
    FunInfo& fi = it->second;
    e.resolved = CallKind::UserFun;
    if (fi.in_progress) {
      ctx.diags->error(e.range, "sema-recursion",
                   "recursive functions are not supported in the data plane; "
                   "use a recursive event instead (section 3.1)");
      ctx.ok = false;
      e.type = fi.decl->return_type;
      return e.type;
    }
    if (!fi.checked) check_fun(fi);

    const auto& params = fi.decl->params;
    if (e.args.size() != params.size()) {
      ctx.diags->error(e.range, "sema-arity",
                   "function '" + name + "' takes " +
                       std::to_string(params.size()) + " arguments, found " +
                       std::to_string(e.args.size()));
      ctx.ok = false;
      e.type = fi.decl->return_type;
      return e.type;
    }

    // Build the effect substitution while checking argument types.
    EffectSubst subst;
    subst.atom_for_var.resize(static_cast<std::size_t>(next_var_));
    subst.start_var = fi.sig.start_var;
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      if (params[i].type.kind == TypeKind::Array) {
        const auto atom = array_atom(ctx, *e.args[i]);
        if (atom) {
          const EffectVar v = fi.sig.param_vars[i];
          if (v >= 0) {
            if (static_cast<std::size_t>(v) >= subst.atom_for_var.size()) {
              subst.atom_for_var.resize(static_cast<std::size_t>(v) + 1);
            }
            subst.atom_for_var[static_cast<std::size_t>(v)] = *atom;
          }
        }
        if (e.args[i]->type.kind == TypeKind::Array &&
            e.args[i]->type.width != params[i].type.width) {
          ctx.diags->error(e.args[i]->range, "type-width-mismatch",
                       "array argument width " +
                           std::to_string(e.args[i]->type.width) +
                           " does not match parameter width " +
                           std::to_string(params[i].type.width));
          ctx.ok = false;
        }
      } else {
        const Type t = check_expr(ctx, *e.args[i], params[i].type.width);
        if (!(t == params[i].type) &&
            !(t.is_int() && params[i].type.is_int() &&
              e.args[i]->kind == ExprKind::IntLit)) {
          ctx.diags->error(e.args[i]->range, "type-fun-arg",
                       "argument " + std::to_string(i + 1) + " of '" + name +
                           "' expects " + params[i].type.str() + ", found " +
                           t.str());
          ctx.ok = false;
        }
      }
    }
    subst.start_term = ctx.cur;

    // Instantiate and discharge (or propagate) the callee's constraints.
    for (const auto& c : fi.sig.constraints) {
      EffectConstraint inst;
      inst.lhs = subst.apply(c.lhs);
      inst.rhs = subst.apply_rhs(c.rhs);
      inst.why = c.why + " (inside call to '" + name + "')";
      inst.site = e.range.valid() ? e.range : c.site;
      emit_or_check(ctx, std::move(inst));
    }
    ctx.cur = subst.apply(fi.sig.end);
    e.type = fi.decl->return_type;
    return e.type;
  }

  if (memops_.count(name)) {
    ctx.diags->error(e.range, "sema-memop-call",
                 "memop '" + name +
                     "' cannot be called directly; pass it to an Array "
                     "method (section 4.2)");
    ctx.ok = false;
    e.type = Type::unknown();
    return e.type;
  }

  ctx.diags->error(e.range, "sema-undefined",
               "call to undefined function or event '" + name + "'");
  ctx.ok = false;
  e.type = Type::unknown();
  return e.type;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

bool Checker::check_block(Ctx& ctx, Block& b) {
  push_scope(ctx);
  bool terminated = false;
  for (auto& s : b) {
    terminated = check_stmt(ctx, *s) || terminated;
  }
  pop_scope(ctx);
  return terminated;
}

bool Checker::check_stmt(Ctx& ctx, Stmt& s) {
  switch (s.kind) {
    case StmtKind::LocalDecl: {
      auto* d = s.as<LocalDeclStmt>();
      const Type t = check_expr(ctx, *d->init, d->declared_type.width);
      if (d->declared_type.kind == TypeKind::Event) {
        if (!t.is_event()) {
          ctx.diags->error(d->init->range, "type-expected-event",
                       "initializer must be an event, found " + t.str());
          ctx.ok = false;
        }
      } else if (d->declared_type.is_int()) {
        if (!t.is_int()) {
          ctx.diags->error(d->init->range, "type-expected-int",
                       "initializer must be an int, found " + t.str());
          ctx.ok = false;
        } else if (t.width != d->declared_type.width &&
                   d->init->kind != ExprKind::IntLit) {
          ctx.diags->error(d->init->range, "type-width-mismatch",
                       "initializer width " + std::to_string(t.width) +
                           " does not match declared width " +
                           std::to_string(d->declared_type.width));
          ctx.ok = false;
        }
      } else if (d->declared_type.is_bool()) {
        if (!t.is_bool()) {
          ctx.diags->error(d->init->range, "type-expected-bool",
                       "initializer must be a bool, found " + t.str());
          ctx.ok = false;
        }
      }
      define_local(ctx, d->name, d->declared_type, s.range);
      return false;
    }
    case StmtKind::Assign: {
      auto* a = s.as<AssignStmt>();
      const Type* t = lookup_local(ctx, a->name);
      if (t == nullptr) {
        ctx.diags->error(s.range, "sema-undefined",
                     "assignment to undefined variable '" + a->name + "'");
        ctx.ok = false;
        (void)check_expr(ctx, *a->value);
        return false;
      }
      const Type vt = check_expr(ctx, *a->value, t->width);
      if (t->is_int() && vt.is_int()) {
        if (t->width != vt.width && a->value->kind != ExprKind::IntLit) {
          ctx.diags->error(a->value->range, "type-width-mismatch",
                       "assignment width mismatch: " + t->str() + " vs " +
                           vt.str());
          ctx.ok = false;
        }
      } else if (!(vt == *t)) {
        ctx.diags->error(a->value->range, "type-mismatch",
                     "cannot assign " + vt.str() + " to " + t->str());
        ctx.ok = false;
      }
      return false;
    }
    case StmtKind::If: {
      auto* i = s.as<IfStmt>();
      const Type c = check_expr(ctx, *i->cond);
      if (!c.is_bool()) {
        ctx.diags->error(i->cond->range, "type-expected-bool",
                     "if condition must be a bool, found " + c.str());
        ctx.ok = false;
      }
      // Both branches are laid out in the pipeline (predicated execution):
      // they start at the same stage, and the join continues at the max —
      // but a branch that returns terminates its path, so its end effect
      // must not constrain the continuation.
      const EffectTerm entry = ctx.cur;
      const bool then_term = check_block(ctx, i->then_block);
      const EffectTerm after_then = ctx.cur;
      ctx.cur = entry;
      const bool else_term = check_block(ctx, i->else_block);
      const EffectTerm after_else = ctx.cur;
      if (then_term && else_term) {
        ctx.cur = entry;  // continuation unreachable
        return true;
      }
      if (then_term) {
        ctx.cur = after_else;
      } else if (else_term) {
        ctx.cur = after_then;
      } else {
        ctx.cur = after_then.join(after_else);
      }
      return false;
    }
    case StmtKind::ExprStmt:
      (void)check_expr(ctx, *s.as<ExprStmt>()->expr);
      return false;
    case StmtKind::Generate: {
      auto* g = s.as<GenerateStmt>();
      const Type t = check_expr(ctx, *g->event);
      if (!t.is_event()) {
        ctx.diags->error(g->event->range, "type-expected-event",
                     "generate expects an event, found " + t.str());
        ctx.ok = false;
      }
      return false;
    }
    case StmtKind::Return: {
      auto* r = s.as<ReturnStmt>();
      if (ctx.in_handler) {
        if (r->value) {
          ctx.diags->error(s.range, "type-handler-return",
                       "handlers do not return values");
          ctx.ok = false;
        }
        return true;
      }
      if (ctx.return_type.kind == TypeKind::Void) {
        if (r->value) {
          ctx.diags->error(s.range, "type-return-mismatch",
                       "void function returns a value");
          ctx.ok = false;
        }
      } else {
        if (!r->value) {
          ctx.diags->error(s.range, "type-return-mismatch",
                       "non-void function must return a value");
          ctx.ok = false;
        } else {
          const Type t = check_expr(ctx, *r->value, ctx.return_type.width);
          if (!(t == ctx.return_type) &&
              !(t.is_int() && ctx.return_type.is_int() &&
                r->value->kind == ExprKind::IntLit)) {
            ctx.diags->error(r->value->range, "type-return-mismatch",
                         "return type " + t.str() + " does not match " +
                             ctx.return_type.str());
            ctx.ok = false;
          }
        }
      }
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

void Checker::check_fun(FunInfo& fi) {
  fi.in_progress = true;
  FunDecl& f = *fi.decl;

  // Funs are only ever checked serially (run() forces them all before the
  // parallel body phase), so they report straight to the compilation engine.
  Ctx ctx;
  ctx.diags = &diags_;
  ctx.owner = f.name;
  ctx.sig = &fi.sig;
  ctx.return_type = f.return_type;
  push_scope(ctx);

  fi.sig.start_var = fresh_var();
  ctx.cur = EffectTerm::at(
      StageAtom::var_at(fi.sig.start_var, 0, "start of '" + f.name + "'"));

  fi.sig.param_vars.assign(f.params.size(), -1);
  for (std::size_t i = 0; i < f.params.size(); ++i) {
    const Param& p = f.params[i];
    if (p.type.kind == TypeKind::Array) {
      const EffectVar v = fresh_var();
      fi.sig.param_vars[i] = v;
      ctx.array_params[p.name] = v;
    }
    define_local(ctx, p.name, p.type, p.range);
  }

  check_block(ctx, f.body);
  fi.sig.end = ctx.cur;
  pop_scope(ctx);

  fi.in_progress = false;
  fi.checked = true;
  info_.fun_sigs[f.name] = fi.sig;
  if (!ctx.ok) ok_ = false;
}

void Checker::check_handler(HandlerDecl& h, DiagnosticEngine& diags, bool& ok,
                            std::optional<int>& end_stage) {
  Ctx ctx;
  ctx.diags = &diags;
  ctx.owner = h.name;
  ctx.in_handler = true;
  ctx.cur = EffectTerm::concrete(0);

  const auto ev = events_.find(h.name);
  if (ev == events_.end()) {
    ctx.diags->error(h.range, "sema-handler-without-event",
                 "handler '" + h.name + "' has no matching event declaration");
    ctx.ok = false;
  } else {
    const auto& ep = ev->second->params;
    if (ep.size() != h.params.size()) {
      ctx.diags->error(h.range, "sema-handler-signature",
                   "handler '" + h.name + "' takes " +
                       std::to_string(h.params.size()) +
                       " parameters but event declares " +
                       std::to_string(ep.size()));
      ctx.ok = false;
    } else {
      for (std::size_t i = 0; i < ep.size(); ++i) {
        if (!(ep[i].type == h.params[i].type)) {
          ctx.diags->error(h.params[i].range, "sema-handler-signature",
                       "parameter " + std::to_string(i + 1) + " of handler '" +
                           h.name + "' has type " + h.params[i].type.str() +
                           " but event declares " + ep[i].type.str());
          ctx.ok = false;
        }
      }
    }
  }

  push_scope(ctx);
  for (const Param& p : h.params) define_local(ctx, p.name, p.type, p.range);
  check_block(ctx, h.body);
  pop_scope(ctx);

  if (const auto end = ctx.cur.concrete_value()) {
    end_stage = *end;
  }
  if (!ctx.ok) ok = false;
}

}  // namespace

bool TypeChecker::check(Program& program, const SemaReuse* reuse) {
  info_ = AnalysisInfo{};
  decls_reused_ = 0;
  Checker checker(program, diags_, info_, reuse, workers_);
  const bool ok = checker.run();
  decls_reused_ = checker.decls_reused();
  return ok;
}

FrontendResult parse_and_check(std::string_view source,
                               DiagnosticEngine& diags) {
  FrontendResult r;
  r.program = Parser::parse(source, diags);
  if (diags.has_errors()) return r;
  TypeChecker tc(diags);
  r.ok = tc.check(r.program);
  r.info = tc.info();
  return r;
}

}  // namespace lucid::sema
