#include "sema/effects.hpp"

#include <algorithm>
#include <sstream>

namespace lucid::sema {

std::string StageAtom::str() const {
  if (concrete()) return std::to_string(offset);
  std::string s = "s" + std::to_string(var);
  if (offset != 0) s += "+" + std::to_string(offset);
  return s;
}

EffectTerm EffectTerm::join(const EffectTerm& other) const {
  EffectTerm out = *this;
  for (const auto& a : other.atoms) out.atoms.push_back(a);

  // Keep one concrete atom (the max) and, per variable, the max offset.
  std::vector<StageAtom> compact;
  std::optional<StageAtom> best_concrete;
  for (const auto& a : out.atoms) {
    if (a.concrete()) {
      if (!best_concrete || a.offset > best_concrete->offset) {
        best_concrete = a;
      }
    } else {
      bool merged = false;
      for (auto& c : compact) {
        if (!c.concrete() && c.var == a.var) {
          if (a.offset > c.offset) c = a;
          merged = true;
          break;
        }
      }
      if (!merged) compact.push_back(a);
    }
  }
  if (best_concrete) compact.push_back(*best_concrete);
  out.atoms = std::move(compact);
  if (out.atoms.empty()) out.atoms.push_back(StageAtom::concrete_at(0));
  return out;
}

EffectTerm EffectTerm::plus(int delta) const {
  EffectTerm out = *this;
  for (auto& a : out.atoms) a.offset += delta;
  return out;
}

std::optional<int> EffectTerm::concrete_value() const {
  int best = 0;
  for (const auto& a : atoms) {
    if (!a.concrete()) return std::nullopt;
    best = std::max(best, a.offset);
  }
  return best;
}

std::string EffectTerm::str() const {
  if (atoms.size() == 1) return atoms[0].str();
  std::ostringstream os;
  os << "max(";
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) os << ", ";
    os << atoms[i].str();
  }
  os << ")";
  return os.str();
}

EffectTerm EffectSubst::apply(const EffectTerm& t) const {
  EffectTerm out;
  for (const auto& a : t.atoms) {
    if (a.concrete()) {
      out.atoms.push_back(a);
      continue;
    }
    if (a.var == start_var) {
      for (const auto& s : start_term.atoms) {
        StageAtom shifted = s;
        shifted.offset += a.offset;
        if (shifted.origin.empty()) shifted.origin = a.origin;
        out.atoms.push_back(shifted);
      }
      continue;
    }
    if (a.var >= 0 &&
        static_cast<std::size_t>(a.var) < atom_for_var.size() &&
        atom_for_var[a.var]) {
      StageAtom sub = *atom_for_var[a.var];
      sub.offset += a.offset;
      if (!a.origin.empty()) sub.origin = a.origin;
      if (a.site.valid()) sub.site = a.site;
      out.atoms.push_back(sub);
      continue;
    }
    out.atoms.push_back(a);  // unbound variable: keep symbolic
  }
  if (out.atoms.empty()) out.atoms.push_back(StageAtom::concrete_at(0));
  // Normalize via join with itself (dedup).
  return EffectTerm{}.join(out);
}

StageAtom EffectSubst::apply_rhs(const StageAtom& a) const {
  if (a.concrete()) return a;
  if (a.var >= 0 && static_cast<std::size_t>(a.var) < atom_for_var.size() &&
      atom_for_var[a.var]) {
    StageAtom sub = *atom_for_var[a.var];
    sub.offset += a.offset;
    if (!a.origin.empty()) sub.origin = a.origin;
    if (a.site.valid()) sub.site = a.site;
    return sub;
  }
  return a;
}

std::optional<bool> evaluate(const EffectConstraint& c) {
  if (!c.rhs.concrete()) return std::nullopt;
  const auto lhs = c.lhs.concrete_value();
  if (!lhs) return std::nullopt;
  return *lhs <= c.rhs.offset;
}

}  // namespace lucid::sema
