// Type checking + the ordered type-and-effect system (paper section 5,
// Appendix A), plus name resolution and memop validation.
//
// After `TypeChecker::check` succeeds the AST is fully annotated:
//   - every Expr has a Type;
//   - every CallExpr has a resolved CallKind;
//   - consts/global sizes/group members are evaluated;
//   - globals carry their declaration-order stage index;
//   - events carry dense ids;
// and every handler is proven *well-ordered*: its global accesses follow the
// global declaration order, so the layout problem is guaranteed solvable
// (section 5.1). Ill-ordered programs — like the paper's Figure 5 example —
// are rejected with diagnostics that cite both conflicting accesses.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "frontend/ast.hpp"
#include "sema/effects.hpp"
#include "support/diagnostics.hpp"

namespace lucid::sema {

/// Result facts that later stages and tests consume.
struct AnalysisInfo {
  /// Handler name -> concrete end stage (the "pipeline depth" its global
  /// accesses require).
  std::map<std::string, int> handler_end_stage;
  /// Function name -> inferred effect signature (for tests).
  std::map<std::string, FunEffectSig> fun_sigs;
};

class TypeChecker {
 public:
  explicit TypeChecker(DiagnosticEngine& diags) : diags_(diags) {}

  /// Checks and annotates `program` in place. Returns true on success.
  bool check(frontend::Program& program);

  [[nodiscard]] const AnalysisInfo& info() const { return info_; }

 private:
  struct Impl;
  DiagnosticEngine& diags_;
  AnalysisInfo info_;
};

/// Convenience: parse + check. On failure `ok` is false and `diags` holds
/// the errors.
struct FrontendResult {
  frontend::Program program;
  AnalysisInfo info;
  bool ok = false;
};
[[nodiscard]] FrontendResult parse_and_check(std::string_view source,
                                             DiagnosticEngine& diags);

/// Constant-expression evaluation over `const` declarations; exposed for the
/// parser-level tests and group member resolution.
[[nodiscard]] bool const_eval(const frontend::Expr& e,
                              const std::map<std::string, std::int64_t>& env,
                              std::int64_t& out);

}  // namespace lucid::sema
