// Type checking + the ordered type-and-effect system (paper section 5,
// Appendix A), plus name resolution and memop validation.
//
// After `TypeChecker::check` succeeds the AST is fully annotated:
//   - every Expr has a Type;
//   - every CallExpr has a resolved CallKind;
//   - consts/global sizes/group members are evaluated;
//   - globals carry their declaration-order stage index;
//   - events carry dense ids;
// and every handler is proven *well-ordered*: its global accesses follow the
// global declaration order, so the layout problem is guaranteed solvable
// (section 5.1). Ill-ordered programs — like the paper's Figure 5 example —
// are rejected with diagnostics that cite both conflicting accesses.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "frontend/ast.hpp"
#include "sema/effects.hpp"
#include "support/diagnostics.hpp"

namespace lucid::sema {

/// Result facts that later stages and tests consume.
struct AnalysisInfo {
  /// Handler name -> concrete end stage (the "pipeline depth" its global
  /// accesses require).
  std::map<std::string, int> handler_end_stage;
  /// Function name -> inferred effect signature (for tests).
  std::map<std::string, FunEffectSig> fun_sigs;
};

/// Inputs for an incremental re-check (CompilerDriver::recompile): a
/// previously checked (annotated) program, its AnalysisInfo, and the
/// decl-granular reuse plan (sema::plan_recompile). For every decl with
/// `reuse_from[i] >= 0` the checker mirror-copies the previous decl's
/// annotations (frontend::copy_annotations) and reuses its recorded effect
/// signature / end stage instead of re-checking the body; dirty decls are
/// checked from scratch against an environment rebuilt from all decl
/// headers (header collection and const/size evaluation always run in
/// full — they are cheap and keep every header annotation native).
struct SemaReuse {
  const frontend::Program* prev = nullptr;
  const AnalysisInfo* prev_info = nullptr;
  std::vector<int> reuse_from;  // parallel to the new program's decls
};

class TypeChecker {
 public:
  explicit TypeChecker(DiagnosticEngine& diags, int workers = 1)
      : diags_(diags), workers_(workers) {}

  /// Checks and annotates `program` in place. Returns true on success.
  bool check(frontend::Program& program) { return check(program, nullptr); }

  /// As above; a non-null `reuse` skips body checks for decls its plan
  /// proves unchanged. Produces the same annotations and artifacts as a
  /// full check (differential-tested); only AnalysisInfo's internal effect
  /// variable numbering may differ.
  bool check(frontend::Program& program, const SemaReuse* reuse);

  [[nodiscard]] const AnalysisInfo& info() const { return info_; }

  /// Number of decls whose body check was skipped by the last check()'s
  /// reuse plan (0 for a full check).
  [[nodiscard]] std::size_t decls_reused() const { return decls_reused_; }

 private:
  struct Impl;
  DiagnosticEngine& diags_;
  AnalysisInfo info_;
  std::size_t decls_reused_ = 0;
  // Worker threads for the per-decl body-check phase. <= 1 checks inline;
  // any count produces byte-identical diagnostics and annotations (per-task
  // engines merged in a deterministic task order).
  int workers_ = 1;
};

/// Convenience: parse + check. On failure `ok` is false and `diags` holds
/// the errors.
struct FrontendResult {
  frontend::Program program;
  AnalysisInfo info;
  bool ok = false;
};
[[nodiscard]] FrontendResult parse_and_check(std::string_view source,
                                             DiagnosticEngine& diags);

/// Constant-expression evaluation over `const` declarations; exposed for the
/// parser-level tests and group member resolution.
[[nodiscard]] bool const_eval(const frontend::Expr& e,
                              const std::map<std::string, std::int64_t>& env,
                              std::int64_t& out);

}  // namespace lucid::sema
