// DeclDepGraph: which top-level declarations reference which — the edge set
// behind decl-granular invalidation in the incremental recompile pipeline.
//
// Edges are *syntactic* and deliberately over-approximate: a decl's
// reference set is every identifier its body (or initializer, size
// expression, group member list, parameter-free call) mentions that could
// resolve to a top-level name, plus — for handlers — their own name (a
// handler is bound to the event of the same name, so an event-signature or
// event-id change must dirty its handler). Over-approximation only costs
// spurious re-checks, never a stale artifact.
//
// `plan_recompile` diffs two programs at decl granularity using the
// structural fingerprints (frontend/fingerprint.hpp) and this graph:
//
//   dirty seed:  a decl with no unique (kind, name) match in the previous
//                program, a changed fingerprint, or — for globals/events —
//                a changed kind-relative ordinal (declaration order assigns
//                pipeline stages to globals and wire ids to events);
//                plus every decl referencing a *deleted* name.
//   closure:     dirtiness propagates to transitive dependents along
//                reverse reference edges (a handler calling a fun that
//                reads an edited const is dirty, even though neither the
//                handler's nor the fun's text changed).
//
// Everything not dirty is safe to reuse: its sema annotations can be
// mirror-copied from the previous AST (frontend::copy_annotations) and its
// lowered HandlerGraph spliced from the previous IR, producing artifacts
// byte-identical to a cold compile (differential-tested across the paper
// apps in tests/test_incremental.cpp).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "frontend/ast.hpp"
#include "frontend/fingerprint.hpp"

namespace lucid::sema {

struct DeclDepGraph {
  struct Node {
    frontend::DeclKind kind = frontend::DeclKind::Const;
    std::string name;
    /// Sorted, deduplicated names this decl references (over-approximate;
    /// may include local variable names — harmless for invalidation).
    /// string_views into the Program's AST: the graph must not outlive the
    /// program it was built from (its one consumer, plan_recompile, does
    /// not — and the planner runs per recompile, so refs stay
    /// allocation-free).
    std::vector<std::string_view> refs;
    /// Indices of decls this decl references (resolved from `refs`).
    std::vector<int> uses;
    /// Reverse edges: decls that reference this one.
    std::vector<int> used_by;
  };
  std::vector<Node> nodes;  // parallel to Program::decls

  [[nodiscard]] static DeclDepGraph build(const frontend::Program& p);

  /// The seeds plus every transitive dependent (along used_by edges),
  /// deduplicated, in ascending index order.
  [[nodiscard]] std::vector<int> dependents_closure(
      const std::vector<int>& seeds) const;
};

/// The decl-granular diff between a previously compiled program and a new
/// parse of (possibly edited) source.
struct RecompilePlan {
  /// Per new-program decl: index of the structurally identical previous
  /// decl whose sema/IR artifacts may be reused, or -1 when the decl is
  /// dirty (new, changed, re-ordered, or a transitive dependent of one).
  std::vector<int> reuse_from;
  /// True when the programs are structurally identical decl-for-decl (same
  /// sequence, every fingerprint equal): the whole front end can be reused.
  bool identical = false;

  [[nodiscard]] std::size_t reused() const {
    std::size_t n = 0;
    for (const int r : reuse_from) n += r >= 0 ? 1 : 0;
    return n;
  }
  [[nodiscard]] std::size_t dirty() const {
    return reuse_from.size() - reused();
  }
};

/// Diffs `next` against the previously compiled `prev` (see the file header
/// for the dirtiness rules). Both arguments are read-only; `prev` is
/// expected to be sema-annotated but only its syntax is consulted. The
/// fingerprint-taking overload skips recomputing them (Compilation caches
/// its own — Compilation::decl_fingerprints); the vectors must be
/// frontend::fingerprint_program of the respective programs. Structurally
/// identical programs short-circuit: after an element-wise fingerprint and
/// decl_equal confirmation, no dependency graph is built at all.
[[nodiscard]] RecompilePlan plan_recompile(
    const frontend::Program& prev,
    const std::vector<frontend::DeclFingerprint>& prev_fps,
    const frontend::Program& next,
    const std::vector<frontend::DeclFingerprint>& next_fps);
[[nodiscard]] RecompilePlan plan_recompile(const frontend::Program& prev,
                                           const frontend::Program& next);

}  // namespace lucid::sema
