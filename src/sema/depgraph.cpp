#include "sema/depgraph.hpp"

#include <algorithm>
#include <map>

#include "frontend/fingerprint.hpp"
#include "frontend/printer.hpp"

namespace lucid::sema {

using namespace frontend;

namespace {

/// Collects every identifier an expression mentions that could name a
/// top-level decl: VarRefs (including memop references in Array-call
/// argument positions) and call targets. Builtin namespaces (Array.*,
/// Event.*, Sys.*), `hash`, and `SELF` can never be user declarations.
/// string_views point into the AST (stable for the graph's lifetime) — the
/// planner runs once per recompile, so it must not churn allocations.
void collect_expr_refs(const Expr& e, std::vector<std::string_view>& out) {
  switch (e.kind) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
      return;
    case ExprKind::VarRef: {
      const std::string& name = e.as<VarRefExpr>()->name;
      if (name != "SELF") out.push_back(name);
      return;
    }
    case ExprKind::Unary:
      collect_expr_refs(*e.as<UnaryExpr>()->sub, out);
      return;
    case ExprKind::Binary: {
      const auto* b = e.as<BinaryExpr>();
      collect_expr_refs(*b->lhs, out);
      collect_expr_refs(*b->rhs, out);
      return;
    }
    case ExprKind::Call: {
      const auto* c = e.as<CallExpr>();
      if (c->callee.find('.') == std::string::npos && c->callee != "hash") {
        out.push_back(c->callee);
      }
      for (const auto& a : c->args) collect_expr_refs(*a, out);
      return;
    }
  }
}

void collect_block_refs(const Block& b, std::vector<std::string_view>& out);

void collect_stmt_refs(const Stmt& s, std::vector<std::string_view>& out) {
  switch (s.kind) {
    case StmtKind::LocalDecl:
      collect_expr_refs(*s.as<LocalDeclStmt>()->init, out);
      return;
    case StmtKind::Assign:
      collect_expr_refs(*s.as<AssignStmt>()->value, out);
      return;
    case StmtKind::If: {
      const auto* i = s.as<IfStmt>();
      collect_expr_refs(*i->cond, out);
      collect_block_refs(i->then_block, out);
      collect_block_refs(i->else_block, out);
      return;
    }
    case StmtKind::ExprStmt:
      collect_expr_refs(*s.as<ExprStmt>()->expr, out);
      return;
    case StmtKind::Generate:
      collect_expr_refs(*s.as<GenerateStmt>()->event, out);
      return;
    case StmtKind::Return: {
      const auto* r = s.as<ReturnStmt>();
      if (r->value) collect_expr_refs(*r->value, out);
      return;
    }
  }
}

void collect_block_refs(const Block& b, std::vector<std::string_view>& out) {
  for (const auto& s : b) collect_stmt_refs(*s, out);
}

std::vector<std::string_view> decl_refs(const Decl& d) {
  std::vector<std::string_view> refs;
  switch (d.kind) {
    case DeclKind::Const:
      collect_expr_refs(*d.as<ConstDecl>()->value, refs);
      break;
    case DeclKind::Global:
      collect_expr_refs(*d.as<GlobalDecl>()->size, refs);
      break;
    case DeclKind::Memop:
      collect_block_refs(d.as<MemopDecl>()->body, refs);
      break;
    case DeclKind::Fun:
      collect_block_refs(d.as<FunDecl>()->body, refs);
      break;
    case DeclKind::Event:
      break;  // pure signature: no references
    case DeclKind::Handler:
      collect_block_refs(d.as<HandlerDecl>()->body, refs);
      // A handler is bound to the event of the same name: an event change
      // (signature or wire id) must dirty its handler.
      refs.push_back(d.name);
      break;
    case DeclKind::Group:
      for (const auto& m : d.as<GroupDecl>()->members) {
        collect_expr_refs(*m, refs);
      }
      break;
  }
  std::sort(refs.begin(), refs.end());
  refs.erase(std::unique(refs.begin(), refs.end()), refs.end());
  return refs;
}

}  // namespace

DeclDepGraph DeclDepGraph::build(const Program& p) {
  DeclDepGraph g;
  g.nodes.resize(p.decls.size());
  std::map<std::string_view, std::vector<int>> by_name;
  for (std::size_t i = 0; i < p.decls.size(); ++i) {
    g.nodes[i].kind = p.decls[i]->kind;
    g.nodes[i].name = p.decls[i]->name;
    by_name[p.decls[i]->name].push_back(static_cast<int>(i));
  }
  for (std::size_t i = 0; i < p.decls.size(); ++i) {
    g.nodes[i].refs = decl_refs(*p.decls[i]);
    for (const std::string_view name : g.nodes[i].refs) {
      const auto it = by_name.find(name);
      if (it == by_name.end()) continue;
      for (const int j : it->second) {
        if (j == static_cast<int>(i)) continue;  // handler's self-name entry
        g.nodes[i].uses.push_back(j);
        g.nodes[static_cast<std::size_t>(j)].used_by.push_back(
            static_cast<int>(i));
      }
    }
  }
  return g;
}

std::vector<int> DeclDepGraph::dependents_closure(
    const std::vector<int>& seeds) const {
  std::vector<bool> seen(nodes.size(), false);
  std::vector<int> worklist;
  for (const int s : seeds) {
    if (s >= 0 && static_cast<std::size_t>(s) < nodes.size() && !seen[s]) {
      seen[static_cast<std::size_t>(s)] = true;
      worklist.push_back(s);
    }
  }
  while (!worklist.empty()) {
    const int i = worklist.back();
    worklist.pop_back();
    for (const int j : nodes[static_cast<std::size_t>(i)].used_by) {
      if (!seen[static_cast<std::size_t>(j)]) {
        seen[static_cast<std::size_t>(j)] = true;
        worklist.push_back(j);
      }
    }
  }
  std::vector<int> out;
  for (std::size_t i = 0; i < seen.size(); ++i) {
    if (seen[i]) out.push_back(static_cast<int>(i));
  }
  return out;
}

RecompilePlan plan_recompile(const Program& prev, const Program& next) {
  return plan_recompile(prev, fingerprint_program(prev), next,
                        fingerprint_program(next));
}

RecompilePlan plan_recompile(const Program& prev,
                             const std::vector<DeclFingerprint>& prev_fps,
                             const Program& next,
                             const std::vector<DeclFingerprint>& next_fps) {
  RecompilePlan plan;
  plan.reuse_from.assign(next.decls.size(), -1);

  // Fast path: element-wise identical fingerprint sequences (the common
  // formatting-only edit). One decl_equal sweep guards against hash
  // collisions; no dependency graph or ordinal analysis is needed.
  if (prev_fps == next_fps && prev.decls.size() == next.decls.size()) {
    bool same = true;
    for (std::size_t i = 0; same && i < next.decls.size(); ++i) {
      same = decl_equal(*prev.decls[i], *next.decls[i]);
    }
    if (same) {
      for (std::size_t i = 0; i < next.decls.size(); ++i) {
        plan.reuse_from[i] = static_cast<int>(i);
      }
      plan.identical = true;
      return plan;
    }
  }

  // (kind, name) matching via sorted index vectors — the planner runs once
  // per recompile, so no node-based containers on this path. Kind-relative
  // ordinals ride along: declaration order assigns globals their pipeline
  // stage and events their wire id, so an ordinal change is a semantic
  // change even when the decl's own text is untouched.
  struct Row {
    DeclKind kind;
    std::string_view name;
    int index;
    int ordinal;  // position among decls of the same kind
    bool dup;     // (kind, name) appears more than once in its program
  };
  const auto rows_of = [](const Program& p) {
    std::vector<Row> rows;
    rows.reserve(p.decls.size());
    int per_kind[8] = {};
    for (std::size_t i = 0; i < p.decls.size(); ++i) {
      const DeclKind k = p.decls[i]->kind;
      rows.push_back(Row{k, p.decls[i]->name, static_cast<int>(i),
                         per_kind[static_cast<int>(k)]++, false});
    }
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      return a.kind != b.kind ? a.kind < b.kind : a.name < b.name;
    });
    for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
      if (rows[i].kind == rows[i + 1].kind &&
          rows[i].name == rows[i + 1].name) {
        rows[i].dup = rows[i + 1].dup = true;
      }
    }
    return rows;
  };
  const std::vector<Row> prev_rows = rows_of(prev);
  const std::vector<Row> next_rows = rows_of(next);
  const auto find_row = [](const std::vector<Row>& rows, DeclKind kind,
                           std::string_view name) -> const Row* {
    const auto it = std::lower_bound(
        rows.begin(), rows.end(), std::pair(kind, name),
        [](const Row& r, const std::pair<DeclKind, std::string_view>& key) {
          return r.kind != key.first ? r.kind < key.first
                                     : r.name < key.second;
        });
    if (it == rows.end() || it->kind != kind || it->name != name) {
      return nullptr;
    }
    return &*it;
  };

  std::vector<int> dirty_seeds;
  for (const Row& nr : next_rows) {
    const std::size_t i = static_cast<std::size_t>(nr.index);
    const Row* pr = find_row(prev_rows, nr.kind, nr.name);
    bool clean = false;
    if (!nr.dup && pr != nullptr && !pr->dup) {
      const std::size_t j = static_cast<std::size_t>(pr->index);
      // Hash first; decl_equal confirms so a fingerprint collision can never
      // smuggle a changed decl past the diff.
      clean = next_fps[i].hash == prev_fps[j].hash &&
              decl_equal(*prev.decls[j], *next.decls[i]);
      if (clean &&
          (nr.kind == DeclKind::Global || nr.kind == DeclKind::Event)) {
        clean = nr.ordinal == pr->ordinal;
      }
      if (clean) plan.reuse_from[i] = pr->index;
    }
    if (!clean) dirty_seeds.push_back(nr.index);
  }

  const DeclDepGraph graph = DeclDepGraph::build(next);

  // Deleted decls: a decl whose reference to a now-removed name silently
  // kept its own text must still be re-checked (it may now be an error).
  // Deletion is judged per (kind, name), not per name: deleting an event
  // whose same-named handler survives must still dirty that handler — the
  // name alone is still present, but the declaration the reference relied
  // on is gone.
  std::vector<std::string_view> deleted;
  for (const Row& pr : prev_rows) {
    if (find_row(next_rows, pr.kind, pr.name) == nullptr) {
      deleted.push_back(pr.name);
    }
  }
  if (!deleted.empty()) {
    std::sort(deleted.begin(), deleted.end());
    deleted.erase(std::unique(deleted.begin(), deleted.end()),
                  deleted.end());
    for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
      for (const std::string_view r : graph.nodes[i].refs) {
        if (std::binary_search(deleted.begin(), deleted.end(), r)) {
          dirty_seeds.push_back(static_cast<int>(i));
          break;
        }
      }
    }
  }

  for (const int i : graph.dependents_closure(dirty_seeds)) {
    plan.reuse_from[static_cast<std::size_t>(i)] = -1;
  }

  plan.identical = prev.decls.size() == next.decls.size();
  for (std::size_t i = 0; plan.identical && i < plan.reuse_from.size(); ++i) {
    plan.identical = plan.reuse_from[i] == static_cast<int>(i);
  }
  return plan;
}

}  // namespace lucid::sema
