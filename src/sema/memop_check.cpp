#include "sema/memop_check.hpp"

#include <set>
#include <string>

namespace lucid::sema {

using namespace frontend;

namespace {

class MemopChecker {
 public:
  MemopChecker(const MemopDecl& decl,
               const std::function<bool(std::string_view)>& is_const_name,
               DiagnosticEngine& diags)
      : decl_(decl), is_const_name_(is_const_name), diags_(diags) {}

  bool run() {
    check_params();
    check_body_shape();
    return ok_;
  }

 private:
  void fail(SrcRange range, std::string code, std::string msg) {
    diags_.error(range, std::move(code),
                 "memop '" + decl_.name + "': " + std::move(msg));
    ok_ = false;
  }

  void check_params() {
    if (decl_.params.size() != 2) {
      fail(decl_.range, "memop-param-count",
           "memops take exactly two parameters (the stored value and one "
           "local operand); found " +
               std::to_string(decl_.params.size()) +
               " — a stateful ALU can read at most one word of local state "
               "(Appendix C)");
    }
    for (const auto& p : decl_.params) {
      if (!p.type.is_int()) {
        fail(p.range, "memop-param-type",
             "memop parameter '" + p.name + "' must be an int type");
      }
    }
  }

  void check_body_shape() {
    // Shape 1: single return.
    if (decl_.body.size() == 1 &&
        decl_.body[0]->kind == StmtKind::Return) {
      const auto* ret = decl_.body[0]->as<ReturnStmt>();
      if (!ret->value) {
        fail(ret->range, "memop-body-shape", "memops must return a value");
        return;
      }
      check_value_expr(*ret->value);
      return;
    }
    // Shape 2: single if with one return per branch.
    if (decl_.body.size() == 1 && decl_.body[0]->kind == StmtKind::If) {
      const auto* ifs = decl_.body[0]->as<IfStmt>();
      check_condition(*ifs->cond);
      check_branch(ifs->then_block, ifs->range, "then");
      check_branch(ifs->else_block, ifs->range, "else");
      return;
    }
    fail(decl_.body.empty() ? decl_.range : decl_.body[0]->range,
         "memop-body-shape",
         "a memop body must be a single return statement, or one if "
         "statement containing one return in each branch (section 4.2)");
  }

  void check_branch(const Block& block, SrcRange if_range,
                    std::string_view which) {
    if (block.size() != 1 || block[0]->kind != StmtKind::Return) {
      fail(block.empty() ? if_range : block[0]->range, "memop-body-shape",
           "the " + std::string(which) +
               " branch must contain exactly one return statement");
      return;
    }
    const auto* ret = block[0]->as<ReturnStmt>();
    if (!ret->value) {
      fail(ret->range, "memop-body-shape", "memops must return a value");
      return;
    }
    check_value_expr(*ret->value);
  }

  // An operand is a parameter reference or a compile-time constant.
  bool is_operand(const Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit:
        return true;
      case ExprKind::VarRef: {
        const auto& name = e.as<VarRefExpr>()->name;
        for (const auto& p : decl_.params) {
          if (p.name == name) return true;
        }
        if (is_const_name_(name)) return true;
        fail(e.range, "memop-bad-operand",
             "'" + name +
                 "' is neither a memop parameter nor a compile-time "
                 "constant");
        return false;
      }
      default:
        return false;
    }
  }

  static bool alu_value_op(BinOp op) {
    switch (op) {
      case BinOp::Add:
      case BinOp::Sub:
      case BinOp::BitAnd:
      case BinOp::BitOr:
      case BinOp::BitXor:
        return true;
      default:
        return false;
    }
  }

  void check_var_reuse(const Expr& e) {
    std::set<std::string> seen;
    bool reused = false;
    SrcRange where = e.range;
    std::string offender;
    const std::function<void(const Expr&)> walk = [&](const Expr& x) {
      if (x.kind == ExprKind::VarRef) {
        const auto& name = x.as<VarRefExpr>()->name;
        if (!is_const_name_(name) && !seen.insert(name).second && !reused) {
          reused = true;
          where = x.range;
          offender = name;
        }
      } else if (x.kind == ExprKind::Binary) {
        walk(*x.as<BinaryExpr>()->lhs);
        walk(*x.as<BinaryExpr>()->rhs);
      } else if (x.kind == ExprKind::Unary) {
        walk(*x.as<UnaryExpr>()->sub);
      }
    };
    walk(e);
    if (reused) {
      fail(where, "memop-var-reuse",
           "variable '" + offender +
               "' is used more than once in this expression; each variable "
               "may be used at most once per expression (section 4.2)");
    }
  }

  void check_value_expr(const Expr& e) {
    check_var_reuse(e);
    if (is_operand(e)) return;
    if (e.kind == ExprKind::Binary) {
      const auto* b = e.as<BinaryExpr>();
      if (binop_is_logical(b->op) || binop_is_comparison(b->op)) {
        fail(e.range, "memop-bad-operator",
             "comparison/logical operators are only allowed in the memop "
             "condition");
        return;
      }
      if (!alu_value_op(b->op)) {
        fail(e.range, "memop-bad-operator",
             std::string("operator '") + std::string(binop_name(b->op)) +
                 "' is not supported by a stateful ALU (only + - & | ^); "
                 "see Appendix C");
        return;
      }
      const bool lhs_simple =
          b->lhs->kind == ExprKind::IntLit || b->lhs->kind == ExprKind::VarRef;
      const bool rhs_simple =
          b->rhs->kind == ExprKind::IntLit || b->rhs->kind == ExprKind::VarRef;
      if (!lhs_simple || !rhs_simple) {
        fail((!lhs_simple ? b->lhs : b->rhs)->range, "memop-too-complex",
             "nested arithmetic does not fit in a single stateful ALU "
             "instruction; decompose this memop (Appendix C)");
        return;
      }
      (void)is_operand(*b->lhs);
      (void)is_operand(*b->rhs);
      return;
    }
    if (e.kind == ExprKind::Call) {
      fail(e.range, "memop-bad-operand",
           "calls are not allowed inside memops");
      return;
    }
    if (e.kind == ExprKind::Unary) {
      fail(e.range, "memop-bad-operator",
           "unary operators are not supported inside memops");
      return;
    }
    if (e.kind != ExprKind::IntLit && e.kind != ExprKind::VarRef) {
      fail(e.range, "memop-too-complex",
           "expression is too complex for a stateful ALU");
    }
  }

  void check_condition(const Expr& e) {
    if (e.kind == ExprKind::Binary) {
      const auto* b = e.as<BinaryExpr>();
      if (binop_is_logical(b->op)) {
        fail(e.range, "memop-compound-condition",
             "compound conditional expressions ('&&'/'||') cannot be used in "
             "a memop: an Array.update with two compound-condition memops "
             "cannot compile to a legal sALU instruction (Appendix C)");
        return;
      }
      if (!binop_is_comparison(b->op)) {
        fail(e.range, "memop-bad-operator",
             "a memop condition must be a single comparison");
        return;
      }
      check_var_reuse(e);
      const bool lhs_simple =
          b->lhs->kind == ExprKind::IntLit || b->lhs->kind == ExprKind::VarRef;
      const bool rhs_simple =
          b->rhs->kind == ExprKind::IntLit || b->rhs->kind == ExprKind::VarRef;
      if (!lhs_simple || !rhs_simple) {
        fail((!lhs_simple ? b->lhs : b->rhs)->range, "memop-too-complex",
             "memop conditions compare simple operands only");
        return;
      }
      (void)is_operand(*b->lhs);
      (void)is_operand(*b->rhs);
      return;
    }
    fail(e.range, "memop-bad-operator",
         "a memop condition must be a single comparison between simple "
         "operands");
  }

  const MemopDecl& decl_;
  const std::function<bool(std::string_view)>& is_const_name_;
  DiagnosticEngine& diags_;
  bool ok_ = true;
};

}  // namespace

bool check_memop(const MemopDecl& decl,
                 const std::function<bool(std::string_view)>& is_const_name,
                 DiagnosticEngine& diags) {
  return MemopChecker(decl, is_const_name, diags).run();
}

}  // namespace lucid::sema
