// Default backend registrations. This is the one translation unit allowed to
// depend on every backend implementation; the driver itself (core/driver)
// knows only the abstract Backend interface.
#pragma once

#include "core/driver.hpp"

namespace lucid {

/// Registers the stock backends ("p4", "interp", "ebpf", "native") with `registry`
/// (the process-wide global registry by default). Idempotent:
/// already-registered names are left untouched.
void register_default_backends(BackendRegistry& registry =
                                   BackendRegistry::global());

}  // namespace lucid
