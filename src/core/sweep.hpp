// SweepEngine: resource-model sweeps as a service.
//
// A sweep compiles one Lucid program against a grid of resource models and
// emits every requested backend for every variant — the workflow behind
// "which Tofino generation / stage budget does my program still fit?". The
// engine pays for the front end exactly once: Parse, Sema, and Lower run a
// single time (or come out of an ArtifactCache), every variant is a
// Compilation::clone_from_stage of that shared front end, and every
// (variant, backend) emission runs on its own Layout-level clone so all
// layout and emission work fans out across a worker pool with no shared
// mutable state.
//
// Grid specs (the CLI's --sweep=<grid-spec>) are cross products over
// resource-model fields:
//
//   stages=8,12;salus=2,4     -> 4 variants
//   tables=4                  -> 1 variant
//   (empty)                   -> 1 variant (the stock Tofino model)
//
// Recognized fields: stages, tables, salus, rules, members, aluops.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/cache.hpp"
#include "core/driver.hpp"
#include "opt/passes.hpp"
#include "support/parallel.hpp"

namespace lucid {

/// One point of the sweep grid.
struct SweepVariant {
  std::string label;  // e.g. "stages=8,salus=2" or "tofino"
  opt::ResourceModel model = opt::ResourceModel::tofino();
};

/// Parses a grid spec into the cross product of its dimensions (see the file
/// header for the format). Returns nullopt and sets `*error` on a malformed
/// spec. An empty spec yields the single default Tofino variant.
[[nodiscard]] std::optional<std::vector<SweepVariant>> parse_sweep_grid(
    std::string_view spec, std::string* error = nullptr);

// parallel_for moved to support/parallel.hpp (shared with parallel Sema);
// included here so existing callers keep finding lucid::parallel_for.

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// One backend emission of one variant.
struct SweepEmission {
  std::string backend;
  bool ok = false;
  bool from_cache = false;  // served from the ArtifactCache disk layer
  std::string text;
  std::map<std::string, std::int64_t> metrics;
  double wall_ms = 0.0;
  std::vector<Diagnostic> diagnostics;  // emit-stage diagnostics only
};

/// Everything the sweep learned about one variant.
struct SweepVariantReport {
  SweepVariant variant;
  bool ok = false;                   // layout and every emission succeeded
  std::vector<StageRecord> records;  // stage records of this variant's
                                     // compilation (front end marked shared)
  opt::LayoutStats stats;
  std::vector<Diagnostic> diagnostics;  // middle-end diagnostics
  std::vector<SweepEmission> emissions;
  double wall_ms = 0.0;  // layout + this variant's emissions
};

struct SweepReport {
  std::string program_name;
  bool ok = false;
  /// Number of Parse stages actually executed during this sweep, across the
  /// base compilation and every variant. 1 for a cold sweep, 0 when the
  /// front end came out of a warm ArtifactCache — never the variant count:
  /// that is the whole point.
  int frontend_runs = 0;
  double frontend_wall_ms = 0.0;  // Parse+Sema+Lower cost (paid once)
  /// Wall-clock of the model-independent layout analysis (opt::
  /// LayoutAnalysis, Phase A), computed serially once and shared by every
  /// variant's Layout run — their StageRecords carry analysis_shared as
  /// proof. ~0 when a warm cache's master had already computed it.
  double analysis_wall_ms = 0.0;
  double total_wall_ms = 0.0;     // wall clock of the whole sweep
  std::vector<Diagnostic> frontend_diagnostics;
  std::vector<SweepVariantReport> variants;

  /// Human-readable table (one row per variant).
  [[nodiscard]] std::string str() const;
};

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

struct SweepOptions {
  std::vector<SweepVariant> variants;  // empty -> single Tofino variant
  std::vector<std::string> backends = {"p4", "ebpf", "interp"};
  /// Worker threads for layout + emission; 0 = hardware concurrency.
  int workers = 0;
  std::string program_name = "program";
  /// Optional cache: the front end is acquired through it (memory layer) and
  /// emissions are served from / stored to its disk layer when enabled.
  ArtifactCache* cache = nullptr;
};

// ---------------------------------------------------------------------------
// Auto-fitting (the CLI's --fit=<fit-spec>)
// ---------------------------------------------------------------------------

/// A fit spec is a sweep grid where exactly one dimension is a *range*
/// (`field=MIN..MAX`) instead of an enumeration: for every point of the
/// enumerated cross product, the engine binary-searches the smallest value
/// of the range field under which the program still fits. Every sweepable
/// ResourceModel field is monotone (more resources never un-fits a
/// program), which is what makes bisection sound.
///
///   stages=1..20              -> 1 row, search stages in [1, 20]
///   stages=1..20;salus=2,4    -> 2 rows (salus=2 and salus=4), same search
struct FitSpec {
  std::string search_field;            // stages|tables|salus|rules|members|aluops
  int lo = 0;
  int hi = 0;
  std::vector<SweepVariant> base;      // enumerated cross product (>= 1 row)
};

/// Parses a fit spec (see FitSpec). Returns nullopt and sets `*error` on a
/// malformed spec, an unknown field, a repeated field, or a spec without
/// exactly one MIN..MAX range dimension.
[[nodiscard]] std::optional<FitSpec> parse_fit_spec(
    std::string_view spec, std::string* error = nullptr);

/// One enumerated grid point's bisection result.
struct FitRow {
  std::string label;              // base variant label ("tofino", "salus=2")
  opt::ResourceModel model;       // base model with search_field = fitted
                                  // (or = hi when nothing fits)
  int fitted = -1;                // smallest fitting value; -1 = none in range
  std::vector<int> probed;        // values probed, in probe order
  bool layout_ok = true;          // false when a probe's Layout errored
};

struct FitReport {
  std::string program_name;
  std::string search_field;
  int lo = 0;
  int hi = 0;
  bool ok = false;       // front end and every probe's layout succeeded
  bool all_fit = false;  // every row found a fitting value in [lo, hi]
  int frontend_runs = 0;          // like SweepReport::frontend_runs
  double frontend_wall_ms = 0.0;
  double total_wall_ms = 0.0;
  std::vector<Diagnostic> frontend_diagnostics;
  std::vector<FitRow> rows;

  /// Human-readable table (one row per enumerated grid point).
  [[nodiscard]] std::string str() const;
};

struct FitOptions {
  FitSpec spec;
  /// Worker threads across rows; 0 = hardware concurrency.
  int workers = 0;
  std::string program_name = "program";
  /// Optional cache for the front end (memory layer), as in SweepOptions.
  ArtifactCache* cache = nullptr;
};

class SweepEngine {
 public:
  /// `registry` defaults to the process-wide backend registry. Register all
  /// backends before running a sweep — registration is not thread-safe.
  explicit SweepEngine(BackendRegistry* registry = nullptr);

  [[nodiscard]] SweepReport run(std::string_view source,
                                const SweepOptions& options) const;

  /// Sweep-driven auto-fitting: pays for the front end (and the shared
  /// layout analysis) once, then bisects the spec's range field per
  /// enumerated row on Lower-level clones — ~log2(hi-lo) Layout runs per
  /// row instead of a full-grid sweep.
  [[nodiscard]] FitReport fit(std::string_view source,
                              const FitOptions& options) const;

 private:
  BackendRegistry* registry_;
};

}  // namespace lucid
