// lucidc — the Lucid compiler command-line driver.
//
//   lucidc FILE.lucid              compile; print a layout summary
//   lucidc --p4 FILE.lucid         compile and print generated P4_16
//   lucidc --ir FILE.lucid         compile and dump the atomic table graphs
//   lucidc --layout FILE.lucid     compile and dump the merged pipeline
//   lucidc --check FILE.lucid      front end only (parse + memops + effects)
//
// Exit status 0 on success, 1 on any diagnostic error — usable in build
// scripts and CI like any other compiler.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "p4/emit.hpp"

namespace {

void usage() {
  std::cerr << "usage: lucidc [--p4|--ir|--layout|--check] FILE.lucid\n";
}

std::string slurp(const std::string& path, bool& ok) {
  std::ifstream in(path);
  if (!in) {
    ok = false;
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  ok = true;
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "summary";
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--p4") {
      mode = "p4";
    } else if (arg == "--ir") {
      mode = "ir";
    } else if (arg == "--layout") {
      mode = "layout";
    } else if (arg == "--check") {
      mode = "check";
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 1;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    usage();
    return 1;
  }

  bool read_ok = false;
  const std::string source = slurp(path, read_ok);
  if (!read_ok) {
    std::cerr << "lucidc: cannot read '" << path << "'\n";
    return 1;
  }

  lucid::DiagnosticEngine diags(source);

  if (mode == "check") {
    const auto fe = lucid::sema::parse_and_check(source, diags);
    std::cerr << diags.render();
    if (!fe.ok) return 1;
    std::cout << path << ": OK ("
              << fe.program.events().size() << " events, "
              << fe.program.globals().size() << " arrays)\n";
    return 0;
  }

  const lucid::CompileResult r = lucid::compile(source, diags);
  std::cerr << diags.render();
  if (!r.ok) return 1;

  if (mode == "p4") {
    const auto p4 = lucid::p4::emit(r, path);
    std::cout << p4.text;
    return 0;
  }
  if (mode == "ir") {
    for (const auto& h : r.ir.handlers) std::cout << h.str() << "\n";
    return 0;
  }
  if (mode == "layout") {
    std::cout << r.pipeline.str();
    return 0;
  }

  std::cout << path << ": compiled OK\n"
            << "  events            : " << r.ir.events.size() << "\n"
            << "  arrays            : " << r.ir.arrays.size() << "\n"
            << "  handlers          : " << r.ir.handlers.size() << "\n"
            << "  unoptimized stages: " << r.stats.unoptimized_stages << "\n"
            << "  optimized stages  : " << r.stats.optimized_stages << "\n"
            << "  fits Tofino model : " << (r.stats.fits ? "yes" : "NO")
            << "\n";
  return 0;
}
