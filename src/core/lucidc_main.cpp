// lucidc — the Lucid compiler command-line driver, on the staged
// CompilerDriver pipeline (Parse → Sema → Lower → Layout → Emit).
//
//   lucidc FILE.lucid                 compile; print a layout summary
//   lucidc --emit=p4 FILE.lucid       emit through a registered backend
//   lucidc --emit=ebpf FILE.lucid     emit a self-contained XDP C program
//   lucidc --emit=interp FILE.lucid   print the interpreter binding summary
//   lucidc --stop-after=STAGE FILE    stop after parse|sema|lower|layout
//   lucidc --time-passes FILE         print per-stage wall-clock timings
//   lucidc --time-passes=json FILE    ... as one machine-readable JSON
//                                     object (consumed by bench_layout/CI)
//   lucidc --sweep=GRID FILE          compile against a resource-model grid
//                                     (e.g. --sweep=stages=8,12;salus=2,4),
//                                     sharing one front-end run across all
//                                     variants and emitting in parallel
//   lucidc --fit=SPEC FILE            binary-search the smallest resource
//                                     model the program fits (e.g.
//                                     --fit=stages=1..20;salus=2,4: bisect
//                                     stages per enumerated salus row)
//   lucidc --incremental-from=OLD ... recompile against a previous version
//                                     of the source: only decls that
//                                     changed (plus dependents) re-run
//                                     Sema/Lower; whitespace/comment edits
//                                     reuse everything past Parse
//   lucidc --cache-dir=DIR ...        cache emitted artifacts under DIR
//   lucidc --jobs=N                   worker threads for --sweep (default:
//                                     hardware concurrency)
//   lucidc --backends=p4,interp ...   backends a --sweep emits (default:
//                                     every registered text backend)
//   lucidc --ctrl-demo FILE           deploy on one simulated switch and
//                                     drive the runtime control plane:
//                                     batched register installs applied at
//                                     scheduler boundaries, then the
//                                     install/apply statistics snapshot
//                                     plus a metrics dump
//   lucidc --native-demo FILE         JIT-compile the program and run a
//                                     synthetic burst schedule on the
//                                     sharded native data path; print
//                                     per-shard and merged statistics
//   lucidc --native-shards=N          shard count for --native-demo
//                                     (default 1)
//   lucidc --native-dispatch=KIND     event dispatch flavour for the JIT
//                                     module: switch (portable, default),
//                                     goto (computed-goto threaded
//                                     dispatch), or auto (build both,
//                                     micro-measure, keep the winner)
//   lucidc --trace-out=FILE ...       record structured spans across the
//                                     compiler/runtimes and write Chrome
//                                     trace-event JSON (open in Perfetto)
//   lucidc --trace-sample=N ...       record every N-th span (default 1)
//   lucidc --metrics-out=FILE ...     write the process metrics snapshot on
//                                     exit: Prometheus text exposition when
//                                     FILE ends in .prom/.txt, JSON otherwise
//   lucidc --list-backends            list registered backends
//   lucidc --version                  print the compiler version
//
// Legacy spellings are kept for one release: --p4 (= --emit=p4), --check
// (= --stop-after=sema), --ir and --layout (stage dumps).
//
// Exit status: 0 on success, 1 on compilation/input errors, 2 on usage
// errors (unknown flag, missing file operand, unknown stage/backend/grid
// name).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <chrono>

#include "core/backends.hpp"
#include "core/cache.hpp"
#include "core/sweep.hpp"
#include "ctrl/interp_bridge.hpp"
#include "interp/testbed.hpp"
#include "native/differential.hpp"
#include "native/fleet.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/strings.hpp"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;

void usage(std::ostream& os) {
  os << "usage: lucidc [options] FILE.lucid\n"
        "options:\n"
        "  --emit=BACKEND     emit via a registered backend (see "
        "--list-backends)\n"
        "  --stop-after=STAGE stop after parse|sema|lower|layout\n"
        "  --time-passes      print per-stage wall-clock timings to stderr\n"
        "  --time-passes=json ... as machine-readable JSON (one object)\n"
        "  --sweep=GRID       compile against a resource-model grid, e.g.\n"
        "                     stages=8,12;salus=2,4 "
        "(fields: stages|tables|salus|rules|members|aluops)\n"
        "  --fit=SPEC         bisect the smallest fitting resource model,\n"
        "                     e.g. stages=1..20;salus=2,4 (one MIN..MAX\n"
        "                     range field; exits 1 if any row cannot fit)\n"
        "  --incremental-from=OLD\n"
        "                     recompile reusing a previous compile of OLD:\n"
        "                     only changed decls (and dependents) re-run\n"
        "                     Sema/Lower\n"
        "  --cache-dir=DIR    reuse/store emitted artifacts under DIR\n"
        "  --jobs=N           sweep worker threads (default: all cores)\n"
        "  --sema-workers=N   worker threads for Sema's per-decl body checks\n"
        "                     (default 1 = serial; diagnostics identical at\n"
        "                     any count)\n"
        "  --backends=LIST    backends a --sweep emits (default: p4,ebpf,"
        "interp)\n"
        "  --ctrl-demo        deploy on one simulated switch, drive batched\n"
        "                     control-plane installs, print the stats "
        "snapshot\n"
        "                     and a metrics dump\n"
        "  --native-demo      JIT-compile the program and run a synthetic\n"
        "                     burst schedule on the sharded native data "
        "path;\n"
        "                     print per-shard and merged statistics\n"
        "  --native-shards=N  shard count for --native-demo (default 1)\n"
        "  --native-dispatch=KIND\n"
        "                     JIT event dispatch: switch (portable, "
        "default),\n"
        "                     goto (computed-goto threaded dispatch), or\n"
        "                     auto (build both, micro-measure, keep the\n"
        "                     winner)\n"
        "  --trace-out=FILE   record spans (compiler stages, sweep jobs,\n"
        "                     interp handlers) and write Chrome trace-event\n"
        "                     JSON on exit — load FILE in ui.perfetto.dev\n"
        "  --trace-sample=N   record every N-th span (default 1 = all)\n"
        "  --metrics-out=FILE write the metrics snapshot on exit\n"
        "                     (.prom/.txt: Prometheus text format; else "
        "JSON)\n"
        "  --ir               dump the atomic table graphs\n"
        "  --layout           dump the merged pipeline\n"
        "  --p4               alias for --emit=p4\n"
        "  --check            alias for --stop-after=sema\n"
        "  --list-backends    list backends (name, required stage, "
        "description) and exit\n"
        "  --version          print version and exit\n"
        "  -h, --help         this message\n";
}

std::string slurp(const std::string& path, bool& ok) {
  std::ifstream in(path);
  if (!in) {
    ok = false;
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  ok = true;
  return ss.str();
}

/// Writes the observability outputs on scope exit, so every return path —
/// success, compile error, even --ctrl-demo — flushes what was recorded.
/// (Usage errors return before this guard is armed: nothing ran.)
struct ObsOutputs {
  std::string trace_path;
  std::string metrics_path;

  ~ObsOutputs() {
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (out) {
        out << lucid::obs::Tracer::global().chrome_json();
      } else {
        std::cerr << "lucidc: cannot write trace to '" << trace_path << "'\n";
      }
    }
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      if (out) {
        const bool prom = lucid::ends_with(metrics_path, ".prom") ||
                          lucid::ends_with(metrics_path, ".txt");
        out << (prom ? lucid::obs::Registry::global().prometheus()
                     : lucid::obs::Registry::global().json());
      } else {
        std::cerr << "lucidc: cannot write metrics to '" << metrics_path
                  << "'\n";
      }
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  lucid::register_default_backends();

  std::string backend;                            // --emit=...
  lucid::Stage stop_after = lucid::Stage::Layout; // --stop-after=...
  bool stop_requested = false;
  bool time_passes = false;
  bool time_passes_json = false;                  // --time-passes=json
  std::string dump;  // "ir" | "layout"
  std::string sweep_spec;                         // --sweep=...
  bool sweep_requested = false;
  std::string fit_spec;                           // --fit=...
  bool fit_requested = false;
  std::string incremental_from;                   // --incremental-from=...
  std::vector<std::string> sweep_backends;        // --backends=...
  bool backends_requested = false;
  std::string cache_dir;                          // --cache-dir=...
  int jobs = 0;                                   // --jobs=...
  int sema_workers = 1;                           // --sema-workers=...
  bool ctrl_demo = false;                         // --ctrl-demo
  bool native_demo = false;                       // --native-demo
  int native_shards = 1;                          // --native-shards=...
  std::string native_dispatch = "switch";         // --native-dispatch=...
  bool native_opts_requested = false;
  std::string trace_out;                          // --trace-out=...
  int trace_sample = 1;                           // --trace-sample=...
  std::string metrics_out;                        // --metrics-out=...
  std::string path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return kExitOk;
    } else if (arg == "--version") {
      std::cout << "lucidc (Lucid compiler) " << lucid::kLucidVersion << "\n";
      return kExitOk;
    } else if (arg == "--list-backends") {
      // name, the deepest stage it needs, and a one-line description.
      auto& reg = lucid::BackendRegistry::global();
      std::size_t name_w = 4;
      for (const auto& name : reg.names()) {
        name_w = std::max(name_w, name.size());
      }
      for (const auto& name : reg.names()) {
        const lucid::Backend* b = reg.find(name);
        std::cout << name << std::string(name_w - name.size() + 2, ' ')
                  << "requires=" << lucid::stage_name(b->required_stage())
                  << "  " << b->description() << "\n";
      }
      return kExitOk;
    } else if (lucid::starts_with(arg, "--emit=")) {
      backend = arg.substr(7);
      if (backend.empty()) {
        std::cerr << "lucidc: --emit requires a backend name (see "
                     "--list-backends)\n";
        return kExitUsage;
      }
    } else if (lucid::starts_with(arg, "--stop-after=")) {
      const std::string name = arg.substr(13);
      const auto stage = lucid::stage_from_name(name);
      if (!stage || *stage == lucid::Stage::Emit) {
        std::cerr << "lucidc: unknown stage '" << name
                  << "' (expected parse|sema|lower|layout)\n";
        return kExitUsage;
      }
      stop_after = *stage;
      stop_requested = true;
    } else if (arg == "--time-passes" ||
               lucid::starts_with(arg, "--time-passes=")) {
      time_passes = true;
      if (lucid::starts_with(arg, "--time-passes=")) {
        const std::string format = arg.substr(14);
        if (format == "json") {
          time_passes_json = true;
        } else if (format != "human") {
          std::cerr << "lucidc: unknown --time-passes format '" << format
                    << "' (expected human|json)\n";
          return kExitUsage;
        }
      }
    } else if (lucid::starts_with(arg, "--sweep=") || arg == "--sweep") {
      sweep_spec = arg == "--sweep" ? "" : arg.substr(8);
      sweep_requested = true;
    } else if (lucid::starts_with(arg, "--fit=")) {
      fit_spec = arg.substr(6);
      fit_requested = true;
    } else if (lucid::starts_with(arg, "--incremental-from=")) {
      incremental_from = arg.substr(19);
      if (incremental_from.empty()) {
        std::cerr << "lucidc: --incremental-from requires a file path\n";
        return kExitUsage;
      }
    } else if (lucid::starts_with(arg, "--backends=")) {
      sweep_backends.clear();
      for (const std::string& b : lucid::split(arg.substr(11), ',')) {
        const std::string name{lucid::trim(b)};
        if (!name.empty()) sweep_backends.push_back(name);
      }
      if (sweep_backends.empty()) {
        std::cerr << "lucidc: --backends requires a comma-separated backend "
                     "list (see --list-backends)\n";
        return kExitUsage;
      }
      backends_requested = true;
    } else if (lucid::starts_with(arg, "--cache-dir=")) {
      cache_dir = arg.substr(12);
      if (cache_dir.empty()) {
        std::cerr << "lucidc: --cache-dir requires a directory path\n";
        return kExitUsage;
      }
    } else if (lucid::starts_with(arg, "--jobs=")) {
      const auto parsed = lucid::parse_positive_int(arg.substr(7));
      if (!parsed) {
        std::cerr << "lucidc: --jobs requires a positive integer\n";
        return kExitUsage;
      }
      jobs = *parsed;
    } else if (lucid::starts_with(arg, "--sema-workers=")) {
      const auto parsed = lucid::parse_positive_int(arg.substr(15));
      if (!parsed) {
        std::cerr << "lucidc: --sema-workers requires a positive integer\n";
        return kExitUsage;
      }
      sema_workers = *parsed;
    } else if (arg == "--ctrl-demo") {
      ctrl_demo = true;
    } else if (arg == "--native-demo") {
      native_demo = true;
    } else if (lucid::starts_with(arg, "--native-shards=")) {
      const auto parsed = lucid::parse_positive_int(arg.substr(16));
      if (!parsed) {
        std::cerr << "lucidc: --native-shards requires a positive integer\n";
        return kExitUsage;
      }
      native_shards = *parsed;
      native_opts_requested = true;
    } else if (lucid::starts_with(arg, "--native-dispatch=")) {
      native_dispatch = arg.substr(18);
      if (native_dispatch != "switch" && native_dispatch != "goto" &&
          native_dispatch != "auto") {
        std::cerr << "lucidc: unknown --native-dispatch '" << native_dispatch
                  << "' (expected switch|goto|auto)\n";
        return kExitUsage;
      }
      native_opts_requested = true;
    } else if (lucid::starts_with(arg, "--trace-out=")) {
      trace_out = arg.substr(12);
      if (trace_out.empty()) {
        std::cerr << "lucidc: --trace-out requires a file path\n";
        return kExitUsage;
      }
    } else if (lucid::starts_with(arg, "--trace-sample=")) {
      const auto parsed = lucid::parse_positive_int(arg.substr(15));
      if (!parsed) {
        std::cerr << "lucidc: --trace-sample requires a positive integer\n";
        return kExitUsage;
      }
      trace_sample = *parsed;
    } else if (lucid::starts_with(arg, "--metrics-out=")) {
      metrics_out = arg.substr(14);
      if (metrics_out.empty()) {
        std::cerr << "lucidc: --metrics-out requires a file path\n";
        return kExitUsage;
      }
    } else if (arg == "--p4") {
      backend = "p4";
    } else if (arg == "--check") {
      stop_after = lucid::Stage::Sema;
      stop_requested = true;
    } else if (arg == "--ir") {
      dump = "ir";
    } else if (arg == "--layout") {
      dump = "layout";
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "lucidc: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return kExitUsage;
    } else if (!path.empty()) {
      std::cerr << "lucidc: more than one input file ('" << path << "' and '"
                << arg << "')\n";
      return kExitUsage;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::cerr << "lucidc: no input file\n";
    usage(std::cerr);
    return kExitUsage;
  }

  // Reject contradictory or unsatisfiable combinations up front (exit 2),
  // before any compilation work.
  if (ctrl_demo &&
      (sweep_requested || fit_requested || !backend.empty() ||
       stop_requested || !dump.empty() || time_passes)) {
    std::cerr << "lucidc: --ctrl-demo deploys and drives the program itself; "
                 "it cannot be combined with --emit, --sweep, --fit, "
                 "--stop-after, --ir, --layout, or --time-passes\n";
    return kExitUsage;
  }
  if (native_demo &&
      (sweep_requested || fit_requested || !backend.empty() ||
       stop_requested || !dump.empty() || time_passes || ctrl_demo)) {
    std::cerr << "lucidc: --native-demo compiles and runs the program "
                 "itself; it cannot be combined with --emit, --sweep, "
                 "--fit, --stop-after, --ir, --layout, --time-passes, or "
                 "--ctrl-demo\n";
    return kExitUsage;
  }
  if (native_opts_requested && !native_demo) {
    std::cerr << "lucidc: --native-shards and --native-dispatch only apply "
                 "to --native-demo\n";
    return kExitUsage;
  }
  if (sweep_requested && fit_requested) {
    std::cerr << "lucidc: --sweep and --fit are different drivers; pick "
                 "one\n";
    return kExitUsage;
  }
  if (!incremental_from.empty() && (sweep_requested || fit_requested)) {
    std::cerr << "lucidc: --incremental-from applies to single compiles "
                 "(--emit / dumps / the default summary), not --sweep or "
                 "--fit\n";
    return kExitUsage;
  }
  std::vector<lucid::SweepVariant> sweep_variants;
  if (sweep_requested) {
    if (!backend.empty() || stop_requested || !dump.empty() || time_passes) {
      std::cerr << "lucidc: --sweep runs its own layout+emission pipeline "
                   "and reports per-variant timings itself; it cannot be "
                   "combined with --emit, --stop-after, --ir, --layout, or "
                   "--time-passes\n";
      return kExitUsage;
    }
    std::string grid_error;
    const auto parsed = lucid::parse_sweep_grid(sweep_spec, &grid_error);
    if (!parsed) {
      std::cerr << "lucidc: bad --sweep grid: " << grid_error << "\n";
      return kExitUsage;
    }
    sweep_variants = *parsed;
  }
  std::optional<lucid::FitSpec> fit_parsed;
  if (fit_requested) {
    if (!backend.empty() || stop_requested || !dump.empty() || time_passes) {
      std::cerr << "lucidc: --fit runs its own layout bisection and reports "
                   "per-row results itself; it cannot be combined with "
                   "--emit, --stop-after, --ir, --layout, or "
                   "--time-passes\n";
      return kExitUsage;
    }
    std::string fit_error;
    fit_parsed = lucid::parse_fit_spec(fit_spec, &fit_error);
    if (!fit_parsed) {
      std::cerr << "lucidc: bad --fit spec: " << fit_error << "\n";
      return kExitUsage;
    }
  }
  if (jobs > 0 && !sweep_requested && !fit_requested) {
    std::cerr << "lucidc: --jobs only applies to --sweep and --fit\n";
    return kExitUsage;
  }
  if (backends_requested) {
    if (!sweep_requested) {
      std::cerr << "lucidc: --backends only applies to --sweep (use --emit "
                   "for a single backend)\n";
      return kExitUsage;
    }
    for (const std::string& name : sweep_backends) {
      if (lucid::BackendRegistry::global().find(name) == nullptr) {
        std::cerr << "lucidc: unknown backend '" << name << "'; registered:";
        for (const auto& n : lucid::BackendRegistry::global().names()) {
          std::cerr << " " << n;
        }
        std::cerr << "\n";
        return kExitUsage;
      }
    }
  }
  if (!cache_dir.empty() && !sweep_requested && backend.empty()) {
    // --fit emits nothing, so the disk layer would never be read or
    // written; rejecting the combination beats silently ignoring it.
    std::cerr << "lucidc: --cache-dir only applies to --emit or --sweep "
                 "(--fit emits no artifacts to cache)\n";
    return kExitUsage;
  }
  if (!backend.empty()) {
    if (stop_requested) {
      std::cerr << "lucidc: --emit runs every stage; it cannot be combined "
                   "with --stop-after\n";
      return kExitUsage;
    }
    if (!dump.empty()) {
      std::cerr << "lucidc: --" << dump
                << " cannot be combined with --emit (pick one output)\n";
      return kExitUsage;
    }
    if (lucid::BackendRegistry::global().find(backend) == nullptr) {
      std::cerr << "lucidc: unknown backend '" << backend << "'; registered:";
      for (const auto& name : lucid::BackendRegistry::global().names()) {
        std::cerr << " " << name;
      }
      std::cerr << "\n";
      return kExitUsage;
    }
  }
  if (dump == "ir" && stop_requested && stop_after < lucid::Stage::Lower) {
    std::cerr << "lucidc: --ir needs the 'lower' stage; conflicting "
                 "--stop-after=" << lucid::stage_name(stop_after) << "\n";
    return kExitUsage;
  }
  if (dump == "layout" && stop_requested &&
      stop_after < lucid::Stage::Layout) {
    std::cerr << "lucidc: --layout needs the 'layout' stage; conflicting "
                 "--stop-after=" << lucid::stage_name(stop_after) << "\n";
    return kExitUsage;
  }

  if (trace_sample != 1 && trace_out.empty()) {
    std::cerr << "lucidc: --trace-sample only applies with --trace-out\n";
    return kExitUsage;
  }

  bool read_ok = false;
  const std::string source = slurp(path, read_ok);
  if (!read_ok) {
    std::cerr << "lucidc: cannot read '" << path << "'\n";
    return kExitError;
  }

  // Observability: arm recording before any compilation work; the guard's
  // destructor writes the outputs on every return path below. --trace-out
  // and --metrics-out compose with every mode (including --ctrl-demo).
  ObsOutputs obs_outputs;
  obs_outputs.trace_path = trace_out;
  obs_outputs.metrics_path = metrics_out;
  if (!trace_out.empty()) {
    lucid::obs::TracerConfig tcfg;
    tcfg.sample_every = static_cast<std::uint32_t>(trace_sample);
    lucid::obs::Tracer::global().enable(tcfg);
  }

  // Control-plane demo: deploy on one simulated switch, install a batch of
  // registers per declared array through the async update queue, and show
  // the apply statistics. Batches drain at scheduler boundaries (the
  // periodic control tick here — no traffic is running).
  if (ctrl_demo) {
    lucid::interp::TestbedConfig tb_cfg;
    tb_cfg.program_name = path;
    lucid::interp::Testbed tb(source, tb_cfg);
    if (!tb.ok()) {
      std::cerr << tb.diagnostics();
      return kExitError;
    }
    lucid::ctrl::RuntimeControl rc(tb.node(1));
    const auto& arrays = tb.compilation().ir().arrays;
    if (arrays.empty()) {
      std::cerr << "lucidc: --ctrl-demo: '" << path
                << "' declares no arrays to install into\n";
      return kExitError;
    }
    std::cout << path << ": control-plane demo on 1 switch\n";
    for (const auto& a : arrays) {
      lucid::ctrl::UpdateBatch batch;
      const std::int64_t n = std::min<std::int64_t>(a.size, 256);
      for (std::int64_t i = 0; i < n; ++i) {
        batch.writes.push_back(lucid::ctrl::RegWrite{a.name, i, i});
      }
      batch.reads.push_back(lucid::ctrl::RegRead{a.name, 0});
      rc.plane().submit(std::move(batch));
      std::cout << "  queued batch: " << n << " installs into '" << a.name
                << "' (Array<<" << a.width << ">>(" << a.size << "))\n";
    }
    const std::size_t queued = rc.plane().pending();
    tb.settle(lucid::sim::kMs);
    const lucid::ctrl::ControlPlaneStats s = rc.plane().snapshot();
    std::cout << "  queue depth       : " << queued << " -> " << s.queue_depth
              << "\n"
              << "  batches applied   : " << s.batches_applied << "\n"
              << "  registers written : " << s.writes_applied << "\n"
              << "  reads served      : " << s.reads_served << "\n"
              << "  apply points      : " << s.apply_points << "\n"
              << "  apply latency     : mean " << s.apply_latency_mean_ns
              << " ns, max " << s.apply_latency_max_ns << " ns\n"
              << "  update path busy  : " << s.update_path_busy_ns << " ns ("
              << static_cast<long long>(s.modeled_installs_per_sec)
              << " installs/s modeled)\n";
    // The same run seen through the shared observability layer (the exact
    // stats above come from the plane's own samples; these aggregates are
    // what --metrics-out would export).
    std::cout << "  metrics snapshot (Prometheus text format):\n"
              << lucid::indent(lucid::obs::Registry::global().prometheus(),
                               4);
    return s.batches_applied == arrays.size() && s.queue_depth == 0
               ? kExitOk
               : kExitError;
  }

  // Native-engine demo: JIT-compile the program (with the requested
  // dispatch flavour), shard a synthetic burst schedule across a
  // ReplicaFleet by the stable flow hash, and run it to the horizon on one
  // worker thread per shard.
  if (native_demo) {
    lucid::interp::TestbedConfig tb_cfg;
    tb_cfg.program_name = path;
    lucid::interp::Testbed tb(source, tb_cfg);
    if (!tb.ok()) {
      std::cerr << tb.diagnostics();
      return kExitError;
    }
    lucid::native::ProgramOptions popts;
    if (native_dispatch == "auto") {
      popts.measure_dispatch = true;
    } else if (native_dispatch == "goto") {
      popts.dispatch = lucid::native::Dispatch::kThreadedGoto;
    }
    std::string err;
    const auto prog =
        lucid::native::Program::build(tb.compilation_ptr(), &err, popts);
    if (prog == nullptr) {
      std::cerr << "lucidc: --native-demo: " << err << "\n";
      return kExitError;
    }
    lucid::native::FleetConfig fcfg;
    fcfg.shards = native_shards;
    lucid::native::ReplicaFleet fleet(prog, fcfg);
    const lucid::native::diff::Schedule sched =
        lucid::native::diff::make_burst_schedule(prog->ir(), 7, 200, 32);
    for (const auto& e : sched.entries) {
      fleet.schedule_inject(e.t, e.event, e.args);
    }
    const auto t0 = std::chrono::steady_clock::now();
    fleet.run_until(sched.horizon);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const auto merged = fleet.merged_stats();
    const auto runs = fleet.merged_run_stats();
    std::cout << path << ": native demo, " << fleet.shards()
              << " shard(s), dispatch="
              << lucid::native::dispatch_name(prog->dispatch()) << "\n";
    for (int s = 0; s < fleet.shards(); ++s) {
      std::cout << "  shard " << s << "          : "
                << fleet.shard(static_cast<std::size_t>(s)).stats().executed
                << " packets executed\n";
    }
    std::cout << "  injections       : " << sched.entries.size() << "\n"
              << "  executed (merged): " << merged.executed << "\n"
              << "  handler runs     : " << runs.total_executions << " ("
              << merged.recirculations << " recirculations)\n"
              << "  event-loop rate  : "
              << static_cast<long long>(
                     wall_s > 0 ? static_cast<double>(merged.executed) /
                                      wall_s
                                : 0.0)
              << " packets/s\n";
    return merged.executed > 0 ? kExitOk : kExitError;
  }

  lucid::DriverOptions opts;
  opts.program_name = path;
  opts.sema_workers = sema_workers;
  const lucid::CompilerDriver driver(opts);

  // Resource-model sweep: one front end, N variants, parallel emission.
  if (sweep_requested) {
    lucid::ArtifactCache cache(lucid::Stage::Lower, cache_dir);
    lucid::SweepOptions sweep_opts;
    sweep_opts.variants = std::move(sweep_variants);
    sweep_opts.program_name = path;
    sweep_opts.workers = jobs;
    if (backends_requested) sweep_opts.backends = sweep_backends;
    if (!cache_dir.empty()) sweep_opts.cache = &cache;
    const lucid::SweepReport report =
        lucid::SweepEngine().run(source, sweep_opts);
    std::cout << report.str();
    return report.ok ? kExitOk : kExitError;
  }

  // Auto-fitting: bisect the smallest fitting resource model. Exit 0 only
  // when every enumerated row found a fit inside the range. (FitOptions'
  // cache stays a library affordance — a one-shot process has nothing to
  // share, and --cache-dir is rejected above.)
  if (fit_requested) {
    lucid::FitOptions fit_opts;
    fit_opts.spec = std::move(*fit_parsed);
    fit_opts.program_name = path;
    fit_opts.workers = jobs;
    const lucid::FitReport report =
        lucid::SweepEngine().fit(source, fit_opts);
    std::cout << report.str();
    return report.ok && report.all_fit ? kExitOk : kExitError;
  }

  // Incremental recompile: read the previous version up front (cheap
  // input validation), but defer compiling it until a compilation is
  // actually needed — the --emit disk-cache fast path below can skip all
  // compilation, including prev's.
  std::string prev_source;
  if (!incremental_from.empty()) {
    bool prev_ok = false;
    prev_source = slurp(incremental_from, prev_ok);
    if (!prev_ok) {
      std::cerr << "lucidc: cannot read '" << incremental_from << "'\n";
      return kExitError;
    }
  }
  lucid::CompilationPtr comp;
  const auto make_comp = [&] {
    if (incremental_from.empty()) {
      comp = driver.start(source);
      return;
    }
    // Lower-deep: recompile() reuses Parse..Lower artifacts, and Layout is
    // cheapest paid exactly once — on the result (an edit would invalidate
    // a prev Layout run anyway). Library callers holding a fully compiled
    // prev (the IDE loop) get Layout inherited for free on formatting
    // edits; a one-shot CLI process has no such compile to reuse.
    const lucid::CompilationPtr prev =
        driver.run(prev_source, lucid::Stage::Lower);
    if (!prev->succeeded(lucid::Stage::Lower)) {
      std::cerr << "lucidc: warning: previous version '" << incremental_from
                << "' does not compile; falling back to a cold compile\n";
    }
    // --stop-after bounds the recompile like it bounds a cold compile.
    comp = driver.recompile(prev, source,
                            stop_requested ? stop_after : lucid::Stage::Lower);
  };

  // Shared by every exit path below. In json mode the object is printed as
  // the *last line* of stderr (diagnostics render first), so consumers can
  // `tail -n 1` it robustly.
  const auto print_timings = [&] {
    if (!time_passes) return;
    std::cerr << (time_passes_json ? comp->timing_report_json()
                                   : comp->timing_report());
  };

  // Backends drive exactly the stages they need through the driver's emit().
  if (!backend.empty()) {
    // Disk cache fast path: a prior invocation already emitted this
    // structural (source, options, backend) combination with this compiler
    // version. A hit skips compilation entirely (the incremental prev
    // compile included), so it also skips non-fatal diagnostics;
    // --time-passes forces a real compile.
    lucid::ArtifactCache cache(lucid::Stage::Lower, cache_dir);
    if (!cache_dir.empty() && !time_passes) {
      if (auto cached = cache.load_artifact(source, opts, backend)) {
        std::cout << cached->text;
        return kExitOk;
      }
    }
    make_comp();
    const lucid::BackendArtifact artifact = driver.emit(comp, backend);
    std::cerr << comp->diags().render();
    print_timings();
    if (!artifact.ok) return kExitError;
    if (!cache_dir.empty()) cache.store_artifact(source, opts, artifact);
    std::cout << artifact.text;
    return kExitOk;
  }

  // Dumps imply the stages they need.
  make_comp();
  lucid::Stage until = stop_after;
  if (dump == "ir" && !stop_requested) until = lucid::Stage::Lower;
  driver.run_until(comp, until);

  if (!comp->ok()) {
    std::cerr << comp->diags().render();
    print_timings();
    return kExitError;
  }

  std::cerr << comp->diags().render();
  if (dump == "ir") {
    for (const auto& h : comp->ir().handlers) std::cout << h.str() << "\n";
    print_timings();
    return kExitOk;
  }
  if (dump == "layout") {
    std::cout << comp->pipeline().str();
    print_timings();
    return kExitOk;
  }

  if (stop_requested && stop_after < lucid::Stage::Layout) {
    std::cout << path << ": OK after stage '"
              << lucid::stage_name(stop_after) << "'";
    if (comp->succeeded(lucid::Stage::Sema)) {
      std::cout << " (" << comp->ast().events().size() << " events, "
                << comp->ast().globals().size() << " arrays)";
    }
    std::cout << "\n";
    print_timings();
    return kExitOk;
  }

  const auto& stats = comp->layout_stats();
  std::cout << path << ": compiled OK\n"
            << "  events            : " << comp->ir().events.size() << "\n"
            << "  arrays            : " << comp->ir().arrays.size() << "\n"
            << "  handlers          : " << comp->ir().handlers.size() << "\n"
            << "  unoptimized stages: " << stats.unoptimized_stages << "\n"
            << "  optimized stages  : " << stats.optimized_stages << "\n"
            << "  fits Tofino model : " << (stats.fits ? "yes" : "NO") << "\n";
  if (!incremental_from.empty()) {
    std::cout << "  decls reused      : "
              << comp->record(lucid::Stage::Parse).decls_reused
              << " (parse), "
              << comp->record(lucid::Stage::Sema).decls_reused << " (sema), "
              << comp->record(lucid::Stage::Lower).decls_reused
              << " handler graphs (lower)\n";
  }
  print_timings();
  return kExitOk;
}
