// ArtifactCache: source-hash-keyed reuse of compiler artifacts across driver
// invocations.
//
// Two layers:
//
//   * An in-memory front-end cache. The first compilation of a source runs
//     Parse..keep_stage (default Lower — everything that is independent of
//     the resource model) and parks the result as an immutable "master".
//     Later compilations of byte-identical source get a
//     Compilation::clone_from_stage of the master: the AST, analysis info,
//     and IR are shared, only Layout/Emit re-run. Entries are invalidated
//     when the source bytes change (different hash, so a plain miss) or when
//     the DriverOptions fingerprint relevant to the cached stages changes.
//
//   * An optional disk cache for emitted backend artifacts (--cache-dir).
//     Emission output is a plain string, so it round-trips losslessly; the
//     key covers the source hash, the options fingerprint (resource model +
//     program name, both of which shape the emitted text), the backend
//     name, and the compiler version — artifacts for the same source from
//     different emitters or compiler builds never collide. Only successful
//     artifacts are stored.
//
// Thread safety: every public member is safe to call concurrently; the map
// is mutex-guarded and cached masters are immutable once inserted (clones
// never mutate their donor).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "core/driver.hpp"

namespace lucid {

/// 64-bit FNV-1a over arbitrary bytes (the cache key hash).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data);

/// Stable fingerprint of the DriverOptions fields that can influence stages
/// up to and including `upto`. Parse/Sema/Lower depend on nothing; Layout
/// adds the resource model; Emit adds the program name.
///
/// The fingerprint deliberately covers only *model-dependent* inputs of the
/// requested depth: a default (Lower-deep) cache entry is never invalidated
/// by a ResourceModel change, so the master — and the model-independent
/// opt::LayoutAnalysis it lazily owns (Compilation::layout_analysis_ptr) —
/// keeps being shared across sweeps over different models.
[[nodiscard]] std::string options_fingerprint(const DriverOptions& options,
                                              Stage upto);

class ArtifactCache {
 public:
  struct Stats {
    std::size_t hits = 0;           // front-end clone served from memory
    std::size_t misses = 0;         // front end had to run
    std::size_t invalidations = 0;  // entry dropped: options changed
    std::size_t disk_hits = 0;
    std::size_t disk_misses = 0;
    std::size_t disk_writes = 0;
  };

  /// `keep_stage` is the deepest stage the in-memory layer caches (clamped
  /// to [Sema, Layout]); `cache_dir` enables the disk layer when non-empty
  /// (the directory is created on first store).
  explicit ArtifactCache(Stage keep_stage = Stage::Lower,
                         std::string cache_dir = {});

  [[nodiscard]] Stage keep_stage() const { return keep_stage_; }
  [[nodiscard]] const std::string& cache_dir() const { return dir_; }

  /// Returns a compilation for `source` whose stages through keep_stage have
  /// run, reusing the cached front end when possible. The returned
  /// compilation always carries `driver.options()` and is exclusively the
  /// caller's (even on a miss it is a clone; the stored master stays
  /// pristine and immutable). A source whose front end fails is returned
  /// as-is and never cached. `hit`, when non-null, reports whether the front
  /// end was served from the cache (false means it ran just now).
  [[nodiscard]] CompilationPtr compile(const CompilerDriver& driver,
                                       std::string_view source,
                                       bool* hit = nullptr);

  /// Disk layer: loads the emitted artifact for (source, options, backend),
  /// or nullopt when the disk layer is off or the entry is absent/corrupt.
  [[nodiscard]] std::optional<BackendArtifact> load_artifact(
      std::string_view source, const DriverOptions& options,
      std::string_view backend);

  /// Disk layer: stores a successful artifact; no-op when the layer is off
  /// or the artifact failed.
  void store_artifact(std::string_view source, const DriverOptions& options,
                      const BackendArtifact& artifact);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  struct Entry {
    std::string fingerprint;
    ConstCompilationPtr master;
  };

  [[nodiscard]] std::string artifact_path(std::string_view source,
                                          const DriverOptions& options,
                                          std::string_view backend) const;

  Stage keep_stage_;
  std::string dir_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, Entry> entries_;
  Stats stats_;
};

}  // namespace lucid
