// ArtifactCache: structurally keyed reuse of compiler artifacts across
// driver invocations.
//
// Two layers:
//
//   * An in-memory front-end cache. The first compilation of a source runs
//     Parse..keep_stage (default Lower — everything that is independent of
//     the resource model) and parks the result as an immutable "master".
//     Later compilations of *structurally identical* source get a
//     Compilation::clone_from_stage of the master: the AST, analysis info,
//     and IR are shared, only Layout/Emit re-run. Entries are invalidated
//     when the structural key changes (a plain miss) or when the
//     DriverOptions fingerprint relevant to the cached stages changes.
//
//   * An optional disk cache for emitted backend artifacts (--cache-dir).
//     Emission output is a plain string, so it round-trips losslessly; the
//     key covers the structural source key, the options fingerprint, the
//     backend name, and the compiler version — artifacts for the same
//     source from different emitters or compiler builds never collide.
//     Only successful artifacts are stored.
//
// ---------------------------------------------------------------------------
// The two cache key ingredients, side by side
// ---------------------------------------------------------------------------
//
// Every entry is keyed by (structural source key) x (options fingerprint);
// the two cover disjoint inputs and invalidate independently:
//
// *Structural source key* — frontend::structural_hash: FNV-1a over the
// ordered per-decl fingerprint sequence (frontend/fingerprint.hpp), where
// each DeclFingerprint hashes the decl's kind, name, and canonical print.
// Properties (pinned by regression tests in tests/test_incremental.cpp):
//
//   * whitespace-, comment-, and formatting-INSENSITIVE: reformatting a
//     program is a plain cache hit — the canonical print is unchanged;
//   * decl-content-SENSITIVE: editing any decl's body or signature is a
//     miss;
//   * decl-order-SENSITIVE: reordering decls is a miss — declaration order
//     assigns pipeline stages (globals) and wire ids (events), so a
//     reordered program is a genuinely different program.
//
// A source that does not parse falls back to the raw byte hash (and is
// never cached — failures are not stored). Hash collisions cannot serve
// wrong artifacts: memory hits are confirmed with frontend::program_equal
// against the master's AST, and disk entries echo their structural key.
//
// *Options fingerprint* — options_fingerprint: the DriverOptions fields
// that can influence stages up to the requested depth. Parse/Sema/Lower
// depend on nothing; Layout adds the resource model; Emit adds the program
// name. The fingerprint deliberately covers only *model-dependent* inputs
// of the requested depth: a default (Lower-deep) cache entry is never
// invalidated by a ResourceModel change, so the master — and the
// model-independent opt::LayoutAnalysis it lazily owns
// (Compilation::layout_analysis_ptr) — keeps being shared across sweeps
// over different models. It is whitespace-irrelevant by construction (it
// never sees the source); the structural key is options-irrelevant — each
// guards its own axis.
//
// Thread safety: every public member is safe to call concurrently; the map
// is mutex-guarded and cached masters are immutable once inserted (clones
// never mutate their donor).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "core/driver.hpp"
#include "support/strings.hpp"  // fnv1a64 (the cache key hash)

namespace lucid {

/// Stable fingerprint of the DriverOptions fields that can influence stages
/// up to and including `upto` (see the "side by side" section in the file
/// header for how it composes with the structural source key).
[[nodiscard]] std::string options_fingerprint(const DriverOptions& options,
                                              Stage upto);

class ArtifactCache {
 public:
  struct Stats {
    std::size_t hits = 0;           // front-end clone served from memory
    std::size_t misses = 0;         // front end had to run
    std::size_t invalidations = 0;  // entry dropped: options changed
    std::size_t disk_hits = 0;
    std::size_t disk_misses = 0;
    std::size_t disk_writes = 0;
  };

  /// `keep_stage` is the deepest stage the in-memory layer caches (clamped
  /// to [Sema, Layout]); `cache_dir` enables the disk layer when non-empty
  /// (the directory is created on first store).
  explicit ArtifactCache(Stage keep_stage = Stage::Lower,
                         std::string cache_dir = {});

  [[nodiscard]] Stage keep_stage() const { return keep_stage_; }
  [[nodiscard]] const std::string& cache_dir() const { return dir_; }

  /// Returns a compilation for `source` whose stages through keep_stage have
  /// run, reusing the cached front end when possible. Lookup is by the
  /// structural source key, so a whitespace/comment/formatting variant of a
  /// cached program is a hit (served from the master parsed from the
  /// original bytes — structurally the same program). The returned
  /// compilation always carries `driver.options()` and is exclusively the
  /// caller's (even on a miss it is a clone; the stored master stays
  /// pristine and immutable). A source whose front end fails is returned
  /// as-is and never cached. `hit`, when non-null, reports whether the front
  /// end was served from the cache (false means it ran just now).
  [[nodiscard]] CompilationPtr compile(const CompilerDriver& driver,
                                       std::string_view source,
                                       bool* hit = nullptr);

  /// The structural key `source` would be cached under:
  /// frontend::structural_hash of its parse, or the raw byte hash when it
  /// does not parse. Memoized by byte hash, so repeated lookups (one per
  /// (variant, backend) emission in a sweep) parse at most once.
  [[nodiscard]] std::uint64_t source_key(std::string_view source);

  /// Disk layer: loads the emitted artifact for (source, options, backend),
  /// or nullopt when the disk layer is off or the entry is absent/corrupt.
  [[nodiscard]] std::optional<BackendArtifact> load_artifact(
      std::string_view source, const DriverOptions& options,
      std::string_view backend);

  /// Disk layer: stores a successful artifact; no-op when the layer is off
  /// or the artifact failed.
  void store_artifact(std::string_view source, const DriverOptions& options,
                      const BackendArtifact& artifact);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  struct Entry {
    std::string fingerprint;
    ConstCompilationPtr master;
  };

  [[nodiscard]] std::string artifact_path(std::uint64_t source_key,
                                          const DriverOptions& options,
                                          std::string_view backend) const;

  Stage keep_stage_;
  std::string dir_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, Entry> entries_;  // keyed by structural source key
  std::map<std::uint64_t, std::uint64_t> key_memo_;  // byte hash -> key
  /// Byte hash -> master these bytes were structurally confirmed against,
  /// so repeat lookups of a known formatting variant skip the probe parse
  /// and program_equal walk. Pointer identity self-invalidates when an
  /// entry is replaced. (Like key_memo_, trusts the byte hash to identify
  /// the bytes — the same 2^-64 collision class.)
  std::map<std::uint64_t, const void*> confirmed_;
  Stats stats_;
};

}  // namespace lucid
