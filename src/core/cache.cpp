#include "core/cache.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

namespace lucid {

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::string options_fingerprint(const DriverOptions& options, Stage upto) {
  std::ostringstream os;
  // Model-dependent inputs only appear at the depth that consumes them:
  // below Stage::Layout the fingerprint is empty, which is what lets a
  // Lower-deep master (and its shared LayoutAnalysis) serve every resource
  // model without invalidation.
  if (upto >= Stage::Layout) {
    const opt::ResourceModel& m = options.model;
    os << "model:" << m.max_stages << "," << m.tables_per_stage << ","
       << m.salus_per_stage << "," << m.rules_per_table << ","
       << m.members_per_table << "," << m.alu_ops_per_stage << ";";
  }
  if (upto >= Stage::Emit) {
    os << "name:" << options.program_name << ";";
  }
  return os.str();
}

namespace {

Stage clamp_keep_stage(Stage s) {
  const int i = static_cast<int>(s);
  if (i < static_cast<int>(Stage::Sema)) return Stage::Sema;
  if (i > static_cast<int>(Stage::Layout)) return Stage::Layout;
  return s;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

ArtifactCache::ArtifactCache(Stage keep_stage, std::string cache_dir)
    : keep_stage_(clamp_keep_stage(keep_stage)), dir_(std::move(cache_dir)) {}

CompilationPtr ArtifactCache::compile(const CompilerDriver& driver,
                                      std::string_view source, bool* hit) {
  const std::uint64_t key = fnv1a64(source);
  const std::string fp = options_fingerprint(driver.options(), keep_stage_);
  if (hit != nullptr) *hit = false;

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    // The hash is only a bucket key; the master holds its exact source, so
    // a collision can never serve another program's artifacts.
    if (it != entries_.end() && it->second.master->source() == source) {
      if (it->second.fingerprint == fp) {
        CompilationPtr clone =
            it->second.master->clone_from_stage(keep_stage_, driver.options());
        if (clone != nullptr) {
          ++stats_.hits;
          if (hit != nullptr) *hit = true;
          return clone;
        }
        // A master that cannot be cloned is a stale entry; fall through.
      }
      // Same source, different option fingerprint: the cached artifacts are
      // stale for this caller — drop and recompile.
      ++stats_.invalidations;
      entries_.erase(it);
    }
    ++stats_.misses;
  }

  // Front end runs outside the lock (compilations of different sources may
  // proceed in parallel; a duplicate race just overwrites an equal entry).
  CompilationPtr master = driver.run(source, keep_stage_);
  if (!master->succeeded(keep_stage_)) return master;  // failures not cached

  CompilationPtr clone = master->clone_from_stage(keep_stage_,
                                                  driver.options());
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_[key] = Entry{fp, master};
  }
  return clone != nullptr ? clone : master;
}

// ---------------------------------------------------------------------------
// Disk layer (emitted backend artifacts)
// ---------------------------------------------------------------------------

std::string ArtifactCache::artifact_path(std::string_view source,
                                         const DriverOptions& options,
                                         std::string_view backend) const {
  const std::string fp = options_fingerprint(options, Stage::Emit);
  // The key spells out the backend name and compiler version so artifacts
  // for the same source from different emitters (p4 vs ebpf) or different
  // compiler builds can never collide on disk; the in-file "compiler" record
  // stays as a second line of defense for hand-copied entries.
  std::string name = hex64(fnv1a64(source)) + "-" + hex64(fnv1a64(fp)) + "-" +
                     std::string(backend) + "-v" + std::string(kLucidVersion) +
                     ".art";
  return dir_ + "/" + name;
}

std::optional<BackendArtifact> ArtifactCache::load_artifact(
    std::string_view source, const DriverOptions& options,
    std::string_view backend) {
  if (dir_.empty()) return std::nullopt;
  std::ifstream in(artifact_path(source, options, backend),
                   std::ios::binary);
  const auto miss = [this]() -> std::optional<BackendArtifact> {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.disk_misses;
    return std::nullopt;
  };
  if (!in) return miss();

  std::string line;
  if (!std::getline(in, line) || line != "lucid-artifact v1") return miss();

  BackendArtifact artifact;
  artifact.ok = true;
  std::size_t text_size = 0;
  bool version_ok = false;
  bool text_seen = false;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "compiler") {
      // Entries written by a different compiler build are stale: the
      // emitters may have changed, and serving their output would mask it.
      std::string version;
      ls >> version;
      if (version != kLucidVersion) return miss();
      version_ok = true;
    } else if (tag == "srclen") {
      // Weak anti-collision guard: the filename is hash-derived, so at
      // least require the source length to agree.
      std::size_t n = 0;
      if (!(ls >> n) || n != source.size()) return miss();
    } else if (tag == "backend") {
      ls >> artifact.backend;
    } else if (tag == "metric") {
      std::string k;
      std::int64_t v = 0;
      if (!(ls >> k >> v)) return miss();  // truncated/corrupt entry
      artifact.metrics[k] = v;
    } else if (tag == "text") {
      if (!(ls >> text_size)) return miss();
      text_seen = true;
      break;
    } else {
      return miss();
    }
  }
  // An entry truncated before its text record (interrupted store) must be a
  // miss, not a successful empty artifact.
  if (!version_ok || !text_seen || artifact.backend != backend) return miss();
  artifact.text.resize(text_size);
  if (text_size > 0 &&
      !in.read(artifact.text.data(),
               static_cast<std::streamsize>(text_size))) {
    return miss();
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.disk_hits;
  return artifact;
}

void ArtifactCache::store_artifact(std::string_view source,
                                   const DriverOptions& options,
                                   const BackendArtifact& artifact) {
  if (dir_.empty() || !artifact.ok) return;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return;
  // Write-to-temp + rename keeps stores atomic: readers (other processes
  // sharing the cache dir included) only ever see complete entries, and a
  // crash or full disk leaves a .tmp file behind, not a corrupt entry.
  const std::string path = artifact_path(source, options, artifact.backend);
  static std::atomic<unsigned> tmp_seq{0};
  const std::string tmp = path + ".tmp-" + std::to_string(::getpid()) + "-" +
                          std::to_string(tmp_seq.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << "lucid-artifact v1\n";
    out << "compiler " << kLucidVersion << "\n";
    out << "srclen " << source.size() << "\n";
    out << "backend " << artifact.backend << "\n";
    for (const auto& [k, v] : artifact.metrics) {
      out << "metric " << k << " " << v << "\n";
    }
    out << "text " << artifact.text.size() << "\n";
    out.write(artifact.text.data(),
              static_cast<std::streamsize>(artifact.text.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.disk_writes;
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t ArtifactCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void ArtifactCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  stats_ = Stats{};
}

}  // namespace lucid
