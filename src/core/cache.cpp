#include "core/cache.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "frontend/fingerprint.hpp"
#include "frontend/parser.hpp"
#include "frontend/printer.hpp"

namespace lucid {

std::string options_fingerprint(const DriverOptions& options, Stage upto) {
  std::ostringstream os;
  // Model-dependent inputs only appear at the depth that consumes them:
  // below Stage::Layout the fingerprint is empty, which is what lets a
  // Lower-deep master (and its shared LayoutAnalysis) serve every resource
  // model without invalidation.
  if (upto >= Stage::Layout) {
    const opt::ResourceModel& m = options.model;
    os << "model:" << m.max_stages << "," << m.tables_per_stage << ","
       << m.salus_per_stage << "," << m.rules_per_table << ","
       << m.members_per_table << "," << m.alu_ops_per_stage << ";";
  }
  if (upto >= Stage::Emit) {
    os << "name:" << options.program_name << ";";
  }
  return os.str();
}

namespace {

Stage clamp_keep_stage(Stage s) {
  const int i = static_cast<int>(s);
  if (i < static_cast<int>(Stage::Sema)) return Stage::Sema;
  if (i > static_cast<int>(Stage::Layout)) return Stage::Layout;
  return s;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

ArtifactCache::ArtifactCache(Stage keep_stage, std::string cache_dir)
    : keep_stage_(clamp_keep_stage(keep_stage)), dir_(std::move(cache_dir)) {}

std::uint64_t ArtifactCache::source_key(std::string_view source) {
  const std::uint64_t raw = fnv1a64(source);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = key_memo_.find(raw);
    if (it != key_memo_.end()) return it->second;
  }
  // Probe parse outside the lock (sources parse independently; a duplicate
  // race just stores the same value twice).
  DiagnosticEngine diags{std::string(source)};
  const frontend::Program probe = frontend::Parser::parse(source, diags);
  const std::uint64_t key =
      diags.has_errors() ? raw : frontend::structural_hash(probe);
  std::lock_guard<std::mutex> lock(mu_);
  key_memo_.emplace(raw, key);
  return key;
}

CompilationPtr ArtifactCache::compile(const CompilerDriver& driver,
                                      std::string_view source, bool* hit) {
  const std::string fp = options_fingerprint(driver.options(), keep_stage_);
  if (hit != nullptr) *hit = false;

  // Structural keying, cheapest-first: the byte-hash memo resolves repeat
  // lookups of previously seen bytes without parsing, and a hit whose
  // master holds these exact bytes needs no structural confirmation. Only
  // a *new formatting variant* of a cached program pays a probe parse —
  // the structural program_equal guard against its master's AST needs the
  // tree. An unparsable source keeps the raw byte hash — it can never be
  // cached anyway (failures are not stored), so the key only routes it to
  // a miss. A first-time miss parses once here and once inside driver.run
  // below; the probe cannot be handed over (the master must own its stage
  // records and diagnostics), and parse is the cheapest stage.
  const std::uint64_t raw = fnv1a64(source);
  std::optional<std::uint64_t> memo_key;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = key_memo_.find(raw);
    if (it != key_memo_.end()) memo_key = it->second;
  }
  std::optional<frontend::Program> probe;
  bool parsed = false;
  const auto ensure_probe = [&] {
    if (probe.has_value()) return;
    DiagnosticEngine probe_diags{std::string(source)};
    probe = frontend::Parser::parse(source, probe_diags);
    parsed = !probe_diags.has_errors();
  };
  std::uint64_t key = 0;
  if (memo_key.has_value()) {
    key = *memo_key;
    parsed = key != raw;  // raw keys are only ever memoized for parse fails
  } else {
    ensure_probe();
    key = parsed ? frontend::structural_hash(*probe) : raw;
    std::lock_guard<std::mutex> lock(mu_);
    key_memo_.emplace(raw, key);
  }

  // Pull the candidate entry out, then confirm it without holding the
  // lock (masters are immutable; the shared_ptr keeps ours alive even if
  // the entry is concurrently replaced).
  ConstCompilationPtr master;
  std::string entry_fp;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      master = it->second.master;
      entry_fp = it->second.fingerprint;
    }
  }
  if (master != nullptr) {
    // The hash is only a bucket key; a hit is confirmed byte-for-byte
    // against the master's source or — for a formatting variant —
    // structurally against its AST (memoized per byte variant), so a
    // collision can never serve another program's artifacts.
    bool same = master->source() == source;
    if (!same) {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = confirmed_.find(raw);
      same = it != confirmed_.end() && it->second == master.get();
    }
    if (!same) {
      ensure_probe();
      same = parsed && frontend::program_equal(*probe, master->ast());
      if (same) {
        std::lock_guard<std::mutex> lock(mu_);
        confirmed_[raw] = master.get();
      }
    }
    if (same && entry_fp == fp) {
      CompilationPtr clone =
          master->clone_from_stage(keep_stage_, driver.options());
      if (clone != nullptr) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.hits;
        if (hit != nullptr) *hit = true;
        return clone;
      }
      // A master that cannot be cloned is a stale entry; fall through.
    }
    if (same) {
      // Same program, different option fingerprint (or unclonable): the
      // cached artifacts are stale for this caller — drop and recompile.
      // Pointer identity guards the erase against a concurrent replace.
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = entries_.find(key);
      if (it != entries_.end() && it->second.master == master) {
        ++stats_.invalidations;
        entries_.erase(it);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
  }

  // Front end runs outside the lock (compilations of different sources may
  // proceed in parallel; a duplicate race just overwrites an equal entry).
  CompilationPtr fresh = driver.run(source, keep_stage_);
  if (!fresh->succeeded(keep_stage_)) return fresh;  // failures not cached

  CompilationPtr clone = fresh->clone_from_stage(keep_stage_,
                                                 driver.options());
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_[key] = Entry{fp, fresh};
  }
  return clone != nullptr ? clone : fresh;
}

// ---------------------------------------------------------------------------
// Disk layer (emitted backend artifacts)
// ---------------------------------------------------------------------------

std::string ArtifactCache::artifact_path(std::uint64_t source_key,
                                         const DriverOptions& options,
                                         std::string_view backend) const {
  const std::string fp = options_fingerprint(options, Stage::Emit);
  // The key spells out the backend name and compiler version so artifacts
  // for the same source from different emitters (p4 vs ebpf) or different
  // compiler builds can never collide on disk; the in-file "compiler" record
  // stays as a second line of defense for hand-copied entries. source_key
  // is the *structural* key, so every formatting variant of a program maps
  // to one disk entry.
  std::string name = hex64(source_key) + "-" + hex64(fnv1a64(fp)) + "-" +
                     std::string(backend) + "-v" + std::string(kLucidVersion) +
                     ".art";
  return dir_ + "/" + name;
}

std::optional<BackendArtifact> ArtifactCache::load_artifact(
    std::string_view source, const DriverOptions& options,
    std::string_view backend) {
  if (dir_.empty()) return std::nullopt;
  const std::uint64_t skey = source_key(source);
  std::ifstream in(artifact_path(skey, options, backend), std::ios::binary);
  const auto miss = [this]() -> std::optional<BackendArtifact> {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.disk_misses;
    return std::nullopt;
  };
  if (!in) return miss();

  std::string line;
  if (!std::getline(in, line) || line != "lucid-artifact v2") return miss();

  BackendArtifact artifact;
  artifact.ok = true;
  std::size_t text_size = 0;
  bool version_ok = false;
  bool text_seen = false;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "compiler") {
      // Entries written by a different compiler build are stale: the
      // emitters may have changed, and serving their output would mask it.
      std::string version;
      ls >> version;
      if (version != kLucidVersion) return miss();
      version_ok = true;
    } else if (tag == "skey") {
      // Anti-collision guard: the filename is hash-derived, so require the
      // entry to echo the structural key it was stored under.
      std::string echoed;
      if (!(ls >> echoed) || echoed != hex64(skey)) return miss();
    } else if (tag == "backend") {
      ls >> artifact.backend;
    } else if (tag == "metric") {
      std::string k;
      std::int64_t v = 0;
      if (!(ls >> k >> v)) return miss();  // truncated/corrupt entry
      artifact.metrics[k] = v;
    } else if (tag == "text") {
      if (!(ls >> text_size)) return miss();
      text_seen = true;
      break;
    } else {
      return miss();
    }
  }
  // An entry truncated before its text record (interrupted store) must be a
  // miss, not a successful empty artifact.
  if (!version_ok || !text_seen || artifact.backend != backend) return miss();
  artifact.text.resize(text_size);
  if (text_size > 0 &&
      !in.read(artifact.text.data(),
               static_cast<std::streamsize>(text_size))) {
    return miss();
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.disk_hits;
  return artifact;
}

void ArtifactCache::store_artifact(std::string_view source,
                                   const DriverOptions& options,
                                   const BackendArtifact& artifact) {
  if (dir_.empty() || !artifact.ok) return;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return;
  // Write-to-temp + rename keeps stores atomic: readers (other processes
  // sharing the cache dir included) only ever see complete entries, and a
  // crash or full disk leaves a .tmp file behind, not a corrupt entry.
  const std::uint64_t skey = source_key(source);
  const std::string path = artifact_path(skey, options, artifact.backend);
  static std::atomic<unsigned> tmp_seq{0};
  const std::string tmp = path + ".tmp-" + std::to_string(::getpid()) + "-" +
                          std::to_string(tmp_seq.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << "lucid-artifact v2\n";
    out << "compiler " << kLucidVersion << "\n";
    out << "skey " << hex64(skey) << "\n";
    out << "backend " << artifact.backend << "\n";
    for (const auto& [k, v] : artifact.metrics) {
      out << "metric " << k << " " << v << "\n";
    }
    out << "text " << artifact.text.size() << "\n";
    out.write(artifact.text.data(),
              static_cast<std::streamsize>(artifact.text.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.disk_writes;
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t ArtifactCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void ArtifactCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  key_memo_.clear();
  confirmed_.clear();
  stats_ = Stats{};
}

}  // namespace lucid
