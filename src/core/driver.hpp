// Staged compiler driver: the primary public API of the Lucid compiler.
//
// Compilation is modelled as an explicit pipeline of stages, mirroring the
// paper's phase structure:
//
//   Parse   — lex + recursive-descent parse to the Lucid AST
//   Sema    — memop validation + the ordered type-and-effect system
//             (annotates the AST in place, produces AnalysisInfo)
//   Lower   — lowering to atomic table graphs (ProgramIR)
//   Layout  — branch inlining, dependency reordering, greedy merging into
//             a staged pipeline under a resource model
//   Emit    — backend code generation (P4_16, interpreter binding, ...)
//
// A `CompilerDriver` advances a ref-counted `Compilation` through these
// stages. Each stage records wall-clock time and the exact slice of
// diagnostics it produced, and each stage's artifact stays owned by (and
// queryable from) the Compilation — so callers can stop after any stage,
// inspect, and resume. Backends are looked up by name in a `BackendRegistry`
// so new targets can be added without touching the driver.
//
// Typical use:
//
//   CompilerDriver driver;
//   auto comp = driver.run(source);                 // Parse..Layout
//   if (!comp->ok()) { std::cerr << comp->diags().render(); ... }
//   BackendArtifact p4 = driver.emit(comp, "p4");   // Emit stage
//
// Staged use:
//
//   auto comp = driver.start(source);
//   driver.run_until(comp, Stage::Sema);            // front end only
//   ... inspect comp->ast(), comp->analysis() ...
//   driver.run_until(comp, Stage::Layout);          // resume where it left
//
// Ownership: `Compilation` is handed out as std::shared_ptr. Long-lived
// consumers (e.g. interp::Runtime) keep the artifacts alive by holding the
// pointer — the driver itself may be destroyed at any time.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "frontend/ast.hpp"
#include "frontend/fingerprint.hpp"
#include "frontend/incremental_parse.hpp"
#include "ir/ir.hpp"
#include "opt/passes.hpp"
#include "sema/type_check.hpp"
#include "support/diagnostics.hpp"

namespace lucid {

/// Compiler/driver version, reported by `lucidc --version`.
inline constexpr std::string_view kLucidVersion = "0.9.0";

// ---------------------------------------------------------------------------
// Stages
// ---------------------------------------------------------------------------

enum class Stage : int { Parse = 0, Sema, Lower, Layout, Emit };

inline constexpr int kNumStages = 5;

/// Stable lower-case stage name ("parse", "sema", "lower", "layout", "emit").
[[nodiscard]] std::string_view stage_name(Stage s);

/// Inverse of stage_name; nullopt for unknown names.
[[nodiscard]] std::optional<Stage> stage_from_name(std::string_view name);

/// Bookkeeping for one stage of one compilation.
struct StageRecord {
  Stage stage = Stage::Parse;
  bool ran = false;
  bool ok = false;
  /// True when this stage's artifact was inherited from a clone donor (see
  /// Compilation::clone_from_stage) instead of being executed here. wall_ms
  /// then still holds the donor's cost, so sweep reports can tell "paid once,
  /// shared N times" apart from "paid N times".
  bool shared = false;
  /// Layout only: true when the model-independent LayoutAnalysis (Phase A)
  /// was owned by a clone donor *and already computed* when this Layout
  /// stage started — the per-stage proof that a sweep paid for the analysis
  /// once. False for cold compiles and for the unlucky clone whose Layout
  /// run triggered the donor's computation: wall_ms then includes the Phase
  /// A cost, and the flag stays honest about who paid it.
  bool analysis_shared = false;
  /// Incremental recompiles only (CompilerDriver::recompile): how many
  /// top-level decls this stage served from the previous compilation
  /// instead of recomputing. For Parse that is decl nodes spliced from the
  /// previous AST by the span diff (frontend::incremental_parse); for Sema,
  /// decls whose body check was skipped (annotations mirror-copied) plus
  /// header-only decls the diff proved unchanged; for Lower, spliced handler
  /// graphs; for Layout, handlers whose Phase A artifacts were carried over
  /// by opt::update_layout_analysis. 0 for cold compiles and plain clones.
  int decls_reused = 0;
  double wall_ms = 0.0;
  /// Half-open index range into Compilation::diags().all() holding exactly
  /// the diagnostics this stage produced. For Stage::Emit this is the coarse
  /// span across every emit() call (stages run lazily in between may
  /// interleave); use Compilation::stage_diagnostics(Stage::Emit) for the
  /// exact per-backend set.
  std::size_t diag_begin = 0;
  std::size_t diag_end = 0;
};

// ---------------------------------------------------------------------------
// Compilation: the owned, queryable artifact bundle
// ---------------------------------------------------------------------------

struct DriverOptions {
  opt::ResourceModel model = opt::ResourceModel::tofino();
  /// Name used by emitters (P4 program name, artifact labels).
  std::string program_name = "program";
  /// Worker threads for Sema's per-decl body-check phase (<= 1: serial).
  /// Any worker count produces byte-identical diagnostics and annotations,
  /// so this field is excluded from options_fingerprint — it never affects
  /// artifacts, only wall time.
  int sema_workers = 1;
};

/// All middle-end artifacts, owned together. `release_artifacts()` moves
/// these out for the deprecated one-shot compile() shim.
struct Artifacts {
  frontend::Program program;  // annotated AST      (Parse, annotated by Sema)
  sema::AnalysisInfo info;    // effect summaries   (Sema)
  ir::ProgramIR ir;           // atomic table graphs (Lower)
  opt::Pipeline pipeline;     // optimized layout    (Layout)
  opt::LayoutStats stats;     // Fig 12/13 numbers   (Layout)
};

class Compilation : public std::enable_shared_from_this<Compilation> {
 public:
  Compilation(std::string source, DriverOptions options);

  // -- status ---------------------------------------------------------------
  /// True while no stage that ran has failed.
  [[nodiscard]] bool ok() const;
  [[nodiscard]] bool ran(Stage s) const { return record(s).ran; }
  [[nodiscard]] bool succeeded(Stage s) const {
    return record(s).ran && record(s).ok;
  }
  /// The most advanced stage that has run, if any.
  [[nodiscard]] std::optional<Stage> last_stage() const;

  [[nodiscard]] const std::string& source() const { return source_; }
  [[nodiscard]] const DriverOptions& options() const { return options_; }

  // -- artifacts (valid once the named stage has succeeded) -----------------
  // Accessors forward to the clone donor for inherited stages, so a clone
  // and its donor literally return the same objects (tests assert on address
  // equality to prove artifacts are shared, not recomputed).
  [[nodiscard]] const frontend::Program& ast() const {
    return inherits(Stage::Parse) ? donor_->ast() : artifacts_.program;
  }
  [[nodiscard]] const sema::AnalysisInfo& analysis() const {
    return inherits(Stage::Sema) ? donor_->analysis() : artifacts_.info;
  }
  [[nodiscard]] const ir::ProgramIR& ir() const {
    return inherits(Stage::Lower) ? donor_->ir() : artifacts_.ir;
  }
  [[nodiscard]] const opt::Pipeline& pipeline() const {
    return inherits(Stage::Layout) ? donor_->pipeline() : artifacts_.pipeline;
  }
  [[nodiscard]] const opt::LayoutStats& layout_stats() const {
    return inherits(Stage::Layout) ? donor_->layout_stats() : artifacts_.stats;
  }

  // -- layout analysis (Phase A) --------------------------------------------
  /// The model-independent layout analysis (opt::LayoutAnalysis): branch
  /// inlining, dependency edges, ASAP levels, the sorted item order, interned
  /// symbols, and the disjointness matrix — everything Layout needs that does
  /// not depend on the ResourceModel. Computed lazily exactly once per
  /// source: clones resolve through their donor chain, so a sweep's variants
  /// all share the one analysis their common front end owns. Thread-safe
  /// (std::call_once) — concurrent variants may race the first access.
  /// Valid once Stage::Lower has succeeded.
  [[nodiscard]] std::shared_ptr<const opt::LayoutAnalysis>
  layout_analysis_ptr() const;
  [[nodiscard]] const opt::LayoutAnalysis& layout_analysis() const {
    return *layout_analysis_ptr();
  }
  /// The compilation whose call_once computes (or computed) the analysis:
  /// `this` for a cold compile, the root clone donor otherwise. Layout's
  /// StageRecord::analysis_shared is derived from it.
  [[nodiscard]] const Compilation* analysis_home() const {
    return inherits(Stage::Lower) ? donor_->analysis_home() : this;
  }
  /// True once the analysis has been computed (a peek — never computes).
  [[nodiscard]] bool analysis_ready() const {
    return inherits(Stage::Lower)
               ? donor_->analysis_ready()
               : analysis_ready_.load(std::memory_order_acquire);
  }

  // -- structural fingerprints ----------------------------------------------
  /// The per-decl structural fingerprints of ast()
  /// (frontend::fingerprint_program), computed lazily exactly once and
  /// cached — recompiles diff against them, so a compilation that serves as
  /// `prev` for many edits pays for its canonical prints once. Clones
  /// resolve through the donor chain (same AST, same fingerprints).
  /// Thread-safe (std::call_once). Valid once Stage::Parse has succeeded.
  [[nodiscard]] const std::vector<frontend::DeclFingerprint>&
  decl_fingerprints() const;
  /// frontend::structural_hash over decl_fingerprints().
  [[nodiscard]] std::uint64_t structural_hash() const {
    return frontend::structural_hash(decl_fingerprints());
  }

  /// The top-level decl span table of source() (frontend::scan_decl_spans),
  /// or nullptr when the buffer defeats the scanner. Computed lazily exactly
  /// once: an incremental parse stores the table it already scanned for its
  /// own buffer, a cold compile scans on first use as a recompile donor —
  /// either way, serving as `prev` for any number of edits costs one scan,
  /// and each edit scans only its own buffer. Clones resolve through the
  /// donor chain (same source, same spans). Thread-safe (std::call_once).
  [[nodiscard]] const std::vector<frontend::DeclSpan>* decl_spans() const;

  /// Moves every artifact out (for the deprecated compile() shim). The
  /// Compilation must not be queried afterwards. Must not be called on a
  /// clone (its inherited artifacts live in the donor).
  [[nodiscard]] Artifacts release_artifacts() &&;

  // -- cloning --------------------------------------------------------------
  /// Forks this compilation after stage `upto`: the clone shares (does not
  /// copy or re-run) every artifact through `upto` and runs later stages
  /// itself, under `options` (defaults to the donor's options). This is the
  /// primitive behind resource-model sweeps and the artifact cache: Parse,
  /// Sema, and Lower are option-independent, so one front-end run can feed
  /// any number of Layout/Emit variants.
  ///
  /// `upto` must be within [Sema, Layout] — cloning at Parse is forbidden
  /// because Sema annotates the shared AST in place, which would race across
  /// clones — and every stage through `upto` must have succeeded here;
  /// otherwise returns nullptr. The clone keeps the donor alive (shared
  /// ownership) and copies its diagnostics and stage records for the shared
  /// stages, with StageRecord::shared set.
  ///
  /// Concurrency: the shared artifacts are immutable (stages never re-run),
  /// so any number of clones may run their remaining stages and emit on
  /// different threads concurrently, as long as each individual Compilation
  /// is driven by one thread at a time.
  [[nodiscard]] std::shared_ptr<Compilation> clone_from_stage(
      Stage upto, std::optional<DriverOptions> options = std::nullopt) const;

  /// True for compilations created by clone_from_stage.
  [[nodiscard]] bool is_clone() const { return donor_ != nullptr; }
  /// The donor compilation (nullptr unless is_clone()).
  [[nodiscard]] const Compilation* donor() const { return donor_.get(); }

  // -- diagnostics ----------------------------------------------------------
  [[nodiscard]] DiagnosticEngine& diags() { return diags_; }
  [[nodiscard]] const DiagnosticEngine& diags() const { return diags_; }

  /// The diagnostics produced by exactly this stage (empty if it never ran).
  [[nodiscard]] std::vector<Diagnostic> stage_diagnostics(Stage s) const;

  // -- timings --------------------------------------------------------------
  [[nodiscard]] const StageRecord& record(Stage s) const {
    return records_[static_cast<std::size_t>(s)];
  }
  /// Records of stages that ran, in pipeline order.
  [[nodiscard]] std::vector<StageRecord> records() const;
  /// Sum of wall_ms over stages that ran.
  [[nodiscard]] double total_wall_ms() const;
  /// Human-readable `--time-passes` table.
  [[nodiscard]] std::string timing_report() const;
  /// Machine-readable `--time-passes=json` object: program name, one record
  /// per ran stage (stage, wall_ms, ok, shared, analysis_shared), and the
  /// total. Consumed by bench_layout and CI.
  [[nodiscard]] std::string timing_report_json() const;

 private:
  friend class CompilerDriver;

  [[nodiscard]] StageRecord& mutable_record(Stage s) {
    return records_[static_cast<std::size_t>(s)];
  }

  /// True when stage `s`'s artifact lives in the clone donor.
  [[nodiscard]] bool inherits(Stage s) const {
    return donor_ != nullptr && static_cast<int>(s) <= inherited_until_;
  }

  std::string source_;
  DriverOptions options_;
  DiagnosticEngine diags_;
  Artifacts artifacts_;
  std::array<StageRecord, kNumStages> records_;
  /// Exact diagnostic ranges per emit() call (middle-end stages that emit()
  /// runs lazily can interleave, so Emit needs more than one span).
  std::vector<std::pair<std::size_t, std::size_t>> emit_diag_ranges_;
  /// Clone-from-stage donor: stages <= inherited_until_ resolve through it.
  std::shared_ptr<const Compilation> donor_;
  int inherited_until_ = -1;
  /// Lazily computed Phase A artifact (see layout_analysis_ptr). Mutable:
  /// the first access may come through a const donor pointer shared by many
  /// concurrently running clones; call_once makes that race benign.
  mutable std::once_flag analysis_once_;
  mutable std::shared_ptr<const opt::LayoutAnalysis> analysis_;
  mutable std::atomic<bool> analysis_ready_{false};
  /// Lazily computed decl fingerprints (see decl_fingerprints()).
  mutable std::once_flag fingerprints_once_;
  mutable std::vector<frontend::DeclFingerprint> fingerprints_;
  /// Lazily computed (or incremental-parse-seeded) span table of source_
  /// (see decl_spans()); nullopt after a failed scan.
  mutable std::once_flag spans_once_;
  mutable std::optional<std::vector<frontend::DeclSpan>> spans_;
  /// Incremental-recompile support (CompilerDriver::recompile). When set
  /// before Parse runs, run_stage tries frontend::incremental_parse against
  /// this previous compilation, splicing unchanged decl nodes by pointer.
  /// Held for the compilation's lifetime: spliced nodes are shared with
  /// (and their allocations co-owned through) prev's AST.
  std::shared_ptr<const Compilation> parse_reuse_prev_;
  /// Parallel to ast().decls after an incremental parse: the prev decl
  /// index each decl was spliced from, -1 for freshly parsed decls. Empty
  /// when the parse was cold.
  std::vector<int> parse_spliced_from_;
  /// When set, layout_analysis_ptr() first patches this compilation's
  /// (already computed) Phase A analysis via opt::update_layout_analysis,
  /// re-analyzing only analysis_dirty_handlers_; falls back to a cold
  /// analyze_layout when patching is unsound.
  std::shared_ptr<const Compilation> analysis_reuse_prev_;
  std::set<std::string> analysis_dirty_handlers_;
  /// Handlers the last update_layout_analysis carried over (0 when the
  /// analysis was computed cold); surfaced as Layout's decls_reused.
  mutable int analysis_handlers_reused_ = 0;
};

using CompilationPtr = std::shared_ptr<Compilation>;
using ConstCompilationPtr = std::shared_ptr<const Compilation>;

// ---------------------------------------------------------------------------
// Backends
// ---------------------------------------------------------------------------

/// What a backend hands back from Emit. `text` is the primary printable
/// artifact (P4 source, binding summary, ...); `metrics` carries
/// backend-specific counters (e.g. P4 LoC per category).
struct BackendArtifact {
  std::string backend;
  bool ok = false;
  std::string text;
  std::map<std::string, std::int64_t> metrics;
};

class Backend {
 public:
  virtual ~Backend() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::string description() const = 0;
  /// The latest stage that must have succeeded before emit() may run.
  [[nodiscard]] virtual Stage required_stage() const { return Stage::Layout; }
  /// Emits from a completed compilation. Diagnostics go to comp.diags().
  [[nodiscard]] virtual BackendArtifact emit(Compilation& comp) = 0;
};

/// Name -> backend lookup. The process-wide default registry is
/// `BackendRegistry::global()`; `register_default_backends()`
/// (core/backends.hpp) populates it with "p4", "interp", and "ebpf".
class BackendRegistry {
 public:
  /// The process-wide default registry.
  [[nodiscard]] static BackendRegistry& global();

  /// Registers a backend; returns false (and drops it) on a name collision.
  bool add(std::unique_ptr<Backend> backend);
  [[nodiscard]] Backend* find(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> names() const;  // sorted
  [[nodiscard]] std::size_t size() const { return backends_.size(); }

 private:
  std::vector<std::unique_ptr<Backend>> backends_;
};

// ---------------------------------------------------------------------------
// CompilerDriver
// ---------------------------------------------------------------------------

class CompilerDriver {
 public:
  explicit CompilerDriver(DriverOptions options = {},
                          BackendRegistry* registry = nullptr);

  [[nodiscard]] const DriverOptions& options() const { return options_; }
  [[nodiscard]] BackendRegistry& registry() const { return *registry_; }

  /// Creates a Compilation for `source` without running any stage.
  [[nodiscard]] CompilationPtr start(std::string_view source) const;

  /// Runs every not-yet-run stage up to and including `until` (clamped to
  /// Layout — emission goes through emit()). Already-run stages are not
  /// re-run, so this is also "resume". Returns comp->ok().
  bool run_until(const CompilationPtr& comp, Stage until) const;

  /// Runs the single next pending stage (up to Layout). Returns false when
  /// there is nothing left to run or an earlier stage failed.
  bool run_next(const CompilationPtr& comp) const;

  /// start + run_until in one call.
  [[nodiscard]] CompilationPtr run(std::string_view source,
                                   Stage until = Stage::Layout) const;

  /// Incremental edit pipeline: compiles `source` through Lower by reusing
  /// everything `prev` already computed for an earlier version of the same
  /// program. Parse always runs (it is the diff's input); the new decl
  /// fingerprints are then diffed against `prev`'s
  /// (sema::plan_recompile):
  ///
  ///   * structurally identical (whitespace/comment/formatting edits only):
  ///     the result is a clone of `prev` — no stage past Parse re-runs, and
  ///     when `prev` completed Layout under these options the Layout
  ///     artifact is inherited too;
  ///   * partial edit: Sema re-checks and Lower re-lowers only the dirty
  ///     decl set (the edited decls plus transitive dependents per the
  ///     DeclDepGraph), mirror-copying annotations and splicing handler
  ///     graphs for the rest. StageRecord::decls_reused records the reuse.
  ///
  /// The result is byte-identical to a cold compile of `source` for every
  /// backend and for interpreter execution (differential-tested). Falls
  /// back to a cold compile when `prev` is null or its front end did not
  /// succeed; returns early (like run) when the new source fails a stage.
  /// `until` (clamped to [Parse, Lower]) bounds how deep the recompile
  /// drives — Parse skips the diff entirely, Sema stops before Lower — so
  /// `--stop-after` keeps its meaning under `--incremental-from`.
  /// `prev` is only read — any number of recompiles and sweeps may share it
  /// concurrently.
  [[nodiscard]] CompilationPtr recompile(const ConstCompilationPtr& prev,
                                         std::string_view source,
                                         Stage until = Stage::Lower) const;

  /// Looks `backend` up in the registry, runs any stages it still needs, and
  /// emits. Unknown backend or failed prerequisite stages produce an error
  /// diagnostic on the compilation ("driver-unknown-backend" /
  /// "driver-stage-failed") and an artifact with ok == false — never a crash.
  /// The Emit StageRecord aggregates across emit() calls: wall time
  /// accumulates and ok holds only if every emission so far succeeded.
  [[nodiscard]] BackendArtifact emit(const CompilationPtr& comp,
                                     std::string_view backend) const;

 private:
  bool run_stage(Compilation& c, Stage s) const;

  DriverOptions options_;
  BackendRegistry* registry_;
};

}  // namespace lucid
