#include "core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <set>
#include <sstream>
#include <thread>

#include "obs/trace.hpp"
#include "support/chrono.hpp"
#include "support/strings.hpp"

namespace lucid {

namespace {

using Clock = SteadyClock;

/// The sweepable ResourceModel fields.
int* model_field(opt::ResourceModel& m, std::string_view name) {
  if (name == "stages") return &m.max_stages;
  if (name == "tables") return &m.tables_per_stage;
  if (name == "salus") return &m.salus_per_stage;
  if (name == "rules") return &m.rules_per_table;
  if (name == "members") return &m.members_per_table;
  if (name == "aluops") return &m.alu_ops_per_stage;
  return nullptr;
}

}  // namespace

std::optional<std::vector<SweepVariant>> parse_sweep_grid(
    std::string_view spec, std::string* error) {
  const auto fail = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return std::nullopt;
  };

  std::vector<SweepVariant> variants;
  variants.push_back(SweepVariant{"tofino", opt::ResourceModel::tofino()});
  const std::string trimmed{trim(spec)};
  if (trimmed.empty() || trimmed == "tofino") return variants;

  // Each ';'-separated dimension multiplies the variant set.
  std::set<std::string> seen_fields;
  for (const std::string& dim : split(trimmed, ';')) {
    const std::string d{trim(dim)};
    if (d.empty()) continue;
    const std::size_t eq = d.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= d.size()) {
      return fail("sweep dimension '" + d +
                  "' is not of the form field=v1,v2,...");
    }
    const std::string field = d.substr(0, eq);
    opt::ResourceModel probe;
    if (model_field(probe, field) == nullptr) {
      return fail("unknown sweep field '" + field +
                  "' (expected stages|tables|salus|rules|members|aluops)");
    }
    if (!seen_fields.insert(field).second) {
      return fail("sweep field '" + field +
                  "' appears more than once; list all its values in one "
                  "dimension");
    }
    std::vector<int> values;
    for (const std::string& v : split(d.substr(eq + 1), ',')) {
      const std::string vt{trim(v)};
      const std::optional<int> value = parse_positive_int(vt);
      if (!value) {
        return fail("sweep value '" + vt + "' for field '" + field +
                    "' is not a positive integer");
      }
      values.push_back(*value);
    }

    std::vector<SweepVariant> next;
    next.reserve(variants.size() * values.size());
    for (const SweepVariant& base : variants) {
      for (const int value : values) {
        SweepVariant v = base;
        *model_field(v.model, field) = value;
        const std::string term = field + "=" + std::to_string(value);
        v.label = (base.label == "tofino") ? term : base.label + "," + term;
        next.push_back(std::move(v));
      }
    }
    variants = std::move(next);
  }
  return variants;
}

std::optional<FitSpec> parse_fit_spec(std::string_view spec,
                                      std::string* error) {
  const auto fail = [error](std::string msg) -> std::optional<FitSpec> {
    if (error != nullptr) *error = std::move(msg);
    return std::nullopt;
  };

  FitSpec out;
  out.base.push_back(SweepVariant{"tofino", opt::ResourceModel::tofino()});
  const std::string trimmed{trim(spec)};
  if (trimmed.empty()) {
    return fail("fit spec is empty (expected e.g. stages=1..20;salus=2,4)");
  }

  std::set<std::string> seen_fields;
  for (const std::string& dim : split(trimmed, ';')) {
    const std::string d{trim(dim)};
    if (d.empty()) continue;
    const std::size_t eq = d.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= d.size()) {
      return fail("fit dimension '" + d +
                  "' is not of the form field=MIN..MAX or field=v1,v2,...");
    }
    const std::string field = d.substr(0, eq);
    opt::ResourceModel probe;
    if (model_field(probe, field) == nullptr) {
      return fail("unknown fit field '" + field +
                  "' (expected stages|tables|salus|rules|members|aluops)");
    }
    if (!seen_fields.insert(field).second) {
      return fail("fit field '" + field + "' appears more than once");
    }
    const std::string value = d.substr(eq + 1);
    const std::size_t dots = value.find("..");
    if (dots != std::string::npos) {
      if (!out.search_field.empty()) {
        return fail("fit spec has more than one MIN..MAX range dimension ('" +
                    out.search_field + "' and '" + field +
                    "'); bisect one field at a time");
      }
      const auto lo = parse_positive_int(trim(value.substr(0, dots)));
      const auto hi = parse_positive_int(trim(value.substr(dots + 2)));
      if (!lo || !hi) {
        return fail("fit range '" + value + "' for field '" + field +
                    "' is not MIN..MAX over positive integers");
      }
      if (*lo > *hi) {
        return fail("fit range for field '" + field + "' is empty (" +
                    std::to_string(*lo) + " > " + std::to_string(*hi) + ")");
      }
      out.search_field = field;
      out.lo = *lo;
      out.hi = *hi;
      continue;
    }
    // Enumerated dimension: multiplies the row set, exactly like a sweep.
    std::vector<int> values;
    for (const std::string& v : split(value, ',')) {
      const std::string vt{trim(v)};
      const std::optional<int> parsed = parse_positive_int(vt);
      if (!parsed) {
        return fail("fit value '" + vt + "' for field '" + field +
                    "' is not a positive integer");
      }
      values.push_back(*parsed);
    }
    std::vector<SweepVariant> next;
    next.reserve(out.base.size() * values.size());
    for (const SweepVariant& base : out.base) {
      for (const int v : values) {
        SweepVariant row = base;
        *model_field(row.model, field) = v;
        const std::string term = field + "=" + std::to_string(v);
        row.label = (base.label == "tofino") ? term : base.label + "," + term;
        next.push_back(std::move(row));
      }
    }
    out.base = std::move(next);
  }
  if (out.search_field.empty()) {
    return fail("fit spec needs exactly one field=MIN..MAX range dimension "
                "(the field to bisect)");
  }
  return out;
}

// ---------------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------------

std::string SweepReport::str() const {
  std::ostringstream os;
  os << "=== sweep: " << program_name << " (" << variants.size()
     << " variants) ===\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "front end: %d run%s (%.3f ms), shared by %zu variant%s\n",
                frontend_runs, frontend_runs == 1 ? "" : "s", frontend_wall_ms,
                variants.size(), variants.size() == 1 ? "" : "s");
  os << buf;
  std::snprintf(buf, sizeof(buf),
                "layout analysis: %.3f ms (computed once, shared by every "
                "variant)\n",
                analysis_wall_ms);
  os << buf;
  if (!frontend_diagnostics.empty()) {
    os << "front-end diagnostics:\n";
    for (const Diagnostic& d : frontend_diagnostics) {
      os << "  " << d.str() << "\n";
    }
  }
  if (variants.empty()) {
    std::snprintf(buf, sizeof(buf), "total wall: %.3f ms%s\n", total_wall_ms,
                  ok ? "" : "  (FAILURES)");
    os << buf;
    return os.str();
  }

  std::size_t label_w = 7;
  for (const auto& v : variants) {
    label_w = std::max(label_w, v.variant.label.size());
  }
  std::snprintf(buf, sizeof(buf), "%-*s %7s %5s", static_cast<int>(label_w),
                "variant", "stages", "fits");
  os << buf;
  if (!variants.empty()) {
    for (const auto& e : variants.front().emissions) {
      std::snprintf(buf, sizeof(buf), " %14s", e.backend.c_str());
      os << buf;
    }
  }
  os << "   wall ms\n";

  for (const auto& v : variants) {
    std::snprintf(buf, sizeof(buf), "%-*s %7d %5s",
                  static_cast<int>(label_w), v.variant.label.c_str(),
                  v.stats.optimized_stages, v.stats.fits ? "yes" : "NO");
    os << buf;
    for (const auto& e : v.emissions) {
      std::string cell = e.ok ? "ok" : "FAILED";
      if (e.from_cache) cell += "*";
      std::snprintf(buf, sizeof(buf), " %8s(%4.1f)", cell.c_str(), e.wall_ms);
      os << buf;
    }
    std::snprintf(buf, sizeof(buf), " %9.3f\n", v.wall_ms);
    os << buf;
    for (const Diagnostic& d : v.diagnostics) {
      if (d.severity == Severity::Error) os << "    " << d.str() << "\n";
    }
    for (const auto& e : v.emissions) {
      for (const Diagnostic& d : e.diagnostics) {
        if (d.severity == Severity::Error) os << "    " << d.str() << "\n";
      }
    }
  }
  std::snprintf(buf, sizeof(buf), "total wall: %.3f ms%s\n", total_wall_ms,
                ok ? "" : "  (FAILURES)");
  os << buf;
  bool any_cached = false;
  for (const auto& v : variants) {
    for (const auto& e : v.emissions) any_cached |= e.from_cache;
  }
  if (any_cached) os << "(* = emission served from the artifact cache)\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

SweepEngine::SweepEngine(BackendRegistry* registry)
    : registry_(registry != nullptr ? registry
                                    : &BackendRegistry::global()) {}

SweepReport SweepEngine::run(std::string_view source,
                             const SweepOptions& options) const {
  const auto sweep_t0 = Clock::now();

  SweepReport report;
  report.program_name = options.program_name;

  std::vector<SweepVariant> variants = options.variants;
  if (variants.empty()) {
    variants.push_back(SweepVariant{"tofino", opt::ResourceModel::tofino()});
  }
  int workers = options.workers;
  if (workers <= 0) {
    workers = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }

  // ---- Phase 1 (serial): one front end, shared by every variant ----------
  DriverOptions base_opts;
  base_opts.program_name = options.program_name;
  const CompilerDriver driver(base_opts, registry_);
  bool cache_hit = false;
  const CompilationPtr base =
      options.cache != nullptr
          ? options.cache->compile(driver, source, &cache_hit)
          : driver.run(source, Stage::Lower);
  // A cache configured with keep_stage == Sema hands back a compilation that
  // stops there; variants clone at Lower, so finish the front end here.
  driver.run_until(base, Stage::Lower);

  // A cache miss still ran the front end (inside the cache, on the stored
  // master) even though the returned clone's records say "shared".
  report.frontend_runs =
      options.cache != nullptr ? (cache_hit ? 0 : 1)
                               : (base->record(Stage::Parse).ran &&
                                          !base->record(Stage::Parse).shared
                                      ? 1
                                      : 0);
  for (const Stage s : {Stage::Parse, Stage::Sema, Stage::Lower}) {
    const StageRecord& rec = base->record(s);
    if (!rec.ran) continue;
    report.frontend_wall_ms += rec.wall_ms;
    for (const Diagnostic& d : base->stage_diagnostics(s)) {
      report.frontend_diagnostics.push_back(d);
    }
  }
  if (!base->succeeded(Stage::Lower)) {
    report.ok = false;
    report.total_wall_ms = ms_since(sweep_t0);
    return report;
  }

  // The model-independent layout analysis (Phase A) is paid here, serially
  // and exactly once: every variant clone resolves to this same artifact, so
  // none of the parallel Layout runs below recompute it (or serialize on its
  // call_once). A warm cache's master may have computed it already — then
  // this is a no-op and the wall time records ~0.
  {
    const auto t0 = Clock::now();
    (void)base->layout_analysis_ptr();
    report.analysis_wall_ms = ms_since(t0);
  }

  // ---- Phase 2 (parallel): per-variant layout on front-end clones --------
  report.variants.resize(variants.size());
  std::vector<CompilationPtr> compiled(variants.size());
  parallel_for(variants.size(), workers, [&](std::size_t i) {
    obs::ScopedSpan span("sweep", "variant_layout");
    span.arg("variant", variants[i].label);
    const auto t0 = Clock::now();
    SweepVariantReport& vr = report.variants[i];
    vr.variant = variants[i];

    DriverOptions vopts;
    vopts.model = variants[i].model;
    vopts.program_name = options.program_name;
    CompilationPtr comp = base->clone_from_stage(Stage::Lower, vopts);
    const CompilerDriver vdriver(vopts, registry_);
    vdriver.run_until(comp, Stage::Layout);

    vr.ok = comp->succeeded(Stage::Layout);
    if (vr.ok) vr.stats = comp->layout_stats();
    for (const Diagnostic& d : comp->stage_diagnostics(Stage::Layout)) {
      vr.diagnostics.push_back(d);
    }
    vr.wall_ms = ms_since(t0);
    compiled[i] = std::move(comp);
  });

  // ---- Phase 3 (parallel): per-(variant, backend) emission clones --------
  struct EmitTask {
    std::size_t variant = 0;
    std::size_t slot = 0;
    std::string backend;
  };
  std::vector<EmitTask> tasks;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    report.variants[i].emissions.resize(options.backends.size());
    for (std::size_t b = 0; b < options.backends.size(); ++b) {
      // Name every slot up front so report columns stay labelled even for
      // variants whose layout failed (their emissions stay ok == false).
      report.variants[i].emissions[b].backend = options.backends[b];
    }
    if (!report.variants[i].ok) continue;  // layout failed: nothing to emit
    for (std::size_t b = 0; b < options.backends.size(); ++b) {
      tasks.push_back(EmitTask{i, b, options.backends[b]});
    }
  }
  parallel_for(tasks.size(), workers, [&](std::size_t t) {
    obs::ScopedSpan span("sweep", "emit");
    span.arg("backend", tasks[t].backend);
    const auto t0 = Clock::now();
    const EmitTask& task = tasks[t];
    SweepVariantReport& vr = report.variants[task.variant];
    SweepEmission& em = vr.emissions[task.slot];
    em.backend = task.backend;

    const CompilationPtr& comp = compiled[task.variant];
    if (options.cache != nullptr) {
      if (auto cached = options.cache->load_artifact(source, comp->options(),
                                                     task.backend)) {
        em.ok = cached->ok;
        em.from_cache = true;
        em.text = std::move(cached->text);
        em.metrics = std::move(cached->metrics);
        em.wall_ms = ms_since(t0);
        return;
      }
    }

    // Every emission runs on its own clone of the variant's compilation, so
    // concurrent backends never share a DiagnosticEngine or Emit record.
    CompilationPtr eclone = comp->clone_from_stage(Stage::Layout);
    const CompilerDriver edriver(comp->options(), registry_);
    BackendArtifact artifact = edriver.emit(eclone, task.backend);
    if (options.cache != nullptr && artifact.ok) {
      // Store before the fields move into the report (no artifact copy).
      options.cache->store_artifact(source, comp->options(), artifact);
    }
    em.ok = artifact.ok;
    em.text = std::move(artifact.text);
    em.metrics = std::move(artifact.metrics);
    em.diagnostics = eclone->stage_diagnostics(Stage::Emit);
    em.wall_ms = ms_since(t0);
  });

  // ---- Aggregate ----------------------------------------------------------
  report.ok = true;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    SweepVariantReport& vr = report.variants[i];
    if (compiled[i] != nullptr) vr.records = compiled[i]->records();
    double emit_ms = 0.0;
    for (const SweepEmission& e : vr.emissions) {
      if (!e.ok) vr.ok = false;
      emit_ms += e.wall_ms;
    }
    vr.wall_ms += emit_ms;
    if (!vr.ok) report.ok = false;
  }
  report.total_wall_ms = ms_since(sweep_t0);
  return report;
}

// ---------------------------------------------------------------------------
// Auto-fitting
// ---------------------------------------------------------------------------

std::string FitReport::str() const {
  std::ostringstream os;
  os << "=== fit: " << program_name << " (smallest " << search_field
     << " in [" << lo << ".." << hi << "], " << rows.size() << " row"
     << (rows.size() == 1 ? "" : "s") << ") ===\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "front end: %d run%s (%.3f ms)\n",
                frontend_runs, frontend_runs == 1 ? "" : "s",
                frontend_wall_ms);
  os << buf;
  if (!frontend_diagnostics.empty()) {
    os << "front-end diagnostics:\n";
    for (const Diagnostic& d : frontend_diagnostics) {
      os << "  " << d.str() << "\n";
    }
  }
  if (!rows.empty()) {
    std::size_t label_w = 7;
    for (const auto& r : rows) label_w = std::max(label_w, r.label.size());
    std::snprintf(buf, sizeof(buf), "%-*s %12s %7s  %s\n",
                  static_cast<int>(label_w), "variant",
                  ("min " + search_field).c_str(), "probes", "probed values");
    os << buf;
    for (const FitRow& r : rows) {
      std::string fitted = !r.layout_ok ? "ERROR"
                           : r.fitted < 0 ? "none"
                                          : std::to_string(r.fitted);
      std::string probed;
      for (const int v : r.probed) {
        if (!probed.empty()) probed += ",";
        probed += std::to_string(v);
      }
      std::snprintf(buf, sizeof(buf), "%-*s %12s %7zu  %s\n",
                    static_cast<int>(label_w), r.label.c_str(),
                    fitted.c_str(), r.probed.size(), probed.c_str());
      os << buf;
    }
  }
  std::snprintf(buf, sizeof(buf), "total wall: %.3f ms%s\n", total_wall_ms,
                !ok          ? "  (FAILURES)"
                : !all_fit   ? "  (some rows do not fit in range)"
                             : "");
  os << buf;
  return os.str();
}

FitReport SweepEngine::fit(std::string_view source,
                           const FitOptions& options) const {
  const auto fit_t0 = Clock::now();

  FitReport report;
  report.program_name = options.program_name;
  report.search_field = options.spec.search_field;
  report.lo = options.spec.lo;
  report.hi = options.spec.hi;

  int workers = options.workers;
  if (workers <= 0) {
    workers = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }

  // One front end for every row and probe, exactly as in run().
  DriverOptions base_opts;
  base_opts.program_name = options.program_name;
  const CompilerDriver driver(base_opts, registry_);
  bool cache_hit = false;
  const CompilationPtr base =
      options.cache != nullptr
          ? options.cache->compile(driver, source, &cache_hit)
          : driver.run(source, Stage::Lower);
  driver.run_until(base, Stage::Lower);
  report.frontend_runs =
      options.cache != nullptr ? (cache_hit ? 0 : 1)
                               : (base->record(Stage::Parse).ran &&
                                          !base->record(Stage::Parse).shared
                                      ? 1
                                      : 0);
  for (const Stage s : {Stage::Parse, Stage::Sema, Stage::Lower}) {
    const StageRecord& rec = base->record(s);
    if (!rec.ran) continue;
    report.frontend_wall_ms += rec.wall_ms;
    for (const Diagnostic& d : base->stage_diagnostics(s)) {
      report.frontend_diagnostics.push_back(d);
    }
  }
  if (!base->succeeded(Stage::Lower)) {
    report.ok = false;
    report.total_wall_ms = ms_since(fit_t0);
    return report;
  }
  // Phase A paid serially once; every probe's Layout shares it.
  (void)base->layout_analysis_ptr();

  report.rows.resize(options.spec.base.size());
  std::atomic<bool> probes_ok{true};
  parallel_for(options.spec.base.size(), workers, [&](std::size_t i) {
    const SweepVariant& v = options.spec.base[i];
    FitRow& row = report.rows[i];
    row.label = v.label;
    row.model = v.model;
    *model_field(row.model, options.spec.search_field) = options.spec.hi;

    // One probe: lay the program out with the search field at `value`.
    // 1 = fits, 0 = does not fit, -1 = layout error (not a fit verdict).
    const auto probe = [&](int value) -> int {
      opt::ResourceModel m = v.model;
      *model_field(m, options.spec.search_field) = value;
      DriverOptions vopts;
      vopts.model = m;
      vopts.program_name = options.program_name;
      CompilationPtr clone = base->clone_from_stage(Stage::Lower, vopts);
      if (clone == nullptr) return -1;
      CompilerDriver(vopts, registry_).run_until(clone, Stage::Layout);
      row.probed.push_back(value);
      if (!clone->succeeded(Stage::Layout)) return -1;
      return clone->layout_stats().fits ? 1 : 0;
    };

    // Every sweepable field is monotone (more resources never un-fits), so
    // first decide whether the range contains a fit at all, then bisect.
    const int at_hi = probe(options.spec.hi);
    if (at_hi < 0) {
      row.layout_ok = false;
      probes_ok.store(false);
      return;
    }
    if (at_hi == 0) return;  // fitted stays -1: nothing in range fits
    int lo = options.spec.lo;
    int hi = options.spec.hi;
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      const int r = probe(mid);
      if (r < 0) {
        row.layout_ok = false;
        probes_ok.store(false);
        return;
      }
      if (r == 1) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    row.fitted = lo;
    *model_field(row.model, options.spec.search_field) = lo;
  });

  report.ok = probes_ok.load();
  report.all_fit = report.ok;
  for (const FitRow& r : report.rows) {
    if (r.fitted < 0) report.all_fit = false;
  }
  report.total_wall_ms = ms_since(fit_t0);
  return report;
}

}  // namespace lucid
