#include "core/driver.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "core/cache.hpp"
#include "frontend/incremental_parse.hpp"
#include "frontend/parser.hpp"
#include "ir/ir.hpp"
#include "obs/trace.hpp"
#include "sema/depgraph.hpp"
#include "support/chrono.hpp"
#include "support/json.hpp"

namespace lucid {

namespace {

using Clock = SteadyClock;

constexpr std::array<std::string_view, kNumStages> kStageNames = {
    "parse", "sema", "lower", "layout", "emit"};

}  // namespace

std::string_view stage_name(Stage s) {
  return kStageNames[static_cast<std::size_t>(s)];
}

std::optional<Stage> stage_from_name(std::string_view name) {
  for (int i = 0; i < kNumStages; ++i) {
    if (kStageNames[static_cast<std::size_t>(i)] == name) {
      return static_cast<Stage>(i);
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

Compilation::Compilation(std::string source, DriverOptions options)
    : source_(std::move(source)),
      options_(std::move(options)),
      diags_(source_) {
  for (int i = 0; i < kNumStages; ++i) {
    records_[static_cast<std::size_t>(i)].stage = static_cast<Stage>(i);
  }
}

bool Compilation::ok() const {
  for (const auto& r : records_) {
    if (r.ran && !r.ok) return false;
  }
  return true;
}

std::optional<Stage> Compilation::last_stage() const {
  std::optional<Stage> last;
  for (const auto& r : records_) {
    if (r.ran) last = r.stage;
  }
  return last;
}

Artifacts Compilation::release_artifacts() && { return std::move(artifacts_); }

const std::vector<frontend::DeclFingerprint>& Compilation::decl_fingerprints()
    const {
  if (inherits(Stage::Parse)) return donor_->decl_fingerprints();
  std::call_once(fingerprints_once_,
                 [this] { fingerprints_ = frontend::fingerprint_program(ast()); });
  return fingerprints_;
}

const std::vector<frontend::DeclSpan>* Compilation::decl_spans() const {
  if (inherits(Stage::Parse)) return donor_->decl_spans();
  std::call_once(spans_once_,
                 [this] { spans_ = frontend::scan_decl_spans(source_); });
  return spans_.has_value() ? &*spans_ : nullptr;
}

std::shared_ptr<const opt::LayoutAnalysis> Compilation::layout_analysis_ptr()
    const {
  // Clones resolve through the donor chain so the whole clone family shares
  // one analysis object (and one computation).
  if (inherits(Stage::Lower)) return donor_->layout_analysis_ptr();
  std::call_once(analysis_once_, [this] {
    // Incremental recompiles patch the previous compilation's analysis,
    // re-running branch inlining / dependency analysis / the same-handler
    // disjointness block only for the dirty handlers. Only when prev has
    // already paid for its analysis — patching an uncomputed one would cost
    // more than a cold run. nullptr (unsound patch) falls through cold.
    if (analysis_reuse_prev_ != nullptr && analysis_reuse_prev_->analysis_ready()) {
      analysis_ = opt::update_layout_analysis(
          *analysis_reuse_prev_->layout_analysis_ptr(), ir(),
          analysis_dirty_handlers_, 64, &analysis_handlers_reused_);
    }
    if (analysis_ == nullptr) {
      analysis_handlers_reused_ = 0;
      analysis_ = opt::analyze_layout(ir());
    }
    analysis_ready_.store(true, std::memory_order_release);
  });
  return analysis_;
}

CompilationPtr Compilation::clone_from_stage(
    Stage upto, std::optional<DriverOptions> options) const {
  const int last = static_cast<int>(upto);
  if (last < static_cast<int>(Stage::Sema) ||
      last > static_cast<int>(Stage::Layout)) {
    return nullptr;
  }
  for (int i = 0; i <= last; ++i) {
    if (!succeeded(static_cast<Stage>(i))) return nullptr;
  }

  auto clone = std::make_shared<Compilation>(
      source_, options.has_value() ? std::move(*options) : options_);
  clone->donor_ = shared_from_this();
  clone->inherited_until_ = last;
  // Replay the shared stages' records and diagnostics so the clone is
  // indistinguishable from a cold compile (same diagnostics, same stage
  // ranges) except for the `shared` marker.
  for (int i = 0; i <= last; ++i) {
    const Stage s = static_cast<Stage>(i);
    StageRecord& rec = clone->mutable_record(s);
    rec = record(s);
    rec.shared = true;
    rec.diag_begin = clone->diags_.all().size();
    for (const Diagnostic& d : stage_diagnostics(s)) {
      clone->diags_.add(d.severity, d.range, d.code, d.message);
    }
    rec.diag_end = clone->diags_.all().size();
  }
  return clone;
}

std::vector<Diagnostic> Compilation::stage_diagnostics(Stage s) const {
  const StageRecord& r = record(s);
  std::vector<Diagnostic> out;
  if (!r.ran) return out;
  const auto& all = diags_.all();
  if (s == Stage::Emit) {
    // Exact per-emit spans: middle-end stages that emit() ran lazily sit
    // between them and must not be attributed to Emit.
    for (const auto& [begin, end] : emit_diag_ranges_) {
      for (std::size_t i = begin; i < end && i < all.size(); ++i) {
        out.push_back(all[i]);
      }
    }
    return out;
  }
  for (std::size_t i = r.diag_begin; i < r.diag_end && i < all.size(); ++i) {
    out.push_back(all[i]);
  }
  return out;
}

std::vector<StageRecord> Compilation::records() const {
  std::vector<StageRecord> out;
  for (const auto& r : records_) {
    if (r.ran) out.push_back(r);
  }
  return out;
}

double Compilation::total_wall_ms() const {
  double total = 0.0;
  for (const auto& r : records_) {
    if (r.ran) total += r.wall_ms;
  }
  return total;
}

std::string Compilation::timing_report() const {
  std::ostringstream os;
  os << "=== pass timings (" << options_.program_name << ") ===\n";
  char buf[128];
  for (const auto& r : records_) {
    if (!r.ran) continue;
    std::string reuse;
    if (r.decls_reused > 0) {
      reuse = " (reused " + std::to_string(r.decls_reused) + " decls)";
    }
    std::snprintf(buf, sizeof(buf), "  %-8s %9.3f ms  %s%s%s%s\n",
                  std::string(stage_name(r.stage)).c_str(), r.wall_ms,
                  r.ok ? "ok" : "FAILED", r.shared ? " (shared)" : "",
                  r.analysis_shared ? " (analysis shared)" : "",
                  reuse.c_str());
    os << buf;
  }
  std::snprintf(buf, sizeof(buf), "  %-8s %9.3f ms\n", "total",
                total_wall_ms());
  os << buf;
  return os.str();
}

std::string Compilation::timing_report_json() const {
  // Shares the tree-wide JSON emission path (support/json.hpp) with
  // `--metrics-out`, the trace export, and the bench result files.
  support::JsonWriter j;
  j.obj_open().field("program", options_.program_name);
  j.arr_open("stages");
  for (const auto& r : records_) {
    if (!r.ran) continue;
    j.obj_open()
        .field("stage", stage_name(r.stage))
        .field("wall_ms", r.wall_ms)
        .field("ok", r.ok)
        .field("shared", r.shared)
        .field("analysis_shared", r.analysis_shared)
        .field("decls_reused", r.decls_reused)
        .obj_close();
  }
  j.arr_close().field("total_wall_ms", total_wall_ms()).obj_close();
  return j.str() + "\n";
}

// ---------------------------------------------------------------------------
// BackendRegistry
// ---------------------------------------------------------------------------

BackendRegistry& BackendRegistry::global() {
  static BackendRegistry registry;
  return registry;
}

bool BackendRegistry::add(std::unique_ptr<Backend> backend) {
  if (!backend) return false;
  if (find(backend->name()) != nullptr) return false;
  backends_.push_back(std::move(backend));
  return true;
}

Backend* BackendRegistry::find(std::string_view name) const {
  for (const auto& b : backends_) {
    if (b->name() == name) return b.get();
  }
  return nullptr;
}

std::vector<std::string> BackendRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b->name());
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// CompilerDriver
// ---------------------------------------------------------------------------

CompilerDriver::CompilerDriver(DriverOptions options, BackendRegistry* registry)
    : options_(std::move(options)),
      registry_(registry != nullptr ? registry : &BackendRegistry::global()) {}

CompilationPtr CompilerDriver::start(std::string_view source) const {
  return std::make_shared<Compilation>(std::string(source), options_);
}

bool CompilerDriver::run_stage(Compilation& c, Stage s) const {
  StageRecord& rec = c.mutable_record(s);
  if (rec.ran) return rec.ok;

  rec.diag_begin = c.diags_.all().size();
  // Success is judged on the errors *this* stage adds, so diagnostics from
  // unrelated sources (e.g. an earlier unknown-backend emit attempt) cannot
  // retroactively fail a clean stage.
  const std::size_t errors_before = c.diags_.error_count();
  obs::ScopedSpan span("compiler", stage_name(s));
  span.arg("program", c.options_.program_name);
  const auto t0 = Clock::now();
  bool ok = false;
  switch (s) {
    case Stage::Parse: {
      // Recompiles (parse_reuse_prev_ set) re-lex/re-parse only the decl
      // spans the byte diff touched, splicing unchanged decl nodes from the
      // previous AST; any scan/splice failure falls back to a cold parse.
      bool parsed = false;
      if (c.parse_reuse_prev_ != nullptr &&
          c.parse_reuse_prev_->succeeded(Stage::Parse)) {
        // prev's span table is cached on prev (one scan amortized over all
        // edits against it); only this compilation's buffer is scanned here.
        const auto* prev_spans = c.parse_reuse_prev_->decl_spans();
        if (prev_spans != nullptr) {
          if (auto inc = frontend::incremental_parse(
                  c.source_, c.parse_reuse_prev_->source(), *prev_spans,
                  c.parse_reuse_prev_->ast(), c.diags_)) {
            c.artifacts_.program = std::move(inc->program);
            c.parse_spliced_from_ = std::move(inc->spliced_from);
            // Seed this compilation's span cache with the table the splice
            // already scanned — if it becomes the next edit's prev, its scan
            // is already paid for.
            std::call_once(c.spans_once_,
                           [&] { c.spans_ = std::move(inc->spans); });
            rec.decls_reused = inc->reused;
            parsed = true;
          }
        }
      }
      if (!parsed) {
        c.artifacts_.program = frontend::Parser::parse(c.source_, c.diags_);
      }
      ok = c.diags_.error_count() == errors_before;
      break;
    }
    case Stage::Sema: {
      sema::TypeChecker tc(c.diags_, c.options_.sema_workers);
      ok = tc.check(c.artifacts_.program) &&
           c.diags_.error_count() == errors_before;
      c.artifacts_.info = tc.info();
      break;
    }
    case Stage::Lower: {
      // Read through the accessor: a clone's AST lives in its donor.
      c.artifacts_.ir = ir::lower(c.ast(), c.diags_);
      ok = c.diags_.error_count() == errors_before;
      break;
    }
    case Stage::Layout: {
      // Phase A (model-independent) comes off the compilation — computed
      // here for a cold compile, inherited from the clone donor otherwise.
      // "Shared" only when someone else both owns it *and* already computed
      // it: a clone whose Layout run triggers the donor's call_once pays the
      // cost in this record's wall_ms, and the flag must say so.
      rec.analysis_shared = c.analysis_home() != &c && c.analysis_ready();
      c.artifacts_.pipeline =
          opt::layout(c.layout_analysis_ptr(), c.options_.model, c.diags_);
      // When this compilation owns the analysis and it was patched from a
      // previous compilation's (incremental recompile), surface how many
      // handlers were carried over.
      if (c.analysis_home() == &c) {
        rec.decls_reused = c.analysis_handlers_reused_;
      }
      c.artifacts_.stats.unoptimized_stages = c.ir().total_longest_path();
      c.artifacts_.stats.optimized_stages =
          c.artifacts_.pipeline.stage_count();
      c.artifacts_.stats.ops_per_stage = c.artifacts_.pipeline.ops_per_stage();
      c.artifacts_.stats.fits = c.artifacts_.pipeline.fits;
      ok = c.diags_.error_count() == errors_before;
      break;
    }
    case Stage::Emit:
      // Emission runs through CompilerDriver::emit (it needs a backend).
      return false;
  }
  rec.wall_ms = ms_since(t0);
  rec.diag_end = c.diags_.all().size();
  rec.ran = true;
  rec.ok = ok;
  return ok;
}

bool CompilerDriver::run_until(const CompilationPtr& comp, Stage until) const {
  if (!comp) return false;
  const int last = std::min(static_cast<int>(until),
                            static_cast<int>(Stage::Layout));
  for (int i = 0; i <= last; ++i) {
    if (!run_stage(*comp, static_cast<Stage>(i))) return false;
  }
  // Judged on the requested middle-end stages only: a failed Emit record
  // (e.g. one bad backend) must not poison later runs or emits.
  return comp->succeeded(static_cast<Stage>(last));
}

bool CompilerDriver::run_next(const CompilationPtr& comp) const {
  if (!comp) return false;
  for (int i = 0; i <= static_cast<int>(Stage::Layout); ++i) {
    const Stage s = static_cast<Stage>(i);
    if (!comp->ran(s)) return run_stage(*comp, s);
    if (!comp->succeeded(s)) return false;  // blocked on an earlier failure
  }
  return false;  // middle end already complete
}

CompilationPtr CompilerDriver::run(std::string_view source, Stage until) const {
  CompilationPtr comp = start(source);
  run_until(comp, until);
  return comp;
}

CompilationPtr CompilerDriver::recompile(const ConstCompilationPtr& prev,
                                         std::string_view source,
                                         Stage until) const {
  const int last = std::min(static_cast<int>(until),
                            static_cast<int>(Stage::Lower));
  CompilationPtr comp = start(source);
  if (prev != nullptr && prev->succeeded(Stage::Parse)) {
    comp->parse_reuse_prev_ = prev;  // arms the incremental parse
  }
  if (!run_stage(*comp, Stage::Parse)) return comp;
  if (last <= static_cast<int>(Stage::Parse)) return comp;  // no diff needed
  if (prev == nullptr || !prev->succeeded(Stage::Lower)) {
    run_until(comp, static_cast<Stage>(last));  // nothing reusable: cold
    return comp;
  }

  // After an incremental parse, spliced decls are byte-identical to their
  // prev counterparts, so their fingerprints are prev's — seed the cache so
  // the diff below canonically prints only the re-parsed decls (O(edit),
  // not O(program)).
  if (!comp->parse_spliced_from_.empty()) {
    std::call_once(comp->fingerprints_once_, [&] {
      const auto& prev_fps = prev->decl_fingerprints();
      const auto& decls = comp->artifacts_.program.decls;
      comp->fingerprints_.reserve(decls.size());
      for (std::size_t i = 0; i < decls.size(); ++i) {
        const int from = comp->parse_spliced_from_[i];
        if (from >= 0 && static_cast<std::size_t>(from) < prev_fps.size()) {
          comp->fingerprints_.push_back(prev_fps[static_cast<std::size_t>(from)]);
        } else {
          comp->fingerprints_.push_back(frontend::fingerprint_decl(*decls[i]));
        }
      }
    });
  }

  // Both fingerprint vectors are cached on their compilations: prev pays
  // for its canonical prints once across any number of edits, and comp's
  // carry over if it becomes the next edit's prev.
  const sema::RecompilePlan plan =
      sema::plan_recompile(prev->ast(), prev->decl_fingerprints(),
                           comp->artifacts_.program,
                           comp->decl_fingerprints());

  if (plan.identical) {
    // Whitespace/comment/formatting-only edit: nothing past Parse re-runs.
    // Inherit Layout too when prev completed it under these options (only
    // when the caller wants the full front end).
    Stage upto = static_cast<Stage>(last);
    if (last == static_cast<int>(Stage::Lower) &&
        prev->succeeded(Stage::Layout) &&
        options_fingerprint(prev->options(), Stage::Layout) ==
            options_fingerprint(options_, Stage::Layout)) {
      upto = Stage::Layout;
    }
    if (CompilationPtr hit = prev->clone_from_stage(upto, options_)) {
      // The clone carries the donor's (structurally equivalent) source;
      // swap in the bytes the caller actually compiled.
      hit->source_ = std::string(source);
      hit->diags_.set_source(hit->source_);
      StageRecord& parse = hit->mutable_record(Stage::Parse);
      parse.wall_ms = comp->record(Stage::Parse).wall_ms;  // the diff's parse
      const int n = static_cast<int>(plan.reuse_from.size());
      parse.decls_reused = n;
      hit->mutable_record(Stage::Sema).decls_reused = n;
      if (last >= static_cast<int>(Stage::Lower)) {
        hit->mutable_record(Stage::Lower).decls_reused =
            static_cast<int>(prev->ir().handlers.size());
      }
      return hit;
    }
    // prev refused to clone (should not happen after the succeeded checks);
    // the partial path below recomputes whatever it cannot reuse.
  }

  // Spliced decl nodes are shared with prev's AST. Clean decls are only
  // ever written with values they already hold (Sema's header annotations
  // are conditional), but a dirty decl's body check mutates expression
  // types in place — un-share those by deep-cloning before Sema runs, so
  // prev stays immutable (it may be serving other recompiles/sweeps).
  if (!plan.identical && !comp->parse_spliced_from_.empty()) {
    auto& decls = comp->artifacts_.program.decls;
    for (std::size_t i = 0;
         i < decls.size() && i < plan.reuse_from.size(); ++i) {
      if (comp->parse_spliced_from_[i] >= 0 && plan.reuse_from[i] < 0) {
        decls[i] = frontend::clone_decl(*decls[i]);
      }
    }
  }

  // ---- Sema: re-check only the dirty decl set --------------------------
  {
    StageRecord& rec = comp->mutable_record(Stage::Sema);
    rec.diag_begin = comp->diags_.all().size();
    const std::size_t errors_before = comp->diags_.error_count();
    const auto t0 = Clock::now();
    sema::TypeChecker tc(comp->diags_, options_.sema_workers);
    sema::SemaReuse reuse;
    reuse.prev = &prev->ast();
    reuse.prev_info = &prev->analysis();
    reuse.reuse_from = plan.reuse_from;
    const bool ok = tc.check(comp->artifacts_.program, &reuse) &&
                    comp->diags_.error_count() == errors_before;
    comp->artifacts_.info = tc.info();
    rec.wall_ms = ms_since(t0);
    rec.diag_end = comp->diags_.all().size();
    rec.ran = true;
    rec.ok = ok;
    rec.decls_reused = static_cast<int>(tc.decls_reused());
    if (!ok) return comp;
  }
  if (last <= static_cast<int>(Stage::Sema)) return comp;

  // ---- Lower: splice unchanged handlers' graphs ------------------------
  {
    StageRecord& rec = comp->mutable_record(Stage::Lower);
    rec.diag_begin = comp->diags_.all().size();
    const std::size_t errors_before = comp->diags_.error_count();
    const auto t0 = Clock::now();
    ir::LowerReuse reuse;
    reuse.prev = &prev->ir();
    const auto& decls = comp->artifacts_.program.decls;
    for (std::size_t i = 0;
         i < decls.size() && i < plan.reuse_from.size(); ++i) {
      if (plan.reuse_from[i] >= 0 &&
          decls[i]->kind == frontend::DeclKind::Handler) {
        reuse.handlers.insert(decls[i]->name);
      }
    }
    std::size_t spliced = 0;
    comp->artifacts_.ir =
        ir::lower(comp->artifacts_.program, comp->diags_, &reuse, &spliced);
    rec.wall_ms = ms_since(t0);
    rec.diag_end = comp->diags_.all().size();
    rec.ran = true;
    rec.ok = comp->diags_.error_count() == errors_before;
    rec.decls_reused = static_cast<int>(spliced);
    if (rec.ok) {
      // Arm the incremental Phase A: when Layout later runs, handlers whose
      // graphs were spliced (unchanged) keep their analysis from prev; the
      // rest (edited or new) are re-analyzed.
      comp->analysis_reuse_prev_ = prev;
      for (const auto& d : decls) {
        if (d->kind == frontend::DeclKind::Handler &&
            reuse.handlers.count(d->name) == 0) {
          comp->analysis_dirty_handlers_.insert(d->name);
        }
      }
    }
  }
  return comp;
}

BackendArtifact CompilerDriver::emit(const CompilationPtr& comp,
                                     std::string_view backend_name) const {
  BackendArtifact artifact;
  artifact.backend = std::string(backend_name);
  if (!comp) return artifact;

  Backend* backend = registry_->find(backend_name);
  if (backend == nullptr) {
    std::string known;
    for (const auto& n : registry_->names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    comp->diags().error({}, "driver-unknown-backend",
                        "unknown backend '" + artifact.backend +
                            "'; registered backends: " +
                            (known.empty() ? "<none>" : known));
    return artifact;
  }

  if (!run_until(comp, backend->required_stage())) {
    comp->diags().error({}, "driver-stage-failed",
                        "cannot emit with backend '" + artifact.backend +
                            "': stage '" +
                            std::string(stage_name(backend->required_stage())) +
                            "' did not complete successfully");
    return artifact;
  }

  // The Emit record aggregates across emit() calls: wall time accumulates,
  // the coarse diagnostics range spans every backend's output, and ok holds
  // only if every emission succeeded. Exact per-emit spans are kept in
  // emit_diag_ranges_ (middle-end stages run lazily above may interleave).
  StageRecord& rec = comp->mutable_record(Stage::Emit);
  const std::size_t diag_begin = comp->diags().all().size();
  if (!rec.ran) rec.diag_begin = diag_begin;
  obs::ScopedSpan span("compiler", "emit");
  span.arg("backend", backend_name);
  const auto t0 = Clock::now();
  artifact = backend->emit(*comp);
  artifact.backend = std::string(backend_name);
  rec.wall_ms += ms_since(t0);
  rec.diag_end = comp->diags().all().size();
  comp->emit_diag_ranges_.emplace_back(diag_begin, rec.diag_end);
  rec.ok = rec.ran ? (rec.ok && artifact.ok) : artifact.ok;
  rec.ran = true;
  return artifact;
}

}  // namespace lucid
