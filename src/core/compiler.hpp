// Public compiler API: one call takes Lucid source through parsing, memop
// validation, the ordered type-and-effect system, lowering to atomic tables,
// and pipeline layout. The P4 backend (src/p4) renders CompileResult into
// Tofino-style P4_16; the interpreter (src/interp) executes the annotated
// AST directly.
#pragma once

#include <string>

#include "frontend/ast.hpp"
#include "ir/ir.hpp"
#include "opt/passes.hpp"
#include "sema/type_check.hpp"
#include "support/diagnostics.hpp"

namespace lucid {

struct CompileOptions {
  opt::ResourceModel model = opt::ResourceModel::tofino();
};

struct CompileResult {
  bool ok = false;
  frontend::Program program;   // annotated AST
  sema::AnalysisInfo info;     // effect summaries
  ir::ProgramIR ir;            // atomic table graphs
  opt::Pipeline pipeline;      // optimized layout
  opt::LayoutStats stats;      // Fig 12/13 numbers
};

/// Compiles `source`. Diagnostics accumulate in `diags`; `result.ok` is true
/// only if every phase succeeded.
[[nodiscard]] CompileResult compile(std::string_view source,
                                    DiagnosticEngine& diags,
                                    const CompileOptions& options = {});

}  // namespace lucid
