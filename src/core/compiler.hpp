// Deprecated one-shot compiler API.
//
// The staged pipeline lives in core/driver.hpp: `CompilerDriver` runs
// Parse → Sema → Lower → Layout as individually-runnable stages over a
// ref-counted `Compilation`, and Emit goes through the pluggable backend
// registry (see core/backends.hpp for the stock "p4"/"interp" backends).
//
// `compile()` below is a thin shim over that driver, kept for one release so
// out-of-tree callers migrate gradually: it runs the full middle end and
// copies the artifacts out into a by-value CompileResult. New code should
// use CompilerDriver — it is the only way to stop after a stage, read
// per-stage diagnostics/timings, or reach a backend by name.
#pragma once

#include <string>

#include "core/driver.hpp"
#include "frontend/ast.hpp"
#include "ir/ir.hpp"
#include "opt/passes.hpp"
#include "sema/type_check.hpp"
#include "support/diagnostics.hpp"

namespace lucid {

struct CompileOptions {
  opt::ResourceModel model = opt::ResourceModel::tofino();
};

struct CompileResult {
  bool ok = false;
  frontend::Program program;   // annotated AST
  sema::AnalysisInfo info;     // effect summaries
  ir::ProgramIR ir;            // atomic table graphs
  opt::Pipeline pipeline;      // optimized layout
  opt::LayoutStats stats;      // Fig 12/13 numbers
};

/// DEPRECATED: compiles `source` in one shot via the staged CompilerDriver.
/// Diagnostics accumulate in `diags`; `result.ok` is true only if every
/// stage succeeded. Prefer CompilerDriver::run (core/driver.hpp).
[[nodiscard]] CompileResult compile(std::string_view source,
                                    DiagnosticEngine& diags,
                                    const CompileOptions& options = {});

}  // namespace lucid
