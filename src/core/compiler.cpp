#include "core/compiler.hpp"

#include <utility>

namespace lucid {

CompileResult compile(std::string_view source, DiagnosticEngine& diags,
                      const CompileOptions& options) {
  DriverOptions dopts;
  dopts.model = options.model;
  const CompilerDriver driver(std::move(dopts));
  CompilationPtr comp = driver.run(source, Stage::Layout);

  // Replay the driver's diagnostics into the caller's engine.
  for (const Diagnostic& d : comp->diags().all()) {
    diags.add(d.severity, d.range, d.code, d.message);
  }

  CompileResult result;
  result.ok = comp->ok() && comp->succeeded(Stage::Layout);
  Artifacts a = std::move(*comp).release_artifacts();
  result.program = std::move(a.program);
  result.info = std::move(a.info);
  result.ir = std::move(a.ir);
  result.pipeline = std::move(a.pipeline);
  result.stats = std::move(a.stats);
  return result;
}

}  // namespace lucid
