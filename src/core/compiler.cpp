#include "core/compiler.hpp"

namespace lucid {

CompileResult compile(std::string_view source, DiagnosticEngine& diags,
                      const CompileOptions& options) {
  CompileResult result;

  sema::FrontendResult fe = sema::parse_and_check(source, diags);
  result.program = std::move(fe.program);
  result.info = std::move(fe.info);
  if (!fe.ok) return result;

  result.ir = ir::lower(result.program, diags);
  if (diags.has_errors()) return result;

  result.pipeline = opt::layout(result.ir, options.model, diags);
  result.stats.unoptimized_stages = result.ir.total_longest_path();
  result.stats.optimized_stages = result.pipeline.stage_count();
  result.stats.ops_per_stage = result.pipeline.ops_per_stage();
  result.stats.fits = result.pipeline.fits;

  result.ok = !diags.has_errors();
  return result;
}

}  // namespace lucid
