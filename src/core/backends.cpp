#include "core/backends.hpp"

#include "ebpf/emit.hpp"
#include "interp/backend.hpp"
#include "native/backend.hpp"
#include "p4/emit.hpp"

namespace lucid {

void register_default_backends(BackendRegistry& registry) {
  p4::register_backend(registry);
  interp::register_backend(registry);
  ebpf::register_backend(registry);
  native::register_backend(registry);
}

}  // namespace lucid
