// The Appendix A model calculus: a small ML-like language with ordered
// global reference cells, a type-and-effect system whose effects are pipeline
// stages, and a small-step operational semantics over (G, n, e) states.
//
// The paper proves soundness ("well-typed programs do not get stuck") via
// progress + preservation. Here the calculus is executable so the theorem is
// checked mechanically: tests/test_calculus.cpp exercises every rule, and a
// random well-typed-term generator sweeps thousands of programs through the
// stepper asserting both lemmas on every intermediate state.
//
// Syntax (Figure 18):
//   tau ::= Unit | Int | ref(T, eps) | (tau, eps) -> (tau, eps)
//   v   ::= () | n | g_i | fun (x : tau, eps) -> e
//   e   ::= v | x | e + e | let x = e in e | !e | e := e | e e
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace lucid::calculus {

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

enum class TyKind { Unit, Int, Ref, Fun };

struct Ty;
using TyPtr = std::shared_ptr<const Ty>;

struct Ty {
  TyKind kind = TyKind::Unit;
  // Ref(T, stage): base type (Unit/Int only) and the global's stage.
  TyPtr ref_base;
  int ref_stage = 0;
  // Fun: (in, eps_in) -> (out, eps_out).
  TyPtr fun_in;
  int fun_eps_in = 0;
  TyPtr fun_out;
  int fun_eps_out = 0;

  static TyPtr unit();
  static TyPtr int_ty();
  static TyPtr ref(TyPtr base, int stage);
  static TyPtr fun(TyPtr in, int eps_in, TyPtr out, int eps_out);

  [[nodiscard]] std::string str() const;
};

[[nodiscard]] bool ty_equal(const TyPtr& a, const TyPtr& b);

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExKind { Unit, Int, Global, Var, Lam, Plus, Let, Deref, Update, App };

struct Ex;
using ExPtr = std::shared_ptr<const Ex>;

struct Ex {
  ExKind kind = ExKind::Unit;
  std::int64_t int_value = 0;  // Int
  int global_index = 0;        // Global g_i
  std::string var;             // Var, Lam binder, Let binder
  TyPtr lam_ty;                // Lam parameter type
  int lam_eps = 0;             // Lam starting stage
  ExPtr a;                     // Lam body / Plus lhs / Let bound / Deref sub /
                               // Update value (e1) / App fun
  ExPtr b;                     // Plus rhs / Let body / Update ref (e2) / App arg

  [[nodiscard]] bool is_value() const;
  [[nodiscard]] std::string str() const;
};

// Constructors.
[[nodiscard]] ExPtr unit();
[[nodiscard]] ExPtr lit(std::int64_t n);
[[nodiscard]] ExPtr global(int i);
[[nodiscard]] ExPtr var(std::string name);
[[nodiscard]] ExPtr lam(std::string x, TyPtr ty, int eps, ExPtr body);
[[nodiscard]] ExPtr plus(ExPtr lhs, ExPtr rhs);
[[nodiscard]] ExPtr let(std::string x, ExPtr bound, ExPtr body);
[[nodiscard]] ExPtr deref(ExPtr e);
/// `ref := value` — evaluation order follows the paper: value first.
[[nodiscard]] ExPtr update(ExPtr ref, ExPtr value);
[[nodiscard]] ExPtr app(ExPtr f, ExPtr arg);

/// Capture-avoiding value substitution e[v/x]. (Substituted terms are always
/// closed values, as in the paper's lemma, so no renaming is needed.)
[[nodiscard]] ExPtr subst(const ExPtr& e, const std::string& x,
                          const ExPtr& v);

// ---------------------------------------------------------------------------
// Typing: Gamma, eps1 |- e : tau, eps2
// ---------------------------------------------------------------------------

/// The ordered global signature: base type of each g_i (g_i has stage i).
using GlobalSig = std::vector<TyPtr>;

struct TypeResult {
  TyPtr type;
  int end_stage = 0;
};

/// Typechecks `e` starting at `stage`. Returns nullopt if ill-typed
/// (including stage-ordering violations).
[[nodiscard]] std::optional<TypeResult> type_of(
    const GlobalSig& sig, const std::map<std::string, TyPtr>& env, int stage,
    const ExPtr& e);

// ---------------------------------------------------------------------------
// Operational semantics: (G, n, e) -> (G', n', e')
// ---------------------------------------------------------------------------

struct State {
  std::vector<ExPtr> globals;  // G: current value of each g_i (values only)
  int next_stage = 0;          // n: globals below this index are spent
  ExPtr expr;
};

/// One small step. Returns nullopt when no rule applies (value, or stuck).
[[nodiscard]] std::optional<State> step(const GlobalSig& sig, const State& s);

/// Runs to a value or until `max_steps`. Returns the final state and whether
/// it ended on a value.
struct RunResult {
  State final;
  bool reached_value = false;
  int steps = 0;
};
[[nodiscard]] RunResult run(const GlobalSig& sig, State s,
                            int max_steps = 100000);

/// G is well-typed: every G[i] is a closed value of the signature's type.
[[nodiscard]] bool globals_well_typed(const GlobalSig& sig,
                                      const std::vector<ExPtr>& globals);

}  // namespace lucid::calculus
