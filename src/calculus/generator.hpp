// Random well-typed term generator for the Appendix A calculus.
//
// The generator produces closed expressions that are well-typed *by
// construction*: it threads the same stage cursor the type system threads, so
// global accesses are always emitted in nondecreasing stage order. The
// soundness property tests then (1) confirm the checker accepts every
// generated term, and (2) step each term to a value asserting progress and
// preservation at every intermediate state.
#pragma once

#include <cstdint>
#include <random>

#include "calculus/calculus.hpp"

namespace lucid::calculus {

struct GenConfig {
  int num_globals = 6;   // signature g_0..g_{n-1}, all Int
  int max_depth = 5;     // expression nesting budget
  int max_literal = 100; // integer literal magnitude
};

class TermGenerator {
 public:
  TermGenerator(GenConfig config, std::uint64_t seed)
      : config_(config), rng_(seed) {}

  /// The all-Int global signature used by generated terms.
  [[nodiscard]] GlobalSig signature() const;

  /// Initial global values (all integer literals).
  [[nodiscard]] std::vector<ExPtr> initial_globals();

  /// A closed, well-typed Int expression starting at stage 0.
  [[nodiscard]] ExPtr gen_int_term();

 private:
  struct Scope {
    std::vector<std::pair<std::string, TyPtr>> vars;
  };

  [[nodiscard]] int rand_int(int lo, int hi);
  [[nodiscard]] bool coin(double p);

  // Generates an Int-typed expression. `stage` is the evaluation-order stage
  // cursor, updated in place. `depth` bounds nesting.
  [[nodiscard]] ExPtr gen_int(Scope& scope, int& stage, int depth);
  // Generates a Unit-typed expression (an update to a still-legal global).
  [[nodiscard]] ExPtr gen_unit(Scope& scope, int& stage, int depth);

  GenConfig config_;
  std::mt19937_64 rng_;
  int next_var_id_ = 0;
};

}  // namespace lucid::calculus
