#include "calculus/calculus.hpp"

#include <sstream>

namespace lucid::calculus {

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

TyPtr Ty::unit() {
  static const TyPtr t = std::make_shared<Ty>(Ty{TyKind::Unit, {}, 0, {}, 0,
                                                 {}, 0});
  return t;
}

TyPtr Ty::int_ty() {
  static const TyPtr t = std::make_shared<Ty>(Ty{TyKind::Int, {}, 0, {}, 0,
                                                 {}, 0});
  return t;
}

TyPtr Ty::ref(TyPtr base, int stage) {
  auto t = std::make_shared<Ty>();
  const_cast<Ty&>(*t).kind = TyKind::Ref;
  const_cast<Ty&>(*t).ref_base = std::move(base);
  const_cast<Ty&>(*t).ref_stage = stage;
  return t;
}

TyPtr Ty::fun(TyPtr in, int eps_in, TyPtr out, int eps_out) {
  auto t = std::make_shared<Ty>();
  const_cast<Ty&>(*t).kind = TyKind::Fun;
  const_cast<Ty&>(*t).fun_in = std::move(in);
  const_cast<Ty&>(*t).fun_eps_in = eps_in;
  const_cast<Ty&>(*t).fun_out = std::move(out);
  const_cast<Ty&>(*t).fun_eps_out = eps_out;
  return t;
}

std::string Ty::str() const {
  switch (kind) {
    case TyKind::Unit: return "Unit";
    case TyKind::Int: return "Int";
    case TyKind::Ref:
      return "ref(" + ref_base->str() + ", " + std::to_string(ref_stage) +
             ")";
    case TyKind::Fun:
      return "(" + fun_in->str() + ", " + std::to_string(fun_eps_in) +
             ") -> (" + fun_out->str() + ", " + std::to_string(fun_eps_out) +
             ")";
  }
  return "?";
}

bool ty_equal(const TyPtr& a, const TyPtr& b) {
  if (a == b) return true;
  if (!a || !b || a->kind != b->kind) return false;
  switch (a->kind) {
    case TyKind::Unit:
    case TyKind::Int:
      return true;
    case TyKind::Ref:
      return a->ref_stage == b->ref_stage &&
             ty_equal(a->ref_base, b->ref_base);
    case TyKind::Fun:
      return a->fun_eps_in == b->fun_eps_in &&
             a->fun_eps_out == b->fun_eps_out &&
             ty_equal(a->fun_in, b->fun_in) && ty_equal(a->fun_out, b->fun_out);
  }
  return false;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

bool Ex::is_value() const {
  switch (kind) {
    case ExKind::Unit:
    case ExKind::Int:
    case ExKind::Global:
    case ExKind::Lam:
      return true;
    default:
      return false;
  }
}

std::string Ex::str() const {
  std::ostringstream os;
  switch (kind) {
    case ExKind::Unit: os << "()"; break;
    case ExKind::Int: os << int_value; break;
    case ExKind::Global: os << "g" << global_index; break;
    case ExKind::Var: os << var; break;
    case ExKind::Lam:
      os << "fun(" << var << " : " << lam_ty->str() << ", " << lam_eps
         << ") -> " << a->str();
      break;
    case ExKind::Plus: os << "(" << a->str() << " + " << b->str() << ")"; break;
    case ExKind::Let:
      os << "let " << var << " = " << a->str() << " in " << b->str();
      break;
    case ExKind::Deref: os << "!" << a->str(); break;
    case ExKind::Update: os << "(" << b->str() << " := " << a->str() << ")"; break;
    case ExKind::App: os << "(" << a->str() << " " << b->str() << ")"; break;
  }
  return os.str();
}

namespace {
ExPtr make(ExKind k) {
  auto e = std::make_shared<Ex>();
  const_cast<Ex&>(*e).kind = k;
  return e;
}
Ex& mut(const ExPtr& e) { return const_cast<Ex&>(*e); }
}  // namespace

ExPtr unit() { return make(ExKind::Unit); }

ExPtr lit(std::int64_t n) {
  auto e = make(ExKind::Int);
  mut(e).int_value = n;
  return e;
}

ExPtr global(int i) {
  auto e = make(ExKind::Global);
  mut(e).global_index = i;
  return e;
}

ExPtr var(std::string name) {
  auto e = make(ExKind::Var);
  mut(e).var = std::move(name);
  return e;
}

ExPtr lam(std::string x, TyPtr ty, int eps, ExPtr body) {
  auto e = make(ExKind::Lam);
  mut(e).var = std::move(x);
  mut(e).lam_ty = std::move(ty);
  mut(e).lam_eps = eps;
  mut(e).a = std::move(body);
  return e;
}

ExPtr plus(ExPtr lhs, ExPtr rhs) {
  auto e = make(ExKind::Plus);
  mut(e).a = std::move(lhs);
  mut(e).b = std::move(rhs);
  return e;
}

ExPtr let(std::string x, ExPtr bound, ExPtr body) {
  auto e = make(ExKind::Let);
  mut(e).var = std::move(x);
  mut(e).a = std::move(bound);
  mut(e).b = std::move(body);
  return e;
}

ExPtr deref(ExPtr e0) {
  auto e = make(ExKind::Deref);
  mut(e).a = std::move(e0);
  return e;
}

ExPtr update(ExPtr ref, ExPtr value) {
  auto e = make(ExKind::Update);
  mut(e).a = std::move(value);  // e1: evaluated first
  mut(e).b = std::move(ref);    // e2: the ref cell
  return e;
}

ExPtr app(ExPtr f, ExPtr arg) {
  auto e = make(ExKind::App);
  mut(e).a = std::move(f);
  mut(e).b = std::move(arg);
  return e;
}

ExPtr subst(const ExPtr& e, const std::string& x, const ExPtr& v) {
  switch (e->kind) {
    case ExKind::Unit:
    case ExKind::Int:
    case ExKind::Global:
      return e;
    case ExKind::Var:
      return e->var == x ? v : e;
    case ExKind::Lam:
      if (e->var == x) return e;  // shadowed
      return lam(e->var, e->lam_ty, e->lam_eps, subst(e->a, x, v));
    case ExKind::Plus:
      return plus(subst(e->a, x, v), subst(e->b, x, v));
    case ExKind::Let: {
      ExPtr bound = subst(e->a, x, v);
      ExPtr body = e->var == x ? e->b : subst(e->b, x, v);
      return let(e->var, std::move(bound), std::move(body));
    }
    case ExKind::Deref:
      return deref(subst(e->a, x, v));
    case ExKind::Update:
      return update(subst(e->b, x, v), subst(e->a, x, v));
    case ExKind::App:
      return app(subst(e->a, x, v), subst(e->b, x, v));
  }
  return e;
}

// ---------------------------------------------------------------------------
// Typing
// ---------------------------------------------------------------------------

std::optional<TypeResult> type_of(const GlobalSig& sig,
                                  const std::map<std::string, TyPtr>& env,
                                  int stage, const ExPtr& e) {
  switch (e->kind) {
    case ExKind::Unit:
      return TypeResult{Ty::unit(), stage};
    case ExKind::Int:
      return TypeResult{Ty::int_ty(), stage};
    case ExKind::Global: {
      const int i = e->global_index;
      if (i < 0 || static_cast<std::size_t>(i) >= sig.size()) {
        return std::nullopt;
      }
      return TypeResult{Ty::ref(sig[static_cast<std::size_t>(i)], i), stage};
    }
    case ExKind::Var: {
      const auto it = env.find(e->var);
      if (it == env.end()) return std::nullopt;
      return TypeResult{it->second, stage};
    }
    case ExKind::Lam: {
      auto body_env = env;
      body_env[e->var] = e->lam_ty;
      const auto body = type_of(sig, body_env, e->lam_eps, e->a);
      if (!body) return std::nullopt;
      return TypeResult{
          Ty::fun(e->lam_ty, e->lam_eps, body->type, body->end_stage), stage};
    }
    case ExKind::Plus: {
      const auto l = type_of(sig, env, stage, e->a);
      if (!l || l->type->kind != TyKind::Int) return std::nullopt;
      const auto r = type_of(sig, env, l->end_stage, e->b);
      if (!r || r->type->kind != TyKind::Int) return std::nullopt;
      return TypeResult{Ty::int_ty(), r->end_stage};
    }
    case ExKind::Let: {
      const auto bound = type_of(sig, env, stage, e->a);
      if (!bound) return std::nullopt;
      auto body_env = env;
      body_env[e->var] = bound->type;
      return type_of(sig, body_env, bound->end_stage, e->b);
    }
    case ExKind::Deref: {
      // DEREF: e : ref(T, e1) ending at e2; require e2 <= e1; result stage
      // e1 + 1.
      const auto sub = type_of(sig, env, stage, e->a);
      if (!sub || sub->type->kind != TyKind::Ref) return std::nullopt;
      if (sub->end_stage > sub->type->ref_stage) return std::nullopt;
      return TypeResult{sub->type->ref_base, sub->type->ref_stage + 1};
    }
    case ExKind::Update: {
      // UPDATE: e1 : T from stage -> k1; e2 : ref(T, k2) from k1 -> k3;
      // require k3 <= k2; result Unit at k2 + 1.
      const auto val = type_of(sig, env, stage, e->a);
      if (!val) return std::nullopt;
      const auto ref = type_of(sig, env, val->end_stage, e->b);
      if (!ref || ref->type->kind != TyKind::Ref) return std::nullopt;
      if (!ty_equal(val->type, ref->type->ref_base)) return std::nullopt;
      if (ref->end_stage > ref->type->ref_stage) return std::nullopt;
      return TypeResult{Ty::unit(), ref->type->ref_stage + 1};
    }
    case ExKind::App: {
      // APP: e1 : (tin, ein) -> (tout, eout) ending at k; e2 : tin from
      // k -> k2; require k2 <= ein; result tout at eout.
      const auto f = type_of(sig, env, stage, e->a);
      if (!f || f->type->kind != TyKind::Fun) return std::nullopt;
      const auto arg = type_of(sig, env, f->end_stage, e->b);
      if (!arg || !ty_equal(arg->type, f->type->fun_in)) return std::nullopt;
      if (arg->end_stage > f->type->fun_eps_in) return std::nullopt;
      return TypeResult{f->type->fun_out, f->type->fun_eps_out};
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Operational semantics
// ---------------------------------------------------------------------------

std::optional<State> step(const GlobalSig& sig, const State& s) {
  const ExPtr& e = s.expr;
  auto with_expr = [&](ExPtr ne) {
    State out = s;
    out.expr = std::move(ne);
    return out;
  };

  switch (e->kind) {
    case ExKind::Unit:
    case ExKind::Int:
    case ExKind::Global:
    case ExKind::Lam:
    case ExKind::Var:  // free variable: stuck
      return std::nullopt;

    case ExKind::Plus: {
      if (!e->a->is_value()) {  // PLUS-1
        auto sub = step(sig, with_expr(e->a));
        if (!sub) return std::nullopt;
        sub->expr = plus(sub->expr, e->b);
        return sub;
      }
      if (!e->b->is_value()) {  // PLUS-2
        auto sub = step(sig, with_expr(e->b));
        if (!sub) return std::nullopt;
        sub->expr = plus(e->a, sub->expr);
        return sub;
      }
      if (e->a->kind != ExKind::Int || e->b->kind != ExKind::Int) {
        return std::nullopt;  // stuck: adding non-integers
      }
      return with_expr(lit(e->a->int_value + e->b->int_value));  // PLUS-3
    }

    case ExKind::Let: {
      if (!e->a->is_value()) {  // LET-1
        auto sub = step(sig, with_expr(e->a));
        if (!sub) return std::nullopt;
        sub->expr = let(e->var, sub->expr, e->b);
        return sub;
      }
      return with_expr(subst(e->b, e->var, e->a));  // LET-2
    }

    case ExKind::Deref: {
      if (!e->a->is_value()) {  // DEREF-1
        auto sub = step(sig, with_expr(e->a));
        if (!sub) return std::nullopt;
        sub->expr = deref(sub->expr);
        return sub;
      }
      if (e->a->kind != ExKind::Global) return std::nullopt;
      const int i = e->a->global_index;
      if (s.next_stage > i) return std::nullopt;  // DEREF-2 guard: n <= i
      if (static_cast<std::size_t>(i) >= s.globals.size()) return std::nullopt;
      State out = s;
      out.next_stage = i + 1;
      out.expr = s.globals[static_cast<std::size_t>(i)];
      return out;
    }

    case ExKind::Update: {
      if (!e->a->is_value()) {  // UPDATE-1: step the value side
        auto sub = step(sig, with_expr(e->a));
        if (!sub) return std::nullopt;
        sub->expr = update(e->b, sub->expr);
        return sub;
      }
      if (!e->b->is_value()) {  // UPDATE-2: step the ref side
        auto sub = step(sig, with_expr(e->b));
        if (!sub) return std::nullopt;
        sub->expr = update(sub->expr, e->a);
        return sub;
      }
      if (e->b->kind != ExKind::Global) return std::nullopt;
      const int i = e->b->global_index;
      if (s.next_stage > i) return std::nullopt;  // UPDATE-3 guard: n <= i
      if (static_cast<std::size_t>(i) >= s.globals.size()) return std::nullopt;
      State out = s;
      out.globals[static_cast<std::size_t>(i)] = e->a;
      out.next_stage = i + 1;
      out.expr = unit();
      return out;
    }

    case ExKind::App: {
      if (!e->a->is_value()) {  // APP-1
        auto sub = step(sig, with_expr(e->a));
        if (!sub) return std::nullopt;
        sub->expr = app(sub->expr, e->b);
        return sub;
      }
      if (!e->b->is_value()) {  // APP-2
        auto sub = step(sig, with_expr(e->b));
        if (!sub) return std::nullopt;
        sub->expr = app(e->a, sub->expr);
        return sub;
      }
      if (e->a->kind != ExKind::Lam) return std::nullopt;
      return with_expr(subst(e->a->a, e->a->var, e->b));  // APP-3
    }
  }
  return std::nullopt;
}

RunResult run(const GlobalSig& sig, State s, int max_steps) {
  RunResult r;
  for (int i = 0; i < max_steps; ++i) {
    if (s.expr->is_value()) {
      r.final = std::move(s);
      r.reached_value = true;
      r.steps = i;
      return r;
    }
    auto next = step(sig, s);
    if (!next) {
      r.final = std::move(s);
      r.reached_value = false;
      r.steps = i;
      return r;
    }
    s = std::move(*next);
  }
  r.final = std::move(s);
  r.reached_value = s.expr->is_value();
  r.steps = max_steps;
  return r;
}

bool globals_well_typed(const GlobalSig& sig,
                        const std::vector<ExPtr>& globals) {
  if (sig.size() != globals.size()) return false;
  for (std::size_t i = 0; i < sig.size(); ++i) {
    if (!globals[i]->is_value()) return false;
    const auto t = type_of(sig, {}, 0, globals[i]);
    if (!t || !ty_equal(t->type, sig[i])) return false;
  }
  return true;
}

}  // namespace lucid::calculus
