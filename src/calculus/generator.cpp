#include "calculus/generator.hpp"

namespace lucid::calculus {

GlobalSig TermGenerator::signature() const {
  GlobalSig sig;
  for (int i = 0; i < config_.num_globals; ++i) sig.push_back(Ty::int_ty());
  return sig;
}

std::vector<ExPtr> TermGenerator::initial_globals() {
  std::vector<ExPtr> g;
  for (int i = 0; i < config_.num_globals; ++i) {
    g.push_back(lit(rand_int(0, config_.max_literal)));
  }
  return g;
}

int TermGenerator::rand_int(int lo, int hi) {
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(rng_);
}

bool TermGenerator::coin(double p) {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(rng_) < p;
}

ExPtr TermGenerator::gen_int_term() {
  Scope scope;
  int stage = 0;
  return gen_int(scope, stage, config_.max_depth);
}

ExPtr TermGenerator::gen_int(Scope& scope, int& stage, int depth) {
  // Leaves when out of budget.
  if (depth <= 0) {
    // Either a literal or an in-scope Int variable.
    if (!scope.vars.empty() && coin(0.5)) {
      for (int attempt = 0; attempt < 4; ++attempt) {
        const auto& v = scope.vars[static_cast<std::size_t>(
            rand_int(0, static_cast<int>(scope.vars.size()) - 1))];
        if (v.second->kind == TyKind::Int) return var(v.first);
      }
    }
    return lit(rand_int(0, config_.max_literal));
  }

  switch (rand_int(0, 5)) {
    case 0: {  // plus: evaluation order is left then right
      ExPtr l = gen_int(scope, stage, depth - 1);
      ExPtr r = gen_int(scope, stage, depth - 1);
      return plus(std::move(l), std::move(r));
    }
    case 1: {  // let Int
      ExPtr bound = gen_int(scope, stage, depth - 1);
      const std::string x = "x" + std::to_string(next_var_id_++);
      scope.vars.emplace_back(x, Ty::int_ty());
      ExPtr body = gen_int(scope, stage, depth - 1);
      scope.vars.pop_back();
      return let(x, std::move(bound), std::move(body));
    }
    case 2: {  // deref of a still-accessible global, if any
      if (stage < config_.num_globals) {
        const int i = rand_int(stage, config_.num_globals - 1);
        stage = i + 1;
        return deref(global(i));
      }
      return lit(rand_int(0, config_.max_literal));
    }
    case 3: {  // let _ = update in Int (sequencing a Unit effect)
      if (stage < config_.num_globals - 1 && coin(0.7)) {
        ExPtr eff = gen_unit(scope, stage, depth - 1);
        const std::string x = "u" + std::to_string(next_var_id_++);
        scope.vars.emplace_back(x, Ty::unit());
        ExPtr body = gen_int(scope, stage, depth - 1);
        scope.vars.pop_back();
        return let(x, std::move(eff), std::move(body));
      }
      return gen_int(scope, stage, depth - 1);
    }
    case 4: {  // immediately applied lambda: (fun(x:Int, eps) -> body) arg
      // APP evaluates the function value, then the argument, then enters the
      // body at the lambda's starting stage. The argument is generated
      // first so its stage advance is visible; the body starts at the
      // post-argument cursor, which satisfies the APP premise stage <= eps_in.
      ExPtr arg = gen_int(scope, stage, depth - 1);
      const int eps_in = stage;
      const std::string x = "a" + std::to_string(next_var_id_++);
      // The body may only use its own parameter: the lambda could in
      // principle capture outer variables, but keeping bodies closed under
      // [param] mirrors the paper's substitution lemma most directly.
      Scope body_scope;
      body_scope.vars.emplace_back(x, Ty::int_ty());
      int body_stage = eps_in;
      ExPtr body = gen_int(body_scope, body_stage, depth - 1);
      stage = body_stage;
      return app(lam(x, Ty::int_ty(), eps_in, std::move(body)),
                 std::move(arg));
    }
    default: {  // literal / variable leaf
      if (!scope.vars.empty() && coin(0.4)) {
        for (int attempt = 0; attempt < 4; ++attempt) {
          const auto& v = scope.vars[static_cast<std::size_t>(
              rand_int(0, static_cast<int>(scope.vars.size()) - 1))];
          if (v.second->kind == TyKind::Int) return var(v.first);
        }
      }
      return lit(rand_int(0, config_.max_literal));
    }
  }
}

ExPtr TermGenerator::gen_unit(Scope& scope, int& stage, int depth) {
  // g_i := value, with the value evaluated first (the paper's UPDATE order).
  ExPtr value = gen_int(scope, stage, depth - 1);
  if (stage < config_.num_globals) {
    const int i = rand_int(stage, config_.num_globals - 1);
    stage = i + 1;
    return update(global(i), std::move(value));
  }
  // No global is accessible any more; sequence the value through a let
  // and return unit.
  const std::string x = "d" + std::to_string(next_var_id_++);
  return let(x, std::move(value), unit());
}

}  // namespace lucid::calculus
