// Source locations and ranges used by every compiler stage to report
// source-level diagnostics, one of Lucid's headline usability features
// (paper section 4: "source-level error messages point out exactly where
// any such mistakes occur").
#pragma once

#include <cstdint>
#include <string>

namespace lucid {

/// A position in a source buffer. Lines and columns are 1-based; a value of
/// zero means "unknown" (e.g., compiler-synthesized nodes).
struct SrcLoc {
  std::uint32_t line = 0;
  std::uint32_t col = 0;

  [[nodiscard]] bool valid() const { return line != 0; }
  [[nodiscard]] std::string str() const {
    if (!valid()) return "<unknown>";
    return std::to_string(line) + ":" + std::to_string(col);
  }

  friend bool operator==(const SrcLoc&, const SrcLoc&) = default;
};

/// A half-open range of source text, [begin, end).
struct SrcRange {
  SrcLoc begin;
  SrcLoc end;

  [[nodiscard]] bool valid() const { return begin.valid(); }
  [[nodiscard]] std::string str() const { return begin.str(); }

  friend bool operator==(const SrcRange&, const SrcRange&) = default;
};

}  // namespace lucid
