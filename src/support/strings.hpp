// Small string utilities shared across the compiler and simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lucid {

/// 64-bit FNV-1a over arbitrary bytes. The hash behind every cache key and
/// structural fingerprint in the compiler (core/cache, frontend/fingerprint).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data);

/// Split `s` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Strip ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Join `parts` with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// True if `s` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);

/// Parses the whole of `s` as a positive (> 0) base-10 integer. nullopt on
/// trailing garbage, a non-positive value, or overflow — the strict flavour
/// CLI flags and grid specs need.
[[nodiscard]] std::optional<int> parse_positive_int(std::string_view s);

/// Count the lines of `text` that contain something other than whitespace or
/// a `//` line comment. This is the "lines of code" metric used to reproduce
/// the Figure 9/10 LoC comparisons.
[[nodiscard]] std::size_t count_loc(std::string_view text);

/// Indent every line of `text` by `n` spaces.
[[nodiscard]] std::string indent(std::string_view text, int n);

}  // namespace lucid
