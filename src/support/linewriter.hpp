// Shared line accumulator for code-generating backends: every emitted line
// is tagged with a backend-specific LoC category, and counting uses the same
// rule as lucid::count_loc (blank and //-comment lines don't count), so the
// Figure 9/10 LoC breakdowns stay comparable across emitters by
// construction.
#pragma once

#include <map>
#include <sstream>
#include <string>

#include "support/strings.hpp"

namespace lucid {

template <typename Category>
class CategoryLineWriter {
 public:
  /// Appends `text` (may span multiple lines) plus a trailing newline,
  /// charging its countable lines to `cat`.
  void line(Category cat, const std::string& text) {
    out_ << text << "\n";
    counts_[cat] += count_loc(text);
  }
  void blank() { out_ << "\n"; }

  [[nodiscard]] std::string text() const { return out_.str(); }
  [[nodiscard]] const std::map<Category, std::size_t>& counts() const {
    return counts_;
  }

 private:
  std::ostringstream out_;
  std::map<Category, std::size_t> counts_;
};

}  // namespace lucid
