#include "support/strings.hpp"

#include <cctype>
#include <sstream>

namespace lucid {

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::ostringstream os;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) os << sep;
    os << parts[i];
  }
  return os.str();
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::size_t count_loc(std::string_view text) {
  std::size_t count = 0;
  for (const auto& raw : split(text, '\n')) {
    const std::string_view line = trim(raw);
    if (line.empty()) continue;
    if (starts_with(line, "//")) continue;
    ++count;
  }
  return count;
}

std::optional<int> parse_positive_int(std::string_view s) {
  if (s.empty()) return std::nullopt;
  const std::string str(s);
  std::size_t used = 0;
  int value = 0;
  try {
    value = std::stoi(str, &used);
  } catch (...) {
    return std::nullopt;
  }
  if (used != str.size() || value <= 0) return std::nullopt;
  return value;
}

std::string indent(std::string_view text, int n) {
  const std::string pad(static_cast<std::size_t>(n), ' ');
  std::ostringstream os;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::string_view line =
        text.substr(start, nl == std::string_view::npos ? nl : nl - start);
    if (!line.empty()) os << pad << line;
    if (nl == std::string_view::npos) break;
    os << "\n";
    start = nl + 1;
  }
  return os.str();
}

}  // namespace lucid
