// Shared work-stealing parallel loop.
//
// One primitive serves every parallel site in the tree: the sweep engine's
// variant-layout and emission fan-outs, and the per-decl parallel Sema phase
// (sema/type_check). Header-only so low layers (sema) can use it without a
// dependency on core.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lucid {

/// Runs `fn(0..n-1)` across up to `workers` threads (inline when n or
/// workers is <= 1). Indices are handed out by an atomic counter, so call
/// costs may be arbitrarily uneven.
inline void parallel_for(std::size_t n, int workers,
                         const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t pool = std::min<std::size_t>(
      n, workers > 1 ? static_cast<std::size_t>(workers) : 1);
  if (pool <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(pool);
  for (std::size_t t = 0; t < pool; ++t) {
    threads.emplace_back([&]() {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

/// A persistent worker pool for repeated parallel loops. parallel_for spawns
/// and joins a thread per call, which is fine for one-shot fan-outs (sweeps,
/// parallel Sema) but too heavy for callers that issue many short rounds —
/// the native ReplicaFleet drives one `run` per run-slice, thousands per
/// soak. Threads are spawned once; each `run` is a wakeup + index handout.
///
/// The calling thread participates in the loop, so a pool built with
/// `workers <= 1` holds no threads and `run` degrades to an inline loop.
/// `run` is not reentrant: one loop at a time, from one driver thread.
class WorkerPool {
 public:
  explicit WorkerPool(int workers) {
    const int spares = std::max(1, workers) - 1;  // caller is worker 0
    threads_.reserve(static_cast<std::size_t>(spares));
    for (int i = 0; i < spares; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  [[nodiscard]] int workers() const {
    return static_cast<int>(threads_.size()) + 1;
  }

  /// Runs `fn(0..n-1)` across the pool and returns when every index has
  /// completed (and every worker has left the loop body, so callers may
  /// immediately reuse whatever state `fn` touched).
  void run(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (threads_.empty() || n == 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      fn_ = &fn;
      total_ = n;
      next_.store(0, std::memory_order_relaxed);
      remaining_ = n;
      ++generation_;
    }
    wake_.notify_all();
    drain();
    std::unique_lock<std::mutex> lk(mu_);
    done_.wait(lk, [this] { return remaining_ == 0 && active_ == 0; });
    // Clear under the lock so a late-waking worker sees an empty batch and
    // goes straight back to sleep instead of touching a dead fn.
    fn_ = nullptr;
    total_ = 0;
  }

 private:
  /// Claims indices until the current batch is exhausted. total_/fn_ are
  /// stable while any thread is inside: `run` only rewrites them when
  /// remaining_ == 0 && active_ == 0, both tracked under mu_.
  void drain() {
    const std::size_t total = total_;
    const std::function<void(std::size_t)>* fn = fn_;
    for (std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
         i < total; i = next_.fetch_add(1, std::memory_order_relaxed)) {
      (*fn)(i);
      std::lock_guard<std::mutex> lk(mu_);
      if (--remaining_ == 0) done_.notify_all();
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::unique_lock<std::mutex> lk(mu_);
      wake_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      if (total_ == 0) continue;  // batch already finished; stale wakeup
      ++active_;
      lk.unlock();
      drain();
      lk.lock();
      if (--active_ == 0) done_.notify_all();
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t total_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t remaining_ = 0;  // indices not yet completed
  std::size_t active_ = 0;     // pool threads inside drain()
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace lucid
