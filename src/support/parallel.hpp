// Shared work-stealing parallel loop.
//
// One primitive serves every parallel site in the tree: the sweep engine's
// variant-layout and emission fan-outs, and the per-decl parallel Sema phase
// (sema/type_check). Header-only so low layers (sema) can use it without a
// dependency on core.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace lucid {

/// Runs `fn(0..n-1)` across up to `workers` threads (inline when n or
/// workers is <= 1). Indices are handed out by an atomic counter, so call
/// costs may be arbitrarily uneven.
inline void parallel_for(std::size_t n, int workers,
                         const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t pool = std::min<std::size_t>(
      n, workers > 1 ? static_cast<std::size_t>(workers) : 1);
  if (pool <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(pool);
  for (std::size_t t = 0; t < pool; ++t) {
    threads.emplace_back([&]() {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace lucid
