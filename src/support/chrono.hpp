// Steady-clock timing helper shared by the driver, the sweep engine, and
// the benches (every wall-clock number in this repo comes from here).
#pragma once

#include <chrono>

namespace lucid {

using SteadyClock = std::chrono::steady_clock;

/// Milliseconds elapsed since `t0`.
[[nodiscard]] inline double ms_since(SteadyClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - t0)
      .count();
}

}  // namespace lucid
