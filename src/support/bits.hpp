// Width-masking for modeled register values. This is the single definition
// of Lucid's integer-truncation semantics: every engine (interpreter, native)
// funnels through it so `int<<w>>` arithmetic agrees bit-for-bit across
// backends. The native code generator (src/native/emit.cpp) emits an inline
// copy of exactly this function into generated modules.
#pragma once

#include <cstdint>

namespace lucid::support {

/// Truncates `v` to `width` bits. Widths outside (0, 64) pass the value
/// through unchanged — width-64 values keep their sign bit, and nonpositive
/// widths mean "untyped" internals that must not be clipped.
[[nodiscard]] constexpr std::int64_t mask_width(std::int64_t v, int width) {
  if (width >= 64 || width <= 0) return v;
  const std::uint64_t m = (std::uint64_t{1} << width) - 1;
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(v) & m);
}

}  // namespace lucid::support
