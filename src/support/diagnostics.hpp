// Diagnostic engine: collects errors/warnings/notes with source locations and
// renders them with the offending source line and a caret, clang-style.
//
// Lucid's pitch is that static checks fail *early* with *actionable*
// source-level messages (sections 4 and 5 of the paper), in contrast to P4
// backends that fail deep inside target-specific assemblers. Every analysis in
// this repository reports through this engine so tests can assert on both the
// presence and the location of diagnostics.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/source_location.hpp"

namespace lucid {

enum class Severity { Note, Warning, Error };

[[nodiscard]] std::string_view severity_name(Severity s);

/// One rendered diagnostic. `code` is a short stable identifier (e.g.
/// "memop-compound-condition") that tests match on.
struct Diagnostic {
  Severity severity = Severity::Error;
  std::string code;
  std::string message;
  SrcRange range;

  [[nodiscard]] std::string str() const;
};

/// Accumulates diagnostics for one compilation. Not thread-safe; each
/// compilation owns its engine.
class DiagnosticEngine {
 public:
  DiagnosticEngine() = default;
  explicit DiagnosticEngine(std::string source_text)
      : source_(std::move(source_text)) {}

  /// Provide/replace the source text used to render carets.
  void set_source(std::string source_text) { source_ = std::move(source_text); }

  void error(SrcRange range, std::string code, std::string message) {
    add(Severity::Error, range, std::move(code), std::move(message));
  }
  void warning(SrcRange range, std::string code, std::string message) {
    add(Severity::Warning, range, std::move(code), std::move(message));
  }
  void note(SrcRange range, std::string code, std::string message) {
    add(Severity::Note, range, std::move(code), std::move(message));
  }

  void add(Severity sev, SrcRange range, std::string code,
           std::string message);

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }

  /// True if any diagnostic carries the given stable code.
  [[nodiscard]] bool has_code(std::string_view code) const;

  /// Render every diagnostic, including the source line and caret when the
  /// source text is known.
  [[nodiscard]] std::string render() const;

  void clear() {
    diags_.clear();
    error_count_ = 0;
  }

 private:
  std::string source_;
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

}  // namespace lucid
