// The one JSON emission path in the tree: a minimal streaming writer (plus
// the escaping rules) shared by the bench result files (bench_common.hpp),
// `--time-passes=json` (core/driver.cpp), and the observability snapshots
// (`--metrics-out`, obs/metrics.cpp and obs/trace.cpp). Keeping a single
// escaper here is a contract: any consumer that hand-rolls strings into JSON
// instead of going through this header is a bug.
#pragma once

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>

namespace lucid::support {

/// Escapes a string for inclusion inside JSON double quotes: backslash,
/// quote, and the control characters JSON forbids raw (U+0000..U+001F).
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Minimal streaming JSON writer — just enough structure for the flat
/// objects/arrays the bench result files and observability snapshots use.
/// Commas between siblings are managed automatically; keys are only valid
/// inside an object.
class JsonWriter {
 public:
  JsonWriter() { os_.precision(12); }

  JsonWriter& obj_open(const std::string& key = {}) {
    sep(key);
    os_ << '{';
    return *this;
  }
  JsonWriter& obj_close() {
    os_ << '}';
    comma_ = true;
    return *this;
  }
  JsonWriter& arr_open(const std::string& key = {}) {
    sep(key);
    os_ << '[';
    return *this;
  }
  JsonWriter& arr_close() {
    os_ << ']';
    comma_ = true;
    return *this;
  }

  JsonWriter& field(const std::string& key, const std::string& v) {
    sep(key);
    os_ << '"' << json_escape(v) << '"';
    comma_ = true;
    return *this;
  }
  JsonWriter& field(const std::string& key, std::string_view v) {
    return field(key, std::string(v));
  }
  JsonWriter& field(const std::string& key, const char* v) {
    return field(key, std::string(v));
  }
  JsonWriter& field(const std::string& key, bool v) {
    sep(key);
    os_ << (v ? "true" : "false");
    comma_ = true;
    return *this;
  }
  template <typename T,
            std::enable_if_t<std::is_arithmetic_v<T>, int> = 0>
  JsonWriter& field(const std::string& key, T v) {
    sep(key);
    os_ << +v;
    comma_ = true;
    return *this;
  }
  /// Bare array element (no key).
  template <typename T,
            std::enable_if_t<std::is_arithmetic_v<T>, int> = 0>
  JsonWriter& item(T v) {
    sep({});
    os_ << +v;
    comma_ = true;
    return *this;
  }
  JsonWriter& item(const std::string& v) {
    sep({});
    os_ << '"' << json_escape(v) << '"';
    comma_ = true;
    return *this;
  }

  [[nodiscard]] std::string str() const { return os_.str(); }

  /// Writes the document (plus a trailing newline) and reports the path on
  /// stdout like the older benches do.
  void save(const std::string& path) const {
    std::ofstream out(path);
    out << os_.str() << "\n";
    std::printf("\nwrote %s\n", path.c_str());
  }

 private:
  void sep(const std::string& key) {
    if (comma_) os_ << ", ";
    comma_ = false;
    if (!key.empty()) os_ << '"' << json_escape(key) << "\": ";
  }

  std::ostringstream os_;
  bool comma_ = false;
};

}  // namespace lucid::support
