// The modeled `hash` builtin, shared by every engine that executes Lucid
// semantics in software: salted FNV-1a over the argument words. It stands in
// for the Tofino's CRC hash units; what matters for the reproduction is that
// it is deterministic, well-spread, and — crucially — *identical* across the
// interpreter and the native engine, so differential state tests can demand
// byte-for-byte equal register arrays.
//
// The eBPF/XDP backend intentionally diverges: it inlines CRC32 (see the
// comment at crc_helper() in src/ebpf/emit.cpp), because an XDP program
// should hash like the hardware it stands next to, not like the simulator.
// Cross-engine differential tests therefore cover interp vs native only.
#pragma once

#include <cstdint>
#include <vector>

namespace lucid::support {

/// One FNV-1a round over an argument word, least-significant byte first.
/// The native code generator emits an inline copy of this function
/// (lucid_fnv1a_word in generated modules); keep them in lockstep.
[[nodiscard]] constexpr std::uint32_t fnv1a_word(std::uint32_t h,
                                                 std::int64_t word) {
  auto w = static_cast<std::uint64_t>(word);
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<std::uint32_t>(w & 0xff);
    h *= 16777619u;
    w >>= 8;
  }
  return h;
}

/// Seed salting: FNV offset basis XOR the golden-ratio-scrambled seed.
[[nodiscard]] constexpr std::uint32_t fnv1a_init(std::int64_t seed) {
  return 2166136261u ^ (static_cast<std::uint32_t>(seed) * 0x9E3779B1u);
}

/// The full modeled hash: `hash(seed, args...)` in Lucid source.
[[nodiscard]] inline std::uint32_t model_hash32(
    std::int64_t seed, const std::vector<std::int64_t>& args) {
  std::uint32_t h = fnv1a_init(seed);
  for (const std::int64_t v : args) h = fnv1a_word(h, v);
  return h;
}

}  // namespace lucid::support
