#include "support/diagnostics.hpp"

#include <sstream>

namespace lucid {

std::string_view severity_name(Severity s) {
  switch (s) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::ostringstream os;
  os << range.begin.str() << ": " << severity_name(severity) << " [" << code
     << "]: " << message;
  return os.str();
}

void DiagnosticEngine::add(Severity sev, SrcRange range, std::string code,
                           std::string message) {
  if (sev == Severity::Error) ++error_count_;
  diags_.push_back(
      Diagnostic{sev, std::move(code), std::move(message), range});
}

bool DiagnosticEngine::has_code(std::string_view code) const {
  for (const auto& d : diags_) {
    if (d.code == code) return true;
  }
  return false;
}

namespace {

// Returns line `n` (1-based) of `text`, without the trailing newline.
std::string_view source_line(std::string_view text, std::uint32_t n) {
  std::uint32_t line = 1;
  std::size_t start = 0;
  while (line < n) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) return {};
    start = nl + 1;
    ++line;
  }
  const std::size_t end = text.find('\n', start);
  return text.substr(start,
                     end == std::string_view::npos ? end : end - start);
}

}  // namespace

std::string DiagnosticEngine::render() const {
  std::ostringstream os;
  for (const auto& d : diags_) {
    os << d.str() << "\n";
    if (!source_.empty() && d.range.valid()) {
      const std::string_view line = source_line(source_, d.range.begin.line);
      if (!line.empty()) {
        os << "    " << line << "\n";
        os << "    ";
        for (std::uint32_t i = 1; i < d.range.begin.col; ++i) {
          os << (i <= line.size() && line[i - 1] == '\t' ? '\t' : ' ');
        }
        os << "^\n";
      }
    }
  }
  return os.str();
}

}  // namespace lucid
