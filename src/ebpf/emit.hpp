// eBPF/XDP backend: renders a compiled Lucid program as a self-contained
// XDP C program — the same atomic-table IR the P4 backend consumes, lowered
// onto the kernel data plane instead of a Tofino pipeline:
//
//   - register arrays become BPF_MAP_TYPE_ARRAY maps (one cell per index,
//     preallocated, shared with userspace control);
//   - the event wire format mirrors the P4 backend's headers (ethernet +
//     Lucid event metadata + one packed param struct per event), parsed with
//     explicit bounds checks the verifier can discharge;
//   - each pipeline stage becomes a straight-line handler section: every
//     atomic table is an `if (ev_id == ... && guards)` block, with memops
//     emitted as bounded single-read/single-write map updates;
//   - generate/recirculation becomes a bpf_tail_call through a
//     BPF_MAP_TYPE_PROG_ARRAY: immediate events re-enter the pipeline with
//     exactly one tail call per hop, delayed events are handed to the
//     userspace delay queue, which re-injects them through the emitted
//     recirculation program (XDP cannot clone packets, so the serializer
//     re-injects the first generated event in site order);
//   - hash builtins map to an inline (unrolled) CRC32.
//
// "Self-contained" means the emitted .c defines the minimal BPF/XDP ABI it
// needs (types, helper stubs, map/section macros) instead of including
// kernel headers, so the golden files pin the entire artifact and the
// program compiles with any `clang -target bpf` without a sysroot.
//
// Emission refuses — with proper diagnostics, via ebpf::check — to produce
// programs the kernel verifier would reject (see ebpf/check.hpp).
//
// Every emitted line is tagged with a category so LoC breakdowns mirror the
// P4 backend's Figure 9/10 metrics.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "core/driver.hpp"
#include "ebpf/check.hpp"

namespace lucid::ebpf {

enum class LineCategory {
  Header,   // wire-format structs (ethernet, event metadata, per-event)
  Map,      // BPF map definitions (register arrays, prog array)
  Helper,   // inline helpers (CRC32, byte order)
  Parser,   // bounds-checked packet parsing + event dispatch
  Handler,  // per-stage straight-line table sections
  Control,  // serializer, recirculation program, XDP plumbing
  Other,    // ABI preamble, ctx struct, license
};

[[nodiscard]] std::string_view category_name(LineCategory c);

struct XdpProgram {
  std::string text;
  std::map<LineCategory, std::size_t> loc_by_category;

  [[nodiscard]] std::size_t total_loc() const {
    std::size_t n = 0;
    for (const auto& [c, v] : loc_by_category) n += v;
    return n;
  }
};

/// Emits from a driver Compilation (Layout stage must have succeeded).
/// Pure function of the compilation: byte-identical across cold, cloned,
/// and cached compiles. Does NOT run the verifier-friendliness checker —
/// the backend adapter does that first and refuses on failure.
[[nodiscard]] XdpProgram emit(const Compilation& comp,
                              std::string_view program_name);

/// Registers the "ebpf" backend with `registry`; false if already present.
/// `limits` is the verifier model emission is checked against.
bool register_backend(BackendRegistry& registry,
                      EbpfLimits limits = EbpfLimits::kernel_default());

}  // namespace lucid::ebpf
