#include "ebpf/check.hpp"

#include <algorithm>
#include <functional>
#include <set>
#include <vector>

namespace lucid::ebpf {

namespace {

/// Cost of evaluating a table's guards: each test is a load + compare-and-
/// branch, each conjunction adds a join branch.
int guard_cost(const ir::AtomicTable& t) {
  int cost = 0;
  for (const ir::Conj& conj : t.guards) {
    cost += 1 + 2 * static_cast<int>(conj.size());
  }
  return cost;
}

}  // namespace

int table_insn_cost(const ir::AtomicTable& table) {
  using ir::TableKind;
  int cost = guard_cost(table) + 1;  // +1 for the ev_id test
  switch (table.kind) {
    case TableKind::Op:
      // load operands, ALU op, store (plus a mask for sub-word widths).
      cost += 4;
      break;
    case TableKind::Mem:
      // key setup + bounds mask, bpf_map_lookup_elem, NULL check, single
      // read, memop arithmetic (conditional memops branch), single write.
      cost += 12;
      break;
    case TableKind::Hash: {
      // The inline CRC32 loop is unrolled 32x per input word (shift, mask,
      // xor per iteration) — by far the emitter's densest construct. 64-bit
      // args fold as two words.
      int words = 0;
      for (const ir::Operand& a : table.hash.args) {
        words += a.width > 32 ? 2 : 1;
      }
      cost += 100 * std::max(words, 1);
      break;
    }
    case TableKind::Generate:
      // Staging-field writes for the scheduler metadata plus one per arg,
      // and the end-of-pipeline serialization + bpf_tail_call amortized in.
      cost += 8 + static_cast<int>(table.gen.args.size());
      break;
    case TableKind::Branch:
      // Dissolved by branch inlining; if one survives (unoptimized layout)
      // it is a compare-and-branch.
      cost += 2;
      break;
  }
  return cost;
}

CheckReport check(const ir::ProgramIR& ir, const opt::Pipeline& pipeline,
                  const EbpfLimits& limits, DiagnosticEngine& diags) {
  CheckReport report;

  // ---- wire-format representability ---------------------------------------
  // The emitter's packed event headers use exact-size C scalars, so only
  // whole-scalar widths keep the wire format byte-compatible with the P4
  // backend's bit<w> fields. A bit<48> param, say, would silently occupy 8
  // bytes here but 6 on the Tofino wire — reject instead of misparsing.
  for (const ir::EventInfo& ev : ir.events) {
    for (const auto& [pname, pwidth] : ev.params) {
      if (pwidth == 8 || pwidth == 16 || pwidth == 32 || pwidth == 64) {
        continue;
      }
      report.ok = false;
      diags.error({}, "ebpf-param-width",
                  "event '" + ev.name + "' parameter '" + pname +
                      "' has width " + std::to_string(pwidth) +
                      "; the XDP wire format only supports 8/16/32/64-bit "
                      "event parameters");
    }
  }
  // Cells and locals of width 33..63 cannot wrap at 2^w in C (values <= 32
  // bits are masked, 64-bit values wrap naturally) — reject rather than
  // silently diverge from the interpreter's and Tofino's bit<w> arithmetic.
  for (const ir::ArrayInfo& arr : ir.arrays) {
    if (arr.width > 32 && arr.width < 64) {
      report.ok = false;
      diags.error({}, "ebpf-cell-width",
                  "array '" + arr.name + "' has cell width " +
                      std::to_string(arr.width) +
                      "; XDP register cells must be <= 32 or exactly 64 "
                      "bits to wrap like the other backends");
    }
  }

  // ---- instruction estimates ----------------------------------------------
  // The emitted XDP program is one function: parser/dispatcher prologue plus
  // every handler's straight-line section (the verifier walks all of them).
  constexpr int kProloguePerProgram = 24;  // bounds checks + ethertype test
  constexpr int kProloguePerHandler = 8;   // dispatch case + param copies
  for (const ir::EventInfo& ev : ir.events) {
    if (!ev.has_handler) continue;
    report.handler_insns[ev.name] =
        kProloguePerHandler + 3 * static_cast<int>(ev.params.size());
  }
  for (const opt::StageLayout& stage : pipeline.stages) {
    for (const opt::MergedTable& mt : stage.tables) {
      for (const ir::AtomicTable* t : mt.members) {
        report.handler_insns[t->handler] += table_insn_cost(*t);
      }
    }
  }
  report.program_insns = kProloguePerProgram;
  for (const auto& [handler, insns] : report.handler_insns) {
    report.program_insns += insns;
    if (insns > limits.insns_per_handler) {
      report.ok = false;
      diags.error({}, "ebpf-handler-insns",
                  "handler '" + handler + "' is estimated at " +
                      std::to_string(insns) +
                      " BPF instructions, over the per-handler limit of " +
                      std::to_string(limits.insns_per_handler));
    }
  }
  if (report.program_insns > limits.insns_per_program) {
    report.ok = false;
    diags.error({}, "ebpf-program-insns",
                "program is estimated at " +
                    std::to_string(report.program_insns) +
                    " BPF instructions, over the program limit of " +
                    std::to_string(limits.insns_per_program));
  }

  // ---- maps ---------------------------------------------------------------
  // One BPF_MAP_TYPE_ARRAY per register array, plus the recirculation
  // BPF_MAP_TYPE_PROG_ARRAY. Array maps preallocate size * value bytes.
  report.map_count = static_cast<int>(ir.arrays.size()) + 1;
  for (const ir::ArrayInfo& arr : ir.arrays) {
    const long long value_bytes = arr.width > 32 ? 8 : 4;
    report.map_bytes += value_bytes * std::max<std::int64_t>(arr.size, 0);
  }
  if (report.map_count > limits.max_maps) {
    report.ok = false;
    diags.error({}, "ebpf-map-count",
                "program needs " + std::to_string(report.map_count) +
                    " BPF maps (" + std::to_string(ir.arrays.size()) +
                    " register arrays + the recirculation prog array), over "
                    "the limit of " +
                    std::to_string(limits.max_maps));
  }
  if (report.map_bytes > limits.max_map_bytes) {
    report.ok = false;
    diags.error({}, "ebpf-map-bytes",
                "register arrays preallocate " +
                    std::to_string(report.map_bytes) +
                    " bytes of map memory, over the limit of " +
                    std::to_string(limits.max_map_bytes));
  }

  // ---- tail-call depth ----------------------------------------------------
  // generate lowers to exactly one bpf_tail_call per hop (the serializer
  // re-enters the main program directly; delayed events leave the kernel),
  // so the chain depth is the longest path in the handler -> generated-event
  // graph. A cycle means the program re-injects (fresh budget per packet),
  // which is legal but worth a warning; acyclic chains must fit the kernel's
  // cap.
  std::map<std::string, std::set<std::string>> gen_edges;
  std::map<std::string, int> gen_sites_per_handler;
  for (const opt::StageLayout& stage : pipeline.stages) {
    for (const opt::MergedTable& mt : stage.tables) {
      for (const ir::AtomicTable* member : mt.members) {
        const ir::AtomicTable& t = *member;
        if (t.kind == ir::TableKind::Generate) {
          gen_edges[t.handler].insert(t.gen.event);
          ++gen_sites_per_handler[t.handler];
        }
        if (t.kind == ir::TableKind::Op && t.op.width > 32 &&
            t.op.width < 64) {
          report.ok = false;
          diags.error({}, "ebpf-cell-width",
                      "handler '" + t.handler + "' computes a " +
                          std::to_string(t.op.width) +
                          "-bit value ('" + t.op.dst +
                          "'); XDP locals must be <= 32 or exactly 64 bits "
                          "to wrap like the other backends");
        }
      }
    }
  }
  // XDP cannot clone packets: when several generate sites of one handler
  // fire for the same packet, only the first is re-injected. Warn so the
  // at-most-one-event semantics is a documented choice, not a surprise.
  for (const auto& [handler, sites] : gen_sites_per_handler) {
    if (sites > 1) {
      diags.warning({}, "ebpf-multi-generate",
                    "handler '" + handler + "' has " +
                        std::to_string(sites) +
                        " generate sites; XDP cannot clone packets, so at "
                        "most one generated event is re-injected per packet "
                        "(first fired site wins)");
    }
  }
  // Longest-path DFS with cycle detection, deterministic over map order.
  std::map<std::string, int> depth_memo;
  std::set<std::string> on_stack;
  const std::function<int(const std::string&)> depth =
      [&](const std::string& handler) -> int {
    const auto memo = depth_memo.find(handler);
    if (memo != depth_memo.end()) return memo->second;
    if (!on_stack.insert(handler).second) {
      report.recirc_cycle = true;
      return 0;  // cycle edge: depth charged to the re-injection, not here
    }
    int best = 0;
    const auto edges = gen_edges.find(handler);
    if (edges != gen_edges.end()) {
      for (const std::string& next : edges->second) {
        best = std::max(best, 1 + depth(next));
      }
    }
    on_stack.erase(handler);
    depth_memo[handler] = best;
    return best;
  };
  for (const auto& [handler, targets] : gen_edges) {
    (void)targets;
    report.tail_call_depth = std::max(report.tail_call_depth, depth(handler));
  }
  if (report.recirc_cycle) {
    diags.warning({}, "ebpf-recirc-cycle",
                  "recirculation graph is cyclic; every re-injected event "
                  "packet gets a fresh tail-call budget, but sustained "
                  "recirculation consumes NIC bandwidth");
  }
  if (report.tail_call_depth > limits.max_tail_call_depth) {
    report.ok = false;
    diags.error({}, "ebpf-tail-depth",
                "generate chain reaches depth " +
                    std::to_string(report.tail_call_depth) +
                    ", over the kernel tail-call limit of " +
                    std::to_string(limits.max_tail_call_depth));
  }

  return report;
}

}  // namespace lucid::ebpf
