#include "ebpf/emit.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "support/linewriter.hpp"
#include "support/strings.hpp"

namespace lucid::ebpf {

using ir::AtomicTable;
using ir::MemKind;
using ir::Operand;
using ir::TableKind;

std::string_view category_name(LineCategory c) {
  switch (c) {
    case LineCategory::Header: return "headers";
    case LineCategory::Map: return "maps";
    case LineCategory::Helper: return "helpers";
    case LineCategory::Parser: return "parsers";
    case LineCategory::Handler: return "handlers";
    case LineCategory::Control: return "control";
    case LineCategory::Other: return "other";
  }
  return "?";
}

namespace {

using LineWriter = CategoryLineWriter<LineCategory>;

/// C scalar type for a ctx (metadata) field: word-sized for ALU simplicity.
std::string ctx_ty(int width) { return width > 32 ? "__u64" : "__u32"; }

/// C scalar type for a packed wire-format field: exact-size.
std::string wire_ty(int width) {
  if (width <= 8) return "__u8";
  if (width <= 16) return "__u16";
  if (width <= 32) return "__u32";
  return "__u64";
}

std::string sanitize(std::string name) {
  for (auto& c : name) {
    if (c == '.') c = '_';
  }
  return name;
}

std::string ctx_ref(const std::string& var) { return "m." + sanitize(var); }

/// Wire -> host conversion of a packed field expression, by field width.
std::string ntoh(const std::string& expr, int width) {
  if (width <= 8) return expr;
  if (width <= 16) return "lucid_ntohs(" + expr + ")";
  if (width <= 32) return "lucid_ntohl(" + expr + ")";
  return "lucid_ntohll(" + expr + ")";
}

/// Host -> wire conversion, by field width.
std::string hton(const std::string& expr, int width) {
  if (width <= 8) return expr;
  if (width <= 16) return "lucid_htons(" + expr + ")";
  if (width <= 32) return "lucid_htonl(" + expr + ")";
  return "lucid_htonll(" + expr + ")";
}

std::string operand_str(const Operand& o) {
  switch (o.kind) {
    case Operand::Kind::None: return "0";
    case Operand::Kind::Var: return ctx_ref(o.var);
    case Operand::Kind::Const:
      return std::to_string(o.value);
  }
  return "0";
}

std::string c_binop(frontend::BinOp op) {
  using frontend::BinOp;
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "%";
    case BinOp::BitAnd: return "&";
    case BinOp::BitOr: return "|";
    case BinOp::BitXor: return "^";
    case BinOp::Shl: return "<<";
    case BinOp::Shr: return ">>";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::Lt: return "<";
    case BinOp::Gt: return ">";
    case BinOp::Le: return "<=";
    case BinOp::Ge: return ">=";
    case BinOp::LAnd: return "&&";
    case BinOp::LOr: return "||";
  }
  return "+";
}

std::string cmp_str(ir::CmpOp op) {
  switch (op) {
    case ir::CmpOp::Eq: return "==";
    case ir::CmpOp::Ne: return "!=";
    case ir::CmpOp::Lt: return "<";
    case ir::CmpOp::Gt: return ">";
    case ir::CmpOp::Le: return "<=";
    case ir::CmpOp::Ge: return ">=";
  }
  return "==";
}

/// Memop operand inside a map-update block: the canonical "cell" parameter
/// resolves to the local single-read value, anything else to the call-site
/// argument.
std::string memop_operand(const Operand& o, const Operand& call_arg,
                          const std::string& cell_name) {
  if (o.is_const()) return std::to_string(o.value);
  if (o.var == "cell") return cell_name;
  return operand_str(call_arg);
}

std::string memop_expr(const Operand& lhs,
                       const std::optional<frontend::BinOp>& op,
                       const Operand& rhs, const Operand& call_arg,
                       const std::string& cell_name) {
  std::string s = memop_operand(lhs, call_arg, cell_name);
  if (op) {
    s += " " + c_binop(*op) + " " + memop_operand(rhs, call_arg, cell_name);
  }
  return s;
}

class Emitter {
 public:
  Emitter(const ir::ProgramIR& ir, const opt::Pipeline& pipeline,
          std::string_view name)
      : ir_(ir), pipeline_(pipeline), name_(name) {}

  XdpProgram run() {
    for (const auto& [site, table] : generate_sites()) {
      gen_site_index_[table] = site;
    }
    collect_vars();
    preamble();
    maps();
    headers();
    ctx_struct();
    crc_helper();
    recirc_program();
    main_program();
    license();
    XdpProgram p;
    p.text = w_.text();
    p.loc_by_category = w_.counts();
    return p;
  }

 private:
  // ---- variable collection -------------------------------------------------

  void note_var(const Operand& o) {
    if (o.is_var()) {
      auto& w = vars_[o.var];
      w = std::max(w, o.width);
    }
  }

  void collect_vars() {
    for (const auto& stage : pipeline_.stages) {
      for (const auto& mt : stage.tables) {
        for (const auto* member : mt.members) {
          const AtomicTable& t = *member;
          switch (t.kind) {
            case TableKind::Op: {
              auto& w = vars_[t.op.dst];
              w = std::max(w, t.op.width);
              note_var(t.op.lhs);
              note_var(t.op.rhs);
              break;
            }
            case TableKind::Mem:
              if (!t.mem.dst.empty()) {
                auto& w = vars_[t.mem.dst];
                w = std::max(w, t.mem.cell_width);
              }
              note_var(t.mem.index);
              note_var(t.mem.get_arg);
              note_var(t.mem.set_arg);
              note_var(t.mem.set_value);
              break;
            case TableKind::Hash: {
              auto& w = vars_[t.hash.dst];
              w = std::max(w, 32);
              for (const auto& a : t.hash.args) note_var(a);
              break;
            }
            case TableKind::Generate:
              for (const auto& a : t.gen.args) note_var(a);
              note_var(t.gen.delay);
              note_var(t.gen.location);
              break;
            case TableKind::Branch:
              break;
          }
          for (const auto& conj : t.guards) {
            for (const auto& test : conj) {
              auto& w = vars_[test.var];
              w = std::max(w, 32);
            }
          }
        }
      }
    }
    // Handler parameters arrive in event headers and are copied into the
    // ctx struct by the dispatcher.
    for (const auto& ev : ir_.events) {
      for (const auto& [pname, pwidth] : ev.params) {
        auto& w = vars_[pname];
        w = std::max(w, pwidth);
      }
    }
    vars_["__self"] = 32;
    vars_["__ts"] = 32;
  }

  std::vector<std::pair<int, const AtomicTable*>> generate_sites() const {
    std::vector<std::pair<int, const AtomicTable*>> sites;
    int n = 0;
    for (const auto& stage : pipeline_.stages) {
      for (const auto& mt : stage.tables) {
        for (const auto* t : mt.members) {
          if (t->kind == TableKind::Generate) {
            sites.emplace_back(n++, t);
          }
        }
      }
    }
    return sites;
  }

  int gen_site_of(const AtomicTable* t) const {
    const auto it = gen_site_index_.find(t);
    return it != gen_site_index_.end() ? it->second : -1;
  }

  int event_id_of(const std::string& handler) const {
    for (const auto& ev : ir_.events) {
      if (ev.name == handler) return ev.event_id;
    }
    return -1;
  }

  // ---- sections -----------------------------------------------------------

  void preamble() {
    w_.line(LineCategory::Other,
            "// " + std::string(name_) +
                " — generated by the Lucid compiler (eBPF/XDP backend)");
    w_.line(LineCategory::Other,
            "// Self-contained: compile with `clang -O2 -target bpf -c`; no "
            "kernel headers needed.");
    w_.blank();
    w_.line(LineCategory::Other, "typedef unsigned char __u8;");
    w_.line(LineCategory::Other, "typedef unsigned short __u16;");
    w_.line(LineCategory::Other, "typedef unsigned int __u32;");
    w_.line(LineCategory::Other, "typedef unsigned long long __u64;");
    w_.blank();
    w_.line(LineCategory::Other,
            "#define SEC(name) __attribute__((section(name), used))");
    w_.line(LineCategory::Other,
            "#define __always_inline inline __attribute__((always_inline))");
    w_.line(LineCategory::Other,
            "#define LUCID_MASK(w) ((__u32)0xffffffffu >> (32 - (w)))");
    w_.blank();
    w_.line(LineCategory::Other, "// Minimal XDP ABI (linux/bpf.h subset).");
    w_.line(LineCategory::Other, "struct xdp_md {");
    w_.line(LineCategory::Other, "    __u32 data;");
    w_.line(LineCategory::Other, "    __u32 data_end;");
    w_.line(LineCategory::Other, "    __u32 data_meta;");
    w_.line(LineCategory::Other, "    __u32 ingress_ifindex;");
    w_.line(LineCategory::Other, "    __u32 rx_queue_index;");
    w_.line(LineCategory::Other, "    __u32 egress_ifindex;");
    w_.line(LineCategory::Other, "};");
    w_.blank();
    w_.line(LineCategory::Other, "enum xdp_action {");
    w_.line(LineCategory::Other, "    XDP_ABORTED = 0,");
    w_.line(LineCategory::Other, "    XDP_DROP = 1,");
    w_.line(LineCategory::Other, "    XDP_PASS = 2,");
    w_.line(LineCategory::Other, "    XDP_TX = 3,");
    w_.line(LineCategory::Other, "    XDP_REDIRECT = 4,");
    w_.line(LineCategory::Other, "};");
    w_.blank();
    w_.line(LineCategory::Other, "#define BPF_MAP_TYPE_ARRAY 2");
    w_.line(LineCategory::Other, "#define BPF_MAP_TYPE_PROG_ARRAY 3");
    w_.line(LineCategory::Other, "struct bpf_map_def {");
    w_.line(LineCategory::Other, "    __u32 type;");
    w_.line(LineCategory::Other, "    __u32 key_size;");
    w_.line(LineCategory::Other, "    __u32 value_size;");
    w_.line(LineCategory::Other, "    __u32 max_entries;");
    w_.line(LineCategory::Other, "    __u32 map_flags;");
    w_.line(LineCategory::Other, "};");
    w_.blank();
    w_.line(LineCategory::Other,
            "// BPF helper stubs, resolved by the loader to helper ids.");
    w_.line(LineCategory::Other,
            "static void *(*bpf_map_lookup_elem)(void *map, const void *key) "
            "= (void *)1;");
    w_.line(LineCategory::Other,
            "static __u64 (*bpf_ktime_get_ns)(void) = (void *)5;");
    w_.line(LineCategory::Other,
            "static long (*bpf_tail_call)(void *ctx, void *map, __u32 index) "
            "= (void *)12;");
    w_.line(LineCategory::Other,
            "static long (*bpf_xdp_adjust_tail)(void *ctx, long delta) = "
            "(void *)65;");
    w_.blank();
    w_.line(LineCategory::Other, "#define ETHERTYPE_LUCID 0x0666");
    w_.line(LineCategory::Other,
            "// Multi-byte wire fields are network byte order, matching the "
            "P4 target.");
    w_.line(LineCategory::Other,
            "#if __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__");
    w_.line(LineCategory::Other,
            "#define lucid_htons(x) __builtin_bswap16(x)");
    w_.line(LineCategory::Other,
            "#define lucid_htonl(x) __builtin_bswap32(x)");
    w_.line(LineCategory::Other,
            "#define lucid_htonll(x) __builtin_bswap64(x)");
    w_.line(LineCategory::Other, "#else");
    w_.line(LineCategory::Other, "#define lucid_htons(x) (x)");
    w_.line(LineCategory::Other, "#define lucid_htonl(x) (x)");
    w_.line(LineCategory::Other, "#define lucid_htonll(x) (x)");
    w_.line(LineCategory::Other, "#endif");
    w_.line(LineCategory::Other, "#define lucid_ntohs(x) lucid_htons(x)");
    w_.line(LineCategory::Other, "#define lucid_ntohl(x) lucid_htonl(x)");
    w_.line(LineCategory::Other, "#define lucid_ntohll(x) lucid_htonll(x)");
    w_.blank();
    w_.line(LineCategory::Other,
            "// This switch's identity; patched per deployment by the "
            "loader.");
    w_.line(LineCategory::Other, "#define LUCID_SELF_ID 1");
    w_.blank();
  }

  void maps() {
    w_.line(LineCategory::Map,
            "// Register arrays: one preallocated BPF array map per Lucid "
            "Array<<w>>(n).");
    for (const auto& arr : ir_.arrays) {
      const int value_size = arr.width > 32 ? 8 : 4;
      w_.line(LineCategory::Map,
              "struct bpf_map_def SEC(\"maps\") reg_" + arr.name + " = {");
      w_.line(LineCategory::Map, "    .type = BPF_MAP_TYPE_ARRAY,");
      w_.line(LineCategory::Map, "    .key_size = 4,");
      w_.line(LineCategory::Map,
              "    .value_size = " + std::to_string(value_size) + ",");
      w_.line(LineCategory::Map,
              "    .max_entries = " + std::to_string(arr.size) + ",");
      w_.line(LineCategory::Map, "};");
    }
    w_.blank();
    w_.line(LineCategory::Map,
            "// Recirculation prog array: generate re-enters the pipeline "
            "via bpf_tail_call.");
    w_.line(LineCategory::Map, "enum {");
    w_.line(LineCategory::Map, "    LUCID_PROG_MAIN = 0,");
    w_.line(LineCategory::Map, "    LUCID_PROG_RECIRC = 1,");
    w_.line(LineCategory::Map, "};");
    w_.line(LineCategory::Map,
            "struct bpf_map_def SEC(\"maps\") lucid_progs = {");
    w_.line(LineCategory::Map, "    .type = BPF_MAP_TYPE_PROG_ARRAY,");
    w_.line(LineCategory::Map, "    .key_size = 4,");
    w_.line(LineCategory::Map, "    .value_size = 4,");
    w_.line(LineCategory::Map, "    .max_entries = 2,");
    w_.line(LineCategory::Map, "};");
    w_.blank();
  }

  void headers() {
    w_.line(LineCategory::Header,
            "// Event wire format — mirrors the P4 backend's headers.");
    w_.line(LineCategory::Header, "struct ethernet_h {");
    w_.line(LineCategory::Header, "    __u8 dst_addr[6];");
    w_.line(LineCategory::Header, "    __u8 src_addr[6];");
    w_.line(LineCategory::Header, "    __u16 ether_type;");
    w_.line(LineCategory::Header, "} __attribute__((packed));");
    w_.blank();
    w_.line(LineCategory::Header, "struct lucid_event_h {");
    w_.line(LineCategory::Header, "    __u16 event_id;");
    w_.line(LineCategory::Header, "    __u8 mcast_flag;");
    w_.line(LineCategory::Header, "    __u32 delay_ns;");
    w_.line(LineCategory::Header, "    __u32 location;");
    w_.line(LineCategory::Header, "} __attribute__((packed));");
    w_.blank();
    for (const auto& ev : ir_.events) {
      w_.line(LineCategory::Header, "struct ev_" + ev.name + "_h {");
      for (const auto& [pname, pwidth] : ev.params) {
        w_.line(LineCategory::Header,
                "    " + wire_ty(pwidth) + " " + pname + ";");
      }
      if (ev.params.empty()) {
        w_.line(LineCategory::Header, "    __u8 pad;");
      }
      w_.line(LineCategory::Header, "} __attribute__((packed));");
      w_.blank();
    }
  }

  void ctx_struct() {
    w_.line(LineCategory::Other,
            "// Handler locals + event params (the P4 backend's ig_md).");
    w_.line(LineCategory::Other, "struct lucid_ctx {");
    for (const auto& [name, width] : vars_) {
      w_.line(LineCategory::Other,
              "    " + ctx_ty(width) + " " + sanitize(name) + ";");
    }
    w_.line(LineCategory::Other, "    __u32 ev_id;");
    // Per-generate-site staging: XDP cannot set headers valid mid-pipeline
    // the way Tofino does, so generated events stage their fields here and
    // the end-of-pipeline serializer rewrites the packet.
    for (const auto& [site, t] : generate_sites()) {
      const std::string p = "gen" + std::to_string(site) + "_";
      w_.line(LineCategory::Other, "    __u32 " + p + "fired;");
      w_.line(LineCategory::Other, "    __u32 " + p + "delay;");
      w_.line(LineCategory::Other, "    __u32 " + p + "loc;");
      const auto& ev =
          ir_.events[static_cast<std::size_t>(t->gen.event_id)];
      for (std::size_t i = 0;
           i < t->gen.args.size() && i < ev.params.size(); ++i) {
        w_.line(LineCategory::Other,
                "    " + ctx_ty(ev.params[i].second) + " " + p + "a" +
                    std::to_string(i) + ";");
      }
    }
    w_.line(LineCategory::Other, "};");
    w_.blank();
  }

  // NOTE: this is a deliberate divergence from the modeled hash. The
  // interpreter and the native engine share salted FNV-1a
  // (support/hash.hpp), which keeps their register state byte-identical
  // under differential tests. An XDP program, however, should hash the way
  // the adjacent hardware does — CRC32 is what NIC/switch hash units
  // implement — so this emitter inlines CRC32 and is excluded from
  // cross-engine state-equality tests.
  void crc_helper() {
    w_.line(LineCategory::Helper,
            "// Hash builtin: inline CRC32 (one unrolled round per input "
            "word).");
    w_.line(LineCategory::Helper,
            "static __always_inline __u32 lucid_crc32_word(__u32 crc, __u32 "
            "word)");
    w_.line(LineCategory::Helper, "{");
    w_.line(LineCategory::Helper, "    crc ^= word;");
    w_.line(LineCategory::Helper, "#pragma unroll");
    w_.line(LineCategory::Helper, "    for (int i = 0; i < 32; i++)");
    w_.line(LineCategory::Helper,
            "        crc = (crc >> 1) ^ (0xedb88320u & (0u - (crc & 1u)));");
    w_.line(LineCategory::Helper, "    return crc;");
    w_.line(LineCategory::Helper, "}");
    w_.blank();
  }

  void recirc_program() {
    w_.line(LineCategory::Control,
            "// Recirculation entry: the userspace delay queue re-injects "
            "matured");
    w_.line(LineCategory::Control,
            "// event packets here (fresh tail-call budget). Events still "
            "carrying a");
    w_.line(LineCategory::Control,
            "// delay go back up (the kernel has no pausable queue); "
            "immediate ones");
    w_.line(LineCategory::Control, "// re-enter the pipeline.");
    w_.line(LineCategory::Control, "SEC(\"xdp\")");
    w_.line(LineCategory::Control,
            "int lucid_xdp_recirc(struct xdp_md *ctx)");
    w_.line(LineCategory::Control, "{");
    w_.line(LineCategory::Control,
            "    void *data = (void *)(long)ctx->data;");
    w_.line(LineCategory::Control,
            "    void *data_end = (void *)(long)ctx->data_end;");
    w_.line(LineCategory::Control,
            "    struct ethernet_h *eth = data;");
    w_.line(LineCategory::Control,
            "    if ((void *)(eth + 1) > data_end)");
    w_.line(LineCategory::Control, "        return XDP_ABORTED;");
    w_.line(LineCategory::Control,
            "    struct lucid_event_h *ev = (void *)(eth + 1);");
    w_.line(LineCategory::Control,
            "    if ((void *)(ev + 1) > data_end)");
    w_.line(LineCategory::Control, "        return XDP_ABORTED;");
    w_.line(LineCategory::Control, "    if (ev->delay_ns > 0)");
    w_.line(LineCategory::Control,
            "        return XDP_PASS; // userspace delay queue");
    w_.line(LineCategory::Control,
            "    bpf_tail_call(ctx, &lucid_progs, LUCID_PROG_MAIN);");
    w_.line(LineCategory::Control,
            "    return XDP_ABORTED; // prog array not populated");
    w_.line(LineCategory::Control, "}");
    w_.blank();
  }

  // ---- table lowering ------------------------------------------------------

  /// The `if (...)` condition under which one atomic table executes: the
  /// owning handler's event id AND the inlined guard disjunction.
  std::string table_condition(const AtomicTable& t) const {
    std::string cond = "m.ev_id == " + std::to_string(event_id_of(t.handler));
    if (t.guards.empty()) return cond;
    std::string dis;
    for (std::size_t c = 0; c < t.guards.size(); ++c) {
      if (c > 0) dis += " || ";
      std::string conj;
      for (std::size_t i = 0; i < t.guards[c].size(); ++i) {
        if (i > 0) conj += " && ";
        const ir::MatchTest& test = t.guards[c][i];
        conj += ctx_ref(test.var) + (test.eq ? " == " : " != ") +
                std::to_string(test.value);
      }
      if (t.guards[c].empty()) conj = "1";
      dis += t.guards.size() > 1 ? "(" + conj + ")" : conj;
    }
    return cond + " && (" + dis + ")";
  }

  void emit_memop_assign(const std::string& indent, const std::string& dst,
                         const ir::MemopInfo* mo, const Operand& call_arg,
                         const std::string& cell_name) {
    if (mo == nullptr) return;
    if (mo->has_condition) {
      w_.line(LineCategory::Handler,
              indent + "if (" +
                  memop_operand(mo->cond_lhs, call_arg, cell_name) + " " +
                  cmp_str(mo->cond_op) + " " +
                  memop_operand(mo->cond_rhs, call_arg, cell_name) + ")");
      w_.line(LineCategory::Handler,
              indent + "    " + dst + " = " +
                  memop_expr(mo->then_lhs, mo->then_op, mo->then_rhs,
                             call_arg, cell_name) +
                  ";");
      w_.line(LineCategory::Handler, indent + "else");
      w_.line(LineCategory::Handler,
              indent + "    " + dst + " = " +
                  memop_expr(mo->else_lhs, mo->else_op, mo->else_rhs,
                             call_arg, cell_name) +
                  ";");
    } else {
      w_.line(LineCategory::Handler,
              indent + dst + " = " +
                  memop_expr(mo->then_lhs, mo->then_op, mo->then_rhs,
                             call_arg, cell_name) +
                  ";");
    }
  }

  void emit_mem(const AtomicTable& t, const std::string& indent) {
    const ir::ArrayInfo* arr = ir_.find_array(t.mem.array);
    const int width = arr ? arr->width : 32;
    const std::string cell_ty = ctx_ty(width);
    // Sub-word cells wrap at 2^w in the P4 RegisterAction (bit<w>) and the
    // interpreter; mirror that by masking everything computed from a memop.
    // Plain reads need no mask: stored cells are always in range.
    const std::string mask =
        width < 32 ? " & LUCID_MASK(" + std::to_string(width) + ")" : "";
    const ir::MemopInfo* getm =
        t.mem.get_memop.empty() ? nullptr : ir_.find_memop(t.mem.get_memop);
    const ir::MemopInfo* setm =
        t.mem.set_memop.empty() ? nullptr : ir_.find_memop(t.mem.set_memop);

    w_.line(LineCategory::Handler, indent + "{");
    const std::string in = indent + "    ";
    w_.line(LineCategory::Handler,
            in + "__u32 key = " + operand_str(t.mem.index) + ";");
    w_.line(LineCategory::Handler,
            in + cell_ty + " *cellp = bpf_map_lookup_elem(&reg_" +
                t.mem.array + ", &key);");
    w_.line(LineCategory::Handler, in + "if (cellp) {");
    const std::string body = in + "    ";
    const auto read_cell = [&] {
      w_.line(LineCategory::Handler,
              body + cell_ty + " cell = *cellp; // single read");
    };

    const auto mask_assign = [&](const std::string& dst) {
      if (!mask.empty()) {
        w_.line(LineCategory::Handler,
                body + dst + " = " + dst + mask + ";");
      }
    };
    switch (t.mem.kind) {
      case MemKind::Get:
        read_cell();
        if (getm == nullptr) {
          w_.line(LineCategory::Handler,
                  body + ctx_ref(t.mem.dst) + " = cell;");
        } else {
          emit_memop_assign(body, ctx_ref(t.mem.dst), getm, t.mem.get_arg,
                            "cell");
          mask_assign(ctx_ref(t.mem.dst));
        }
        break;
      case MemKind::Set:
        if (setm == nullptr) {
          w_.line(LineCategory::Handler,
                  body + "*cellp = " + operand_str(t.mem.set_value) + mask +
                      "; // single write");
        } else {
          read_cell();
          w_.line(LineCategory::Handler, body + cell_ty + " nc = cell;");
          emit_memop_assign(body, "nc", setm, t.mem.set_arg, "cell");
          w_.line(LineCategory::Handler,
                  body + "*cellp = nc" + mask + "; // single write");
        }
        break;
      case MemKind::Update:
        read_cell();
        // Parallel get+set: both memops read the pre-update value.
        w_.line(LineCategory::Handler, body + cell_ty + " nc = cell;");
        emit_memop_assign(body, "nc", setm, t.mem.set_arg, "cell");
        w_.line(LineCategory::Handler,
                body + "*cellp = nc" + mask + "; // single write");
        if (t.mem.dst.empty()) {
          // update with discarded result
        } else if (getm != nullptr) {
          emit_memop_assign(body, ctx_ref(t.mem.dst), getm, t.mem.get_arg,
                            "cell");
          mask_assign(ctx_ref(t.mem.dst));
        } else {
          w_.line(LineCategory::Handler,
                  body + ctx_ref(t.mem.dst) + " = cell;");
        }
        break;
    }
    w_.line(LineCategory::Handler, in + "}");
    w_.line(LineCategory::Handler, indent + "}");
  }

  void emit_table(const AtomicTable& t, const std::string& indent) {
    switch (t.kind) {
      case TableKind::Op: {
        const bool cmp = t.op.op && (frontend::binop_is_comparison(*t.op.op) ||
                                     frontend::binop_is_logical(*t.op.op));
        std::string rhs;
        if (t.op.op) {
          rhs = operand_str(t.op.lhs) + " " + c_binop(*t.op.op) + " " +
                operand_str(t.op.rhs);
        } else {
          rhs = operand_str(t.op.lhs);
        }
        if (!cmp && t.op.width < 32) {
          rhs = "(" + rhs + ") & LUCID_MASK(" + std::to_string(t.op.width) +
                ")";
        } else if (cmp) {
          rhs = "(" + rhs + ") ? 1 : 0";
        }
        w_.line(LineCategory::Handler,
                indent + ctx_ref(t.op.dst) + " = " + rhs + ";");
        break;
      }
      case TableKind::Mem:
        emit_mem(t, indent);
        break;
      case TableKind::Hash: {
        // crc32(seed, args...) — one unrolled round per 32-bit word; 64-bit
        // args fold as two words so the upper half is never truncated away.
        std::string expr =
            "0xffffffffu ^ " + std::to_string(t.hash.seed) + "u";
        for (const auto& a : t.hash.args) {
          if (a.width > 32) {
            expr = "lucid_crc32_word(" + expr + ", (__u32)" +
                   operand_str(a) + ")";
            expr = "lucid_crc32_word(" + expr + ", (__u32)(" +
                   operand_str(a) + " >> 32))";
          } else {
            expr = "lucid_crc32_word(" + expr + ", " + operand_str(a) + ")";
          }
        }
        expr = "(" + expr + ") ^ 0xffffffffu";
        if (t.hash.mask >= 0) {
          expr = "(" + expr + ") & " + std::to_string(t.hash.mask) + "u";
        }
        w_.line(LineCategory::Handler,
                indent + ctx_ref(t.hash.dst) + " = " + expr + ";");
        break;
      }
      case TableKind::Generate: {
        const int site = gen_site_of(&t);
        const std::string p = "m.gen" + std::to_string(site) + "_";
        w_.line(LineCategory::Handler, indent + p + "fired = 1;");
        w_.line(LineCategory::Handler,
                indent + p + "delay = " + operand_str(t.gen.delay) + ";");
        w_.line(LineCategory::Handler,
                indent + p + "loc = " +
                    (t.gen.location.is_none() ? "m.__self"
                                              : operand_str(t.gen.location)) +
                    ";");
        const auto& ev =
            ir_.events[static_cast<std::size_t>(t.gen.event_id)];
        for (std::size_t i = 0;
             i < t.gen.args.size() && i < ev.params.size(); ++i) {
          w_.line(LineCategory::Handler,
                  indent + p + "a" + std::to_string(i) + " = " +
                      operand_str(t.gen.args[i]) + ";");
        }
        break;
      }
      case TableKind::Branch:
        // Dissolved by branch inlining; nothing to lower.
        break;
    }
  }

  void emit_stages() {
    int sidx = 0;
    for (const auto& stage : pipeline_.stages) {
      w_.line(LineCategory::Handler,
              "    // ---- stage " + std::to_string(sidx) + " ----");
      for (const auto& mt : stage.tables) {
        for (const auto* member : mt.members) {
          const AtomicTable& t = *member;
          if (t.kind == TableKind::Branch) continue;
          w_.line(LineCategory::Handler,
                  "    if (" + table_condition(t) + ") { // " + t.handler +
                      ": " + std::string(ir::table_kind_name(t.kind)));
          emit_table(t, "        ");
          w_.line(LineCategory::Handler, "    }");
        }
      }
      ++sidx;
    }
  }

  void emit_dispatcher() {
    w_.line(LineCategory::Parser,
            "    // Dispatcher: copy event params into the ctx struct.");
    w_.line(LineCategory::Parser, "    switch (m.ev_id) {");
    for (const auto& ev : ir_.events) {
      w_.line(LineCategory::Parser,
              "    case " + std::to_string(ev.event_id) + ": { // " +
                  ev.name);
      if (!ev.params.empty()) {
        w_.line(LineCategory::Parser,
                "        struct ev_" + ev.name +
                    "_h *p = (void *)(ev + 1);");
        w_.line(LineCategory::Parser,
                "        if ((void *)(p + 1) > data_end)");
        w_.line(LineCategory::Parser, "            return XDP_DROP;");
        for (const auto& [pname, pwidth] : ev.params) {
          w_.line(LineCategory::Parser,
                  "        " + ctx_ref(pname) + " = " +
                      ntoh("p->" + pname, pwidth) + ";");
        }
      }
      w_.line(LineCategory::Parser, "        break;");
      w_.line(LineCategory::Parser, "    }");
    }
    w_.line(LineCategory::Parser, "    default:");
    w_.line(LineCategory::Parser,
            "        return XDP_PASS; // unknown event: forward untouched");
    w_.line(LineCategory::Parser, "    }");
    w_.blank();
  }

  void emit_serializer() {
    const auto sites = generate_sites();
    w_.line(LineCategory::Control,
            "    // Serializer: recirculate the first generated event "
            "(XDP cannot");
    w_.line(LineCategory::Control,
            "    // clone; additional events would need an AF_XDP or devmap "
            "fan-out).");
    for (const auto& [site, t] : sites) {
      const std::string p = "m.gen" + std::to_string(site) + "_";
      const auto& ev =
          ir_.events[static_cast<std::size_t>(t->gen.event_id)];
      const std::size_t nargs =
          std::min(t->gen.args.size(), ev.params.size());
      w_.line(LineCategory::Control, "    if (" + p + "fired) {");
      if (nargs > 0) {
        // The packet arrived sized for the *triggering* event; grow it when
        // the generated event's payload needs more room. adjust_tail
        // invalidates every packet pointer, so re-derive and re-check.
        w_.line(LineCategory::Control,
                "        long need = (long)(sizeof(struct ethernet_h) + "
                "sizeof(struct lucid_event_h) + sizeof(struct ev_" +
                    ev.name + "_h));");
        w_.line(LineCategory::Control,
                "        long delta = need - (long)(data_end - data);");
        w_.line(LineCategory::Control, "        if (delta > 0) {");
        w_.line(LineCategory::Control,
                "            if (bpf_xdp_adjust_tail(ctx, delta))");
        w_.line(LineCategory::Control, "                return XDP_ABORTED;");
        w_.line(LineCategory::Control,
                "            data = (void *)(long)ctx->data;");
        w_.line(LineCategory::Control,
                "            data_end = (void *)(long)ctx->data_end;");
        w_.line(LineCategory::Control, "            eth = data;");
        w_.line(LineCategory::Control,
                "            if ((void *)(eth + 1) > data_end)");
        w_.line(LineCategory::Control, "                return XDP_ABORTED;");
        w_.line(LineCategory::Control,
                "            ev = (void *)(eth + 1);");
        w_.line(LineCategory::Control,
                "            if ((void *)(ev + 1) > data_end)");
        w_.line(LineCategory::Control, "                return XDP_ABORTED;");
        w_.line(LineCategory::Control, "        }");
      }
      w_.line(LineCategory::Control,
              "        ev->event_id = lucid_htons(" +
                  std::to_string(t->gen.event_id) + "); // " + ev.name);
      w_.line(LineCategory::Control,
              "        ev->mcast_flag = " +
                  std::string(t->gen.multicast ? "1" : "0") + ";");
      w_.line(LineCategory::Control,
              "        ev->delay_ns = lucid_htonl(" + p + "delay);");
      w_.line(LineCategory::Control,
              "        ev->location = lucid_htonl(" + p + "loc);");
      if (nargs > 0) {
        w_.line(LineCategory::Control,
                "        struct ev_" + ev.name +
                    "_h *out = (void *)(ev + 1);");
        w_.line(LineCategory::Control,
                "        if ((void *)(out + 1) > data_end)");
        w_.line(LineCategory::Control, "            return XDP_ABORTED;");
        for (std::size_t i = 0; i < nargs; ++i) {
          const int pwidth = ev.params[i].second;
          w_.line(LineCategory::Control,
                  "        out->" + ev.params[i].first + " = " +
                      hton("(" + wire_ty(pwidth) + ")" + p + "a" +
                               std::to_string(i),
                           pwidth) +
                      ";");
        }
      }
      // One tail call per generate hop (the checker's depth model counts
      // exactly these): immediate events re-enter the pipeline directly,
      // delayed events go up to the userspace delay queue, which re-injects
      // through lucid_xdp_recirc with a fresh tail-call budget.
      w_.line(LineCategory::Control, "        if (" + p + "delay > 0)");
      w_.line(LineCategory::Control,
              "            return XDP_PASS; // userspace delay queue");
      w_.line(LineCategory::Control,
              "        bpf_tail_call(ctx, &lucid_progs, "
              "LUCID_PROG_MAIN);");
      w_.line(LineCategory::Control,
              "        return XDP_ABORTED; // prog array not populated");
      w_.line(LineCategory::Control, "    }");
    }
    w_.line(LineCategory::Control, "    return XDP_PASS;");
  }

  void main_program() {
    w_.line(LineCategory::Control, "SEC(\"xdp\")");
    w_.line(LineCategory::Control, "int lucid_xdp_main(struct xdp_md *ctx)");
    w_.line(LineCategory::Control, "{");
    w_.line(LineCategory::Parser,
            "    void *data = (void *)(long)ctx->data;");
    w_.line(LineCategory::Parser,
            "    void *data_end = (void *)(long)ctx->data_end;");
    w_.blank();
    w_.line(LineCategory::Parser, "    struct ethernet_h *eth = data;");
    w_.line(LineCategory::Parser, "    if ((void *)(eth + 1) > data_end)");
    w_.line(LineCategory::Parser, "        return XDP_PASS;");
    w_.line(LineCategory::Parser,
            "    if (eth->ether_type != lucid_htons(ETHERTYPE_LUCID))");
    w_.line(LineCategory::Parser,
            "        return XDP_PASS; // not a Lucid event packet");
    w_.line(LineCategory::Parser,
            "    struct lucid_event_h *ev = (void *)(eth + 1);");
    w_.line(LineCategory::Parser, "    if ((void *)(ev + 1) > data_end)");
    w_.line(LineCategory::Parser, "        return XDP_PASS;");
    w_.blank();
    w_.line(LineCategory::Parser, "    struct lucid_ctx m = {};");
    w_.line(LineCategory::Parser, "    m.__self = LUCID_SELF_ID;");
    w_.line(LineCategory::Parser,
            "    m.__ts = (__u32)bpf_ktime_get_ns();");
    w_.line(LineCategory::Parser,
            "    m.ev_id = lucid_ntohs(ev->event_id);");
    w_.blank();
    emit_dispatcher();
    emit_stages();
    w_.blank();
    emit_serializer();
    w_.line(LineCategory::Control, "}");
    w_.blank();
  }

  void license() {
    w_.line(LineCategory::Other,
            "SEC(\"license\") char _license[] = \"GPL\";");
  }

  const ir::ProgramIR& ir_;
  const opt::Pipeline& pipeline_;
  std::string_view name_;
  LineWriter w_;
  std::map<std::string, int> vars_;  // ctx fields: name -> width
  std::map<const AtomicTable*, int> gen_site_index_;
};

}  // namespace

XdpProgram emit(const Compilation& comp, std::string_view program_name) {
  Emitter e(comp.ir(), comp.pipeline(), program_name);
  return e.run();
}

// ---------------------------------------------------------------------------
// Backend adapter
// ---------------------------------------------------------------------------

namespace {

class EbpfBackend final : public Backend {
 public:
  explicit EbpfBackend(EbpfLimits limits) : limits_(limits) {}

  [[nodiscard]] std::string name() const override { return "ebpf"; }
  [[nodiscard]] std::string description() const override {
    return "self-contained eBPF/XDP C code generation";
  }
  [[nodiscard]] Stage required_stage() const override { return Stage::Layout; }

  [[nodiscard]] BackendArtifact emit(Compilation& comp) override {
    BackendArtifact artifact;
    artifact.backend = name();
    if (!comp.pipeline().feasible) {
      comp.diags().error({}, "ebpf-layout-infeasible",
                         "cannot emit eBPF: pipeline layout is infeasible");
      return artifact;
    }
    // Refuse to emit a program the kernel verifier would reject; the checker
    // leaves the exact limit violations as diagnostics.
    const CheckReport report =
        check(comp.ir(), comp.pipeline(), limits_, comp.diags());
    if (!report.ok) return artifact;

    const XdpProgram p = ebpf::emit(comp, comp.options().program_name);
    artifact.text = p.text;
    for (const auto& [cat, loc] : p.loc_by_category) {
      artifact.metrics["loc_" + std::string(category_name(cat))] =
          static_cast<std::int64_t>(loc);
    }
    artifact.metrics["loc_total"] = static_cast<std::int64_t>(p.total_loc());
    artifact.metrics["est_insns"] = report.program_insns;
    artifact.metrics["maps"] = report.map_count;
    artifact.metrics["map_bytes"] = report.map_bytes;
    artifact.metrics["tail_call_depth"] = report.tail_call_depth;
    artifact.ok = true;
    return artifact;
  }

 private:
  EbpfLimits limits_;
};

}  // namespace

bool register_backend(BackendRegistry& registry, EbpfLimits limits) {
  return registry.add(std::make_unique<EbpfBackend>(limits));
}

}  // namespace lucid::ebpf
