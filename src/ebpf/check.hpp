// Verifier-friendliness checker for the eBPF/XDP backend.
//
// The Linux verifier accepts a much narrower program shape than a Tofino
// pipeline: bounded instruction counts, a small number of maps, bounded map
// memory, and a hard tail-call chain limit. Emitting a program the verifier
// would reject helps nobody, so — in the same spirit as the layout pass's
// ResourceModel — this checker walks the laid-out pipeline *before* emission
// and predicts the emitted program's footprint:
//
//   - a per-handler instruction estimate (the emitter's straight-line
//     sections are costed per atomic table, guards included);
//   - the map count (one BPF_MAP_TYPE_ARRAY per register array plus the
//     recirculation BPF_MAP_TYPE_PROG_ARRAY) and total preallocated bytes
//     (array maps are not lazily populated);
//   - the recirculation depth (generate lowers to bpf_tail_call, and the
//     kernel caps chained tail calls at 33).
//
// Programs over a limit are rejected with proper diagnostics ("ebpf-*"
// codes) instead of emitting unverifiable code. Cyclic recirculation (e.g.
// self-rescheduling aging events) is legal — each re-injected packet gets a
// fresh tail-call budget — and is reported as a warning, not an error.
#pragma once

#include <map>
#include <string>

#include "ir/ir.hpp"
#include "opt/passes.hpp"
#include "support/diagnostics.hpp"

namespace lucid::ebpf {

/// The eBPF resource model: what the target kernel's verifier will accept.
/// Mirrors opt::ResourceModel for the Tofino pipeline; kernel_default() is
/// calibrated to a stock modern kernel the way tofino() is to Tofino 1.
struct EbpfLimits {
  /// Estimated BPF instructions per handler's straight-line section. The
  /// classic BPF_MAXINSNS program-size cap; a conservative stand-in for the
  /// verifier's complexity budget.
  int insns_per_handler = 4096;
  /// Estimated BPF instructions across the whole XDP program (all handler
  /// sections plus parser/dispatcher prologue).
  int insns_per_program = 65536;
  int max_maps = 64;                          // per-program map references
  long long max_map_bytes = 16ll << 20;       // preallocated value memory
  int max_tail_call_depth = 33;               // kernel MAX_TAIL_CALL_CNT

  static EbpfLimits kernel_default() { return EbpfLimits{}; }
};

/// What the checker predicted for one program. Valid even when !ok — the
/// diagnostics name the limit that was exceeded, the report carries the
/// numbers behind it.
struct CheckReport {
  bool ok = true;
  int program_insns = 0;                      // whole-program estimate
  std::map<std::string, int> handler_insns;   // per-handler estimate
  int map_count = 0;                          // register arrays + prog array
  long long map_bytes = 0;                    // preallocated value bytes
  int tail_call_depth = 0;                    // longest acyclic generate chain
  bool recirc_cycle = false;                  // generate graph has a cycle
};

/// Estimated BPF instruction cost of one atomic table as the emitter lowers
/// it (guard tests included). Exposed so tests can pin the cost model.
[[nodiscard]] int table_insn_cost(const ir::AtomicTable& table);

/// Checks `pipeline` (the laid-out program over `ir`) against `limits`.
/// Violations produce error diagnostics on `diags` with codes
/// "ebpf-handler-insns", "ebpf-program-insns", "ebpf-map-count",
/// "ebpf-map-bytes", "ebpf-tail-depth", "ebpf-param-width" (event params
/// must be 8/16/32/64-bit to stay byte-compatible with the P4 wire format),
/// and "ebpf-cell-width" (cells/locals of width 33..63 cannot wrap at 2^w
/// in C). Warnings: "ebpf-recirc-cycle" (cyclic recirculation) and
/// "ebpf-multi-generate" (XDP re-injects at most one generated event per
/// packet).
[[nodiscard]] CheckReport check(const ir::ProgramIR& ir,
                                const opt::Pipeline& pipeline,
                                const EbpfLimits& limits,
                                DiagnosticEngine& diags);

}  // namespace lucid::ebpf
