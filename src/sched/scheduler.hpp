// The Lucid data-plane event scheduler (section 3.2): the library that sits
// between application handlers and the switch hardware. It implements
//
//   - event serialization: each generated event becomes its own event packet
//     (multicast clones expanded through the multicast engine);
//   - event dispatching: non-local events are forwarded into the fabric,
//     delayed local events go to the delay machinery, processable events run
//     their handler;
//   - delay: either the paper's optimized *pausable queue* (events wait in a
//     paused traffic-manager queue that PFC pairs from the packet generator
//     release periodically) or the *baseline* continuous recirculation that
//     Figure 14 compares against.
//
// The handler itself is installed by the interpreter; the scheduler is
// application-agnostic.
#pragma once

#include <functional>
#include <vector>

#include "obs/metrics.hpp"
#include "pisa/switch.hpp"

namespace lucid::sched {

enum class DelayMode {
  PausableQueue,            // optimized (paper section 3.2)
  BaselineRecirculation,    // spin through the recirc port until due
};

struct SchedulerConfig {
  DelayMode mode = DelayMode::PausableQueue;
  /// PFC release period and open-window width for the pausable queue.
  sim::Time release_interval_ns = 100 * sim::kUs;
  sim::Time release_window_ns = 5 * sim::kUs;
};

/// An event the application asks to generate (the runtime form of a
/// lowered GenStmt with evaluated operands).
struct GenEvent {
  int event_id = -1;
  std::vector<std::int64_t> args;
  sim::Time delay_ns = 0;
  std::int64_t location = -1;  // -1 = local
  bool multicast = false;
  std::vector<std::int64_t> members;

  [[nodiscard]] int wire_size() const {
    return std::max<int>(64, 34 + 4 * static_cast<int>(args.size()));
  }
};

class EventScheduler {
 public:
  struct Stats {
    std::uint64_t executed = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t delayed_enqueues = 0;
    std::uint64_t control_injected = 0;
    /// (requested delay, actual error) per delayed execution.
    std::vector<std::pair<sim::Time, sim::Time>> delay_samples;
  };

  EventScheduler(pisa::Switch& sw, SchedulerConfig config);

  pisa::Switch& node() { return switch_; }
  [[nodiscard]] int self() const { return switch_.id(); }

  /// Installed by the interpreter: runs the handler for a processable event.
  void set_execute(std::function<void(const pisa::Packet&)> fn) {
    execute_ = std::move(fn);
  }
  /// Installed by the network: carries a packet to `packet.location`.
  void set_net_send(std::function<void(pisa::Packet)> fn) {
    net_send_ = std::move(fn);
  }

  /// Installed by the control plane (src/ctrl): invoked at every event
  /// boundary — right after a handler execution completes, never during
  /// one. This is the *apply point* where queued control-plane batches may
  /// touch register state without disturbing in-flight packet processing.
  void set_apply_point(std::function<void()> fn) {
    apply_point_ = std::move(fn);
  }

  /// External arrival (workload traffic or a neighbor's event packet).
  void inject(GenEvent ev);
  void inject_packet(pisa::Packet p) { switch_.inject(std::move(p)); }

  /// Control-plane entry: the event packet enters through the recirculation
  /// port (the switch-CPU / packet-generator path) instead of a front-panel
  /// port — Lucid control events raised by the control plane, not the wire.
  void inject_control(GenEvent ev);

  /// Called from inside a handler: schedule `ev` per its combinators.
  void generate(GenEvent ev);

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void on_ingress(pisa::Packet p);
  void route_out(pisa::Packet p);
  [[nodiscard]] pisa::Packet to_packet(GenEvent&& ev) const;

  pisa::Switch& switch_;
  SchedulerConfig config_;
  std::function<void(const pisa::Packet&)> execute_;
  std::function<void(pisa::Packet)> net_send_;
  std::function<void()> apply_point_;
  Stats stats_;
  // Process-wide instruments (obs registry), resolved in the constructor.
  obs::Counter* m_executed_ = nullptr;
  obs::Counter* m_forwarded_ = nullptr;
  obs::Histogram* m_latency_ = nullptr;
};

}  // namespace lucid::sched
