#include "sched/scheduler.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace lucid::sched {

EventScheduler::EventScheduler(pisa::Switch& sw, SchedulerConfig config)
    : switch_(sw), config_(config) {
  // Resolved once per scheduler; updates on the dispatch path below are
  // single relaxed atomics. These aggregate across every scheduler in the
  // process (per-switch exact counts stay in stats_).
  auto& reg = obs::Registry::global();
  m_executed_ = &reg.counter("lucid_sched_events_executed_total",
                             "Events dispatched to a local handler");
  m_forwarded_ = &reg.counter("lucid_sched_events_forwarded_total",
                              "Event packets routed into the fabric");
  m_latency_ = &reg.histogram(
      "lucid_sched_packet_latency_ns",
      "Ingress-to-execution latency of processable event packets (ns)");
  switch_.set_ingress([this](pisa::Packet p) { on_ingress(std::move(p)); });
  if (config_.mode == DelayMode::PausableQueue) {
    switch_.start_pfc_stream(config_.release_interval_ns,
                             config_.release_window_ns);
  }
}

pisa::Packet EventScheduler::to_packet(GenEvent&& ev) const {
  pisa::Packet p;
  p.size_bytes = ev.wire_size();
  p.event_id = ev.event_id;
  p.args = std::move(ev.args);
  p.location = ev.location;
  p.multicast = ev.multicast;
  p.mcast_members = std::move(ev.members);
  p.created_ns = switch_.sim().now();
  p.due_ns = p.created_ns + ev.delay_ns;
  return p;
}

void EventScheduler::inject(GenEvent ev) {
  switch_.inject(to_packet(std::move(ev)));
}

void EventScheduler::inject_control(GenEvent ev) {
  ++stats_.control_injected;
  pisa::Packet p = to_packet(std::move(ev));
  p.location = -1;
  switch_.recirculate(std::move(p));
}

void EventScheduler::generate(GenEvent ev) {
  // Serializer: one event packet per generated event; multicast expands
  // through the multicast engine into unicast clones.
  pisa::Packet p = to_packet(std::move(ev));
  if (p.multicast && !p.mcast_members.empty()) {
    switch_.multicast(p, [this](std::int64_t member, pisa::Packet clone) {
      if (member == self()) {
        switch_.recirculate(std::move(clone));
      } else {
        route_out(std::move(clone));
      }
    });
    return;
  }
  if (p.location >= 0 && p.location != self()) {
    route_out(std::move(p));
    return;
  }
  // Local event: serialized to the recirculation port.
  p.location = -1;
  switch_.recirculate(std::move(p));
}

void EventScheduler::route_out(pisa::Packet p) {
  ++stats_.forwarded;
  m_forwarded_->add();
  switch_.send_external(std::move(p), [this](pisa::Packet q) {
    if (net_send_) net_send_(std::move(q));
  });
}

void EventScheduler::on_ingress(pisa::Packet p) {
  const sim::Time now = switch_.sim().now();

  // Non-local events are forwarded like any other packet.
  if (p.location >= 0 && p.location != self()) {
    route_out(std::move(p));
    return;
  }

  // Delayed events.
  if (now < p.due_ns) {
    if (config_.mode == DelayMode::BaselineRecirculation) {
      switch_.recirculate(std::move(p));
      return;
    }
    if (switch_.delay_queue_open()) {
      // Mid-release window: keep looping until the window closes or the
      // event comes due.
      switch_.recirculate(std::move(p));
    } else {
      ++stats_.delayed_enqueues;
      switch_.delay_enqueue(std::move(p));
    }
    return;
  }

  // Processable.
  ++stats_.executed;
  m_executed_->add();
  m_latency_->observe(
      static_cast<std::uint64_t>(std::max<sim::Time>(0, now - p.created_ns)));
  if (p.due_ns > p.created_ns) {
    stats_.delay_samples.emplace_back(p.due_ns - p.created_ns,
                                      now - p.due_ns);
  }
  if (execute_) execute_(p);
  // Event boundary: the handler (if any) ran to completion; queued
  // control-plane updates may now be applied atomically.
  if (apply_point_) apply_point_();
}

}  // namespace lucid::sched
