#include "p4/emit.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "support/linewriter.hpp"
#include "support/strings.hpp"

namespace lucid::p4 {

using ir::AtomicTable;
using ir::MemKind;
using ir::Operand;
using ir::TableKind;

std::string_view category_name(LineCategory c) {
  switch (c) {
    case LineCategory::Header: return "headers";
    case LineCategory::Parser: return "parsers";
    case LineCategory::Action: return "actions";
    case LineCategory::RegisterAction: return "register-actions";
    case LineCategory::Table: return "tables";
    case LineCategory::Control: return "control";
    case LineCategory::Other: return "other";
  }
  return "?";
}

namespace {

using LineWriter = CategoryLineWriter<LineCategory>;

std::string bit_ty(int width) {
  return "bit<" + std::to_string(std::max(width, 1)) + ">";
}

std::string md(const std::string& var) { return "ig_md." + var; }

std::string operand_str(const Operand& o) {
  switch (o.kind) {
    case Operand::Kind::None: return "0";
    case Operand::Kind::Var: return md(o.var);
    case Operand::Kind::Const:
      return std::to_string(o.value);
  }
  return "0";
}

std::string p4_binop(frontend::BinOp op) {
  using frontend::BinOp;
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "%";
    case BinOp::BitAnd: return "&";
    case BinOp::BitOr: return "|";
    case BinOp::BitXor: return "^";
    case BinOp::Shl: return "<<";
    case BinOp::Shr: return ">>";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::Lt: return "<";
    case BinOp::Gt: return ">";
    case BinOp::Le: return "<=";
    case BinOp::Ge: return ">=";
    case BinOp::LAnd: return "&&";
    case BinOp::LOr: return "||";
  }
  return "+";
}

bool is_comparison(frontend::BinOp op) {
  return frontend::binop_is_comparison(op) || frontend::binop_is_logical(op);
}

/// Memop operand inside a RegisterAction body: `cell` stays symbolic, `arg`
/// is the call-site operand.
std::string memop_operand(const Operand& o, const Operand& call_arg) {
  if (o.is_const()) return std::to_string(o.value);
  if (o.var == "cell") return "cell";
  return operand_str(call_arg);
}

std::string memop_expr(const Operand& lhs,
                       const std::optional<frontend::BinOp>& op,
                       const Operand& rhs, const Operand& call_arg) {
  std::string s = memop_operand(lhs, call_arg);
  if (op) {
    s += " " + p4_binop(*op) + " " + memop_operand(rhs, call_arg);
  }
  return s;
}

std::string cmp_str(ir::CmpOp op) {
  switch (op) {
    case ir::CmpOp::Eq: return "==";
    case ir::CmpOp::Ne: return "!=";
    case ir::CmpOp::Lt: return "<";
    case ir::CmpOp::Gt: return ">";
    case ir::CmpOp::Le: return "<=";
    case ir::CmpOp::Ge: return ">=";
  }
  return "==";
}

std::string sanitize(std::string name) {
  for (auto& c : name) {
    if (c == '.') c = '_';
  }
  return name;
}

/// Key for deduplicating RegisterActions: identical access + memops + args.
std::string mem_signature(const ir::MemStmt& m) {
  std::ostringstream os;
  os << m.array << "/" << static_cast<int>(m.kind) << "/" << m.get_memop
     << "/" << m.get_arg.str() << "/" << m.set_memop << "/"
     << m.set_arg.str() << "/" << m.set_value.str();
  return os.str();
}

class Emitter {
 public:
  Emitter(const ir::ProgramIR& ir, const opt::Pipeline& pipeline,
          std::string_view name)
      : ir_(ir), pipeline_(pipeline), name_(name) {}

  P4Program run() {
    collect_vars();
    preamble();
    headers();
    metadata_struct();
    parser();
    ingress();
    egress_scheduler();
    deparser();
    pipeline_decl();
    P4Program p;
    p.text = w_.text();
    p.loc_by_category = w_.counts();
    return p;
  }

 private:
  // ---- variable collection -------------------------------------------------

  void note_var(const Operand& o) {
    if (o.is_var()) {
      auto& w = vars_[o.var];
      w = std::max(w, o.width);
    }
  }

  void collect_vars() {
    for (const auto& stage : pipeline_.stages) {
      for (const auto& mt : stage.tables) {
        for (const auto* member : mt.members) {
          const AtomicTable& t = *member;
          switch (t.kind) {
            case TableKind::Op: {
              auto& w = vars_[t.op.dst];
              w = std::max(w, t.op.width);
              note_var(t.op.lhs);
              note_var(t.op.rhs);
              break;
            }
            case TableKind::Mem:
              if (!t.mem.dst.empty()) {
                auto& w = vars_[t.mem.dst];
                w = std::max(w, t.mem.cell_width);
              }
              note_var(t.mem.index);
              note_var(t.mem.get_arg);
              note_var(t.mem.set_arg);
              note_var(t.mem.set_value);
              break;
            case TableKind::Hash: {
              auto& w = vars_[t.hash.dst];
              w = std::max(w, 32);
              for (const auto& a : t.hash.args) note_var(a);
              break;
            }
            case TableKind::Generate:
              for (const auto& a : t.gen.args) note_var(a);
              note_var(t.gen.delay);
              note_var(t.gen.location);
              break;
            case TableKind::Branch:
              break;
          }
          for (const auto& conj : t.guards) {
            for (const auto& test : conj) {
              auto& w = vars_[test.var];
              w = std::max(w, 32);
            }
          }
        }
      }
    }
    // Handler parameters arrive via event headers but are copied into
    // metadata by the dispatcher actions.
    for (const auto& ev : ir_.events) {
      for (const auto& [pname, pwidth] : ev.params) {
        auto& w = vars_[pname];
        w = std::max(w, pwidth);
      }
    }
    vars_["__self"] = 32;
    vars_["__ts"] = 32;
  }

  // ---- sections -----------------------------------------------------------

  void preamble() {
    w_.line(LineCategory::Other, "// " + std::string(name_) +
                                     " — generated by the Lucid compiler");
    w_.line(LineCategory::Other, "#include <core.p4>");
    w_.line(LineCategory::Other, "#include <tna.p4>");
    w_.blank();
    w_.line(LineCategory::Other, "typedef bit<48> mac_addr_t;");
    w_.line(LineCategory::Other, "typedef bit<16> ether_type_t;");
    w_.line(LineCategory::Other,
            "const ether_type_t ETHERTYPE_LUCID = 0x666;");
    w_.blank();
  }

  void headers() {
    w_.line(LineCategory::Header, "header ethernet_h {");
    w_.line(LineCategory::Header, "    mac_addr_t dst_addr;");
    w_.line(LineCategory::Header, "    mac_addr_t src_addr;");
    w_.line(LineCategory::Header, "    ether_type_t ether_type;");
    w_.line(LineCategory::Header, "}");
    w_.blank();
    // The Lucid event metadata header: every event packet carries it.
    w_.line(LineCategory::Header, "header lucid_event_h {");
    w_.line(LineCategory::Header, "    bit<16> event_id;");
    w_.line(LineCategory::Header, "    bit<8>  mcast_flag;");
    w_.line(LineCategory::Header, "    bit<32> delay_ns;");
    w_.line(LineCategory::Header, "    bit<32> location;");
    w_.line(LineCategory::Header, "}");
    w_.blank();
    for (const auto& ev : ir_.events) {
      w_.line(LineCategory::Header, "header ev_" + ev.name + "_h {");
      for (const auto& [pname, pwidth] : ev.params) {
        w_.line(LineCategory::Header,
                "    " + bit_ty(pwidth) + " " + pname + ";");
      }
      if (ev.params.empty()) {
        w_.line(LineCategory::Header, "    bit<8> pad;");
      }
      w_.line(LineCategory::Header, "}");
      w_.blank();
    }
    // Out-headers, one per generate site (the serializer strips all but one
    // per clone, section 3.2).
    w_.line(LineCategory::Header, "struct headers_t {");
    w_.line(LineCategory::Header, "    ethernet_h ethernet;");
    w_.line(LineCategory::Header, "    lucid_event_h event;");
    for (const auto& ev : ir_.events) {
      w_.line(LineCategory::Header,
              "    ev_" + ev.name + "_h ev_" + ev.name + ";");
    }
    for (const auto& [site, ev] : generate_sites()) {
      w_.line(LineCategory::Header, "    lucid_event_h gen_meta_" +
                                        std::to_string(site) + ";");
      w_.line(LineCategory::Header, "    ev_" + ev + "_h gen_" +
                                        std::to_string(site) + ";");
    }
    w_.line(LineCategory::Header, "}");
    w_.blank();
  }

  std::vector<std::pair<int, std::string>> generate_sites() const {
    std::vector<std::pair<int, std::string>> sites;
    int n = 0;
    for (const auto& stage : pipeline_.stages) {
      for (const auto& mt : stage.tables) {
        for (const auto* t : mt.members) {
          if (t->kind == TableKind::Generate) {
            sites.emplace_back(n++, t->gen.event);
          }
        }
      }
    }
    return sites;
  }

  void metadata_struct() {
    w_.line(LineCategory::Other, "struct ig_metadata_t {");
    for (const auto& [name, width] : vars_) {
      w_.line(LineCategory::Other,
              "    " + bit_ty(width) + " " + sanitize(name) + ";");
    }
    w_.line(LineCategory::Other, "    bit<16> ev_id;");
    w_.line(LineCategory::Other, "    bit<8>  gen_count;");
    w_.line(LineCategory::Other, "}");
    w_.blank();
  }

  void parser() {
    w_.line(LineCategory::Parser,
            "parser IngressParser(packet_in pkt, out headers_t hdr, out "
            "ig_metadata_t ig_md,");
    w_.line(LineCategory::Parser,
            "        out ingress_intrinsic_metadata_t ig_intr_md) {");
    w_.line(LineCategory::Parser, "    state start {");
    w_.line(LineCategory::Parser, "        pkt.extract(ig_intr_md);");
    w_.line(LineCategory::Parser,
            "        pkt.advance(PORT_METADATA_SIZE);");
    w_.line(LineCategory::Parser, "        transition parse_ethernet;");
    w_.line(LineCategory::Parser, "    }");
    w_.line(LineCategory::Parser, "    state parse_ethernet {");
    w_.line(LineCategory::Parser, "        pkt.extract(hdr.ethernet);");
    w_.line(LineCategory::Parser,
            "        transition select(hdr.ethernet.ether_type) {");
    w_.line(LineCategory::Parser,
            "            ETHERTYPE_LUCID : parse_event;");
    w_.line(LineCategory::Parser, "            default : accept;");
    w_.line(LineCategory::Parser, "        }");
    w_.line(LineCategory::Parser, "    }");
    w_.line(LineCategory::Parser, "    state parse_event {");
    w_.line(LineCategory::Parser, "        pkt.extract(hdr.event);");
    w_.line(LineCategory::Parser,
            "        transition select(hdr.event.event_id) {");
    for (const auto& ev : ir_.events) {
      w_.line(LineCategory::Parser,
              "            " + std::to_string(ev.event_id) + " : parse_ev_" +
                  ev.name + ";");
    }
    w_.line(LineCategory::Parser, "            default : accept;");
    w_.line(LineCategory::Parser, "        }");
    w_.line(LineCategory::Parser, "    }");
    for (const auto& ev : ir_.events) {
      w_.line(LineCategory::Parser, "    state parse_ev_" + ev.name + " {");
      w_.line(LineCategory::Parser,
              "        pkt.extract(hdr.ev_" + ev.name + ");");
      w_.line(LineCategory::Parser, "        transition accept;");
      w_.line(LineCategory::Parser, "    }");
    }
    w_.line(LineCategory::Parser, "}");
    w_.blank();
  }

  // ---- register actions -----------------------------------------------------

  void emit_register_decls() {
    for (const auto& arr : ir_.arrays) {
      w_.line(LineCategory::RegisterAction,
              "    Register<" + bit_ty(arr.width) + ", bit<32>>(" +
                  std::to_string(arr.size) + ") reg_" + arr.name + ";");
    }
    w_.blank();

    // One RegisterAction per distinct stateful access.
    for (const auto& stage : pipeline_.stages) {
      for (const auto& mt : stage.tables) {
        for (const auto* member : mt.members) {
          const AtomicTable& t = *member;
          if (t.kind != TableKind::Mem) continue;
          const std::string sig = mem_signature(t.mem);
          if (reg_actions_.count(sig)) continue;
          const std::string ra_name =
              "ra_" + t.mem.array + "_" +
              std::to_string(reg_actions_.size());
          reg_actions_[sig] = ra_name;
          emit_register_action(t.mem, ra_name);
        }
      }
    }
  }

  void emit_register_action(const ir::MemStmt& m, const std::string& name) {
    const ir::ArrayInfo* arr = ir_.find_array(m.array);
    const std::string cell = bit_ty(arr ? arr->width : 32);
    w_.line(LineCategory::RegisterAction,
            "    RegisterAction<" + cell + ", bit<32>, " + cell + ">(reg_" +
                m.array + ") " + name + " = {");
    w_.line(LineCategory::RegisterAction,
            "        void apply(inout " + cell + " cell, out " + cell +
                " rv) {");

    const ir::MemopInfo* getm =
        m.get_memop.empty() ? nullptr : ir_.find_memop(m.get_memop);
    const ir::MemopInfo* setm =
        m.set_memop.empty() ? nullptr : ir_.find_memop(m.set_memop);

    auto subst_cell = [](std::string text, const std::string& cell_name) {
      // The canonical memop operand is spelled "cell"; for Array.update the
      // read memop must see the pre-update value captured in `old`.
      if (cell_name == "cell") return text;
      std::size_t pos = 0;
      while ((pos = text.find("cell", pos)) != std::string::npos) {
        text.replace(pos, 4, cell_name);
        pos += cell_name.size();
      }
      return text;
    };
    auto emit_memop_assign = [&](const std::string& dst,
                                 const ir::MemopInfo* mo,
                                 const Operand& call_arg,
                                 const std::string& cell_name = "cell") {
      if (mo == nullptr) return;
      if (mo->has_condition) {
        w_.line(LineCategory::RegisterAction,
                "            if (" +
                    subst_cell(memop_operand(mo->cond_lhs, call_arg),
                               cell_name) +
                    " " + cmp_str(mo->cond_op) + " " +
                    subst_cell(memop_operand(mo->cond_rhs, call_arg),
                               cell_name) +
                    ") {");
        w_.line(LineCategory::RegisterAction,
                "                " + dst + " = " +
                    subst_cell(memop_expr(mo->then_lhs, mo->then_op,
                                          mo->then_rhs, call_arg),
                               cell_name) +
                    ";");
        w_.line(LineCategory::RegisterAction, "            } else {");
        w_.line(LineCategory::RegisterAction,
                "                " + dst + " = " +
                    subst_cell(memop_expr(mo->else_lhs, mo->else_op,
                                          mo->else_rhs, call_arg),
                               cell_name) +
                    ";");
        w_.line(LineCategory::RegisterAction, "            }");
      } else {
        w_.line(LineCategory::RegisterAction,
                "            " + dst + " = " +
                    subst_cell(memop_expr(mo->then_lhs, mo->then_op,
                                          mo->then_rhs, call_arg),
                               cell_name) +
                    ";");
      }
    };

    switch (m.kind) {
      case MemKind::Get:
        if (getm == nullptr) {
          w_.line(LineCategory::RegisterAction, "            rv = cell;");
        } else {
          emit_memop_assign("rv", getm, m.get_arg);
        }
        break;
      case MemKind::Set:
        if (setm == nullptr) {
          w_.line(LineCategory::RegisterAction,
                  "            cell = " + operand_str(m.set_value) + ";");
        } else {
          emit_memop_assign("cell", setm, m.set_arg);
        }
        break;
      case MemKind::Update:
        // Parallel get+set: both memops read the pre-update value.
        w_.line(LineCategory::RegisterAction,
                "            " + cell + " old = cell;");
        emit_memop_assign("cell", setm, m.set_arg, "old");
        if (getm != nullptr) {
          emit_memop_assign("rv", getm, m.get_arg, "old");
        } else {
          w_.line(LineCategory::RegisterAction, "            rv = old;");
        }
        break;
    }
    w_.line(LineCategory::RegisterAction, "        };");
    w_.line(LineCategory::RegisterAction, "    };");
    w_.blank();
  }

  // ---- actions & tables ------------------------------------------------------

  void emit_member_op(const AtomicTable& t) {
    switch (t.kind) {
      case TableKind::Op: {
        std::string rhs;
        if (t.op.op && is_comparison(*t.op.op)) {
          rhs = "(" + bit_ty(t.op.width) + ")(" + operand_str(t.op.lhs) +
                " " + p4_binop(*t.op.op) + " " + operand_str(t.op.rhs) + ")";
        } else if (t.op.op) {
          rhs = operand_str(t.op.lhs) + " " + p4_binop(*t.op.op) + " " +
                operand_str(t.op.rhs);
        } else {
          rhs = operand_str(t.op.lhs);
        }
        w_.line(LineCategory::Action,
                "        " + md(sanitize(t.op.dst)) + " = " + rhs + ";");
        break;
      }
      case TableKind::Mem: {
        const std::string& ra = reg_actions_.at(mem_signature(t.mem));
        if (t.mem.dst.empty()) {
          w_.line(LineCategory::Action,
                  "        " + ra + ".execute(" + operand_str(t.mem.index) +
                      ");");
        } else {
          w_.line(LineCategory::Action,
                  "        " + md(sanitize(t.mem.dst)) + " = " + ra +
                      ".execute(" + operand_str(t.mem.index) + ");");
        }
        break;
      }
      case TableKind::Hash: {
        std::string args;
        for (std::size_t i = 0; i < t.hash.args.size(); ++i) {
          if (i > 0) args += ", ";
          args += operand_str(t.hash.args[i]);
        }
        w_.line(LineCategory::Action,
                "        " + md(sanitize(t.hash.dst)) + " = hash_unit_" +
                    std::to_string(t.hash.seed) + ".get({" + args + "});");
        break;
      }
      case TableKind::Generate: {
        const int site = gen_site_of(&t);
        const std::string h = "hdr.gen_" + std::to_string(site);
        const std::string hm = "hdr.gen_meta_" + std::to_string(site);
        w_.line(LineCategory::Action, "        " + hm + ".setValid();");
        w_.line(LineCategory::Action, "        " + h + ".setValid();");
        w_.line(LineCategory::Action,
                "        " + hm + ".event_id = " +
                    std::to_string(t.gen.event_id) + ";");
        w_.line(LineCategory::Action,
                "        " + hm + ".delay_ns = " + operand_str(t.gen.delay) +
                    ";");
        w_.line(LineCategory::Action,
                "        " + hm + ".mcast_flag = " +
                    (t.gen.multicast ? "1" : "0") + ";");
        w_.line(LineCategory::Action,
                "        " + hm + ".location = " +
                    (t.gen.location.is_none() ? md("__self")
                                              : operand_str(t.gen.location)) +
                    ";");
        const auto& ev =
            ir_.events[static_cast<std::size_t>(t.gen.event_id)];
        for (std::size_t i = 0;
             i < t.gen.args.size() && i < ev.params.size(); ++i) {
          w_.line(LineCategory::Action,
                  "        " + h + "." + ev.params[i].first + " = " +
                      operand_str(t.gen.args[i]) + ";");
        }
        w_.line(LineCategory::Action,
                "        ig_md.gen_count = ig_md.gen_count + 1;");
        break;
      }
      case TableKind::Branch:
        break;
    }
  }

  int gen_site_of(const AtomicTable* t) const {
    int n = 0;
    for (const auto& stage : pipeline_.stages) {
      for (const auto& mt : stage.tables) {
        for (const auto* m : mt.members) {
          if (m->kind == TableKind::Generate) {
            if (m == t) return n;
            ++n;
          }
        }
      }
    }
    return -1;
  }

  void emit_tables() {
    int sidx = 0;
    for (const auto& stage : pipeline_.stages) {
      int tidx = 0;
      for (const auto& mt : stage.tables) {
        emit_merged_table(mt, sidx, tidx);
        ++tidx;
      }
      ++sidx;
    }
  }

  struct EmitGroup {
    std::string handler;
    int event_id = -1;
    bool unconditional = true;
    std::vector<const AtomicTable*> members;  // unconditional group
    const AtomicTable* guarded = nullptr;     // guarded singleton
  };

  std::vector<EmitGroup> emission_groups(const opt::MergedTable& mt) const {
    std::vector<EmitGroup> groups;
    for (const auto* member : mt.members) {
      const AtomicTable& t = *member;
      if (t.guards.empty()) {
        EmitGroup* g = nullptr;
        for (auto& eg : groups) {
          if (eg.unconditional && eg.handler == t.handler) g = &eg;
        }
        if (g == nullptr) {
          groups.emplace_back();
          g = &groups.back();
          g->handler = t.handler;
          g->event_id = event_id_of(t.handler);
          g->unconditional = true;
        }
        g->members.push_back(member);
      } else {
        groups.emplace_back();
        EmitGroup& g = groups.back();
        g.handler = t.handler;
        g.event_id = event_id_of(t.handler);
        g.unconditional = false;
        g.guarded = member;
      }
    }
    return groups;
  }

  int event_id_of(const std::string& handler) const {
    for (const auto& ev : ir_.events) {
      if (ev.name == handler) return ev.event_id;
    }
    return -1;
  }

  void emit_merged_table(const opt::MergedTable& mt, int sidx, int tidx) {
    const std::string tname =
        "tbl_s" + std::to_string(sidx) + "_t" + std::to_string(tidx);
    const auto groups = emission_groups(mt);

    // Key variables: the union of all guard variables.
    std::set<std::string> key_vars;
    for (const auto* t : mt.members) {
      for (const auto& conj : t->guards) {
        for (const auto& test : conj) key_vars.insert(test.var);
      }
    }

    // Actions.
    std::vector<std::string> action_names;
    int gidx = 0;
    for (const auto& g : groups) {
      const std::string aname = "do_" + tname + "_g" + std::to_string(gidx);
      action_names.push_back(aname);
      w_.line(LineCategory::Action, "    action " + aname + "() {");
      if (g.unconditional) {
        for (const auto* m : g.members) emit_member_op(*m);
      } else {
        emit_member_op(*g.guarded);
      }
      w_.line(LineCategory::Action, "    }");
      ++gidx;
    }
    w_.line(LineCategory::Action, "    action " + tname + "_noop() {}");
    w_.blank();

    // Table.
    w_.line(LineCategory::Table, "    table " + tname + " {");
    w_.line(LineCategory::Table, "        key = {");
    w_.line(LineCategory::Table, "            ig_md.ev_id : ternary;");
    for (const auto& k : key_vars) {
      w_.line(LineCategory::Table,
              "            " + md(sanitize(k)) + " : ternary;");
    }
    w_.line(LineCategory::Table, "        }");
    w_.line(LineCategory::Table, "        actions = {");
    for (const auto& a : action_names) {
      w_.line(LineCategory::Table, "            " + a + ";");
    }
    w_.line(LineCategory::Table, "            " + tname + "_noop;");
    w_.line(LineCategory::Table, "        }");
    w_.line(LineCategory::Table, "        const entries = {");
    gidx = 0;
    for (const auto& g : groups) {
      auto entry_for = [&](const ir::Conj* conj) {
        std::string e = "            (" + std::to_string(g.event_id);
        for (const auto& k : key_vars) {
          std::string cell = "_";
          if (conj != nullptr) {
            for (const auto& test : *conj) {
              if (test.var != k) continue;
              cell = test.eq ? std::to_string(test.value)
                             : "~" + std::to_string(test.value);
            }
          }
          e += ", " + cell;
        }
        e += ") : " + action_names[static_cast<std::size_t>(gidx)] + "();";
        w_.line(LineCategory::Table, e);
      };
      if (g.unconditional) {
        entry_for(nullptr);
      } else {
        for (const auto& conj : g.guarded->guards) entry_for(&conj);
      }
      ++gidx;
    }
    w_.line(LineCategory::Table, "        }");
    w_.line(LineCategory::Table,
            "        const default_action = " + tname + "_noop();");
    w_.line(LineCategory::Table, "    }");
    w_.blank();
    table_names_.push_back(tname);
  }

  void emit_dispatcher() {
    // Copy event-header fields into metadata and pick the handler.
    for (const auto& ev : ir_.events) {
      w_.line(LineCategory::Action,
              "    action dispatch_" + ev.name + "() {");
      for (const auto& [pname, pwidth] : ev.params) {
        (void)pwidth;
        w_.line(LineCategory::Action, "        " + md(sanitize(pname)) +
                                          " = hdr.ev_" + ev.name + "." +
                                          pname + ";");
      }
      w_.line(LineCategory::Action,
              "        ig_md.ev_id = hdr.event.event_id;");
      w_.line(LineCategory::Action, "    }");
    }
    w_.line(LineCategory::Action, "    action dispatch_forward() {");
    w_.line(LineCategory::Action,
            "        // non-local event: user forwarding table picks a port");
    w_.line(LineCategory::Action, "    }");
    w_.line(LineCategory::Action, "    action dispatch_delay() {");
    w_.line(LineCategory::Action,
            "        // delayed event: send to the paused delay queue");
    w_.line(LineCategory::Action,
            "        ig_tm_md.qid = LUCID_DELAY_QID;");
    w_.line(LineCategory::Action, "    }");
    w_.blank();
    w_.line(LineCategory::Table, "    table event_dispatch {");
    w_.line(LineCategory::Table, "        key = {");
    w_.line(LineCategory::Table, "            hdr.event.event_id : ternary;");
    w_.line(LineCategory::Table,
            "            hdr.event.location : ternary;");
    w_.line(LineCategory::Table, "            hdr.event.delay_ns : ternary;");
    w_.line(LineCategory::Table, "        }");
    w_.line(LineCategory::Table, "        actions = {");
    for (const auto& ev : ir_.events) {
      w_.line(LineCategory::Table, "            dispatch_" + ev.name + ";");
    }
    w_.line(LineCategory::Table, "            dispatch_forward;");
    w_.line(LineCategory::Table, "            dispatch_delay;");
    w_.line(LineCategory::Table, "        }");
    w_.line(LineCategory::Table, "        // location/delay rules installed");
    w_.line(LineCategory::Table, "        // by the inlined scheduler");
    w_.line(LineCategory::Table, "    }");
    w_.blank();
  }

  void ingress() {
    w_.line(LineCategory::Control,
            "control Ingress(inout headers_t hdr, inout ig_metadata_t "
            "ig_md,");
    w_.line(LineCategory::Control,
            "        in ingress_intrinsic_metadata_t ig_intr_md,");
    w_.line(LineCategory::Control,
            "        inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {");
    w_.blank();
    emit_register_decls();
    emit_dispatcher();
    emit_tables();

    w_.line(LineCategory::Control, "    apply {");
    w_.line(LineCategory::Control, "        ig_md.gen_count = 0;");
    w_.line(LineCategory::Control,
            "        ig_md.__ts = ig_intr_md.ingress_mac_tstamp[31:0];");
    w_.line(LineCategory::Control, "        ig_md.__self = SWITCH_SELF_ID;");
    w_.line(LineCategory::Control, "        event_dispatch.apply();");
    int sidx = 0;
    std::size_t i = 0;
    for (const auto& stage : pipeline_.stages) {
      w_.line(LineCategory::Control,
              "        // ---- stage " + std::to_string(sidx) + " ----");
      for (std::size_t t = 0; t < stage.tables.size(); ++t) {
        w_.line(LineCategory::Control,
                "        " + table_names_[i++] + ".apply();");
      }
      ++sidx;
    }
    w_.line(LineCategory::Control, "        if (ig_md.gen_count > 0) {");
    w_.line(LineCategory::Control,
            "            // serializer: one clone per generated event");
    w_.line(LineCategory::Control,
            "            ig_tm_md.mcast_grp_a = LUCID_SERIALIZE_GRP;");
    w_.line(LineCategory::Control, "        }");
    w_.line(LineCategory::Control, "    }");
    w_.line(LineCategory::Control, "}");
    w_.blank();
  }

  void egress_scheduler() {
    // The mostly-static event scheduler library (section 3.2): serializer
    // (strip all but the clone's own event header), delay accounting, and
    // PFC pause-queue control.
    w_.line(LineCategory::Control,
            "control Egress(inout headers_t hdr, inout ig_metadata_t eg_md,");
    w_.line(LineCategory::Control,
            "        in egress_intrinsic_metadata_t eg_intr_md) {");
    w_.line(LineCategory::Control, "    apply {");
    w_.line(LineCategory::Control,
            "        // --- Lucid event serializer ---");
    const auto sites = generate_sites();
    for (const auto& [site, ev] : sites) {
      w_.line(LineCategory::Control,
              "        if (eg_intr_md.egress_rid == " +
                  std::to_string(site + 1) + ") {");
      w_.line(LineCategory::Control,
              "            // this clone carries generate site " +
                  std::to_string(site));
      w_.line(LineCategory::Control,
              "            hdr.event = hdr.gen_meta_" + std::to_string(site) +
                  ";");
      w_.line(LineCategory::Control,
              "            hdr.ev_" + ev + " = hdr.gen_" +
                  std::to_string(site) + ";");
      for (const auto& [other, oev] : sites) {
        w_.line(LineCategory::Control, "            hdr.gen_meta_" +
                                           std::to_string(other) +
                                           ".setInvalid();");
        w_.line(LineCategory::Control,
                "            hdr.gen_" + std::to_string(other) +
                    ".setInvalid();");
        (void)oev;
      }
      w_.line(LineCategory::Control, "        }");
    }
    w_.line(LineCategory::Control,
            "        // --- delay accounting: subtract queue residence ---");
    w_.line(LineCategory::Control, "        if (hdr.event.isValid() &&");
    w_.line(LineCategory::Control,
            "            hdr.event.delay_ns > 0) {");
    w_.line(LineCategory::Control,
            "            hdr.event.delay_ns = hdr.event.delay_ns -");
    w_.line(LineCategory::Control,
            "                eg_intr_md.deq_timedelta;");
    w_.line(LineCategory::Control, "        }");
    w_.line(LineCategory::Control, "    }");
    w_.line(LineCategory::Control, "}");
    w_.blank();
  }

  void deparser() {
    w_.line(LineCategory::Control,
            "control IngressDeparser(packet_out pkt, inout headers_t hdr) {");
    w_.line(LineCategory::Control, "    apply {");
    w_.line(LineCategory::Control, "        pkt.emit(hdr.ethernet);");
    w_.line(LineCategory::Control, "        pkt.emit(hdr.event);");
    for (const auto& ev : ir_.events) {
      w_.line(LineCategory::Control, "        pkt.emit(hdr.ev_" + ev.name +
                                         ");");
    }
    for (const auto& [site, ev] : generate_sites()) {
      w_.line(LineCategory::Control,
              "        pkt.emit(hdr.gen_meta_" + std::to_string(site) + ");");
      w_.line(LineCategory::Control,
              "        pkt.emit(hdr.gen_" + std::to_string(site) + ");");
      (void)ev;
    }
    w_.line(LineCategory::Control, "    }");
    w_.line(LineCategory::Control, "}");
    w_.blank();
  }

  void pipeline_decl() {
    w_.line(LineCategory::Other,
            "Pipeline(IngressParser(), Ingress(), IngressDeparser(),");
    w_.line(LineCategory::Other,
            "         Egress()) pipe;");
    w_.line(LineCategory::Other, "Switch(pipe) main;");
  }

  const ir::ProgramIR& ir_;
  const opt::Pipeline& pipeline_;
  std::string_view name_;
  LineWriter w_;
  std::map<std::string, int> vars_;              // metadata fields
  std::map<std::string, std::string> reg_actions_;  // signature -> name
  std::vector<std::string> table_names_;
};

}  // namespace

P4Program emit(const CompileResult& result, std::string_view program_name) {
  Emitter e(result.ir, result.pipeline, program_name);
  return e.run();
}

P4Program emit(const Compilation& comp, std::string_view program_name) {
  Emitter e(comp.ir(), comp.pipeline(), program_name);
  return e.run();
}

// ---------------------------------------------------------------------------
// Backend adapter
// ---------------------------------------------------------------------------

namespace {

class P4Backend final : public Backend {
 public:
  [[nodiscard]] std::string name() const override { return "p4"; }
  [[nodiscard]] std::string description() const override {
    return "Tofino-style P4_16 code generation";
  }
  [[nodiscard]] Stage required_stage() const override { return Stage::Layout; }

  [[nodiscard]] BackendArtifact emit(Compilation& comp) override {
    BackendArtifact artifact;
    artifact.backend = name();
    if (!comp.pipeline().feasible) {
      comp.diags().error({}, "p4-layout-infeasible",
                         "cannot emit P4: pipeline layout is infeasible");
      return artifact;
    }
    const P4Program p = p4::emit(comp, comp.options().program_name);
    artifact.text = p.text;
    for (const auto& [cat, loc] : p.loc_by_category) {
      artifact.metrics["loc_" + std::string(category_name(cat))] =
          static_cast<std::int64_t>(loc);
    }
    artifact.metrics["loc_total"] = static_cast<std::int64_t>(p.total_loc());
    artifact.ok = true;
    return artifact;
  }
};

}  // namespace

bool register_backend(BackendRegistry& registry) {
  return registry.add(std::make_unique<P4Backend>());
}

}  // namespace lucid::p4
