// P4 backend: renders a compiled Lucid program as Tofino-style P4_16.
//
// The emitted program mirrors what the paper's compiler produces:
//   - one header per event (the event wire format) plus the Lucid event
//     metadata header (event id, delay, location, multicast flag);
//   - a parser state machine keyed on the event id;
//   - one RegisterAction per distinct (array, access kind, memops) combo —
//     the paper's Fig 7 "memory operation table" payloads;
//   - actions and tables for every merged table in the optimized layout,
//     with const entries for the inlined guard rules (Fig 7/8);
//   - the inlined event-scheduler blocks (serializer, dispatcher, delay
//     queue control) as static egress/ingress code (section 3.2);
//   - a deparser.
//
// Every emitted line is tagged with a category so the Figure 9/10 LoC
// metrics (P4 breakdown: headers / parsers / actions / register actions /
// tables / other) can be reproduced mechanically.
#pragma once

#include <map>
#include <string>

#include "core/compiler.hpp"
#include "core/driver.hpp"

namespace lucid::p4 {

enum class LineCategory {
  Header,
  Parser,
  Action,
  RegisterAction,
  Table,
  Control,   // pipeline glue, scheduler blocks, deparser
  Other,     // includes, typedefs, struct decls
};

[[nodiscard]] std::string_view category_name(LineCategory c);

struct P4Program {
  std::string text;
  std::map<LineCategory, std::size_t> loc_by_category;

  [[nodiscard]] std::size_t total_loc() const {
    std::size_t n = 0;
    for (const auto& [c, v] : loc_by_category) n += v;
    return n;
  }
};

/// Emits from a driver Compilation (Layout stage must have succeeded).
[[nodiscard]] P4Program emit(const Compilation& comp,
                             std::string_view program_name);

/// Emits the compiled program. `result.ok` must be true. Prefer the
/// Compilation overload / the "p4" backend via CompilerDriver::emit.
[[nodiscard]] P4Program emit(const CompileResult& result,
                             std::string_view program_name);

/// Registers the "p4" backend with `registry`; false if already present.
bool register_backend(BackendRegistry& registry);

}  // namespace lucid::p4
