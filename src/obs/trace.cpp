#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>

#include "support/json.hpp"

namespace lucid::obs {

namespace {

std::uint64_t steady_now_raw() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t trace_epoch() {
  static const std::uint64_t epoch = steady_now_raw();
  return epoch;
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer* t = new Tracer();  // leaked: outlives static teardown
  return *t;
}

std::uint64_t Tracer::now_ns() { return steady_now_raw() - trace_epoch(); }

void Tracer::enable(TracerConfig cfg) {
  if (cfg.ring_capacity == 0) cfg.ring_capacity = 1;
  if (cfg.sample_every == 0) cfg.sample_every = 1;
  (void)trace_epoch();  // pin the epoch no later than the first enable
  ring_capacity_.store(cfg.ring_capacity, std::memory_order_relaxed);
  sample_every_.store(cfg.sample_every, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_release); }

bool Tracer::sample() {
  const std::uint32_t n = sample_every_.load(std::memory_order_relaxed);
  if (n <= 1) return true;
  thread_local std::uint32_t tick = 0;
  return tick++ % n == 0;
}

Tracer::Ring& Tracer::ring() {
  // One ring per (tracer, thread). The shared_ptr in rings_ keeps exported
  // data alive after the owning thread exits.
  thread_local std::shared_ptr<Ring> mine;
  if (!mine) {
    mine = std::make_shared<Ring>();
    mine->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    mine->capacity = ring_capacity_.load(std::memory_order_relaxed);
    mine->buf.reserve(std::min<std::size_t>(mine->capacity, 1024));
    std::lock_guard<std::mutex> lk(rings_mu_);
    rings_.push_back(mine);
  }
  return *mine;
}

void Tracer::record(TraceEvent ev) {
  Ring& r = ring();
  std::lock_guard<std::mutex> lk(r.mu);
  ev.tid = r.tid;
  ++r.recorded;
  if (r.buf.size() < r.capacity) {
    r.buf.push_back(std::move(ev));
  } else {
    r.buf[r.next] = std::move(ev);
    r.next = (r.next + 1) % r.capacity;
    ++r.dropped;
  }
}

void Tracer::complete(std::string_view cat, std::string_view name,
                      std::uint64_t start_ns, std::uint64_t dur_ns,
                      std::string_view arg_name, std::int64_t arg_value,
                      std::string_view sarg_name, std::string_view sarg_value) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::string(name);
  ev.cat = std::string(cat);
  ev.ph = 'X';
  ev.ts_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.arg_name = std::string(arg_name);
  ev.arg_value = arg_value;
  ev.sarg_name = std::string(sarg_name);
  ev.sarg_value = std::string(sarg_value);
  record(std::move(ev));
}

void Tracer::instant(std::string_view cat, std::string_view name,
                     std::string_view arg_name, std::int64_t arg_value) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::string(name);
  ev.cat = std::string(cat);
  ev.ph = 'i';
  ev.ts_ns = now_ns();
  ev.arg_name = std::string(arg_name);
  ev.arg_value = arg_value;
  record(std::move(ev));
}

std::string Tracer::chrome_json() const {
  // Snapshot every ring under its lock, then sort and render unlocked.
  std::vector<TraceEvent> events;
  std::uint64_t total_dropped = 0;
  {
    std::lock_guard<std::mutex> lk(rings_mu_);
    for (const auto& rp : rings_) {
      std::lock_guard<std::mutex> rlk(rp->mu);
      events.insert(events.end(), rp->buf.begin(), rp->buf.end());
      total_dropped += rp->dropped;
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });

  support::JsonWriter j;
  j.obj_open();
  j.arr_open("traceEvents");
  for (const TraceEvent& ev : events) {
    j.obj_open()
        .field("name", ev.name)
        .field("cat", ev.cat)
        .field("ph", std::string(1, ev.ph))
        // Chrome trace-event timestamps are microseconds (double).
        .field("ts", static_cast<double>(ev.ts_ns) / 1000.0);
    if (ev.ph == 'X') {
      j.field("dur", static_cast<double>(ev.dur_ns) / 1000.0);
    } else {
      j.field("s", "t");  // instant scope: thread
    }
    j.field("pid", 1).field("tid", ev.tid);
    if (!ev.arg_name.empty() || !ev.sarg_name.empty()) {
      j.obj_open("args");
      if (!ev.arg_name.empty()) j.field(ev.arg_name, ev.arg_value);
      if (!ev.sarg_name.empty()) j.field(ev.sarg_name, ev.sarg_value);
      j.obj_close();
    }
    j.obj_close();
  }
  j.arr_close();
  j.field("displayTimeUnit", "ms");
  j.obj_open("otherData")
      .field("producer", "lucidc")
      .field("dropped_events", total_dropped)
      .obj_close();
  j.obj_close();
  return j.str() + "\n";
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(rings_mu_);
  for (const auto& rp : rings_) {
    std::lock_guard<std::mutex> rlk(rp->mu);
    rp->buf.clear();
    rp->next = 0;
    rp->recorded = 0;
    rp->dropped = 0;
    // Pick up a capacity change from a later enable() on reuse.
    rp->capacity = ring_capacity_.load(std::memory_order_relaxed);
  }
}

std::uint64_t Tracer::retained() const {
  std::lock_guard<std::mutex> lk(rings_mu_);
  std::uint64_t n = 0;
  for (const auto& rp : rings_) {
    std::lock_guard<std::mutex> rlk(rp->mu);
    n += rp->buf.size();
  }
  return n;
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lk(rings_mu_);
  std::uint64_t n = 0;
  for (const auto& rp : rings_) {
    std::lock_guard<std::mutex> rlk(rp->mu);
    n += rp->recorded;
  }
  return n;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lk(rings_mu_);
  std::uint64_t n = 0;
  for (const auto& rp : rings_) {
    std::lock_guard<std::mutex> rlk(rp->mu);
    n += rp->dropped;
  }
  return n;
}

}  // namespace lucid::obs
