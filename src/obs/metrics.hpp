// Observability, layer 1: a low-overhead process-wide metrics registry.
//
// Lucid's whole pitch is data-plane *visibility*, so the system instruments
// itself with the same discipline it compiles into switches. Three
// instrument kinds, all lock-free on the update path:
//
//   Counter    monotonic u64 (relaxed fetch_add)
//   Gauge      signed i64 level (relaxed set/add)
//   Histogram  fixed 65-bucket log2 histogram over u64 values: bucket 0
//              counts exact zeros, bucket k (1..64) counts values in
//              [2^(k-1), 2^k). Exact sum / count / min / max ride along, so
//              means are exact even though quantiles are bucket-estimated.
//
// `Registry::global()` hands out instruments by name; the returned
// references are stable for the process lifetime, so hot paths resolve once
// at construction and pay only relaxed atomics per update. Snapshots render
// to JSON (the shared support::JsonWriter path, same as `--time-passes=json`
// and the bench files) and to the Prometheus text exposition format
// (`lucidc --metrics-out=FILE.prom`; tools/validate_obs.py checks it).
//
// Naming convention: `lucid_<layer>_<what>[_total|_ns|...]`, Prometheus
// charset only ([a-zA-Z0-9_:]); the registry sanitizes anything else to '_'.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lucid::obs {

/// Prometheus-style labels: ordered key/value pairs. Instruments with the
/// same name but different labels are distinct series of one metric family
/// (e.g. `lucid_native_shard_packets_total{shard="3"}`).
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed histogram over u64 values. 65 buckets: bucket 0 holds exact
/// zeros; bucket k (1..64) holds values v with 2^(k-1) <= v < 2^k (i.e.
/// bit_width(v) == k). Updates are a handful of relaxed atomic RMWs; there
/// is no lock anywhere.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  /// Bucket index for a value: bit_width(v) (0 for v == 0).
  [[nodiscard]] static int bucket_of(std::uint64_t v) {
    int w = 0;
    while (v != 0) {
      v >>= 1;
      ++w;
    }
    return w;
  }
  /// Inclusive upper bound of bucket k (2^k - 1; u64 max for k == 64).
  [[nodiscard]] static std::uint64_t bucket_upper(int k) {
    if (k >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << k) - 1;
  }

  void observe(std::uint64_t v) {
    buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    atomic_min(min_, v);
    atomic_max(max_, v);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// Wrapping u64 sum of observed values (wraps only past 2^64 total — fine
  /// for the nanosecond/size scales recorded here).
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum()) / static_cast<double>(n);
  }
  /// u64 max when empty (never observed), so min() <= max() iff non-empty.
  [[nodiscard]] std::uint64_t min() const {
    return min_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket_count(int k) const {
    return buckets_[static_cast<std::size_t>(k)].load(
        std::memory_order_relaxed);
  }

  /// Bucket-estimated quantile (q in [0,1]): finds the bucket holding the
  /// q-th observation and interpolates linearly inside it. Exact for
  /// count==0 (returns 0) and clamped by the observed min/max.
  [[nodiscard]] double quantile(double q) const;

  void reset();

 private:
  static void atomic_min(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v < cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

class Registry {
 public:
  /// The process-wide default registry (every instrument in the tree lives
  /// here; tests may construct private registries).
  [[nodiscard]] static Registry& global();

  /// Looks up or creates an instrument. The returned reference is stable for
  /// the registry's lifetime — hot paths resolve once and keep the pointer.
  /// `help` is recorded on first registration only. Thread-safe.
  Counter& counter(std::string_view name, std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view help = "");
  Histogram& histogram(std::string_view name, std::string_view help = "");

  /// Labeled variants: one series per distinct label set within the `name`
  /// family. Help is shared across the family (first registration wins).
  Counter& counter(std::string_view name, const Labels& labels,
                   std::string_view help = "");
  Gauge& gauge(std::string_view name, const Labels& labels,
               std::string_view help = "");
  Histogram& histogram(std::string_view name, const Labels& labels,
                       std::string_view help = "");

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, min, max, mean, p50, p99, buckets}}}.
  [[nodiscard]] std::string json() const;

  /// Prometheus text exposition format (HELP/TYPE lines, histogram
  /// cumulative le-buckets with +Inf, _sum and _count).
  [[nodiscard]] std::string prometheus() const;

  /// Zeroes every registered instrument (names and help stay registered, so
  /// cached pointers remain valid). Tests and benches scoping a measurement.
  void reset();

 private:
  /// Prometheus-legal name: [a-zA-Z_:][a-zA-Z0-9_:]*; everything else '_'.
  static std::string sanitize(std::string_view name);
  /// Rendered `k="v",...` suffix (sanitized keys, escaped values); empty for
  /// no labels.
  static std::string render_labels(const Labels& labels);

  struct Entry {
    std::string family;  // sanitized metric name, shared across label sets
    std::string labels;  // rendered label body ("" for the unlabeled series)
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry_for(std::string_view name, const Labels* labels,
                   std::string_view help);

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace lucid::obs
