#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "support/json.hpp"

namespace lucid::obs {

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (0-based), then walk the buckets.
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(n - 1));
  std::uint64_t seen = 0;
  for (int k = 0; k < kBuckets; ++k) {
    const std::uint64_t c = bucket_count(k);
    if (c == 0) continue;
    if (seen + c > rank) {
      // Linear interpolation inside [lo, hi] by the rank's position within
      // this bucket's observations.
      const double lo = k == 0 ? 0.0
                               : static_cast<double>(bucket_upper(k - 1)) + 1;
      const double hi = static_cast<double>(bucket_upper(k));
      const double frac = c == 1 ? 0.0
                                 : static_cast<double>(rank - seen) /
                                       static_cast<double>(c - 1);
      double est = lo + (hi - lo) * frac;
      // The exact extrema bound the estimate.
      est = std::min(est, static_cast<double>(max()));
      est = std::max(est, static_cast<double>(min()));
      return est;
    }
    seen += c;
  }
  return static_cast<double>(max());
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry& Registry::global() {
  static Registry* r = new Registry();  // leaked: outlives static teardown
  return *r;
}

std::string Registry::sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9' && !out.empty()) || c == '_' ||
                    c == ':';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

std::string Registry::render_labels(const Labels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ',';
    out += sanitize(k);
    out += "=\"";
    // Prometheus label-value escaping: backslash, quote, newline.
    for (const char c : v) {
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += '"';
  }
  return out;
}

Registry::Entry& Registry::entry_for(std::string_view name,
                                     const Labels* labels,
                                     std::string_view help) {
  // Callers hold mu_.
  const std::string family = sanitize(name);
  std::string rendered;
  if (labels != nullptr && !labels->empty()) {
    rendered = render_labels(*labels);
  }
  std::string key = family;
  if (!rendered.empty()) key += "{" + rendered + "}";
  Entry& e = entries_[key];
  if (e.family.empty()) {
    e.family = family;
    e.labels = std::move(rendered);
  }
  if (e.help.empty()) e.help = std::string(help);
  return e;
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry& e = entry_for(name, nullptr, help);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry& e = entry_for(name, nullptr, help);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry& e = entry_for(name, nullptr, help);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>();
  return *e.histogram;
}

Counter& Registry::counter(std::string_view name, const Labels& labels,
                           std::string_view help) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry& e = entry_for(name, &labels, help);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& Registry::gauge(std::string_view name, const Labels& labels,
                       std::string_view help) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry& e = entry_for(name, &labels, help);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& Registry::histogram(std::string_view name, const Labels& labels,
                               std::string_view help) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry& e = entry_for(name, &labels, help);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>();
  return *e.histogram;
}

std::string Registry::json() const {
  std::lock_guard<std::mutex> lk(mu_);
  support::JsonWriter j;
  j.obj_open();
  j.obj_open("counters");
  for (const auto& [name, e] : entries_) {
    if (e.counter) j.field(name, e.counter->value());
  }
  j.obj_close();
  j.obj_open("gauges");
  for (const auto& [name, e] : entries_) {
    if (e.gauge) j.field(name, e.gauge->value());
  }
  j.obj_close();
  j.obj_open("histograms");
  for (const auto& [name, e] : entries_) {
    if (!e.histogram) continue;
    const Histogram& h = *e.histogram;
    j.obj_open(name)
        .field("count", h.count())
        .field("sum", h.sum())
        .field("mean", h.mean());
    if (h.count() > 0) {
      j.field("min", h.min())
          .field("max", h.max())
          .field("p50", h.quantile(0.50))
          .field("p99", h.quantile(0.99));
    }
    // Sparse buckets: [le_inclusive, count] pairs for non-empty buckets.
    j.arr_open("buckets");
    for (int k = 0; k < Histogram::kBuckets; ++k) {
      const std::uint64_t c = h.bucket_count(k);
      if (c == 0) continue;
      j.arr_open().item(Histogram::bucket_upper(k)).item(c).arr_close();
    }
    j.arr_close().obj_close();
  }
  j.obj_close();
  j.obj_close();
  return j.str() + "\n";
}

std::string Registry::prometheus() const {
  std::lock_guard<std::mutex> lk(mu_);
  // Group series by family: the key-sorted map can interleave families
  // ("foo_bar" sorts between "foo" and "foo{shard=...}"), but the exposition
  // format wants one HELP/TYPE block with every series of a family under it.
  std::map<std::string, std::vector<const Entry*>> families;
  for (const auto& [key, e] : entries_) {
    (void)key;
    families[e.family].push_back(&e);
  }
  std::ostringstream os;
  os.precision(17);
  for (const auto& [family, series] : families) {
    // Full sample name: family plus the series' label set.
    auto sample = [&](const Entry& e, const char* suffix,
                      const std::string& extra_label) -> std::ostream& {
      os << family << suffix;
      if (!e.labels.empty() || !extra_label.empty()) {
        os << '{' << e.labels;
        if (!e.labels.empty() && !extra_label.empty()) os << ',';
        os << extra_label << '}';
      }
      return os << ' ';
    };
    for (const Entry* e : series) {
      if (!e->help.empty()) {
        os << "# HELP " << family << " " << e->help << "\n";
        break;
      }
    }
    for (const char* kind : {"counter", "gauge", "histogram"}) {
      bool typed = false;
      for (const Entry* e : series) {
        const bool has = (kind[0] == 'c' && e->counter) ||
                         (kind[0] == 'g' && e->gauge) ||
                         (kind[0] == 'h' && e->histogram);
        if (!has) continue;
        if (!typed) {
          os << "# TYPE " << family << " " << kind << "\n";
          typed = true;
        }
        if (kind[0] == 'c') {
          sample(*e, "", "") << e->counter->value() << "\n";
        } else if (kind[0] == 'g') {
          sample(*e, "", "") << e->gauge->value() << "\n";
        } else {
          const Histogram& h = *e->histogram;
          std::uint64_t cum = 0;
          for (int k = 0; k < Histogram::kBuckets; ++k) {
            cum += h.bucket_count(k);
            // Only emit the populated prefix plus a closing bucket per power
            // of two actually reached — all 65 rows for every histogram
            // would dominate the exposition. Always emit le="0" and the last
            // bucket before +Inf so the cumulative series is well formed.
            if (h.bucket_count(k) != 0 || k == 0) {
              sample(*e, "_bucket",
                     "le=\"" + std::to_string(Histogram::bucket_upper(k)) +
                         "\"")
                  << cum << "\n";
            }
          }
          sample(*e, "_bucket", "le=\"+Inf\"") << h.count() << "\n";
          sample(*e, "_sum", "") << h.sum() << "\n";
          sample(*e, "_count", "") << h.count() << "\n";
        }
      }
    }
  }
  return os.str();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, e] : entries_) {
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->reset();
    if (e.histogram) e.histogram->reset();
  }
}

}  // namespace lucid::obs
