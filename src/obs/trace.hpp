// Observability, layer 2: a structured tracer.
//
// Per-thread ring buffers of span ('X', complete) and instant ('i') events,
// exported as Chrome trace-event JSON — the format Perfetto (and
// chrome://tracing) loads directly. Design goals, in order:
//
//   1. Near-zero cost when disabled: every entry point starts with one
//      relaxed atomic load. ScopedSpan does not even read the clock unless
//      tracing is on AND this call was sampled.
//   2. No observable effect on the system under trace: recording touches
//      only the tracer's own state (tests/test_obs.cpp proves register
//      state and event counters are byte-identical with tracing on vs off).
//   3. Bounded memory: each thread owns a fixed-capacity ring; once full,
//      the oldest events are overwritten and counted as dropped.
//
// Sampling is per-thread and deterministic: `sample_every = N` records every
// N-th sampled-category event (1 = everything). Spans decide at *entry*, so
// a sampled span always carries a real duration.
//
// Ring writes take a per-thread mutex (uncontended except during export),
// which keeps concurrent enable/disable/export TSan-clean — the lock-free
// budget is spent on the metrics registry, where the per-packet updates
// live; trace record rates are bounded by sampling.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lucid::obs {

struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';            // 'X' complete span, 'i' instant
  std::uint64_t ts_ns = 0;  // steady-clock ns since process trace epoch
  std::uint64_t dur_ns = 0; // 'X' only
  std::uint32_t tid = 0;
  /// Optional single argument (rendered under "args" in the export).
  std::string arg_name;     // empty = none
  std::int64_t arg_value = 0;
  std::string sarg_name;    // optional string argument
  std::string sarg_value;
};

struct TracerConfig {
  /// Events retained per thread before the oldest are overwritten.
  std::size_t ring_capacity = 1 << 16;
  /// Record every N-th event per thread (1 = record everything).
  std::uint32_t sample_every = 1;
};

class Tracer {
 public:
  [[nodiscard]] static Tracer& global();

  /// Steady-clock nanoseconds since the process trace epoch.
  [[nodiscard]] static std::uint64_t now_ns();

  /// (Re-)enables recording. Existing ring contents are kept (clear() to
  /// drop them); capacity applies to rings created after the call.
  void enable(TracerConfig cfg = {});
  void disable();
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Per-thread sampling decision: true when this call is selected under the
  /// current sample_every. Callers that already sampled (ScopedSpan) record
  /// through the unsampled sinks below.
  [[nodiscard]] bool sample();

  /// Record sinks. No-ops when disabled; NOT re-sampled (pair with
  /// sample()). The string views are copied into the ring.
  void complete(std::string_view cat, std::string_view name,
                std::uint64_t start_ns, std::uint64_t dur_ns,
                std::string_view arg_name = {}, std::int64_t arg_value = 0,
                std::string_view sarg_name = {},
                std::string_view sarg_value = {});
  void instant(std::string_view cat, std::string_view name,
               std::string_view arg_name = {}, std::int64_t arg_value = 0);

  /// Sampled instant convenience (enabled + sample + record).
  void mark(std::string_view cat, std::string_view name,
            std::string_view arg_name = {}, std::int64_t arg_value = 0) {
    if (!enabled() || !sample()) return;
    instant(cat, name, arg_name, arg_value);
  }

  /// Chrome trace-event JSON ({"traceEvents": [...], ...}): every ring's
  /// retained events merged and sorted by timestamp. Safe to call while
  /// other threads keep recording (their rings are briefly locked).
  [[nodiscard]] std::string chrome_json() const;

  /// Drops all retained events (rings stay registered).
  void clear();

  /// Events currently retained / recorded since clear / dropped by ring
  /// overwrite, summed across threads.
  [[nodiscard]] std::uint64_t retained() const;
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  struct Ring {
    std::mutex mu;
    std::uint32_t tid = 0;
    std::size_t capacity = 0;
    std::vector<TraceEvent> buf;  // grows to capacity, then wraps
    std::size_t next = 0;         // overwrite cursor once full
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
  };

  Ring& ring();
  void record(TraceEvent ev);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> sample_every_{1};
  std::atomic<std::size_t> ring_capacity_{1 << 16};
  std::atomic<std::uint32_t> next_tid_{1};

  mutable std::mutex rings_mu_;
  std::vector<std::shared_ptr<Ring>> rings_;
};

/// RAII span: samples at construction; if selected, records a complete event
/// covering the scope at destruction. Safe to construct when tracing is
/// disabled (cost: one relaxed load).
class ScopedSpan {
 public:
  ScopedSpan(std::string_view cat, std::string_view name) {
    Tracer& t = Tracer::global();
    if (!t.enabled() || !t.sample()) return;
    live_ = true;
    cat_ = cat;
    name_ = name;
    start_ = Tracer::now_ns();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (!live_) return;
    Tracer::global().complete(cat_, name_, start_,
                              Tracer::now_ns() - start_, arg_name_,
                              arg_value_, sarg_name_, sarg_value_);
  }

  /// Attach one integer and/or one string argument (last call wins).
  void arg(std::string_view name, std::int64_t value) {
    if (!live_) return;
    arg_name_ = name;
    arg_value_ = value;
  }
  void arg(std::string_view name, std::string_view value) {
    if (!live_) return;
    sarg_name_ = name;
    sarg_value_ = std::string(value);
  }

  [[nodiscard]] bool live() const { return live_; }

 private:
  bool live_ = false;
  std::string_view cat_;
  std::string_view name_;
  std::uint64_t start_ = 0;
  std::string_view arg_name_;
  std::int64_t arg_value_ = 0;
  std::string_view sarg_name_;
  std::string sarg_value_;
};

}  // namespace lucid::obs
