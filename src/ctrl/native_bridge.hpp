// DataPlane adapter over the native execution engine — the sibling of
// interp_bridge.hpp promised there ("a future native execution engine
// provides its own DataPlane and reuses ControlPlane unchanged"). The
// ControlPlane, batching model, and apply-point discipline are untouched:
// native::Runtime installs its executor on the same sched::EventScheduler,
// so control batches still apply only at event boundaries.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "ctrl/control_plane.hpp"
#include "native/engine.hpp"
#include "native/fleet.hpp"

namespace lucid::ctrl {

/// Drives native-engine register state. The native Runtime has no array
/// aliasing (generated code references arrays by slot), so lookups resolve
/// declared names directly against the switch, memoized like the interp
/// adapter — register arrays are created once at Runtime construction and
/// never move.
class NativeDataPlane final : public DataPlane {
 public:
  explicit NativeDataPlane(native::Runtime& rt) : rt_(rt) {}

  [[nodiscard]] bool has_array(const std::string& name) const override {
    return lookup(name) != nullptr;
  }
  [[nodiscard]] std::int64_t array_size(
      const std::string& name) const override {
    const pisa::RegisterArray* a = lookup(name);
    return a == nullptr ? -1 : a->size();
  }
  bool write(const std::string& array, std::int64_t index,
             Value value) override {
    pisa::RegisterArray* a = lookup(array);
    if (a == nullptr) return false;
    a->set(index, value);
    return true;
  }
  [[nodiscard]] Value read(const std::string& array,
                           std::int64_t index) const override {
    const pisa::RegisterArray* a = lookup(array);
    return a == nullptr ? 0 : a->get(index);
  }
  [[nodiscard]] bool can_inject(const std::string& event,
                                std::size_t arity) const override {
    const ir::EventInfo* ev = rt_.find_event(event);
    return ev != nullptr && ev->params.size() == arity;
  }
  bool inject_event(const std::string& event, std::vector<Value> args,
                    sim::Time delay_ns) override {
    return rt_.inject_control(event, std::move(args), delay_ns);
  }

 private:
  [[nodiscard]] pisa::RegisterArray* lookup(const std::string& name) const {
    const auto it = cache_.find(name);
    if (it != cache_.end()) return it->second;
    pisa::RegisterArray* a = rt_.array(name);
    if (a != nullptr) cache_.emplace(name, a);
    return a;
  }

  native::Runtime& rt_;
  mutable std::unordered_map<std::string, pisa::RegisterArray*> cache_;
};

/// DataPlane over a sharded native::ReplicaFleet. Control tables are
/// *replicated*: a write is broadcast to every shard (each shard masks and
/// wraps identically, so replicas agree), while flow state stays sharded —
/// the same split a multi-pipe hardware deployment makes between
/// control-plane-installed entries and per-pipe registers. Reads come from
/// shard 0, which is authoritative for control-written cells; cells the
/// data path also writes may differ per shard, and callers who care read
/// the shards directly.
///
/// Thread discipline: the ControlPlane applies batches at its scheduler's
/// apply points, and fleet shard state may only be touched while no
/// ReplicaFleet::run_until is in flight — drive the control scheduler and
/// the fleet from the same thread, alternating slices (the TSan-labeled
/// fleet test in tests/test_native.cpp races exactly this arrangement
/// against concurrent submitters).
class FleetDataPlane final : public DataPlane {
 public:
  explicit FleetDataPlane(native::ReplicaFleet& fleet) : fleet_(fleet) {}

  [[nodiscard]] bool has_array(const std::string& name) const override {
    return slot_of(name) >= 0;
  }
  [[nodiscard]] std::int64_t array_size(
      const std::string& name) const override {
    const int slot = slot_of(name);
    if (slot < 0) return -1;
    return static_cast<std::int64_t>(
        fleet_.shard(0).array_cells(static_cast<std::size_t>(slot)).size());
  }
  bool write(const std::string& array, std::int64_t index,
             Value value) override {
    const int slot = slot_of(array);
    if (slot < 0) return false;
    bool ok = true;
    for (int s = 0; s < fleet_.shards(); ++s) {
      ok = fleet_.shard(static_cast<std::size_t>(s))
               .control_write(static_cast<std::size_t>(slot), index, value) &&
           ok;
    }
    return ok;
  }
  [[nodiscard]] Value read(const std::string& array,
                           std::int64_t index) const override {
    const int slot = slot_of(array);
    if (slot < 0) return 0;
    return fleet_.shard(0).control_read(static_cast<std::size_t>(slot),
                                        index);
  }
  [[nodiscard]] bool can_inject(const std::string& event,
                                std::size_t arity) const override {
    const ir::EventInfo* ev = fleet_.program().find_event(event);
    return ev != nullptr && ev->params.size() == arity;
  }
  bool inject_event(const std::string& event, std::vector<Value> args,
                    sim::Time delay_ns) override {
    // Control injections route like any other flow, scheduled relative to
    // the fleet clock (all shards agree on it between run slices).
    return fleet_.schedule_inject(fleet_.now() + delay_ns, event,
                                  std::move(args));
  }

 private:
  [[nodiscard]] int slot_of(const std::string& name) const {
    const auto& index = fleet_.program().ir().array_index;
    const auto it = index.find(name);
    return it == index.end() ? -1 : it->second;
  }

  native::ReplicaFleet& fleet_;
};

/// Owns the adapter and the plane for the common single-node case —
/// the native twin of RuntimeControl:
///
///   ctrl::NativeControl nc(rt);
///   nc.plane().submit(batch);
class NativeControl {
 public:
  explicit NativeControl(native::Runtime& rt, ControlPlaneConfig cfg = {})
      : dp_(rt), plane_(dp_, rt.node(), cfg) {}

  [[nodiscard]] ControlPlane& plane() { return plane_; }
  [[nodiscard]] NativeDataPlane& dataplane() { return dp_; }

 private:
  NativeDataPlane dp_;
  ControlPlane plane_;
};

}  // namespace lucid::ctrl
