#include "ctrl/control_plane.hpp"

#include <algorithm>
#include <limits>

namespace lucid::ctrl {

ControlPlane::ControlPlane(DataPlane& dp, sched::EventScheduler& sched,
                           ControlPlaneConfig cfg)
    : dp_(dp),
      sched_(sched),
      cfg_(cfg),
      alive_(std::make_shared<bool>(true)),
      wall_start_(SteadyClock::now()) {
  boundary_now_ = sim().now();
  auto& reg = obs::Registry::global();
  m_apply_latency_ = &reg.histogram(
      "lucid_ctrl_apply_latency_ns",
      "Submit-to-apply latency of accepted control-plane batches (sim ns)");
  m_batch_ops_ = &reg.histogram("lucid_ctrl_batch_ops",
                                "Operations per applied control-plane batch");
  m_applied_ = &reg.counter("lucid_ctrl_batches_applied_total",
                            "Control-plane batches applied");
  m_rejected_ = &reg.counter("lucid_ctrl_batches_rejected_total",
                             "Control-plane batches rejected by validation");
  m_writes_ = &reg.counter("lucid_ctrl_register_writes_total",
                           "Register writes applied by the control plane");
  sched_.set_apply_point([this] { on_apply_point(); });
  arm_tick();
}

ControlPlane::~ControlPlane() {
  *alive_ = false;
  sched_.set_apply_point(nullptr);
}

void ControlPlane::submit(UpdateBatch batch) {
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.batches_submitted;
  Pending item;
  item.submitted_ns = boundary_now_;
  item.batch = std::move(batch);
  queue_.push_back(std::move(item));
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
}

void ControlPlane::write(std::string array, std::int64_t index,
                         Value value) {
  UpdateBatch b;
  b.writes.push_back(RegWrite{std::move(array), index, value});
  submit(std::move(b));
}

void ControlPlane::post_event(std::string event, std::vector<Value> args,
                              sim::Time delay_ns) {
  UpdateBatch b;
  b.events.push_back(EventPost{std::move(event), std::move(args), delay_ns});
  submit(std::move(b));
}

std::size_t ControlPlane::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

void ControlPlane::flush() {
  drain(std::numeric_limits<std::size_t>::max());
}

void ControlPlane::on_apply_point() {
  drain(cfg_.max_ops_per_apply);
}

void ControlPlane::drain(std::size_t budget) {
  // A drained batch may raise control events, whose packets land back on
  // the simulator queue — never re-entering here synchronously — but guard
  // against recursive apply points anyway.
  if (draining_) return;
  draining_ = true;
  const sim::Time now = sim().now();
  std::size_t spent = 0;
  sim::Time commit_cost = 0;
  for (;;) {
    Pending item;
    {
      std::lock_guard<std::mutex> lk(mu_);
      boundary_now_ = now;
      if (queue_.empty()) break;
      const std::size_t ops = queue_.front().batch.ops();
      // The budget never splits a batch: at least one batch applies per
      // boundary, further ones only while the budget lasts.
      if (spent != 0 && spent + ops > budget) break;
      item = std::move(queue_.front());
      queue_.pop_front();
      spent += ops;
    }
    apply_one(std::move(item), &commit_cost);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.apply_points;
    stats_.update_path_busy_ns += commit_cost;
  }
  if (commit_cost > 0) sched_.node().stall_pipeline(commit_cost);
  draining_ = false;
}

void ControlPlane::apply_one(Pending item, sim::Time* commit_cost) {
  const UpdateBatch& b = item.batch;
  BatchResult res;
  res.submitted_ns = item.submitted_ns;
  res.applied_ns = sim().now();

  // Validate every op first: a batch is all-or-nothing.
  std::string err;
  for (const RegWrite& w : b.writes) {
    if (!dp_.has_array(w.array)) {
      err = "unknown array '" + w.array + "'";
      break;
    }
  }
  if (err.empty()) {
    for (const RegRead& r : b.reads) {
      if (!dp_.has_array(r.array)) {
        err = "unknown array '" + r.array + "'";
        break;
      }
    }
  }
  if (err.empty()) {
    for (const EventPost& e : b.events) {
      if (!dp_.can_inject(e.event, e.args.size())) {
        err = "unknown event or arity mismatch '" + e.event + "'";
        break;
      }
    }
  }

  if (!err.empty()) {
    res.applied = false;
    res.error = std::move(err);
    m_rejected_->add();
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.batches_rejected;
  } else {
    for (const RegWrite& w : b.writes) dp_.write(w.array, w.index, w.value);
    res.reads.reserve(b.reads.size());
    for (const RegRead& r : b.reads) {
      res.reads.push_back(dp_.read(r.array, r.index));
    }
    for (const EventPost& e : b.events) {
      dp_.inject_event(e.event, e.args, e.delay_ns);
    }
    res.applied = true;
    *commit_cost +=
        cfg_.batch_overhead_ns +
        cfg_.per_op_ns * static_cast<sim::Time>(b.ops());
    const sim::Time latency =
        std::max<sim::Time>(0, res.applied_ns - res.submitted_ns);
    m_apply_latency_->observe(static_cast<std::uint64_t>(latency));
    m_batch_ops_->observe(static_cast<std::uint64_t>(b.ops()));
    m_applied_->add();
    m_writes_->add(b.writes.size());
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.batches_applied;
    stats_.writes_applied += b.writes.size();
    stats_.reads_served += b.reads.size();
    stats_.events_injected += b.events.size();
    stats_.apply_latency_max_ns =
        std::max(stats_.apply_latency_max_ns, latency);
    latency_samples_.push_back(latency);
  }
  if (b.on_done) b.on_done(res);
}

void ControlPlane::arm_tick() {
  if (cfg_.tick_ns <= 0) return;
  sim().after(cfg_.tick_ns, [this, alive = alive_] {
    if (!*alive) return;
    on_apply_point();
    arm_tick();
  });
}

ControlPlaneStats ControlPlane::snapshot() const {
  std::vector<sim::Time> samples;
  ControlPlaneStats out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    out = stats_;
    out.queue_depth = queue_.size();
    samples = latency_samples_;
  }
  if (!samples.empty()) {
    double sum = 0;
    for (const sim::Time s : samples) sum += static_cast<double>(s);
    out.apply_latency_mean_ns = sum / static_cast<double>(samples.size());
    const auto idx = static_cast<std::size_t>(
        0.99 * static_cast<double>(samples.size() - 1));
    std::nth_element(samples.begin(),
                     samples.begin() + static_cast<std::ptrdiff_t>(idx),
                     samples.end());
    out.apply_latency_p99_ns =
        static_cast<double>(samples[idx]);
  }
  const double wall_s = ms_since(wall_start_) / 1000.0;
  if (wall_s > 0) {
    out.wall_installs_per_sec =
        static_cast<double>(out.writes_applied) / wall_s;
  }
  if (out.update_path_busy_ns > 0) {
    out.modeled_installs_per_sec =
        static_cast<double>(out.writes_applied) * 1e9 /
        static_cast<double>(out.update_path_busy_ns);
  }
  return out;
}

void ControlPlane::reset_stats() {
  std::lock_guard<std::mutex> lk(mu_);
  stats_ = ControlPlaneStats{};
  latency_samples_.clear();
  wall_start_ = SteadyClock::now();
}

}  // namespace lucid::ctrl
