// DataPlane adapter over the interpreter Runtime, plus the convenience
// bundle (`RuntimeControl`) that wires a ControlPlane to a Testbed node in
// one line. A future native execution engine provides its own DataPlane and
// reuses ControlPlane unchanged.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "ctrl/control_plane.hpp"
#include "interp/runtime.hpp"

namespace lucid::ctrl {

/// Drives interpreter register state. Array lookups resolve through the
/// Runtime's aliased-array resolution (between handler executions the alias
/// map is empty, so names mean exactly the declared globals) and are
/// memoized — register arrays are created once at Runtime construction and
/// never move.
class InterpDataPlane final : public DataPlane {
 public:
  explicit InterpDataPlane(interp::Runtime& rt) : rt_(rt) {}

  [[nodiscard]] bool has_array(const std::string& name) const override {
    return lookup(name) != nullptr;
  }
  [[nodiscard]] std::int64_t array_size(
      const std::string& name) const override {
    const pisa::RegisterArray* a = lookup(name);
    return a == nullptr ? -1 : a->size();
  }
  bool write(const std::string& array, std::int64_t index,
             Value value) override {
    pisa::RegisterArray* a = lookup(array);
    if (a == nullptr) return false;
    a->set(index, value);
    return true;
  }
  [[nodiscard]] Value read(const std::string& array,
                           std::int64_t index) const override {
    const pisa::RegisterArray* a = lookup(array);
    return a == nullptr ? 0 : a->get(index);
  }
  [[nodiscard]] bool can_inject(const std::string& event,
                                std::size_t arity) const override {
    const frontend::EventDecl* ev = rt_.find_event(event);
    return ev != nullptr && ev->params.size() == arity;
  }
  bool inject_event(const std::string& event, std::vector<Value> args,
                    sim::Time delay_ns) override {
    return rt_.inject_control(event, std::move(args), delay_ns);
  }

 private:
  [[nodiscard]] pisa::RegisterArray* lookup(const std::string& name) const {
    const auto it = cache_.find(name);
    if (it != cache_.end()) return it->second;
    pisa::RegisterArray* a = rt_.resolve_array(name);
    if (a != nullptr) cache_.emplace(name, a);
    return a;
  }

  interp::Runtime& rt_;
  mutable std::unordered_map<std::string, pisa::RegisterArray*> cache_;
};

/// Owns the adapter and the plane for the common single-node case:
///
///   ctrl::RuntimeControl rc(tb.node(1));
///   rc.plane().submit(batch);
class RuntimeControl {
 public:
  explicit RuntimeControl(interp::Runtime& rt, ControlPlaneConfig cfg = {})
      : dp_(rt), plane_(dp_, rt.node(), cfg) {}

  [[nodiscard]] ControlPlane& plane() { return plane_; }
  [[nodiscard]] InterpDataPlane& dataplane() { return dp_; }

 private:
  InterpDataPlane dp_;
  ControlPlane plane_;
};

}  // namespace lucid::ctrl
