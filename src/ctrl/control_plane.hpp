// The runtime control plane (ROADMAP "Runtime control plane with batched
// table updates"; RBFRT in PAPERS.md): batched register/array updates and
// control-event injection decoupled from the packet path.
//
// Architecture:
//
//   - `DataPlane` is the state surface being driven — registers to read and
//     write, Lucid control events to raise. The interpreter adapter lives in
//     ctrl/interp_bridge.hpp; a future native execution engine implements
//     the same interface and slots in unchanged.
//   - `ControlPlane` owns an asynchronous update queue. `submit()` is
//     thread-safe and never touches data-plane state itself; queued batches
//     are applied only at *apply points* — event-scheduler boundaries
//     (right after a handler execution completes, plus a periodic control
//     tick so batches drain under zero traffic). In-flight packet
//     processing is therefore never disturbed mid-handler: a handler either
//     sees none of a batch or all of it (per-batch atomicity).
//   - A batch with any invalid op (unknown array/event, arity mismatch) is
//     rejected whole; no partial application.
//   - Each committed batch models the hardware cost of a control-plane
//     update message (`batch_overhead_ns + per_op_ns * ops`) by occupying
//     the switch pipeline (`pisa::Switch::stall_pipeline`), which is what
//     the packet-path-disturbance benchmark measures. `max_ops_per_apply`
//     bounds how much of that cost a single apply point may incur.
//
// Everything except `submit`/`write`/`post_event`/`pending`/`snapshot` must
// run on the simulation thread.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sched/scheduler.hpp"
#include "support/chrono.hpp"

namespace lucid::ctrl {

using Value = std::int64_t;

/// The state surface a control plane drives. Implemented over the
/// interpreter today (ctrl/interp_bridge.hpp); a native engine implements
/// the same interface tomorrow.
class DataPlane {
 public:
  virtual ~DataPlane() = default;

  [[nodiscard]] virtual bool has_array(const std::string& name) const = 0;
  /// Cell count, or -1 when the array is unknown.
  [[nodiscard]] virtual std::int64_t array_size(
      const std::string& name) const = 0;
  /// Width-masked write (index wraps like hardware SRAM addressing).
  virtual bool write(const std::string& array, std::int64_t index,
                     Value value) = 0;
  [[nodiscard]] virtual Value read(const std::string& array,
                                   std::int64_t index) const = 0;

  [[nodiscard]] virtual bool can_inject(const std::string& event,
                                        std::size_t arity) const = 0;
  /// Raise a Lucid control event from the control plane (enters through
  /// the switch-CPU path, not a front-panel port).
  virtual bool inject_event(const std::string& event,
                            std::vector<Value> args, sim::Time delay_ns) = 0;
};

// ---------------------------------------------------------------------------
// Batches
// ---------------------------------------------------------------------------

struct RegWrite {
  std::string array;
  std::int64_t index = 0;
  Value value = 0;
};

struct RegRead {
  std::string array;
  std::int64_t index = 0;
};

struct EventPost {
  std::string event;
  std::vector<Value> args;
  sim::Time delay_ns = 0;
};

struct BatchResult {
  bool applied = false;
  std::string error;          // set when the batch was rejected
  std::vector<Value> reads;   // parallel to UpdateBatch::reads
  sim::Time submitted_ns = 0; // control-plane clock at submit (see note)
  sim::Time applied_ns = 0;   // sim clock at the apply point
};

/// One atomic unit of control-plane work: all writes land, all reads are
/// served from the same quiescent state, and all events are raised at one
/// apply point — or (on validation failure) nothing happens at all.
struct UpdateBatch {
  std::vector<RegWrite> writes;
  std::vector<RegRead> reads;
  std::vector<EventPost> events;
  /// Invoked on the simulation thread after the batch commits or rejects.
  std::function<void(const BatchResult&)> on_done;

  [[nodiscard]] std::size_t ops() const {
    return writes.size() + reads.size() + events.size();
  }
};

// ---------------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------------

struct ControlPlaneConfig {
  /// Drain period under zero traffic (handler executions are the other,
  /// traffic-driven apply points).
  sim::Time tick_ns = 50 * sim::kUs;
  /// Disturbance budget: max ops committed per apply point. An oversized
  /// batch still applies whole (atomicity beats the budget), but nothing
  /// further joins it at that boundary.
  std::size_t max_ops_per_apply = 8192;
  /// Modeled hardware cost of one committed update message: roughly a
  /// pipeline pass, like a recirculation (cf. SwitchConfig) ...
  sim::Time batch_overhead_ns = 600;
  /// ... plus a per-word register write cost. Set both to 0 to disable the
  /// pipeline-occupancy model entirely.
  sim::Time per_op_ns = 4;
};

struct ControlPlaneStats {
  std::uint64_t batches_submitted = 0;
  std::uint64_t batches_applied = 0;
  std::uint64_t batches_rejected = 0;
  std::uint64_t writes_applied = 0;
  std::uint64_t reads_served = 0;
  std::uint64_t events_injected = 0;
  /// Boundaries at which the queue was drained (traffic + ticks + flushes).
  std::uint64_t apply_points = 0;
  std::size_t queue_depth = 0;
  std::size_t max_queue_depth = 0;
  /// Total modeled update-path occupancy (sum of per-batch commit costs).
  sim::Time update_path_busy_ns = 0;
  /// Submit→apply latency over committed batches, in control-plane time.
  double apply_latency_mean_ns = 0;
  double apply_latency_p99_ns = 0;
  sim::Time apply_latency_max_ns = 0;
  /// Register installs per wall-clock second since attach/reset_stats —
  /// the implementation's throughput.
  double wall_installs_per_sec = 0;
  /// Register installs per second of modeled update-path occupancy — the
  /// hardware-model throughput (amortizing batch_overhead_ns is exactly
  /// what batching buys here).
  double modeled_installs_per_sec = 0;
};

class ControlPlane {
 public:
  /// Attaches to the scheduler's apply point and starts the control tick.
  /// One ControlPlane per scheduler (a second attach displaces the first).
  ControlPlane(DataPlane& dp, sched::EventScheduler& sched,
               ControlPlaneConfig cfg = {});
  ~ControlPlane();
  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  /// Queue a batch for application at the next apply point. Thread-safe;
  /// callable from any thread (this is the only mutation path a non-sim
  /// thread may use).
  void submit(UpdateBatch batch);

  /// Single-op conveniences (each is its own batch — the unbatched
  /// baseline in bench_control_plane).
  void write(std::string array, std::int64_t index, Value value);
  void post_event(std::string event, std::vector<Value> args,
                  sim::Time delay_ns = 0);

  [[nodiscard]] std::size_t pending() const;

  /// Drains the whole queue at the current boundary, ignoring the per-apply
  /// budget. Simulation thread only (tests/benches settling).
  void flush();

  [[nodiscard]] ControlPlaneStats snapshot() const;
  void reset_stats();

 private:
  struct Pending {
    UpdateBatch batch;
    sim::Time submitted_ns = 0;
  };

  void on_apply_point();
  void drain(std::size_t budget);
  /// Validates and applies one batch; accumulates the modeled commit cost.
  void apply_one(Pending item, sim::Time* commit_cost);
  void arm_tick();
  [[nodiscard]] sim::Simulator& sim() { return sched_.node().sim(); }

  DataPlane& dp_;
  sched::EventScheduler& sched_;
  ControlPlaneConfig cfg_;
  /// Lets pending tick callbacks notice destruction (sim callbacks cannot
  /// be cancelled).
  std::shared_ptr<bool> alive_;
  bool draining_ = false;

  mutable std::mutex mu_;
  std::deque<Pending> queue_;
  /// Sim clock as of the last apply point: the submit-side timestamp.
  /// Cross-thread submitters cannot read the simulator directly, so their
  /// batches are stamped with the last boundary the control plane saw.
  sim::Time boundary_now_ = 0;
  SteadyClock::time_point wall_start_;
  ControlPlaneStats stats_;
  std::vector<sim::Time> latency_samples_;
  // Process-wide instruments (obs registry). The exact samples above stay
  // authoritative for ControlPlaneStats (exact p99/max); the shared
  // histograms give the cross-component view at log2 resolution.
  obs::Histogram* m_apply_latency_ = nullptr;
  obs::Histogram* m_batch_ops_ = nullptr;
  obs::Counter* m_applied_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::Counter* m_writes_ = nullptr;
};

}  // namespace lucid::ctrl
