// Tests for the Appendix A/B calculus: every typing rule, every reduction
// rule, the canonical stuck-program demonstration, and mechanical checks of
// the soundness theorem (progress + preservation) over thousands of randomly
// generated well-typed terms.
#include <gtest/gtest.h>

#include "calculus/calculus.hpp"
#include "calculus/generator.hpp"

namespace lucid::calculus {
namespace {

GlobalSig int_sig(int n) {
  GlobalSig sig;
  for (int i = 0; i < n; ++i) sig.push_back(Ty::int_ty());
  return sig;
}

std::vector<ExPtr> int_globals(std::initializer_list<std::int64_t> vals) {
  std::vector<ExPtr> g;
  for (const auto v : vals) g.push_back(lit(v));
  return g;
}

// ---------------------------------------------------------------------------
// Typing rules
// ---------------------------------------------------------------------------

TEST(CalculusTyping, LiteralsAndUnitPreserveStage) {
  const auto sig = int_sig(2);
  const auto t = type_of(sig, {}, 3, lit(7));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->type->kind, TyKind::Int);
  EXPECT_EQ(t->end_stage, 3);
  const auto u = type_of(sig, {}, 5, unit());
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->type->kind, TyKind::Unit);
  EXPECT_EQ(u->end_stage, 5);
}

TEST(CalculusTyping, GlobalHasRefTypeAtItsStage) {
  const auto sig = int_sig(3);
  const auto t = type_of(sig, {}, 0, global(2));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->type->kind, TyKind::Ref);
  EXPECT_EQ(t->type->ref_stage, 2);
}

TEST(CalculusTyping, DerefAdvancesStage) {
  const auto sig = int_sig(3);
  const auto t = type_of(sig, {}, 0, deref(global(1)));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->type->kind, TyKind::Int);
  EXPECT_EQ(t->end_stage, 2);  // stage(g1) + 1
}

TEST(CalculusTyping, DerefPastStageIsRejected) {
  const auto sig = int_sig(3);
  // After !g2 (stage -> 3), !g0 is inaccessible.
  const auto t =
      type_of(sig, {}, 0, plus(deref(global(2)), deref(global(0))));
  EXPECT_FALSE(t.has_value());
}

TEST(CalculusTyping, InOrderDerefsAccepted) {
  const auto sig = int_sig(3);
  const auto t =
      type_of(sig, {}, 0, plus(deref(global(0)), deref(global(2))));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->end_stage, 3);
}

TEST(CalculusTyping, UpdateTypesAsUnitAndAdvances) {
  const auto sig = int_sig(2);
  const auto t = type_of(sig, {}, 0, update(global(1), lit(5)));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->type->kind, TyKind::Unit);
  EXPECT_EQ(t->end_stage, 2);
}

TEST(CalculusTyping, UpdateValueMustMatchRefBase) {
  const auto sig = int_sig(2);
  const auto t = type_of(sig, {}, 0, update(global(1), unit()));
  EXPECT_FALSE(t.has_value());
}

TEST(CalculusTyping, UpdateAfterStageIsRejected) {
  const auto sig = int_sig(2);
  // The value expression reads g1 (stage -> 2) before writing g0.
  const auto t = type_of(sig, {}, 0, update(global(0), deref(global(1))));
  EXPECT_FALSE(t.has_value());
}

TEST(CalculusTyping, LambdaTypeRecordsStages) {
  const auto sig = int_sig(3);
  // fun (x : Int, 1) -> x + !g1
  const auto f = lam("x", Ty::int_ty(), 1, plus(var("x"), deref(global(1))));
  const auto t = type_of(sig, {}, 0, f);
  ASSERT_TRUE(t.has_value());
  ASSERT_EQ(t->type->kind, TyKind::Fun);
  EXPECT_EQ(t->type->fun_eps_in, 1);
  EXPECT_EQ(t->type->fun_eps_out, 2);
}

TEST(CalculusTyping, AppChecksStartingStage) {
  const auto sig = int_sig(3);
  const auto f = lam("x", Ty::int_ty(), 1, plus(var("x"), deref(global(1))));
  // Applying after !g2 (stage 3 > eps_in 1) must be rejected.
  const auto bad = type_of(sig, {}, 0, app(f, deref(global(2))));
  EXPECT_FALSE(bad.has_value());
  // Applying at stage 0 with a pure argument is fine.
  const auto good = type_of(sig, {}, 0, app(f, lit(3)));
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(good->end_stage, 2);
}

TEST(CalculusTyping, FreeVariableIsIllTyped) {
  EXPECT_FALSE(type_of(int_sig(1), {}, 0, var("nope")).has_value());
}

TEST(CalculusTyping, LetThreadsStages) {
  const auto sig = int_sig(3);
  const auto e = let("x", deref(global(0)),
                     let("y", deref(global(2)), plus(var("x"), var("y"))));
  const auto t = type_of(sig, {}, 0, e);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->end_stage, 3);
}

// ---------------------------------------------------------------------------
// Operational semantics
// ---------------------------------------------------------------------------

TEST(CalculusSemantics, PlusEvaluatesLeftToRight) {
  const auto sig = int_sig(2);
  State s{int_globals({10, 20}), 0,
          plus(deref(global(0)), deref(global(1)))};
  auto s1 = step(sig, s);
  ASSERT_TRUE(s1.has_value());
  EXPECT_EQ(s1->next_stage, 1);  // left deref fired first
  auto s2 = step(sig, *s1);
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(s2->next_stage, 2);
  auto s3 = step(sig, *s2);
  ASSERT_TRUE(s3.has_value());
  EXPECT_EQ(s3->expr->kind, ExKind::Int);
  EXPECT_EQ(s3->expr->int_value, 30);
}

TEST(CalculusSemantics, UpdateWritesGlobalAndYieldsUnit) {
  const auto sig = int_sig(2);
  State s{int_globals({1, 2}), 0, update(global(1), lit(42))};
  const auto r = run(sig, s);
  ASSERT_TRUE(r.reached_value);
  EXPECT_EQ(r.final.expr->kind, ExKind::Unit);
  EXPECT_EQ(r.final.globals[1]->int_value, 42);
  EXPECT_EQ(r.final.next_stage, 2);
}

TEST(CalculusSemantics, AppSubstitutes) {
  const auto sig = int_sig(1);
  const auto f = lam("x", Ty::int_ty(), 0, plus(var("x"), lit(1)));
  const auto r = run(sig, State{int_globals({0}), 0, app(f, lit(41))});
  ASSERT_TRUE(r.reached_value);
  EXPECT_EQ(r.final.expr->int_value, 42);
}

TEST(CalculusSemantics, SubstitutionRespectsShadowing) {
  // let x = 1 in (let x = 2 in x) + x  ==>  2 + 1
  const auto sig = int_sig(0);
  const auto e =
      let("x", lit(1), plus(let("x", lit(2), var("x")), var("x")));
  const auto r = run(sig, State{{}, 0, e});
  ASSERT_TRUE(r.reached_value);
  EXPECT_EQ(r.final.expr->int_value, 3);
}

// The motivating "stuck" program: an ill-ordered access sequence that the
// type system rejects really does wedge the machine — exactly what the
// soundness theorem says cannot happen to well-typed terms.
TEST(CalculusSemantics, IllOrderedProgramGetsStuck) {
  const auto sig = int_sig(2);
  const auto e = plus(deref(global(1)), deref(global(0)));
  EXPECT_FALSE(type_of(sig, {}, 0, e).has_value());
  const auto r = run(sig, State{int_globals({5, 6}), 0, e});
  EXPECT_FALSE(r.reached_value);  // stuck at !g0 with next_stage == 2
}

TEST(CalculusSemantics, ValueDoesNotStep) {
  const auto sig = int_sig(0);
  EXPECT_FALSE(step(sig, State{{}, 0, lit(1)}).has_value());
  EXPECT_FALSE(step(sig, State{{}, 0, unit()}).has_value());
}

// ---------------------------------------------------------------------------
// Soundness: progress + preservation over random well-typed terms
// ---------------------------------------------------------------------------

class CalculusSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CalculusSoundness, ProgressAndPreservationHold) {
  TermGenerator gen(GenConfig{}, GetParam());
  const GlobalSig sig = gen.signature();

  for (int trial = 0; trial < 40; ++trial) {
    State s{gen.initial_globals(), 0, gen.gen_int_term()};
    ASSERT_TRUE(globals_well_typed(sig, s.globals));

    auto typed = type_of(sig, {}, s.next_stage, s.expr);
    ASSERT_TRUE(typed.has_value())
        << "generator produced ill-typed term: " << s.expr->str();
    ASSERT_EQ(typed->type->kind, TyKind::Int);
    int end_stage_bound = typed->end_stage;

    for (int i = 0; i < 2000; ++i) {
      if (s.expr->is_value()) break;
      // Progress: a well-typed non-value must step.
      auto next = step(sig, s);
      ASSERT_TRUE(next.has_value())
          << "well-typed term got stuck: " << s.expr->str();
      s = std::move(*next);
      // Preservation: same type; globals stay well-typed; the end stage
      // never increases.
      ASSERT_TRUE(globals_well_typed(sig, s.globals));
      auto retyped = type_of(sig, {}, s.next_stage, s.expr);
      ASSERT_TRUE(retyped.has_value())
          << "step broke typing: " << s.expr->str();
      ASSERT_TRUE(ty_equal(retyped->type, typed->type));
      ASSERT_LE(retyped->end_stage, end_stage_bound);
      end_stage_bound = retyped->end_stage;
    }
    ASSERT_TRUE(s.expr->is_value()) << "term did not terminate";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalculusSoundness,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

}  // namespace
}  // namespace lucid::calculus
