// Workload generator tests: arrival rates, per-flow packet trains,
// determinism, and the distinct-flow helper.
#include <gtest/gtest.h>

#include "workload/workload.hpp"

namespace lucid::workload {
namespace {

TEST(FlowGenerator, RoughlyMatchesTargetRate) {
  sim::Simulator sim;
  FlowGenConfig cfg;
  cfg.flows_per_sec = 50'000;
  cfg.packets_per_flow = 1;
  FlowGenerator gen(sim, cfg, 42);
  std::uint64_t packets = 0;
  gen.start(100 * sim::kMs, [&](const Flow&, int) { ++packets; });
  sim.run();
  // 50k flows/s over 100 ms ~= 5000 flows (Poisson, +-10%).
  EXPECT_GT(gen.flows_emitted(), 4'400u);
  EXPECT_LT(gen.flows_emitted(), 5'600u);
  EXPECT_EQ(packets, gen.flows_emitted());
}

TEST(FlowGenerator, EmitsPacketTrainsPerFlow) {
  sim::Simulator sim;
  FlowGenConfig cfg;
  cfg.flows_per_sec = 1'000;
  cfg.packets_per_flow = 4;
  cfg.inter_packet_ns = 5 * sim::kUs;
  cfg.poisson = false;
  FlowGenerator gen(sim, cfg, 7);
  std::map<std::int64_t, std::vector<int>> seqs;
  std::map<std::int64_t, std::vector<sim::Time>> times;
  gen.start(10 * sim::kMs, [&](const Flow& f, int seq) {
    seqs[f.id].push_back(seq);
    times[f.id].push_back(sim.now());
  });
  sim.run();
  ASSERT_FALSE(seqs.empty());
  for (const auto& [id, v] : seqs) {
    EXPECT_EQ(v.size(), 4u) << id;
    EXPECT_EQ(v[0], 0);
  }
  for (const auto& [id, v] : times) {
    for (std::size_t i = 1; i < v.size(); ++i) {
      EXPECT_EQ(v[i] - v[i - 1], 5 * sim::kUs);
    }
  }
}

TEST(FlowGenerator, DeterministicAcrossRuns) {
  auto run = [] {
    sim::Simulator sim;
    FlowGenerator gen(sim, FlowGenConfig{}, 99);
    std::vector<std::int64_t> ids;
    gen.start(20 * sim::kMs, [&](const Flow& f, int seq) {
      if (seq == 0) ids.push_back(f.id);
    });
    sim.run();
    return ids;
  };
  EXPECT_EQ(run(), run());
}

TEST(DistinctFlows, KeysAreUniqueAndCountExact) {
  const auto flows = distinct_flows(640, 1000, 5);
  EXPECT_EQ(flows.size(), 640u);
  std::set<std::int64_t> ids;
  for (const auto& f : flows) ids.insert(f.id);
  EXPECT_EQ(ids.size(), 640u);
}

}  // namespace
}  // namespace lucid::workload
