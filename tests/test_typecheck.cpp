// Tests for type checking and the ordered type-and-effect system (section 5).
// The centerpiece is the paper's Figure 5 disordered program, which must be
// rejected with a source-level ordering diagnostic; plus function effect
// polymorphism, which lets one helper be reused at any consistent stage.
#include <gtest/gtest.h>

#include "sema/type_check.hpp"

namespace lucid::sema {
namespace {

FrontendResult analyze(std::string_view src, DiagnosticEngine& diags) {
  return parse_and_check(src, diags);
}

FrontendResult analyze_ok(std::string_view src) {
  DiagnosticEngine diags{std::string(src)};
  FrontendResult r = parse_and_check(src, diags);
  EXPECT_TRUE(r.ok) << diags.render();
  return r;
}

// ---------------------------------------------------------------------------
// Basic typing
// ---------------------------------------------------------------------------

TEST(TypeCheck, SimpleHandlerChecks) {
  analyze_ok(
      "global cnt = new Array<<32>>(16);\n"
      "memop plus(int cur, int x) { return cur + x; }\n"
      "event pkt(int dst);\n"
      "handle pkt(int dst) { Array.set(cnt, dst, plus, 1); }\n");
}

TEST(TypeCheck, UndefinedVariableIsRejected) {
  DiagnosticEngine diags;
  const auto r = analyze(
      "event e();\n"
      "handle e() { int x = missing; }\n",
      diags);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(diags.has_code("sema-undefined"));
}

TEST(TypeCheck, IfConditionMustBeBool) {
  DiagnosticEngine diags;
  const auto r = analyze(
      "event e(int x);\n"
      "handle e(int x) { if (x + 1) { int y = 0; } }\n",
      diags);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(diags.has_code("type-expected-bool"));
}

TEST(TypeCheck, WidthMismatchIsRejected) {
  DiagnosticEngine diags;
  const auto r = analyze(
      "event e(int<<16>> a, int<<32>> b);\n"
      "handle e(int<<16>> a, int<<32>> b) { int c = a + b; }\n",
      diags);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(diags.has_code("type-width-mismatch"));
}

TEST(TypeCheck, LiteralAdaptsToWidth) {
  analyze_ok(
      "event e(int<<16>> a);\n"
      "handle e(int<<16>> a) { int<<16>> c = a + 1; }\n");
}

TEST(TypeCheck, ConstsAreEvaluated) {
  const auto r = analyze_ok(
      "const int A = 4;\n"
      "const int B = A * 2 + 1;\n"
      "global arr = new Array<<32>>(B);\n"
      "event e();\n"
      "handle e() { int x = B; }\n");
  const auto* g = r.program.find_global("arr");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->resolved_size, 9);
}

TEST(TypeCheck, GroupMembersAreResolved) {
  const auto r = analyze_ok(
      "const int LEFT = 2;\n"
      "const group NEIGHBORS = {LEFT, 3, 4};\n"
      "event e();\n"
      "handle e() { int x = 0; }\n");
  const auto* g = r.program.find_group("NEIGHBORS");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->resolved_members, (std::vector<std::int64_t>{2, 3, 4}));
}

TEST(TypeCheck, EventIdsAreDense) {
  const auto r = analyze_ok(
      "event a();\n"
      "event b(int x);\n"
      "event c();\n"
      "handle a() { int q = 0; }\n");
  EXPECT_EQ(r.program.find_event("a")->event_id, 0);
  EXPECT_EQ(r.program.find_event("b")->event_id, 1);
  EXPECT_EQ(r.program.find_event("c")->event_id, 2);
}

TEST(TypeCheck, HandlerSignatureMustMatchEvent) {
  DiagnosticEngine diags;
  const auto r = analyze(
      "event e(int x);\n"
      "handle e(int x, int y) { int q = 0; }\n",
      diags);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(diags.has_code("sema-handler-signature"));
}

TEST(TypeCheck, HandlerWithoutEventIsRejected) {
  DiagnosticEngine diags;
  const auto r = analyze("handle ghost() { int q = 0; }\n", diags);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(diags.has_code("sema-handler-without-event"));
}

TEST(TypeCheck, GenerateRequiresEventValue) {
  DiagnosticEngine diags;
  const auto r = analyze(
      "event e(int x);\n"
      "handle e(int x) { generate x + 1; }\n",
      diags);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(diags.has_code("type-expected-event"));
}

TEST(TypeCheck, EventCtorArityChecked) {
  DiagnosticEngine diags;
  const auto r = analyze(
      "event e(int x);\n"
      "event f(int a, int b);\n"
      "handle e(int x) { generate f(x); }\n",
      diags);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(diags.has_code("sema-arity"));
}

TEST(TypeCheck, MemopCannotBeCalledDirectly) {
  DiagnosticEngine diags;
  const auto r = analyze(
      "memop plus(int a, int b) { return a + b; }\n"
      "event e(int x);\n"
      "handle e(int x) { int y = plus(x, 1); }\n",
      diags);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(diags.has_code("sema-memop-call"));
}

TEST(TypeCheck, RecursiveFunctionIsRejected) {
  DiagnosticEngine diags;
  const auto r = analyze(
      "fun int f(int x) { return f(x); }\n"
      "event e();\n"
      "handle e() { int q = f(1); }\n",
      diags);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(diags.has_code("sema-recursion"));
}

TEST(TypeCheck, DuplicateDeclarationIsRejected) {
  DiagnosticEngine diags;
  const auto r = analyze(
      "const int A = 1;\n"
      "const int A = 2;\n",
      diags);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(diags.has_code("sema-duplicate-name"));
}

TEST(TypeCheck, SelfIsDefined) {
  analyze_ok(
      "event ping(int src);\n"
      "handle ping(int src) { generate Event.locate(ping(SELF), src); }\n");
}

TEST(TypeCheck, HashIsInt32) {
  analyze_ok(
      "global t = new Array<<32>>(256);\n"
      "event e(int a, int b);\n"
      "handle e(int a, int b) {\n"
      "  int idx = hash(7, a, b) & 255;\n"
      "  int v = Array.get(t, idx);\n"
      "}\n");
}

// ---------------------------------------------------------------------------
// Ordered data access (section 5)
// ---------------------------------------------------------------------------

// The paper's Figure 5 program: handlers access arr1/arr2 in opposite orders;
// setArr2 follows declaration order but setArr1 does not, so the program must
// be rejected with an ordering error that points at the bad access.
TEST(OrderedEffects, Figure5DisorderedProgramIsRejected) {
  DiagnosticEngine diags;
  const auto r = analyze(
      "const int SIZE = 16;\n"
      "global arr1 = new Array<<32>>(SIZE);\n"
      "global arr2 = new Array<<32>>(SIZE);\n"
      "event setArr1(int idx, int data);\n"
      "event setArr2(int idx, int data);\n"
      "handle setArr1(int idx, int data) {\n"
      "  int x = Array.get(arr2, idx);\n"
      "  Array.set(arr1, idx, x);\n"
      "}\n"
      "handle setArr2(int idx, int data) {\n"
      "  int x = Array.get(arr1, idx);\n"
      "  Array.set(arr2, idx, x);\n"
      "}\n",
      diags);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(diags.has_code("effect-out-of-order")) << diags.render();
  // The diagnostic cites the conflicting earlier access as a note.
  EXPECT_TRUE(diags.has_code("effect-prior-access")) << diags.render();
}

TEST(OrderedEffects, DeclarationOrderAccessIsAccepted) {
  analyze_ok(
      "global arr1 = new Array<<32>>(16);\n"
      "global arr2 = new Array<<32>>(16);\n"
      "event e(int idx);\n"
      "handle e(int idx) {\n"
      "  int x = Array.get(arr1, idx);\n"
      "  Array.set(arr2, idx, x);\n"
      "}\n");
}

TEST(OrderedEffects, DoubleAccessToSameArrayIsRejected) {
  // One sALU pass per array: get-then-set of the same array must be an
  // Array.update instead. The type system catches this as an ordering error.
  DiagnosticEngine diags;
  const auto r = analyze(
      "global arr = new Array<<32>>(16);\n"
      "event e(int idx);\n"
      "handle e(int idx) {\n"
      "  int x = Array.get(arr, idx);\n"
      "  Array.set(arr, idx, x + 1);\n"
      "}\n",
      diags);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(diags.has_code("effect-out-of-order"));
}

TEST(OrderedEffects, UpdateCombinesGetAndSet) {
  analyze_ok(
      "global arr = new Array<<32>>(16);\n"
      "memop rd(int cur, int x) { return cur; }\n"
      "memop plus(int cur, int x) { return cur + x; }\n"
      "event e(int idx);\n"
      "handle e(int idx) {\n"
      "  int old = Array.update(arr, idx, rd, 0, plus, 1);\n"
      "}\n");
}

TEST(OrderedEffects, BranchesMayAccessDifferentArrays) {
  // Both branches are laid out; the join takes the max stage.
  analyze_ok(
      "global a = new Array<<32>>(4);\n"
      "global b = new Array<<32>>(4);\n"
      "global c = new Array<<32>>(4);\n"
      "event e(int x);\n"
      "handle e(int x) {\n"
      "  if (x == 0) { Array.set(a, 0, 1); } else { Array.set(b, 0, 1); }\n"
      "  Array.set(c, 0, 1);\n"
      "}\n");
}

TEST(OrderedEffects, AccessAfterJoinRespectsMaxBranchStage) {
  DiagnosticEngine diags;
  const auto r = analyze(
      "global a = new Array<<32>>(4);\n"
      "global b = new Array<<32>>(4);\n"
      "event e(int x);\n"
      "handle e(int x) {\n"
      "  if (x == 0) { Array.set(b, 0, 1); }\n"
      "  Array.set(a, 0, 1);\n"  // a is before b: error after join
      "}\n",
      diags);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(diags.has_code("effect-out-of-order"));
}

TEST(OrderedEffects, HandlerEndStageIsReported) {
  const auto r = analyze_ok(
      "global a = new Array<<32>>(4);\n"
      "global b = new Array<<32>>(4);\n"
      "global c = new Array<<32>>(4);\n"
      "event e();\n"
      "handle e() {\n"
      "  int x = Array.get(a, 0);\n"
      "  int y = Array.get(c, 0);\n"
      "}\n");
  // End stage is c's stage (2) + 1.
  EXPECT_EQ(r.info.handler_end_stage.at("e"), 3);
}

// ---------------------------------------------------------------------------
// Function effect polymorphism (section 5.2 / Appendix A "extensions")
// ---------------------------------------------------------------------------

TEST(FunEffects, FunctionOverGlobalCheckedAtCallSite) {
  analyze_ok(
      "global pathlens = new Array<<32>>(64);\n"
      "fun int get_pathlen(int dst) {\n"
      "  return Array.get(pathlens, dst);\n"
      "}\n"
      "event q(int dst);\n"
      "handle q(int dst) { int p = get_pathlen(dst); }\n");
}

TEST(FunEffects, FunctionCalledAfterLaterArrayIsRejected) {
  DiagnosticEngine diags;
  const auto r = analyze(
      "global first = new Array<<32>>(4);\n"
      "global second = new Array<<32>>(4);\n"
      "fun int read_first(int i) { return Array.get(first, i); }\n"
      "event e(int i);\n"
      "handle e(int i) {\n"
      "  int s = Array.get(second, i);\n"
      "  int f = read_first(i);\n"  // would need to go backwards
      "}\n",
      diags);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(diags.has_code("effect-out-of-order")) << diags.render();
}

TEST(FunEffects, PolymorphicArrayParamReusedAtTwoStages) {
  // One helper, instantiated at stage 0 (arr1) and stage 1 (arr2): both are
  // consistent, which is exactly the polymorphism the paper's appendix
  // describes.
  analyze_ok(
      "global arr1 = new Array<<32>>(4);\n"
      "global arr2 = new Array<<32>>(4);\n"
      "memop plus(int cur, int x) { return cur + x; }\n"
      "fun void bump(Array<<32>> a, int i) {\n"
      "  Array.set(a, i, plus, 1);\n"
      "}\n"
      "event e(int i);\n"
      "handle e(int i) {\n"
      "  bump(arr1, i);\n"
      "  bump(arr2, i);\n"
      "}\n");
}

TEST(FunEffects, PolymorphicArrayParamOutOfOrderIsRejected) {
  DiagnosticEngine diags;
  const auto r = analyze(
      "global arr1 = new Array<<32>>(4);\n"
      "global arr2 = new Array<<32>>(4);\n"
      "memop plus(int cur, int x) { return cur + x; }\n"
      "fun void bump(Array<<32>> a, int i) {\n"
      "  Array.set(a, i, plus, 1);\n"
      "}\n"
      "event e(int i);\n"
      "handle e(int i) {\n"
      "  bump(arr2, i);\n"
      "  bump(arr1, i);\n"  // instantiates backwards: rejected
      "}\n",
      diags);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(diags.has_code("effect-out-of-order")) << diags.render();
}

TEST(FunEffects, TwoArrayParamsOrderedWithinFunction) {
  // A function accessing two array parameters in order imposes the
  // constraint s(a) + 1 <= s(b) on its callers.
  DiagnosticEngine diags;
  const auto r = analyze(
      "global arr1 = new Array<<32>>(4);\n"
      "global arr2 = new Array<<32>>(4);\n"
      "fun void copy(Array<<32>> src, Array<<32>> dst, int i) {\n"
      "  int v = Array.get(src, i);\n"
      "  Array.set(dst, i, v);\n"
      "}\n"
      "event ok_ev(int i);\n"
      "event bad_ev(int i);\n"
      "handle ok_ev(int i) { copy(arr1, arr2, i); }\n"
      "handle bad_ev(int i) { copy(arr2, arr1, i); }\n",
      diags);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(diags.has_code("effect-out-of-order")) << diags.render();
  // Only bad_ev's call site is in error; the diagnostic names the call.
  bool mentions_call = false;
  for (const auto& d : diags.all()) {
    if (d.message.find("copy") != std::string::npos) mentions_call = true;
  }
  EXPECT_TRUE(mentions_call);
}

TEST(FunEffects, InferredSignatureIsRecorded) {
  const auto r = analyze_ok(
      "global g = new Array<<32>>(4);\n"
      "fun int rd(int i) { return Array.get(g, i); }\n"
      "event e(int i);\n"
      "handle e(int i) { int v = rd(i); }\n");
  ASSERT_TRUE(r.info.fun_sigs.count("rd"));
  const auto& sig = r.info.fun_sigs.at("rd");
  // One constraint: start <= stage(g) == 0.
  ASSERT_EQ(sig.constraints.size(), 1u);
  EXPECT_TRUE(sig.constraints[0].rhs.concrete());
  EXPECT_EQ(sig.constraints[0].rhs.offset, 0);
  // End effect is concrete stage 1.
  EXPECT_EQ(sig.end.concrete_value(), 1);
}

}  // namespace
}  // namespace lucid::sema
