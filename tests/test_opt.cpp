// Optimizer tests (section 6.2): branch inlining produces the Figure 6(2)
// guards, dependency analysis enables the Figure 6(3) reordering, and the
// greedy merger packs the program into fewer stages under the resource model.
// The TwoPhase suite pins the Phase A / Phase B split: a shared
// LayoutAnalysis must reproduce the cold path byte-for-byte across the full
// sweep grid, deterministically, with identical diagnostics.
#include <gtest/gtest.h>

#include <tuple>

#include "apps/apps.hpp"
#include "core/driver.hpp"
#include "core/sweep.hpp"

namespace lucid::opt {
namespace {

constexpr const char* kFigure6 = R"(
const int NUM_HOSTS = 64;
const int NUM_PORTS = 32;
const int NUM_PORTS_X2 = 64;
const int NUM_PORTS_X3 = 96;
const int TCP = 6;
const int UDP = 17;
global nexthops = new Array<<32>>(NUM_HOSTS);
global pcts = new Array<<32>>(NUM_PORTS_X3);
global hcts = new Array<<32>>(NUM_HOSTS);
memop plus(int cur, int x) { return cur + x; }
event count_pkt(int dst, int proto);
handle count_pkt(int dst, int proto) {
  int idx = Array.get(nexthops, dst);
  if (proto != TCP) {
    if (proto == UDP) {
      idx = idx + NUM_PORTS;
    } else {
      idx = idx + NUM_PORTS_X2;
    }
  }
  Array.set(pcts, idx, plus, 1);
  if (proto == TCP) {
    Array.set(hcts, dst, plus, 1);
  }
}
)";

CompilationPtr compile_ok(std::string_view src) {
  const CompilerDriver driver;
  CompilationPtr r = driver.run(src);
  EXPECT_TRUE(r->ok()) << r->diags().render();
  return r;
}

TEST(BranchInlining, DeletesBranchTables) {
  const auto r = compile_ok(kFigure6);
  DiagnosticEngine diags;
  const GuardedHandler gh = inline_branches(r->ir().handlers[0], diags);
  for (const auto& t : gh.tables) {
    EXPECT_NE(t.kind, ir::TableKind::Branch);
  }
  // 3 mem + 2 op tables survive.
  EXPECT_EQ(gh.tables.size(), 5u);
}

TEST(BranchInlining, GuardsMatchFigure6Conditions) {
  const auto r = compile_ok(kFigure6);
  DiagnosticEngine diags;
  const GuardedHandler gh = inline_branches(r->ir().handlers[0], diags);

  // Find the two idx adjustments and hcts_fset; verify their guards mirror
  // Fig 6(2) modulo subsumption: idx+=NUM_PORTS runs under
  // proto!=TCP && proto==UDP, which simplifies to proto==UDP;
  // idx+=NUM_PORTS_X2 under proto!=TCP && proto!=UDP; hcts under proto==TCP.
  int udp_guarded = 0;
  int not_udp_guarded = 0;
  int tcp_guarded = 0;
  for (const auto& t : gh.tables) {
    if (t.kind == ir::TableKind::Op && !t.guards.empty()) {
      ASSERT_EQ(t.guards.size(), 1u);
      const auto& conj = t.guards[0];
      if (conj.size() == 1) {
        EXPECT_EQ(conj[0].var, "proto");
        EXPECT_TRUE(conj[0].eq);
        EXPECT_EQ(conj[0].value, 17);  // proto == UDP (subsumes != TCP)
        ++udp_guarded;
      } else {
        ASSERT_EQ(conj.size(), 2u);
        EXPECT_EQ(conj[0].var, "proto");
        EXPECT_FALSE(conj[0].eq);
        EXPECT_EQ(conj[0].value, 6);  // proto != TCP
        EXPECT_EQ(conj[1].var, "proto");
        EXPECT_FALSE(conj[1].eq);
        EXPECT_EQ(conj[1].value, 17);  // proto != UDP
        ++not_udp_guarded;
      }
    }
    if (t.kind == ir::TableKind::Mem && t.mem.array == "hcts") {
      ASSERT_EQ(t.guards.size(), 1u);
      ASSERT_EQ(t.guards[0].size(), 1u);
      EXPECT_EQ(t.guards[0][0].var, "proto");
      EXPECT_TRUE(t.guards[0][0].eq);
      EXPECT_EQ(t.guards[0][0].value, 6);  // proto == TCP
      ++tcp_guarded;
    }
    if (t.kind == ir::TableKind::Mem && t.mem.array == "nexthops") {
      EXPECT_TRUE(t.guards.empty());  // unconditional
    }
  }
  EXPECT_EQ(udp_guarded, 1);
  EXPECT_EQ(not_udp_guarded, 1);
  EXPECT_EQ(tcp_guarded, 1);
}

TEST(BranchInlining, ContradictoryPathsAreDropped) {
  const auto r = compile_ok(
      "event e(int x);\n"
      "handle e(int x) {\n"
      "  int y = 0;\n"
      "  if (x == 1) {\n"
      "    if (x == 2) { y = 1; }\n"  // dead: x==1 && x==2
      "  }\n"
      "}\n");
  DiagnosticEngine diags;
  const GuardedHandler gh = inline_branches(r->ir().handlers[0], diags);
  // The dead assignment's table is unreachable and dropped.
  for (const auto& t : gh.tables) {
    if (t.kind == ir::TableKind::Op && t.op.dst == "y") {
      for (const auto& conj : t.guards) {
        for (const auto& test : conj) {
          EXPECT_FALSE(test.eq && test.value == 2);
        }
      }
    }
  }
}

TEST(BranchInlining, JoinAfterIfIsUnconditionalAgain) {
  // The continuation after an if/else must carry no guard: the path union
  // [x==1] or [x!=1] simplifies back to "always", so downstream tables
  // don't inherit spurious dependencies on the branch predicate.
  const auto r = compile_ok(
      "global a = new Array<<32>>(4);\n"
      "global b = new Array<<32>>(4);\n"
      "memop plus(int cur, int x) { return cur + x; }\n"
      "event e(int x);\n"
      "handle e(int x) {\n"
      "  if (x == 1) { Array.set(a, 0, 1); } else { Array.set(a, 1, 2); }\n"
      "  Array.set(b, 0, plus, 1);\n"  // after the join: unconditional
      "}\n");
  DiagnosticEngine diags;
  const GuardedHandler gh = inline_branches(r->ir().handlers[0], diags);
  for (const auto& t : gh.tables) {
    if (t.kind == ir::TableKind::Mem && t.mem.array == "b") {
      EXPECT_TRUE(t.guards.empty()) << "join guard not simplified";
    }
  }
}

TEST(BranchInlining, NestedJoinSimplifiesThroughPredicates) {
  // Nested ifs with a computed predicate: after both levels join, the
  // trailing statement is unconditional.
  const auto r = compile_ok(
      "global out = new Array<<32>>(4);\n"
      "event e(int x, int y);\n"
      "handle e(int x, int y) {\n"
      "  int v = 0;\n"
      "  if (x != 0) {\n"
      "    if (y > x) { v = 1; } else { v = 2; }\n"
      "  }\n"
      "  Array.set(out, 0, v);\n"
      "}\n");
  DiagnosticEngine diags;
  const GuardedHandler gh = inline_branches(r->ir().handlers[0], diags);
  for (const auto& t : gh.tables) {
    if (t.kind == ir::TableKind::Mem) {
      EXPECT_TRUE(t.guards.empty()) << "nested join guard not simplified";
    }
  }
}

TEST(Dependencies, HctsIsIndependentOfIdxChain) {
  // The Fig 6(3) insight: hcts_fset reads only dst, so it has no dependency
  // on the idx chain at all and can run in parallel with nexthops_get.
  const auto r = compile_ok(kFigure6);
  DiagnosticEngine diags;
  const GuardedHandler gh = inline_branches(r->ir().handlers[0], diags);
  const auto deps = dependency_edges(gh, r->ir());
  const auto levels = asap_levels(gh, deps);

  int nexthops_level = -1;
  int pcts_level = -1;
  int hcts_level = -1;
  for (std::size_t i = 0; i < gh.tables.size(); ++i) {
    if (gh.tables[i].kind == ir::TableKind::Mem) {
      if (gh.tables[i].mem.array == "nexthops") {
        nexthops_level = levels[i];
      }
      if (gh.tables[i].mem.array == "pcts") pcts_level = levels[i];
      if (gh.tables[i].mem.array == "hcts") hcts_level = levels[i];
    }
  }
  EXPECT_EQ(nexthops_level, 0);
  // pcts reads idx, which flows from nexthops via the branch arms.
  EXPECT_GT(pcts_level, nexthops_level);
  // hcts reads only the dst header field: level 0, parallel to
  // nexthops_get, exactly like the table dataflow graph of Fig 6(3).
  EXPECT_EQ(hcts_level, 0);
}

TEST(Layout, Figure6FitsInFewerStagesThanAtomicChain) {
  const auto r = compile_ok(kFigure6);
  EXPECT_EQ(r->layout_stats().unoptimized_stages, 7);
  // Optimized: nexthops_get | idx adjusts | pcts | hcts -> 4 stages.
  EXPECT_LE(r->layout_stats().optimized_stages, 4);
  EXPECT_GE(r->layout_stats().unoptimized_stages, r->layout_stats().optimized_stages);
  EXPECT_TRUE(r->layout_stats().fits);
}

TEST(Layout, ArraysArePinnedToSingleStages) {
  const auto r = compile_ok(kFigure6);
  const auto& p = r->pipeline();
  ASSERT_TRUE(p.array_stage.count("nexthops"));
  ASSERT_TRUE(p.array_stage.count("pcts"));
  ASSERT_TRUE(p.array_stage.count("hcts"));
  // Real dataflow: pcts consumes idx, which is derived from nexthops.
  EXPECT_LT(p.array_stage.at("nexthops"), p.array_stage.at("pcts"));
  // hcts is independent — the compiler may (and does) place it early.
  EXPECT_GE(p.array_stage.at("hcts"), 0);
}

TEST(Layout, HandlersShareThePipeline) {
  // Two handlers touching the same array must agree on its stage.
  const auto r = compile_ok(
      "global shared = new Array<<32>>(16);\n"
      "memop plus(int cur, int x) { return cur + x; }\n"
      "event inc(int i);\n"
      "event rd(int i);\n"
      "handle inc(int i) { Array.set(shared, i, plus, 1); }\n"
      "handle rd(int i) {\n"
      "  int a = i + 1;\n"
      "  int b = a + i;\n"
      "  int v = Array.get(shared, b);\n"
      "}\n");
  // rd needs 'shared' at stage >= 2; inc would like stage 0; the pin must
  // reconcile to one stage.
  const auto it = r->pipeline().array_stage.find("shared");
  ASSERT_NE(it, r->pipeline().array_stage.end());
  EXPECT_GE(it->second, 2);
}

TEST(Layout, CrossHandlerArrayOrderIsRespected) {
  // H1 uses A at a late level; H2 uses A then B. B must land after A even
  // though H2 alone would allow both early.
  const auto r = compile_ok(
      "global a = new Array<<32>>(4);\n"
      "global b = new Array<<32>>(4);\n"
      "event h1(int x);\n"
      "event h2(int x);\n"
      "handle h1(int x) {\n"
      "  int t1 = x + 1;\n"
      "  int t2 = t1 + x;\n"
      "  int t3 = t2 + x;\n"
      "  int v = Array.get(a, t3);\n"
      "}\n"
      "handle h2(int x) {\n"
      "  int v = Array.get(a, x);\n"
      "  Array.set(b, x, v);\n"
      "}\n");
  EXPECT_GT(r->pipeline().array_stage.at("b"),
            r->pipeline().array_stage.at("a"));
  EXPECT_GE(r->pipeline().array_stage.at("a"), 3);
}

TEST(Layout, ParallelismIsExploited) {
  // Eight independent assignments collapse into very few stages.
  const auto r = compile_ok(
      "event e(int x);\n"
      "handle e(int x) {\n"
      "  int a = x + 1;\n"
      "  int b = x + 2;\n"
      "  int c = x + 3;\n"
      "  int d = x + 4;\n"
      "  int f = x + 5;\n"
      "  int g = x + 6;\n"
      "  int h = x + 7;\n"
      "  int i = x + 8;\n"
      "}\n");
  EXPECT_EQ(r->layout_stats().unoptimized_stages, 8);
  EXPECT_LE(r->layout_stats().optimized_stages, 2);
}

TEST(Layout, SaluLimitForcesExtraStages) {
  // Six independent arrays with salus_per_stage=2 need >= 3 stages.
  std::string src;
  for (int i = 0; i < 6; ++i) {
    src += "global a" + std::to_string(i) + " = new Array<<32>>(4);\n";
  }
  src += "memop plus(int cur, int x) { return cur + x; }\n";
  for (int i = 0; i < 6; ++i) {
    src += "event e" + std::to_string(i) + "(int x);\n";
    src += "handle e" + std::to_string(i) + "(int x) { Array.set(a" +
           std::to_string(i) + ", x, plus, 1); }\n";
  }
  DriverOptions opts;
  opts.model.salus_per_stage = 2;
  const CompilerDriver driver(opts);
  const CompilationPtr r = driver.run(src);
  ASSERT_TRUE(r->ok()) << r->diags().render();
  EXPECT_GE(r->layout_stats().optimized_stages, 3);
}

TEST(Layout, TablesPerStageLimitIsHonored) {
  DriverOptions opts;
  opts.model.tables_per_stage = 1;
  opts.model.members_per_table = 1;
  const CompilerDriver driver(opts);
  const CompilationPtr r = driver.run(
      "event e(int x);\n"
      "handle e(int x) {\n"
      "  int a = x + 1;\n"
      "  int b = x + 2;\n"
      "  int c = x + 3;\n"
      "}\n");
  ASSERT_TRUE(r->ok()) << r->diags().render();
  // One table per stage, one member per table: three stages.
  EXPECT_EQ(r->layout_stats().optimized_stages, 3);
}

TEST(Layout, OpsPerStageReportsAllAtomicTables) {
  const auto r = compile_ok(kFigure6);
  int total = 0;
  for (const int n : r->layout_stats().ops_per_stage) total += n;
  EXPECT_EQ(total, 5);  // 3 mem + 2 op (branches dissolved)
}

TEST(Layout, StageRatioComputed) {
  const auto r = compile_ok(kFigure6);
  EXPECT_GE(r->layout_stats().stage_ratio(), 1.5);
}

// ---------------------------------------------------------------------------
// Two-phase engine: shared LayoutAnalysis vs cold layout
// ---------------------------------------------------------------------------

std::string diag_codes(const DiagnosticEngine& diags) {
  std::string out;
  for (const Diagnostic& d : diags.all()) {
    out += std::string(severity_name(d.severity)) + "|" + d.code + "|" +
           d.message + "\n";
  }
  return out;
}

TEST(TwoPhase, SharedAnalysisMatchesColdAcrossTheSweepGrid) {
  // The load-bearing differential: for every paper app and every point of
  // the full sweep grid, Phase B consuming a prebuilt analysis must be
  // Pipeline::str()-byte-identical to the one-shot cold path, with the same
  // pins, flags, restart counts, and diagnostic transcript — twice in a row
  // (determinism).
  const auto variants = *parse_sweep_grid("stages=4,8,12,16;salus=2,4");
  ASSERT_EQ(variants.size(), 8u);
  for (const apps::AppSpec& spec : apps::all_apps()) {
    SCOPED_TRACE(spec.key);
    const CompilerDriver driver;
    const CompilationPtr comp = driver.run(spec.source, Stage::Lower);
    ASSERT_TRUE(comp->ok()) << comp->diags().render();
    const auto analysis = analyze_layout(comp->ir());
    for (const SweepVariant& v : variants) {
      SCOPED_TRACE(v.label);
      DiagnosticEngine d_cold;
      DiagnosticEngine d_shared;
      DiagnosticEngine d_again;
      const Pipeline cold = layout(comp->ir(), v.model, d_cold);
      const Pipeline shared = layout(analysis, v.model, d_shared);
      const Pipeline again = layout(analysis, v.model, d_again);
      EXPECT_EQ(cold.str(), shared.str());
      EXPECT_EQ(shared.str(), again.str());  // two-run determinism
      EXPECT_EQ(cold.array_stage, shared.array_stage);
      EXPECT_EQ(cold.fits, shared.fits);
      EXPECT_EQ(cold.feasible, shared.feasible);
      EXPECT_EQ(cold.restarts, shared.restarts);
      EXPECT_EQ(diag_codes(d_cold), diag_codes(d_shared));
      EXPECT_EQ(diag_codes(d_shared), diag_codes(d_again));
    }
  }
}

TEST(TwoPhase, AnalysisPrebuildsASortedItemOrder) {
  const auto r = compile_ok(apps::app("SFW").source);
  const auto an = analyze_layout(r->ir());
  std::size_t expected_items = 0;
  for (const auto& g : an->guarded) expected_items += g.tables.size();
  ASSERT_EQ(an->items.size(), expected_items);
  ASSERT_EQ(an->order.size(), expected_items);
  ASSERT_EQ(an->item_deps.size(), expected_items);
  // The prebuilt order is the (level, handler, index) topological sort the
  // merger walks; restarts reuse it instead of re-sorting.
  for (std::size_t k = 1; k < an->order.size(); ++k) {
    const auto& a = an->items[static_cast<std::size_t>(an->order[k - 1])];
    const auto& b = an->items[static_cast<std::size_t>(an->order[k])];
    const auto key = [](const LayoutAnalysis::Item& it) {
      return std::make_tuple(it.level, it.handler, it.index);
    };
    EXPECT_LT(key(a), key(b));
  }
  // Every dependency sits strictly earlier in ASAP levels.
  for (std::size_t g = 0; g < an->items.size(); ++g) {
    for (const int d : an->item_deps[g]) {
      EXPECT_LT(an->items[static_cast<std::size_t>(d)].level,
                an->items[g].level);
      EXPECT_EQ(an->items[static_cast<std::size_t>(d)].handler,
                an->items[g].handler);
    }
  }
}

TEST(TwoPhase, InternedSymbolsMatchTheIR) {
  const auto r = compile_ok(kFigure6);
  const auto an = analyze_layout(r->ir());
  ASSERT_EQ(an->handler_names.size(), r->ir().handlers.size());
  for (std::size_t h = 0; h < an->handler_names.size(); ++h) {
    EXPECT_EQ(an->handler_names[h], r->ir().handlers[h].handler);
    EXPECT_EQ(an->guarded[h].handler, an->handler_names[h]);
  }
  ASSERT_EQ(an->array_names.size(), r->ir().arrays.size());
  ASSERT_EQ(an->array_lb.size(), an->array_names.size());
  for (std::size_t a = 0; a < an->array_names.size(); ++a) {
    EXPECT_EQ(an->array_names[a], r->ir().arrays[a].name);
  }
  // Items resolve their dense ids back to the right table.
  for (const auto& item : an->items) {
    const auto& t =
        an->guarded[static_cast<std::size_t>(item.handler)]
            .tables[static_cast<std::size_t>(item.index)];
    EXPECT_EQ(item.table, &t);
    if (t.kind == ir::TableKind::Mem) {
      ASSERT_GE(item.array, 0);
      EXPECT_EQ(an->array_names[static_cast<std::size_t>(item.array)],
                t.mem.array);
    } else {
      EXPECT_EQ(item.array, -1);
    }
    EXPECT_EQ(item.uncond, t.guards.empty());
  }
}

TEST(TwoPhase, DisjointnessMatrixMemoizesTablesDisjoint) {
  const auto r = compile_ok(apps::app("DNS").source);
  const auto an = analyze_layout(r->ir());
  const int n = an->item_count();
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      EXPECT_EQ(an->disjoint(a, b),
                tables_disjoint(*an->items[static_cast<std::size_t>(a)].table,
                                *an->items[static_cast<std::size_t>(b)].table))
          << a << " vs " << b;
      EXPECT_EQ(an->disjoint(a, b), an->disjoint(b, a));
    }
  }
}

TEST(TwoPhase, AnalysisDiagnosticsAreStoredAndReplayed) {
  // A tiny max_conjs forces the guard-blowup warning during Phase A; it must
  // land on the artifact and be replayed into every consuming layout, so the
  // transcript is independent of who computed the analysis.
  const auto r = compile_ok(kFigure6);
  const auto an = analyze_layout(r->ir(), /*max_conjs=*/1);
  ASSERT_FALSE(an->diagnostics.empty());
  bool found = false;
  for (const Diagnostic& d : an->diagnostics) {
    if (d.code == "opt-guard-blowup") found = true;
  }
  EXPECT_TRUE(found);
  DiagnosticEngine d1;
  DiagnosticEngine d2;
  (void)layout(an, ResourceModel::tofino(), d1);
  (void)layout(an, ResourceModel::tofino(), d2);
  EXPECT_TRUE(d1.has_code("opt-guard-blowup"));
  EXPECT_EQ(diag_codes(d1), diag_codes(d2));
}

TEST(TwoPhase, MergedTablesPointIntoTheSharedAnalysis) {
  // Merged tables hold pointers into the analysis, not copies — and the
  // pipeline keeps that analysis alive even after the source compilation's
  // artifacts are gone.
  const auto r = compile_ok(apps::app("CM").source);
  const auto an = analyze_layout(r->ir());
  DiagnosticEngine diags;
  const Pipeline p = layout(an, ResourceModel::tofino(), diags);
  EXPECT_EQ(p.analysis.get(), an.get());
  for (const auto& stage : p.stages) {
    for (const auto& mt : stage.tables) {
      for (const auto* member : mt.members) {
        bool inside = false;
        for (const auto& g : an->guarded) {
          if (!g.tables.empty() && member >= g.tables.data() &&
              member < g.tables.data() + g.tables.size()) {
            inside = true;
          }
        }
        EXPECT_TRUE(inside) << "member does not point into the analysis";
      }
    }
  }
}

}  // namespace
}  // namespace lucid::opt
