// Concurrency suite for the parallel front end (run under ThreadSanitizer
// by the debug-tsan preset via `ctest -L concurrency`).
//
// What must be race-free:
//
//   * Sema's per-decl body checks on the worker pool — including the
//     conditional header-annotation writes on decls shared (spliced) with a
//     previous compilation;
//   * many recompiles splicing from ONE shared prev concurrently: the span
//     table, decl fingerprints, and Phase A analysis caches are all
//     call_once-lazy on prev, and every thread may hit them first;
//   * recompiles racing a resource-model sweep over the same prev — clones
//     and recompiles pull prev's analysis at the same time the patched
//     update_layout_analysis reads it.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "apps/apps.hpp"
#include "core/backends.hpp"
#include "core/driver.hpp"

namespace lucid {
namespace {

BackendRegistry& test_registry() {
  static BackendRegistry registry = [] {
    BackendRegistry r;
    register_default_backends(r);
    return r;
  }();
  return registry;
}

std::string diag_transcript(const Compilation& comp) {
  std::string out;
  for (const Diagnostic& d : comp.diags().all()) {
    out += std::string(severity_name(d.severity)) + "|" + d.code + "|" +
           d.message + "\n";
  }
  return out;
}

/// A one-decl edit distinguishable per thread (distinct constant).
std::string edit_first_handler(const std::string& source, int salt) {
  const std::size_t h = source.find("handle ");
  EXPECT_NE(h, std::string::npos);
  const std::size_t brace = source.find('{', h);
  EXPECT_NE(brace, std::string::npos);
  std::string out = source;
  out.insert(brace + 1,
             " int __t_edit = " + std::to_string(salt + 1) + "; ");
  return out;
}

TEST(FrontendConcurrency, ParallelSemaBodyChecksAreRaceFree) {
  // 8 workers on a 10-handler app: the pool races body checks, per-task
  // diagnostic engines, and the obs span hooks.
  for (const apps::AppSpec& spec : apps::all_apps()) {
    DriverOptions opts;
    opts.program_name = spec.key;
    opts.sema_workers = 8;
    const CompilerDriver driver(opts, &test_registry());
    const CompilationPtr c = driver.run(spec.source, Stage::Layout);
    ASSERT_TRUE(c->ok()) << spec.key << "\n" << c->diags().render();
  }
}

TEST(FrontendConcurrency, ManyRecompilesSpliceFromOneSharedPrev) {
  // prev is compiled cold and its lazy caches (span table, fingerprints,
  // Phase A analysis) are NOT warmed — all 8 threads race the call_onces,
  // splice prev's decl nodes, and re-check their own dirty decl with
  // parallel Sema on top.
  const apps::AppSpec& spec = apps::app("SFW");
  DriverOptions opts;
  opts.program_name = spec.key;
  opts.sema_workers = 4;
  const CompilerDriver driver(opts, &test_registry());
  const CompilationPtr prev = driver.run(spec.source, Stage::Layout);
  ASSERT_TRUE(prev->ok()) << prev->diags().render();

  constexpr int kThreads = 8;
  std::vector<CompilationPtr> recs(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string edited = edit_first_handler(spec.source, t);
      recs[static_cast<std::size_t>(t)] = driver.recompile(prev, edited);
      driver.run_until(recs[static_cast<std::size_t>(t)], Stage::Layout);
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    SCOPED_TRACE(t);
    const CompilationPtr& rec = recs[static_cast<std::size_t>(t)];
    ASSERT_TRUE(rec->ok()) << rec->diags().render();
    EXPECT_GT(rec->record(Stage::Parse).decls_reused, 0);
    // Each thread's result still matches its own cold compile.
    const CompilationPtr cold =
        driver.run(edit_first_handler(spec.source, t), Stage::Layout);
    ASSERT_TRUE(cold->ok());
    EXPECT_EQ(cold->pipeline().str(), rec->pipeline().str());
    EXPECT_EQ(diag_transcript(*cold), diag_transcript(*rec));
  }
}

TEST(FrontendConcurrency, RecompilesRaceAResourceModelSweep) {
  // Half the threads recompile one-decl edits against prev (reading its
  // analysis through update_layout_analysis); the other half sweep resource
  // models over clones of prev (reading the same analysis through
  // opt::layout). prev's analysis call_once is cold at the start.
  const apps::AppSpec& spec = apps::app("SFW");
  DriverOptions opts;
  opts.program_name = spec.key;
  const CompilerDriver driver(opts, &test_registry());
  const CompilationPtr prev = driver.run(spec.source, Stage::Lower);
  ASSERT_TRUE(prev->ok()) << prev->diags().render();

  constexpr int kPairs = 4;
  std::vector<std::thread> threads;
  std::vector<std::string> sweep_pipes(kPairs);
  std::vector<CompilationPtr> recs(kPairs);
  threads.reserve(2 * kPairs);
  for (int t = 0; t < kPairs; ++t) {
    threads.emplace_back([&, t] {
      const std::string edited = edit_first_handler(spec.source, t);
      recs[static_cast<std::size_t>(t)] = driver.recompile(prev, edited);
      driver.run_until(recs[static_cast<std::size_t>(t)], Stage::Layout);
    });
    threads.emplace_back([&, t] {
      DriverOptions variant = opts;
      variant.model.max_stages = 8 + t * 4;
      const CompilationPtr clone =
          prev->clone_from_stage(Stage::Lower, variant);
      ASSERT_NE(clone, nullptr);
      driver.run_until(clone, Stage::Layout);
      sweep_pipes[static_cast<std::size_t>(t)] = clone->pipeline().str();
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kPairs; ++t) {
    SCOPED_TRACE(t);
    ASSERT_TRUE(recs[static_cast<std::size_t>(t)]->ok());
    EXPECT_FALSE(sweep_pipes[static_cast<std::size_t>(t)].empty());
  }
}

}  // namespace
}  // namespace lucid
