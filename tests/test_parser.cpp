// Parser unit tests: declarations, statements, expressions, precedence,
// error recovery, and the print -> reparse round trip.
#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "frontend/printer.hpp"

namespace lucid::frontend {
namespace {

Program parse_ok(std::string_view src) {
  DiagnosticEngine diags{std::string(src)};
  Program p = Parser::parse(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return p;
}

TEST(Parser, ConstDecl) {
  const Program p = parse_ok("const int SIZE = 16;");
  ASSERT_EQ(p.decls.size(), 1u);
  const auto* c = p.decls[0]->as<ConstDecl>();
  EXPECT_EQ(c->name, "SIZE");
  EXPECT_EQ(c->declared_type, Type::int_ty());
  EXPECT_EQ(c->value->as<IntLitExpr>()->value, 16u);
}

TEST(Parser, GlobalArrayDecl) {
  const Program p = parse_ok("global arr = new Array<<16>>(1024);");
  const auto* g = p.decls[0]->as<GlobalDecl>();
  EXPECT_EQ(g->name, "arr");
  EXPECT_EQ(g->width, 16);
  EXPECT_EQ(g->size->as<IntLitExpr>()->value, 1024u);
}

TEST(Parser, GlobalWithConstSize) {
  const Program p = parse_ok(
      "const int N = 8;\n"
      "global tbl = new Array<<32>>(N);");
  const auto* g = p.decls[1]->as<GlobalDecl>();
  EXPECT_EQ(g->size->kind, ExprKind::VarRef);
}

TEST(Parser, MemopDecl) {
  const Program p = parse_ok(
      "memop incr(int stored, int added) { return stored + added; }");
  const auto* m = p.decls[0]->as<MemopDecl>();
  EXPECT_EQ(m->name, "incr");
  ASSERT_EQ(m->params.size(), 2u);
  EXPECT_EQ(m->params[0].name, "stored");
  ASSERT_EQ(m->body.size(), 1u);
  EXPECT_EQ(m->body[0]->kind, StmtKind::Return);
}

TEST(Parser, EventAndHandler) {
  const Program p = parse_ok(
      "event route_query(int sender_id, int dst);\n"
      "handle route_query(int sender_id, int dst) {\n"
      "  int pathlen = get_pathlen(dst);\n"
      "  event reply = route_reply(SELF, dst, pathlen);\n"
      "  generate Event.locate(reply, sender_id);\n"
      "}\n");
  ASSERT_EQ(p.decls.size(), 2u);
  const auto* ev = p.decls[0]->as<EventDecl>();
  EXPECT_EQ(ev->params.size(), 2u);
  const auto* h = p.decls[1]->as<HandlerDecl>();
  ASSERT_EQ(h->body.size(), 3u);
  EXPECT_EQ(h->body[0]->kind, StmtKind::LocalDecl);
  EXPECT_EQ(h->body[1]->kind, StmtKind::LocalDecl);
  EXPECT_EQ(h->body[1]->as<LocalDeclStmt>()->declared_type,
            Type::event_ty());
  EXPECT_EQ(h->body[2]->kind, StmtKind::Generate);
}

TEST(Parser, GroupDeclWithConstPrefix) {
  const Program p = parse_ok("const group GRP = {2, 3};");
  const auto* g = p.decls[0]->as<GroupDecl>();
  EXPECT_EQ(g->name, "GRP");
  EXPECT_EQ(g->members.size(), 2u);
}

TEST(Parser, MGenerateWithCombinators) {
  const Program p = parse_ok(
      "event c();\n"
      "const group GRP = {2, 3};\n"
      "event a();\n"
      "handle a() {\n"
      "  mgenerate Event.delay(Event.locate(c(), GRP), 10ms);\n"
      "}\n");
  const auto* h = p.decls[3]->as<HandlerDecl>();
  const auto* gen = h->body[0]->as<GenerateStmt>();
  EXPECT_TRUE(gen->multicast);
  const auto* delay = gen->event->as<CallExpr>();
  EXPECT_EQ(delay->callee, "Event.delay");
  ASSERT_EQ(delay->args.size(), 2u);
  EXPECT_EQ(delay->args[0]->as<CallExpr>()->callee, "Event.locate");
  EXPECT_EQ(delay->args[1]->as<IntLitExpr>()->value, 10'000'000u);
}

TEST(Parser, IfElseChain) {
  const Program p = parse_ok(
      "event e(int proto);\n"
      "handle e(int proto) {\n"
      "  int idx = 0;\n"
      "  if (proto != 6) {\n"
      "    if (proto == 17) { idx = idx + 1; } else { idx = idx + 2; }\n"
      "  }\n"
      "}\n");
  const auto* h = p.decls[1]->as<HandlerDecl>();
  const auto* outer = h->body[1]->as<IfStmt>();
  EXPECT_TRUE(outer->else_block.empty());
  const auto* inner = outer->then_block[0]->as<IfStmt>();
  EXPECT_EQ(inner->then_block.size(), 1u);
  EXPECT_EQ(inner->else_block.size(), 1u);
}

TEST(Parser, ElseIfDesugarsToNestedIf) {
  const Program p = parse_ok(
      "event e(int x);\n"
      "handle e(int x) {\n"
      "  int y = 0;\n"
      "  if (x == 1) { y = 1; } else if (x == 2) { y = 2; } else { y = 3; }\n"
      "}\n");
  const auto* h = p.decls[1]->as<HandlerDecl>();
  const auto* outer = h->body[1]->as<IfStmt>();
  ASSERT_EQ(outer->else_block.size(), 1u);
  EXPECT_EQ(outer->else_block[0]->kind, StmtKind::If);
}

TEST(Parser, PrecedenceMulBeforeAddBeforeCompare) {
  const Program p = parse_ok(
      "event e(int a, int b, int c);\n"
      "handle e(int a, int b, int c) {\n"
      "  bool r = a + b * c == a;\n"
      "}\n");
  const auto* h = p.decls[1]->as<HandlerDecl>();
  const auto* d = h->body[0]->as<LocalDeclStmt>();
  const auto* eq = d->init->as<BinaryExpr>();
  EXPECT_EQ(eq->op, BinOp::Eq);
  const auto* add = eq->lhs->as<BinaryExpr>();
  EXPECT_EQ(add->op, BinOp::Add);
  EXPECT_EQ(add->rhs->as<BinaryExpr>()->op, BinOp::Mul);
}

TEST(Parser, ShiftInExpressionContext) {
  const Program p = parse_ok(
      "event e(int a);\n"
      "handle e(int a) { int b = a << 2; int c = a >> 1; }\n");
  const auto* h = p.decls[1]->as<HandlerDecl>();
  EXPECT_EQ(h->body[0]->as<LocalDeclStmt>()->init->as<BinaryExpr>()->op,
            BinOp::Shl);
  EXPECT_EQ(h->body[1]->as<LocalDeclStmt>()->init->as<BinaryExpr>()->op,
            BinOp::Shr);
}

TEST(Parser, ArrayMethodCalls) {
  const Program p = parse_ok(
      "global arr = new Array<<32>>(4);\n"
      "memop plus(int cur, int x) { return cur + x; }\n"
      "event e(int i);\n"
      "handle e(int i) {\n"
      "  int v = Array.get(arr, i);\n"
      "  Array.set(arr, i, plus, 1);\n"
      "  int w = Array.update(arr, i, plus, 0, plus, 1);\n"
      "}\n");
  const auto* h = p.decls[3]->as<HandlerDecl>();
  EXPECT_EQ(h->body[0]
                ->as<LocalDeclStmt>()
                ->init->as<CallExpr>()
                ->callee,
            "Array.get");
  EXPECT_EQ(h->body[1]->as<ExprStmt>()->expr->as<CallExpr>()->args.size(),
            4u);
}

TEST(Parser, IntWidthTypes) {
  const Program p = parse_ok(
      "event e(int<<16>> port, int<<8>> proto);\n");
  const auto* ev = p.decls[0]->as<EventDecl>();
  EXPECT_EQ(ev->params[0].type, Type::int_ty(16));
  EXPECT_EQ(ev->params[1].type, Type::int_ty(8));
}

TEST(Parser, SyntaxErrorRecoversToNextDecl) {
  DiagnosticEngine diags;
  const Program p = Parser::parse(
      "const int = 5;\n"  // missing name
      "const int GOOD = 6;\n",
      diags);
  EXPECT_TRUE(diags.has_errors());
  // The second declaration is still parsed.
  bool found = false;
  for (const auto& d : p.decls) {
    if (d->name == "GOOD") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Parser, MissingSemicolonIsReported) {
  DiagnosticEngine diags;
  (void)Parser::parse("const int A = 5", diags);
  EXPECT_TRUE(diags.has_code("parse-expected"));
}

// Round-trip: parse -> print -> parse must be structurally identical.
class ParserRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserRoundTrip, PrintReparse) {
  const Program p1 = parse_ok(GetParam());
  const std::string printed = print_program(p1);
  DiagnosticEngine diags2{printed};
  const Program p2 = Parser::parse(printed, diags2);
  ASSERT_FALSE(diags2.has_errors()) << diags2.render() << "\n" << printed;
  EXPECT_TRUE(program_equal(p1, p2)) << printed;
}

INSTANTIATE_TEST_SUITE_P(
    Programs, ParserRoundTrip,
    ::testing::Values(
        "const int SIZE = 16;\n"
        "global arr1 = new Array<<32>>(SIZE);\n"
        "global arr2 = new Array<<32>>(SIZE);\n"
        "event setArr1(int idx, int data);\n"
        "handle setArr1(int idx, int data) {\n"
        "  int x = Array.get(arr2, idx);\n"
        "  Array.set(arr1, idx, x);\n"
        "}\n",

        "memop incr(int stored, int added) { return stored + added; }\n"
        "global pathlens = new Array<<32>>(64);\n"
        "fun int get_pathlen(int dst) {\n"
        "  return Array.get(pathlens, dst);\n"
        "}\n"
        "event route_query(int sender_id, int dst);\n"
        "event route_reply(int sender_id, int dst, int pathlen);\n"
        "handle route_query(int sender_id, int dst) {\n"
        "  int pathlen = get_pathlen(dst);\n"
        "  event reply = route_reply(SELF, dst, pathlen);\n"
        "  generate Event.locate(reply, sender_id);\n"
        "}\n",

        "event a();\n"
        "event b();\n"
        "event c();\n"
        "const group GRP = {2, 3};\n"
        "handle a() {\n"
        "  generate b();\n"
        "  mgenerate Event.delay(Event.locate(c(), GRP), 10ms);\n"
        "}\n",

        "event e(int x);\n"
        "handle e(int x) {\n"
        "  int y = 0;\n"
        "  if (x == 1) { y = 1; } else if (x == 2) { y = 2; } else { y = 3; }\n"
        "  if (x > 3 && x < 10) { y = x + 1; }\n"
        "}\n"));

}  // namespace
}  // namespace lucid::frontend
