// Runtime control plane (src/ctrl): batched atomic updates, the apply-point
// guarantee (applies never interleave with a handler execution — including
// under a concurrent submitter, the TSan-checked test), batch rejection,
// read snapshots, the control-event bridge, apply budgets, the pipeline
// occupancy model, and the stats snapshot.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "ctrl/interp_bridge.hpp"
#include "interp/testbed.hpp"

namespace lucid::ctrl {
namespace {

// Control-plane batches always write `alo` and `ahi` together with one
// value (the effect type system allows a handler only one access per array,
// in declaration order — so tearing is detected across a *pair* of arrays).
// A probe handler reads one cell of each; any batch applied partially, or
// mid-handler, shows up as a torn observation.
const char* kProg =
    "global alo = new Array<<32>>(8);\n"
    "global ahi = new Array<<32>>(8);\n"
    "global b = new Array<<32>>(8);\n"
    "global torn = new Array<<32>>(1);\n"
    "global seen = new Array<<32>>(1);\n"
    "memop plus(int cur, int x) { return cur + x; }\n"
    "event probe(int i);\n"
    "event bump(int i);\n"
    "handle probe(int i) {\n"
    "  int x = Array.get(alo, 0);\n"
    "  int y = Array.get(ahi, 7);\n"
    "  if (x != y) { Array.set(torn, 0, plus, 1); }\n"
    "  Array.set(seen, 0, plus, 1);\n"
    "}\n"
    "handle bump(int i) { Array.set(b, i, plus, 1); }\n";

// 16 writes covering both halves of the pair with one value.
UpdateBatch fill_pair(interp::Value v) {
  UpdateBatch batch;
  for (int i = 0; i < 8; ++i) {
    batch.writes.push_back(RegWrite{"alo", i, v});
  }
  for (int i = 0; i < 8; ++i) {
    batch.writes.push_back(RegWrite{"ahi", i, v});
  }
  return batch;
}

TEST(Ctrl, SubmitIsDecoupledUntilApplyPoint) {
  interp::Testbed tb(kProg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  RuntimeControl rc(tb.node(1));

  rc.plane().write("alo", 3, 42);
  EXPECT_EQ(rc.plane().pending(), 1u);
  EXPECT_EQ(tb.node(1).array("alo")->get(3), 0);  // not yet applied

  tb.settle(sim::kMs);  // the control tick drains the queue
  EXPECT_EQ(rc.plane().pending(), 0u);
  EXPECT_EQ(tb.node(1).array("alo")->get(3), 42);
  const ControlPlaneStats s = rc.plane().snapshot();
  EXPECT_EQ(s.batches_submitted, 1u);
  EXPECT_EQ(s.batches_applied, 1u);
  EXPECT_EQ(s.writes_applied, 1u);
}

TEST(Ctrl, FlushAppliesImmediately) {
  interp::Testbed tb(kProg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  RuntimeControl rc(tb.node(1));

  rc.plane().write("alo", 0, 7);
  rc.plane().flush();
  EXPECT_EQ(tb.node(1).array("alo")->get(0), 7);
  EXPECT_EQ(rc.plane().pending(), 0u);
}

TEST(Ctrl, InvalidOpRejectsWholeBatch) {
  interp::Testbed tb(kProg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  RuntimeControl rc(tb.node(1));

  UpdateBatch batch;
  batch.writes.push_back(RegWrite{"alo", 0, 99});
  batch.writes.push_back(RegWrite{"no_such_array", 0, 1});
  BatchResult result;
  batch.on_done = [&](const BatchResult& r) { result = r; };
  rc.plane().submit(std::move(batch));
  rc.plane().flush();

  EXPECT_FALSE(result.applied);
  EXPECT_NE(result.error.find("no_such_array"), std::string::npos);
  // Atomicity: the valid first write must not have landed.
  EXPECT_EQ(tb.node(1).array("alo")->get(0), 0);
  const ControlPlaneStats s = rc.plane().snapshot();
  EXPECT_EQ(s.batches_rejected, 1u);
  EXPECT_EQ(s.batches_applied, 0u);
  EXPECT_EQ(s.writes_applied, 0u);
}

TEST(Ctrl, UnknownOrMisarityEventRejectsBatch) {
  interp::Testbed tb(kProg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  RuntimeControl rc(tb.node(1));

  rc.plane().post_event("no_such_event", {1});
  rc.plane().post_event("bump", {1, 2});  // bump takes one argument
  rc.plane().flush();
  const ControlPlaneStats s = rc.plane().snapshot();
  EXPECT_EQ(s.batches_rejected, 2u);
  EXPECT_EQ(s.events_injected, 0u);
}

TEST(Ctrl, BatchedReadsSeeOwnWritesAtOneBoundary) {
  interp::Testbed tb(kProg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  RuntimeControl rc(tb.node(1));

  UpdateBatch batch = fill_pair(5);
  batch.reads.push_back(RegRead{"alo", 0});
  batch.reads.push_back(RegRead{"ahi", 7});
  std::vector<interp::Value> reads;
  batch.on_done = [&](const BatchResult& r) { reads = r.reads; };
  rc.plane().submit(std::move(batch));
  rc.plane().flush();

  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reads[0], 5);
  EXPECT_EQ(reads[1], 5);
  EXPECT_EQ(rc.plane().snapshot().reads_served, 2u);
}

TEST(Ctrl, ControlEventBridgeInjectsOffTheWire) {
  interp::Testbed tb(kProg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  RuntimeControl rc(tb.node(1));

  const std::uint64_t front_before = tb.switch_at(1).front_stats().packets;
  rc.plane().post_event("bump", {3});
  rc.plane().flush();
  tb.settle(sim::kMs);

  EXPECT_EQ(tb.node(1).array("b")->get(3), 1);
  EXPECT_EQ(tb.sched_at(1).stats().control_injected, 1u);
  EXPECT_EQ(rc.plane().snapshot().events_injected, 1u);
  // The bridge enters through the recirculation port (switch-CPU path),
  // not a front-panel port.
  EXPECT_EQ(tb.switch_at(1).front_stats().packets, front_before);
  EXPECT_GE(tb.switch_at(1).recirculations(), 1u);
}

TEST(Ctrl, ApplyBudgetSpreadsBatchesAcrossBoundaries) {
  interp::Testbed tb(kProg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  ControlPlaneConfig cfg;
  cfg.tick_ns = 10 * sim::kUs;
  cfg.max_ops_per_apply = 4;
  RuntimeControl rc(tb.node(1), cfg);

  for (int i = 0; i < 10; ++i) rc.plane().write("b", i % 8, i);
  EXPECT_EQ(rc.plane().pending(), 10u);
  tb.settle(sim::kMs);

  const ControlPlaneStats s = rc.plane().snapshot();
  EXPECT_EQ(s.writes_applied, 10u);
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_EQ(s.max_queue_depth, 10u);
  // The tail of the queue had to wait for later boundaries: its apply
  // latency spans at least two ticks.
  EXPECT_GE(s.apply_latency_max_ns, 2 * cfg.tick_ns);
  EXPECT_GT(s.apply_latency_mean_ns, 0.0);
}

TEST(Ctrl, OversizedBatchAppliesWholeDespiteBudget) {
  interp::Testbed tb(kProg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  ControlPlaneConfig cfg;
  cfg.max_ops_per_apply = 4;
  RuntimeControl rc(tb.node(1), cfg);

  rc.plane().submit(fill_pair(9));  // 16 ops > budget of 4
  rc.plane().flush();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(tb.node(1).array("alo")->get(i), 9) << "cell " << i;
    EXPECT_EQ(tb.node(1).array("ahi")->get(i), 9) << "cell " << i;
  }
  EXPECT_EQ(rc.plane().snapshot().batches_applied, 1u);
}

TEST(Ctrl, CommitsOccupyThePipelinePerTheCostModel) {
  interp::Testbed tb(kProg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  ControlPlaneConfig cfg;
  cfg.batch_overhead_ns = 600;
  cfg.per_op_ns = 4;
  RuntimeControl rc(tb.node(1), cfg);

  rc.plane().submit(fill_pair(1));
  rc.plane().flush();
  EXPECT_EQ(tb.switch_at(1).stall_ns_total(), 600 + 4 * 16);
  EXPECT_EQ(rc.plane().snapshot().update_path_busy_ns, 600 + 4 * 16);

  // Disabled model: no occupancy.
  ControlPlaneConfig off;
  off.batch_overhead_ns = 0;
  off.per_op_ns = 0;
  interp::Testbed tb2(kProg);
  ASSERT_TRUE(tb2.ok());
  RuntimeControl rc2(tb2.node(1), off);
  rc2.plane().submit(fill_pair(1));
  rc2.plane().flush();
  EXPECT_EQ(tb2.switch_at(1).stall_ns_total(), 0);
}

TEST(Ctrl, SnapshotReportsRates) {
  interp::Testbed tb(kProg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  RuntimeControl rc(tb.node(1));

  for (int i = 0; i < 100; ++i) rc.plane().write("b", i % 8, i);
  rc.plane().flush();
  const ControlPlaneStats s = rc.plane().snapshot();
  EXPECT_EQ(s.writes_applied, 100u);
  EXPECT_GT(s.wall_installs_per_sec, 0.0);
  EXPECT_GT(s.modeled_installs_per_sec, 0.0);
  EXPECT_EQ(s.apply_points, 1u);
}

// The apply-point guarantee under a concurrent submitter: a producer thread
// hammers whole-array batches while the simulation thread runs probe
// traffic. Applies happen only at event boundaries, so no probe may ever
// observe a half-applied batch — and under ThreadSanitizer (ctest label
// "concurrency", debug-tsan preset) the run also proves the submit path is
// free of data races with handler execution.
TEST(Ctrl, AppliesNeverInterleaveWithHandlers) {
  interp::Testbed tb(kProg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  ControlPlaneConfig cfg;
  cfg.tick_ns = 5 * sim::kUs;
  // The occupancy model is off here: a spinning producer would otherwise
  // accumulate modeled stall far faster than virtual time advances, starving
  // the probe traffic. This test is about atomicity, not the cost model.
  cfg.batch_overhead_ns = 0;
  cfg.per_op_ns = 0;
  RuntimeControl rc(tb.node(1), cfg);

  constexpr int kProbes = 1500;
  for (int i = 0; i < kProbes; ++i) {
    tb.sim().after(1 + i * 2 * sim::kUs,
                   [&tb] { tb.node(1).inject("probe", {0}); });
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> submitted{0};
  std::thread producer([&] {
    interp::Value v = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      rc.plane().submit(fill_pair(v++));
      submitted.fetch_add(1, std::memory_order_relaxed);
    }
  });

  tb.settle(2 * kProbes * sim::kUs + 10 * sim::kMs);
  stop.store(true);
  producer.join();
  rc.plane().flush();

  EXPECT_EQ(tb.node(1).array("seen")->get(0), kProbes);
  EXPECT_EQ(tb.node(1).array("torn")->get(0), 0)
      << "a probe observed a half-applied batch";
  const ControlPlaneStats s = rc.plane().snapshot();
  EXPECT_EQ(s.batches_applied + s.queue_depth,
            submitted.load(std::memory_order_relaxed));
  EXPECT_EQ(s.writes_applied, s.batches_applied * 16);
  // All sixteen cells agree after the final flush.
  const interp::Value final_v = tb.node(1).array("alo")->get(0);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(tb.node(1).array("alo")->get(i), final_v);
    EXPECT_EQ(tb.node(1).array("ahi")->get(i), final_v);
  }
}

// Regression: a packet whose pipeline pass waits through TWO consecutive
// commits is one stalled delivery, not two. The reschedule path used to
// re-count the same packet when a second commit extended busy_until_ while
// it was already waiting.
TEST(Ctrl, PacketSpanningTwoCommitsCountsOneStall) {
  interp::Testbed tb(kProg);
  ASSERT_TRUE(tb.ok()) << tb.diagnostics();
  ControlPlaneConfig cfg;
  cfg.tick_ns = 300;           // apply points at 300, 600, ...
  cfg.batch_overhead_ns = 1000;  // each commit occupies the pipeline 1 us
  cfg.per_op_ns = 0;
  RuntimeControl rc(tb.node(1), cfg);

  // Commit A applies at the 300 ns tick: busy until 1300.
  UpdateBatch a;
  a.writes.push_back(RegWrite{"alo", 0, 1});
  rc.plane().submit(std::move(a));

  // The probe is injected at t=0; its pass would finish at 400, inside
  // commit A's window, so it stalls (count 1) and waits until 1300.
  tb.node(1).inject("probe", {0});

  // Commit B is submitted at 500 and applies at the 600 ns tick; its stall
  // queues behind A (1300 -> 2300), landing while the probe still waits.
  tb.sim().after(500, [&rc] {
    UpdateBatch b;
    b.writes.push_back(RegWrite{"alo", 1, 2});
    rc.plane().submit(std::move(b));
  });

  tb.settle();
  // The probe executed (exactly once) after both commits drained...
  EXPECT_EQ(tb.node(1).array("seen")->get(0), 1);
  EXPECT_EQ(tb.switch_at(1).stall_ns_total(), 2000);
  // ...and was counted as ONE stalled delivery despite spanning two
  // commits. (The double-count bug reported 2 here.)
  EXPECT_EQ(tb.switch_at(1).stalled_deliveries(), 1u);
}

}  // namespace
}  // namespace lucid::ctrl
