// Golden-file tests for the P4 emitter: the emitted Tofino-style P4_16 for a
// set of paper apps is checked in under tests/golden/ and diffed verbatim.
// Any intentional emitter change regenerates them with
//
//   UPDATE_GOLDEN=1 ./build/test_golden_p4
//
// and the diff is reviewed like any other code change. See tests/README.md.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "core/backends.hpp"
#include "support/strings.hpp"

namespace lucid {
namespace {

/// The apps pinned by golden files. Keep in sync with tests/golden/.
const std::vector<std::string>& golden_apps() {
  static const std::vector<std::string> keys = {"SFW", "DNS", "RR", "CM"};
  return keys;
}

std::string golden_path(const std::string& key) {
  return std::string(LUCID_SOURCE_DIR) + "/tests/golden/" + key + ".p4";
}

bool update_requested() {
  const char* env = std::getenv("UPDATE_GOLDEN");
  return env != nullptr && std::string(env) != "0" && std::string(env) != "";
}

std::string emit_p4(const apps::AppSpec& spec) {
  BackendRegistry registry;
  register_default_backends(registry);
  DriverOptions opts;
  opts.program_name = spec.key;
  const CompilerDriver driver(opts, &registry);
  const CompilationPtr comp = driver.start(spec.source);
  const BackendArtifact artifact = driver.emit(comp, "p4");
  EXPECT_TRUE(artifact.ok) << spec.key << ":\n" << comp->diags().render();
  return artifact.text;
}

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ok = false;
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  ok = true;
  return ss.str();
}

/// Points at the first differing line, with context, so a golden failure is
/// actionable without an external diff tool.
std::string first_difference(const std::string& expected,
                             const std::string& actual) {
  const std::vector<std::string> e = split(expected, '\n');
  const std::vector<std::string> a = split(actual, '\n');
  const std::size_t n = std::max(e.size(), a.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string el = i < e.size() ? e[i] : "<missing line>";
    const std::string al = i < a.size() ? a[i] : "<missing line>";
    if (el != al) {
      std::ostringstream os;
      os << "first difference at line " << (i + 1) << ":\n"
         << "  golden: " << el << "\n"
         << "  actual: " << al << "\n";
      return os.str();
    }
  }
  return "contents differ only in trailing bytes";
}

TEST(GoldenP4, EmissionMatchesCheckedInGolden) {
  for (const std::string& key : golden_apps()) {
    SCOPED_TRACE(key);
    const std::string actual = emit_p4(apps::app(key));
    ASSERT_FALSE(actual.empty());

    const std::string path = golden_path(key);
    if (update_requested()) {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << actual;
      continue;
    }

    bool read_ok = false;
    const std::string expected = read_file(path, read_ok);
    ASSERT_TRUE(read_ok) << "missing golden file " << path
                         << " — regenerate with UPDATE_GOLDEN=1";
    EXPECT_EQ(expected, actual)
        << first_difference(expected, actual)
        << "if the emitter change is intentional, regenerate with "
           "UPDATE_GOLDEN=1 ./test_golden_p4";
  }
}

TEST(GoldenP4, EmissionIsDeterministic) {
  // Golden files are only meaningful if emission is a pure function of the
  // compilation; two independent compiles must agree byte-for-byte.
  for (const std::string& key : golden_apps()) {
    SCOPED_TRACE(key);
    EXPECT_EQ(emit_p4(apps::app(key)), emit_p4(apps::app(key)));
  }
}

TEST(GoldenP4, GoldenFilesCarryRealPrograms) {
  if (update_requested()) GTEST_SKIP() << "regeneration run";
  for (const std::string& key : golden_apps()) {
    SCOPED_TRACE(key);
    bool read_ok = false;
    const std::string text = read_file(golden_path(key), read_ok);
    ASSERT_TRUE(read_ok) << "missing golden file for " << key;
    // Structural sanity: a full P4 program, not a truncated artifact.
    EXPECT_NE(text.find("parser IngressParser"), std::string::npos);
    EXPECT_NE(text.find("Switch(pipe) main;"), std::string::npos);
    EXPECT_GT(count_loc(text), 50u);
  }
}

}  // namespace
}  // namespace lucid
