// Discrete-event simulator core tests: ordering, determinism, clock
// semantics, and the Rng utilities.
#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace lucid::sim {
namespace {

TEST(Simulator, RunsCallbacksInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(30, [&] { order.push_back(3); });
  sim.at(10, [&] { order.push_back(1); });
  sim.at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, SameInstantIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator sim;
  Time fired = -1;
  sim.at(100, [&] {
    sim.after(50, [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, 150);
}

TEST(Simulator, PastTimesClampToNow) {
  Simulator sim;
  Time fired = -1;
  sim.at(100, [&] {
    sim.at(10, [&] { fired = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(fired, 100);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  sim.at(10, [&] { ++count; });
  sim.at(20, [&] { ++count; });
  sim.at(30, [&] { ++count; });
  sim.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, CallbacksCanScheduleRecursively) {
  Simulator sim;
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 100) sim.after(10, tick);
  };
  sim.after(10, tick);
  sim.run();
  EXPECT_EQ(ticks, 100);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1000), b.uniform(0, 1000));
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, ExponentialHasRoughlyRightMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(100.0);
  const double mean = sum / n;
  EXPECT_NEAR(mean, 100.0, 5.0);
}

}  // namespace
}  // namespace lucid::sim
